package paris

// Recorder overhead guard: the flight recorder sits on every request of the
// hot read path, so its cost is measured, not assumed. Two identical
// services — one with Options.DisableRecorder — serve the same published
// snapshot, and interleaved timing rounds assert the recorded path stays
// within 5% of the bare one (plus a small absolute epsilon so sub-µs
// scheduler noise cannot fail the build). The recorded side carries the
// whole per-span pipeline — the recent ring, slow/error retention, the
// trace-ID index behind GET /debug/traces/{trace}, and SLO bucket
// accounting — so the 5% bound covers all of it, and the guard first
// proves those features are actually live on the handler it times.
// BenchmarkSameAsLookupNoRecorder gives the CI bench smoke the same A/B as
// named artifacts.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/obs"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/server"
)

// newLookupPair publishes one aligned persons corpus into two services that
// differ only in DisableRecorder.
func newLookupPair(tb testing.TB) (withRec, without http.Handler, urls []string) {
	tb.Helper()
	d := gen.Persons(gen.PersonsConfig{N: 100, Seed: 42})
	o1, o2, err := d.Build(nil)
	if err != nil {
		tb.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	build := func(disable bool) http.Handler {
		srv, err := server.New(server.Options{StateDir: tb.TempDir(), DisableRecorder: disable})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { srv.Close() })
		if _, err := srv.PublishResult(res); err != nil {
			tb.Fatal(err)
		}
		return srv.Handler()
	}
	for _, p := range d.Gold.Pairs() {
		urls = append(urls, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0]))
	}
	return build(false), build(true), urls
}

// containsFamily reports whether a /v1/slo body carries the lookup route's
// burn report.
func containsFamily(body []byte) bool {
	return bytes.Contains(body, []byte(`"family":"GET /v1/sameas"`))
}

// timeLookups drives iters sequential requests and returns the per-request
// cost.
func timeLookups(tb testing.TB, h http.Handler, urls []string, iters int) time.Duration {
	tb.Helper()
	start := time.Now()
	for i := 0; i < iters; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil))
		if w.Code != http.StatusOK {
			tb.Fatalf("lookup %s: %d", urls[i%len(urls)], w.Code)
		}
	}
	return time.Since(start) / time.Duration(iters)
}

func TestRecorderOverheadOnLookupPath(t *testing.T) {
	withRec, without, urls := newLookupPair(t)

	// The guard is only meaningful if the timed path exercises the full
	// recorder: a traced request must land in the trace-ID index (served by
	// GET /debug/traces/{trace}) on the recorded side and 404 on the bare
	// one, and the recorded side must be filling SLO buckets.
	tr := obs.NewTrace()
	probe := httptest.NewRequest(http.MethodGet, urls[0], nil)
	probe.Header.Set(obs.TraceHeader, tr.String())
	withRec.ServeHTTP(httptest.NewRecorder(), probe)
	for _, tc := range []struct {
		h    http.Handler
		want int
	}{{withRec, http.StatusOK}, {without, http.StatusNotFound}} {
		w := httptest.NewRecorder()
		tc.h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/traces/"+tr.TraceID, nil))
		if w.Code != tc.want {
			t.Fatalf("trace-ID lookup = %d, want %d", w.Code, tc.want)
		}
	}
	w := httptest.NewRecorder()
	withRec.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/slo", nil))
	if w.Code != http.StatusOK || !containsFamily(w.Body.Bytes()) {
		t.Fatalf("recorded side has no SLO accounting: %d %s", w.Code, w.Body)
	}

	const warmup, iters, rounds = 500, 2000, 7
	timeLookups(t, withRec, urls, warmup)
	timeLookups(t, without, urls, warmup)

	// Min-of-rounds, interleaved: the minimum is the run least disturbed by
	// the scheduler, and interleaving keeps thermal/GC drift from loading
	// one side.
	minWith, minWithout := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		if d := timeLookups(t, withRec, urls, iters); d < minWith {
			minWith = d
		}
		if d := timeLookups(t, without, urls, iters); d < minWithout {
			minWithout = d
		}
	}

	const epsilon = 2 * time.Microsecond
	limit := minWithout + minWithout/20 + epsilon
	t.Logf("recorder on: %v/op, off: %v/op, limit %v/op", minWith, minWithout, limit)
	if minWith > limit {
		t.Errorf("recorder overhead too high: %v/op with recorder vs %v/op without (limit %v)",
			minWith, minWithout, limit)
	}
}

// BenchmarkSameAsLookupNoRecorder is BenchmarkSameAsLookup with the flight
// recorder disabled: the ns/op gap between the two is the recorder's cost
// on the hot read path.
func BenchmarkSameAsLookupNoRecorder(b *testing.B) {
	_, h, urls := newLookupPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil))
			if w.Code != http.StatusOK {
				b.Errorf("lookup %s: %d", urls[i%len(urls)], w.Code)
				return
			}
			i++
		}
	})
}
