// Package paris is a from-scratch Go implementation of PARIS — Probabilistic
// Alignment of Relations, Instances, and Schema (Suchanek, Abiteboul,
// Senellart; PVLDB 5(3), 2011).
//
// PARIS aligns two RDFS ontologies holistically: it computes equivalence
// probabilities between instances, sub-relation probabilities between
// relations (including inverses), and subclass probabilities between
// classes, letting instance and schema evidence reinforce each other in a
// fixpoint, with no training data and no dataset-specific tuning.
//
// Quick start:
//
//	lits := paris.NewLiterals()
//	o1, err := paris.LoadFile("kb1.nt", "kb1", lits, nil)
//	o2, err := paris.LoadFile("kb2.nt", "kb2", lits, nil)
//	res := paris.Align(o1, o2, paris.Config{})
//	for _, a := range res.Instances {
//	    fmt.Println(o1.ResourceKey(a.X1), "≡", o2.ResourceKey(a.X2), a.P)
//	}
//
// The two ontologies must share one literal table (the lits argument) so
// that the clamped literal-equality function of Section 5.3 of the paper is
// an identity check. Pass a Normalizer (for example paris.AlphaNum) to both
// loads to align under normalized literals.
package paris

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/literal"
	"repro/internal/rdf"
	"repro/internal/server"
	"repro/internal/store"
)

// Core data model types, re-exported from the implementation packages.
type (
	// Ontology is a frozen, indexed RDFS ontology (see store.Ontology).
	Ontology = store.Ontology
	// Builder accumulates triples and freezes them into an Ontology.
	Builder = store.Builder
	// Literals is a literal dictionary shared between two ontologies.
	Literals = store.Literals
	// Normalizer canonicalizes literals before interning.
	Normalizer = store.Normalizer
	// Resource identifies an interned resource within one ontology.
	Resource = store.Resource
	// Relation identifies an interned relation (inverses included).
	Relation = store.Relation
	// Term is one RDF term (IRI, blank node, or literal).
	Term = rdf.Term
	// Triple is one RDF statement.
	Triple = rdf.Triple

	// Config controls an alignment run; the zero value uses the paper's
	// defaults (θ = 0.1, harmonic-mean functionality, positive evidence).
	Config = core.Config
	// Aligner runs the PARIS fixpoint step by step.
	Aligner = core.Aligner
	// Result is the outcome of an alignment.
	Result = core.Result
	// Assignment is one maximal instance alignment.
	Assignment = core.Assignment
	// RelAlignment is one directed sub-relation score.
	RelAlignment = core.RelAlignment
	// ClassAlignment is one directed subclass score.
	ClassAlignment = core.ClassAlignment
	// IterationStats describes one fixpoint iteration.
	IterationStats = core.IterationStats

	// Gold is a gold-standard entity mapping for evaluation.
	Gold = eval.Gold
	// Metrics is a precision/recall/F-measure triple.
	Metrics = eval.Metrics

	// ResultSnapshot is the portable, ontology-independent form of a
	// Result, serializable with MarshalBinary/UnmarshalBinary.
	ResultSnapshot = core.ResultSnapshot
	// SnapshotAssignment is one instance assignment by resource key.
	SnapshotAssignment = core.SnapshotAssignment
	// SnapshotRelation is one directed sub-relation score by name.
	SnapshotRelation = core.SnapshotRelation
	// SnapshotClass is one directed subclass score by class key.
	SnapshotClass = core.SnapshotClass

	// Server is the alignment service behind cmd/parisd: async jobs,
	// persistent snapshots, and a concurrent sameAs lookup API.
	Server = server.Server
	// ServerOptions configures a Server.
	ServerOptions = server.Options
	// JobRequest is the body of POST /jobs.
	JobRequest = server.JobRequest
	// Job is the externally visible record of one alignment job.
	Job = server.Job
	// Match is one direction-resolved sameAs answer.
	Match = server.Match
)

// Literal normalizers (Section 5.3 of the paper).
var (
	// Identity compares lexical forms verbatim (the paper's default).
	Identity Normalizer = literal.Identity
	// AlphaNum lowercases and strips non-alphanumeric characters.
	AlphaNum Normalizer = literal.AlphaNum
	// Numeric canonicalizes numeric lexical forms.
	Numeric Normalizer = literal.Numeric
)

// NewLiterals returns an empty literal table to share across the two
// ontologies of an alignment.
func NewLiterals() *Literals { return store.NewLiterals() }

// NewBuilder returns a builder for an ontology named name. All builders of
// one alignment must share the same lits. A nil norm means Identity.
func NewBuilder(name string, lits *Literals, norm Normalizer) *Builder {
	return store.NewBuilder(name, lits, norm)
}

// NewGold returns an empty gold standard.
func NewGold() *Gold { return eval.NewGold() }

// NewServer starts an alignment service over a persistent state directory,
// recovering all previously completed alignments. Expose its Handler over
// HTTP (as cmd/parisd does) and Close it to flush state.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Align runs the full PARIS fixpoint over two frozen ontologies and returns
// instance, relation, and class alignments. It panics if the ontologies do
// not share a literal table.
func Align(o1, o2 *Ontology, cfg Config) *Result {
	return core.New(o1, o2, cfg).Run()
}

// NewAligner returns an aligner for step-by-step execution (per-iteration
// inspection, custom convergence policies). Most callers should use Align.
func NewAligner(o1, o2 *Ontology, cfg Config) *Aligner {
	return core.New(o1, o2, cfg)
}

// MaxRelAlignments reduces a directed relation-alignment list to the
// maximally assigned super-relation per sub-relation.
func MaxRelAlignments(as []RelAlignment) []RelAlignment {
	return core.MaxRelAlignments(as)
}

// FilterClassAlignments keeps class alignments with probability at least
// threshold.
func FilterClassAlignments(as []ClassAlignment, threshold float64) []ClassAlignment {
	return core.FilterClassAlignments(as, threshold)
}

// LoadFile parses an RDF file into a frozen ontology. The format is chosen
// by extension: .nt/.ntriples for N-Triples, .ttl/.turtle for Turtle; a
// trailing .gz (kb.nt.gz) is decompressed transparently. name is the
// ontology's display name; lits must be shared across the alignment; a nil
// norm means Identity.
func LoadFile(path, name string, lits *Literals, norm Normalizer) (*Ontology, error) {
	return store.LoadFile(path, name, lits, norm)
}

// ParseNTriples parses a complete N-Triples document held in a string.
func ParseNTriples(doc string) ([]Triple, error) { return rdf.ParseNTriples(doc) }

// ParseTurtle parses a complete Turtle document held in a string.
func ParseTurtle(doc string) ([]Triple, error) { return rdf.ParseTurtle(doc) }

// LoadGoldTSV reads a tab-separated gold standard (ontology-1 key, tab,
// ontology-2 key per line) as written by the dataset generators.
func LoadGoldTSV(path string) (*Gold, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := eval.NewGold()
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("paris: gold line %d: want two tab-separated keys", i+1)
		}
		if err := g.Add(parts[0], parts[1]); err != nil {
			return nil, fmt.Errorf("paris: gold line %d: %w", i+1, err)
		}
	}
	return g, nil
}
