// Package paris is a from-scratch Go implementation of PARIS — Probabilistic
// Alignment of Relations, Instances, and Schema (Suchanek, Abiteboul,
// Senellart; PVLDB 5(3), 2011).
//
// PARIS aligns two RDFS ontologies holistically: it computes equivalence
// probabilities between instances, sub-relation probabilities between
// relations (including inverses), and subclass probabilities between
// classes, letting instance and schema evidence reinforce each other in a
// fixpoint, with no training data and no dataset-specific tuning.
//
// Quick start — a Session owns the shared literal table, loads two
// knowledge bases (file paths or readers, gzip transparent), and runs the
// fixpoint under a context, so callers get cancellation, deadlines, and
// errors instead of panics:
//
//	s := paris.NewSession()
//	o1, err := s.Load(ctx, paris.FromFile("kb1.nt"))
//	o2, err := s.Load(ctx, paris.FromFile("kb2.nt.gz"))
//	res, err := s.Align(ctx)
//	for _, a := range res.Instances {
//	    fmt.Println(o1.ResourceKey(a.X1), "≡", o2.ResourceKey(a.X2), a.P)
//	}
//
// Sessions take functional options: WithConfig for the alignment
// parameters, WithNormalizer (for example paris.AlphaNum) to align under
// normalized literals per Section 5.3 of the paper, WithProgress to stream
// per-iteration statistics from a long run.
//
// The two ontologies of an alignment must share one literal table so that
// the clamped literal-equality function of Section 5.3 is an identity
// check; a Session maintains that invariant itself, while the deprecated
// free functions (LoadFile, Align) leave it to the caller.
package paris

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/literal"
	"repro/internal/rdf"
	"repro/internal/server"
	"repro/internal/store"
)

// Core data model types, re-exported from the implementation packages.
type (
	// Ontology is a frozen, indexed RDFS ontology (see store.Ontology).
	Ontology = store.Ontology
	// Builder accumulates triples and freezes them into an Ontology.
	Builder = store.Builder
	// Literals is a literal dictionary shared between two ontologies.
	Literals = store.Literals
	// Normalizer canonicalizes literals before interning.
	Normalizer = store.Normalizer
	// Resource identifies an interned resource within one ontology.
	Resource = store.Resource
	// Relation identifies an interned relation (inverses included).
	Relation = store.Relation
	// Term is one RDF term (IRI, blank node, or literal).
	Term = rdf.Term
	// Triple is one RDF statement.
	Triple = rdf.Triple

	// Config controls an alignment run; the zero value uses the paper's
	// defaults (θ = 0.1, harmonic-mean functionality, positive evidence).
	Config = core.Config
	// Aligner runs the PARIS fixpoint step by step.
	Aligner = core.Aligner
	// Result is the outcome of an alignment.
	Result = core.Result
	// Assignment is one maximal instance alignment.
	Assignment = core.Assignment
	// RelAlignment is one directed sub-relation score.
	RelAlignment = core.RelAlignment
	// ClassAlignment is one directed subclass score.
	ClassAlignment = core.ClassAlignment
	// IterationStats describes one fixpoint iteration.
	IterationStats = core.IterationStats

	// Gold is a gold-standard entity mapping for evaluation.
	Gold = eval.Gold
	// Metrics is a precision/recall/F-measure triple.
	Metrics = eval.Metrics

	// ResultSnapshot is the portable, ontology-independent form of a
	// Result, serializable with MarshalBinary/UnmarshalBinary.
	ResultSnapshot = core.ResultSnapshot
	// SnapshotAssignment is one instance assignment by resource key.
	SnapshotAssignment = core.SnapshotAssignment
	// SnapshotRelation is one directed sub-relation score by name.
	SnapshotRelation = core.SnapshotRelation
	// SnapshotClass is one directed subclass score by class key.
	SnapshotClass = core.SnapshotClass

	// Server is the alignment service behind cmd/parisd: async jobs,
	// persistent snapshots, and a concurrent sameAs lookup API.
	Server = server.Server
	// ServerOptions configures a Server.
	ServerOptions = server.Options
	// JobRequest is the body of POST /v1/jobs.
	JobRequest = server.JobRequest
	// DeltaRequest is the body of POST /v1/deltas (incremental
	// re-alignment against a published snapshot).
	DeltaRequest = server.DeltaRequest
	// SnapshotInfo is the served metadata of one snapshot version,
	// including the lineage of incrementally derived snapshots.
	SnapshotInfo = server.SnapshotInfo
	// Job is the externally visible record of one alignment job.
	Job = server.Job
	// JobState is the lifecycle state of an alignment job.
	JobState = server.JobState
	// Match is one direction-resolved sameAs answer.
	Match = server.Match
)

// Job lifecycle states, re-exported from the service.
const (
	JobQueued  = server.JobQueued
	JobRunning = server.JobRunning
	JobDone    = server.JobDone
	JobFailed  = server.JobFailed
)

// Literal normalizers (Section 5.3 of the paper).
var (
	// Identity compares lexical forms verbatim (the paper's default).
	Identity Normalizer = literal.Identity
	// AlphaNum lowercases and strips non-alphanumeric characters.
	AlphaNum Normalizer = literal.AlphaNum
	// Numeric canonicalizes numeric lexical forms.
	Numeric Normalizer = literal.Numeric
)

// NewLiterals returns an empty literal table to share across the two
// ontologies of an alignment.
func NewLiterals() *Literals { return store.NewLiterals() }

// NewBuilder returns a builder for an ontology named name. All builders of
// one alignment must share the same lits. A nil norm means Identity.
func NewBuilder(name string, lits *Literals, norm Normalizer) *Builder {
	return store.NewBuilder(name, lits, norm)
}

// NewGold returns an empty gold standard.
func NewGold() *Gold { return eval.NewGold() }

// NewServer starts an alignment service over a persistent state directory,
// recovering all previously completed alignments. Expose its Handler over
// HTTP (as cmd/parisd does) and Close it to flush state.
func NewServer(opts ServerOptions) (*Server, error) { return server.New(opts) }

// Align runs the full PARIS fixpoint over two frozen ontologies and returns
// instance, relation, and class alignments. It panics if the ontologies do
// not share a literal table.
//
// Deprecated: use Session.Align or AlignContext, which take a
// context.Context for cancellation and report the literal-table mismatch as
// a *LiteralTableError instead of panicking.
func Align(o1, o2 *Ontology, cfg Config) *Result {
	return core.New(o1, o2, cfg).Run()
}

// NewAligner returns an aligner for step-by-step execution (per-iteration
// inspection, custom convergence policies). It panics if the ontologies do
// not share a literal table.
//
// Deprecated: use Session.Aligner, which returns an error instead of
// panicking; drive the result with StepContext/RunContext for
// cancellation.
func NewAligner(o1, o2 *Ontology, cfg Config) *Aligner {
	return core.New(o1, o2, cfg)
}

// MaxRelAlignments reduces a directed relation-alignment list to the
// maximally assigned super-relation per sub-relation.
func MaxRelAlignments(as []RelAlignment) []RelAlignment {
	return core.MaxRelAlignments(as)
}

// FilterClassAlignments keeps class alignments with probability at least
// threshold.
func FilterClassAlignments(as []ClassAlignment, threshold float64) []ClassAlignment {
	return core.FilterClassAlignments(as, threshold)
}

// LoadFile parses an RDF file into a frozen ontology. The format is chosen
// by extension: .nt/.ntriples for N-Triples, .ttl/.turtle for Turtle; a
// trailing .gz (kb.nt.gz) is decompressed transparently. name is the
// ontology's display name; lits must be shared across the alignment; a nil
// norm means Identity.
func LoadFile(path, name string, lits *Literals, norm Normalizer) (*Ontology, error) {
	return store.LoadFile(path, name, lits, norm)
}

// ParseNTriples parses a complete N-Triples document held in a string.
func ParseNTriples(doc string) ([]Triple, error) { return rdf.ParseNTriples(doc) }

// ParseTurtle parses a complete Turtle document held in a string.
func ParseTurtle(doc string) ([]Triple, error) { return rdf.ParseTurtle(doc) }

// LoadGoldTSV reads a tab-separated gold standard (ontology-1 key, tab,
// ontology-2 key per line) as written by the dataset generators. Files
// exported from Windows tools load too: a UTF-8 BOM, CRLF line endings, and
// whitespace padding around either key are all stripped.
func LoadGoldTSV(path string) (*Gold, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := strings.TrimPrefix(string(data), "\ufeff")
	g := eval.NewGold()
	for i, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("paris: gold line %d: want two tab-separated keys", i+1)
		}
		// Both keys are non-empty here: the line-level TrimSpace means a
		// whitespace-only side loses its tab and fails the split above.
		k1, k2 := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if err := g.Add(k1, k2); err != nil {
			return nil, fmt.Errorf("paris: gold line %d: %w", i+1, err)
		}
	}
	return g, nil
}
