// Quickstart: align two tiny ontologies that describe the same people under
// different vocabularies, and print everything PARIS discovers — instance
// equivalences, sub-relation inclusions, and class inclusions — from nothing
// but the statement overlap.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	paris "repro"
)

const kb1 = `
<http://left.org/elvis> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://left.org/singer> .
<http://left.org/elvis> <http://left.org/email> "elvis@graceland.com" .
<http://left.org/elvis> <http://left.org/bornIn> <http://left.org/tupelo> .
<http://left.org/priscilla> <http://left.org/marriedTo> <http://left.org/elvis> .
<http://left.org/priscilla> <http://left.org/email> "priscilla@graceland.com" .
<http://left.org/tupelo> <http://left.org/label> "Tupelo" .
`

const kb2 = `
<http://right.org/presley> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://right.org/musician> .
<http://right.org/presley> <http://right.org/mail> "elvis@graceland.com" .
<http://right.org/presley> <http://right.org/birthPlace> <http://right.org/tupelo_ms> .
<http://right.org/presley> <http://right.org/spouse> <http://right.org/wife> .
<http://right.org/wife> <http://right.org/mail> "priscilla@graceland.com" .
<http://right.org/tupelo_ms> <http://right.org/name> "Tupelo" .
`

func main() {
	// A Session owns the shared literal table both ontologies intern into
	// (the invariant behind the paper's clamped literal equality) and runs
	// everything under a context, so a deadline or Ctrl-C can abort a
	// long alignment cleanly.
	ctx := context.Background()
	s := paris.NewSession()
	o1, err := s.Load(ctx, paris.FromReader("left", "nt", strings.NewReader(kb1)))
	if err != nil {
		log.Fatal(err)
	}
	o2, err := s.Load(ctx, paris.FromReader("right", "nt", strings.NewReader(kb2)))
	if err != nil {
		log.Fatal(err)
	}

	res, err := s.Align(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Instance equivalences:")
	for _, a := range res.Instances {
		fmt.Printf("  %-12s ≡ %-12s p=%.2f\n",
			short(o1.ResourceKey(a.X1)), short(o2.ResourceKey(a.X2)), a.P)
	}

	fmt.Println("\nRelation inclusions (left ⊆ right):")
	for _, ra := range paris.MaxRelAlignments(res.Relations12) {
		fmt.Printf("  %-12s ⊆ %-12s p=%.2f\n",
			short(o1.RelationName(ra.Sub)), short(o2.RelationName(ra.Super)), ra.P)
	}

	fmt.Println("\nClass inclusions (left ⊆ right):")
	for _, ca := range paris.FilterClassAlignments(res.Classes12, 0.3) {
		fmt.Printf("  %-12s ⊆ %-12s p=%.2f\n",
			short(o1.ResourceKey(ca.Sub)), short(o2.ResourceKey(ca.Super)), ca.P)
	}
}

// short trims an IRI key down to its local name, keeping the ⁻¹ marker of
// inverse relations.
func short(key string) string {
	key = strings.Trim(key, "<>")
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
