// Push-based KB ingestion walkthrough: stream a gzipped N-Triples dump to
// a remote aligner with client.UploadKB instead of copying files to its
// disk, follow the ingest job's per-block progress over the SSE stream
// with client.WatchJob, recover an interrupted upload from the offset the
// server reports, and align the pushed KB by its "kb:" reference — an
// in-process parisd (with a deliberately small ingest memory budget, so
// the streaming loader spills and merges like it would on a multi-GB dump)
// stands in for the real daemon.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	paris "repro"
	"repro/client"
	"repro/internal/gen"
	"repro/internal/rdf"
)

func main() {
	ctx := context.Background()

	// Stand-in for `parisd -state ... -ingest-workers 4 -ingest-budget
	// 1048576`: every streaming load parses blocks on 4 workers and
	// spills sorted runs to disk past 1 MiB of buffered triples.
	dir, err := os.MkdirTemp("", "paris-ingest-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := paris.NewServer(paris.ServerOptions{
		StateDir:      filepath.Join(dir, "state"),
		Workers:       1,
		IngestWorkers: 4,
		IngestBudget:  1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}

	// A generated corpus plays the role of the local dumps: one side is
	// gzipped and pushed to the server, the other written to the server's
	// disk the classic way.
	d := gen.Movies(gen.MoviesConfig{Seed: 3, People: 500, Movies: 150})
	if err := d.WriteFiles(dir); err != nil {
		log.Fatal(err)
	}
	var zdump bytes.Buffer
	zw := gzip.NewWriter(&zdump)
	if err := rdf.WriteNTriples(zw, d.Triples1); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local dump: %d triples, %d bytes gzipped\n", len(d.Triples1), zdump.Len())

	// Push the dump. The body streams chunked — a real caller hands
	// UploadKB the file handle (or any io.Reader) directly; nothing is
	// buffered client-side.
	job, err := c.UploadKB(ctx, client.UploadKBRequest{Name: "movies", Format: ".nt.gz"},
		bytes.NewReader(zdump.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upload accepted as %s (%d bytes spooled)\n", job.ID, job.Upload.Bytes)

	// Follow the validation over SSE: one "ingest" frame per parsed
	// block, then "done" with the committed path.
	final, err := c.WatchJob(ctx, job.ID, func(ev client.JobEvent) {
		if ev.Type == client.EventIngest && ev.Job.Ingest != nil {
			p := ev.Job.Ingest
			fmt.Printf("  block %d: %d triples, %d bytes, %d spill(s)\n",
				p.Blocks, p.Triples, p.Bytes, p.Spills)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if final.State != client.JobDone {
		log.Fatalf("ingest failed: %s", final.Error)
	}
	fmt.Printf("KB committed at %s (%d triples)\n", final.KB, final.Ingest.Triples)

	// Interrupted uploads resume instead of restarting: push half, watch
	// the validation fail on the truncated gzip stream with a byte
	// offset, then send only the remainder from the server's offset.
	half := zdump.Len() / 2
	job, err = c.UploadKB(ctx, client.UploadKBRequest{Name: "resumed", Format: ".nt.gz"},
		bytes.NewReader(zdump.Bytes()[:half]))
	if err != nil {
		log.Fatal(err)
	}
	if failed, err := c.WaitJob(ctx, job.ID, 0); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("truncated upload rejected: %s\n", failed.Error)
	}
	kbs, err := c.KBs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, kb := range kbs {
		if kb.State == "partial" {
			fmt.Printf("partial upload %q: resume at offset %d\n", kb.Name, kb.Offset)
			job, err = c.UploadKB(ctx,
				client.UploadKBRequest{Name: kb.Name, Format: ".nt.gz", Offset: kb.Offset},
				bytes.NewReader(zdump.Bytes()[kb.Offset:]))
			if err != nil {
				// A mismatched offset comes back as *client.UploadError
				// carrying the right one.
				var ue *client.UploadError
				if errors.As(err, &ue) {
					log.Fatalf("resume at %d instead", ue.Offset)
				}
				log.Fatal(err)
			}
			if done, err := c.WaitJob(ctx, job.ID, 0); err != nil || done.State != client.JobDone {
				log.Fatalf("resume failed: %v %s", err, done.Error)
			}
			fmt.Printf("resumed upload committed after sending %d more bytes\n",
				int64(zdump.Len())-kb.Offset)
		}
	}

	// Align the pushed KB against a server-side file. "kb:movies"
	// resolves to the committed upload; the align job's own KB loads run
	// through the same streaming pipeline and surface ingest frames too.
	alignJob, err := c.SubmitJob(ctx, client.JobRequest{
		KB1: "kb:movies",
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if err != nil {
		log.Fatal(err)
	}
	final, err = c.WatchJob(ctx, alignJob.ID, func(ev client.JobEvent) {
		switch ev.Type {
		case client.EventIngest:
			fmt.Printf("  loading: %d triples\n", ev.Job.Ingest.Triples)
		case client.EventIteration:
			it := ev.Job.Iterations[len(ev.Job.Iterations)-1]
			fmt.Printf("  iteration %d: %d assigned\n", it.Iteration, it.Assigned)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if final.State != client.JobDone {
		log.Fatalf("alignment failed: %s", final.Error)
	}
	fmt.Printf("aligned: snapshot %s\n", final.Snapshot)

	pairs := d.Gold.Pairs()
	res, err := c.SameAs(ctx, client.SameAsQuery{KB: "1", Key: pairs[0][0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s sameAs %s (p=%.2f)\n", pairs[0][0], res.Matches[0].Key, res.Matches[0].P)
}
