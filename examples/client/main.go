// Client walkthrough: the full life of an alignment served over the /v1
// HTTP API, driven entirely through the typed repro/client package — an
// in-process parisd stands in for the real daemon so the example runs
// self-contained.
//
// The flow: start a service, submit an alignment job, watch its
// per-iteration progress, look entities up one at a time and in batch,
// pin the snapshot for repeatable reads, and cancel a second job
// mid-flight.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	paris "repro"
	"repro/client"
	"repro/internal/gen"
)

func main() {
	ctx := context.Background()

	// Stand-in for `parisd -state ...` plus a generated corpus to align.
	dir, err := os.MkdirTemp("", "paris-client-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d := gen.Persons(gen.PersonsConfig{N: 50, Seed: 42})
	if err := d.WriteFiles(dir); err != nil {
		log.Fatal(err)
	}
	srv, err := paris.NewServer(paris.ServerOptions{StateDir: filepath.Join(dir, "state"), Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Everything below is what a real consumer of parisd would write,
	// with ts.URL replaced by the daemon's address.
	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// Submit and wait. WaitJob polls GET /v1/jobs/{id} until terminal.
	job, err := c.SubmitJob(ctx, client.JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%s)\n", job.ID, job.State)
	job, err = c.WaitJob(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished %s: %s, snapshot %s, %d iterations\n",
		job.ID, job.State, job.Snapshot, len(job.Iterations))
	for _, it := range job.Iterations {
		fmt.Printf("  %s\n", it)
	}

	// Single lookup (GET /v1/sameas).
	pairs := d.Gold.Pairs()
	one, err := c.SameAs(ctx, client.SameAsQuery{KB: "1", Key: pairs[0][0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s ≡ %s (p=%.2f)\n", pairs[0][0], one.Matches[0].Key, one.Matches[0].P)

	// Batch lookup (POST /v1/sameas): every gold key in one round-trip.
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p[0]
	}
	batch, err := c.SameAsBatch(ctx, client.BatchSameAsQuery{KB: "1", Keys: keys})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: resolved %d/%d keys against snapshot %s\n",
		batch.Found, len(keys), batch.Snapshot)

	// Pinned reads: the snapshot ID makes results repeatable even while
	// newer alignments publish.
	pinned, err := c.Relations(ctx, client.ScoreQuery{Min: 0.3, Snapshot: job.Snapshot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned to %s: %d relation inclusions over p=0.3\n",
		pinned.Snapshot, len(pinned.Relations))
	for i, r := range pinned.Relations {
		if i == 3 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %s ⊆ %s (p=%.2f)\n", r.Sub, r.Super, r.P)
	}

	// Cancellation (DELETE /v1/jobs/{id}): with one worker, the second of
	// two back-to-back submissions waits in the queue, where the cancel
	// catches it deterministically — it fails with the cancellation
	// reason and publishes nothing. Canceling a running job works the
	// same way, aborting the fixpoint within one pass.
	req := client.JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}
	if _, err := c.SubmitJob(ctx, req); err != nil {
		log.Fatal(err)
	}
	queued, err := c.SubmitJob(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, queued.ID); err != nil {
		log.Fatal(err)
	}
	queued, err = c.WaitJob(ctx, queued.ID, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanceled %s: %s (%s)\n", queued.ID, queued.State, queued.Error)

	snaps, err := c.Snapshots(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots: %v (current %s)\n", snaps.Snapshots, snaps.Current)
}
