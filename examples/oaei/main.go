// OAEI reproduction example: generate the person and restaurant corpora of
// the paper's Section 6.2 (Table 1), align them with default settings, and
// evaluate against the gold standard — including the Section 6.3 variant
// with the alphanumeric literal normalizer and negative evidence.
package main

import (
	"context"
	"fmt"
	"log"

	paris "repro"
	"repro/internal/gen"
)

func main() {
	fmt.Println("== person corpus (paper Table 1, row 1) ==")
	person := gen.Persons(gen.PersonsConfig{Seed: 42})
	alignAndReport(person, nil, paris.Config{})

	fmt.Println("\n== restaurant corpus (paper Table 1, row 2) ==")
	restaurant := gen.Restaurants(gen.RestaurantsConfig{Seed: 42})
	alignAndReport(restaurant, nil, paris.Config{})

	fmt.Println("\n== restaurant with alphanum literals + negative evidence (Section 6.3) ==")
	alignAndReport(restaurant, paris.AlphaNum, paris.Config{NegativeEvidence: true})
}

func alignAndReport(d *gen.Dataset, norm paris.Normalizer, cfg paris.Config) {
	o1, o2, err := d.Build(norm)
	if err != nil {
		log.Fatal(err)
	}
	// AlignContext is the error-returning, cancellable form of the
	// deprecated paris.Align.
	res, err := paris.AlignContext(context.Background(), o1, o2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gold pairs: %d\n", d.Gold.Len())
	fmt.Printf("instances:  %s\n", d.Gold.Evaluate(res.InstanceMap()))
	fmt.Printf("iterations: %d\n", len(res.Iterations))

	fmt.Println("discovered relation inclusions:")
	for _, ra := range paris.MaxRelAlignments(res.Relations12) {
		name := o1.RelationName(ra.Sub)
		if name[len(name)-1] == '¹' { // skip inverse rows for brevity
			continue
		}
		fmt.Printf("  %-45s ⊆ %-45s %.2f\n", name, o2.RelationName(ra.Super), ra.P)
	}
}
