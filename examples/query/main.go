// Query example: federated conjunctive queries over the aligned union KB.
// Two movie knowledge bases with disjoint vocabularies (YAGO vs IMDb style,
// Section 6.4 of the paper) are pushed to an in-process parisd — the second
// upload chains the alignment job — and then queried as one KB: variables
// range over sameAs equivalence classes and relation constants expand
// through the aligned sub-relation and subclass tables, so a single join
// returns rows neither source KB holds alone.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	paris "repro"
	"repro/client"
	"repro/internal/gen"
	"repro/internal/rdf"
)

const (
	ykb = "http://ykbfilm.example.org/"
	ikb = "http://ikb.example.org/"
)

func main() {
	// 1. An in-process parisd, exactly as a deployment would run it.
	dir, err := os.MkdirTemp("", "paris-query-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := paris.NewServer(paris.ServerOptions{StateDir: dir, Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 2. Push both dumps. The second upload carries AlignWith, so the
	// server chains an alignment job onto the ingest: the 202 response's
	// Job.Next is the align job's ID, and it waits for the commit.
	d := gen.Movies(gen.MoviesConfig{Seed: 42, People: 400, Movies: 150})
	render := func(triples []rdf.Triple) *bytes.Buffer {
		var b bytes.Buffer
		if err := rdf.WriteNTriples(&b, triples); err != nil {
			log.Fatal(err)
		}
		return &b
	}
	job, err := c.UploadKB(ctx, client.UploadKBRequest{Name: "imdb", Format: ".nt"}, render(d.Triples2))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, job.ID, 50*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	job, err = c.UploadKB(ctx, client.UploadKBRequest{
		Name: "yago", Format: ".nt", AlignWith: "imdb",
	}, render(d.Triples1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest %s chains align %s\n", job.ID, job.Next)
	align, err := c.WaitJob(ctx, job.Next, 50*time.Millisecond)
	if err != nil || align.State != client.JobDone {
		log.Fatalf("align: %+v, %v", align, err)
	}
	fmt.Printf("aligned: snapshot %s\n\n", align.Snapshot)

	// 3. Query the union. "directed" exists only in the YAGO-style KB,
	// "hasGenre" only in the IMDb-style one: every row of this join crosses
	// a sameAs cluster the alignment discovered.
	for _, q := range []string{
		`?d <` + ykb + `directed> ?m`,
		`?d <` + ykb + `directed> ?m . ?m <` + ikb + `hasGenre> ?g`,
		`?x a <` + ikb + `Production>`,
	} {
		res, err := c.Query(ctx, client.QueryRequest{Query: q, Limit: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n  %d+ rows, cache_hit=%v, plan=%v exec=%v\n",
			q, len(res.Rows), res.Stats.CacheHit, res.Stats.PlanTime, res.Stats.ExecTime)
		for _, row := range res.Rows {
			fmt.Print(" ")
			for i, v := range row {
				fmt.Printf(" %s=%s", res.Vars[i], fmtValue(v))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The same shape again is answered from the plan cache.
	res, err := c.Query(ctx, client.QueryRequest{Query: `?d <` + ykb + `directed> ?m`, Limit: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeated shape: cache_hit=%v\n", res.Stats.CacheHit)
}

// fmtValue renders one binding: the keys of its sameAs cluster in both KBs
// (proof the row spans the alignment), or the literal.
func fmtValue(v client.QueryValue) string {
	if v.Literal != nil {
		return fmt.Sprintf("%q", *v.Literal)
	}
	switch {
	case len(v.KB1) > 0 && len(v.KB2) > 0:
		return v.KB1[0] + "≡" + v.KB2[0]
	case len(v.KB1) > 0:
		return v.KB1[0]
	default:
		return v.KB2[0]
	}
}
