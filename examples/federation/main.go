// Federation example: the paper's future-work direction — applying PARIS to
// more than two ontologies. Three small knowledge bases about the same
// people, in three vocabularies, are aligned pairwise and merged into entity
// clusters spanning all three.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	paris "repro"
	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/store"
)

var kbs = []string{
	`
<http://en.kb/ada> <http://en.kb/email> "ada@lovelace.org" .
<http://en.kb/ada> <http://en.kb/bornOn> "1815-12-10" .
<http://en.kb/charles> <http://en.kb/email> "charles@babbage.org" .
<http://en.kb/ada> <http://en.kb/collaboratedWith> <http://en.kb/charles> .
`,
	`
<http://fr.kb/a_lovelace> <http://fr.kb/courriel> "ada@lovelace.org" .
<http://fr.kb/a_lovelace> <http://fr.kb/naissance> "1815-12-10" .
<http://fr.kb/c_babbage> <http://fr.kb/courriel> "charles@babbage.org" .
<http://fr.kb/c_babbage> <http://fr.kb/collaborateur> <http://fr.kb/a_lovelace> .
`,
	`
<http://de.kb/lovelace> <http://de.kb/epost> "ada@lovelace.org" .
<http://de.kb/lovelace> <http://de.kb/geboren> "1815-12-10" .
<http://de.kb/babbage> <http://de.kb/epost> "charles@babbage.org" .
`,
}

func main() {
	lits := paris.NewLiterals()
	var ontos []*store.Ontology
	for i, doc := range kbs {
		triples, err := paris.ParseNTriples(doc)
		if err != nil {
			log.Fatal(err)
		}
		b := paris.NewBuilder(fmt.Sprintf("kb%d", i), lits, nil)
		if err := b.AddAll(triples); err != nil {
			log.Fatal(err)
		}
		ontos = append(ontos, b.Build())
	}

	// AlignContext aborts the pairwise sweep (n(n-1)/2 alignments) within
	// one fixpoint pass of cancellation.
	res, err := multi.AlignContext(context.Background(), ontos, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aligned %d ontology pairs\n\n", len(res.Pairwise))
	fmt.Println("entity clusters across the federation:")
	for i, c := range res.Clusters {
		var names []string
		for _, m := range c.Members {
			names = append(names, short(m.Key))
		}
		fmt.Printf("  cluster %d (min p=%.2f): %s\n", i+1, c.MinP, strings.Join(names, " ≡ "))
	}
}

func short(key string) string {
	key = strings.Trim(key, "<>")
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
