// Sharded serving walkthrough: align a movie corpus once, split the
// published sameAs index across three shard servers by hash of the
// normalized entity key, and serve lookups through the scatter-gather
// router — the deployment shape for knowledge bases too large for one heap
// (in production the shards are `parisd -shard i/N` processes on separate
// hosts and the router is `parisrouter`; here everything runs in-process).
//
// The walkthrough shows the two-phase publish: per-shard slices land first
// (PUT /v1/snapshots/{id} with one common ID), and the router flips its
// routing epoch only once every shard has acknowledged — readers never see
// a torn cross-shard view, and ?snapshot=-pinned reads resolve consistently
// on every shard.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	paris "repro"
	"repro/client"
	"repro/internal/gen"
	"repro/internal/shard"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "paris-sharded-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ---- Align once (the aligner's job, not the shards'). ----
	d := gen.Movies(gen.MoviesConfig{Seed: 42, People: 400, Movies: 150})
	o1, o2, err := d.Build(nil)
	if err != nil {
		log.Fatal(err)
	}
	res := paris.Align(o1, o2, paris.Config{})
	snap := res.Snapshot()
	fmt.Printf("aligned %s vs %s: %d instance pairs\n", snap.KB1, snap.KB2, len(snap.Instances))

	// ---- Start three shards (parisd -shard i/N) and the router. ----
	const n = 3
	var urls []string
	var peers []*client.Client
	for i := 0; i < n; i++ {
		srv, err := paris.NewServer(paris.ServerOptions{
			StateDir:   fmt.Sprintf("%s/shard-%d", dir, i),
			ShardIndex: i,
			ShardCount: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		peer, err := client.New(ts.URL)
		if err != nil {
			log.Fatal(err)
		}
		urls = append(urls, ts.URL)
		peers = append(peers, peer)
	}
	router, err := shard.NewRouter(urls, shard.WithLogf(log.Printf))
	if err != nil {
		log.Fatal(err)
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()
	c, err := client.New(front.URL)
	if err != nil {
		log.Fatal(err)
	}

	// ---- Two-phase publish. ----
	const version = "snap-00000001"
	if err := shard.Publish(ctx, peers, version, snap); err != nil { // phase 1: slices to every shard
		log.Fatal(err)
	}
	epoch, err := router.Refresh(ctx) // phase 2: flip the routing epoch
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s to %d shards, routing epoch %s\n", version, n, epoch)

	// ---- Lookups through the router, exactly the single-process API. ----
	pairs := d.Gold.Pairs()
	one, err := c.SameAs(ctx, client.SameAsQuery{KB: "1", Key: pairs[0][0]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sameas %s -> %s (p=%.2f) via shard %d\n",
		pairs[0][0], one.Matches[0].Key, one.Matches[0].P, mustPart(n).Owner(pairs[0][0]))

	keys := make([]string, 0, 64)
	for _, p := range pairs[:min(64, len(pairs))] {
		keys = append(keys, p[0])
	}
	batch, err := c.SameAsBatch(ctx, client.BatchSameAsQuery{KB: "1", Keys: keys})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d keys scatter-gathered: %d found on snapshot %s\n",
		len(keys), batch.Found, batch.Snapshot)

	// Pinned reads survive later publishes: the ID is common to all shards.
	pinned, err := c.SameAs(ctx, client.SameAsQuery{KB: "1", Key: pairs[0][0], Snapshot: version})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned read on %s agrees: %s\n", pinned.Snapshot, pinned.Matches[0].Key)
}

func mustPart(n int) shard.Partitioner {
	p, err := shard.NewPartitioner(n)
	if err != nil {
		panic(err)
	}
	return p
}
