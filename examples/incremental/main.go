// Incremental re-alignment walkthrough: align two knowledge bases, let both
// evolve (new triples arrive), and re-align warm-started from the previous
// result instead of re-running the whole fixpoint from the neutral prior —
// first in-process through paris.Session.Realign, then over HTTP through
// POST /v1/deltas with snapshot lineage, driven by the typed client against
// an in-process parisd.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	paris "repro"
	"repro/client"
	"repro/internal/gen"
)

const kb1 = `
<http://left.org/elvis> <http://left.org/email> "elvis@graceland.com" .
<http://left.org/elvis> <http://left.org/bornIn> <http://left.org/tupelo> .
<http://left.org/priscilla> <http://left.org/marriedTo> <http://left.org/elvis> .
<http://left.org/priscilla> <http://left.org/email> "priscilla@graceland.com" .
<http://left.org/tupelo> <http://left.org/label> "Tupelo" .
`

const kb2 = `
<http://right.org/presley> <http://right.org/mail> "elvis@graceland.com" .
<http://right.org/presley> <http://right.org/birthPlace> <http://right.org/tupelo_ms> .
<http://right.org/presley> <http://right.org/spouse> <http://right.org/wife> .
<http://right.org/wife> <http://right.org/mail> "priscilla@graceland.com" .
<http://right.org/tupelo_ms> <http://right.org/name> "Tupelo" .
`

func main() {
	ctx := context.Background()

	// ---- In-process: Session.Align, then Session.Realign on a delta ----

	s := paris.NewSession()
	if _, err := s.Load(ctx, paris.FromReader("left", "nt", strings.NewReader(kb1))); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Load(ctx, paris.FromReader("right", "nt", strings.NewReader(kb2))); err != nil {
		log.Fatal(err)
	}
	res, err := s.Align(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold align: %d instance pairs in %d passes\n",
		len(res.Instances), len(res.Iterations))

	// Both KBs learn about a new singer. Realign ingests the additions in
	// place and warm-starts the fixpoint from the previous result.
	add1, err := paris.ParseNTriples(`<http://left.org/cash> <http://left.org/email> "johnny@cash.com" .`)
	if err != nil {
		log.Fatal(err)
	}
	add2, err := paris.ParseNTriples(`<http://right.org/johnny> <http://right.org/mail> "johnny@cash.com" .`)
	if err != nil {
		log.Fatal(err)
	}
	res, err = s.Realign(ctx, paris.Delta{Add1: add1, Add2: add2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm realign: %d instance pairs in %d pass(es)\n",
		len(res.Instances), len(res.Iterations))
	for k1, k2 := range res.InstanceMap() {
		fmt.Printf("  %s ≡ %s\n", k1, k2)
	}

	// ---- Over HTTP: POST /v1/deltas against a served snapshot ----

	dir, err := os.MkdirTemp("", "paris-incremental-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d := gen.Persons(gen.PersonsConfig{N: 40, Seed: 3})
	if err := d.WriteFiles(dir); err != nil {
		log.Fatal(err)
	}
	srv, err := paris.NewServer(paris.ServerOptions{
		StateDir: filepath.Join(dir, "state"),
		Retain:   4, // snapshot GC: keep the newest four (lineage always survives)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}

	job, err := c.SubmitJob(ctx, client.JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if job, err = c.WaitJob(ctx, job.ID, 0); err != nil || job.State != client.JobDone {
		log.Fatalf("alignment job: %+v %v", job, err)
	}
	fmt.Printf("\nserved snapshot %s (%d fixpoint passes)\n", job.Snapshot, len(job.Iterations))

	// A delta batch arrives for KB1; the equivalent curl is
	//
	//	curl -X POST localhost:7171/v1/deltas \
	//	  -d '{"kb":"1","ntriples":"<http://person1.example.org/person9999> ..."}'
	//
	// Empty "base" means "whatever snapshot is being served right now".
	dj, err := c.SubmitDelta(ctx, client.DeltaRequest{
		KB: "1",
		NTriples: `<http://person1.example.org/person9999> <http://person1.example.org/soc_sec_id> "999-00-1234" .
<http://person1.example.org/person9999> <http://person1.example.org/has_email> "new.arrival@example.com" .
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	if dj, err = c.WaitJob(ctx, dj.ID, 0); err != nil || dj.State != client.JobDone {
		log.Fatalf("delta job: %+v %v", dj, err)
	}
	fmt.Printf("delta job %s: warm re-alignment in %d pass(es), snapshot %s\n",
		dj.ID, len(dj.Iterations), dj.Snapshot)

	// Lineage: the new snapshot records which version it extended and the
	// digest of the batch it applied.
	snaps, err := c.Snapshots(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range snaps.Snapshots {
		if info.Base == "" {
			fmt.Printf("  %s: cold (%s vs %s, %d instances)\n", info.ID, info.KB1, info.KB2, info.Instances)
		} else {
			fmt.Printf("  %s: delta on %s (+%d statements, digest %.12s…)\n",
				info.ID, info.Base, info.DeltaAdded, info.DeltaDigest)
		}
	}
}
