// Large-scale example: align the two independently-designed knowledge bases
// of the world corpus (Section 6.4 of the paper, YAGO vs DBpedia style) and
// inspect the holistic outcome — per-iteration instance quality, inverse and
// split relation discoveries, and the class-threshold tradeoff of Figures 1
// and 2.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	paris "repro"
	"repro/internal/gen"
)

func main() {
	d := gen.World(gen.WorldConfig{Seed: 42})
	o1, o2, err := d.Build(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s\n\n", o1.Stats(), o2.Stats())

	// The session streams per-iteration timing through WithProgress while
	// Config.OnIteration keeps access to the aligner for the gold-standard
	// evaluation — the two compose.
	cfg := paris.Config{
		MaxIterations: 4,
		OnIteration: func(it int, a *paris.Aligner) {
			assign := map[string]string{}
			for _, as := range a.Assignments() {
				assign[o1.ResourceKey(as.X1)] = o2.ResourceKey(as.X2)
			}
			fmt.Printf("iteration %d: %s\n", it, d.Gold.Evaluate(assign))
		},
	}
	s := paris.NewSession(
		paris.WithConfig(cfg),
		paris.WithProgress(func(st paris.IterationStats) {
			fmt.Printf("  timing: %s\n", st)
		}),
	)
	if err := s.Use(o1); err != nil {
		log.Fatal(err)
	}
	if err := s.Use(o2); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := s.Align(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned in %v\n\n", time.Since(t0).Round(time.Millisecond))

	fmt.Println("selected relation discoveries (ykb ⊆ dkb):")
	wanted := []string{"actedIn", "hasChild", "isCitizenOf", "created", "isMarriedTo"}
	for _, ra := range res.Relations12 {
		name := shorten(o1.RelationName(ra.Sub))
		for _, w := range wanted {
			if strings.HasPrefix(name, "y:"+w) && !strings.HasSuffix(name, "⁻¹") {
				fmt.Printf("  %-18s ⊆ %-22s %.2f\n", name, shorten(o2.RelationName(ra.Super)), ra.P)
			}
		}
	}

	fmt.Println("\nclass alignment by threshold (Figures 1 & 2 shape):")
	for _, th := range []float64{0.2, 0.5, 0.8} {
		kept := paris.FilterClassAlignments(res.Classes12, th)
		subs := map[paris.Resource]bool{}
		for _, ca := range kept {
			subs[ca.Sub] = true
		}
		fmt.Printf("  threshold %.1f: %5d scored pairs over %4d classes\n", th, len(kept), len(subs))
	}
}

func shorten(iri string) string {
	iri = strings.ReplaceAll(iri, "http://ykb.example.org/", "y:")
	iri = strings.ReplaceAll(iri, "http://dkb.example.org/", "dbp:")
	return iri
}
