// Movie-KB example: align a general-purpose knowledge base against a movie
// database (Section 6.4 of the paper, YAGO vs IMDb style) and compare PARIS
// against the rdfs:label exact-match baseline — the paper's headline result
// is that PARIS beats the baseline's recall by ~20 points at comparable
// precision, because it keeps matching entities whose names differ (credit
// order, transliterations) through their relational context.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	paris "repro"
	"repro/internal/baseline"
	"repro/internal/gen"
)

func main() {
	d := gen.Movies(gen.MoviesConfig{Seed: 42})
	o1, o2, err := d.Build(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n%s\n\n", o1.Stats(), o2.Stats())

	// Baseline: entities whose rdfs:label matches exactly and uniquely.
	t0 := time.Now()
	base := baseline.LabelMatch(o1, o2, baseline.Config{})
	fmt.Printf("label baseline: %s (%v)\n", d.Gold.Evaluate(base), time.Since(t0).Round(time.Millisecond))

	// PARIS, under a generous deadline: AlignContext aborts within one
	// fixpoint pass if it expires, instead of running unbounded.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	t1 := time.Now()
	res, err := paris.AlignContext(ctx, o1, o2, paris.Config{})
	if err != nil {
		log.Fatal(err)
	}
	parisMetrics := d.Gold.Evaluate(res.InstanceMap())
	fmt.Printf("paris:          %s (%v, %d iterations)\n",
		parisMetrics, time.Since(t1).Round(time.Millisecond), len(res.Iterations))

	// Show matches PARIS found that the baseline could not: entities whose
	// labels differ across the two KBs.
	fmt.Println("\nmatches beyond the baseline (different labels, same entity):")
	shown := 0
	for _, a := range res.Instances {
		k1 := o1.ResourceKey(a.X1)
		want, ok := d.Gold.Expected(k1)
		if !ok || want != o2.ResourceKey(a.X2) {
			continue
		}
		if _, baselineGotIt := base[k1]; baselineGotIt {
			continue
		}
		if shown < 8 {
			fmt.Printf("  %-40s ≡ %-40s p=%.2f\n", k1, want, a.P)
			shown++
		}
	}
	if shown == 0 {
		fmt.Println("  (none at this scale)")
	}
}
