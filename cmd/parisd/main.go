// Command parisd is the PARIS alignment daemon: a long-running HTTP service
// that computes ontology alignments asynchronously and serves sameAs lookups
// from persistent snapshots.
//
// Usage:
//
//	parisd -state /var/lib/parisd [-addr :7171] [-workers 2] [-retain N]
//
// API (versioned under /v1; the unversioned routes of the first release are
// gone):
//
//	POST   /v1/jobs       {"kb1": "a.nt", "kb2": "b.nt", ...}  submit a job
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  job state with per-iteration progress
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	POST   /v1/deltas     {"kb": "1", "ntriples": "..."}  incremental re-align
//	POST   /v1/kbs?name=N&format=.nt.gz[&offset=M]  push a KB dump (chunked body)
//	GET    /v1/kbs        uploaded KBs (ready + partial with resume offsets)
//	DELETE /v1/kbs/{name} remove an uploaded KB (409 while a job references it)
//	GET    /v1/sameas?kb=1&key=<iri>   entity lookup (kb=2 for the reverse)
//	POST   /v1/sameas     {"kb": "1", "keys": [...]}  batch lookup
//	GET    /v1/relations?dir=12&min=0.1
//	GET    /v1/classes?dir=12&min=0.1
//	GET    /v1/snapshots  persisted snapshot versions with lineage
//	GET    /v1/snapshots/{id}  export one snapshot (binary encoding)
//	PUT    /v1/snapshots/{id}  publish a pre-computed snapshot under that ID
//	GET    /v1/jobs/{id}/convergence  per-iteration fixpoint movement of a job
//	GET    /v1/stats      serving statistics
//	GET    /v1/healthz    liveness probe (process up)
//	GET    /v1/readyz     readiness probe (503 until a snapshot serves)
//	GET    /v1/slo        per-route-family error/latency burn rates (5m and 1h windows)
//	GET    /metrics       Prometheus text exposition (HTTP/jobs/ingest/fixpoint/Go runtime)
//	GET    /debug/traces/{trace}  retained span records of one trace ID (JSON)
//
// Every request is traced: an X-Paris-Trace header ("<trace>-<span>") is
// honored and re-parented, each request logs one span line with its
// duration and route, and an in-process flight recorder retains the span
// trees of slow (per-route p99-exceeding) and errored requests. The
// trace-by-ID dump on the main listener is what parisrouter's cross-process
// stitcher (GET /debug/traces?fleet=1 on the router) fans out to.
// -debug-addr adds a separate listener with /metrics, /debug/pprof, and
// GET /debug/traces (the retained trees; ?route=&min_ms=&errors=1&format=text).
// Abandoned upload spools (*.partial older than server.Options.SpoolTTL,
// default 24h) are garbage-collected at startup.
//
// POST /v1/deltas ingests added triples against a published snapshot and
// re-runs the fixpoint warm-started from it, publishing a new snapshot whose
// lineage (base version, delta digest) shows in GET /v1/snapshots. Delta
// batches are persisted as append-only segments, so a restart replays base
// KBs + deltas when further deltas arrive.
//
// POST /v1/kbs pushes a (possibly gzipped) N-Triples dump to the daemon as
// a streamed chunked body, so KBs can be aligned on a remote parisd without
// shipping files to its disk out of band. The spooled dump is validated by
// an ingest job on the worker pool — the streaming parallel loader
// (internal/ingest) parses blocks concurrently under -ingest-budget bytes
// of memory with -ingest-workers parsers, spilling sorted runs to temp
// segments for dumps bigger than the budget — then committed under
// <state>/kbs/; jobs reference it as "kb:<name>". An interrupted upload
// keeps its spooled bytes: GET /v1/kbs reports the offset, and re-POSTing
// with ?offset=M appends the remainder instead of starting over. Alignment
// jobs load their KB files through the same pipeline, with per-block
// progress on the job record.
//
// GET /v1/jobs/{id} with "Accept: text/event-stream" streams job progress
// as server-sent events (state, iteration, ingest, done frames) instead of
// polling.
//
// Read endpoints (/v1/sameas, /v1/relations, /v1/classes) accept
// ?snapshot=<id> to pin a published snapshot version for repeatable reads.
// Wrong methods on known routes answer 405 with an Allow header.
//
// Completed alignments are persisted under -state and recovered on restart;
// the newest snapshot is served immediately, with no re-alignment. With
// -retain N, superseded snapshots beyond the newest N are retired after each
// publish unless pinned by lineage or an active ?snapshot= reader. The Go
// package repro/client wraps this API with typed methods.
//
// With -shard i/N the daemon serves as one shard of an N-way sharded
// deployment behind a parisrouter: it answers lookups for its slice of the
// key space only, refuses job and delta submissions, and receives per-shard
// snapshot slices through PUT /v1/snapshots/{id} (pushed by the publisher,
// or pre-written into -state with shard.WriteSlices before startup).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":7171", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:7172); the main listener serves /metrics regardless")
	state := flag.String("state", "", "state directory for persistent snapshots (required)")
	workers := flag.Int("workers", 2, "concurrent alignment jobs")
	queue := flag.Int("queue", 16, "pending-job queue depth")
	cache := flag.Int("cache", 4096, "normalized-lookup LRU cache entries")
	retain := flag.Int("retain", 0, "snapshots to keep (0 keeps all); lineage-pinned snapshots always survive")
	shardSpec := flag.String("shard", "", "serve as shard i/N of a sharded deployment (e.g. 1/3): lookups only, slices via PUT /v1/snapshots/{id}")
	maxSnap := flag.Int64("max-snapshot-bytes", 0, "PUT /v1/snapshots/{id} body limit (0 = 1 GiB)")
	ingestWorkers := flag.Int("ingest-workers", 0, "parallel parse workers for streaming KB loads (0 = min(GOMAXPROCS, 8))")
	ingestBudget := flag.Int64("ingest-budget", 0, "memory budget in bytes for streaming KB loads before spilling to disk (0 = 256 MiB)")
	maxUpload := flag.Int64("max-upload-bytes", 0, "total spooled size limit of one POST /v1/kbs upload (0 = 16 GiB)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("parisd"))
		return
	}

	if *state == "" {
		fmt.Fprintln(os.Stderr, "usage: parisd -state DIR [-addr :7171]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var sp shard.Spec
	if *shardSpec != "" {
		var err error
		if sp, err = shard.ParseSpec(*shardSpec); err != nil {
			log.Fatal(err)
		}
	}

	srv, err := server.New(server.Options{
		StateDir:         *state,
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		Retain:           *retain,
		ShardIndex:       sp.Index,
		ShardCount:       sp.Count,
		MaxSnapshotBytes: *maxSnap,
		IngestWorkers:    *ingestWorkers,
		IngestBudget:     *ingestBudget,
		MaxUploadBytes:   *maxUpload,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	debugSrv := serveDebug(*debugAddr, srv.MetricsRegistry(), srv.Recorder(), "parisd")

	errCh := make(chan error, 1)
	go func() {
		log.Printf("parisd: listening on %s, state in %s", *addr, *state)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("parisd: %v, shutting down", s)
	}

	// HTTP connections and running alignments share one grace period;
	// once it ends, in-flight jobs are canceled (each aborts within one
	// fixpoint pass, persisted as failed) rather than waited out.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("parisd: HTTP shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	if err := srv.CloseContext(ctx); err != nil {
		log.Printf("parisd: closing state: %v", err)
	}
}

// serveDebug starts the opt-in debug listener: /metrics, /debug/pprof, and
// the flight recorder's /debug/traces on an address that can stay
// firewalled off from the serving one.
func serveDebug(addr string, reg *obs.Registry, col *obs.Collector, name string) *http.Server {
	if addr == "" {
		return nil
	}
	s := &http.Server{
		Addr:              addr,
		Handler:           obs.DebugMux(reg, col),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("%s: debug listener (metrics + pprof + traces) on %s", name, addr)
		if err := s.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("%s: debug listener: %v", name, err)
		}
	}()
	return s
}
