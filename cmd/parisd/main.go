// Command parisd is the PARIS alignment daemon: a long-running HTTP service
// that computes ontology alignments asynchronously and serves sameAs lookups
// from persistent snapshots.
//
// Usage:
//
//	parisd -state /var/lib/parisd [-addr :7171] [-workers 2]
//
// API:
//
//	POST /jobs       {"kb1": "a.nt", "kb2": "b.nt", ...}  submit a job
//	GET  /jobs       list jobs
//	GET  /jobs/{id}  job state with per-iteration progress
//	GET  /sameas?kb=1&key=<iri>   entity lookup (kb=2 for the reverse)
//	GET  /relations?dir=12&min=0.1
//	GET  /classes?dir=12&min=0.1
//	GET  /snapshots  persisted snapshot versions
//	GET  /stats      serving statistics
//	GET  /healthz    liveness probe
//
// Completed alignments are persisted under -state and recovered on restart;
// the newest snapshot is served immediately, with no re-alignment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7171", "HTTP listen address")
	state := flag.String("state", "", "state directory for persistent snapshots (required)")
	workers := flag.Int("workers", 2, "concurrent alignment jobs")
	queue := flag.Int("queue", 16, "pending-job queue depth")
	cache := flag.Int("cache", 4096, "normalized-lookup LRU cache entries")
	flag.Parse()

	if *state == "" {
		fmt.Fprintln(os.Stderr, "usage: parisd -state DIR [-addr :7171]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv, err := server.New(server.Options{
		StateDir:   *state,
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cache,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("parisd: listening on %s, state in %s", *addr, *state)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("parisd: %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("parisd: HTTP shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("parisd: closing state: %v", err)
	}
}
