// Command parispublish distributes one published alignment snapshot across
// a sharded deployment — the publisher of the two-phase publish:
//
//	parispublish -from http://aligner:7171 \
//	    -shards http://h0:7171,http://h1:7171,http://h2:7171 \
//	    [-snapshot snap-00000001] [-router http://router:7170]
//
// It fetches the snapshot (the currently served version unless -snapshot
// names one) from the aligner in its binary form, splits it into per-shard
// slices by hash of the normalized entity key, and pushes slice i to every
// replica of shard group i under the snapshot's own ID (phase one). With
// -router it then asks the router to refresh its routing epoch (phase two);
// without it, the router's own -poll loop picks the new version up. Shard
// URLs must be in shard-index order, matching the fleet's -shard i/N flags;
// replicated fleets separate groups with ";" and a group's replicas with
// "," (same syntax as parisrouter -shards):
//
//	parispublish -from http://aligner:7171 \
//	    -shards "http://a0:7171,http://a1:7171;http://b0:7171,http://b1:7171"
//
// The push is idempotent in the way that matters operationally: a replica
// that already holds the ID answers 409, which parispublish treats as that
// replica having acknowledged, so a half-failed publish can simply be
// rerun — including after a replica was down for a push (the router serves
// from its siblings in the meantime).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	from := flag.String("from", "", "base URL of the aligner holding the snapshot (required)")
	snapID := flag.String("snapshot", "", "snapshot ID to distribute (default: the aligner's current version)")
	shards := flag.String("shards", "", "comma-separated shard base URLs in shard-index order (required)")
	router := flag.String("router", "", "router base URL to refresh after the push (optional)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	maxSnap := flag.Int64("max-snapshot-bytes", 0, "snapshot download limit (0 = 1 GiB); match the aligner's -max-snapshot-bytes")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("parispublish"))
		return
	}

	if *from == "" || *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: parispublish -from URL -shards URL0,URL1,... [-snapshot ID] [-router URL]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var opts []client.Option
	if *maxSnap > 0 {
		opts = append(opts, client.WithSnapshotLimit(*maxSnap))
	}
	src, err := client.New(*from, opts...)
	if err != nil {
		log.Fatal(err)
	}
	id := *snapID
	if id == "" {
		list, err := src.Snapshots(ctx)
		if err != nil {
			log.Fatalf("parispublish: listing snapshots on %s: %v", *from, err)
		}
		if list.Current == "" {
			log.Fatalf("parispublish: %s serves no snapshot yet", *from)
		}
		id = list.Current
	}
	snap, err := src.GetSnapshot(ctx, id)
	if err != nil {
		log.Fatalf("parispublish: fetching %s: %v", id, err)
	}
	log.Printf("parispublish: fetched %s (%s vs %s, %d instances)",
		id, snap.KB1, snap.KB2, len(snap.Instances))

	groups, replicas, err := shardGroups(*shards)
	if err != nil {
		log.Fatal(err)
	}
	// shard.PublishGroups treats a 409 (the replica already holds the
	// version) as that replica's acknowledgment, so a half-failed publish
	// is simply rerun.
	if err := shard.PublishGroups(ctx, groups, id, snap); err != nil {
		log.Fatal(err)
	}
	log.Printf("parispublish: %s acknowledged by all %d replica(s) across %d shard group(s)",
		id, replicas, len(groups))

	if *router != "" {
		epoch, err := refresh(ctx, *router)
		if err != nil {
			log.Fatalf("parispublish: router refresh: %v", err)
		}
		log.Printf("parispublish: routing epoch now %s", epoch)
	}
}

// shardGroups parses the -shards topology into replica groups of clients,
// returning the groups plus the total replica count.
func shardGroups(list string) ([][]*client.Client, int, error) {
	var groups [][]*client.Client
	replicas := 0
	for gi, element := range shard.SplitTopology(list) {
		var g []*client.Client
		for ri, u := range strings.Split(element, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			peer, err := client.New(u)
			if err != nil {
				return nil, 0, fmt.Errorf("parispublish: shard %d replica %d: %w", gi, ri, err)
			}
			g = append(g, peer)
		}
		if len(g) == 0 {
			continue
		}
		groups = append(groups, g)
		replicas += len(g)
	}
	if len(groups) == 0 {
		return nil, 0, errors.New("parispublish: no shard URLs")
	}
	return groups, replicas, nil
}

func refresh(ctx context.Context, routerURL string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(routerURL, "/")+"/v1/refresh", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Epoch string `json:"epoch"`
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("router answered %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Epoch, nil
}
