// Command parispublish distributes one published alignment snapshot across
// a sharded deployment — the publisher of the two-phase publish:
//
//	parispublish -from http://aligner:7171 \
//	    -shards http://h0:7171,http://h1:7171,http://h2:7171 \
//	    [-snapshot snap-00000001] [-router http://router:7170]
//
// It fetches the snapshot (the currently served version unless -snapshot
// names one) from the aligner in its binary form, splits it into per-shard
// slices by hash of the normalized entity key, and pushes slice i to shard
// i under the snapshot's own ID (phase one). With -router it then asks the
// router to refresh its routing epoch (phase two); without it, the router's
// own -poll loop picks the new version up. Shard URLs must be in
// shard-index order, matching the fleet's -shard i/N flags.
//
// The push is idempotent in the way that matters operationally: a shard
// that already holds the ID answers 409, which parispublish treats as that
// shard having acknowledged, so a half-failed publish can simply be rerun.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/client"
	"repro/internal/shard"
)

func main() {
	from := flag.String("from", "", "base URL of the aligner holding the snapshot (required)")
	snapID := flag.String("snapshot", "", "snapshot ID to distribute (default: the aligner's current version)")
	shards := flag.String("shards", "", "comma-separated shard base URLs in shard-index order (required)")
	router := flag.String("router", "", "router base URL to refresh after the push (optional)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	maxSnap := flag.Int64("max-snapshot-bytes", 0, "snapshot download limit (0 = 1 GiB); match the aligner's -max-snapshot-bytes")
	flag.Parse()

	if *from == "" || *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: parispublish -from URL -shards URL0,URL1,... [-snapshot ID] [-router URL]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var opts []client.Option
	if *maxSnap > 0 {
		opts = append(opts, client.WithSnapshotLimit(*maxSnap))
	}
	src, err := client.New(*from, opts...)
	if err != nil {
		log.Fatal(err)
	}
	id := *snapID
	if id == "" {
		list, err := src.Snapshots(ctx)
		if err != nil {
			log.Fatalf("parispublish: listing snapshots on %s: %v", *from, err)
		}
		if list.Current == "" {
			log.Fatalf("parispublish: %s serves no snapshot yet", *from)
		}
		id = list.Current
	}
	snap, err := src.GetSnapshot(ctx, id)
	if err != nil {
		log.Fatalf("parispublish: fetching %s: %v", id, err)
	}
	log.Printf("parispublish: fetched %s (%s vs %s, %d instances)",
		id, snap.KB1, snap.KB2, len(snap.Instances))

	peers, err := shardClients(*shards)
	if err != nil {
		log.Fatal(err)
	}
	// shard.Publish treats a 409 (the shard already holds the version) as
	// that shard's acknowledgment, so a half-failed publish is simply rerun.
	if err := shard.Publish(ctx, peers, id, snap); err != nil {
		log.Fatal(err)
	}
	log.Printf("parispublish: %s acknowledged by all %d shards", id, len(peers))

	if *router != "" {
		epoch, err := refresh(ctx, *router)
		if err != nil {
			log.Fatalf("parispublish: router refresh: %v", err)
		}
		log.Printf("parispublish: routing epoch now %s", epoch)
	}
}

func shardClients(list string) ([]*client.Client, error) {
	var peers []*client.Client
	for i, u := range strings.Split(list, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		peer, err := client.New(u)
		if err != nil {
			return nil, fmt.Errorf("parispublish: shard %d: %w", i, err)
		}
		peers = append(peers, peer)
	}
	if len(peers) == 0 {
		return nil, errors.New("parispublish: no shard URLs")
	}
	return peers, nil
}

func refresh(ctx context.Context, routerURL string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(routerURL, "/")+"/v1/refresh", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		Epoch string `json:"epoch"`
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("router answered %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Epoch, nil
}
