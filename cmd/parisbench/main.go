// Command parisbench regenerates every table and figure of the paper's
// evaluation section on the synthetic reproduction corpora (see DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	parisbench [-exp all|table1|table2|table3|table4|table5|fig1|fig2|theta|allpairs|negative|fun]
//	           [-seed N] [-scale F]
//
// With -load it instead runs the serving-path load generator: six read
// mixes (single-key GETs, 64-key batch POSTs, normalized misses, and three
// conjunctive-query shapes over the aligned union KB) against -target, or
// an in-process parisd when -target is empty, writing latency quantiles,
// throughput, scraped /metrics deltas, and a Go-runtime summary (GC cycles
// and pause time induced by the load, goroutine/heap peaks sampled mid-run)
// to -out. -fleet degraded targets a replicated in-process fleet (3 shard
// groups × 2 replicas behind a parisrouter) with one replica per group
// killed, so the measured mixes run through the router's hedged-failover
// read path; the counter deltas then come from the router's federated
// /v1/fleet/metrics, and the report adds a per-replica traffic breakdown
// and the fleet-merged SLO burn-rate report:
//
//	parisbench -load [-target http://host:7171] [-fleet degraded] [-duration 2s]
//	           [-concurrency 8] [-keys 300] [-out BENCH_10.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, table3, table4, table5, fig1, fig2, theta, allpairs, negative, fun)")
	seed := flag.Int64("seed", 42, "dataset generator seed")
	scale := flag.Float64("scale", 1, "size multiplier for the large corpora")
	load := flag.Bool("load", false, "run the serving-path load generator instead of the paper experiments")
	target := flag.String("target", "", "base URL of a running parisd or parisrouter (empty starts an in-process parisd)")
	fleet := flag.String("fleet", "", `in-process deployment shape: "" for a single parisd, "degraded" for a replicated fleet with one replica down per group`)
	duration := flag.Duration("duration", 2*time.Second, "measured window per load mix")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers per load mix")
	keys := flag.Int("keys", 300, "corpus size in matched persons for the load run")
	out := flag.String("out", "BENCH_10.json", "load report output path")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("parisbench"))
		return
	}

	if *load {
		runLoad(bench.LoadOptions{
			Target:      *target,
			Fleet:       *fleet,
			Duration:    *duration,
			Concurrency: *concurrency,
			Seed:        *seed,
			Keys:        *keys,
			Logf:        log.Printf,
		}, *out)
		return
	}

	opt := bench.Options{Seed: *seed, Scale: *scale}
	runners := map[string]func(bench.Options){
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"table4":   table4,
		"table5":   table5,
		"fig1":     figures,
		"fig2":     figures,
		"theta":    theta,
		"allpairs": allPairs,
		"negative": negative,
		"fun":      functionality,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "fig1", "theta", "allpairs", "negative", "fun"} {
			runners[name](opt)
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "parisbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(opt)
}

func runLoad(opts bench.LoadOptions, out string) {
	rep, err := bench.RunLoad(opts)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	header("Load report — " + rep.Target)
	fmt.Printf("%-16s %9s %7s %12s %9s %9s %9s\n",
		"mix", "requests", "errors", "rps", "p50 ms", "p90 ms", "p99 ms")
	for _, m := range rep.Mixes {
		fmt.Printf("%-16s %9d %7d %12.1f %9.3f %9.3f %9.3f\n",
			m.Mix, m.Requests, m.Errors, m.Throughput, m.P50Ms, m.P90Ms, m.P99Ms)
	}
	if len(rep.Replicas) > 0 {
		fmt.Printf("%-18s %4s %10s %10s\n", "instance", "up", "requests", "lookups")
		for _, r := range rep.Replicas {
			fmt.Printf("%-18s %4v %10.0f %10.0f\n", r.Instance, r.Up, r.Requests, r.Lookups)
		}
	}
	if slo := rep.SLO; slo != nil {
		for _, fam := range slo.Families {
			for _, w := range fam.Windows {
				fmt.Printf("slo %-22s %-3s err_burn=%.3f lat_burn=%.3f (%d req)\n",
					fam.Family, w.Window, w.ErrorBurnRate, w.LatencyBurnRate, w.Requests)
			}
		}
	}
	if rt := rep.Runtime; rt != nil {
		fmt.Printf("runtime: %.0f GC cycles, %.1f ms pause, peak %.0f goroutines, peak heap %.1f MiB\n",
			rt.GCCycles, rt.GCPauseSeconds*1000, rt.PeakGoroutines, rt.PeakHeapInUse/(1<<20))
	}
	fmt.Printf("report written to %s (%d server metric deltas)\n", out, len(rep.MetricDeltas))
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table1(opt bench.Options) {
	header("Table 1 — OAEI-style benchmark (person, restaurant)")
	for _, r := range bench.Table1(opt) {
		fmt.Print(r.Report())
	}
}

func table2(opt bench.Options) {
	header("Table 2 — corpus statistics")
	for _, s := range bench.Table2(opt) {
		fmt.Printf("%-10s %9d instances %8d classes %5d relations %9d facts\n",
			s.Name, s.Instances, s.Classes, s.Relations, s.Facts)
	}
}

func table3(opt bench.Options) {
	header("Table 3 — world alignment (ykb vs dkb) over iterations")
	fmt.Print(bench.Table3(opt).Report())
}

func table4(opt bench.Options) {
	header("Table 4 — discovered relation alignments (ykb ⊆ dkb)")
	for _, ex := range bench.Table4(opt) {
		fmt.Printf("%-22s ⊆ %-26s %.2f\n", ex.Sub, ex.Super, ex.P)
	}
}

func table5(opt bench.Options) {
	header("Table 5 — movie alignment (ykb-film vs ikb) over iterations")
	fmt.Print(bench.Table5(opt).Report())
}

func figures(opt bench.Options) {
	header("Figures 1 & 2 — class alignment by probability threshold")
	fmt.Printf("%10s %12s %10s\n", "threshold", "precision", "classes")
	for _, p := range bench.Figures1And2(opt) {
		fmt.Printf("%10.1f %11.1f%% %10d\n", p.Threshold, 100*p.Precision, p.Count)
	}
}

func theta(opt bench.Options) {
	header("Section 6.3 — θ sweep (final scores must be invariant)")
	results := bench.ThetaSweep(opt)
	for _, r := range results {
		fmt.Printf("θ=%.3f  instances: %s  (%d relation scores)\n", r.Theta, r.Instances, len(r.RelScores))
	}
	// Compare every setting against the paper's default θ = 0.1.
	var base map[string]float64
	for _, r := range results {
		if r.Theta == 0.1 {
			base = r.RelScores
		}
	}
	for _, r := range results {
		same := len(r.RelScores) == len(base)
		maxDev := 0.0
		for k, v := range base {
			d := r.RelScores[k] - v
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
		}
		// The alignment set must be identical; score values agree up to the
		// convergence tolerance of the fixpoint (see EXPERIMENTS.md).
		same = same && maxDev < 0.02
		fmt.Printf("θ=%.3f same alignment set and scores within 0.02 of θ=0.1: %v (max dev %.4f)\n",
			r.Theta, same, maxDev)
	}
}

func allPairs(opt bench.Options) {
	header("Section 6.3 — all equalities vs maximal assignment")
	for _, r := range bench.AllPairsAblation(opt) {
		fmt.Printf("%-24s %s\n", r.Name, r.Instances)
	}
}

func negative(opt bench.Options) {
	header("Section 6.3 — negative evidence (Equation 14)")
	for _, r := range bench.NegativeEvidenceAblation(opt) {
		fmt.Printf("%-40s all: %s   restaurants only: %s\n", r.Name, r.Instances, r.Restaurants)
	}
}

func functionality(opt bench.Options) {
	header("Appendix A — global functionality definitions")
	for _, r := range bench.FunctionalityAblation(opt) {
		fmt.Printf("%-18s %s\n", r.Name, r.Instances)
	}
}
