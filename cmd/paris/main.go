// Command paris aligns two RDF ontologies with the PARIS algorithm and
// prints the discovered instance, relation, and class alignments.
//
// Usage:
//
//	paris [flags] ontology1.nt ontology2.nt
//
// Flags:
//
//	-theta      bootstrap sub-relation probability (default 0.1)
//	-iters      maximum fixpoint iterations (default 10)
//	-normalize  literal normalization: identity, alphanum, numeric
//	-negative   enable negative evidence (Equation 14)
//	-gold       optional gold-standard TSV to score the instance alignment
//	-min        minimum probability for printed alignments (default 0.1)
//	-quiet      suppress the alignment listing, print only summaries
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	paris "repro"
	"repro/internal/diskstore"
	"repro/internal/obs"
)

func main() {
	theta := flag.Float64("theta", 0.1, "bootstrap sub-relation probability θ")
	iters := flag.Int("iters", 10, "maximum fixpoint iterations")
	normalize := flag.String("normalize", "identity", "literal normalization: identity, alphanum, numeric")
	negative := flag.Bool("negative", false, "enable negative evidence (Equation 14)")
	goldPath := flag.String("gold", "", "gold-standard TSV for instance evaluation")
	savePath := flag.String("save", "", "persist the alignment into a key-value store file")
	min := flag.Float64("min", 0.1, "minimum probability for printed alignments")
	quiet := flag.Bool("quiet", false, "print summaries only")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("paris"))
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: paris [flags] ontology1.nt ontology2.nt")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var norm paris.Normalizer
	switch *normalize {
	case "identity":
		norm = nil
	case "alphanum":
		norm = paris.AlphaNum
	case "numeric":
		norm = paris.Numeric
	default:
		fatal(fmt.Errorf("unknown normalization %q", *normalize))
	}

	// Ctrl-C cancels the context; the loads abort between reads and the
	// fixpoint within one pass. Dropping the signal registration on the
	// first interrupt restores default handling, so a second Ctrl-C kills
	// the process instead of waiting out the current pass.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	s := paris.NewSession(
		paris.WithNormalizer(norm),
		paris.WithConfig(paris.Config{
			Theta:            *theta,
			MaxIterations:    *iters,
			NegativeEvidence: *negative,
		}),
	)
	t0 := time.Now()
	o1, err := s.Load(ctx, paris.FromFile(flag.Arg(0)).Named(flag.Arg(0)))
	if err != nil {
		fatal(err)
	}
	o2, err := s.Load(ctx, paris.FromFile(flag.Arg(1)).Named(flag.Arg(1)))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s\nloaded %s\n(%v)\n", o1.Stats(), o2.Stats(), time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	res, err := s.Align(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("aligned in %d iterations, %v\n", len(res.Iterations), time.Since(t1).Round(time.Millisecond))

	if !*quiet {
		fmt.Println("\n# instance alignments (maximal assignment)")
		for _, a := range res.Instances {
			if a.P < *min {
				continue
			}
			fmt.Printf("%s\t%s\t%.3f\n", o1.ResourceKey(a.X1), o2.ResourceKey(a.X2), a.P)
		}
		fmt.Println("\n# relation alignments (ontology1 ⊆ ontology2)")
		for _, ra := range paris.MaxRelAlignments(res.Relations12) {
			if ra.P < *min {
				continue
			}
			fmt.Printf("%s\t%s\t%.3f\n", o1.RelationName(ra.Sub), o2.RelationName(ra.Super), ra.P)
		}
		fmt.Println("\n# relation alignments (ontology2 ⊆ ontology1)")
		for _, ra := range paris.MaxRelAlignments(res.Relations21) {
			if ra.P < *min {
				continue
			}
			fmt.Printf("%s\t%s\t%.3f\n", o2.RelationName(ra.Sub), o1.RelationName(ra.Super), ra.P)
		}
		fmt.Println("\n# class alignments (ontology1 ⊆ ontology2)")
		for _, ca := range paris.FilterClassAlignments(res.Classes12, *min) {
			fmt.Printf("%s\t%s\t%.3f\n", o1.ResourceKey(ca.Sub), o2.ResourceKey(ca.Super), ca.P)
		}
	}

	fmt.Printf("\nsummary: %d instance, %d+%d relation, %d+%d class alignments\n",
		len(res.Instances), len(res.Relations12), len(res.Relations21),
		len(res.Classes12), len(res.Classes21))

	if *goldPath != "" {
		gold, err := paris.LoadGoldTSV(*goldPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("instance evaluation vs %s: %s\n", *goldPath, gold.Evaluate(res.InstanceMap()))
	}

	if *savePath != "" {
		kv, err := diskstore.Open(*savePath)
		if err != nil {
			fatal(err)
		}
		defer kv.Close()
		if err := diskstore.SaveResult(kv, res); err != nil {
			fatal(err)
		}
		fmt.Printf("alignment persisted to %s (%d records)\n", *savePath, kv.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paris:", err)
	os.Exit(1)
}
