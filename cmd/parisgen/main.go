// Command parisgen emits the reproduction corpora as N-Triples files plus a
// tab-separated gold standard, for use with cmd/paris or any other tool.
//
// Usage:
//
//	parisgen -corpus person|restaurant|world|movies [-seed N] [-scale F] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/obs"
)

func main() {
	corpus := flag.String("corpus", "person", "corpus to generate: person, restaurant, world, movies")
	seed := flag.Int64("seed", 42, "generator seed")
	scale := flag.Float64("scale", 1, "size multiplier for world and movies")
	out := flag.String("out", ".", "output directory")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("parisgen"))
		return
	}

	var d *gen.Dataset
	switch *corpus {
	case "person":
		d = gen.Persons(gen.PersonsConfig{Seed: *seed})
	case "restaurant":
		d = gen.Restaurants(gen.RestaurantsConfig{Seed: *seed})
	case "world":
		d = gen.World(gen.WorldConfig{
			Seed:   *seed,
			People: int(6000 * *scale), Cities: int(250 * *scale),
			Companies: int(200 * *scale), Movies: int(1500 * *scale),
			Albums: int(1200 * *scale), Books: int(1200 * *scale),
		})
	case "movies":
		d = gen.Movies(gen.MoviesConfig{
			Seed:   *seed,
			People: int(4000 * *scale), Movies: int(1500 * *scale),
		})
	default:
		fmt.Fprintf(os.Stderr, "parisgen: unknown corpus %q\n", *corpus)
		os.Exit(2)
	}

	if err := d.WriteFiles(*out); err != nil {
		fmt.Fprintln(os.Stderr, "parisgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s/%s.nt (%d triples), %s/%s.nt (%d triples), %s/gold.tsv (%d pairs)\n",
		*out, d.Name1, len(d.Triples1), *out, d.Name2, len(d.Triples2), *out, d.Gold.Len())
}
