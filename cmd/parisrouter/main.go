// Command parisrouter is the stateless scatter-gather router of a sharded
// PARIS deployment: N parisd shards (-shard i/N) each hold one
// hash-partitioned slice of the published sameAs index, and the router fans
// the /v1 read surface out to them.
//
// Usage:
//
//	parisrouter -shards http://h0:7171,http://h1:7171,http://h2:7171 [-addr :7170] [-poll 2s]
//
// The shard URLs must be in shard-index order: the i-th URL is the shard
// started with -shard i/N. The router serves:
//
//	GET  /v1/sameas     proxied verbatim to the shard owning the key
//	POST /v1/sameas     batch lookup, scatter-gathered across owning shards
//	GET  /v1/relations  proxied to shard 0 (slices carry full schema tables)
//	GET  /v1/classes    likewise
//	GET  /v1/snapshots  deployment versions; "current" is the routing epoch
//	POST /v1/refresh    advance the routing epoch (publisher hook)
//	GET  /v1/stats      router statistics
//	GET  /v1/healthz    liveness probe (process up)
//	GET  /v1/readyz     readiness probe (503 until the first epoch flip)
//	GET  /metrics       Prometheus text exposition (HTTP, per-shard fan-out, epoch, Go runtime)
//
// Incoming X-Paris-Trace headers are re-parented onto every shard
// sub-request (each fan-out leg gets its own "shard" span), so one trace ID
// ties a routed read to its shard-side span logs, and the router's flight
// recorder retains slow/errored scatter trees. -debug-addr adds a separate
// listener with /metrics, /debug/pprof, and GET /debug/traces.
//
// Publication is two-phase: a publisher splits one snapshot into per-shard
// slices and pushes them under a common ID (PUT /v1/snapshots/{id} on each
// shard), then the router flips its routing epoch — the version every
// unpinned read resolves against — only once all shards list the new ID.
// Until then readers keep resolving the previous epoch, so a publish in
// flight never produces a torn cross-shard view. The router polls the
// shards every -poll interval (and on POST /v1/refresh) to advance the
// epoch. ?snapshot=-pinned reads proxy straight through, since snapshot IDs
// are common across shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":7170", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:7169); the main listener serves /metrics regardless")
	shards := flag.String("shards", "", "comma-separated shard base URLs in shard-index order (required)")
	poll := flag.Duration("poll", 2*time.Second, "epoch refresh interval")
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: parisrouter -shards URL0,URL1,... [-addr :7170]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := shard.NewRouter(urls, shard.WithLogf(log.Printf))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		// Shards may simply not be up yet; the poll loop keeps trying.
		log.Printf("parisrouter: initial refresh: %v", err)
	}

	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*poll)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), *poll)
				if _, err := rt.Refresh(ctx); err != nil {
					log.Printf("parisrouter: refresh: %v", err)
				}
				cancel()
			}
		}
	}()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(rt.MetricsRegistry(), rt.Recorder()),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("parisrouter: debug listener (metrics + pprof + traces) on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("parisrouter: debug listener: %v", err)
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("parisrouter: listening on %s, routing %d shard(s), epoch %q",
			*addr, rt.Shards(), rt.Epoch())
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("parisrouter: %v, shutting down", s)
	}
	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("parisrouter: HTTP shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
}
