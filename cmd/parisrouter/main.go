// Command parisrouter is the stateless scatter-gather router of a sharded
// PARIS deployment: N parisd shards (-shard i/N) each hold one
// hash-partitioned slice of the published sameAs index, and the router fans
// the /v1 read surface out to them.
//
// Usage:
//
//	parisrouter -shards http://h0:7171,http://h1:7171,http://h2:7171 [-addr :7170] [-poll 2s]
//
// The shard URLs must be in shard-index order: the i-th URL is the shard
// started with -shard i/N. Each shard may be a replica set — separate
// groups with ";" and a group's replicas with ",":
//
//	parisrouter -shards "http://a0:7171,http://a1:7171;http://b0:7171,http://b1:7171"
//
// Every replica of group i serves slice i; reads pick a healthy replica,
// hedge to a second one once the route's latency budget expires (-hedge, or
// adaptively from the route's sliding p99, floored at 1ms), and fail over
// on transport error, so a one-replica-down group keeps serving.
// -rate-limit N throttles each client (first X-Forwarded-For hop, else the
// remote address) to N requests/second with burst -rate-burst, answering
// 429 with Retry-After past it. The router serves:
//
//	GET  /v1/sameas     proxied verbatim to the shard owning the key
//	POST /v1/sameas     batch lookup, scatter-gathered across owning shards
//	GET  /v1/relations  proxied to shard 0 (slices carry full schema tables)
//	GET  /v1/classes    likewise
//	GET  /v1/snapshots  deployment versions; "current" is the routing epoch
//	POST /v1/refresh    advance the routing epoch (publisher hook)
//	GET  /v1/stats      router statistics
//	GET  /v1/fleet/metrics  every replica's /metrics federated into one
//	                    exposition with instance/group/replica labels,
//	                    fleet:-summed counters, and paris_fleet_up per target
//	GET  /v1/fleet/stats    JSON fleet rollup: per-replica health, snapshot,
//	                    heap, goroutines, traffic, hedge/failover totals
//	GET  /v1/slo        burn-rate report for the router's route families;
//	                    ?fleet=1 merges every replica's report fleet-wide
//	GET  /v1/healthz    liveness probe (process up)
//	GET  /v1/readyz     readiness probe (503 until the first epoch flip)
//	GET  /metrics       Prometheus text exposition (HTTP, per-shard fan-out, epoch, Go runtime)
//
// Incoming X-Paris-Trace headers are re-parented onto every shard
// sub-request (each fan-out leg gets its own "shard" span), so one trace ID
// ties a routed read to its shard-side span logs, and the router's flight
// recorder retains slow/errored scatter trees. GET /debug/traces serves the
// retained trees; ?fleet=1 stitches each one cross-process — the router
// fans the trace ID out to the replicas that participated
// (GET /debug/traces/{trace} on each) and re-assembles a single tree with
// every span tagged by origin instance. -debug-addr adds a separate
// listener with /metrics, /debug/pprof, and the same trace surfaces.
//
// Publication is two-phase: a publisher splits one snapshot into per-shard
// slices and pushes them under a common ID (PUT /v1/snapshots/{id} on each
// shard), then the router flips its routing epoch — the version every
// unpinned read resolves against — only once all shards list the new ID.
// Until then readers keep resolving the previous epoch, so a publish in
// flight never produces a torn cross-shard view. The router polls the
// shards every -poll interval (and on POST /v1/refresh) to advance the
// epoch. ?snapshot=-pinned reads proxy straight through, since snapshot IDs
// are common across shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":7170", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /metrics and /debug/pprof (e.g. 127.0.0.1:7169); the main listener serves /metrics regardless")
	shards := flag.String("shards", "", `shard topology in shard-index order (required): ","-separated URLs, or ";"-separated replica groups of ","-separated URLs`)
	poll := flag.Duration("poll", 2*time.Second, "epoch refresh interval")
	hedgeDelay := flag.Duration("hedge", 0, "fixed hedge latency budget (0 = adaptive: the route's sliding p99, floored at 1ms)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client sustained requests/second (0 = no rate limiting)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst size (0 = 2x the rate)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("parisrouter"))
		return
	}
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: parisrouter -shards 'URL0,URL1,...' or 'URL0a,URL0b;URL1a,URL1b' [-addr :7170]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	opts := []shard.RouterOption{shard.WithLogf(log.Printf)}
	if *hedgeDelay > 0 {
		opts = append(opts, shard.WithHedgeDelay(*hedgeDelay))
	}
	if *rateLimit > 0 {
		opts = append(opts, shard.WithRateLimit(*rateLimit, *rateBurst))
	}
	rt, err := shard.NewRouter(shard.SplitTopology(*shards), opts...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		// Shards may simply not be up yet; the poll loop keeps trying.
		log.Printf("parisrouter: initial refresh: %v", err)
	}

	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*poll)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), *poll)
				if _, err := rt.Refresh(ctx); err != nil {
					log.Printf("parisrouter: refresh: %v", err)
				}
				cancel()
			}
		}
	}()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           rt.DebugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("parisrouter: debug listener (metrics + pprof + traces) on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("parisrouter: debug listener: %v", err)
			}
		}()
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("parisrouter: listening on %s, routing %d shard(s), epoch %q",
			*addr, rt.Shards(), rt.Epoch())
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("parisrouter: %v, shutting down", s)
	}
	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("parisrouter: HTTP shutdown: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
}
