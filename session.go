package paris

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/ingest"
	"repro/internal/store"
)

// Session errors.
var (
	// ErrTooManySources is returned by Session.Load and Session.Use when
	// the session already holds two ontologies.
	ErrTooManySources = errors.New("paris: session already holds two ontologies")
	// ErrNotReady is returned by Session.Align before two ontologies have
	// been loaded.
	ErrNotReady = errors.New("paris: session needs two loaded ontologies to align")
)

// LiteralTableError reports two ontologies that do not share a literal
// table — the invariant behind the paper's clamped literal equality
// (Section 5.3). Session.Use returns it; the deprecated free functions
// panic with its message instead.
type LiteralTableError = core.LiteralTableError

// Source describes one knowledge-base input for Session.Load: either a
// file path (FromFile) or an arbitrary reader (FromReader).
type Source struct {
	path   string
	reader io.Reader
	name   string
	format string
}

// FromFile names an RDF file to load. The format is chosen by extension
// (.nt/.ntriples, .ttl/.turtle, optionally .gz-compressed) and the
// ontology's display name is derived from the base name, like LoadFile.
func FromFile(path string) Source {
	return Source{path: path, name: store.BaseName(path)}
}

// FromReader wraps an RDF stream. name is the ontology's display name;
// format selects the parser like a file extension (".nt", ".ttl",
// ".nt.gz", …; the leading dot may be omitted). The session does not close
// r.
func FromReader(name, format string, r io.Reader) Source {
	if format != "" && !strings.HasPrefix(format, ".") {
		format = "." + format
	}
	return Source{reader: r, name: name, format: format}
}

// Named returns a copy of the source with the ontology display name
// overridden.
func (s Source) Named(name string) Source {
	s.name = name
	return s
}

// Session is the context-aware alignment API: it owns the shared literal
// table, loads up to two ontologies, and runs the PARIS fixpoint with
// cancellation, progress streaming, and errors instead of panics.
//
//	s := paris.NewSession(paris.WithNormalizer(paris.AlphaNum))
//	if _, err := s.Load(ctx, paris.FromFile("kb1.nt")); err != nil { … }
//	if _, err := s.Load(ctx, paris.FromFile("kb2.nt.gz")); err != nil { … }
//	res, err := s.Align(ctx)
//
// A Session is not safe for concurrent use; run concurrent alignments in
// separate sessions.
type Session struct {
	cfg          Config
	norm         Normalizer
	progress     func(IterationStats)
	loadProgress func(LoadProgress)
	ingestWork   int
	ingestBudget int64
	singleShot   bool
	lits         *Literals
	litsSet      bool // lits pinned by WithLiterals (or adopted by the first Use)
	ontos        []*Ontology

	// last is the most recent completed Align or Realign result; Realign
	// snapshots it lazily to warm-start, so Align pays nothing for
	// sessions that never realign.
	last *Result
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithConfig sets the alignment configuration (the zero Config is the
// paper's defaults).
func WithConfig(cfg Config) SessionOption {
	return func(s *Session) { s.cfg = cfg }
}

// WithNormalizer applies a literal normalizer (for example AlphaNum) to
// every ontology the session loads — both sides automatically normalize
// identically, the invariant the free functions left to the caller.
func WithNormalizer(norm Normalizer) SessionOption {
	return func(s *Session) { s.norm = norm }
}

// WithProgress streams one IterationStats per completed fixpoint iteration
// during Align, on the Align goroutine. It composes with (and runs before)
// any Config.OnIteration callback.
func WithProgress(fn func(IterationStats)) SessionOption {
	return func(s *Session) { s.progress = fn }
}

// LoadProgress is the cumulative per-block state of a streaming load:
// consumed blocks and bytes, parsed and skipped triples, and spill counters
// (see internal/ingest).
type LoadProgress = ingest.Progress

// WithLoadProgress streams the cumulative ingest counters after every
// parsed block during Session.Load — the load-phase sibling of
// WithProgress, which streams per-iteration fixpoint statistics during
// Align. Calls are serialized, on a pipeline goroutine.
func WithLoadProgress(fn func(LoadProgress)) SessionOption {
	return func(s *Session) { s.loadProgress = fn }
}

// WithIngestWorkers sets the parse parallelism of streaming loads (default
// min(GOMAXPROCS, 8)).
func WithIngestWorkers(n int) SessionOption {
	return func(s *Session) { s.ingestWork = n }
}

// WithIngestBudget bounds the memory the streaming loader buffers before
// spilling sorted triple runs to temp segments (default 256 MiB).
func WithIngestBudget(bytes int64) SessionOption {
	return func(s *Session) { s.ingestBudget = bytes }
}

// WithSingleShotLoad restores the sequential in-memory load path for
// N-Triples sources (Turtle always uses it). The streaming pipeline
// produces bit-identical ontologies, so this exists for debugging and
// comparison, not correctness.
func WithSingleShotLoad() SessionOption {
	return func(s *Session) { s.singleShot = true }
}

// WithLiterals makes the session intern into an existing literal table
// instead of a fresh one, for interop with ontologies built directly
// through NewBuilder.
func WithLiterals(lits *Literals) SessionOption {
	return func(s *Session) { s.lits, s.litsSet = lits, true }
}

// NewSession returns an empty alignment session holding a fresh shared
// literal table.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{lits: store.NewLiterals()}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Load parses one knowledge base into the session (the first call loads
// ontology 1, the second ontology 2) and returns the frozen ontology.
// N-Triples sources load through the streaming parallel pipeline
// (internal/ingest): block-parallel parsing under a memory budget, spilling
// sorted runs to temp segments when a dump outgrows it, with per-block
// progress through WithLoadProgress. The context cancels a long load per
// block, so multi-GB dumps do not have to parse to completion after the
// caller has given up, and any temp segments are removed.
func (s *Session) Load(ctx context.Context, src Source) (*Ontology, error) {
	if len(s.ontos) >= 2 {
		return nil, ErrTooManySources
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var r io.Reader
	format := src.format
	if src.path != "" {
		f, err := os.Open(src.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r, format = f, src.path
	} else if src.reader != nil {
		r = src.reader
	} else {
		return nil, errors.New("paris: empty source (use FromFile or FromReader)")
	}
	var opts []store.LoadOption
	if !s.singleShot {
		opts = append(opts, store.WithParallelism(s.ingestWork), store.WithMemoryBudget(s.ingestBudget))
		if s.loadProgress != nil {
			opts = append(opts, store.WithLoadProgress(s.loadProgress))
		}
	}
	o, err := store.LoadReaderContext(ctx, r, format, src.name, s.lits, s.norm, opts...)
	if err != nil {
		return nil, err
	}
	s.ontos = append(s.ontos, o)
	return o, nil
}

// Use adopts an already-built ontology (for example from a Builder or a
// dataset generator) as the session's next side. The ontology must share
// the session's literal table; the first Use of a fresh session adopts the
// ontology's table instead, so a pair built outside the session aligns
// without ceremony. A mismatch is reported as a *LiteralTableError.
func (s *Session) Use(o *Ontology) error {
	if len(s.ontos) >= 2 {
		return ErrTooManySources
	}
	if !s.litsSet && len(s.ontos) == 0 {
		s.lits, s.litsSet = o.Literals(), true
	}
	if o.Literals() != s.lits {
		// Name the conflicting side: the first loaded ontology, or the
		// table installed by WithLiterals when nothing is loaded yet.
		name1 := "session literal table"
		if len(s.ontos) > 0 {
			name1 = s.ontos[0].Name()
		}
		return &LiteralTableError{O1: name1, O2: o.Name()}
	}
	s.ontos = append(s.ontos, o)
	return nil
}

// Ontology1 returns the first loaded ontology, or nil.
func (s *Session) Ontology1() *Ontology { return s.ontoAt(0) }

// Ontology2 returns the second loaded ontology, or nil.
func (s *Session) Ontology2() *Ontology { return s.ontoAt(1) }

func (s *Session) ontoAt(i int) *Ontology {
	if i < len(s.ontos) {
		return s.ontos[i]
	}
	return nil
}

// Align runs the full PARIS fixpoint over the two loaded ontologies. The
// context is checked between every pass (instance, sub-relation, subclass),
// so cancellation or a deadline aborts the run within one pass; Align then
// returns the context's error and no result. A completed Align records its
// result as the warm-start state for Realign.
func (s *Session) Align(ctx context.Context) (*Result, error) {
	a, err := s.Aligner()
	if err != nil {
		return nil, err
	}
	res, err := a.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	s.last = res
	return res, nil
}

// Delta is a batch of triple additions for Session.Realign: Add1 extends the
// first loaded ontology, Add2 the second. Deletions are not supported.
type Delta struct {
	Add1, Add2 []Triple
}

// Realign ingests the delta into the session's ontologies in place and
// re-runs the fixpoint warm-started from the last Align or Realign result,
// so a small delta converges in a fraction of the passes a fresh Align
// needs. Without a prior result the run is a cold Align over the extended
// ontologies. Schema additions (rdfs:subClassOf, rdfs:subPropertyOf) are
// rejected; rebuild a new session for those.
//
// On success the result becomes the warm-start state for the next Realign.
// On failure the ontologies may hold a partially applied delta and the
// session keeps its previous warm-start state.
func (s *Session) Realign(ctx context.Context, d Delta) (*Result, error) {
	if len(s.ontos) != 2 {
		return nil, ErrNotReady
	}
	// Snapshot before the delta mutates the ontologies; resource IDs stay
	// valid (ApplyDelta only appends), so the keys resolve identically.
	var prior *core.ResultSnapshot
	if s.last != nil {
		prior = s.last.Snapshot()
	}
	res, _, err := incremental.Realign(ctx, s.ontos[0], s.ontos[1],
		incremental.Delta{Add1: d.Add1, Add2: d.Add2}, prior, s.config())
	if err != nil {
		return nil, err
	}
	s.last = res
	return res, nil
}

// Aligner returns a fresh step-by-step aligner over the session's two
// ontologies, for per-iteration inspection or custom convergence policies;
// drive it with StepContext or RunContext. Most callers should use Align.
func (s *Session) Aligner() (*Aligner, error) {
	if len(s.ontos) != 2 {
		return nil, ErrNotReady
	}
	return core.NewChecked(s.ontos[0], s.ontos[1], s.config())
}

// config resolves the session's alignment configuration, composing the
// WithProgress callback with any user Config.OnIteration.
func (s *Session) config() Config {
	cfg := s.cfg
	if s.progress != nil {
		progress, user := s.progress, cfg.OnIteration
		cfg.OnIteration = func(it int, a *Aligner) {
			if its := a.Iterations(); len(its) > 0 {
				progress(its[len(its)-1])
			}
			if user != nil {
				user(it, a)
			}
		}
	}
	return cfg
}

// AlignContext runs the full fixpoint over two prebuilt ontologies with
// cancellation, the context-aware replacement for the deprecated Align free
// function. A literal-table mismatch is reported as a *LiteralTableError
// instead of a panic.
func AlignContext(ctx context.Context, o1, o2 *Ontology, cfg Config) (*Result, error) {
	a, err := core.NewChecked(o1, o2, cfg)
	if err != nil {
		return nil, err
	}
	return a.RunContext(ctx)
}
