package paris

// Tests for the context-aware Session API: source loading (paths, readers,
// gzip), the shared-literal-table invariant, cancellation, and progress
// streaming.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The kb1/kb2 documents of paris_test.go serve as the two sides here too.

func writeKB(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSessionAlignFromFiles(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	o1, err := s.Load(ctx, FromFile(writeKB(t, "kb1.nt", kb1)))
	if err != nil {
		t.Fatal(err)
	}
	if o1.Name() != "kb1" {
		t.Fatalf("derived name = %q, want kb1", o1.Name())
	}
	if _, err := s.Load(ctx, FromFile(writeKB(t, "kb2.nt", kb2))); err != nil {
		t.Fatal(err)
	}
	res, err := s.Align(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 || res.Instances[0].P != 1 {
		t.Fatalf("alignment = %v", res.Instances)
	}
	if s.Ontology1() != o1 || s.Ontology2() == nil {
		t.Fatal("session does not expose its loaded ontologies")
	}
}

func TestSessionLoadFromReader(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	if _, err := s.Load(ctx, FromReader("left", "nt", strings.NewReader(kb1))); err != nil {
		t.Fatal(err)
	}
	// The leading dot is optional; with it works too.
	if _, err := s.Load(ctx, FromReader("right", ".nt", strings.NewReader(kb2))); err != nil {
		t.Fatal(err)
	}
	res, err := s.Align(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("alignment = %v", res.Instances)
	}
}

func TestSessionSourceErrors(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	if _, err := s.Load(ctx, Source{}); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := s.Load(ctx, FromFile(filepath.Join(t.TempDir(), "absent.nt"))); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := s.Load(ctx, FromReader("x", "rdfxml", strings.NewReader(kb1))); err == nil {
		t.Error("unsupported format accepted")
	}
	// Align before two loads.
	if _, err := s.Align(ctx); !errors.Is(err, ErrNotReady) {
		t.Errorf("Align on empty session = %v, want ErrNotReady", err)
	}
	// A third load is refused.
	for _, doc := range []string{kb1, kb2} {
		if _, err := s.Load(ctx, FromReader("kb", "nt", strings.NewReader(doc))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Load(ctx, FromReader("extra", "nt", strings.NewReader(kb1))); !errors.Is(err, ErrTooManySources) {
		t.Errorf("third load = %v, want ErrTooManySources", err)
	}
}

func TestSessionLoadCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession()
	if _, err := s.Load(ctx, FromReader("kb", "nt", strings.NewReader(kb1))); !errors.Is(err, context.Canceled) {
		t.Fatalf("Load under canceled ctx = %v, want context.Canceled", err)
	}
}

func TestSessionAlignCanceled(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	for _, doc := range []string{kb1, kb2} {
		if _, err := s.Load(ctx, FromReader("kb", "nt", strings.NewReader(doc))); err != nil {
			t.Fatal(err)
		}
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Align(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Align under canceled ctx = %v, want context.Canceled", err)
	}
	// The session is still usable with a live context.
	if _, err := s.Align(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSessionUseAdoptsLiteralTable(t *testing.T) {
	// Ontologies built outside the session align through Use without
	// pre-arranging the session's literal table.
	lits := NewLiterals()
	build := func(name, doc string) *Ontology {
		t.Helper()
		triples, err := ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(name, lits, nil)
		if err := b.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}
	o1, o2 := build("o1", kb1), build("o2", kb2)
	s := NewSession()
	if err := s.Use(o1); err != nil {
		t.Fatal(err)
	}
	if err := s.Use(o2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Align(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A foreign literal table is a typed error.
	foreign := NewBuilder("o3", NewLiterals(), nil).Build()
	s2 := NewSession()
	if err := s2.Use(o1); err != nil {
		t.Fatal(err)
	}
	var lte *LiteralTableError
	if err := s2.Use(foreign); !errors.As(err, &lte) {
		t.Fatalf("Use with foreign table = %v, want *LiteralTableError", err)
	}
}

func TestSessionProgressStreaming(t *testing.T) {
	var progressed []int
	var viaConfig []int
	s := NewSession(
		WithProgress(func(st IterationStats) { progressed = append(progressed, st.Iteration) }),
		WithConfig(Config{
			MaxIterations: 3,
			Convergence:   -1,
			OnIteration:   func(it int, _ *Aligner) { viaConfig = append(viaConfig, it) },
		}),
	)
	ctx := context.Background()
	for _, doc := range []string{kb1, kb2} {
		if _, err := s.Load(ctx, FromReader("kb", "nt", strings.NewReader(doc))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Align(ctx); err != nil {
		t.Fatal(err)
	}
	if len(progressed) != 3 || progressed[0] != 1 || progressed[2] != 3 {
		t.Fatalf("progress iterations = %v, want [1 2 3]", progressed)
	}
	if len(viaConfig) != 3 {
		t.Fatalf("Config.OnIteration saw %v, want 3 calls (composed with WithProgress)", viaConfig)
	}
}

func TestSessionNormalizerAppliesToBothSides(t *testing.T) {
	// Literals differing only in case and punctuation align under the
	// session-wide AlphaNum normalizer.
	left := `<http://a/x> <http://a/email> "X @ EXAMPLE.COM" .` + "\n"
	right := `<http://b/x> <http://b/mail> "x@example.com" .` + "\n"
	s := NewSession(WithNormalizer(AlphaNum))
	ctx := context.Background()
	for i, doc := range []string{left, right} {
		if _, err := s.Load(ctx, FromReader("kb", "nt", strings.NewReader(doc))); err != nil {
			t.Fatal(i, err)
		}
	}
	res, err := s.Align(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("normalized alignment = %v", res.Instances)
	}
}

func TestAlignContext(t *testing.T) {
	lits := NewLiterals()
	build := func(name, doc string) *Ontology {
		t.Helper()
		triples, err := ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(name, lits, nil)
		if err := b.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}
	o1, o2 := build("o1", kb1), build("o2", kb2)
	res, err := AlignContext(context.Background(), o1, o2, Config{})
	if err != nil || len(res.Instances) != 1 {
		t.Fatalf("AlignContext = %v, %v", res, err)
	}
	// Mismatched tables: typed error, no panic.
	foreign := NewBuilder("o3", NewLiterals(), nil).Build()
	var lte *LiteralTableError
	if _, err := AlignContext(context.Background(), o1, foreign, Config{}); !errors.As(err, &lte) {
		t.Fatalf("AlignContext mismatch = %v, want *LiteralTableError", err)
	}
}

// TestSessionRealign: after an Align, Realign ingests matching deltas into
// both sides and warm-starts from the previous result, aligning the new pair
// without losing the old one; an empty delta is a no-op that re-converges in
// one pass.
func TestSessionRealign(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	if _, err := s.Load(ctx, FromFile(writeKB(t, "kb1.nt", kb1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ctx, FromFile(writeKB(t, "kb2.nt", kb2))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Align(ctx); err != nil {
		t.Fatal(err)
	}

	add1, err := ParseNTriples(`<http://a.org/cash> <http://a.org/email> "johnny@cash.com" .`)
	if err != nil {
		t.Fatal(err)
	}
	add2, err := ParseNTriples(`<http://b.org/johnny> <http://b.org/mail> "johnny@cash.com" .`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Realign(ctx, Delta{Add1: add1, Add2: add2})
	if err != nil {
		t.Fatal(err)
	}
	m := res.InstanceMap()
	if m["<http://a.org/elvis>"] != "<http://b.org/presley>" {
		t.Fatalf("original pair lost after realign: %v", m)
	}
	if m["<http://a.org/cash>"] != "<http://b.org/johnny>" {
		t.Fatalf("delta pair not aligned: %v", m)
	}

	// Empty delta: same assignments again, single warm pass.
	res2, err := s.Realign(ctx, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Iterations) != 1 {
		t.Fatalf("empty-delta realign took %d passes, want 1", len(res2.Iterations))
	}
	m2 := res2.InstanceMap()
	if m2["<http://a.org/cash>"] != "<http://b.org/johnny>" || len(m2) != len(m) {
		t.Fatalf("empty-delta realign moved assignments: %v vs %v", m2, m)
	}
}

// TestSessionRealignWithoutAlign: Realign on a never-aligned session is a
// cold run over the extended ontologies.
func TestSessionRealignWithoutAlign(t *testing.T) {
	ctx := context.Background()
	s := NewSession()
	if _, err := s.Load(ctx, FromFile(writeKB(t, "kb1.nt", kb1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ctx, FromFile(writeKB(t, "kb2.nt", kb2))); err != nil {
		t.Fatal(err)
	}
	res, err := s.Realign(ctx, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InstanceMap()["<http://a.org/elvis>"] != "<http://b.org/presley>" {
		t.Fatalf("cold realign missed the pair: %v", res.InstanceMap())
	}

	// Not ready without two ontologies.
	if _, err := NewSession().Realign(ctx, Delta{}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Realign on empty session = %v, want ErrNotReady", err)
	}
}

// TestSessionLoadProgressAndIngestOptions: session loads run through the
// streaming pipeline by default — WithLoadProgress observes per-block
// counters, the ingest knobs are accepted, and the result matches a
// single-shot load.
func TestSessionLoadProgressAndIngestOptions(t *testing.T) {
	ctx := context.Background()
	var events []LoadProgress
	s := NewSession(
		WithLoadProgress(func(p LoadProgress) { events = append(events, p) }),
		WithIngestWorkers(2),
		WithIngestBudget(1<<20),
	)
	if _, err := s.Load(ctx, FromReader("left", "nt", strings.NewReader(kb1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ctx, FromReader("right", "nt", strings.NewReader(kb2))); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("WithLoadProgress saw no blocks")
	}
	last := events[len(events)-1]
	if last.Triples == 0 || last.Blocks == 0 {
		t.Fatalf("final load progress = %+v", last)
	}
	res, err := s.Align(ctx)
	if err != nil {
		t.Fatal(err)
	}

	single := NewSession(WithSingleShotLoad())
	if _, err := single.Load(ctx, FromReader("left", "nt", strings.NewReader(kb1))); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Load(ctx, FromReader("right", "nt", strings.NewReader(kb2))); err != nil {
		t.Fatal(err)
	}
	resSingle, err := single.Align(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(resSingle.Instances) {
		t.Fatalf("pipeline vs single-shot: %d vs %d assignments", len(res.Instances), len(resSingle.Instances))
	}
}
