package paris

// One benchmark per table and figure of the paper's evaluation section (see
// DESIGN.md Section 4). Each benchmark runs the same workload as the
// corresponding cmd/parisbench experiment, so `go test -bench=.` times every
// reproduced artifact. Corpora are generated once per benchmark and the
// aligner runs once per b.N iteration.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"runtime/debug"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/ingest"
	"repro/internal/literal"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
)

// benchOpt keeps the default benchmark corpora moderate so the full suite
// runs in minutes.
var benchOpt = bench.Options{Seed: 42, Scale: 0.25}

func benchmarkAlign(b *testing.B, d *gen.Dataset, norm store.Normalizer, cfg core.Config) {
	b.Helper()
	o1, o2, err := d.Build(norm)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.New(o1, o2, cfg).Run()
		if len(res.Instances) == 0 {
			b.Fatal("alignment produced nothing")
		}
	}
}

// BenchmarkTable1_Person times the OAEI person reproduction (Table 1).
func BenchmarkTable1_Person(b *testing.B) {
	benchmarkAlign(b, gen.Persons(gen.PersonsConfig{Seed: benchOpt.Seed}), nil, core.Config{})
}

// BenchmarkTable1_Restaurant times the OAEI restaurant reproduction (Table 1).
func BenchmarkTable1_Restaurant(b *testing.B) {
	benchmarkAlign(b, gen.Restaurants(gen.RestaurantsConfig{Seed: benchOpt.Seed}), nil, core.Config{})
}

// BenchmarkTable2_CorpusBuild times ontology construction (dictionary
// interning, closure, indexes, functionalities) for the Table 2 statistics.
func BenchmarkTable2_CorpusBuild(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: benchOpt.Seed, People: 1500, Cities: 60,
		Companies: 50, Movies: 400, Albums: 300, Books: 300})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Build(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_WorldAlignment times the YAGO-vs-DBpedia-style alignment
// (Table 3) at benchmark scale.
func BenchmarkTable3_WorldAlignment(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: benchOpt.Seed, People: 1500, Cities: 60,
		Companies: 50, Movies: 400, Albums: 300, Books: 300})
	benchmarkAlign(b, d, nil, core.Config{})
}

// BenchmarkTable4_RelationAlignments times extraction of the showcased
// relation alignments (Table 4): a full run plus the maximal reduction.
func BenchmarkTable4_RelationAlignments(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: benchOpt.Seed, People: 1500, Cities: 60,
		Companies: 50, Movies: 400, Albums: 300, Books: 300})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.New(o1, o2, core.Config{}).Run()
		if len(core.MaxRelAlignments(res.Relations12)) == 0 {
			b.Fatal("no relation alignments")
		}
	}
}

// BenchmarkTable5_MovieAlignment times the YAGO-vs-IMDb-style alignment
// (Table 5).
func BenchmarkTable5_MovieAlignment(b *testing.B) {
	d := gen.Movies(gen.MoviesConfig{Seed: benchOpt.Seed, People: 1200, Movies: 400})
	benchmarkAlign(b, d, nil, core.Config{})
}

// BenchmarkTable5_LabelBaseline times the rdfs:label baseline the paper
// compares against in Section 6.4.
func BenchmarkTable5_LabelBaseline(b *testing.B) {
	d := gen.Movies(gen.MoviesConfig{Seed: benchOpt.Seed, People: 1200, Movies: 400})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := d.Gold.Evaluate(baseline.LabelMatch(o1, o2, baseline.Config{}))
		if m.Precision == 0 {
			b.Fatal("baseline matched nothing")
		}
	}
}

// BenchmarkFigure1_ClassPrecisionByThreshold times the Figure 1 sweep:
// class-alignment scoring across nine thresholds after one alignment run.
func BenchmarkFigure1_ClassPrecisionByThreshold(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: benchOpt.Seed, People: 1500, Cities: 60,
		Companies: 50, Movies: 400, Albums: 300, Books: 300})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			bench.EvalClasses(o1, o2, res.Classes12, d.ClassGold, th)
		}
	}
}

// BenchmarkFigure2_ClassCountByThreshold times the Figure 2 sweep: counting
// aligned classes per threshold.
func BenchmarkFigure2_ClassCountByThreshold(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: benchOpt.Seed, People: 1500, Cities: 60,
		Companies: 50, Movies: 400, Albums: 300, Books: 300})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			bench.CountClassAlignments(res.Classes12, th)
		}
	}
}

// BenchmarkAblation_ThetaSweep times one non-default θ run (Section 6.3).
func BenchmarkAblation_ThetaSweep(b *testing.B) {
	benchmarkAlign(b, gen.Restaurants(gen.RestaurantsConfig{Seed: benchOpt.Seed}),
		nil, core.Config{Theta: 0.05})
}

// BenchmarkAblation_AllPairs times the all-equalities mode (Section 6.3),
// the paper's slower design alternative.
func BenchmarkAblation_AllPairs(b *testing.B) {
	benchmarkAlign(b, gen.Restaurants(gen.RestaurantsConfig{Seed: benchOpt.Seed}),
		nil, core.Config{AllEqualities: true})
}

// BenchmarkAblation_NegativeEvidence times the Equation (14) configuration
// with normalized literals (Section 6.3).
func BenchmarkAblation_NegativeEvidence(b *testing.B) {
	benchmarkAlign(b, gen.Restaurants(gen.RestaurantsConfig{Seed: benchOpt.Seed}),
		literal.AlphaNum, core.Config{NegativeEvidence: true})
}

// BenchmarkAblation_Functionality times a run under the arithmetic-mean
// functionality of Appendix A.
func BenchmarkAblation_Functionality(b *testing.B) {
	d := gen.Movies(gen.MoviesConfig{Seed: benchOpt.Seed, People: 1200, Movies: 400})
	benchmarkAlign(b, d, nil, core.Config{FunMode: store.FunArithmeticMean})
}

// BenchmarkIncrementalRealign compares a cold fixpoint over the merged world
// KB against delta ingestion plus a warm-started fixpoint (ISSUE 3): the
// delta is ≤1% of the fact triples, so the warm run converges in a fraction
// of the cold passes. Both sub-benchmarks report their pass count as the
// "passes" metric.
func BenchmarkIncrementalRealign(b *testing.B) {
	d := gen.World(gen.WorldConfig{Seed: 1, People: 500, Cities: 50,
		Companies: 40, Movies: 150, Albums: 100, Books: 100})

	// Hold out one in 150 of each side's plain fact triples (≈0.7%) as the
	// delta; schema and first-per-predicate facts stay in the base.
	split := func(triples []rdf.Triple) (base, held []rdf.Triple) {
		perPred := map[string]int{}
		for _, t := range triples {
			switch t.Predicate.Value {
			case rdf.RDFType, rdf.RDFSSubClassOf, rdf.RDFSSubPropertyOf:
				base = append(base, t)
				continue
			}
			n := perPred[t.Predicate.Value]
			perPred[t.Predicate.Value] = n + 1
			if n > 0 && n%150 == 0 {
				held = append(held, t)
			} else {
				base = append(base, t)
			}
		}
		return base, held
	}
	base1, add1 := split(d.Triples1)
	base2, add2 := split(d.Triples2)
	delta := incremental.Delta{Add1: add1, Add2: add2}
	buildPair := func(t1, t2 []rdf.Triple) (*store.Ontology, *store.Ontology) {
		lits := store.NewLiterals()
		b1 := store.NewBuilder(d.Name1, lits, nil)
		if err := b1.AddAll(t1); err != nil {
			b.Fatal(err)
		}
		b2 := store.NewBuilder(d.Name2, lits, nil)
		if err := b2.AddAll(t2); err != nil {
			b.Fatal(err)
		}
		return b1.Build(), b2.Build()
	}

	b.Run("cold", func(b *testing.B) {
		o1, o2, err := d.Build(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		passes := 0
		for i := 0; i < b.N; i++ {
			res := core.New(o1, o2, core.Config{}).Run()
			passes = len(res.Iterations)
		}
		b.ReportMetric(float64(passes), "passes")
	})

	b.Run("warm", func(b *testing.B) {
		bo1, bo2 := buildPair(base1, base2)
		prior := core.New(bo1, bo2, core.Config{}).Run().Snapshot()
		b.ReportAllocs()
		b.ResetTimer()
		passes := 0
		for i := 0; i < b.N; i++ {
			// ApplyDelta mutates, so each iteration realigns against a
			// freshly rebuilt base pair; only ingestion + warm fixpoint
			// are timed.
			b.StopTimer()
			o1, o2 := buildPair(base1, base2)
			b.StartTimer()
			_, stats, err := incremental.Realign(context.Background(), o1, o2, delta, prior, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			passes = stats.Passes
		}
		b.ReportMetric(float64(passes), "passes")
	})
}

// newLookupServer aligns the persons corpus, publishes the snapshot, and
// returns the handler plus the gold pairs, shared by the sameAs lookup
// benchmarks.
func newLookupServer(b *testing.B) (http.Handler, [][2]string) {
	b.Helper()
	d := gen.Persons(gen.PersonsConfig{Seed: benchOpt.Seed})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	srv, err := server.New(server.Options{StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	if _, err := srv.PublishResult(res); err != nil {
		b.Fatal(err)
	}
	return srv.Handler(), d.Gold.Pairs()
}

// BenchmarkSameAsLookup times the alignment service's hot read path: exact
// /v1/sameas lookups through the HTTP handler against a published snapshot,
// run in parallel, so future PRs can track read-path latency alongside
// alignment throughput.
func BenchmarkSameAsLookup(b *testing.B) {
	h, pairs := newLookupServer(b)
	urls := make([]string, len(pairs))
	for i, p := range pairs {
		urls[i] = "/v1/sameas?kb=1&key=" + url.QueryEscape(p[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, urls[i%len(urls)], nil))
			if w.Code != http.StatusOK {
				// Errorf, not Fatalf: FailNow must not run on a
				// RunParallel worker goroutine.
				b.Errorf("lookup %s: %d", urls[i%len(urls)], w.Code)
				return
			}
			i++
		}
	})
}

// BenchmarkSameAsLookupBatch times the batch read path (POST /v1/sameas):
// all gold keys in one request per iteration. Comparing its per-key cost
// against BenchmarkSameAsLookup shows what the batch endpoint amortizes.
func BenchmarkSameAsLookupBatch(b *testing.B) {
	h, pairs := newLookupServer(b)
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p[0]
	}
	body, err := json.Marshal(map[string]any{"kb": "1", "keys": keys})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/sameas", bytes.NewReader(body))
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Errorf("batch lookup: %d %s", w.Code, w.Body.String())
				return
			}
		}
	})
}

// BenchmarkQueryEngine times conjunctive queries over the aligned movies
// union KB (ISSUE 7) with a warm plan cache, as the serving path answers
// after the first request of a shape: a single-pattern scan and a cross-KB
// join through sameAs clusters that neither source KB answers alone.
func BenchmarkQueryEngine(b *testing.B) {
	const (
		ykb = "http://ykbfilm.example.org/"
		ikb = "http://ikb.example.org/"
	)
	d := gen.Movies(gen.MoviesConfig{Seed: benchOpt.Seed, People: 1200, Movies: 400})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	kb, err := query.Build(o1, o2, res.Snapshot(), query.Options{})
	if err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(kb, 0)
	ctx := context.Background()
	for _, bm := range []struct{ name, src string }{
		{"single", `?d <` + ykb + `directed> ?m`},
		{"join", `?d <` + ykb + `directed> ?m . ?m <` + ikb + `hasGenre> ?g`},
	} {
		b.Run(bm.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := eng.Query(ctx, bm.src, query.ExecOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Rows) == 0 {
					b.Fatal("query returned no rows")
				}
			}
		})
	}
}

// BenchmarkShardedLookupBatch compares a 64-key POST /v1/sameas batch on a
// single-process server against the same batch scatter-gathered by the
// shard router across a 3-shard deployment of the same snapshot (ISSUE 4).
// Both deployments are served over real HTTP so the comparison includes
// what a client actually pays, and each sub-benchmark reports the p50 batch
// latency as the "p50-µs" metric — the bar is sharded p50 within 2× of
// single-process for 64-key batches. The sharded request is one proxy hop
// plus three parallel sub-batches, so the bar needs the fan-out to actually
// overlap: on a single-CPU host the three sub-exchanges serialize (all four
// servers share that core) and the ratio degrades to the ~4× exchange
// count; with ≥2 cores the sub-batches run concurrently as they would
// across production hosts.
func BenchmarkShardedLookupBatch(b *testing.B) {
	ctx := context.Background()
	d := gen.Persons(gen.PersonsConfig{Seed: benchOpt.Seed})
	o1, o2, err := d.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	pairs := d.Gold.Pairs()
	if len(pairs) < 64 {
		b.Fatalf("corpus yields only %d gold pairs", len(pairs))
	}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = pairs[i%len(pairs)][0]
	}
	body, err := json.Marshal(map[string]any{"kb": "1", "keys": keys})
	if err != nil {
		b.Fatal(err)
	}

	// Single-process deployment.
	single, err := server.New(server.Options{StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { single.Close() })
	version, err := single.PublishResult(res)
	if err != nil {
		b.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	b.Cleanup(singleTS.Close)

	// 3-shard deployment behind the router.
	const n = 3
	var urls []string
	peers := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		ss, err := server.New(server.Options{StateDir: b.TempDir(), ShardIndex: i, ShardCount: n})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { ss.Close() })
		ts := httptest.NewServer(ss.Handler())
		b.Cleanup(ts.Close)
		peer, err := client.New(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		urls = append(urls, ts.URL)
		peers = append(peers, peer)
	}
	if err := shard.Publish(ctx, peers, version, res.Snapshot()); err != nil {
		b.Fatal(err)
	}
	router, err := shard.NewRouter(urls)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := router.Refresh(ctx); err != nil {
		b.Fatal(err)
	}
	routerTS := httptest.NewServer(router.Handler())
	b.Cleanup(routerTS.Close)

	// Sequential requests: each iteration is the latency one client
	// observes per 64-key batch, not throughput under CPU contention —
	// parallel load would charge the sharded deployment for burning three
	// servers' worth of CPU that production spreads across hosts.
	run := func(b *testing.B, url string) {
		samples := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			resp, err := http.Post(url+"/v1/sameas", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatalf("batch: %v", err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("batch: %d %s (%v)", resp.StatusCode, data, err)
			}
			samples = append(samples, time.Since(start))
		}
		b.StopTimer()
		slices.Sort(samples)
		b.ReportMetric(float64(samples[len(samples)/2].Microseconds()), "p50-µs")
	}
	b.Run("single", func(b *testing.B) { run(b, singleTS.URL) })
	b.Run("sharded", func(b *testing.B) { run(b, routerTS.URL) })
}

// BenchmarkIngestThroughput times the streaming parallel KB loader on a
// synthetic dump deliberately larger than its memory budget, so every run
// exercises the full pipeline: block scan → parallel parse → spill of
// sorted runs → k-way merge. It reports parse throughput (triples/s, MB/s
// via SetBytes) and the peak heap growth observed while the pipeline runs:
// "peak-MB" staying under "budget-MB" — bounded by the budget, not by the
// dump size — is the point of the subsystem. GC is tightened for the
// measurement so the sampler sees the pipeline's live footprint, not
// collector slack.
func BenchmarkIngestThroughput(b *testing.B) {
	// A dump ~1.5× the budget with a bounded vocabulary (the symbol table
	// is a vocabulary-sized fixed cost, deliberately kept small next to
	// the budget, as it would be for a real KB's predicate/entity reuse).
	const budget = 64 << 20
	var doc strings.Builder
	doc.Grow(budget + budget/2 + 1<<20)
	for i := 0; doc.Len() < budget+budget/2; i++ {
		fmt.Fprintf(&doc, "<http://bench/e%d> <http://bench/r%d> <http://bench/e%d> .\n",
			i%1000, i%23, (i*31+7)%1000)
		fmt.Fprintf(&doc, "<http://bench/e%d> <http://bench/label> \"entity number %d\" .\n",
			i%1000, i%997)
	}
	input := doc.String()

	// GOGC=10 plus a full collect-and-scavenge before the baseline: the
	// sampler must see this pipeline's live footprint, not pacing slack
	// inherited from whatever benchmarks ran earlier in the process.
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	debug.FreeOSMemory()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Peak-heap sampler: polls heap growth over the baseline while the
	// pipeline runs. Coarse (2ms) but unbiased — the buffers it is after
	// live for whole blocks, not microseconds.
	stop := make(chan struct{})
	var peak atomic.Int64
	go func() {
		var ms runtime.MemStats
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if grown := int64(ms.HeapAlloc) - int64(base.HeapAlloc); grown > peak.Load() {
					peak.Store(grown)
				}
			}
		}
	}()

	var triples int64
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := ingest.Run(context.Background(), strings.NewReader(input), ingest.Options{
			Workers:      4,
			BlockSize:    256 << 10,
			MemoryBudget: budget,
			TempDir:      b.TempDir(),
		}, func(rdf.Triple) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if stats.Spills == 0 {
			b.Fatal("dump did not outgrow the budget; benchmark is not exercising the spill path")
		}
		triples = stats.Triples
	}
	b.StopTimer()
	close(stop)
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(triples)*float64(b.N)/elapsed.Seconds(), "triples/s")
	}
	b.ReportMetric(float64(peak.Load())/(1<<20), "peak-MB")
	b.ReportMetric(float64(budget)/(1<<20), "budget-MB")
}
