package paris

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

const kb1 = `
<http://a.org/elvis> <http://a.org/email> "elvis@graceland.com" .
<http://a.org/elvis> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://a.org/singer> .
`

const kb2 = `
<http://b.org/presley> <http://b.org/mail> "elvis@graceland.com" .
<http://b.org/presley> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://b.org/person> .
`

func writeFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "kb1.nt")
	p2 := filepath.Join(dir, "kb2.nt")
	if err := os.WriteFile(p1, []byte(kb1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, []byte(kb2), 0o644); err != nil {
		t.Fatal(err)
	}
	return p1, p2
}

func TestQuickstartFlow(t *testing.T) {
	p1, p2 := writeFiles(t)
	lits := NewLiterals()
	o1, err := LoadFile(p1, "kb1", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := LoadFile(p2, "kb2", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Align(o1, o2, Config{})
	if len(res.Instances) != 1 {
		t.Fatalf("instances = %v", res.Instances)
	}
	a := res.Instances[0]
	if o1.ResourceKey(a.X1) != "<http://a.org/elvis>" ||
		o2.ResourceKey(a.X2) != "<http://b.org/presley>" {
		t.Fatalf("wrong alignment: %v", a)
	}
	if a.P != 1 {
		t.Fatalf("converged probability = %v, want 1", a.P)
	}
	// Class alignment must relate singer and person.
	if len(res.Classes12) == 0 {
		t.Fatal("no class alignments")
	}
	rels := MaxRelAlignments(res.Relations12)
	if len(rels) == 0 {
		t.Fatal("no relation alignments")
	}
}

func TestLoadFileTurtle(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "kb.ttl")
	doc := "@prefix ex: <http://ex.org/> .\nex:a ex:p ex:b .\n"
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := LoadFile(p, "kb", NewLiterals(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumFacts() != 1 {
		t.Fatalf("facts = %d", o.NumFacts())
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile("/nonexistent/x.nt", "x", NewLiterals(), nil); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "kb.xyz")
	os.WriteFile(p, []byte(""), 0o644)
	if _, err := LoadFile(p, "x", NewLiterals(), nil); err == nil ||
		!strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("unknown extension: %v", err)
	}
}

func TestNormalizersExported(t *testing.T) {
	lit := Term{Kind: 2, Value: "A-B c"}
	if AlphaNum(lit) != "abc" {
		t.Fatalf("AlphaNum = %q", AlphaNum(lit))
	}
	if Identity(lit) != "A-B c" {
		t.Fatalf("Identity = %q", Identity(lit))
	}
	if Numeric(Term{Kind: 2, Value: "1.50"}) != "1.5" {
		t.Fatal("Numeric broken")
	}
}

func TestLoadGoldTSV(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "gold.tsv")
	content := "# comment\n<a>\t<x>\n<b>\t<y>\n\n"
	os.WriteFile(p, []byte(content), 0o644)
	g, err := LoadGoldTSV(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("gold size = %d", g.Len())
	}
	bad := filepath.Join(dir, "bad.tsv")
	os.WriteFile(bad, []byte("no-tab-line\n"), 0o644)
	if _, err := LoadGoldTSV(bad); err == nil {
		t.Fatal("malformed gold accepted")
	}
	conflict := filepath.Join(dir, "conflict.tsv")
	os.WriteFile(conflict, []byte("<a>\t<x>\n<a>\t<y>\n"), 0o644)
	if _, err := LoadGoldTSV(conflict); err == nil {
		t.Fatal("conflicting gold accepted")
	}
}

// End-to-end: generate a corpus, write it to disk, load through the public
// API, align, and evaluate — the full pipeline a downstream user runs.
func TestEndToEndFilePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline")
	}
	dir := t.TempDir()
	d := gen.Persons(gen.PersonsConfig{N: 60, Seed: 5})
	if err := d.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	lits := NewLiterals()
	o1, err := LoadFile(filepath.Join(dir, "person1.nt"), "person1", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := LoadFile(filepath.Join(dir, "person2.nt"), "person2", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	gold, err := LoadGoldTSV(filepath.Join(dir, "gold.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	res := Align(o1, o2, Config{})
	m := gold.Evaluate(res.InstanceMap())
	if m.F1 < 0.99 {
		t.Fatalf("pipeline quality degraded: %s", m)
	}
}

func TestNewAlignerStepwise(t *testing.T) {
	p1, p2 := writeFiles(t)
	lits := NewLiterals()
	o1, _ := LoadFile(p1, "kb1", lits, nil)
	o2, _ := LoadFile(p2, "kb2", lits, nil)
	a := NewAligner(o1, o2, Config{})
	s1 := a.Step(1)
	if s1.Assigned != 1 {
		t.Fatalf("step 1 assigned = %d", s1.Assigned)
	}
	s2 := a.Step(2)
	if s2.ChangedFraction != 0 {
		t.Fatalf("step 2 changed = %v", s2.ChangedFraction)
	}
	if len(a.Iterations()) != 2 {
		t.Fatal("iteration log wrong")
	}
}

func TestFilterClassAlignmentsExported(t *testing.T) {
	in := []ClassAlignment{{P: 0.9}, {P: 0.1}}
	if got := FilterClassAlignments(in, 0.5); len(got) != 1 {
		t.Fatalf("filtered = %v", got)
	}
}
