package shard_test

// Router telemetry tests: a trace ID injected by the client crosses the
// router onto the shard (the shard's span logs the same trace with the
// router's span as parent), and the router's /metrics exposition carries
// the per-shard fan-out and epoch families.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

// logSink collects log lines concurrently and extracts span attributes.
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *logSink) logf(format string, args ...any) {
	s.mu.Lock()
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

// spans returns the span log lines mentioning the given trace ID.
func (s *logSink) spans(traceID string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, l := range s.lines {
		if strings.HasPrefix(l, "span ") && strings.Contains(l, "trace="+traceID) {
			out = append(out, l)
		}
	}
	return out
}

// spanAttr pulls one key=value attribute off a span log line.
func spanAttr(line, key string) string {
	for _, f := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}

func TestRouterTracePropagation(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 40, Seed: 7})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()

	// One plain parisd behind the router: it holds the full index, so a
	// 1-way "fleet" serves every key — enough to watch the trace hop.
	var shardLog, routerLog logSink
	srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: shardLog.logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	if _, err := srv.PublishResult(res); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter([]string{ts.URL}, shard.WithLogf(routerLog.logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One GET (proxy path) and one batch POST (scatter path), both under
	// the same client-minted trace.
	tr := obs.NewTrace()
	key := d.Gold.Pairs()[0][0]
	for _, do := range []func() (*http.Request, error){
		func() (*http.Request, error) {
			return http.NewRequest(http.MethodGet, rts.URL+"/v1/sameas?kb=1&key="+url.QueryEscape(key), nil)
		},
		func() (*http.Request, error) {
			return http.NewRequest(http.MethodPost, rts.URL+"/v1/sameas",
				strings.NewReader(batchBody("1", []string{key})))
		},
	} {
		req, err := do()
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.TraceHeader, tr.String())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: %d", req.Method, req.URL.Path, resp.StatusCode)
		}
	}

	// The router logs four spans per trace — two http spans (proxy GET,
	// scatter POST) plus one "shard" fan-out span under each.
	routerSpans := routerLog.spans(tr.TraceID)
	if len(routerSpans) != 4 {
		t.Fatalf("router logged %d spans for the trace, want 4 (2 http + 2 shard):\n%s",
			len(routerSpans), strings.Join(routerSpans, "\n"))
	}
	shardSpans := shardLog.spans(tr.TraceID)
	if len(shardSpans) != 2 {
		t.Fatalf("shard logged %d spans for the trace, want 2 (proxy + scatter):\n%s",
			len(shardSpans), strings.Join(shardSpans, "\n"))
	}
	// Parenting: the router's http spans are children of the client's span,
	// its shard spans children of those, and the shard process's http spans
	// children of the router's shard spans — never of the client directly.
	httpSpanIDs := map[string]bool{}
	fanoutSpanIDs := map[string]bool{}
	for _, l := range routerSpans {
		switch name := spanAttr(l, "name"); name {
		case "http":
			if got := spanAttr(l, "parent"); got != tr.SpanID {
				t.Errorf("router http span parent %q, want client span %q: %s", got, tr.SpanID, l)
			}
			httpSpanIDs[spanAttr(l, "span")] = true
		case "shard":
			fanoutSpanIDs[spanAttr(l, "span")] = true
		default:
			t.Errorf("unexpected router span name %q: %s", name, l)
		}
	}
	for _, l := range routerSpans {
		if spanAttr(l, "name") == "shard" {
			if parent := spanAttr(l, "parent"); !httpSpanIDs[parent] {
				t.Errorf("router shard span parent %q is not a router http span: %s", parent, l)
			}
		}
	}
	for _, l := range shardSpans {
		if parent := spanAttr(l, "parent"); !fanoutSpanIDs[parent] {
			t.Errorf("shard span parent %q is not a router shard span (%v): %s", parent, fanoutSpanIDs, l)
		}
	}

	// The router's exposition carries the HTTP, fan-out, and epoch families.
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`paris_router_http_requests_total{route="GET /v1/sameas",method="GET",code="200"} 1`,
		`paris_router_http_requests_total{route="POST /v1/sameas",method="POST",code="200"} 1`,
		`paris_router_shard_request_seconds_count{shard="0",replica="0"} 2`,
		"paris_router_epoch_seq 1",
		"paris_router_epoch_flips_total 1",
		"paris_router_lookups_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
	if strings.Contains(text, `paris_router_shard_errors_total{shard="0",replica="0"}`) {
		t.Errorf("error counter recorded for a healthy shard:\n%s", text)
	}
}

// TestRouterShardErrorNamesShardWithTiming kills the only shard and checks
// the router's errors name the shard and carry the attempt duration, on
// both the proxy and the scatter path.
func TestRouterShardErrorNamesShardWithTiming(t *testing.T) {
	srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Close() })
	d := gen.Persons(gen.PersonsConfig{N: 10, Seed: 7})
	o1, o2, _ := d.Build(nil)
	if _, err := srv.PublishResult(core.New(o1, o2, core.Config{}).Run()); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter([]string{ts.URL}, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close() // the fleet goes dark after the epoch is set

	r := get(t, rts.URL, "/v1/sameas?kb=1&key=x")
	if r.code != http.StatusBadGateway ||
		!strings.Contains(string(r.body), "shard 0 unreachable after ") {
		t.Fatalf("proxy error: %d %s", r.code, r.body)
	}
	r = post(t, rts.URL, "/v1/sameas", batchBody("1", []string{"x"}))
	if r.code != http.StatusBadGateway ||
		!strings.Contains(string(r.body), "shard 0 after ") {
		t.Fatalf("scatter error: %d %s", r.code, r.body)
	}

	var b strings.Builder
	rt.MetricsRegistry().WriteText(&b)
	if !strings.Contains(b.String(), `paris_router_shard_errors_total{shard="0",replica="0"} 2`) {
		t.Errorf("shard error counter missing:\n%s", b.String())
	}
}

// TestRouterReadyz: the router is alive from the start but not ready until
// its first epoch flip — the readiness gate of a rolling deploy.
func TestRouterReadyz(t *testing.T) {
	srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	rt, err := shard.NewRouter([]string{ts.URL}, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	if r := get(t, rts.URL, "/v1/healthz"); r.code != http.StatusOK {
		t.Fatalf("healthz before epoch: %d", r.code)
	}
	if r := get(t, rts.URL, "/v1/readyz"); r.code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before epoch: %d %s", r.code, r.body)
	}

	// The shard has no snapshot either, so a refresh cannot flip the epoch.
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r := get(t, rts.URL, "/v1/readyz"); r.code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty fleet: %d %s", r.code, r.body)
	}

	d := gen.Persons(gen.PersonsConfig{N: 10, Seed: 7})
	o1, o2, _ := d.Build(nil)
	if _, err := srv.PublishResult(core.New(o1, o2, core.Config{}).Run()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	r := get(t, rts.URL, "/v1/readyz")
	if r.code != http.StatusOK {
		t.Fatalf("readyz after epoch flip: %d %s", r.code, r.body)
	}
	if !strings.Contains(string(r.body), rt.Epoch()) {
		t.Errorf("readyz body %s does not name the epoch %q", r.body, rt.Epoch())
	}
}
