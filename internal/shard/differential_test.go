package shard_test

// Differential test harness: the same movies corpus served by one
// single-process parisd and by a 3-shard deployment behind the
// scatter-gather router must be indistinguishable on the wire — every
// /v1/sameas answer (GET and POST, hits, misses, normalized fallbacks, and
// error paths) byte-identical, including ?snapshot=-pinned reads taken
// while a new version is being published shard by shard.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
)

// response is one captured HTTP exchange.
type response struct {
	code   int
	body   []byte
	header http.Header
}

func get(t *testing.T, base, path string) response {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return response{resp.StatusCode, body, resp.Header}
}

func post(t *testing.T, base, path, body string) response {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return response{resp.StatusCode, data, resp.Header}
}

// diffHeaders reports the response headers on which the two deployments
// disagree — the router relays the shard's headers verbatim, so everything
// but Date (each process stamps its own clock) must match.
func diffHeaders(want, got http.Header) string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	delete(keys, "Date")
	var diffs []string
	for k := range keys {
		w := strings.Join(want.Values(k), ", ")
		g := strings.Join(got.Values(k), ", ")
		if w != g {
			diffs = append(diffs, fmt.Sprintf("%s: single %q vs sharded %q", k, w, g))
		}
	}
	sort.Strings(diffs)
	return strings.Join(diffs, "; ")
}

// compareGET asserts a byte-identical GET exchange — status, headers
// (excluding Date), and body — on both deployments and returns the shared
// response.
func compareGET(t *testing.T, singleURL, routerURL, path string) response {
	t.Helper()
	want := get(t, singleURL, path)
	got := get(t, routerURL, path)
	if want.code != got.code || !bytes.Equal(want.body, got.body) {
		t.Fatalf("GET %s diverges:\nsingle : %d %s\nsharded: %d %s",
			path, want.code, want.body, got.code, got.body)
	}
	if d := diffHeaders(want.header, got.header); d != "" {
		t.Fatalf("GET %s headers diverge: %s", path, d)
	}
	return want
}

// comparePOST asserts a byte-identical POST /v1/sameas exchange, headers
// included.
func comparePOST(t *testing.T, singleURL, routerURL, path, body string) response {
	t.Helper()
	want := post(t, singleURL, path, body)
	got := post(t, routerURL, path, body)
	if want.code != got.code || !bytes.Equal(want.body, got.body) {
		t.Fatalf("POST %s diverges:\nsingle : %d %s\nsharded: %d %s",
			path, want.code, want.body, got.code, got.body)
	}
	if d := diffHeaders(want.header, got.header); d != "" {
		t.Fatalf("POST %s headers diverge: %s", path, d)
	}
	return want
}

// newShardFleet starts n shard servers and a router in front of them,
// returning the shard clients (in shard-index order) and the router's base
// URL plus handle.
func newShardFleet(t *testing.T, n int) ([]*client.Client, *shard.Router, string) {
	t.Helper()
	var urls []string
	peers := make([]*client.Client, 0, n)
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Options{
			StateDir: t.TempDir(), ShardIndex: i, ShardCount: n, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		peer, err := client.New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, ts.URL)
		peers = append(peers, peer)
	}
	rt, err := shard.NewRouter(urls, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return peers, rt, rts.URL
}

func batchBody(kb string, keys []string) string {
	var sb strings.Builder
	sb.WriteString(`{"kb":` + fmt.Sprintf("%q", kb) + `,"keys":[`)
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(fmt.Sprintf("%q", k))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func TestDifferentialShardedVsSingle(t *testing.T) {
	ctx := context.Background()
	d := gen.Movies(gen.MoviesConfig{Seed: 7, People: 300, Movies: 100})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced nothing")
	}

	// ---- Single-process reference deployment. ----
	single, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	t.Cleanup(func() { singleTS.Close(); single.Close() })
	singleClient, err := client.New(singleTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := single.PublishResult(res)
	if err != nil {
		t.Fatal(err)
	}

	// ---- 3-shard deployment. ----
	peers, rt, routerURL := newShardFleet(t, 3)

	// Before any publish the router answers like a snapshot-less parisd.
	if r := get(t, routerURL, "/v1/sameas?kb=1&key=x"); r.code != http.StatusServiceUnavailable ||
		!strings.Contains(string(r.body), "no completed alignment yet") {
		t.Fatalf("router before publish: %d %s", r.code, r.body)
	}

	// Shards refuse writes: they serve slices, they do not align.
	if r := post(t, strings.TrimSuffix(routerURL, "/"), "/v1/jobs", "{}"); r.code != http.StatusNotFound {
		// The router has no jobs surface at all.
		t.Fatalf("router POST /v1/jobs: %d %s", r.code, r.body)
	}

	// Two-phase publish of the same snapshot under the single process's ID.
	snap := res.Snapshot()
	if err := shard.Publish(ctx, peers, v1, snap); err != nil {
		t.Fatal(err)
	}
	epoch, err := rt.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != v1 {
		t.Fatalf("router epoch = %q, want %q", epoch, v1)
	}

	// ---- Byte-identical GET /v1/sameas for every gold entity. ----
	pairs := d.Gold.Pairs()
	if len(pairs) == 0 {
		t.Fatal("empty gold standard")
	}
	hits := 0
	for _, p := range pairs {
		if r := compareGET(t, singleTS.URL, routerURL,
			"/v1/sameas?kb=1&key="+url.QueryEscape(p[0])); r.code == http.StatusOK {
			hits++
		}
		compareGET(t, singleTS.URL, routerURL, "/v1/sameas?kb=2&key="+url.QueryEscape(p[1]))
	}
	if hits == 0 {
		t.Fatal("no gold entity resolved; the harness is vacuous")
	}
	t.Logf("compared %d gold pairs in both directions (%d forward hits)", len(pairs), hits)

	// Normalized, bare-IRI, error, and edge lookups stay identical too.
	bare := strings.Trim(pairs[0][0], "<>")
	for _, path := range []string{
		"/v1/sameas?kb=1&key=" + url.QueryEscape(bare),
		"/v1/sameas?kb=1&key=" + url.QueryEscape(strings.ToUpper(bare)),
		"/v1/sameas?kb=" + url.QueryEscape(d.Name1) + "&key=" + url.QueryEscape(pairs[0][0]),
		"/v1/sameas?kb=1&key=" + url.QueryEscape("<http://nowhere.example.org/x>"),
		"/v1/sameas?kb=1",                     // missing key parameter
		"/v1/sameas?kb=bogus&key=x",           // invalid direction
		"/v1/sameas?kb=1&key=x&snapshot=nope", // malformed snapshot pin
		"/v1/sameas?kb=1&key=" + url.QueryEscape(pairs[0][0]) + "&snapshot=snap-00000099", // unknown snapshot
		"/v1/relations?dir=12&min=0.1",
		"/v1/relations?dir=21",
		"/v1/classes?dir=12",
		"/v1/classes?dir=21&min=0.3",
	} {
		compareGET(t, singleTS.URL, routerURL, path)
	}

	// ---- Byte-identical POST /v1/sameas batches. ----
	fwd := make([]string, 0, len(pairs)+2)
	rev := make([]string, 0, len(pairs))
	for _, p := range pairs {
		fwd = append(fwd, p[0])
		rev = append(rev, p[1])
	}
	// Misses and normalized spellings interleaved mid-batch.
	fwd = append(fwd, "<http://nowhere.example.org/x>", strings.ToUpper(bare))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", batchBody("1", fwd))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", batchBody("2", rev))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", batchBody("bogus", fwd[:2]))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", `{"kb":"1","keys":[]}`)
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", `{"kb":"1"`)
	// An unknown explicit pin must win over body problems (a single process
	// resolves the snapshot before reading the body) — and a known pin must
	// not mask them.
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas?snapshot=snap-00000099", `{"kb":"1","keys":[]}`)
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas?snapshot=snap-00000099", `{"kb":"1"`)
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas?snapshot=snap-00000099", batchBody("1", fwd[:2]))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas?snapshot="+v1, `{"kb":"1","keys":[]}`)

	// ---- Pinned reads stay identical during a concurrent publish. ----
	probe := "/v1/sameas?kb=1&key=" + url.QueryEscape(pairs[0][0])
	pinnedProbe := probe + "&snapshot=" + v1
	batchPinned := "/v1/sameas?snapshot=" + v1
	v1Body := get(t, singleTS.URL, probe).body
	v1Batch := post(t, singleTS.URL, batchPinned, batchBody("1", fwd[:8])).body

	// Version 2 perturbs every probability, so v1-pinned and v2 answers
	// are distinguishable on the wire.
	snap2 := res.Snapshot()
	for i := range snap2.Instances {
		snap2.Instances[i].P = 0.25 + snap2.Instances[i].P/2
	}
	snap2.CreatedAt = time.Now().UTC() // one timestamp for all shards
	v2 := diskstore.SnapshotID(2)

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, base := range []string{singleTS.URL, routerURL} {
					r := get(t, base, pinnedProbe)
					if r.code != http.StatusOK || !bytes.Equal(r.body, v1Body) {
						errc <- fmt.Errorf("pinned read moved during publish on %s: %d %s", base, r.code, r.body)
						return
					}
					b := post(t, base, batchPinned, batchBody("1", fwd[:8]))
					if b.code != http.StatusOK || !bytes.Equal(b.body, v1Batch) {
						errc <- fmt.Errorf("pinned batch moved during publish on %s: %d %s", base, b.code, b.body)
						return
					}
				}
			}
		}()
	}

	// Publish v2 everywhere: first the single process, then shard by shard
	// with a torn-view check in the middle — the router must keep serving
	// the old epoch until the last shard acknowledges.
	if _, err := singleClient.PutSnapshot(ctx, v2, snap2); err != nil {
		t.Fatal(err)
	}
	part, err := shard.NewPartitioner(len(peers))
	if err != nil {
		t.Fatal(err)
	}
	slices := snap2.Split(len(peers), part.Owner)
	for i, peer := range peers {
		if _, err := peer.PutSnapshot(ctx, v2, slices[i]); err != nil {
			t.Fatal(err)
		}
		if i < len(peers)-1 {
			// Mid-publish: some shards hold v2, the router's unpinned view
			// must still be the complete v1 everywhere — never a torn mix.
			if ep, err := rt.Refresh(ctx); err != nil || ep != v1 {
				t.Fatalf("epoch advanced to %q with %d/%d shards published (err %v)", ep, i+1, len(peers), err)
			}
			if r := get(t, routerURL, probe); r.code != http.StatusOK || !bytes.Equal(r.body, v1Body) {
				t.Fatalf("unpinned router read tore mid-publish: %d %s", r.code, r.body)
			}
		}
	}
	if ep, err := rt.Refresh(ctx); err != nil || ep != v2 {
		t.Fatalf("epoch after full publish = %q (err %v), want %q", ep, err, v2)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the flip: unpinned reads serve v2 and stay byte-identical, the
	// probe visibly changed, and v1 pins still resolve on both.
	v2Body := compareGET(t, singleTS.URL, routerURL, probe).body
	if bytes.Equal(v2Body, v1Body) {
		t.Fatal("v2 probe answer equals v1; the perturbation is invisible and the pin check proves nothing")
	}
	compareGET(t, singleTS.URL, routerURL, pinnedProbe)
	comparePOST(t, singleTS.URL, routerURL, batchPinned, batchBody("1", fwd))
	comparePOST(t, singleTS.URL, routerURL, "/v1/sameas", batchBody("1", fwd))
	for _, p := range pairs[:min(20, len(pairs))] {
		compareGET(t, singleTS.URL, routerURL, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0]))
		compareGET(t, singleTS.URL, routerURL, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0])+"&snapshot="+v1)
	}

	// The deployment-level snapshot listing agrees on versions and current.
	var snaps client.SnapshotList
	if err := singleClient.Health(ctx); err != nil {
		t.Fatal(err)
	}
	routerClient, err := client.New(routerURL)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err = routerClient.Snapshots(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snaps.Current != v2 || len(snaps.Snapshots) != 2 {
		t.Fatalf("router snapshots = %+v, want current %s over 2 versions", snaps, v2)
	}
}

// TestShardRefusesWrites pins the slimmed surface of parisd -shard i/N: job
// and delta submissions answer 403, while snapshot ingestion and lookups
// work.
func TestShardRefusesWrites(t *testing.T) {
	srv, err := server.New(server.Options{StateDir: t.TempDir(), ShardIndex: 1, ShardCount: 3, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	for _, path := range []string{"/v1/jobs", "/v1/deltas"} {
		r := post(t, ts.URL, path, `{"kb1":"a.nt","kb2":"b.nt","kb":"1","ntriples":""}`)
		if r.code != http.StatusForbidden || !strings.Contains(string(r.body), "shard 1/3") {
			t.Errorf("POST %s on shard = %d %s, want 403 naming the shard", path, r.code, r.body)
		}
	}
}

// TestRouterRejectsEmptyTopology covers the router-side count guard.
func TestRouterRejectsEmptyTopology(t *testing.T) {
	if _, err := shard.NewRouter(nil); err == nil {
		t.Fatal("NewRouter with no shards succeeded")
	}
}

// TestRouterRejectsMisorderedShards: each shard self-reports its -shard i/N
// coordinates, and Refresh must refuse a -shards list whose order does not
// match — a silently misordered fleet would route most keys to shards that
// do not hold them.
func TestRouterRejectsMisorderedShards(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		srv, err := server.New(server.Options{
			StateDir: t.TempDir(), ShardIndex: i, ShardCount: 3, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls = append(urls, ts.URL)
	}
	swapped := []string{urls[1], urls[0], urls[2]}
	rt, err := shard.NewRouter(swapped, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Refresh(context.Background()); err == nil || !strings.Contains(err.Error(), "order mismatch") {
		t.Fatalf("Refresh over misordered shards: %v, want order-mismatch error", err)
	}
	// The publisher refuses too: pushing slices in the wrong order would
	// persist wrong data, not just misroute reads.
	var swappedPeers []*client.Client
	for _, u := range swapped {
		peer, err := client.New(u)
		if err != nil {
			t.Fatal(err)
		}
		swappedPeers = append(swappedPeers, peer)
	}
	err = shard.Publish(context.Background(), swappedPeers, "snap-00000001", &core.ResultSnapshot{KB1: "a", KB2: "b"})
	if err == nil || !strings.Contains(err.Error(), "order mismatch") {
		t.Fatalf("Publish over misordered shards: %v, want order-mismatch error", err)
	}
	ordered, err := shard.NewRouter(urls, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ordered.Refresh(context.Background()); err != nil {
		t.Fatalf("Refresh over ordered shards: %v", err)
	}
}

// TestInvalidShardOptions covers the server-side rejection of mismatched
// shard coordinates.
func TestInvalidShardOptions(t *testing.T) {
	for _, opt := range []server.Options{
		{ShardIndex: 3, ShardCount: 3},
		{ShardIndex: -1, ShardCount: 3},
		{ShardIndex: 1, ShardCount: 0},
		{ShardIndex: 0, ShardCount: -2},
	} {
		opt.StateDir = t.TempDir()
		if srv, err := server.New(opt); err == nil {
			srv.Close()
			t.Errorf("server.New with shard %d/%d succeeded, want error", opt.ShardIndex, opt.ShardCount)
		}
	}
}

// TestWriteSlicesOffline covers the diskstore publication path: slices
// written into shard state directories before the shard processes exist
// must be recovered at startup and served identically to a single process.
func TestWriteSlicesOffline(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 40, Seed: 7})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()

	single, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	t.Cleanup(func() { singleTS.Close(); single.Close() })
	id, err := single.PublishResult(res)
	if err != nil {
		t.Fatal(err)
	}

	// Offline phase: split the snapshot into three state directories.
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	if err := shard.WriteSlices(dirs, id, res.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Startup phase: each shard recovers its slice as the newest snapshot.
	var urls []string
	for i, dir := range dirs {
		srv, err := server.New(server.Options{StateDir: dir, ShardIndex: i, ShardCount: len(dirs), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		urls = append(urls, ts.URL)
	}
	rt, err := shard.NewRouter(urls, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if epoch, err := rt.Refresh(context.Background()); err != nil || epoch != id {
		t.Fatalf("epoch after recovery = %q (err %v), want %q", epoch, err, id)
	}

	pairs := d.Gold.Pairs()
	for _, p := range pairs {
		compareGET(t, singleTS.URL, rts.URL, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0]))
		compareGET(t, singleTS.URL, rts.URL, "/v1/sameas?kb=2&key="+url.QueryEscape(p[1]))
	}
	keys := make([]string, 0, len(pairs))
	for _, p := range pairs {
		keys = append(keys, p[0])
	}
	comparePOST(t, singleTS.URL, rts.URL, "/v1/sameas", batchBody("1", keys))
}

// TestShardGCKeepsPreviousEpoch guards the publish-window guarantee under
// retention: a shard running with -retain 1 must keep the previous version
// after ingesting a new one, because the router keeps pinning unpinned
// reads to the old epoch until every shard has acknowledged the new.
func TestShardGCKeepsPreviousEpoch(t *testing.T) {
	srv, err := server.New(server.Options{
		StateDir: t.TempDir(), ShardIndex: 0, ShardCount: 1, Retain: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	peer, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	snap := &core.ResultSnapshot{
		KB1: "a", KB2: "b",
		Instances: []core.SnapshotAssignment{{Key1: "<http://a/x>", Key2: "<http://b/y>", P: 1}},
	}
	// No reads happen between ingests: a pinned read would park an index in
	// the pinned cache and keep its snapshot alive through the GC (by
	// design, same as a single process), masking what this test is after.
	listIDs := func() []string {
		list, err := peer.Snapshots(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, info := range list.Snapshots {
			ids = append(ids, info.ID)
		}
		return ids
	}
	ingest := func(i uint64) {
		if _, err := peer.PutSnapshot(ctx, diskstore.SnapshotID(i), snap); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	ingest(1)
	ingest(2)
	// Retain 1 on a shard keeps the current version plus its predecessor —
	// the version the router may still pin every unpinned read to.
	if ids := listIDs(); len(ids) != 2 || ids[0] != "snap-00000001" || ids[1] != "snap-00000002" {
		t.Fatalf("after ingesting v2: snapshots = %v, want previous epoch kept", ids)
	}
	ingest(3)
	if ids := listIDs(); len(ids) != 2 || ids[0] != "snap-00000002" || ids[1] != "snap-00000003" {
		t.Fatalf("after ingesting v3: snapshots = %v, want [snap-00000002 snap-00000003]", ids)
	}
	// The kept predecessor serves pinned reads; the retired one is gone.
	if _, err := peer.SameAs(ctx, client.SameAsQuery{KB: "1", Key: "<http://a/x>", Snapshot: "snap-00000002"}); err != nil {
		t.Fatalf("previous epoch unreadable: %v", err)
	}
	if _, err := peer.SameAs(ctx, client.SameAsQuery{KB: "1", Key: "<http://a/x>", Snapshot: "snap-00000001"}); !client.IsNotFound(err) {
		t.Fatalf("retired snapshot still serves: %v, want 404", err)
	}
}

// TestDifferentialReplicatedDegraded runs the differential harness against
// a replicated fleet losing one replica per group mid-flight: 3 shard
// groups of 2 replicas each must serve the same bytes as a single process
// — headers included, no 502s — before the kill, with concurrent readers
// across it, after it, and for a new version published while the dead
// replicas are still down (the epoch advances on the survivors'
// acknowledgment alone).
func TestDifferentialReplicatedDegraded(t *testing.T) {
	ctx := context.Background()
	d := gen.Movies(gen.MoviesConfig{Seed: 11, People: 200, Movies: 80})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced nothing")
	}
	snap := res.Snapshot()
	snap.CreatedAt = time.Now().UTC() // one timestamp for every copy

	// ---- Single-process reference deployment. ----
	single, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	singleTS := httptest.NewServer(single.Handler())
	t.Cleanup(func() { singleTS.Close(); single.Close() })
	singleClient, err := client.New(singleTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	v1 := diskstore.SnapshotID(1)
	if _, err := singleClient.PutSnapshot(ctx, v1, snap); err != nil {
		t.Fatal(err)
	}

	// ---- 3 shard groups x 2 replicas. ----
	const nGroups, nReplicas = 3, 2
	groups := make([][]*client.Client, nGroups)
	servers := make([][]*httptest.Server, nGroups)
	var elements []string
	for i := 0; i < nGroups; i++ {
		var urls []string
		for j := 0; j < nReplicas; j++ {
			srv, err := server.New(server.Options{
				StateDir: t.TempDir(), ShardIndex: i, ShardCount: nGroups, Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			// httptest.Server.Close is idempotent; the killed replicas are
			// closed twice (mid-test and here) without harm.
			t.Cleanup(func() { ts.Close(); srv.Close() })
			peer, err := client.New(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			groups[i] = append(groups[i], peer)
			servers[i] = append(servers[i], ts)
			urls = append(urls, ts.URL)
		}
		elements = append(elements, strings.Join(urls, ","))
	}
	if err := shard.PublishGroups(ctx, groups, v1, snap); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter(elements, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != v1 {
		t.Fatalf("epoch = %q (err %v), want %q", epoch, err, v1)
	}

	pairs := d.Gold.Pairs()
	if len(pairs) == 0 {
		t.Fatal("empty gold standard")
	}
	fwd := make([]string, 0, len(pairs))
	for _, p := range pairs {
		fwd = append(fwd, p[0])
	}
	sweep := func(label string) {
		t.Helper()
		for _, p := range pairs {
			compareGET(t, singleTS.URL, rts.URL, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0]))
			compareGET(t, singleTS.URL, rts.URL, "/v1/sameas?kb=2&key="+url.QueryEscape(p[1]))
		}
		comparePOST(t, singleTS.URL, rts.URL, "/v1/sameas", batchBody("1", fwd))
		t.Logf("%s sweep: %d pairs byte-identical in both directions", label, len(pairs))
	}
	sweep("full fleet")

	// ---- Concurrent pinned readers across the replica kill. ----
	pinnedProbe := "/v1/sameas?kb=1&key=" + url.QueryEscape(pairs[0][0]) + "&snapshot=" + v1
	v1Body := get(t, singleTS.URL, pinnedProbe).body
	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r := get(t, rts.URL, pinnedProbe); r.code != http.StatusOK || !bytes.Equal(r.body, v1Body) {
					errc <- fmt.Errorf("pinned read broke across the replica kill: %d %s", r.code, r.body)
					return
				}
			}
		}()
	}

	// Kill replica 1 of every group while the readers run: in-flight
	// requests abort mid-read, and every group is down to one replica.
	for i := 0; i < nGroups; i++ {
		servers[i][1].CloseClientConnections()
		servers[i][1].Close()
	}
	sweep("degraded fleet")
	if v := counterValue(t, rt, "paris_router_failovers_total"); v < 1 {
		t.Errorf("paris_router_failovers_total = %v, want >= 1 (reads must have failed over)", v)
	}

	// ---- Publish v2 while the dead replicas are still down. ----
	snap2 := res.Snapshot()
	for i := range snap2.Instances {
		snap2.Instances[i].P = 0.25 + snap2.Instances[i].P/2
	}
	snap2.CreatedAt = time.Now().UTC()
	v2 := diskstore.SnapshotID(2)
	if _, err := singleClient.PutSnapshot(ctx, v2, snap2); err != nil {
		t.Fatal(err)
	}
	err = shard.PublishGroups(ctx, groups, v2, snap2)
	if err == nil || !strings.Contains(err.Error(), "probing") || !strings.Contains(err.Error(), "replica 1") {
		t.Fatalf("PublishGroups with dead replicas = %v, want a probe error naming replica 1", err)
	}
	// The survivors acknowledged, so the epoch still advances.
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != v2 {
		t.Fatalf("epoch after degraded publish = %q (err %v), want %q", epoch, err, v2)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Unpinned reads now serve v2 — visibly different from v1 and still
	// byte-identical — and v1 pins keep resolving on the survivors.
	probe := "/v1/sameas?kb=1&key=" + url.QueryEscape(pairs[0][0])
	if v2Body := compareGET(t, singleTS.URL, rts.URL, probe).body; bytes.Equal(v2Body, v1Body) {
		t.Fatal("v2 probe answer equals v1; the perturbation is invisible")
	}
	compareGET(t, singleTS.URL, rts.URL, pinnedProbe)
	sweep("degraded fleet on v2")
}
