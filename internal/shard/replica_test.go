package shard_test

// Replica-set behavior of the router: hedged reads cancel the losing
// replica, the routing epoch compares snapshot sequence numbers (not
// strings), and the per-client rate limiter answers 429 with Retry-After.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/shard"
)

// counterValue scrapes one unlabeled counter off the router's exposition.
func counterValue(t *testing.T, rt *shard.Router, name string) float64 {
	t.Helper()
	var b strings.Builder
	rt.MetricsRegistry().WriteText(&b)
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

// TestHedgedReadCancelsLoser: one group of two replicas, one of them slow
// on the read path. Reads landing on the slow replica must hedge to the
// fast one after the budget, win there, and cancel the slow attempt — seen
// from the slow replica's side as a canceled request context.
func TestHedgedReadCancelsLoser(t *testing.T) {
	ctx := context.Background()
	d := gen.Persons(gen.PersonsConfig{N: 40, Seed: 7})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	snap := res.Snapshot()

	// Two plain parisd replicas of the same (full) slice. The slow one
	// stalls GET /v1/sameas until the router cancels it or 500ms pass;
	// everything else (stats, snapshot polls, ingestion) runs at speed.
	var canceled atomic.Int64
	newReplica := func(slow bool) (*client.Client, string) {
		srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if slow {
			inner := h
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet && r.URL.Path == "/v1/sameas" {
					select {
					case <-r.Context().Done():
						canceled.Add(1)
						return
					case <-time.After(500 * time.Millisecond):
					}
				}
				inner.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(func() { ts.Close(); srv.Close() })
		peer, err := client.New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		return peer, ts.URL
	}
	slowPeer, slowURL := newReplica(true)
	fastPeer, fastURL := newReplica(false)

	id := diskstore.SnapshotID(1)
	if err := shard.PublishGroups(ctx, [][]*client.Client{{slowPeer, fastPeer}}, id, snap); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter([]string{slowURL + "," + fastURL},
		shard.WithLogf(t.Logf), shard.WithHedgeDelay(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != id {
		t.Fatalf("Refresh = %q, %v; want %q", epoch, err, id)
	}

	// Round-robin spreads reads over both replicas, so several of these
	// start on the slow one and must be rescued by the hedge.
	key := d.Gold.Pairs()[0][0]
	for i := 0; i < 12; i++ {
		r := get(t, rts.URL, "/v1/sameas?kb=1&key="+url.QueryEscape(key))
		if r.code != http.StatusOK {
			t.Fatalf("read %d: %d %s", i, r.code, r.body)
		}
	}
	if v := counterValue(t, rt, "paris_router_hedges_total"); v < 1 {
		t.Errorf("paris_router_hedges_total = %v, want >= 1", v)
	}
	if v := counterValue(t, rt, "paris_router_hedge_wins_total"); v < 1 {
		t.Errorf("paris_router_hedge_wins_total = %v, want >= 1", v)
	}
	if n := canceled.Load(); n < 1 {
		t.Errorf("slow replica saw %d canceled requests, want >= 1 (losers must be canceled)", n)
	}
}

// TestRefreshCrossesEightDigitBoundary: the epoch must advance from
// snap-99999999 to snap-100000000 even though the latter is the smaller
// string — the router compares sequence numbers.
func TestRefreshCrossesEightDigitBoundary(t *testing.T) {
	ctx := context.Background()
	srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	peer, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter([]string{ts.URL}, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	snap := &core.ResultSnapshot{
		KB1: "a", KB2: "b",
		Instances: []core.SnapshotAssignment{{Key1: "<http://a/x>", Key2: "<http://b/y>", P: 1}},
	}
	if _, err := peer.PutSnapshot(ctx, diskstore.SnapshotID(99999999), snap); err != nil {
		t.Fatal(err)
	}
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != "snap-99999999" {
		t.Fatalf("epoch = %q, %v; want snap-99999999", epoch, err)
	}
	if _, err := peer.PutSnapshot(ctx, diskstore.SnapshotID(100000000), snap); err != nil {
		t.Fatal(err)
	}
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != "snap-100000000" {
		t.Fatalf("epoch across the boundary = %q, %v; want snap-100000000", epoch, err)
	}
}

// TestRateLimit429WithRetryAfter: past the per-client budget the router
// answers 429 with a Retry-After header, keyed by X-Forwarded-For when
// present, while health probes stay exempt.
func TestRateLimit429WithRetryAfter(t *testing.T) {
	srv, err := server.New(server.Options{StateDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	rt, err := shard.NewRouter([]string{ts.URL},
		shard.WithLogf(t.Logf), shard.WithRateLimit(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	// Burst 1: the first read spends the budget (503 — no epoch yet — but
	// it was admitted), the second is throttled.
	if r := get(t, rts.URL, "/v1/sameas?kb=1&key=x"); r.code != http.StatusServiceUnavailable {
		t.Fatalf("first read: %d %s", r.code, r.body)
	}
	resp, err := http.Get(rts.URL + "/v1/sameas?kb=1&key=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second read: %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if v := counterValue(t, rt, "paris_router_rate_limited_total"); v < 1 {
		t.Errorf("paris_router_rate_limited_total = %v, want >= 1", v)
	}

	// A different client (distinct X-Forwarded-For hop) has its own bucket.
	req, err := http.NewRequest(http.MethodGet, rts.URL+"/v1/sameas?kb=1&key=x", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Forwarded-For", "203.0.113.9, 10.0.0.1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forwarded client: %d, want 503 (admitted)", resp2.StatusCode)
	}

	// Probes and scrapes are exempt: a throttled client must still be able
	// to health-check the router.
	for i := 0; i < 3; i++ {
		if r := get(t, rts.URL, "/v1/healthz"); r.code != http.StatusOK {
			t.Fatalf("healthz %d: %d", i, r.code)
		}
	}
}

// TestSplitTopology pins the -shards syntax: ";" separates replica groups,
// a bare comma list is the legacy one-replica-per-shard topology.
func TestSplitTopology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"http://a,http://b", []string{"http://a", "http://b"}},
		{"http://a0,http://a1;http://b0,http://b1", []string{"http://a0,http://a1", "http://b0,http://b1"}},
		{" http://a ; ; http://b0 , http://b1 ", []string{"http://a", "http://b0 , http://b1"}},
	} {
		got := shard.SplitTopology(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("SplitTopology(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SplitTopology(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
