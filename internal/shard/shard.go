// Package shard partitions the published sameAs index across N shard
// processes so knowledge bases too large for one heap can still be served —
// the sharded-serving follow-on to the alignment service (internal/server).
//
// The pieces:
//
//   - Partitioner assigns entity keys to shards by hashing the normalized
//     (folded) key, so every spelling a single process would resolve —
//     bracketed or bare IRIs, any casing or punctuation — routes to the
//     shard holding the canonical entry.
//   - core.ResultSnapshot.Split slices one published snapshot into N
//     per-shard snapshots in a single pass.
//   - Publish pushes slice i to shard i over HTTP (PUT /v1/snapshots/{id})
//     under one common snapshot ID; WriteSlices does the same through the
//     diskstore for state directories prepared offline.
//   - Router is the stateless scatter-gather front: it proxies GET
//     /v1/sameas to the owning shard, fans POST /v1/sameas batches out with
//     per-shard contexts, and pins every unpinned read to its routing
//     epoch — a snapshot version acknowledged by all shards — so readers
//     never observe a torn cross-shard view while a publish is in flight.
//
// Publication is two-phase: slices land on every shard first (phase one,
// readers keep resolving the old epoch), then the router's Refresh observes
// the new version on all shards and flips the epoch atomically (phase two).
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec identifies one shard of an N-way deployment, the parsed form of
// parisd's -shard i/N flag (0-based index).
type Spec struct {
	Index, Count int
}

// ParseSpec parses "i/N" (for example "1/3") and rejects mismatched shard
// coordinates: a malformed pair, a non-positive count, or an index outside
// [0, N).
func ParseSpec(s string) (Spec, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: malformed spec %q (want i/N)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return Spec{}, fmt.Errorf("shard: malformed spec %q (want i/N)", s)
	}
	if n <= 0 || i < 0 || i >= n {
		return Spec{}, fmt.Errorf("shard: spec %q out of range (index must be in [0, count))", s)
	}
	return Spec{Index: i, Count: n}, nil
}

func (sp Spec) String() string { return fmt.Sprintf("%d/%d", sp.Index, sp.Count) }
