package shard

// The fleet observability plane, centered on the router. Three surfaces
// over one idea — the router is the only process that knows the whole
// topology, so it is where per-process telemetry becomes fleet telemetry:
//
//   GET /v1/fleet/metrics   every replica's /metrics federated into one
//                           exposition, instance/group/replica-labeled,
//                           with fleet:-summed counters and a
//                           paris_fleet_up gauge per target
//   GET /v1/fleet/stats     a JSON rollup: per-replica health, snapshot,
//                           heap, goroutines, traffic, plus the router's
//                           hedge/failover totals
//   GET /v1/slo[?fleet=1]   burn-rate report for the router's own route
//                           families, or the fleet-wide merge of every
//                           replica's report
//   GET /debug/traces/{trace} and /debug/traces?fleet=1
//                           cross-process trace stitching: the router
//                           fans a trace ID out to the replicas that
//                           participated, merges their span records with
//                           its own, and re-assembles one tree
//
// Dead replicas are data, not errors: a failed scrape becomes
// paris_fleet_up 0 and a failures entry, and every endpoint serves partial
// results from whatever answered.

import (
	"context"
	"net/http"
	"strconv"
	"sync"

	"repro/client"
	"repro/internal/diskstore"
	"repro/internal/obs"
)

// instanceName is the router-side identity of one replica. The shard's
// self-reported name ("shard1/3") cannot distinguish two replicas of the
// same group, so fleet views use topology coordinates.
func instanceName(gi, ri int) string {
	return "group" + strconv.Itoa(gi) + "/replica" + strconv.Itoa(ri)
}

// federator returns the scraper used by the fleet endpoints, sharing the
// router's pooled shard transport.
func (rt *Router) federator() *obs.Federator {
	return &obs.Federator{Client: rt.httpc}
}

// fleetTargets enumerates the scrape targets: optionally the router's own
// registry (scraped in-process, no HTTP), then every replica of every
// group in topology order.
func (rt *Router) fleetTargets(includeSelf bool) []obs.ScrapeTarget {
	var targets []obs.ScrapeTarget
	if includeSelf {
		targets = append(targets, obs.ScrapeTarget{
			Instance: "router", Group: -1, Replica: -1, Reg: rt.reg, Healthy: true,
		})
	}
	for gi, g := range rt.groups {
		for ri, rep := range g.replicas {
			targets = append(targets, obs.ScrapeTarget{
				Instance: instanceName(gi, ri),
				Group:    gi, Replica: ri,
				URL:     rep.url + "/metrics",
				Healthy: rep.healthy.Load(),
			})
		}
	}
	return targets
}

// handleFleetMetrics implements GET /v1/fleet/metrics: the federated
// exposition over the router and every replica.
func (rt *Router) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	results := rt.federator().Scrape(r.Context(), rt.fleetTargets(true))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteFleetExposition(w, results)
}

// newestHeld is the highest-sequence snapshot a replica listed at its last
// poll — the "what is this replica serving" column of the fleet rollup.
func newestHeld(rep *replica) string {
	m, _ := rep.held.Load().(map[string]bool)
	best, bestSeq := "", uint64(0)
	for id := range m {
		if seq, err := diskstore.ParseSnapshotID(id); err == nil && (best == "" || seq > bestSeq) {
			best, bestSeq = id, seq
		}
	}
	return best
}

// handleFleetStats implements GET /v1/fleet/stats: one row per replica
// from a federated scrape, plus the router's own counters.
func (rt *Router) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	results := rt.federator().Scrape(r.Context(), rt.fleetTargets(false))
	fs := obs.FleetStats{
		Epoch:       rt.Epoch(),
		Hedges:      rt.met.hedges.Value(),
		HedgeWins:   rt.met.hedgeWins.Value(),
		Failovers:   rt.met.failovers.Value(),
		RateLimited: rt.met.rateLimited.Value(),
	}
	i := 0
	for gi, g := range rt.groups {
		for ri, rep := range g.replicas {
			res := results[i]
			i++
			row := obs.FleetReplicaStats{
				Instance: res.Target.Instance,
				Group:    gi, Replica: ri,
				URL:      rep.url,
				Healthy:  res.Target.Healthy,
				ScrapeOK: res.Err == nil,
				Snapshot: newestHeld(rep),
			}
			if res.Err != nil {
				row.Error = res.Err.Error()
			} else {
				row.Goroutines, _ = res.Value("paris_go_goroutines")
				row.HeapInUse, _ = res.Value("paris_go_heap_inuse_bytes")
				row.Lookups, _ = res.Value("paris_lookups_total")
				row.Requests = res.Sum("paris_http_requests_total")
			}
			fs.Instances++
			if row.Healthy {
				fs.Healthy++
			}
			if !row.ScrapeOK {
				fs.ScrapeFailures++
			}
			fs.Replicas = append(fs.Replicas, row)
		}
	}
	writeJSON(w, http.StatusOK, fs)
}

// handleSLO implements GET /v1/slo on the router: its own route families
// by default, the fleet-wide merge with ?fleet=1 — every replica's
// /v1/slo fetched concurrently, counts summed per family and window, burn
// recomputed over the sums. Unreachable replicas land in failures; the
// merge covers whoever answered.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	local := rt.col.SLO("router")
	switch r.URL.Query().Get("fleet") {
	case "", "0", "false":
		writeJSON(w, http.StatusOK, local)
		return
	case "1", "true":
	default:
		httpError(w, http.StatusBadRequest, "bad fleet %q", r.URL.Query().Get("fleet"))
		return
	}
	type slot struct {
		rep  obs.SLOReport
		fail *obs.ScrapeFailure
	}
	ctx := r.Context()
	var slots []*slot
	var wg sync.WaitGroup
	for gi, g := range rt.groups {
		for ri, rep := range g.replicas {
			sl := &slot{}
			slots = append(slots, sl)
			wg.Add(1)
			go func(gi, ri int, rep *replica) {
				defer wg.Done()
				name := instanceName(gi, ri)
				got, err := rep.peer.SLO(ctx)
				if err != nil {
					sl.fail = &obs.ScrapeFailure{Instance: name, URL: rep.url, Error: err.Error()}
					return
				}
				// Stamp topology coordinates over the shard's self-reported
				// name: two replicas of one group are indistinguishable by
				// their own "shardN/M".
				got.Instance = name
				sl.rep = got
			}(gi, ri, rep)
		}
	}
	wg.Wait()
	out := obs.FleetSLO{Instances: []obs.SLOReport{local}}
	for _, sl := range slots {
		if sl.fail != nil {
			out.Failures = append(out.Failures, *sl.fail)
			continue
		}
		out.Instances = append(out.Instances, sl.rep)
	}
	out.SLOReport = obs.MergeSLO(out.Instances)
	out.SLOReport.Instance = "fleet"
	writeJSON(w, http.StatusOK, out)
}

// participants resolves which replicas a trace touched, from the router's
// own "shard" fan-out spans (each carries shard/replica attrs). When the
// local recorder no longer holds any fan-out span for the trace, every
// replica is a candidate — a broader fan-out beats a false "not found".
func (rt *Router) participants(local []obs.SpanRecord) map[[2]int]bool {
	set := make(map[[2]int]bool)
	for i := range local {
		s := &local[i]
		if s.Name != "shard" {
			continue
		}
		gi, err1 := strconv.Atoi(s.Attr("shard"))
		ri, err2 := strconv.Atoi(s.Attr("replica"))
		if err1 == nil && err2 == nil && gi >= 0 && gi < len(rt.groups) && ri >= 0 && ri < len(rt.groups[gi].replicas) {
			set[[2]int{gi, ri}] = true
		}
	}
	if len(set) == 0 {
		for gi, g := range rt.groups {
			for ri := range g.replicas {
				set[[2]int{gi, ri}] = true
			}
		}
	}
	return set
}

// fleetTraceSpans is the router's obs.Stitcher: the local span set tagged
// "router", merged with GET /debug/traces/{trace} from every participating
// replica, each fetched span tagged with its topology coordinates. A 404
// (the replica no longer holds the trace, or never saw it) is a zero-span
// fetch, not a failure.
func (rt *Router) fleetTraceSpans(ctx context.Context, traceID string) ([]obs.SpanRecord, []obs.TraceFetch) {
	spans := rt.col.TraceSpans(traceID)
	for i := range spans {
		spans[i].Instance = "router"
	}
	want := rt.participants(spans)
	type fetchRes struct {
		gi, ri int
		spans  []obs.SpanRecord
		fetch  obs.TraceFetch
	}
	results := make([]fetchRes, 0, len(want))
	for gi, g := range rt.groups {
		for ri := range g.replicas {
			if want[[2]int{gi, ri}] {
				results = append(results, fetchRes{gi: gi, ri: ri})
			}
		}
	}
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(res *fetchRes) {
			defer wg.Done()
			name := instanceName(res.gi, res.ri)
			res.fetch = obs.TraceFetch{Instance: name}
			dump, err := rt.groups[res.gi].replicas[res.ri].peer.TraceTree(ctx, traceID)
			if err != nil {
				if !client.IsNotFound(err) {
					res.fetch.Error = err.Error()
				}
				return
			}
			res.fetch.Spans = len(dump.Spans)
			res.spans = dump.Spans
			for j := range res.spans {
				res.spans[j].Instance = name
			}
		}(&results[i])
	}
	wg.Wait()
	fetches := make([]obs.TraceFetch, 0, len(results))
	for i := range results {
		spans = append(spans, results[i].spans...)
		fetches = append(fetches, results[i].fetch)
	}
	return spans, fetches
}

// handleTraceByID implements the router's GET /debug/traces/{trace}: the
// stitched cross-process dump, 404 only when no process holds anything.
func (rt *Router) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace")
	if !isHexID(id) || len(id) > 64 {
		httpError(w, http.StatusBadRequest, "bad trace id")
		return
	}
	spans, _ := rt.fleetTraceSpans(r.Context(), id)
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "trace not found")
		return
	}
	writeJSON(w, http.StatusOK, obs.TraceDump{Trace: id, Instance: "router", Spans: spans})
}

// isHexID mirrors the obs-side trace ID validation.
func isHexID(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// tracesHandler is the router's fleet-aware /debug/traces: the plain
// recorder browser by default, cross-process stitching with ?fleet=1.
func (rt *Router) tracesHandler() http.Handler {
	return obs.NewTracesHandler(rt.col, rt.fleetTraceSpans)
}

// DebugMux is the router's -debug-addr surface: metrics, pprof, and the
// fleet-aware trace browser (obs.DebugMux plus ?fleet=1 stitching).
func (rt *Router) DebugMux() *http.ServeMux {
	return obs.DebugMuxWith(rt.reg, rt.tracesHandler(), http.HandlerFunc(rt.handleTraceByID))
}
