package shard

// Per-client rate limiting for the router: a token bucket per client key
// (first X-Forwarded-For hop when present, else the remote address),
// refilled continuously, answering 429 with a Retry-After estimate when a
// bucket runs dry. Hand-rolled on the standard library — the repo carries
// no external dependencies.

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxRateLimitClients bounds the bucket map: past it, fully-refilled
// (idle) buckets are evicted, and as a last resort an arbitrary one — a
// spoofed X-Forwarded-For flood must not grow router memory without bound.
const maxRateLimitClients = 65536

type tokenBucket struct {
	tokens float64
	last   time.Time
}

type rateLimiter struct {
	rps   float64 // sustained tokens per second per client
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook
}

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = int(math.Ceil(2 * rps))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rps:     rps,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow takes one token from key's bucket. When the bucket is dry it
// returns false and the wait until a token is available again.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxRateLimitClients {
			l.evictLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rps)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
}

// evictLocked drops buckets that have fully refilled — clients idle long
// enough that forgetting them is indistinguishable from remembering them.
// If every bucket is active, one arbitrary entry goes: staying bounded
// beats perfect fairness against an adversarial key flood.
func (l *rateLimiter) evictLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rps >= l.burst {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) >= maxRateLimitClients {
		for k := range l.buckets {
			delete(l.buckets, k)
			break
		}
	}
}

// clientKey identifies the client for rate limiting: the first hop of
// X-Forwarded-For when a fronting proxy supplies one, else the remote
// address without its ephemeral port.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		if key := strings.TrimSpace(xff); key != "" {
			return key
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// middleware enforces the limit in front of next. Health, readiness, and
// metrics stay exempt: throttling a load balancer's probes or a scraper
// would turn an overloaded router into an officially dead one.
func (l *rateLimiter) middleware(met *routerMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/healthz", "/v1/readyz", "/metrics":
			next.ServeHTTP(w, r)
			return
		}
		if ok, retry := l.allow(clientKey(r)); !ok {
			met.rateLimited.Inc()
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded, retry after %ds", secs)
			return
		}
		next.ServeHTTP(w, r)
	})
}
