package shard

// Replica topology: each partition of a sharded deployment is a replica
// set. The -shard i/N slice identity is unchanged — every replica of group
// i holds the same slice i — so the router's reads have somewhere to go
// when one replica is down, and somewhere to hedge to when one is slow.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"

	"repro/client"
)

// replica is one server of a replica group: a peer client plus the health
// and version knowledge the router maintains about it (updated from both
// Refresh polls and live request outcomes).
type replica struct {
	idx  int // position within the group, the "replica" metric label
	url  string
	peer *client.Client

	// healthy is the last-known transport health: false after a failed
	// poll or a transport-failed request, true again on any success. It
	// orders replica selection; it never excludes — a group whose every
	// replica looks unhealthy is still tried (the mark may be stale).
	healthy atomic.Bool

	// held is the set of snapshot IDs the replica listed at its last
	// successful poll (map[string]bool), used to prefer replicas known to
	// hold the pinned version.
	held atomic.Value
}

// holds reports whether the replica listed the snapshot at its last poll.
func (rep *replica) holds(id string) bool {
	m, _ := rep.held.Load().(map[string]bool)
	return m[id]
}

// noteOutcome folds one request outcome into the replica's health: any
// response — including a server-reported HTTP error, which proves the
// replica is up — marks it healthy, a transport failure unhealthy. A
// canceled attempt (hedge loser, client gone) says nothing about health.
func (rep *replica) noteOutcome(err error) {
	switch {
	case err == nil || isServerError(err):
		rep.healthy.Store(true)
	case errors.Is(err, context.Canceled):
	default:
		rep.healthy.Store(false)
	}
}

// isServerError reports whether err is a shard-reported HTTP error — the
// replica answered, so the error relays verbatim (every replica of the
// group would report the same) instead of triggering a failover.
func isServerError(err error) bool {
	var se *client.Error
	return errors.As(err, &se)
}

// group is the replica set serving one shard slice.
type group struct {
	replicas []*replica
	next     atomic.Uint64 // round-robin cursor for read spreading
}

// candidates returns the group's replicas in the order a read pinned to
// the given snapshot should try them: healthy replicas known to hold the
// pin first, then healthy ones with unknown holdings, then the rest —
// rotated round-robin within the ranking so concurrent reads spread over
// equivalent replicas. Every replica is always listed: health marks are
// advisory, and the last-ranked replica of a group may still be the only
// one that answers.
func (g *group) candidates(pin string) []*replica {
	n := len(g.replicas)
	if n == 1 {
		return g.replicas
	}
	start := int(g.next.Add(1) % uint64(n))
	order := make([]*replica, 0, n)
	for rank := 0; rank < 3; rank++ {
		for i := 0; i < n; i++ {
			rep := g.replicas[(start+i)%n]
			ok := rep.healthy.Load()
			switch rank {
			case 0:
				if ok && rep.holds(pin) {
					order = append(order, rep)
				}
			case 1:
				if ok && !rep.holds(pin) {
					order = append(order, rep)
				}
			case 2:
				if !ok {
					order = append(order, rep)
				}
			}
		}
	}
	return order
}

// healthyCount reports how many replicas of the group look reachable.
func (g *group) healthyCount() int {
	n := 0
	for _, rep := range g.replicas {
		if rep.healthy.Load() {
			n++
		}
	}
	return n
}

// SplitTopology splits a -shards flag value into the replica-group
// elements NewRouter and PublishGroups expect: with a ";" present, groups
// separate on ";" and each element keeps its comma-separated replicas
// ("http://a0,http://a1;http://b0,http://b1" is two groups of two
// replicas); without one, the legacy comma syntax means one
// single-replica group per URL. Empty elements are dropped.
func SplitTopology(s string) []string {
	sep := ","
	if strings.Contains(s, ";") {
		sep = ";"
	}
	var elements []string
	for _, e := range strings.Split(s, sep) {
		if e = strings.TrimSpace(e); e != "" {
			elements = append(elements, e)
		}
	}
	return elements
}

// splitReplicaGroup splits one shardURLs element into its replica URLs:
// "http://a:7171,http://b:7171" is a two-replica group, a bare URL a
// single-replica group (the pre-replication topology, unchanged).
func splitReplicaGroup(element string) []string {
	var urls []string
	for _, u := range strings.Split(element, ",") {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
