package shard

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/rdf"
)

// TestParseSpec is the table-driven contract of the -shard i/N flag,
// including the rejection of mismatched shard coordinates.
func TestParseSpec(t *testing.T) {
	tests := []struct {
		in      string
		want    Spec
		wantErr bool
	}{
		{in: "0/1", want: Spec{Index: 0, Count: 1}},
		{in: "1/3", want: Spec{Index: 1, Count: 3}},
		{in: "2/3", want: Spec{Index: 2, Count: 3}},
		{in: "15/16", want: Spec{Index: 15, Count: 16}},
		{in: "3/3", wantErr: true},  // index == count
		{in: "4/3", wantErr: true},  // index beyond count
		{in: "-1/3", wantErr: true}, // negative index
		{in: "0/0", wantErr: true},  // empty deployment
		{in: "1/0", wantErr: true},
		{in: "0/-2", wantErr: true},
		{in: "1", wantErr: true}, // no separator
		{in: "", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "1/3/5", wantErr: true},
		{in: "1 /3", wantErr: true},
		{in: "1.0/3", wantErr: true},
	}
	for _, tc := range tests {
		got, err := ParseSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("Spec%+v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}

// TestNewPartitionerRejectsCounts checks count validation, the other half
// of the mismatched-shard-count guard.
func TestNewPartitionerRejectsCounts(t *testing.T) {
	for _, n := range []int{0, -1, -16} {
		if _, err := NewPartitioner(n); err == nil {
			t.Errorf("NewPartitioner(%d) succeeded, want error", n)
		}
	}
	p, err := NewPartitioner(5)
	if err != nil || p.Count() != 5 {
		t.Fatalf("NewPartitioner(5) = %v (count %d)", err, p.Count())
	}
}

// TestPartitionerStableAssignment pins the assignment function: it must be
// a pure function of (key, count) so restarts, rebuilds, and independent
// router replicas agree. The golden values guard against an accidental
// change of hash or fold — which would silently strand every persisted
// shard slice on the wrong shard.
func TestPartitionerStableAssignment(t *testing.T) {
	golden := []struct {
		key   string
		n     int
		owner int
	}{
		{key: "<http://ykbfilm.example.org/movie_0001>", n: 3, owner: 1},
		{key: "<http://ikb.example.org/title/tt0001>", n: 3, owner: 1},
		{key: "<http://person1.example.org/person42>", n: 3, owner: 1},
		{key: "<http://person1.example.org/person42>", n: 5, owner: 1},
		{key: "", n: 3, owner: 2},
	}
	for _, tc := range golden {
		p, err := NewPartitioner(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Owner(tc.key); got != tc.owner {
			t.Errorf("Owner(%q) over %d shards = %d, want %d (hash or fold changed? persisted slices would strand)",
				tc.key, tc.n, got, tc.owner)
		}
		// A second instance (a "restart") agrees, as do repeated calls.
		q, _ := NewPartitioner(tc.n)
		for i := 0; i < 3; i++ {
			if q.Owner(tc.key) != p.Owner(tc.key) {
				t.Fatalf("Owner(%q) unstable across instances", tc.key)
			}
		}
	}
}

// TestPartitionerColocatesSpellings checks that every spelling the serving
// index would resolve to one canonical entry — bracketed, bare, case- and
// punctuation-drifted — routes to the same shard, the invariant that keeps
// sharded normalized lookups byte-identical to single-process ones.
func TestPartitionerColocatesSpellings(t *testing.T) {
	p, err := NewPartitioner(7)
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]string{
		{"<http://a/Elvis_Presley>", "http://a/Elvis_Presley", "HTTP://A/ELVIS-PRESLEY", "http a elvis presley"},
		{"<http://ikb.example.org/name/nm0042>", "http://ikb.example.org/name/nm0042", "<HTTP://IKB.EXAMPLE.ORG/NAME/NM0042>"},
	}
	for _, g := range groups {
		want := p.Owner(g[0])
		for _, key := range g[1:] {
			if got := p.Owner(key); got != want {
				t.Errorf("Owner(%q) = %d, but Owner(%q) = %d; spellings of one entity must co-locate",
					key, got, g[0], want)
			}
		}
	}
}

// TestPartitionerSkew bounds the distribution skew on 100k synthetic entity
// keys drawn from the parisgen movie corpus: every shard must stay within
// 5% of the uniform share, for 3- and 5-shard deployments.
func TestPartitionerSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 100k-entity corpus")
	}
	d := gen.Movies(gen.MoviesConfig{Seed: 3, People: 40000, Movies: 12000})
	seen := make(map[string]bool, 120000)
	collect := func(triples []rdf.Triple) {
		for _, tr := range triples {
			if key := tr.Subject.Key(); !seen[key] {
				seen[key] = true
			}
		}
	}
	collect(d.Triples1)
	collect(d.Triples2)
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	for len(keys) < 100000 {
		// Pad with keys in the generators' IRI style; entity counts drift
		// slightly with presence sampling.
		keys = append(keys, fmt.Sprintf("<http://ykbfilm.example.org/pad_%06d>", len(keys)))
	}
	keys = keys[:100000]
	t.Logf("distributing %d distinct keys", len(keys))

	for _, n := range []int{3, 5} {
		p, err := NewPartitioner(n)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for _, key := range keys {
			o := p.Owner(key)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%q) = %d out of [0, %d)", key, o, n)
			}
			counts[o]++
		}
		ideal := float64(len(keys)) / float64(n)
		for i, c := range counts {
			skew := (float64(c) - ideal) / ideal
			if skew < -0.05 || skew > 0.05 {
				t.Errorf("%d shards: shard %d holds %d keys, %.1f%% off uniform (bound 5%%)",
					n, i, c, 100*skew)
			}
		}
		t.Logf("%d shards: %v (ideal %.0f)", n, counts, ideal)
	}
}
