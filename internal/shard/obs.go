package shard

// Router telemetry: the same obs.Registry surface the shard servers expose,
// under router-specific names — per-route HTTP metrics, per-shard fan-out
// latency and error counters (so a slow shard is distinguishable from a
// failed one on the dashboard, not just in error messages), and epoch
// observability for the two-phase publish.

import (
	"strconv"

	"repro/internal/diskstore"
	"repro/internal/obs"
)

type routerMetrics struct {
	http *obs.HTTPMetrics

	// shardSeconds and shardErrors are labeled by shard index: the scatter
	// path records every sub-request's latency, and every transport failure
	// names the shard it hit.
	shardSeconds *obs.HistogramVec
	shardErrors  *obs.CounterVec

	epochSeq   *obs.Gauge
	epochFlips *obs.Counter
	lookups    *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	// Go runtime health, refreshed on every scrape (same families as the
	// aligner/shard daemons, under the router's prefix).
	obs.NewRuntimeMetrics(reg, "paris_router")
	return &routerMetrics{
		http: obs.NewHTTPMetrics(reg, "paris_router_http"),
		shardSeconds: reg.HistogramVec("paris_router_shard_request_seconds",
			"Latency of one shard sub-request during routing or scatter-gather, by shard index.",
			nil, "shard"),
		shardErrors: reg.CounterVec("paris_router_shard_errors_total",
			"Shard sub-requests that failed at the transport layer, by shard index.",
			"shard"),
		epochSeq: reg.Gauge("paris_router_epoch_seq",
			"Sequence number of the routing epoch (0 before the first acknowledged version)."),
		epochFlips: reg.Counter("paris_router_epoch_flips_total",
			"Routing epoch advances since the router started."),
		lookups: reg.Counter("paris_router_lookups_total",
			"sameAs keys routed (batch requests count every key)."),
	}
}

// shardDone records one shard sub-request's outcome.
func (m *routerMetrics) shardDone(shard int, seconds float64, failed bool) {
	label := strconv.Itoa(shard)
	m.shardSeconds.With(label).Observe(seconds)
	if failed {
		m.shardErrors.With(label).Inc()
	}
}

// epochFlip records an epoch advance as its snapshot sequence number, so the
// dashboard shows a monotonic step function across the fleet.
func (m *routerMetrics) epochFlip(id string) {
	m.epochFlips.Inc()
	if seq, err := diskstore.ParseSnapshotID(id); err == nil {
		m.epochSeq.Set(float64(seq))
	}
}
