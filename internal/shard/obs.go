package shard

// Router telemetry: the same obs.Registry surface the shard servers expose,
// under router-specific names — per-route HTTP metrics, per-replica fan-out
// latency and error counters (so a slow replica is distinguishable from a
// failed one on the dashboard, not just in error messages), hedging and
// failover counters for the replicated read path, and epoch observability
// for the two-phase publish.

import (
	"strconv"

	"repro/internal/diskstore"
	"repro/internal/obs"
)

type routerMetrics struct {
	http *obs.HTTPMetrics

	// shardSeconds and shardErrors are labeled by shard group and replica
	// index: the scatter path records every sub-request's latency, and
	// every transport failure names the replica it hit.
	shardSeconds *obs.HistogramVec
	shardErrors  *obs.CounterVec

	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	failovers   *obs.Counter
	rateLimited *obs.Counter

	epochSeq   *obs.Gauge
	epochFlips *obs.Counter
	lookups    *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	// Go runtime health, refreshed on every scrape (same families as the
	// aligner/shard daemons, under the router's prefix).
	obs.NewRuntimeMetrics(reg, "paris_router")
	obs.RegisterBuildInfo(reg)
	return &routerMetrics{
		http: obs.NewHTTPMetrics(reg, "paris_router_http"),
		shardSeconds: reg.HistogramVec("paris_router_shard_request_seconds",
			"Latency of one shard sub-request during routing or scatter-gather, by shard group and replica.",
			nil, "shard", "replica"),
		shardErrors: reg.CounterVec("paris_router_shard_errors_total",
			"Shard sub-requests that failed at the transport layer, by shard group and replica.",
			"shard", "replica"),
		hedges: reg.Counter("paris_router_hedges_total",
			"Hedge sub-requests launched after a read exceeded its latency budget."),
		hedgeWins: reg.Counter("paris_router_hedge_wins_total",
			"Hedge sub-requests that answered before the replica they backed up."),
		failovers: reg.Counter("paris_router_failovers_total",
			"Sub-requests retried on another replica after a transport error."),
		rateLimited: reg.Counter("paris_router_rate_limited_total",
			"Requests rejected with 429 by the per-client rate limiter."),
		epochSeq: reg.Gauge("paris_router_epoch_seq",
			"Sequence number of the routing epoch (0 before the first acknowledged version)."),
		epochFlips: reg.Counter("paris_router_epoch_flips_total",
			"Routing epoch advances since the router started."),
		lookups: reg.Counter("paris_router_lookups_total",
			"sameAs keys routed (batch requests count every key)."),
	}
}

// shardDone records one shard sub-request's outcome.
func (m *routerMetrics) shardDone(shard, replica int, seconds float64, failed bool) {
	s, r := strconv.Itoa(shard), strconv.Itoa(replica)
	m.shardSeconds.With(s, r).Observe(seconds)
	if failed {
		m.shardErrors.With(s, r).Inc()
	}
}

// epochFlip records an epoch advance as its snapshot sequence number, so the
// dashboard shows a monotonic step function across the fleet.
func (m *routerMetrics) epochFlip(id string) {
	m.epochFlips.Inc()
	if seq, err := diskstore.ParseSnapshotID(id); err == nil {
		m.epochSeq.Set(float64(seq))
	}
}
