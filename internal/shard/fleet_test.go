package shard_test

// Fleet observability differential: a 3-group x 2-replica fleet losing one
// replica per group must stay fully observable through the router. A
// scattered batch read traced end-to-end assembles into ONE tree — the
// router's fan-out spans carrying the surviving replicas' serving spans as
// children, every span tagged with its origin instance. The federated
// /v1/fleet/metrics serves merged instance-labeled families with the dead
// replicas as scrape failures (paris_fleet_up 0), not errors. And /v1/slo
// shows zero error-budget burn for the degraded-but-serving route families:
// the failovers the requests absorbed are retained for debugging but are
// not user-visible failures.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

func TestFleetObservabilityDegraded(t *testing.T) {
	ctx := context.Background()
	d := gen.Movies(gen.MoviesConfig{Seed: 23, People: 120, Movies: 40})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced nothing")
	}
	snap := res.Snapshot()
	snap.CreatedAt = time.Now().UTC()

	// ---- 3 shard groups x 2 replicas behind the router. ----
	const nGroups, nReplicas = 3, 2
	groups := make([][]*client.Client, nGroups)
	servers := make([][]*httptest.Server, nGroups)
	var elements []string
	for i := 0; i < nGroups; i++ {
		var urls []string
		for j := 0; j < nReplicas; j++ {
			srv, err := server.New(server.Options{
				StateDir: t.TempDir(), ShardIndex: i, ShardCount: nGroups, Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(func() { ts.Close(); srv.Close() })
			peer, err := client.New(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			groups[i] = append(groups[i], peer)
			servers[i] = append(servers[i], ts)
			urls = append(urls, ts.URL)
		}
		elements = append(elements, strings.Join(urls, ","))
	}
	v1 := diskstore.SnapshotID(1)
	if err := shard.PublishGroups(ctx, groups, v1, snap); err != nil {
		t.Fatal(err)
	}
	rt, err := shard.NewRouter(elements, shard.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	if epoch, err := rt.Refresh(ctx); err != nil || epoch != v1 {
		t.Fatalf("epoch = %q (err %v), want %q", epoch, err, v1)
	}

	pairs := d.Gold.Pairs()
	if len(pairs) == 0 {
		t.Fatal("empty gold standard")
	}
	keys := make([]string, 0, len(pairs))
	for _, p := range pairs {
		keys = append(keys, p[0])
	}

	// ---- Kill replica 1 of every group. ----
	for i := 0; i < nGroups; i++ {
		servers[i][1].CloseClientConnections()
		servers[i][1].Close()
	}

	// Degraded traffic: every read still answers 200 (failover absorbs the
	// dead replicas), and it seeds the SLO windows whose burn the fleet
	// report must later show as zero.
	for _, p := range pairs {
		// A 404 is a served answer (the alignment has no entry), not an
		// outage: anything but 200/404 means the kill leaked to the client.
		if r := get(t, rts.URL, "/v1/sameas?kb=1&key="+url.QueryEscape(p[0])); r.code != http.StatusOK && r.code != http.StatusNotFound {
			t.Fatalf("degraded read %q = %d %s", p[0], r.code, r.body)
		}
	}
	if v := counterValue(t, rt, "paris_router_failovers_total"); v < 1 {
		t.Fatalf("paris_router_failovers_total = %v, want >= 1 (the kill was invisible)", v)
	}

	// ---- Cross-process trace stitching: a traced scattered batch read. ----
	tr := obs.NewTrace()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rts.URL+"/v1/sameas", strings.NewReader(batchBody("1", keys)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tr.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced batch read = %d", resp.StatusCode)
	}

	// Machine side: GET /debug/traces/{trace} on the router is the stitched
	// union of every participant's span records.
	dumpRes := get(t, rts.URL, "/debug/traces/"+tr.TraceID)
	if dumpRes.code != http.StatusOK {
		t.Fatalf("stitched dump = %d %s", dumpRes.code, dumpRes.body)
	}
	var dump obs.TraceDump
	if err := json.Unmarshal(dumpRes.body, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Trace != tr.TraceID || dump.Instance != "router" {
		t.Errorf("dump identity %q/%q, want trace %q from the router", dump.Trace, dump.Instance, tr.TraceID)
	}
	instances := map[string]int{}
	for _, s := range dump.Spans {
		if s.Instance == "" {
			t.Errorf("span %s/%s carries no origin instance", s.Name, s.SpanID)
		}
		instances[s.Instance]++
	}
	for gi := 0; gi < nGroups; gi++ {
		if want := fmt.Sprintf("group%d/replica0", gi); instances[want] == 0 {
			t.Errorf("no spans from surviving replica %s (got %v)", want, instances)
		}
	}
	if instances["router"] < 1+nGroups {
		t.Errorf("router contributed %d spans, want the http root plus %d fan-outs", instances["router"], nGroups)
	}

	// The merged records assemble into a single tree: the router's http root
	// (parented on the client-minted span), its shard fan-out children, and
	// under each successful fan-out the shard-side serving span.
	trees := obs.AssembleTrees(dump.Spans)
	if len(trees) != 1 {
		t.Fatalf("stitched spans assemble into %d trees, want 1", len(trees))
	}
	root := trees[0]
	if root.Name != "http" || root.Instance != "router" || root.ParentID != tr.SpanID {
		t.Fatalf("root = %s@%s parent=%s, want the router's http span under client span %s",
			root.Name, root.Instance, root.ParentID, tr.SpanID)
	}
	served := map[string]bool{}
	for _, c := range root.Children {
		if c.Name != "shard" || c.Instance != "router" {
			continue
		}
		for _, cc := range c.Children {
			if cc.Name == "http" {
				served[cc.Instance] = true
			}
		}
	}
	for gi := 0; gi < nGroups; gi++ {
		if want := fmt.Sprintf("group%d/replica0", gi); !served[want] {
			t.Errorf("no fan-out span carries a serving child from %s (served by %v)", want, served)
		}
	}

	// Human side: the same trace through /debug/traces?fleet=1, with the
	// instance roster and the per-target fetch audit.
	listRes := get(t, rts.URL, "/debug/traces?fleet=1&limit=64")
	if listRes.code != http.StatusOK {
		t.Fatalf("fleet trace listing = %d %s", listRes.code, listRes.body)
	}
	var listing struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.Unmarshal(listRes.body, &listing); err != nil {
		t.Fatal(err)
	}
	var view *obs.TraceView
	for i := range listing.Traces {
		if listing.Traces[i].TraceID == tr.TraceID && listing.Traces[i].Root.SpanID == root.SpanID {
			view = &listing.Traces[i]
			break
		}
	}
	if view == nil {
		t.Fatalf("traced batch read missing from the fleet listing (%d traces)", len(listing.Traces))
	}
	for gi := 0; gi < nGroups; gi++ {
		want := fmt.Sprintf("group%d/replica0", gi)
		found := false
		for _, in := range view.Instances {
			if in == want {
				found = true
			}
		}
		if !found {
			t.Errorf("fleet view instances %v missing %s", view.Instances, want)
		}
		fetched := false
		for _, f := range view.Fetches {
			if f.Instance == want && f.Error == "" && f.Spans >= 1 {
				fetched = true
			}
		}
		if !fetched {
			t.Errorf("fetch audit %+v has no successful fetch from %s", view.Fetches, want)
		}
	}

	// ---- Metrics federation: dead replicas are data, not errors. ----
	metRes := get(t, rts.URL, "/v1/fleet/metrics")
	if metRes.code != http.StatusOK {
		t.Fatalf("/v1/fleet/metrics = %d with half the fleet down, want 200", metRes.code)
	}
	exposition := string(metRes.body)
	wantLines := []string{
		`paris_fleet_up{instance="router"} 1`,
		`paris_router_lookups_total{instance="router"}`,
		`paris_lookups_total{instance="group0/replica0",group="0",replica="0"}`,
		"fleet:paris_lookups_total ",
		"fleet:paris_router_lookups_total ",
	}
	for gi := 0; gi < nGroups; gi++ {
		wantLines = append(wantLines,
			fmt.Sprintf(`paris_fleet_up{instance="group%d/replica0",group="%d",replica="0"} 1`, gi, gi),
			fmt.Sprintf(`paris_fleet_up{instance="group%d/replica1",group="%d",replica="1"} 0`, gi, gi),
		)
	}
	for _, want := range wantLines {
		if !strings.Contains(exposition, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}

	// ---- Fleet stats rollup. ----
	statsRes := get(t, rts.URL, "/v1/fleet/stats")
	if statsRes.code != http.StatusOK {
		t.Fatalf("/v1/fleet/stats = %d %s", statsRes.code, statsRes.body)
	}
	var fs obs.FleetStats
	if err := json.Unmarshal(statsRes.body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Instances != nGroups*nReplicas || fs.ScrapeFailures != nGroups {
		t.Errorf("fleet stats %d instances with %d scrape failures, want %d and %d",
			fs.Instances, fs.ScrapeFailures, nGroups*nReplicas, nGroups)
	}
	if fs.Failovers < 1 {
		t.Errorf("fleet stats failovers_total = %d, want >= 1", fs.Failovers)
	}
	for _, row := range fs.Replicas {
		if row.Replica == 1 {
			if row.ScrapeOK || row.Error == "" {
				t.Errorf("dead replica %s rolled up as scrape_ok=%v error=%q", row.Instance, row.ScrapeOK, row.Error)
			}
			continue
		}
		if !row.ScrapeOK || row.Requests <= 0 || row.Lookups <= 0 {
			t.Errorf("surviving replica %s rolled up as %+v, want scrape_ok with traffic", row.Instance, row)
		}
	}

	// ---- SLO: the degraded-but-serving families burn no error budget. ----
	sloRes := get(t, rts.URL, "/v1/slo")
	if sloRes.code != http.StatusOK {
		t.Fatalf("/v1/slo = %d %s", sloRes.code, sloRes.body)
	}
	var local obs.SLOReport
	if err := json.Unmarshal(sloRes.body, &local); err != nil {
		t.Fatal(err)
	}
	if local.Instance != "router" {
		t.Errorf("local SLO instance %q, want router", local.Instance)
	}
	assertNoBurn := func(rep obs.SLOReport, who string) {
		t.Helper()
		for _, fam := range rep.Families {
			for _, ws := range fam.Windows {
				if ws.Errors != 0 || ws.ErrorBurnRate != 0 {
					t.Errorf("%s family %q window %s burned error budget: %+v", who, fam.Family, ws.Window, ws)
				}
			}
		}
	}
	assertNoBurn(local, "router")

	fleetRes := get(t, rts.URL, "/v1/slo?fleet=1")
	if fleetRes.code != http.StatusOK {
		t.Fatalf("/v1/slo?fleet=1 = %d %s", fleetRes.code, fleetRes.body)
	}
	var fleet obs.FleetSLO
	if err := json.Unmarshal(fleetRes.body, &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Instance != "fleet" {
		t.Errorf("merged SLO instance %q, want fleet", fleet.Instance)
	}
	if len(fleet.Failures) != nGroups {
		t.Errorf("fleet SLO reached %d dead replicas, want %d failures: %+v", len(fleet.Failures), nGroups, fleet.Failures)
	}
	// Router + one surviving replica per group answered, each slice
	// attributed by topology coordinates.
	if len(fleet.Instances) != 1+nGroups {
		t.Errorf("fleet SLO merged %d instance reports, want %d", len(fleet.Instances), 1+nGroups)
	}
	names := map[string]bool{}
	for _, rep := range fleet.Instances {
		names[rep.Instance] = true
		assertNoBurn(rep, rep.Instance)
	}
	for gi := 0; gi < nGroups; gi++ {
		if want := fmt.Sprintf("group%d/replica0", gi); !names[want] {
			t.Errorf("fleet SLO instances %v missing %s", names, want)
		}
	}
	assertNoBurn(fleet.SLOReport, "fleet")
	var got *obs.SLOFamily
	for i := range fleet.Families {
		if fleet.Families[i].Family == "GET /v1/sameas" {
			got = &fleet.Families[i]
		}
	}
	if got == nil {
		t.Fatalf("merged SLO has no GET /v1/sameas family: %+v", fleet.Families)
	}
	// The degraded sweep hit the router once per pair and a surviving
	// replica once per pair; the merge must see both sides.
	if want := int64(2 * len(pairs)); got.Windows[0].Requests < want {
		t.Errorf("merged 5m window saw %d GET /v1/sameas requests, want >= %d", got.Windows[0].Requests, want)
	}
}
