package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/diskstore"
	"repro/internal/obs"
	"repro/internal/server"
)

// The router rejects oversized batches with the shard servers' own bounds
// (and therefore the same messages a single process would produce).
const (
	maxBatchKeys = server.MaxBatchKeys
	maxBatchBody = server.MaxBatchBody
)

// minHedgeDelay floors the adaptive hedge budget: with no latency history
// the route family's p99 reads 0, and hedging every request instantly
// would double the fleet's read load for nothing.
const minHedgeDelay = time.Millisecond

// defaultShardClient returns the router's default HTTP client: the stock
// transport keeps only two idle connections per host, so a router fanning
// every batch out to the same few shards under load would churn TCP
// connections; raise the per-host idle pool to keep the scatter path on
// warm connections.
func defaultShardClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 0 // no global cap; the per-host cap governs
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithHTTPClient substitutes the *http.Client used for shard requests
// (timeouts, connection pooling, middleware).
func WithHTTPClient(h *http.Client) RouterOption {
	return func(rt *Router) { rt.httpc = h }
}

// WithLogf installs a logger; the default discards.
func WithLogf(f func(format string, args ...any)) RouterOption {
	return func(rt *Router) { rt.logf = f }
}

// WithHedgeDelay fixes the latency budget after which a read hedges to a
// second replica, instead of tracking the route family's sliding p99
// (tests, or deployments with a known latency SLO).
func WithHedgeDelay(d time.Duration) RouterOption {
	return func(rt *Router) { rt.hedgeFixed = d }
}

// WithRateLimit enables per-client token-bucket rate limiting: rps
// sustained requests per second per client (keyed by the first
// X-Forwarded-For hop, else the remote address), bursting to burst
// (default 2×rps). Over-limit requests answer 429 with a Retry-After
// header. rps <= 0 leaves limiting off.
func WithRateLimit(rps float64, burst int) RouterOption {
	return func(rt *Router) {
		if rps > 0 {
			rt.limiter = newRateLimiter(rps, burst)
		}
	}
}

// Router is the stateless front of a sharded deployment: it owns no index,
// only the shard topology and a routing epoch. Each partition is a replica
// set — shardURLs[i] may name several replicas, all holding slice i — and
// reads route to the group owning the queried key: the preferred replica
// first, a hedge to the next once the route's latency budget expires, and
// an immediate failover on transport error, so a one-replica-down group
// keeps serving the same bytes. Batch lookups scatter-gather across the
// owning groups with per-group contexts. Every read without an explicit
// ?snapshot= is pinned to the routing epoch — the newest snapshot version
// every group has acknowledged — so a publish in flight never produces a
// torn cross-shard view. Refresh advances the epoch, and only forward.
type Router struct {
	part   Partitioner
	groups []*group
	httpc  *http.Client
	logf   func(format string, args ...any)

	hedgeFixed time.Duration // 0 = adaptive (route-family p99)
	limiter    *rateLimiter  // nil = no rate limiting

	// epochMu serializes epoch advancement; readers go through the atomic.
	epochMu sync.Mutex
	epoch   atomic.Value // string; "" before the first acknowledged version

	lookups atomic.Uint64
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in rate-limit + telemetry middleware
	reg     *obs.Registry
	met     *routerMetrics
	col     *obs.Collector // flight recorder for the scatter path
}

// NewRouter builds a router over the shard topology, in shard-index order:
// shardURLs[i] is the replica group for slice i — one base URL, or several
// comma-separated ones, each a shard started with -shard i/N where N is
// len(shardURLs).
func NewRouter(shardURLs []string, opts ...RouterOption) (*Router, error) {
	part, err := NewPartitioner(len(shardURLs))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	rt := &Router{
		part:  part,
		httpc: defaultShardClient(),
		logf:  func(string, ...any) {},
		reg:   reg,
		met:   newRouterMetrics(reg),
		col:   obs.NewCollector(obs.CollectorConfig{}),
	}
	rt.met.http.AttachCollector(rt.col)
	rt.epoch.Store("")
	for _, opt := range opts {
		opt(rt)
	}
	for i, element := range shardURLs {
		urls := splitReplicaGroup(element)
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard %d: empty replica group", i)
		}
		g := &group{}
		for j, u := range urls {
			peer, err := client.New(u, client.WithHTTPClient(rt.httpc))
			if err != nil {
				return nil, fmt.Errorf("shard %d replica %d: %w", i, j, err)
			}
			rep := &replica{idx: j, url: u, peer: peer}
			// Optimistic until the first poll or request says otherwise.
			rep.healthy.Store(true)
			g.replicas = append(g.replicas, rep)
		}
		rt.groups = append(rt.groups, g)
	}
	rt.buildMux()
	return rt, nil
}

// Shards returns the number of shard groups behind the router.
func (rt *Router) Shards() int { return len(rt.groups) }

// Epoch returns the routing epoch: the snapshot ID unpinned reads resolve
// against, empty before any version has been acknowledged by every group.
func (rt *Router) Epoch() string { return rt.epoch.Load().(string) }

// checkShardCoords validates one shard's self-reported i/N against its
// position. A plain parisd (no shard coordinates in its stats) passes
// unchecked: it holds a full index, any position works.
func checkShardCoords(stats map[string]any, pos, count int, desc string) error {
	sh, ok := stats["shard"].(map[string]any)
	if !ok {
		return nil
	}
	idx, _ := sh["index"].(float64)
	cnt, _ := sh["count"].(float64)
	if int(idx) != pos || int(cnt) != count {
		return fmt.Errorf("shard: shard order mismatch: position %d is %s, which reports shard %d/%d (want %d/%d)",
			pos, desc, int(idx), int(cnt), pos, count)
	}
	return nil
}

// Refresh recomputes the routing epoch: the newest snapshot version (by
// sequence number — snapshot IDs never compare as strings, the zero-padded
// width overflows at seq 100,000,000) acknowledged by at least one replica
// of every group, polled concurrently. It is phase two of the two-phase
// publish — the epoch flips only once every group holds the version, and
// it never moves backward. Every pass re-checks each reachable replica's
// self-reported -shard i/N coordinates against its group (a replica
// restarted mid-life with swapped flags would otherwise misroute
// silently), refreshes per-replica health and version knowledge for the
// read path's replica selection, and tolerates unreachable replicas: only
// a group with no reachable replica at all leaves the epoch untouched and
// returns an error.
func (rt *Router) Refresh(ctx context.Context) (string, error) {
	type report struct {
		list  client.SnapshotList
		stats map[string]any
		err   error
	}
	reports := make([][]report, len(rt.groups))
	var wg sync.WaitGroup
	for gi, g := range rt.groups {
		reports[gi] = make([]report, len(g.replicas))
		for ri, rep := range g.replicas {
			wg.Add(1)
			go func(r *report, rep *replica) {
				defer wg.Done()
				if r.stats, r.err = rep.peer.Stats(ctx); r.err != nil {
					return
				}
				r.list, r.err = rep.peer.Snapshots(ctx)
			}(&reports[gi][ri], rep)
		}
	}
	wg.Wait()
	// acked[id] counts groups where at least one replica lists id.
	acked := map[string]int{}
	for gi, g := range rt.groups {
		groupHolds := map[string]bool{}
		reachable := 0
		var lastErr error
		for ri, rep := range g.replicas {
			r := &reports[gi][ri]
			if r.err != nil {
				rep.healthy.Store(false)
				lastErr = fmt.Errorf("shard %d replica %d (%s): %w", gi, ri, rep.url, r.err)
				continue
			}
			// Coordinate mismatch is a hard error, not a health problem:
			// the topology is misconfigured and every key this group owns
			// is suspect.
			if err := checkShardCoords(r.stats, gi, len(rt.groups), rep.url); err != nil {
				return rt.Epoch(), err
			}
			rep.healthy.Store(true)
			reachable++
			held := make(map[string]bool, len(r.list.Snapshots))
			for _, info := range r.list.Snapshots {
				held[info.ID] = true
				groupHolds[info.ID] = true
			}
			rep.held.Store(held)
		}
		if reachable == 0 {
			return rt.Epoch(), lastErr
		}
		for id := range groupHolds {
			acked[id]++
		}
	}
	best, bestSeq := "", uint64(0)
	for id, n := range acked {
		if n != len(rt.groups) {
			continue
		}
		seq, err := diskstore.ParseSnapshotID(id)
		if err != nil {
			continue
		}
		if best == "" || seq > bestSeq {
			best, bestSeq = id, seq
		}
	}
	if best == "" {
		return rt.Epoch(), nil
	}
	rt.epochMu.Lock()
	defer rt.epochMu.Unlock()
	cur := rt.Epoch()
	curSeq := uint64(0)
	if cur != "" {
		curSeq, _ = diskstore.ParseSnapshotID(cur)
	}
	if cur == "" || bestSeq > curSeq {
		rt.epoch.Store(best)
		rt.met.epochFlip(best)
		rt.logf("router: epoch %s -> %s", cur, best)
	}
	return rt.Epoch(), nil
}

// Handler returns the router's HTTP API: the /v1 read surface of a parisd,
// served scatter-gather, plus POST /v1/refresh to advance the epoch — all
// wrapped in the rate-limit middleware (when configured) and the telemetry
// middleware, so every request is counted, timed, and traced (an inbound
// X-Paris-Trace continues through the fan-out).
func (rt *Router) Handler() http.Handler { return rt.handler }

// MetricsRegistry exposes the router's metrics registry for the daemon's
// -debug-addr listener and in-process scrapes.
func (rt *Router) MetricsRegistry() *obs.Registry { return rt.reg }

// Recorder exposes the router's flight recorder for the daemon's
// -debug-addr listener (GET /debug/traces).
func (rt *Router) Recorder() *obs.Collector { return rt.col }

func (rt *Router) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sameas", rt.handleSameAs)
	mux.HandleFunc("POST /v1/sameas", rt.handleSameAsBatch)
	mux.HandleFunc("GET /v1/relations", rt.handleScores)
	mux.HandleFunc("GET /v1/classes", rt.handleScores)
	mux.HandleFunc("GET /v1/snapshots", rt.handleSnapshots)
	mux.HandleFunc("POST /v1/refresh", rt.handleRefresh)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Pure liveness; readiness (a routable epoch) is /v1/readyz.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, _ *http.Request) {
		// The router can serve unpinned reads only after its first epoch
		// flip — before that every lookup would 503 anyway.
		epoch := rt.Epoch()
		if epoch == "" {
			httpError(w, http.StatusServiceUnavailable, "no routing epoch yet")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "epoch": epoch})
	})
	mux.HandleFunc("GET /v1/fleet/metrics", rt.handleFleetMetrics)
	mux.HandleFunc("GET /v1/fleet/stats", rt.handleFleetStats)
	mux.HandleFunc("GET /v1/slo", rt.handleSLO)
	// The trace surfaces also live on the main listener: the client's
	// TraceTree and the fleet walkthrough reach the router without a
	// -debug-addr, and shards expose the same by-ID route for stitching.
	mux.Handle("GET /debug/traces", rt.tracesHandler())
	mux.HandleFunc("GET /debug/traces/{trace}", rt.handleTraceByID)
	mux.Handle("GET /metrics", obs.MetricsHandler(rt.reg))
	rt.mux = mux
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
	var inner http.Handler = mux
	if rt.limiter != nil {
		// Inside the telemetry middleware, so 429s are counted and timed
		// like every other response.
		inner = rt.limiter.middleware(rt.met, inner)
	}
	rt.handler = rt.met.http.Middleware(route, rt.logf, inner)
}

// hedgeDelay resolves the latency budget after which a read hedges to a
// second replica: the fixed WithHedgeDelay override when set, otherwise
// the route family's sliding p99 from the flight recorder, floored at
// minHedgeDelay while the window is still cold.
func (rt *Router) hedgeDelay(r *http.Request) time.Duration {
	if rt.hedgeFixed > 0 {
		return rt.hedgeFixed
	}
	_, family := rt.mux.Handler(r)
	d := time.Duration(rt.col.Threshold(family) * float64(time.Millisecond))
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d
}

// pinned resolves the snapshot a read should be served from: the explicit
// ?snapshot= when given, otherwise the routing epoch. ok is false (and the
// 503 a snapshot-less single process would send has been written) when
// neither exists.
func (rt *Router) pinned(w http.ResponseWriter, q url.Values) (pin string, ok bool) {
	if pin = q.Get("snapshot"); pin != "" {
		return pin, true
	}
	if pin = rt.Epoch(); pin == "" {
		// Mirror the single-process read path before any snapshot exists.
		httpError(w, http.StatusServiceUnavailable, "no completed alignment yet")
		return "", false
	}
	return pin, true
}

// handleSameAs routes one lookup to the group owning the key and relays
// the winning replica's response verbatim — the sharded answer is
// byte-identical to the single-process one.
func (rt *Router) handleSameAs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pin, ok := rt.pinned(w, q)
	if !ok {
		return
	}
	q.Set("snapshot", pin)
	rt.lookups.Add(1)
	rt.met.lookups.Inc()
	rt.proxy(w, r, rt.part.Owner(q.Get("key")), q)
}

// handleScores serves /v1/relations and /v1/classes. Every snapshot slice
// carries the full schema-level tables (they are schema-sized, not
// KB-sized), so group 0 answers for the whole deployment.
func (rt *Router) handleScores(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pin, ok := rt.pinned(w, q)
	if !ok {
		return
	}
	q.Set("snapshot", pin)
	rt.proxy(w, r, 0, q)
}

// hopByHopHeaders are the connection-scoped response headers a relay must
// not forward (RFC 9110 §7.6.1); everything else copies verbatim, so a
// routed response carries the shard's headers byte-for-byte.
var hopByHopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// relay copies one shard response through to the client: every header
// except the hop-by-hop set (the "relays the shard's response verbatim"
// contract — Content-Length included, so framing matches the shard's),
// then the status and body.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		if !hopByHopHeaders[k] {
			h[k] = vv
		}
	}
	w.WriteHeader(resp.StatusCode)
	// The status line is written; a copy error has nowhere to go.
	_, _ = io.Copy(w, resp.Body)
}

// proxyAttempt is the outcome of one replica try on the raw relay path.
type proxyAttempt struct {
	idx    int // position in the candidate order
	resp   *http.Response
	err    error
	dur    time.Duration
	hedged bool
}

// proxy relays the request to the group owning it with hedged failover:
// the preferred replica first, a hedge to the next replica once the
// route's latency budget expires, an immediate failover on transport
// error, first response wins with loser cancellation. A server-reported
// HTTP error is a response (every replica would report the same) and
// relays verbatim; only a group whose every replica failed at the
// transport layer surfaces as 502. Each attempt gets its own child span —
// a merged router+shard trace reads http → shard → http — and is timed
// into the per-replica histogram.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard int, q url.Values) {
	target := r.URL.Path
	if len(q) > 0 {
		target += "?" + q.Encode()
	}
	cands := rt.groups[shard].candidates(q.Get("snapshot"))
	results := make(chan proxyAttempt, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	launched, received := 0, 0
	launch := func(hedged bool) {
		rep := cands[launched]
		idx := launched
		launched++
		actx, cancel := context.WithCancel(r.Context())
		cancels[idx] = cancel
		if hedged {
			rt.met.hedges.Inc()
		}
		go func() {
			sctx, sp := obs.StartSpan(actx, rt.logf, "shard")
			sp.Set("shard", shard)
			sp.Set("replica", rep.idx)
			if hedged {
				sp.Set("hedge", true)
			}
			req, err := http.NewRequestWithContext(sctx, r.Method, rep.url+target, nil)
			if err != nil {
				sp.Fail(err)
				sp.End()
				results <- proxyAttempt{idx: idx, err: err, hedged: hedged}
				return
			}
			obs.Inject(sctx, req.Header)
			start := time.Now()
			resp, err := rt.httpc.Do(req)
			dur := time.Since(start)
			rt.met.shardDone(shard, rep.idx, dur.Seconds(), err != nil)
			rep.noteOutcome(err)
			sp.Fail(err)
			sp.End()
			results <- proxyAttempt{idx: idx, resp: resp, err: err, dur: dur, hedged: hedged}
		}()
	}
	launch(false)
	hedge := time.NewTimer(rt.hedgeDelay(r))
	defer hedge.Stop()
	var last proxyAttempt
	for {
		select {
		case <-hedge.C:
			if launched < len(cands) {
				launch(true)
			}
		case a := <-results:
			received++
			if a.err == nil {
				if a.hedged {
					rt.met.hedgeWins.Inc()
				}
				// Cancel the losers and drain their results off-path; the
				// winner's context stays alive until its body is copied.
				for i := 0; i < launched; i++ {
					if i != a.idx {
						cancels[i]()
					}
				}
				if remaining := launched - received; remaining > 0 {
					go func() {
						for i := 0; i < remaining; i++ {
							if la := <-results; la.resp != nil {
								la.resp.Body.Close()
							}
						}
					}()
				}
				defer cancels[a.idx]()
				relay(w, a.resp)
				return
			}
			cancels[a.idx]()
			last = a
			if launched < len(cands) {
				// Transport error: fail over to the next replica right
				// away instead of waiting out the hedge budget.
				rt.met.failovers.Inc()
				launch(false)
			} else if received == launched {
				// The attempt duration makes slow-vs-failed readable from
				// the message alone: "after 10s: context deadline
				// exceeded" is a timeout, "after 2ms: connection refused"
				// a dead group.
				httpError(w, http.StatusBadGateway, "shard %d unreachable after %s: %v",
					shard, last.dur.Round(100*time.Microsecond), last.err)
				return
			}
		}
	}
}

// batchAttempt is the outcome of one replica try on the scatter sub-batch
// path.
type batchAttempt struct {
	idx    int
	resp   client.BatchSameAsResponse
	err    error
	dur    time.Duration
	hedged bool
}

// subBatch sends one group's sub-batch with the same hedged-failover
// discipline as proxy. It returns the winning replica's response — err is
// nil or the server-reported *client.Error it relayed — or, when every
// replica failed at the transport layer, the last transport error and its
// attempt duration.
func (rt *Router) subBatch(ctx context.Context, shard int, budget time.Duration, req client.BatchSameAsQuery) (client.BatchSameAsResponse, time.Duration, error) {
	cands := rt.groups[shard].candidates(req.Snapshot)
	results := make(chan batchAttempt, len(cands))
	cancels := make([]context.CancelFunc, len(cands))
	launched, received := 0, 0
	launch := func(hedged bool) {
		rep := cands[launched]
		idx := launched
		launched++
		actx, cancel := context.WithCancel(ctx)
		cancels[idx] = cancel
		if hedged {
			rt.met.hedges.Inc()
		}
		go func() {
			// One child span per attempt: the fan-out's shape (which
			// replica straggled, where the hedge went) survives into the
			// retained trace tree.
			sctx, sp := obs.StartSpan(actx, rt.logf, "shard")
			sp.Set("shard", shard)
			sp.Set("replica", rep.idx)
			sp.Set("keys", len(req.Keys))
			if hedged {
				sp.Set("hedge", true)
			}
			start := time.Now()
			resp, err := rep.peer.SameAsBatch(sctx, req)
			dur := time.Since(start)
			rt.met.shardDone(shard, rep.idx, dur.Seconds(), err != nil)
			rep.noteOutcome(err)
			sp.Fail(err)
			sp.End()
			results <- batchAttempt{idx: idx, resp: resp, err: err, dur: dur, hedged: hedged}
		}()
	}
	launch(false)
	hedge := time.NewTimer(budget)
	defer hedge.Stop()
	var last batchAttempt
	for {
		select {
		case <-hedge.C:
			if launched < len(cands) {
				launch(true)
			}
		case a := <-results:
			received++
			if a.err == nil || isServerError(a.err) {
				if a.hedged {
					rt.met.hedgeWins.Inc()
				}
				// The winner's response is fully decoded; every context
				// can go, and the losers drain off-path.
				for i := 0; i < launched; i++ {
					cancels[i]()
				}
				if remaining := launched - received; remaining > 0 {
					go func() {
						for i := 0; i < remaining; i++ {
							<-results
						}
					}()
				}
				return a.resp, a.dur, a.err
			}
			cancels[a.idx]()
			last = a
			if launched < len(cands) {
				rt.met.failovers.Inc()
				launch(false)
			} else if received == launched {
				return client.BatchSameAsResponse{}, last.dur, last.err
			}
		}
	}
}

// batchRequest mirrors the shard servers' POST /v1/sameas request body.
type batchRequest struct {
	KB   string   `json:"kb"`
	Keys []string `json:"keys"`
}

// batchResponse mirrors the shard servers' POST /v1/sameas response body,
// field for field, so the reassembled scatter-gather answer is
// byte-identical to a single process serving the unsplit snapshot.
type batchResponse struct {
	Snapshot string                     `json:"snapshot"`
	KB       string                     `json:"kb"`
	Found    int                        `json:"found"`
	Results  []client.BatchSameAsResult `json:"results"`
}

// handleSameAsBatch scatter-gathers one batch lookup: keys group by owning
// shard group, per-group sub-batches fan out concurrently (each under its
// own cancelable context — the first failure cancels the stragglers — and
// each hedged across the group's replicas), and the per-key answers
// reassemble in request order.
func (rt *Router) handleSameAsBatch(w http.ResponseWriter, r *http.Request) {
	explicit := r.URL.Query().Get("snapshot") != ""
	pin, ok := rt.pinned(w, r.URL.Query())
	if !ok {
		return
	}
	// A single process resolves the snapshot before it looks at the body,
	// so an unknown explicit pin must win over any body problem for the
	// error paths to stay byte-identical. The router cannot know the pin
	// without a shard, so it probes one only when a local rejection is
	// about to diverge — the happy path pays nothing.
	reject := func(code int, format string, args ...any) {
		if explicit && !rt.pinExists(r.Context(), pin) {
			httpError(w, http.StatusNotFound, "unknown snapshot %q", pin)
			return
		}
		httpError(w, code, format, args...)
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		reject(http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		reject(http.StatusBadRequest, "keys must not be empty")
		return
	}
	if len(req.Keys) > maxBatchKeys {
		reject(http.StatusBadRequest, "at most %d keys per batch (got %d)", maxBatchKeys, len(req.Keys))
		return
	}
	rt.lookups.Add(uint64(len(req.Keys)))
	rt.met.lookups.Add(uint64(len(req.Keys)))

	// Group keys by owning shard group, remembering every key's request
	// position so answers reassemble in order.
	groupKeys := make([][]string, len(rt.groups))
	groupPos := make([][]int, len(rt.groups))
	for i, key := range req.Keys {
		o := rt.part.Owner(key)
		groupKeys[o] = append(groupKeys[o], key)
		groupPos[o] = append(groupPos[o], i)
	}

	budget := rt.hedgeDelay(r)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type reply struct {
		resp client.BatchSameAsResponse
		err  error
		dur  time.Duration
	}
	replies := make([]reply, len(rt.groups))
	var wg sync.WaitGroup
	for i := range rt.groups {
		if len(groupKeys[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, dur, err := rt.subBatch(ctx, i, budget, client.BatchSameAsQuery{
				KB: req.KB, Keys: groupKeys[i], Snapshot: pin,
			})
			if err != nil {
				// Cancel the sibling sub-batches: the batch is already
				// doomed, no point finishing the fan-out.
				cancel()
			}
			replies[i] = reply{resp, err, dur}
		}(i)
	}
	wg.Wait()

	// Propagate failures deterministically: a server-reported error (every
	// shard would report the same invalid kb or unknown snapshot) beats a
	// transport error, and a genuine transport error beats the
	// context-canceled ripple it caused on the sibling sub-batches — the
	// reported shard must be the one that actually failed, not a healthy
	// cancellation victim. Ties go to the lowest shard index.
	var transportErr error
	transportShard := -1
	for i := range replies {
		err := replies[i].err
		if err == nil {
			continue
		}
		var se *client.Error
		if errors.As(err, &se) {
			httpError(w, se.StatusCode, "%s", se.Message)
			return
		}
		if transportErr == nil ||
			(errors.Is(transportErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			transportErr, transportShard = err, i
		}
	}
	if transportErr != nil {
		httpError(w, http.StatusBadGateway, "shard %d after %s: %v",
			transportShard, replies[transportShard].dur.Round(100*time.Microsecond), transportErr)
		return
	}

	out := batchResponse{
		Snapshot: pin, KB: req.KB,
		Results: make([]client.BatchSameAsResult, len(req.Keys)),
	}
	for i := range replies {
		if len(groupKeys[i]) == 0 {
			continue
		}
		if got, want := len(replies[i].resp.Results), len(groupPos[i]); got != want {
			httpError(w, http.StatusBadGateway, "shard %d returned %d results for %d keys", i, got, want)
			return
		}
		for j, pos := range groupPos[i] {
			out.Results[pos] = replies[i].resp.Results[j]
		}
		out.Found += replies[i].resp.Found
	}
	writeJSON(w, http.StatusOK, out)
}

// snapshotList fetches the deployment's snapshot list from group 0 with
// replica failover (publication pushes every version to every group, so
// any one group knows them all). A server-reported error returns without
// failover: the replica answered, its siblings would answer the same.
func (rt *Router) snapshotList(ctx context.Context) (client.SnapshotList, error) {
	var lastErr error
	for _, rep := range rt.groups[0].candidates("") {
		list, err := rep.peer.Snapshots(ctx)
		rep.noteOutcome(err)
		if err == nil || isServerError(err) {
			return list, err
		}
		lastErr = err
	}
	return client.SnapshotList{}, lastErr
}

// pinExists reports whether an explicitly pinned snapshot exists on the
// deployment. A probe failure counts as existing — the caller's local
// error then stands, which is also what an unreachable fleet would
// surface.
func (rt *Router) pinExists(ctx context.Context, pin string) bool {
	list, err := rt.snapshotList(ctx)
	if err != nil {
		return true
	}
	for _, info := range list.Snapshots {
		if info.ID == pin {
			return true
		}
	}
	return false
}

// handleSnapshots reports the deployment's snapshot versions with the
// router's epoch as "current" — a version pushed but not yet acknowledged
// everywhere is listed, but not current.
func (rt *Router) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	list, err := rt.snapshotList(r.Context())
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard 0: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots": list.Snapshots, "current": rt.Epoch(),
	})
}

// handleRefresh triggers an epoch advance check (POST /v1/refresh), the
// hook a publisher calls after pushing slices to every group.
func (rt *Router) handleRefresh(w http.ResponseWriter, r *http.Request) {
	epoch, err := rt.Refresh(r.Context())
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"epoch": epoch})
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	replicas, healthy := 0, 0
	groups := make([]map[string]any, len(rt.groups))
	for i, g := range rt.groups {
		h := g.healthyCount()
		replicas += len(g.replicas)
		healthy += h
		groups[i] = map[string]any{"replicas": len(g.replicas), "healthy": h}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"shards":   len(rt.groups),
			"replicas": replicas,
			"healthy":  healthy,
			"groups":   groups,
			"epoch":    rt.Epoch(),
			"lookups":  rt.lookups.Load(),
		},
	})
}

// writeJSON and httpError mirror the shard servers' encoders exactly
// (Content-Type, HTML escaping, trailing newline), so routed and direct
// responses are byte-identical.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
