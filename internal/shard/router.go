package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// The router rejects oversized batches with the shard servers' own bounds
// (and therefore the same messages a single process would produce).
const (
	maxBatchKeys = server.MaxBatchKeys
	maxBatchBody = server.MaxBatchBody
)

// defaultShardClient returns the router's default HTTP client: the stock
// transport keeps only two idle connections per host, so a router fanning
// every batch out to the same few shards under load would churn TCP
// connections; raise the per-host idle pool to keep the scatter path on
// warm connections.
func defaultShardClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 0 // no global cap; the per-host cap governs
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithHTTPClient substitutes the *http.Client used for shard requests
// (timeouts, connection pooling, middleware).
func WithHTTPClient(h *http.Client) RouterOption {
	return func(rt *Router) { rt.httpc = h }
}

// WithLogf installs a logger; the default discards.
func WithLogf(f func(format string, args ...any)) RouterOption {
	return func(rt *Router) { rt.logf = f }
}

// Router is the stateless front of a sharded deployment: it owns no index,
// only the shard topology and a routing epoch. Reads route to the shard
// owning the queried key; batch lookups scatter-gather across the owning
// shards with per-shard contexts. Every read without an explicit ?snapshot=
// is pinned to the routing epoch — the newest snapshot version every shard
// has acknowledged — so a publish in flight (slices landed on some shards
// but not all) never produces a torn cross-shard view. Refresh advances the
// epoch, and only forward.
type Router struct {
	part  Partitioner
	urls  []string
	peers []*client.Client
	httpc *http.Client
	logf  func(format string, args ...any)

	// epochMu serializes epoch advancement; readers go through the atomic.
	epochMu sync.Mutex
	epoch   atomic.Value // string; "" before the first acknowledged version

	lookups atomic.Uint64
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the telemetry middleware
	reg     *obs.Registry
	met     *routerMetrics
	col     *obs.Collector // flight recorder for the scatter path
}

// NewRouter builds a router over the shard base URLs, in shard-index order:
// shardURLs[i] must be the shard started with -shard i/N, where N is
// len(shardURLs).
func NewRouter(shardURLs []string, opts ...RouterOption) (*Router, error) {
	part, err := NewPartitioner(len(shardURLs))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	rt := &Router{
		part:  part,
		httpc: defaultShardClient(),
		logf:  func(string, ...any) {},
		reg:   reg,
		met:   newRouterMetrics(reg),
		col:   obs.NewCollector(obs.CollectorConfig{}),
	}
	rt.met.http.AttachCollector(rt.col)
	rt.epoch.Store("")
	for _, opt := range opts {
		opt(rt)
	}
	for i, u := range shardURLs {
		u = strings.TrimSuffix(u, "/")
		peer, err := client.New(u, client.WithHTTPClient(rt.httpc))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		rt.urls = append(rt.urls, u)
		rt.peers = append(rt.peers, peer)
	}
	rt.buildMux()
	return rt, nil
}

// Shards returns the number of shards behind the router.
func (rt *Router) Shards() int { return len(rt.peers) }

// Epoch returns the routing epoch: the snapshot ID unpinned reads resolve
// against, empty before any version has been acknowledged by every shard.
func (rt *Router) Epoch() string { return rt.epoch.Load().(string) }

// verifyShardOrder checks each peer's self-reported shard coordinates
// (/v1/stats) against its position in the list; desc names peer i in
// errors. A plain parisd (no shard coordinates in its stats) passes
// unchecked: it holds a full index, any position works.
func verifyShardOrder(ctx context.Context, peers []*client.Client, desc func(int) string) error {
	for i, peer := range peers {
		stats, err := peer.Stats(ctx)
		if err != nil {
			return fmt.Errorf("shard %d (%s): %w", i, desc(i), err)
		}
		if err := checkShardCoords(stats, i, len(peers), desc(i)); err != nil {
			return err
		}
	}
	return nil
}

// checkShardCoords validates one shard's self-reported i/N against its
// position.
func checkShardCoords(stats map[string]any, pos, count int, desc string) error {
	sh, ok := stats["shard"].(map[string]any)
	if !ok {
		return nil
	}
	idx, _ := sh["index"].(float64)
	cnt, _ := sh["count"].(float64)
	if int(idx) != pos || int(cnt) != count {
		return fmt.Errorf("shard: shard order mismatch: position %d is %s, which reports shard %d/%d (want %d/%d)",
			pos, desc, int(idx), int(cnt), pos, count)
	}
	return nil
}

// Refresh recomputes the routing epoch: the newest snapshot version listed
// by every shard, polled concurrently. It is phase two of the two-phase
// publish — the epoch flips only once each shard has acknowledged
// (persisted and published) its slice, and it never moves backward, so a
// shard restarted with an older state cannot regress routing. Every pass
// also re-checks each shard's self-reported -shard i/N coordinates against
// its position (not just once at startup: a shard restarted mid-life with
// swapped flags would otherwise misroute silently). Refresh returns the
// epoch in force after the check; an unreachable or misordered shard
// leaves the epoch untouched.
func (rt *Router) Refresh(ctx context.Context) (string, error) {
	type report struct {
		list  client.SnapshotList
		stats map[string]any
		err   error
	}
	reports := make([]report, len(rt.peers))
	var wg sync.WaitGroup
	for i := range rt.peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &reports[i]
			if r.stats, r.err = rt.peers[i].Stats(ctx); r.err != nil {
				return
			}
			r.list, r.err = rt.peers[i].Snapshots(ctx)
		}(i)
	}
	wg.Wait()
	acks := map[string]int{}
	for i := range rt.peers {
		if reports[i].err != nil {
			return rt.Epoch(), fmt.Errorf("shard %d (%s): %w", i, rt.urls[i], reports[i].err)
		}
		if err := checkShardCoords(reports[i].stats, i, len(rt.peers), rt.urls[i]); err != nil {
			return rt.Epoch(), err
		}
		for _, info := range reports[i].list.Snapshots {
			acks[info.ID]++
		}
	}
	best := ""
	for id, n := range acks {
		if n == len(rt.peers) && id > best {
			best = id
		}
	}
	rt.epochMu.Lock()
	defer rt.epochMu.Unlock()
	if cur := rt.Epoch(); best > cur {
		rt.epoch.Store(best)
		rt.met.epochFlip(best)
		rt.logf("router: epoch %s -> %s", cur, best)
	}
	return rt.Epoch(), nil
}

// Handler returns the router's HTTP API: the /v1 read surface of a parisd,
// served scatter-gather, plus POST /v1/refresh to advance the epoch — all
// wrapped in the telemetry middleware, so every request is counted, timed,
// and traced (an inbound X-Paris-Trace continues through the fan-out).
func (rt *Router) Handler() http.Handler { return rt.handler }

// MetricsRegistry exposes the router's metrics registry for the daemon's
// -debug-addr listener and in-process scrapes.
func (rt *Router) MetricsRegistry() *obs.Registry { return rt.reg }

// Recorder exposes the router's flight recorder for the daemon's
// -debug-addr listener (GET /debug/traces).
func (rt *Router) Recorder() *obs.Collector { return rt.col }

func (rt *Router) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sameas", rt.handleSameAs)
	mux.HandleFunc("POST /v1/sameas", rt.handleSameAsBatch)
	mux.HandleFunc("GET /v1/relations", rt.handleScores)
	mux.HandleFunc("GET /v1/classes", rt.handleScores)
	mux.HandleFunc("GET /v1/snapshots", rt.handleSnapshots)
	mux.HandleFunc("POST /v1/refresh", rt.handleRefresh)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Pure liveness; readiness (a routable epoch) is /v1/readyz.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, _ *http.Request) {
		// The router can serve unpinned reads only after its first epoch
		// flip — before that every lookup would 503 anyway.
		epoch := rt.Epoch()
		if epoch == "" {
			httpError(w, http.StatusServiceUnavailable, "no routing epoch yet")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "epoch": epoch})
	})
	mux.Handle("GET /metrics", obs.MetricsHandler(rt.reg))
	rt.mux = mux
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
	rt.handler = rt.met.http.Middleware(route, rt.logf, mux)
}

// pinned resolves the snapshot a read should be served from: the explicit
// ?snapshot= when given, otherwise the routing epoch. ok is false (and the
// 503 a snapshot-less single process would send has been written) when
// neither exists.
func (rt *Router) pinned(w http.ResponseWriter, q url.Values) (pin string, ok bool) {
	if pin = q.Get("snapshot"); pin != "" {
		return pin, true
	}
	if pin = rt.Epoch(); pin == "" {
		// Mirror the single-process read path before any snapshot exists.
		httpError(w, http.StatusServiceUnavailable, "no completed alignment yet")
		return "", false
	}
	return pin, true
}

// handleSameAs routes one lookup to the shard owning the key and relays the
// shard's response verbatim — the sharded answer is byte-identical to the
// single-process one.
func (rt *Router) handleSameAs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pin, ok := rt.pinned(w, q)
	if !ok {
		return
	}
	q.Set("snapshot", pin)
	rt.lookups.Add(1)
	rt.met.lookups.Inc()
	rt.proxy(w, r, rt.part.Owner(q.Get("key")), q)
}

// handleScores serves /v1/relations and /v1/classes. Every snapshot slice
// carries the full schema-level tables (they are schema-sized, not
// KB-sized), so shard 0 answers for the whole deployment.
func (rt *Router) handleScores(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pin, ok := rt.pinned(w, q)
	if !ok {
		return
	}
	q.Set("snapshot", pin)
	rt.proxy(w, r, 0, q)
}

// proxy relays the request to one shard with the rewritten query and copies
// the response through untouched. The request trace continues onto the
// shard (X-Paris-Trace), and the attempt is timed — into the per-shard
// histogram, and into the error message on failure, so a shard that timed
// out reads differently from one that refused instantly.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard int, q url.Values) {
	u := rt.urls[shard] + r.URL.Path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	// The shard hop gets its own child span; the shard's http span parents
	// onto it, so a merged router+shard trace tree reads
	// http → shard → http.
	sctx, sp := obs.StartSpan(r.Context(), rt.logf, "shard")
	sp.Set("shard", shard)
	req, err := http.NewRequestWithContext(sctx, r.Method, u, nil)
	if err != nil {
		sp.Fail(err)
		sp.End()
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	obs.Inject(sctx, req.Header)
	start := time.Now()
	resp, err := rt.httpc.Do(req)
	elapsed := time.Since(start)
	rt.met.shardDone(shard, elapsed.Seconds(), err != nil)
	sp.Fail(err)
	sp.End()
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard %d unreachable after %s: %v",
			shard, elapsed.Round(100*time.Microsecond), err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	// The status line is written; a copy error has nowhere to go.
	_, _ = io.Copy(w, resp.Body)
}

// batchRequest mirrors the shard servers' POST /v1/sameas request body.
type batchRequest struct {
	KB   string   `json:"kb"`
	Keys []string `json:"keys"`
}

// batchResponse mirrors the shard servers' POST /v1/sameas response body,
// field for field, so the reassembled scatter-gather answer is
// byte-identical to a single process serving the unsplit snapshot.
type batchResponse struct {
	Snapshot string                     `json:"snapshot"`
	KB       string                     `json:"kb"`
	Found    int                        `json:"found"`
	Results  []client.BatchSameAsResult `json:"results"`
}

// handleSameAsBatch scatter-gathers one batch lookup: keys group by owning
// shard, per-shard sub-batches fan out concurrently (each under its own
// cancelable context — the first failure cancels the stragglers), and the
// per-key answers reassemble in request order.
func (rt *Router) handleSameAsBatch(w http.ResponseWriter, r *http.Request) {
	explicit := r.URL.Query().Get("snapshot") != ""
	pin, ok := rt.pinned(w, r.URL.Query())
	if !ok {
		return
	}
	// A single process resolves the snapshot before it looks at the body,
	// so an unknown explicit pin must win over any body problem for the
	// error paths to stay byte-identical. The router cannot know the pin
	// without a shard, so it probes one only when a local rejection is
	// about to diverge — the happy path pays nothing.
	reject := func(code int, format string, args ...any) {
		if explicit && !rt.pinExists(r.Context(), pin) {
			httpError(w, http.StatusNotFound, "unknown snapshot %q", pin)
			return
		}
		httpError(w, code, format, args...)
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		reject(http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		reject(http.StatusBadRequest, "keys must not be empty")
		return
	}
	if len(req.Keys) > maxBatchKeys {
		reject(http.StatusBadRequest, "at most %d keys per batch (got %d)", maxBatchKeys, len(req.Keys))
		return
	}
	rt.lookups.Add(uint64(len(req.Keys)))
	rt.met.lookups.Add(uint64(len(req.Keys)))

	// Group keys by owning shard, remembering every key's request position
	// so answers reassemble in order.
	groupKeys := make([][]string, len(rt.peers))
	groupPos := make([][]int, len(rt.peers))
	for i, key := range req.Keys {
		o := rt.part.Owner(key)
		groupKeys[o] = append(groupKeys[o], key)
		groupPos[o] = append(groupPos[o], i)
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type reply struct {
		resp client.BatchSameAsResponse
		err  error
		dur  time.Duration
	}
	replies := make([]reply, len(rt.peers))
	var wg sync.WaitGroup
	for i := range rt.peers {
		if len(groupKeys[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One child span per sub-batch: the fan-out's shape (which
			// shard straggled) survives into the retained trace tree.
			sctx, sp := obs.StartSpan(ctx, rt.logf, "shard")
			sp.Set("shard", i)
			sp.Set("keys", len(groupKeys[i]))
			start := time.Now()
			resp, err := rt.peers[i].SameAsBatch(sctx, client.BatchSameAsQuery{
				KB: req.KB, Keys: groupKeys[i], Snapshot: pin,
			})
			dur := time.Since(start)
			rt.met.shardDone(i, dur.Seconds(), err != nil)
			sp.Fail(err)
			sp.End()
			if err != nil {
				// Cancel the sibling sub-batches: the batch is already
				// doomed, no point finishing the fan-out.
				cancel()
			}
			replies[i] = reply{resp, err, dur}
		}(i)
	}
	wg.Wait()

	// Propagate failures deterministically: a server-reported error (every
	// shard would report the same invalid kb or unknown snapshot) beats a
	// transport error, and a genuine transport error beats the
	// context-canceled ripple it caused on the sibling sub-batches — the
	// reported shard must be the one that actually failed, not a healthy
	// cancellation victim. Ties go to the lowest shard index.
	var transportErr error
	transportShard := -1
	for i := range replies {
		err := replies[i].err
		if err == nil {
			continue
		}
		var se *client.Error
		if errors.As(err, &se) {
			httpError(w, se.StatusCode, "%s", se.Message)
			return
		}
		if transportErr == nil ||
			(errors.Is(transportErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			transportErr, transportShard = err, i
		}
	}
	if transportErr != nil {
		// The attempt duration makes slow-vs-failed readable from the
		// message alone: "after 10s: context deadline exceeded" is a timeout,
		// "after 2ms: connection refused" a dead shard. Server-reported
		// errors above stay verbatim — they mirror a single process.
		httpError(w, http.StatusBadGateway, "shard %d after %s: %v",
			transportShard, replies[transportShard].dur.Round(100*time.Microsecond), transportErr)
		return
	}

	out := batchResponse{
		Snapshot: pin, KB: req.KB,
		Results: make([]client.BatchSameAsResult, len(req.Keys)),
	}
	for i := range replies {
		if got, want := len(replies[i].resp.Results), len(groupPos[i]); got != want {
			httpError(w, http.StatusBadGateway, "shard %d returned %d results for %d keys", i, got, want)
			return
		}
		for j, pos := range groupPos[i] {
			out.Results[pos] = replies[i].resp.Results[j]
		}
		out.Found += replies[i].resp.Found
	}
	writeJSON(w, http.StatusOK, out)
}

// pinExists reports whether an explicitly pinned snapshot exists on the
// deployment, asking shard 0 (publication pushes every version to every
// shard). A probe failure counts as existing — the caller's local error
// then stands, which is also what an unreachable fleet would surface.
func (rt *Router) pinExists(ctx context.Context, pin string) bool {
	list, err := rt.peers[0].Snapshots(ctx)
	if err != nil {
		return true
	}
	for _, info := range list.Snapshots {
		if info.ID == pin {
			return true
		}
	}
	return false
}

// handleSnapshots reports the deployment's snapshot versions (shard 0's
// list: publication pushes every version to every shard, so any one shard
// knows them all) with the router's epoch as "current" — a version pushed
// but not yet acknowledged everywhere is listed, but not current.
func (rt *Router) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	list, err := rt.peers[0].Snapshots(r.Context())
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard 0: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshots": list.Snapshots, "current": rt.Epoch(),
	})
}

// handleRefresh triggers an epoch advance check (POST /v1/refresh), the
// hook a publisher calls after pushing slices to every shard.
func (rt *Router) handleRefresh(w http.ResponseWriter, r *http.Request) {
	epoch, err := rt.Refresh(r.Context())
	if err != nil {
		httpError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"epoch": epoch})
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"shards":  len(rt.peers),
			"epoch":   rt.Epoch(),
			"lookups": rt.lookups.Load(),
		},
	})
}

// writeJSON and httpError mirror the shard servers' encoders exactly
// (Content-Type, HTML escaping, trailing newline), so routed and direct
// responses are byte-identical.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
