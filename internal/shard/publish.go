package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
)

// Publish splits snap into per-shard slices (one pass, core.Split) and
// pushes slice i to shard i under the given snapshot ID — phase one of the
// two-phase publish. The ID is common to every shard, so a ?snapshot=-
// pinned read resolves consistently across the deployment. shards must be
// in shard-index order and id a diskstore snapshot ID (snap-NNNNNNNN).
//
// Publish returns once every shard has acknowledged (persisted and
// published) its slice; the caller then flips the routing epoch (phase two,
// Router.Refresh or POST /v1/refresh). On failure some shards may hold the
// new version while others do not — readers are unaffected, since the
// router keeps resolving the old epoch until all shards acknowledge, and
// rerunning the same Publish converges: a shard that already holds the ID
// answers 409, which counts as acknowledged.
func Publish(ctx context.Context, shards []*client.Client, id string, snap *core.ResultSnapshot) error {
	if _, err := diskstore.ParseSnapshotID(id); err != nil {
		return err
	}
	part, err := NewPartitioner(len(shards))
	if err != nil {
		return err
	}
	// A misordered shard list would persist slices on the wrong shards —
	// data corruption, not just misrouting — so check each shard's
	// self-reported i/N coordinates against its position before pushing.
	if err := verifyShardOrder(ctx, shards, func(i int) string { return fmt.Sprintf("peer %d", i) }); err != nil {
		return err
	}
	stampCreated(snap)
	slices := snap.Split(len(shards), part.Owner)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := shards[i].PutSnapshot(ctx, id, slices[i])
			var se *client.Error
			if errors.As(err, &se) && se.StatusCode == http.StatusConflict {
				// A 409 usually means the shard already holds the version
				// (an earlier, partly failed publish) — but the status also
				// covers the reservation-collision rejection, which stores
				// nothing. Only an ID the shard actually lists counts as
				// the acknowledgment.
				if list, lerr := shards[i].Snapshots(ctx); lerr == nil {
					for _, info := range list.Snapshots {
						if info.ID == id {
							err = nil
							break
						}
					}
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("shard: pushing %s to shard %d: %w", id, i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteSlices splits snap and persists slice i into stateDirs[i] through
// the diskstore — the offline path: prepare the shard state directories
// before the shard processes start, instead of pushing slices to running
// shards over HTTP. Each directory becomes a valid parisd -state dir
// serving the slice as its newest snapshot.
func WriteSlices(stateDirs []string, id string, snap *core.ResultSnapshot) error {
	if _, err := diskstore.ParseSnapshotID(id); err != nil {
		return err
	}
	part, err := NewPartitioner(len(stateDirs))
	if err != nil {
		return err
	}
	stampCreated(snap)
	slices := snap.Split(len(stateDirs), part.Owner)
	for i, dir := range stateDirs {
		if err := writeSlice(dir, id, slices[i]); err != nil {
			return fmt.Errorf("shard: writing slice %d to %s: %w", i, dir, err)
		}
	}
	return nil
}

// stampCreated gives a freshly built snapshot its publication time before
// slicing, so every shard of the version records the same creation instant
// (a shard preserves a non-zero CreatedAt on ingest and would otherwise
// stamp its own).
func stampCreated(snap *core.ResultSnapshot) {
	if snap.CreatedAt.IsZero() {
		snap.CreatedAt = time.Now().UTC()
	}
}

// writeSlice persists one slice into one state directory, metadata record
// included so the shard's recovery can list it without a full decode.
func writeSlice(dir, id string, slice *core.ResultSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st, err := diskstore.Open(filepath.Join(dir, "paris.db"))
	if err != nil {
		return err
	}
	defer st.Close()
	info := client.SnapshotInfo{
		ID: id, KB1: slice.KB1, KB2: slice.KB2,
		Created: slice.CreatedAt, Instances: len(slice.Instances),
		Base: slice.Base, DeltaDigest: slice.DeltaDigest, DeltaAdded: slice.DeltaAdded,
	}
	if meta, err := json.Marshal(info); err == nil {
		if err := diskstore.SaveSnapshotMeta(st, id, meta); err != nil {
			return err
		}
	}
	return diskstore.SaveSnapshot(st, id, slice)
}
