package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
)

// Publish splits snap into per-shard slices (one pass, core.Split) and
// pushes slice i to shard i under the given snapshot ID — phase one of the
// two-phase publish. The ID is common to every shard, so a ?snapshot=-
// pinned read resolves consistently across the deployment. shards must be
// in shard-index order and id a diskstore snapshot ID (snap-NNNNNNNN).
// Replicated deployments use PublishGroups; Publish is the
// one-replica-per-shard convenience over it.
//
// Publish returns once every shard has acknowledged (persisted and
// published) its slice; the caller then flips the routing epoch (phase two,
// Router.Refresh or POST /v1/refresh). On failure some shards may hold the
// new version while others do not — readers are unaffected, since the
// router keeps resolving the old epoch until all shards acknowledge, and
// rerunning the same Publish converges: a shard that already holds the ID
// answers 409, which counts as acknowledged.
func Publish(ctx context.Context, shards []*client.Client, id string, snap *core.ResultSnapshot) error {
	groups := make([][]*client.Client, len(shards))
	for i, peer := range shards {
		groups[i] = []*client.Client{peer}
	}
	return PublishGroups(ctx, groups, id, snap)
}

// PublishGroups is Publish over a replica topology: groups[i] is the
// replica set for slice i, and the slice pushes to every replica of the
// group, concurrently across the whole fleet.
//
// An unreachable replica fails PublishGroups but does not block the rest
// of the fleet: the reachable replicas still receive their slices, so the
// router's epoch advances once every group holds the version through at
// least one replica (Router.Refresh needs one acknowledgment per group,
// not per replica). The error tells the operator which replicas missed the
// version; rerunning the same PublishGroups once they return converges,
// exactly like Publish.
func PublishGroups(ctx context.Context, groups [][]*client.Client, id string, snap *core.ResultSnapshot) error {
	if _, err := diskstore.ParseSnapshotID(id); err != nil {
		return err
	}
	part, err := NewPartitioner(len(groups))
	if err != nil {
		return err
	}
	for gi, g := range groups {
		if len(g) == 0 {
			return fmt.Errorf("shard: group %d has no replicas", gi)
		}
	}
	// A misordered topology would persist slices on the wrong shards —
	// data corruption, not just misrouting — so check each replica's
	// self-reported i/N coordinates against its group before pushing. A
	// replica that cannot answer the coordinate probe is skipped for the
	// push too (never persist to an unverified replica): it surfaces in
	// the returned error, while its verified siblings still get the slice.
	verified := make([][]error, len(groups))
	for gi, g := range groups {
		verified[gi] = make([]error, len(g))
		for ri, peer := range g {
			stats, err := peer.Stats(ctx)
			if err != nil {
				verified[gi][ri] = fmt.Errorf("shard: probing %s on shard %d replica %d: %w", id, gi, ri, err)
				continue
			}
			if err := checkShardCoords(stats, gi, len(groups), fmt.Sprintf("peer %d/%d", gi, ri)); err != nil {
				return err
			}
		}
	}
	stampCreated(snap)
	slices := snap.Split(len(groups), part.Owner)
	var wg sync.WaitGroup
	for gi, g := range groups {
		for ri, peer := range g {
			if verified[gi][ri] != nil {
				continue
			}
			wg.Add(1)
			go func(gi, ri int, peer *client.Client) {
				defer wg.Done()
				_, err := peer.PutSnapshot(ctx, id, slices[gi])
				var se *client.Error
				if errors.As(err, &se) && se.StatusCode == http.StatusConflict {
					// A 409 usually means the replica already holds the
					// version (an earlier, partly failed publish) — but the
					// status also covers the reservation-collision
					// rejection, which stores nothing. Only an ID the
					// replica actually lists counts as the acknowledgment.
					if list, lerr := peer.Snapshots(ctx); lerr == nil {
						for _, info := range list.Snapshots {
							if info.ID == id {
								err = nil
								break
							}
						}
					}
				}
				if err != nil {
					verified[gi][ri] = fmt.Errorf("shard: pushing %s to shard %d replica %d: %w", id, gi, ri, err)
				}
			}(gi, ri, peer)
		}
	}
	wg.Wait()
	for _, g := range verified {
		for _, err := range g {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSlices splits snap and persists slice i into stateDirs[i] through
// the diskstore — the offline path: prepare the shard state directories
// before the shard processes start, instead of pushing slices to running
// shards over HTTP. Each directory becomes a valid parisd -state dir
// serving the slice as its newest snapshot.
func WriteSlices(stateDirs []string, id string, snap *core.ResultSnapshot) error {
	if _, err := diskstore.ParseSnapshotID(id); err != nil {
		return err
	}
	part, err := NewPartitioner(len(stateDirs))
	if err != nil {
		return err
	}
	stampCreated(snap)
	slices := snap.Split(len(stateDirs), part.Owner)
	for i, dir := range stateDirs {
		if err := writeSlice(dir, id, slices[i]); err != nil {
			return fmt.Errorf("shard: writing slice %d to %s: %w", i, dir, err)
		}
	}
	return nil
}

// stampCreated gives a freshly built snapshot its publication time before
// slicing, so every shard of the version records the same creation instant
// (a shard preserves a non-zero CreatedAt on ingest and would otherwise
// stamp its own).
func stampCreated(snap *core.ResultSnapshot) {
	if snap.CreatedAt.IsZero() {
		snap.CreatedAt = time.Now().UTC()
	}
}

// writeSlice persists one slice into one state directory, metadata record
// included so the shard's recovery can list it without a full decode.
func writeSlice(dir, id string, slice *core.ResultSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st, err := diskstore.Open(filepath.Join(dir, "paris.db"))
	if err != nil {
		return err
	}
	defer st.Close()
	info := client.SnapshotInfo{
		ID: id, KB1: slice.KB1, KB2: slice.KB2,
		Created: slice.CreatedAt, Instances: len(slice.Instances),
		Base: slice.Base, DeltaDigest: slice.DeltaDigest, DeltaAdded: slice.DeltaAdded,
	}
	if meta, err := json.Marshal(info); err == nil {
		if err := diskstore.SaveSnapshotMeta(st, id, meta); err != nil {
			return err
		}
	}
	return diskstore.SaveSnapshot(st, id, slice)
}
