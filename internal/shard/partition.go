package shard

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/literal"
)

// Partitioner deterministically assigns entity keys to shards. It hashes
// the normalized (folded) form of the key — lowercased, alphanumeric runes
// only, the same fold the serving index uses for normalized lookups — with
// FNV-1a, so:
//
//   - every spelling a single-process lookup would accept ("<http://a/X>",
//     "http://a/x", "HTTP://A/X") routes to the shard holding the canonical
//     entry, and
//   - all canonical keys a normalized lookup could return collapse to one
//     fold and therefore live on one shard, keeping sharded answers
//     byte-identical to single-process ones.
//
// The assignment is a pure function of (key, shard count): restarts,
// rebuilds, and independent router replicas all agree.
type Partitioner struct {
	count int
}

// NewPartitioner returns a partitioner over count shards, rejecting
// non-positive counts.
func NewPartitioner(count int) (Partitioner, error) {
	if count <= 0 {
		return Partitioner{}, fmt.Errorf("shard: partitioner needs a positive shard count, got %d", count)
	}
	return Partitioner{count: count}, nil
}

// Count returns the number of shards keys are partitioned over.
func (p Partitioner) Count() int { return p.count }

// Owner returns the shard index in [0, Count) that serves lookups for key.
func (p Partitioner) Owner(key string) int {
	h := fnv.New64a()
	io.WriteString(h, literal.AlphaNumString(key))
	return int(h.Sum64() % uint64(p.count))
}
