package query

import (
	"context"
	"errors"
	"time"
)

// ExecOptions bounds one execution.
type ExecOptions struct {
	// Limit caps the number of distinct result rows; 0 or negative means
	// unlimited. When more rows exist the result is marked Truncated with
	// Reason "row limit".
	Limit int
}

// Stats reports how a query was answered.
type Stats struct {
	// CacheHit reports whether the plan came from the Engine's cache.
	CacheHit bool `json:"plan_cache_hit"`
	// PlanTime is the time spent parsing and planning (zero on a hit).
	PlanTime time.Duration `json:"plan_ns"`
	// ExecTime is the time spent executing the plan.
	ExecTime time.Duration `json:"exec_ns"`
	// RowsScanned counts candidate statements examined across all steps.
	RowsScanned int `json:"rows_scanned"`
}

// Result is the answer to one query.
type Result struct {
	// Vars names the columns, in the query's first-occurrence order.
	Vars []string
	// Rows holds one Value per variable per distinct binding.
	Rows [][]Value
	// Truncated reports that Rows is incomplete; Reason says why
	// ("row limit" or "time limit").
	Truncated bool
	Reason    string
	Stats     Stats
}

// errStop aborts the DFS once the row limit is reached.
var errStop = errors.New("query: row limit reached")

// ctxCheckInterval is how many scanned statements pass between context
// checks, keeping cancellation latency bounded without a per-statement
// syscall-ish cost.
const ctxCheckInterval = 1024

type executor struct {
	kb         *KB
	steps      []step
	ctx        context.Context
	limit      int
	scanned    int
	sinceCheck int
	seen       map[string]struct{}
	rows       [][]node
	truncated  bool
	packBuf    []byte
}

// execute runs the plan to completion, a row limit, or a context stop.
// A deadline expiry returns the partial result marked Truncated ("time
// limit"); an explicit cancellation returns the context error.
func (kb *KB) execute(ctx context.Context, p *plan, vars []string, opts ExecOptions) (*Result, error) {
	res := &Result{Vars: vars, Rows: [][]Value{}}
	if p.empty {
		return res, nil
	}
	ex := &executor{
		kb:    kb,
		steps: p.steps,
		ctx:   ctx,
		limit: opts.Limit,
		seen:  make(map[string]struct{}),
	}
	row := make([]node, p.nvars)
	for i := range row {
		row[i] = noNode
	}
	err := ex.run(0, row)
	switch {
	case err == nil || errors.Is(err, errStop):
	case errors.Is(err, context.DeadlineExceeded):
		ex.truncated = true
		res.Reason = "time limit"
	default:
		return nil, err
	}
	if ex.truncated && res.Reason == "" {
		res.Reason = "row limit"
	}
	res.Truncated = ex.truncated
	res.Rows = make([][]Value, len(ex.rows))
	for i, r := range ex.rows {
		vals := make([]Value, len(r))
		for j, n := range r {
			vals[j] = kb.value(n)
		}
		res.Rows[i] = vals
	}
	res.Stats.RowsScanned = ex.scanned
	return res, nil
}

func (ex *executor) run(depth int, row []node) error {
	if depth == len(ex.steps) {
		return ex.emit(row)
	}
	st := &ex.steps[depth]

	sKnown := st.sConst != nil || row[st.sSlot] != noNode
	oKnown := st.oConst != nil || row[st.oSlot] != noNode
	switch {
	case sKnown:
		// Index scan / bind join on the subject side; the object side is
		// filtered (bound or constant) or bound here.
		for _, sv := range st.sValues(row) {
			for _, ref := range st.refs {
				seg := ref.subjectSeg(sv)
				for _, m := range seg {
					if err := ex.tick(); err != nil {
						return err
					}
					ov := m.o
					if ref.inv {
						ov = m.s
					}
					if err := ex.acceptO(st, depth, row, ov); err != nil {
						return err
					}
				}
			}
		}
	case oKnown:
		for _, ov := range st.oValues(row) {
			for _, ref := range st.refs {
				seg := ref.objectSeg(ov)
				for _, m := range seg {
					if err := ex.tick(); err != nil {
						return err
					}
					sv := m.s
					if ref.inv {
						sv = m.o
					}
					// The subject var is unbound (sKnown was false).
					row[st.sSlot] = sv
					err := ex.run(depth+1, row)
					row[st.sSlot] = noNode
					if err != nil {
						return err
					}
				}
			}
		}
	default:
		// Nothing bound: full scan, binding both sides.
		for _, ref := range st.refs {
			for _, m := range ref.tab.byS {
				if err := ex.tick(); err != nil {
					return err
				}
				sv, ov := m.s, m.o
				if ref.inv {
					sv, ov = ov, sv
				}
				row[st.sSlot] = sv
				err := ex.acceptO(st, depth, row, ov)
				row[st.sSlot] = noNode
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// acceptO filters the object side against its constant set or bound slot,
// binds it when it is a free variable, and recurses. It handles the
// repeated-variable case (?x <r> ?x) naturally: once the subject side set
// the shared slot, the object side sees it bound and compares.
func (ex *executor) acceptO(st *step, depth int, row []node, ov node) error {
	if st.oConst != nil {
		if !st.oConst.has(ov) {
			return nil
		}
		return ex.run(depth+1, row)
	}
	if cur := row[st.oSlot]; cur != noNode {
		if cur != ov {
			return nil
		}
		return ex.run(depth+1, row)
	}
	row[st.oSlot] = ov
	err := ex.run(depth+1, row)
	row[st.oSlot] = noNode
	return err
}

// sValues enumerates the known subject values of a step.
func (st *step) sValues(row []node) []node {
	if st.sConst != nil {
		return st.sConst.list
	}
	return row[st.sSlot : st.sSlot+1]
}

// oValues enumerates the known object values of a step.
func (st *step) oValues(row []node) []node {
	if st.oConst != nil {
		return st.oConst.list
	}
	return row[st.oSlot : st.oSlot+1]
}

// subjectSeg returns the statements whose effective subject is v.
func (r relRef) subjectSeg(v node) []stmt {
	if r.inv {
		if r.tab.canHash() {
			return r.tab.oIndex()[v]
		}
		return r.tab.scanO(v)
	}
	if r.tab.canHash() {
		return r.tab.sIndex()[v]
	}
	return r.tab.scanS(v)
}

// objectSeg returns the statements whose effective object is v.
func (r relRef) objectSeg(v node) []stmt {
	if r.inv {
		if r.tab.canHash() {
			return r.tab.sIndex()[v]
		}
		return r.tab.scanS(v)
	}
	if r.tab.canHash() {
		return r.tab.oIndex()[v]
	}
	return r.tab.scanO(v)
}

func (ex *executor) tick() error {
	ex.scanned++
	ex.sinceCheck++
	if ex.sinceCheck >= ctxCheckInterval {
		ex.sinceCheck = 0
		if err := ex.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// emit records a complete row if it is distinct, enforcing the row limit
// on distinct rows only — Truncated is set only when a further distinct
// row actually exists beyond the limit.
func (ex *executor) emit(row []node) error {
	ex.packBuf = ex.packBuf[:0]
	for _, n := range row {
		ex.packBuf = append(ex.packBuf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	key := string(ex.packBuf)
	if _, dup := ex.seen[key]; dup {
		return nil
	}
	if ex.limit > 0 && len(ex.rows) >= ex.limit {
		ex.truncated = true
		return errStop
	}
	ex.seen[key] = struct{}{}
	ex.rows = append(ex.rows, append([]node(nil), row...))
	return nil
}
