package query_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestParse(t *testing.T) {
	q, err := query.Parse(`?x a <http://e/Film> . ?x <http://e/directedBy> ?d .`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Patterns))
	}
	if got := q.Patterns[0].P.Value; got != rdf.RDFType {
		t.Fatalf("'a' predicate = %q, want rdf:type", got)
	}
	if want := []string{"x", "d"}; len(q.Vars) != 2 || q.Vars[0] != want[0] || q.Vars[1] != want[1] {
		t.Fatalf("vars = %v, want %v", q.Vars, want)
	}

	q, err = query.Parse(`?x <http://e/name> "say \"hi\"\n\t\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Patterns[0].O.Value; got != "say \"hi\"\n\t\\" {
		t.Fatalf("literal = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"spaces only", "   "},
		{"variable predicate", `?x ?p ?y`},
		{"literal predicate", `?x "p" ?y`},
		{"unterminated iri", `?x <http://e/p ?y`},
		{"unterminated literal", `?x <http://e/p> "abc`},
		{"bad escape", `?x <http://e/p> "a\q"`},
		{"newline in literal", "?x <http://e/p> \"a\nb\""},
		{"missing dot", `?x <http://e/p> ?y ?z <http://e/p> ?w`},
		{"empty var", `? <http://e/p> ?y`},
		{"empty iri", `?x <> ?y`},
		{"space in iri", `?x <http://e/p q> ?y`},
		{"bare word", `x <http://e/p> ?y`},
		{"truncated pattern", `?x <http://e/p>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := query.Parse(tc.src)
			var pe *query.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q) err = %v, want *ParseError", tc.src, err)
			}
		})
	}

	// Bounds: too many patterns, too many vars, oversized query.
	var b strings.Builder
	for i := 0; i <= query.MaxPatterns; i++ {
		if i > 0 {
			b.WriteString(" . ")
		}
		fmt.Fprintf(&b, "?x <http://e/p%d> ?y", i)
	}
	if _, err := query.Parse(b.String()); err == nil {
		t.Fatal("MaxPatterns not enforced")
	}
	b.Reset()
	for i := 0; i <= query.MaxVars/2; i++ {
		if i > 0 {
			b.WriteString(" . ")
		}
		fmt.Fprintf(&b, "?a%d <http://e/p> ?b%d", i, i)
	}
	if _, err := query.Parse(b.String()); err == nil {
		t.Fatal("MaxVars not enforced")
	}
	if _, err := query.Parse("?x <http://e/p> \"" + strings.Repeat("a", query.MaxQueryLen) + "\""); err == nil {
		t.Fatal("MaxQueryLen not enforced")
	}
}

func TestShapeNormalization(t *testing.T) {
	a, err := query.Parse(`?x <http://e/p> ?y . ?y <http://e/q> "v"`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := query.Parse(`?foo <http://e/p> ?bar . ?bar <http://e/q> "v"`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shape() != b.Shape() {
		t.Fatalf("renamed vars change shape:\n%s\n%s", a.Shape(), b.Shape())
	}
	c, err := query.Parse(`?x <http://e/p> ?y . ?y <http://e/q> "w"`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shape() == c.Shape() {
		t.Fatal("different constants share a shape")
	}
	// 'a' is sugar for the rdf:type IRI, so both spell the same shape.
	d1, _ := query.Parse(`?x a <http://e/C>`)
	d2, _ := query.Parse(`?x <` + rdf.RDFType + `> <http://e/C>`)
	if d1.Shape() != d2.Shape() {
		t.Fatal("'a' and explicit rdf:type differ in shape")
	}
}

const (
	tns1 = "http://one.example/"
	tns2 = "http://two.example/"
)

// tinyKB builds a two-KB union by hand: alice/film1 in KB one are aligned
// with a9/f9 in KB two, directed ⊆ directedBy⁻¹ bridges the relation
// spelling difference, and Film ⊆ Movie bridges the classes.
func tinyKB(t testing.TB) *query.KB {
	t.Helper()
	lits := store.NewLiterals()
	b1 := store.NewBuilder("one", lits, nil)
	b2 := store.NewBuilder("two", lits, nil)
	add := func(b *store.Builder, tr rdf.Triple) {
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	i1 := func(l string) rdf.Term { return rdf.IRI(tns1 + l) }
	i2 := func(l string) rdf.Term { return rdf.IRI(tns2 + l) }
	typ := rdf.IRI(rdf.RDFType)

	add(b1, rdf.T(i1("alice"), i1("directed"), i1("film1")))
	add(b1, rdf.T(i1("alice"), i1("name"), rdf.Literal("Alice")))
	add(b1, rdf.T(i1("film1"), typ, i1("Film")))
	add(b1, rdf.T(i1("bob"), i1("knows"), i1("alice")))
	add(b1, rdf.T(i1("bob"), i1("knows"), i1("carol")))
	add(b1, rdf.T(i1("carol"), i1("name"), rdf.Literal("Carol")))

	add(b2, rdf.T(i2("f9"), i2("directedBy"), i2("a9")))
	add(b2, rdf.T(i2("a9"), i2("label"), rdf.Literal("Alice")))
	add(b2, rdf.T(i2("f9"), typ, i2("Movie")))

	snap := &core.ResultSnapshot{
		KB1: "one", KB2: "two",
		Instances: []core.SnapshotAssignment{
			{Key1: "<" + tns1 + "alice>", Key2: "<" + tns2 + "a9>", P: 0.95},
			{Key1: "<" + tns1 + "film1>", Key2: "<" + tns2 + "f9>", P: 0.9},
		},
		Relations12: []core.SnapshotRelation{
			{Sub: tns1 + "directed", Super: tns2 + "directedBy⁻¹", P: 0.8},
			{Sub: tns1 + "directed⁻¹", Super: tns2 + "directedBy", P: 0.8},
		},
		Relations21: []core.SnapshotRelation{
			{Sub: tns2 + "directedBy⁻¹", Super: tns1 + "directed", P: 0.8},
		},
		Classes12: []core.SnapshotClass{
			{Sub: "<" + tns1 + "Film>", Super: "<" + tns2 + "Movie>", P: 0.7},
		},
	}
	kb, err := query.Build(b1.Build(), b2.Build(), snap, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func rowStrings(rows [][]query.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "\t")
	}
	return out
}

func TestUnionQueries(t *testing.T) {
	kb := tinyKB(t)
	e := query.NewEngine(kb, 0)
	ctx := context.Background()

	run := func(src string) *query.Result {
		t.Helper()
		res, err := e.Query(ctx, src, query.ExecOptions{})
		if err != nil {
			t.Fatalf("Query(%q): %v", src, err)
		}
		return res
	}

	// The sub-relation expansion folds KB two's inverted directedBy facts
	// into a KB-one-spelled query (and vice versa); sameAs dedup collapses
	// the two sources into one row.
	res := run(`?d <` + tns1 + `directed> ?m`)
	if len(res.Rows) != 1 {
		t.Fatalf("directed rows = %v", rowStrings(res.Rows))
	}
	got := rowStrings(res.Rows)[0]
	for _, want := range []string{"alice", "a9", "film1", "f9"} {
		if !strings.Contains(got, want) {
			t.Fatalf("row %q missing %q", got, want)
		}
	}
	if res2 := run(`?m <` + tns2 + `directedBy> ?d`); len(res2.Rows) != 1 {
		t.Fatalf("directedBy rows = %v", rowStrings(res2.Rows))
	}

	// Literal object constant.
	if res := run(`?x <` + tns1 + `name> "Alice"`); len(res.Rows) != 1 ||
		!strings.Contains(rowStrings(res.Rows)[0], "a9") {
		t.Fatalf("name rows = %v", rowStrings(res.Rows))
	}
	// Inverse predicate: literal in subject position.
	if res := run(`"Alice" <` + tns1 + `name⁻¹> ?x`); len(res.Rows) != 1 {
		t.Fatalf("name⁻¹ rows = %v", rowStrings(res.Rows))
	}

	// Class constant expands through the cross-KB subclass table: Movie
	// covers KB one's Film instances too (one merged cluster here).
	if res := run(`?x a <` + tns2 + `Movie>`); len(res.Rows) != 1 {
		t.Fatalf("a Movie rows = %v", rowStrings(res.Rows))
	}
	if res := run(`?x a <` + tns1 + `Film>`); len(res.Rows) != 1 {
		t.Fatalf("a Film rows = %v", rowStrings(res.Rows))
	}

	// Cross-KB join through sameAs: knows lives only in KB one, label only
	// in KB two — the row exists in neither KB alone.
	res = run(`?b <` + tns1 + `knows> ?a . ?a <` + tns2 + `label> ?n`)
	if len(res.Rows) != 1 {
		t.Fatalf("cross-KB rows = %v", rowStrings(res.Rows))
	}
	if got := rowStrings(res.Rows)[0]; !strings.Contains(got, "bob") || !strings.Contains(got, `"Alice"`) {
		t.Fatalf("cross-KB row = %q", got)
	}

	// Unknown predicate / unknown constant: empty result, no error.
	if res := run(`?x <` + tns1 + `nope> ?y`); len(res.Rows) != 0 {
		t.Fatalf("unknown predicate rows = %v", rowStrings(res.Rows))
	}
	if res := run(`<` + tns1 + `zed> <` + tns1 + `name> ?n`); len(res.Rows) != 0 {
		t.Fatalf("unknown subject rows = %v", rowStrings(res.Rows))
	}
	// Repeated variable never matches a non-reflexive relation.
	if res := run(`?x <` + tns1 + `knows> ?x`); len(res.Rows) != 0 {
		t.Fatalf("reflexive rows = %v", rowStrings(res.Rows))
	}
}

func TestRowLimit(t *testing.T) {
	kb := tinyKB(t)
	e := query.NewEngine(kb, 0)
	ctx := context.Background()
	src := `?b <` + tns1 + `knows> ?p`

	res, err := e.Query(ctx, src, query.ExecOptions{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Truncated || res.Reason != "row limit" {
		t.Fatalf("limit 1: rows=%d truncated=%v reason=%q", len(res.Rows), res.Truncated, res.Reason)
	}
	// A limit equal to the result size is not a truncation.
	res, err = e.Query(ctx, src, query.ExecOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Truncated {
		t.Fatalf("limit 2: rows=%d truncated=%v", len(res.Rows), res.Truncated)
	}
}

// bigKB is a single-KB union with enough statements that the executor's
// periodic context checks actually fire.
func bigKB(t testing.TB) *query.KB {
	t.Helper()
	lits := store.NewLiterals()
	b1 := store.NewBuilder("big", lits, nil)
	b2 := store.NewBuilder("empty", lits, nil)
	for i := 0; i < 1500; i++ {
		tr := rdf.T(
			rdf.IRI(fmt.Sprintf("http://big.example/x%04d", i)),
			rdf.IRI("http://big.example/r"),
			rdf.IRI(fmt.Sprintf("http://big.example/y%02d", i%40)),
		)
		if err := b1.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := b2.Add(rdf.T(rdf.IRI("http://big.example/only"), rdf.IRI("http://big.example/s"),
		rdf.Literal("x"))); err != nil {
		t.Fatal(err)
	}
	kb, err := query.Build(b1.Build(), b2.Build(), nil, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestCancellationAndDeadline(t *testing.T) {
	kb := bigKB(t)
	e := query.NewEngine(kb, 0)
	src := `?a <http://big.example/r> ?x . ?b <http://big.example/r> ?x`

	// An explicit cancellation aborts with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, src, query.ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query err = %v, want context.Canceled", err)
	}

	// An expired deadline returns the partial rows, marked truncated.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	res, err := e.Query(dctx, src, query.ExecOptions{})
	if err != nil {
		t.Fatalf("deadline query err = %v, want partial result", err)
	}
	if !res.Truncated || res.Reason != "time limit" {
		t.Fatalf("deadline result: truncated=%v reason=%q", res.Truncated, res.Reason)
	}
	full, err := e.Query(context.Background(), src, query.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) >= len(full.Rows) {
		t.Fatalf("deadline rows = %d, full rows = %d; want a strict partial", len(res.Rows), len(full.Rows))
	}
}

func TestPlanCacheLRU(t *testing.T) {
	kb := tinyKB(t)
	e := query.NewEngine(kb, 2)
	qa := `?x <` + tns1 + `name> ?n`
	qb := `?x <` + tns1 + `knows> ?y`
	qc := `?x <` + tns2 + `label> ?n`

	mustPrep := func(src string) bool {
		t.Helper()
		_, hit, err := e.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	if mustPrep(qa) || mustPrep(qb) {
		t.Fatal("first preparations reported a cache hit")
	}
	if !mustPrep(qa) {
		t.Fatal("repeat preparation missed")
	}
	// Same shape under renamed variables hits too.
	if !mustPrep(`?who <` + tns1 + `name> ?what`) {
		t.Fatal("renamed-variable preparation missed")
	}
	// Capacity 2: inserting a third shape evicts the least recent (qb).
	mustPrep(qc)
	if mustPrep(qb) {
		t.Fatal("evicted shape reported a cache hit")
	}
	hits, misses := e.CacheStats()
	if hits != 2 || misses != 4 {
		t.Fatalf("cache stats = %d hits / %d misses, want 2/4", hits, misses)
	}
}

// TestPlanCacheHitsBeatColdPlanning is the CI guard for the plan cache's
// reason to exist: repeated shapes must prepare faster through the cache
// than through cold planning.
func TestPlanCacheHitsBeatColdPlanning(t *testing.T) {
	kb := tinyKB(t)
	src := `?d <` + tns1 + `directed> ?m . ?m a <` + tns2 + `Movie> . ` +
		`?d <` + tns1 + `name> ?n . ?b <` + tns1 + `knows> ?d . ` +
		`?m <` + tns2 + `directedBy> ?d . ?d <` + tns2 + `label> ?n`
	const reps = 300

	cold := time.Duration(0)
	for i := 0; i < reps; i++ {
		e := query.NewEngine(kb, 1)
		start := time.Now()
		if _, hit, err := e.Prepare(src); err != nil || hit {
			t.Fatalf("cold prepare: hit=%v err=%v", hit, err)
		}
		cold += time.Since(start)
	}

	e := query.NewEngine(kb, 1)
	if _, _, err := e.Prepare(src); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, hit, err := e.Prepare(src); err != nil || !hit {
			t.Fatalf("warm prepare: hit=%v err=%v", hit, err)
		}
	}
	warm := time.Since(start)

	if warm >= cold {
		t.Fatalf("plan-cache hits (%v for %d reps) not faster than cold planning (%v)", warm, reps, cold)
	}
	t.Logf("%d preparations: cold %v, cached %v (%.1fx)", reps, cold, warm, float64(cold)/float64(warm))
}

func TestEngineConcurrency(t *testing.T) {
	kb := tinyKB(t)
	e := query.NewEngine(kb, 2)
	queries := []string{
		`?d <` + tns1 + `directed> ?m`,
		`?x <` + tns1 + `name> ?n`,
		`?b <` + tns1 + `knows> ?a . ?a <` + tns2 + `label> ?n`,
		`?x a <` + tns2 + `Movie>`,
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if _, err := e.Query(context.Background(), queries[(g+i)%len(queries)], query.ExecOptions{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
