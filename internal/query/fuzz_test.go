package query_test

import (
	"strings"
	"testing"

	"repro/internal/query"
)

// FuzzQueryParse asserts the parser never panics, enforces its bounds, and
// round-trips every accepted query: rendering a parsed query and parsing
// it again must yield the identical canonical form and shape.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		`?x <http://e/p> ?y`,
		`?x a <http://e/Film> . ?x <http://e/directedBy> ?d .`,
		`?x <http://e/name> "say \"hi\"\n" . ?x <http://e/p⁻¹> ?y`,
		`"lit" <http://e/p> "lit2"`,
		`<http://e/s> <http://e/p> <http://e/o>`,
		`?x <http://e/p> ?x`,
		``,
		`?x ?p ?y`,
		`?x <http://e/p "unterminated`,
		`?x <> ""`,
		"?x <http://e/p> \"a\nb\"",
		`? <http://e/p> ?y`,
		strings.Repeat(`?x <http://e/p> ?y . `, 20),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		if len(q.Patterns) == 0 || len(q.Patterns) > query.MaxPatterns {
			t.Fatalf("accepted %d patterns", len(q.Patterns))
		}
		if len(q.Vars) > query.MaxVars {
			t.Fatalf("accepted %d vars", len(q.Vars))
		}
		rendered := q.String()
		q2, err := query.Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, src, err)
		}
		if q2.String() != rendered {
			t.Fatalf("render not stable: %q -> %q", rendered, q2.String())
		}
		if q2.Shape() != q.Shape() {
			t.Fatalf("shape not stable under round-trip: %q vs %q", q.Shape(), q2.Shape())
		}
	})
}
