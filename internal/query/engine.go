package query

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPlanCacheSize is the plan-cache capacity NewEngine uses when the
// caller passes a non-positive size.
const DefaultPlanCacheSize = 128

// Prepared is a parsed query bound to a cached (or freshly built) plan.
// The plan is keyed on the query's normalized shape, so the variable
// names here are this parse's own; slot order is first-occurrence order
// in both.
type Prepared struct {
	Query *Query
	Shape string
	plan  *plan
}

// Engine answers queries over one frozen union KB, caching plans by
// normalized query shape in a bounded LRU. It is safe for concurrent use.
type Engine struct {
	kb *KB

	mu      sync.Mutex
	byShape map[string]*list.Element
	lru     *list.List // of *cacheEntry, front = most recent
	cap     int

	hits, misses atomic.Uint64
}

type cacheEntry struct {
	shape string
	plan  *plan
}

// NewEngine returns an engine over kb with a plan cache of the given
// capacity (<= 0 selects DefaultPlanCacheSize).
func NewEngine(kb *KB, planCacheSize int) *Engine {
	if planCacheSize <= 0 {
		planCacheSize = DefaultPlanCacheSize
	}
	return &Engine{
		kb:      kb,
		byShape: make(map[string]*list.Element, planCacheSize),
		lru:     list.New(),
		cap:     planCacheSize,
	}
}

// KB returns the engine's union KB.
func (e *Engine) KB() *KB { return e.kb }

// CacheStats returns the cumulative plan-cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Prepare parses src and returns its plan, from the cache when the shape
// has been planned before. The boolean reports a cache hit.
func (e *Engine) Prepare(src string) (*Prepared, bool, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, false, err
	}
	shape := q.Shape()
	e.mu.Lock()
	if el, ok := e.byShape[shape]; ok {
		e.lru.MoveToFront(el)
		p := el.Value.(*cacheEntry).plan
		e.mu.Unlock()
		e.hits.Add(1)
		return &Prepared{Query: q, Shape: shape, plan: p}, true, nil
	}
	e.mu.Unlock()
	e.misses.Add(1)

	// Plan outside the lock: concurrent first-queries of one shape may
	// plan twice, but never block each other behind a slow plan.
	p := e.kb.newPlan(q)
	e.mu.Lock()
	if el, ok := e.byShape[shape]; ok {
		e.lru.MoveToFront(el)
		p = el.Value.(*cacheEntry).plan
	} else {
		e.byShape[shape] = e.lru.PushFront(&cacheEntry{shape: shape, plan: p})
		for e.lru.Len() > e.cap {
			oldest := e.lru.Back()
			e.lru.Remove(oldest)
			delete(e.byShape, oldest.Value.(*cacheEntry).shape)
		}
	}
	e.mu.Unlock()
	return &Prepared{Query: q, Shape: shape, plan: p}, false, nil
}

// Execute runs a prepared plan under ctx. Stats.CacheHit and
// Stats.PlanTime are left for the caller (see Query), which knows how the
// plan was obtained.
func (e *Engine) Execute(ctx context.Context, p *Prepared, opts ExecOptions) (*Result, error) {
	start := time.Now()
	res, err := e.kb.execute(ctx, p.plan, p.Query.Vars, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.ExecTime = time.Since(start)
	return res, nil
}

// Query parses, plans (through the cache), and executes src.
func (e *Engine) Query(ctx context.Context, src string, opts ExecOptions) (*Result, error) {
	start := time.Now()
	prep, hit, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	planTime := time.Since(start)
	res, err := e.Execute(ctx, prep, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.CacheHit = hit
	res.Stats.PlanTime = planTime
	return res, nil
}
