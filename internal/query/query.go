// Package query is the conjunctive-query subsystem over the aligned union
// KB: it answers triple-pattern queries that span both ontologies of a
// PARIS alignment *through* the alignment itself. Variables range over
// sameAs equivalence classes (so one pattern matches facts from either KB),
// relation constants expand through the snapshot's sub-relation tables, and
// class constants in type patterns expand through the subclass tables —
// sameAs as a join, not an endpoint.
//
// The pipeline follows the janus-datalog recipe: a small IR + parser
// (Parse), a greedy join planner without statistics (most-bound, then
// smallest-fanout clause first), relational operators over sorted statement
// indexes (index scan, bind join, pre-sized hash join), and a bounded LRU
// plan cache keyed on the normalized query shape (Engine).
package query

import (
	"fmt"
	"strings"
)

// Limits on one parsed query, enforced by Parse so a hostile query cannot
// balloon planning or execution state.
const (
	// MaxQueryLen bounds the query text in bytes.
	MaxQueryLen = 8192
	// MaxPatterns bounds the triple patterns of one query.
	MaxPatterns = 16
	// MaxVars bounds the distinct variables of one query.
	MaxVars = 16
)

// TermKind discriminates the kinds of terms a pattern position can hold.
type TermKind uint8

const (
	// TermVar is a variable (?name).
	TermVar TermKind = iota
	// TermIRI is an IRI constant (<http://...>). In predicate position a
	// trailing ⁻¹ marker queries the inverse direction.
	TermIRI
	// TermLit is a literal constant ("...").
	TermLit
)

// Term is one position of a triple pattern.
type Term struct {
	Kind TermKind
	// Value is the variable name without '?', the IRI without angle
	// brackets, or the unescaped literal value.
	Value string
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// String renders the term in query syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return "?" + t.Value
	case TermIRI:
		return "<" + t.Value + ">"
	default:
		return quoteLiteral(t.Value)
	}
}

// Pattern is one triple pattern S P O. P is always an IRI constant
// (variable predicates are rejected: relation constants are what expands
// through the alignment's sub-relation tables).
type Pattern struct {
	S, P, O Term
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String()
}

// Query is the parsed IR: a conjunction of triple patterns.
type Query struct {
	Patterns []Pattern
	// Vars lists the distinct variable names in first-occurrence order —
	// the projection of every result row.
	Vars []string
}

// String renders the query in canonical syntax.
func (q *Query) String() string {
	parts := make([]string, len(q.Patterns))
	for i, p := range q.Patterns {
		parts[i] = p.String()
	}
	return strings.Join(parts, " . ")
}

// Shape returns the normalized form of the query used as the plan-cache
// key: variables are renamed to their first-occurrence index, so queries
// that differ only in variable naming share one cached plan. Constants are
// kept verbatim — they determine the relation and class expansions compiled
// into the plan.
func (q *Query) Shape() string {
	slot := make(map[string]int, len(q.Vars))
	for i, v := range q.Vars {
		slot[v] = i
	}
	var b strings.Builder
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		for j, t := range [3]Term{p.S, p.P, p.O} {
			if j > 0 {
				b.WriteByte(' ')
			}
			if t.IsVar() {
				fmt.Fprintf(&b, "?%d", slot[t.Value])
			} else {
				b.WriteString(t.String())
			}
		}
	}
	return b.String()
}

// ParseError reports a syntactically invalid query with a byte offset.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at byte %d: %s", e.Pos, e.Msg)
}

// Parse parses the conjunctive-query syntax:
//
//	?x <http://.../type> <http://.../Film> . ?x <http://.../directedBy> ?d
//
// Patterns are S P O triples separated by '.'; a trailing '.' is allowed.
// Terms are variables (?name), IRIs (<...>), or literals ("..." with \"
// \\ \n \t \r escapes). The keyword 'a' in predicate position abbreviates
// rdf:type. Predicates must be IRI constants; subjects and objects may be
// any term kind.
func Parse(src string) (*Query, error) {
	if len(src) > MaxQueryLen {
		return nil, &ParseError{Pos: MaxQueryLen, Msg: fmt.Sprintf("query exceeds %d bytes", MaxQueryLen)}
	}
	p := &parser{src: src}
	q := &Query{}
	seen := make(map[string]bool)
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if len(q.Patterns) >= MaxPatterns {
			return nil, &ParseError{Pos: p.pos, Msg: fmt.Sprintf("more than %d patterns", MaxPatterns)}
		}
		q.Patterns = append(q.Patterns, pat)
		for _, t := range [3]Term{pat.S, pat.P, pat.O} {
			if t.IsVar() && !seen[t.Value] {
				if len(q.Vars) >= MaxVars {
					return nil, &ParseError{Pos: p.pos, Msg: fmt.Sprintf("more than %d variables", MaxVars)}
				}
				seen[t.Value] = true
				q.Vars = append(q.Vars, t.Value)
			}
		}
		p.skipSpace()
		if p.eof() {
			break
		}
		if p.src[p.pos] != '.' {
			return nil, &ParseError{Pos: p.pos, Msg: "expected '.' between patterns"}
		}
		p.pos++
	}
	if len(q.Patterns) == 0 {
		return nil, &ParseError{Pos: 0, Msg: "empty query"}
	}
	return q, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) pattern() (Pattern, error) {
	s, err := p.term("subject")
	if err != nil {
		return Pattern{}, err
	}
	p.skipSpace()
	pr, err := p.predicate()
	if err != nil {
		return Pattern{}, err
	}
	p.skipSpace()
	o, err := p.term("object")
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

// predicate parses the P position: an IRI constant or the keyword 'a'
// (rdf:type). Variables are rejected here — a variable predicate has no
// relation constant to expand through the sub-relation tables, and the
// planner's operator tree is built per resolved relation set.
func (p *parser) predicate() (Term, error) {
	if p.eof() {
		return Term{}, &ParseError{Pos: p.pos, Msg: "expected predicate"}
	}
	if p.src[p.pos] == 'a' && (p.pos+1 == len(p.src) || isSpace(p.src[p.pos+1])) {
		p.pos++
		return Term{Kind: TermIRI, Value: rdfTypeIRI}, nil
	}
	t, err := p.term("predicate")
	if err != nil {
		return Term{}, err
	}
	if t.Kind != TermIRI {
		return Term{}, &ParseError{Pos: p.pos, Msg: "predicate must be an IRI constant (or 'a')"}
	}
	return t, nil
}

func (p *parser) term(role string) (Term, error) {
	if p.eof() {
		return Term{}, &ParseError{Pos: p.pos, Msg: "expected " + role}
	}
	switch p.src[p.pos] {
	case '?':
		return p.variable()
	case '<':
		return p.iri()
	case '"':
		return p.literal()
	default:
		return Term{}, &ParseError{Pos: p.pos,
			Msg: fmt.Sprintf("expected %s (?var, <iri>, or \"literal\"), found %q", role, p.src[p.pos])}
	}
}

func (p *parser) variable() (Term, error) {
	start := p.pos
	p.pos++ // '?'
	for !p.eof() && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start+1 {
		return Term{}, &ParseError{Pos: start, Msg: "empty variable name"}
	}
	return Term{Kind: TermVar, Value: p.src[start+1 : p.pos]}, nil
}

func (p *parser) iri() (Term, error) {
	start := p.pos
	p.pos++ // '<'
	for !p.eof() && p.src[p.pos] != '>' {
		c := p.src[p.pos]
		if c == '<' || c == '"' || c == ' ' || c == '\n' || c == '\t' || c == '\r' {
			return Term{}, &ParseError{Pos: p.pos, Msg: fmt.Sprintf("invalid character %q in IRI", c)}
		}
		p.pos++
	}
	if p.eof() {
		return Term{}, &ParseError{Pos: start, Msg: "unterminated IRI"}
	}
	v := p.src[start+1 : p.pos]
	p.pos++ // '>'
	if v == "" {
		return Term{}, &ParseError{Pos: start, Msg: "empty IRI"}
	}
	return Term{Kind: TermIRI, Value: v}, nil
}

func (p *parser) literal() (Term, error) {
	start := p.pos
	p.pos++ // '"'
	var b strings.Builder
	for !p.eof() {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return Term{Kind: TermLit, Value: b.String()}, nil
		case '\\':
			p.pos++
			if p.eof() {
				return Term{}, &ParseError{Pos: start, Msg: "unterminated escape"}
			}
			switch e := p.src[p.pos]; e {
			case '"', '\\':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return Term{}, &ParseError{Pos: p.pos, Msg: fmt.Sprintf("unknown escape \\%c", e)}
			}
			p.pos++
		case '\n', '\r':
			return Term{}, &ParseError{Pos: p.pos, Msg: "newline in literal"}
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return Term{}, &ParseError{Pos: start, Msg: "unterminated literal"}
}

func quoteLiteral(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
