package query

// ReferenceEval is the oracle for the differential harness: it answers a
// query by brute force — patterns in written order, every pattern a full
// linear scan over all its expanded tables, consistency checked term by
// term — sharing only the union KB's tables and constant resolution with
// the planned executor. No join ordering, no indexes, no hash maps: if the
// engine and this function disagree on any corpus, the engine is wrong.
// It is exported for tests and tools; production traffic goes through
// Engine.
func ReferenceEval(kb *KB, q *Query) [][]Value {
	slotOf := make(map[string]int, len(q.Vars))
	for i, v := range q.Vars {
		slotOf[v] = i
	}

	type refPat struct {
		refs           []relRef
		sSlot, oSlot   int
		sConst, oConst []node
		empty          bool
	}
	pats := make([]refPat, len(q.Patterns))
	for i, pat := range q.Patterns {
		base, predInv := splitInv(pat.P.Value)
		rp := refPat{refs: kb.relRefs(pat.P.Value), sSlot: -1, oSlot: -1}
		if len(rp.refs) == 0 {
			rp.empty = true
		}
		isType := base == rdfTypeIRI
		if pat.S.IsVar() {
			rp.sSlot = slotOf[pat.S.Value]
		} else {
			rp.sConst = kb.constNodes(pat.S, isType && predInv)
			if len(rp.sConst) == 0 {
				rp.empty = true
			}
		}
		if pat.O.IsVar() {
			rp.oSlot = slotOf[pat.O.Value]
		} else {
			rp.oConst = kb.constNodes(pat.O, isType && !predInv)
			if len(rp.oConst) == 0 {
				rp.empty = true
			}
		}
		if rp.empty {
			return [][]Value{}
		}
		pats[i] = rp
	}

	contains := func(ns []node, n node) bool {
		for _, have := range ns {
			if have == n {
				return true
			}
		}
		return false
	}

	seen := make(map[string]struct{})
	var rows [][]node
	row := make([]node, len(q.Vars))
	for i := range row {
		row[i] = noNode
	}
	var walk func(depth int)
	walk = func(depth int) {
		if depth == len(pats) {
			var buf []byte
			for _, n := range row {
				buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
			}
			key := string(buf)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			rows = append(rows, append([]node(nil), row...))
			return
		}
		rp := &pats[depth]
		for _, ref := range rp.refs {
			for _, m := range ref.tab.byS {
				sv, ov := m.s, m.o
				if ref.inv {
					sv, ov = ov, sv
				}
				// Subject consistency.
				var sBound bool
				if rp.sConst != nil {
					if !contains(rp.sConst, sv) {
						continue
					}
				} else if cur := row[rp.sSlot]; cur != noNode {
					if cur != sv {
						continue
					}
				} else {
					row[rp.sSlot] = sv
					sBound = true
				}
				// Object consistency (sees a same-slot subject binding).
				var oBound bool
				ok := true
				if rp.oConst != nil {
					ok = contains(rp.oConst, ov)
				} else if cur := row[rp.oSlot]; cur != noNode {
					ok = cur == ov
				} else {
					row[rp.oSlot] = ov
					oBound = true
				}
				if ok {
					walk(depth + 1)
				}
				if oBound {
					row[rp.oSlot] = noNode
				}
				if sBound {
					row[rp.sSlot] = noNode
				}
			}
		}
	}
	walk(0)

	out := make([][]Value, len(rows))
	for i, r := range rows {
		vals := make([]Value, len(r))
		for j, n := range r {
			vals[j] = kb.value(n)
		}
		out[i] = vals
	}
	return out
}
