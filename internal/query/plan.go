package query

// The planner is deliberately statistics-free, following the janus-datalog
// recipe: greedy clause ordering — most bound positions first, smallest
// total fanout as the tie-break — plans in microseconds and is good enough
// for conjunctive patterns of this size. Constant resolution (relation
// expansion through the sub-relation tables, class expansion through the
// subclass tables, key/literal interning) happens here, once per shape,
// so cached plans skip it entirely; hash indexes for small tables are also
// forced at plan time, so a cache hit pays neither planning nor index
// build cost.

// constSet is a resolved constant: the set of union-KB nodes a query
// constant denotes (usually one; several for keys interned by both KBs or
// for class constants expanded through the subclass tables).
type constSet struct {
	list []node
	set  map[node]bool // built above smallConstSet for O(1) membership
}

const smallConstSet = 4

func newConstSet(ns []node) *constSet {
	cs := &constSet{list: ns}
	if len(ns) > smallConstSet {
		cs.set = make(map[node]bool, len(ns))
		for _, n := range ns {
			cs.set[n] = true
		}
	}
	return cs
}

func (c *constSet) has(n node) bool {
	if c.set != nil {
		return c.set[n]
	}
	for _, have := range c.list {
		if have == n {
			return true
		}
	}
	return false
}

// step is one planned pattern: its expanded tables and its resolved
// subject/object accessors. Slot is -1 when the position is a constant.
type step struct {
	pat            Pattern
	refs           []relRef
	sSlot, oSlot   int
	sConst, oConst *constSet
}

// plan is the ordered operator tree (a left-deep chain of index-scan /
// bind-join steps) for one query shape. Plans are immutable and shared
// across executions via the Engine's cache.
type plan struct {
	// empty marks a query that can never match: a predicate resolving to
	// no table in either KB, or a constant denoting nothing.
	empty bool
	nvars int
	steps []step
}

// newPlan compiles and orders a parsed query against the KB.
func (kb *KB) newPlan(q *Query) *plan {
	slotOf := make(map[string]int, len(q.Vars))
	for i, v := range q.Vars {
		slotOf[v] = i
	}
	p := &plan{nvars: len(q.Vars)}

	type cand struct {
		st     step
		fanout int
	}
	cands := make([]cand, 0, len(q.Patterns))
	for _, pat := range q.Patterns {
		base, predInv := splitInv(pat.P.Value)
		refs := kb.relRefs(pat.P.Value)
		if len(refs) == 0 {
			p.empty = true
			return p
		}
		st := step{pat: pat, refs: refs, sSlot: -1, oSlot: -1}
		isType := base == rdfTypeIRI
		if pat.S.IsVar() {
			st.sSlot = slotOf[pat.S.Value]
		} else {
			nodes := kb.constNodes(pat.S, isType && predInv)
			if len(nodes) == 0 {
				p.empty = true
				return p
			}
			st.sConst = newConstSet(nodes)
		}
		if pat.O.IsVar() {
			st.oSlot = slotOf[pat.O.Value]
		} else {
			nodes := kb.constNodes(pat.O, isType && !predInv)
			if len(nodes) == 0 {
				p.empty = true
				return p
			}
			st.oConst = newConstSet(nodes)
		}
		fanout := 0
		for _, r := range refs {
			fanout += r.tab.size()
		}
		cands = append(cands, cand{st: st, fanout: fanout})
	}

	// Greedy join order: repeatedly take the pattern with the most bound
	// positions (constants, or variables bound by an earlier step); break
	// ties by smaller total statement count, then by written order.
	bound := make([]bool, len(q.Vars))
	used := make([]bool, len(cands))
	for range cands {
		best, bestScore, bestFan := -1, -1, 0
		for i := range cands {
			if used[i] {
				continue
			}
			c := &cands[i]
			score := 0
			if c.st.sConst != nil || (c.st.sSlot >= 0 && bound[c.st.sSlot]) {
				score++
			}
			if c.st.oConst != nil || (c.st.oSlot >= 0 && bound[c.st.oSlot]) {
				score++
			}
			if best < 0 || score > bestScore || (score == bestScore && c.fanout < bestFan) {
				best, bestScore, bestFan = i, score, c.fanout
			}
		}
		used[best] = true
		st := cands[best].st
		if st.sSlot >= 0 {
			bound[st.sSlot] = true
		}
		if st.oSlot >= 0 {
			bound[st.oSlot] = true
		}
		// Pre-size the hash indexes of small tables now so executions —
		// including every future cache hit on this shape — get O(1) bound
		// lookups without ever building an index on the hot path.
		for _, r := range st.refs {
			if r.tab.canHash() {
				r.tab.buildHash()
			}
		}
		p.steps = append(p.steps, st)
	}
	return p
}
