package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/store"
)

// invSuffix is the marker store.RelationName appends to inverse relations;
// snapshot sub-relation entries use the same convention, and query
// predicates may carry it to query a relation in the inverse direction.
const invSuffix = "⁻¹"

// rdfTypeIRI is the predicate the 'a' keyword and the per-KB pseudo type
// tables are registered under.
const rdfTypeIRI = rdf.RDFType

// Default thresholds applied by Build when Options leaves them zero.
const (
	// DefaultMinInstanceP is the minimum sameAs assignment probability for
	// two instances to share an equivalence class.
	DefaultMinInstanceP = 0.5
	// DefaultMinScoreP is the minimum sub-relation / subclass score for a
	// snapshot entry to participate in predicate and class expansion.
	DefaultMinScoreP = 0.1
)

// node identifies a value in the union KB: either a sameAs equivalence
// class of resources (cluster) or a literal from the shared literal table.
// The top bit discriminates, mirroring store.Node.
type node uint32

const litNode node = 1 << 31

// noNode is the sentinel for an unbound row slot.
const noNode = ^node(0)

func (n node) isLit() bool    { return n != noNode && n&litNode != 0 }
func (n node) lit() store.Lit { return store.Lit(n &^ litNode) }

// stmt is one statement of a union-KB relation table, both sides already
// mapped to nodes.
type stmt struct{ s, o node }

// hashJoinMaxStmts bounds the tables that get a pre-sized hash index: the
// planner builds the index once per table (shared by every cached plan) so
// repeated bound lookups are O(1) instead of a binary search.
const hashJoinMaxStmts = 1 << 14

// relTab is one relation's statements under two sort orders, the
// multi-index layout the executor's access paths run on.
type relTab struct {
	label string // "<kb>:<relation>" for spans and debugging
	byS   []stmt // sorted by (s, o)
	byO   []stmt // sorted by (o, s)

	hashOnce sync.Once
	hashS    map[node][]stmt // s -> contiguous byS segment
	hashO    map[node][]stmt // o -> contiguous byO segment
}

func newRelTab(label string, st []stmt) *relTab {
	t := &relTab{label: label, byS: st}
	sort.Slice(t.byS, func(i, j int) bool {
		a, b := t.byS[i], t.byS[j]
		if a.s != b.s {
			return a.s < b.s
		}
		return a.o < b.o
	})
	t.byO = append([]stmt(nil), t.byS...)
	sort.Slice(t.byO, func(i, j int) bool {
		a, b := t.byO[i], t.byO[j]
		if a.o != b.o {
			return a.o < b.o
		}
		return a.s < b.s
	})
	return t
}

func (t *relTab) size() int { return len(t.byS) }

// canHash reports whether the table is small enough for hash indexes.
func (t *relTab) canHash() bool { return len(t.byS) <= hashJoinMaxStmts }

// buildHash builds both hash indexes, pre-sized to the exact distinct-key
// counts (one pass over the sorted orders). Safe for concurrent callers;
// the work happens once per table.
func (t *relTab) buildHash() {
	t.hashOnce.Do(func() {
		t.hashS = segment(t.byS, func(st stmt) node { return st.s })
		t.hashO = segment(t.byO, func(st stmt) node { return st.o })
	})
}

// segment slices a key-sorted statement list into per-key subslices.
func segment(sorted []stmt, key func(stmt) node) map[node][]stmt {
	distinct := 0
	for i := range sorted {
		if i == 0 || key(sorted[i]) != key(sorted[i-1]) {
			distinct++
		}
	}
	m := make(map[node][]stmt, distinct)
	start := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || key(sorted[i]) != key(sorted[start]) {
			m[key(sorted[start])] = sorted[start:i:i]
			start = i
		}
	}
	return m
}

// sIndex returns the subject hash index, building it if needed.
func (t *relTab) sIndex() map[node][]stmt {
	t.buildHash()
	return t.hashS
}

// oIndex returns the object hash index, building it if needed.
func (t *relTab) oIndex() map[node][]stmt {
	t.buildHash()
	return t.hashO
}

// scanS returns the byS segment with subject v by binary search.
func (t *relTab) scanS(v node) []stmt {
	lo := sort.Search(len(t.byS), func(i int) bool { return t.byS[i].s >= v })
	hi := lo
	for hi < len(t.byS) && t.byS[hi].s == v {
		hi++
	}
	return t.byS[lo:hi]
}

// scanO returns the byO segment with object v by binary search.
func (t *relTab) scanO(v node) []stmt {
	lo := sort.Search(len(t.byO), func(i int) bool { return t.byO[i].o >= v })
	hi := lo
	for hi < len(t.byO) && t.byO[hi].o == v {
		hi++
	}
	return t.byO[lo:hi]
}

// relRef is one resolved table a query predicate expands to. inv means the
// pattern's subject matches the table's object side and vice versa (the
// predicate or the sub-relation entry was an inverse).
type relRef struct {
	tab *relTab
	inv bool
}

// Value is one binding of a result row: a sameAs equivalence class
// rendered as its member resource keys from each KB, or a literal.
// The key slices are shared with the engine and must not be mutated.
type Value struct {
	KB1     []string `json:"kb1,omitempty"`
	KB2     []string `json:"kb2,omitempty"`
	Literal *string  `json:"literal,omitempty"`
}

// String renders the value canonically (used by the differential tests).
func (v Value) String() string {
	if v.Literal != nil {
		return quoteLiteral(*v.Literal)
	}
	return "{" + strings.Join(v.KB1, ",") + "|" + strings.Join(v.KB2, ",") + "}"
}

// clusterEntry lists a cluster's member resource keys per source KB.
type clusterEntry struct {
	keys1, keys2 []string
}

// Options configures Build. Zero fields take the package defaults.
type Options struct {
	// MinInstanceP is the minimum sameAs probability for an instance
	// assignment to merge two resources into one equivalence class.
	MinInstanceP float64
	// MinScoreP is the minimum score for sub-relation and subclass
	// entries to participate in expansion.
	MinScoreP float64
}

// KB is the frozen union of two aligned ontologies: resources folded into
// sameAs equivalence classes, every relation's statements re-indexed over
// those classes, and the snapshot's sub-relation and subclass tables
// compiled into expansion maps. It deep-copies everything it needs from
// the ontologies at Build time, so it stays safe for lock-free concurrent
// queries even while the source ontologies are extended by deltas.
type KB struct {
	kb1, kb2 string

	clusters     []clusterEntry
	clusterByKey map[string][]node // resource dictionary key -> cluster nodes

	litVals  []string
	litByKey map[string]store.Lit
	norm1    store.Normalizer
	norm2    store.Normalizer

	rels     map[string][]relRef // base predicate IRI -> expanded tables
	typeSubs map[string][]node   // super-class key -> cross-KB subclass clusters

	numStmts int
}

// KB1 returns the first ontology's display name.
func (kb *KB) KB1() string { return kb.kb1 }

// KB2 returns the second ontology's display name.
func (kb *KB) KB2() string { return kb.kb2 }

// NumClusters returns the number of sameAs equivalence classes (including
// singletons).
func (kb *KB) NumClusters() int { return len(kb.clusters) }

// NumStatements returns the total statement count across all union tables.
func (kb *KB) NumStatements() int { return kb.numStmts }

// Build constructs the union KB from two ontologies sharing one literal
// table and the alignment snapshot between them. A nil snapshot yields the
// disjoint union (no sameAs merging, no expansion). The ontologies are
// only read during Build; the returned KB holds no reference to them.
func Build(o1, o2 *store.Ontology, snap *core.ResultSnapshot, opts Options) (*KB, error) {
	if o1 == nil || o2 == nil {
		return nil, fmt.Errorf("query: Build requires two ontologies")
	}
	if o1.Literals() != o2.Literals() {
		return nil, fmt.Errorf("query: ontologies %q and %q do not share a literal table", o1.Name(), o2.Name())
	}
	minInst := opts.MinInstanceP
	if minInst == 0 {
		minInst = DefaultMinInstanceP
	}
	minScore := opts.MinScoreP
	if minScore == 0 {
		minScore = DefaultMinScoreP
	}

	n1, n2 := o1.NumResources(), o2.NumResources()
	lits := o1.Literals()
	if n1+n2 >= 1<<31 || lits.Len() >= 1<<31-1 {
		return nil, fmt.Errorf("query: KB pair too large for the union node space")
	}

	// Assign cluster IDs: snapshot instance assignments first (the maximal
	// assignment maps each O1 instance to at most one O2 instance, but
	// several O1 instances may share an O2 target — they all join its
	// cluster), then every remaining resource gets a singleton cluster in
	// ID order. Classes are never merged; the subclass tables relate them.
	ent1 := make([]node, n1)
	ent2 := make([]node, n2)
	for i := range ent1 {
		ent1[i] = noNode
	}
	for i := range ent2 {
		ent2[i] = noNode
	}
	next := node(0)
	if snap != nil {
		for _, a := range snap.Instances {
			if a.P < minInst {
				continue
			}
			r1, ok1 := o1.LookupResource(a.Key1)
			r2, ok2 := o2.LookupResource(a.Key2)
			if !ok1 || !ok2 || o1.IsClass(r1) || o2.IsClass(r2) {
				continue
			}
			if ent1[r1] != noNode {
				continue
			}
			if ent2[r2] == noNode {
				ent2[r2] = next
				next++
			}
			ent1[r1] = ent2[r2]
		}
	}
	for r := 0; r < n1; r++ {
		if ent1[r] == noNode {
			ent1[r] = next
			next++
		}
	}
	for r := 0; r < n2; r++ {
		if ent2[r] == noNode {
			ent2[r] = next
			next++
		}
	}

	kb := &KB{
		kb1:          o1.Name(),
		kb2:          o2.Name(),
		clusters:     make([]clusterEntry, next),
		clusterByKey: make(map[string][]node, n1+n2),
		norm1:        o1.Normalize,
		norm2:        o2.Normalize,
		rels:         make(map[string][]relRef),
		typeSubs:     make(map[string][]node),
	}
	for r := 0; r < n1; r++ {
		key := o1.ResourceKey(store.Resource(r))
		c := &kb.clusters[ent1[r]]
		c.keys1 = append(c.keys1, key)
		kb.clusterByKey[key] = appendNode(kb.clusterByKey[key], ent1[r])
	}
	for r := 0; r < n2; r++ {
		key := o2.ResourceKey(store.Resource(r))
		c := &kb.clusters[ent2[r]]
		c.keys2 = append(c.keys2, key)
		kb.clusterByKey[key] = appendNode(kb.clusterByKey[key], ent2[r])
	}

	// Copy the literal dictionary: ApplyDelta interns new literals into
	// the shared table, so the live map cannot be read lock-free.
	kb.litVals = make([]string, lits.Len())
	kb.litByKey = make(map[string]store.Lit, lits.Len())
	for i := 0; i < lits.Len(); i++ {
		v := lits.Value(store.Lit(i))
		kb.litVals[i] = v
		kb.litByKey[v] = store.Lit(i)
	}

	// Relation tables over cluster nodes, then the expansion map: each base
	// IRI resolves to its direct tables plus, via the snapshot sub-relation
	// entries, the tables of its sub-relations in the other KB.
	tabs1 := buildTabs(o1, ent1)
	tabs2 := buildTabs(o2, ent2)
	add := func(iri string, ref relRef) {
		for _, have := range kb.rels[iri] {
			if have == ref {
				return
			}
		}
		kb.rels[iri] = append(kb.rels[iri], ref)
	}
	for i, t := range tabs1 {
		add(o1.RelationName(store.Relation(2*i)), relRef{tab: t})
		kb.numStmts += t.size()
	}
	for i, t := range tabs2 {
		add(o2.RelationName(store.Relation(2*i)), relRef{tab: t})
		kb.numStmts += t.size()
	}
	type1 := buildTypeTab(o1, ent1)
	type2 := buildTypeTab(o2, ent2)
	add(rdfTypeIRI, relRef{tab: type1})
	add(rdfTypeIRI, relRef{tab: type2})
	kb.numStmts += type1.size() + type2.size()

	if snap != nil {
		expand := func(entries []core.SnapshotRelation, sub *store.Ontology, tabs []*relTab) {
			for _, e := range entries {
				if e.P < minScore {
					continue
				}
				subBase, subInv := splitInv(e.Sub)
				superBase, superInv := splitInv(e.Super)
				r, ok := sub.LookupRelation(subBase)
				if !ok {
					continue
				}
				add(superBase, relRef{tab: tabs[int(r)/2], inv: subInv != superInv})
			}
		}
		expand(snap.Relations12, o1, tabs1)
		expand(snap.Relations21, o2, tabs2)

		classes := func(entries []core.SnapshotClass, sub *store.Ontology, ent []node) {
			for _, e := range entries {
				if e.P < minScore {
					continue
				}
				c, ok := sub.LookupResource(e.Sub)
				if !ok {
					continue
				}
				kb.typeSubs[e.Super] = appendNode(kb.typeSubs[e.Super], ent[c])
			}
		}
		classes(snap.Classes12, o1, ent1)
		classes(snap.Classes21, o2, ent2)
	}
	return kb, nil
}

// buildTabs maps every base relation's statements onto cluster nodes.
// Base-relation statement subjects are always resources; objects may be
// literals, which keep their shared-table IDs.
func buildTabs(o *store.Ontology, ent []node) []*relTab {
	tabs := make([]*relTab, o.NumBaseRelations())
	for i := range tabs {
		r := store.Relation(2 * i)
		st := make([]stmt, 0, o.NumStatements(r))
		o.EachStatement(r, func(s, obj store.Node) bool {
			st = append(st, stmt{s: mapNode(s, ent), o: mapNode(obj, ent)})
			return true
		})
		tabs[i] = newRelTab(o.Name()+":"+o.RelationName(r), st)
	}
	return tabs
}

// buildTypeTab materializes rdf:type as a pseudo relation table. ClassesOf
// is deductively closed over rdfs:subClassOf, so within-KB subclass
// semantics come for free; cross-KB subclass entries are handled by the
// typeSubs expansion at constant-resolution time.
func buildTypeTab(o *store.Ontology, ent []node) *relTab {
	var st []stmt
	for _, x := range o.Instances() {
		for _, c := range o.ClassesOf(x) {
			st = append(st, stmt{s: ent[x], o: ent[c]})
		}
	}
	return newRelTab(o.Name()+":"+rdfTypeIRI, st)
}

func mapNode(n store.Node, ent []node) node {
	if n.IsLit() {
		return litNode | node(n.Lit())
	}
	return ent[n.Res()]
}

func appendNode(ns []node, n node) []node {
	for _, have := range ns {
		if have == n {
			return ns
		}
	}
	return append(ns, n)
}

func splitInv(name string) (string, bool) {
	if strings.HasSuffix(name, invSuffix) {
		return strings.TrimSuffix(name, invSuffix), true
	}
	return name, false
}

// relRefs resolves a predicate IRI to its tables; a ⁻¹ suffix flips the
// match direction of every resolved table.
func (kb *KB) relRefs(iri string) []relRef {
	base, inv := splitInv(iri)
	refs := kb.rels[base]
	if !inv {
		return refs
	}
	out := make([]relRef, len(refs))
	for i, r := range refs {
		out[i] = relRef{tab: r.tab, inv: !r.inv}
	}
	return out
}

// constNodes resolves a constant term to the union-KB nodes it denotes.
// typeObj marks the object position of an rdf:type pattern, where an IRI
// constant additionally expands through the cross-KB subclass tables.
// An empty result means the constant denotes nothing — the pattern (and
// hence the query) has no matches.
func (kb *KB) constNodes(t Term, typeObj bool) []node {
	switch t.Kind {
	case TermIRI:
		key := "<" + t.Value + ">"
		nodes := kb.clusterByKey[key]
		if typeObj {
			if subs := kb.typeSubs[key]; len(subs) > 0 {
				merged := append(append([]node(nil), nodes...), subs...)
				out := merged[:0]
				for _, n := range merged {
					out = appendNode(out, n)
				}
				return out
			}
		}
		return nodes
	case TermLit:
		// The two ontologies may intern under different normalizers; try
		// both, then the raw spelling.
		term := rdf.Literal(t.Value)
		for _, k := range [3]string{kb.norm1(term), kb.norm2(term), t.Value} {
			if l, ok := kb.litByKey[k]; ok {
				return []node{litNode | node(l)}
			}
		}
		return nil
	default:
		return nil
	}
}

// value renders a node for a result row.
func (kb *KB) value(n node) Value {
	if n.isLit() {
		v := kb.litVals[n.lit()]
		return Value{Literal: &v}
	}
	c := kb.clusters[n]
	return Value{KB1: c.keys1, KB2: c.keys2}
}
