package query_test

// Differential harness: the planned executor must agree row for row with
// the naive nested-loop reference evaluator on real aligned corpora —
// including rows that exist only through sameAs clusters, sub-relation
// rewrites, and subclass expansion. The engines share the union KB's
// tables but nothing of the execution strategy.

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/query"
)

func canonicalRows(t *testing.T, rows [][]query.Value) []string {
	t.Helper()
	out := rowStrings(rows)
	sort.Strings(out)
	return out
}

func runDifferential(t *testing.T, d *gen.Dataset, queries []string) (*query.KB, *query.KB) {
	t.Helper()
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced nothing")
	}
	kb, err := query.Build(o1, o2, res.Snapshot(), query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The disjoint union (no alignment) is the control for cross-KB rows.
	disjoint, err := query.Build(o1, o2, nil, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := query.NewEngine(kb, 0)

	for _, src := range queries {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := e.Query(context.Background(), src, query.ExecOptions{})
		if err != nil {
			t.Fatalf("engine Query(%q): %v", src, err)
		}
		if got.Truncated {
			t.Fatalf("engine Query(%q) truncated: %s", src, got.Reason)
		}
		want := query.ReferenceEval(kb, q)
		gotRows := canonicalRows(t, got.Rows)
		wantRows := canonicalRows(t, want)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("query %q: engine %d rows, reference %d rows", src, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if gotRows[i] != wantRows[i] {
				t.Fatalf("query %q row %d diverges:\nengine:    %s\nreference: %s",
					src, i, gotRows[i], wantRows[i])
			}
		}
	}
	return kb, disjoint
}

func TestDifferentialMovies(t *testing.T) {
	const (
		ykb  = "http://ykbfilm.example.org/"
		ikb  = "http://ikb.example.org/"
		rdfs = "http://www.w3.org/2000/01/rdf-schema#"
	)
	d := gen.Movies(gen.MoviesConfig{Seed: 7, People: 400, Movies: 150})
	queries := []string{
		// Single patterns, one per KB, plus sub-relation rewrites.
		`?d <` + ykb + `directed> ?m`,
		`?p <` + ikb + `appearsIn> ?m`,
		`?m <` + ykb + `directed⁻¹> ?d`,
		// Type patterns, within-KB closure and cross-KB subclass expansion.
		`?x a <` + ykb + `wordnet_movie>`,
		`?x a <` + ikb + `Production>`,
		// Cross-KB joins through sameAs clusters.
		`?d <` + ykb + `directed> ?m . ?m <` + ikb + `hasGenre> ?g`,
		`?p <` + ykb + `actedIn> ?m . ?m <` + ikb + `releasedIn> ?y`,
		`?p <` + ykb + `wasBornIn> ?c . ?q <` + ikb + `bornIn> ?c`,
		// Literal join through the shared label relation of both KBs.
		`?a <` + rdfs + `label> ?n . ?b <` + rdfs + `label> ?n`,
		// Three-way join spanning both KBs.
		`?d <` + ykb + `directed> ?m . ?p <` + ikb + `appearsIn> ?m . ?p <` + rdfs + `label> ?n`,
		// Repeated variable and a shape with no possible match.
		`?x <` + ikb + `features> ?x`,
		`?x <` + ykb + `doesNotExist> ?y`,
	}
	kb, disjoint := runDifferential(t, d, queries)

	// The sameAs-join proof: directed lives only in the ykb ontology,
	// hasGenre only in the ikb one. Any row requires a movie cluster
	// spanning both KBs — the disjoint union must produce nothing, the
	// aligned union must produce rows.
	crossQ := `?d <` + ykb + `directed> ?m . ?m <` + ikb + `hasGenre> ?g`
	q, err := query.Parse(crossQ)
	if err != nil {
		t.Fatal(err)
	}
	aligned := query.ReferenceEval(kb, q)
	if len(aligned) == 0 {
		t.Fatal("aligned union produced no cross-KB rows")
	}
	if rows := query.ReferenceEval(disjoint, q); len(rows) != 0 {
		t.Fatalf("disjoint union produced %d cross-KB rows, want 0", len(rows))
	}
	// Some rows may come from KB2 alone via the sub-relation rewrite
	// (directorOf ⊆ directed), but sameAs must contribute rows whose movie
	// cluster carries keys from both ontologies.
	spanning := 0
	for _, row := range aligned {
		m := row[1] // ?m is the second variable
		if len(m.KB1) > 0 && len(m.KB2) > 0 {
			spanning++
		}
	}
	if spanning == 0 {
		t.Fatalf("none of the %d cross-KB rows joins through a sameAs cluster", len(aligned))
	}
}

func TestDifferentialWorld(t *testing.T) {
	const (
		ykb = "http://ykb.example.org/"
		dkb = "http://dkb.example.org/"
	)
	d := gen.World(gen.WorldConfig{Seed: 1, People: 400, Cities: 40, Companies: 20,
		Movies: 60, Albums: 40, Books: 40})
	queries := []string{
		`?p <` + ykb + `wasBornIn> ?c`,
		`?p <` + dkb + `birthPlace> ?c`,
		`?x a <` + ykb + `wordnet_city>`,
		`?x a <` + dkb + `Person>`,
		// hasChild vs parent run in opposite directions; the sub-relation
		// tables must reconcile them.
		`?p <` + ykb + `hasChild> ?k`,
		`?k <` + dkb + `parent> ?p`,
		// Cross-KB joins.
		`?p <` + ykb + `livesIn> ?c . ?c <` + dkb + `populationTotal> ?n`,
		`?p <` + ykb + `isMarriedTo> ?q . ?q <` + dkb + `nationality> ?c`,
		// Constant object across KBs with a join.
		`?p <` + ykb + `wasBornIn> ?c . ?p <` + dkb + `residence> ?c`,
		`?x <` + ykb + `created> ?w . ?w <` + dkb + `releaseYear> ?y`,
	}
	kb, disjoint := runDifferential(t, d, queries)

	// livesIn is ykb-only, populationTotal dkb-only: same proof as movies.
	crossQ := `?p <` + ykb + `livesIn> ?c . ?c <` + dkb + `populationTotal> ?n`
	q, err := query.Parse(crossQ)
	if err != nil {
		t.Fatal(err)
	}
	if rows := query.ReferenceEval(kb, q); len(rows) == 0 {
		t.Fatal("aligned world union produced no cross-KB rows")
	}
	if rows := query.ReferenceEval(disjoint, q); len(rows) != 0 {
		t.Fatalf("disjoint world union produced %d cross-KB rows, want 0", len(rows))
	}
}

// TestDifferentialTinyEdgeCases pins corner shapes on the hand-built KB
// where expected answers are known exactly.
func TestDifferentialTinyEdgeCases(t *testing.T) {
	kb := tinyKB(t)
	e := query.NewEngine(kb, 0)
	for _, src := range []string{
		`?d <` + tns1 + `directed> ?m`,
		`?x <` + tns1 + `name> "Alice"`,
		`"Alice" <` + tns1 + `name⁻¹> ?x`,
		`?x a <` + tns2 + `Movie>`,
		`?b <` + tns1 + `knows> ?a . ?a <` + tns2 + `label> ?n`,
		`?x <` + tns1 + `knows> ?x`,
		// Cartesian product of two unconnected patterns.
		`?a <` + tns1 + `name> ?n . ?b <` + tns2 + `label> ?m`,
		// Constant subject and object.
		`<` + tns1 + `bob> <` + tns1 + `knows> <` + tns1 + `alice>`,
	} {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := e.Query(context.Background(), src, query.ExecOptions{})
		if err != nil {
			t.Fatalf("Query(%q): %v", src, err)
		}
		want := query.ReferenceEval(kb, q)
		g, w := canonicalRows(t, got.Rows), canonicalRows(t, want)
		if strings.Join(g, "\n") != strings.Join(w, "\n") {
			t.Fatalf("query %q diverges:\nengine:\n%s\nreference:\n%s",
				src, strings.Join(g, "\n"), strings.Join(w, "\n"))
		}
	}
}
