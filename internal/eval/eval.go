// Package eval implements the evaluation protocol of Section 6.1: computed
// maximal assignments are compared against a gold standard using precision,
// recall, and F-measure.
package eval

import (
	"fmt"
	"sort"
)

// Gold is a gold-standard bijection between entities of two ontologies,
// keyed by resource keys (rdf.Term.Key form).
type Gold struct {
	fwd map[string]string
	rev map[string]string
}

// NewGold returns an empty gold standard.
func NewGold() *Gold {
	return &Gold{fwd: map[string]string{}, rev: map[string]string{}}
}

// Add records that k1 (ontology 1) and k2 (ontology 2) denote the same
// real-world entity. Adding a conflicting pair for an already-mapped entity
// returns an error, since gold standards must be functional in both
// directions.
func (g *Gold) Add(k1, k2 string) error {
	if prev, ok := g.fwd[k1]; ok && prev != k2 {
		return fmt.Errorf("eval: %s already mapped to %s", k1, prev)
	}
	if prev, ok := g.rev[k2]; ok && prev != k1 {
		return fmt.Errorf("eval: %s already mapped from %s", k2, prev)
	}
	g.fwd[k1] = k2
	g.rev[k2] = k1
	return nil
}

// Len returns the number of gold pairs.
func (g *Gold) Len() int { return len(g.fwd) }

// Expected returns the ontology-2 entity for an ontology-1 entity.
func (g *Gold) Expected(k1 string) (string, bool) {
	k2, ok := g.fwd[k1]
	return k2, ok
}

// Pairs returns all gold pairs sorted by the ontology-1 key.
func (g *Gold) Pairs() [][2]string {
	out := make([][2]string, 0, len(g.fwd))
	for k1, k2 := range g.fwd {
		out = append(out, [2]string{k1, k2})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Invert returns the gold standard with the ontology roles swapped.
func (g *Gold) Invert() *Gold {
	inv := NewGold()
	for k1, k2 := range g.fwd {
		inv.fwd[k2] = k1
		inv.rev[k1] = k2
	}
	return inv
}

// Metrics holds the standard precision/recall/F-measure triple together with
// the underlying counts.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// String renders the metrics in the paper's percentage style.
func (m Metrics) String() string {
	return fmt.Sprintf("prec %.1f%%  rec %.1f%%  F %.1f%%",
		100*m.Precision, 100*m.Recall, 100*m.F1)
}

// finish derives the ratios from the counts.
func (m Metrics) finish() Metrics {
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Evaluate scores a computed assignment (ontology-1 key to ontology-2 key)
// against the gold standard. An assignment for an entity outside the gold
// standard counts as a false positive; a gold entity that is unassigned or
// misassigned counts as a false negative.
func (g *Gold) Evaluate(assign map[string]string) Metrics {
	var m Metrics
	for k1, k2 := range assign {
		if want, ok := g.fwd[k1]; ok && want == k2 {
			m.TP++
		} else {
			m.FP++
		}
	}
	m.FN = g.Len() - m.TP
	return m.finish()
}

// EvaluateWhere scores only the assignments and gold pairs whose ontology-1
// entity satisfies keep. It implements restricted evaluations such as the
// paper's "entities with more than 10 facts in DBpedia".
func (g *Gold) EvaluateWhere(assign map[string]string, keep func(k1 string) bool) Metrics {
	var m Metrics
	goldKept := 0
	for k1 := range g.fwd {
		if keep(k1) {
			goldKept++
		}
	}
	for k1, k2 := range assign {
		if !keep(k1) {
			continue
		}
		if want, ok := g.fwd[k1]; ok && want == k2 {
			m.TP++
		} else {
			m.FP++
		}
	}
	m.FN = goldKept - m.TP
	return m.finish()
}
