package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldAddAndLookup(t *testing.T) {
	g := NewGold()
	if err := g.Add("a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", "y"); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
	if got, ok := g.Expected("a"); !ok || got != "x" {
		t.Fatalf("Expected(a) = %q, %v", got, ok)
	}
	if _, ok := g.Expected("zz"); ok {
		t.Fatal("found missing entity")
	}
}

func TestGoldRejectsConflicts(t *testing.T) {
	g := NewGold()
	g.Add("a", "x")
	if err := g.Add("a", "y"); err == nil {
		t.Fatal("conflicting forward pair accepted")
	}
	if err := g.Add("b", "x"); err == nil {
		t.Fatal("conflicting reverse pair accepted")
	}
	if err := g.Add("a", "x"); err != nil {
		t.Fatal("idempotent re-add rejected")
	}
}

func TestGoldPairsSorted(t *testing.T) {
	g := NewGold()
	g.Add("b", "y")
	g.Add("a", "x")
	p := g.Pairs()
	if len(p) != 2 || p[0][0] != "a" || p[1][0] != "b" {
		t.Fatalf("pairs = %v", p)
	}
}

func TestGoldInvert(t *testing.T) {
	g := NewGold()
	g.Add("a", "x")
	inv := g.Invert()
	if got, ok := inv.Expected("x"); !ok || got != "a" {
		t.Fatalf("inverted = %q, %v", got, ok)
	}
}

func TestEvaluatePerfect(t *testing.T) {
	g := NewGold()
	g.Add("a", "x")
	g.Add("b", "y")
	m := g.Evaluate(map[string]string{"a": "x", "b": "y"})
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEvaluateMixed(t *testing.T) {
	g := NewGold()
	g.Add("a", "x")
	g.Add("b", "y")
	g.Add("c", "z")
	g.Add("d", "w")
	// a correct, b wrong, e spurious, c+d missed.
	m := g.Evaluate(map[string]string{"a": "x", "b": "wrong", "e": "x"})
	if m.TP != 1 || m.FP != 2 || m.FN != 3 {
		t.Fatalf("counts = %+v", m)
	}
	if math.Abs(m.Precision-1.0/3) > 1e-12 {
		t.Fatalf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-0.25) > 1e-12 {
		t.Fatalf("recall = %v", m.Recall)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	g := NewGold()
	m := g.Evaluate(nil)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
	g.Add("a", "x")
	m = g.Evaluate(nil)
	if m.FN != 1 || m.Recall != 0 {
		t.Fatalf("no-assignment metrics = %+v", m)
	}
}

func TestEvaluateWhere(t *testing.T) {
	g := NewGold()
	g.Add("big:a", "x")
	g.Add("small:b", "y")
	assign := map[string]string{"big:a": "x", "small:b": "wrong"}
	m := g.EvaluateWhere(assign, func(k string) bool { return k[:3] == "big" })
	if m.TP != 1 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("filtered metrics = %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	g := NewGold()
	g.Add("a", "x")
	s := g.Evaluate(map[string]string{"a": "x"}).String()
	if s != "prec 100.0%  rec 100.0%  F 100.0%" {
		t.Fatalf("string = %q", s)
	}
}

// Property: precision and recall are always within [0,1] and F1 is between
// min and max of the two (harmonic-mean property) for arbitrary overlap.
func TestQuickMetricsBounds(t *testing.T) {
	f := func(correct, wrong, missed uint8) bool {
		g := NewGold()
		assign := map[string]string{}
		id := 0
		for i := 0; i < int(correct)%50; i++ {
			k := fmtKey(id)
			id++
			g.Add(k, k+"'")
			assign[k] = k + "'"
		}
		for i := 0; i < int(wrong)%50; i++ {
			k := fmtKey(id)
			id++
			g.Add(k, k+"'")
			assign[k] = "bogus" + k
		}
		for i := 0; i < int(missed)%50; i++ {
			k := fmtKey(id)
			id++
			g.Add(k, k+"'")
		}
		m := g.Evaluate(assign)
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
			return false
		}
		lo, hi := m.Precision, m.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.F1 >= lo-1e-9 && m.F1 <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fmtKey(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}
