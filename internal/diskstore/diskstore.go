// Package diskstore is a small embedded key-value store: the stand-in for
// the Berkeley DB instance the original PARIS implementation kept its
// ontologies and equality tables in (Section 5.2 of the paper; the authors
// report the algorithm was IO-bound on this store).
//
// The design is a CRC-checked append-only log with an in-memory index,
// rebuilt by a sequential scan on open — the access pattern PARIS needs
// (bulk writes, random reads, full scans) on modern storage. Compact
// rewrites the log dropping overwritten and deleted records.
package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("diskstore: key not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("diskstore: store is closed")

const (
	opPut    = byte(1)
	opDelete = byte(2)

	// maxKeyLen and maxValueLen bound record sizes; anything larger is
	// rejected at Put and treated as corruption when read back.
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 28
)

// Store is an embedded key-value store backed by one log file. It is safe
// for concurrent use.
type Store struct {
	mu     sync.RWMutex
	path   string
	file   *os.File
	w      *bufio.Writer
	offset int64 // next write offset

	// index maps key -> value location in the log.
	index map[string]recordLoc

	// garbage counts superseded bytes, driving compaction heuristics.
	garbage int64

	closed bool
}

type recordLoc struct {
	off  int64 // offset of the value bytes
	size int32 // length of the value
}

// Open opens or creates a store at path, rebuilding the index by scanning
// the log. A torn final record (crash during write) is truncated away.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		path:  path,
		file:  f,
		index: make(map[string]recordLoc),
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	s.w = bufio.NewWriterSize(f, 1<<20)
	return s, nil
}

// recover scans the log, rebuilding the index and truncating a torn tail.
func (s *Store) recover() error {
	r := bufio.NewReaderSize(s.file, 1<<20)
	var off int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: everything before off is intact.
			break
		}
		switch rec.op {
		case opPut:
			if old, ok := s.index[string(rec.key)]; ok {
				s.garbage += int64(old.size) + recordOverhead(len(rec.key))
			}
			valOff := off + int64(n) - int64(len(rec.value))
			s.index[string(rec.key)] = recordLoc{off: valOff, size: int32(len(rec.value))}
		case opDelete:
			if old, ok := s.index[string(rec.key)]; ok {
				s.garbage += int64(old.size) + recordOverhead(len(rec.key))
				delete(s.index, string(rec.key))
			}
		}
		off += int64(n)
	}
	s.offset = off
	if err := s.file.Truncate(off); err != nil {
		return err
	}
	if _, err := s.file.Seek(off, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// record is one log entry.
type record struct {
	op    byte
	key   []byte
	value []byte
}

// Layout: crc32(4) op(1) keyLen(4) valLen(4) key val.
func recordOverhead(keyLen int) int64 { return int64(13 + keyLen) }

func readRecord(r *bufio.Reader) (record, int, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, io.ErrUnexpectedEOF
		}
		return record{}, 0, err
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	op := hdr[4]
	keyLen := binary.LittleEndian.Uint32(hdr[5:9])
	valLen := binary.LittleEndian.Uint32(hdr[9:13])
	if op != opPut && op != opDelete {
		return record{}, 0, fmt.Errorf("diskstore: bad op %d", op)
	}
	if keyLen > maxKeyLen || valLen > maxValueLen {
		return record{}, 0, fmt.Errorf("diskstore: oversized record")
	}
	body := make([]byte, keyLen+valLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, io.ErrUnexpectedEOF
	}
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write(body)
	if h.Sum32() != crc {
		return record{}, 0, fmt.Errorf("diskstore: checksum mismatch")
	}
	rec := record{op: op, key: body[:keyLen], value: body[keyLen:]}
	return rec, 13 + len(body), nil
}

func appendRecord(w io.Writer, op byte, key, value []byte) (int, error) {
	var hdr [13]byte
	hdr[4] = op
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(value)))
	h := crc32.NewIEEE()
	h.Write(hdr[4:])
	h.Write(key)
	h.Write(value)
	binary.LittleEndian.PutUint32(hdr[0:4], h.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(key); err != nil {
		return 0, err
	}
	if _, err := w.Write(value); err != nil {
		return 0, err
	}
	return 13 + len(key) + len(value), nil
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("diskstore: invalid key length %d", len(key))
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("diskstore: value too large (%d bytes)", len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	n, err := appendRecord(s.w, opPut, key, value)
	if err != nil {
		return err
	}
	if old, ok := s.index[string(key)]; ok {
		s.garbage += int64(old.size) + recordOverhead(len(key))
	}
	valOff := s.offset + int64(n) - int64(len(value))
	s.index[string(key)] = recordLoc{off: valOff, size: int32(len(value))}
	s.offset += int64(n)
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, ErrNotFound
	}
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]byte, loc.size)
	if _, err := s.file.ReadAt(out, loc.off); err != nil {
		return nil, err
	}
	return out, nil
}

// Has reports whether key is present.
func (s *Store) Has(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[string(key)]
	return ok && !s.closed
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[string(key)]; !ok {
		return nil
	}
	n, err := appendRecord(s.w, opDelete, key, nil)
	if err != nil {
		return err
	}
	old := s.index[string(key)]
	s.garbage += int64(old.size) + recordOverhead(len(key)) + int64(n)
	delete(s.index, string(key))
	s.offset += int64(n)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Garbage returns the number of superseded bytes in the log.
func (s *Store) Garbage() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.garbage
}

// Each calls fn for every live key-value pair in ascending key order.
// Iteration stops early if fn returns false. The key and value slices are
// owned by the callback.
func (s *Store) Each(fn func(key, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v, err := s.Get([]byte(k))
		if err == ErrNotFound {
			continue // deleted concurrently
		}
		if err != nil {
			return err
		}
		if !fn([]byte(k), v) {
			return nil
		}
	}
	return nil
}

// Sync flushes buffered writes to the operating system and disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.file.Sync()
}

// Compact rewrites the log with only live records, reclaiming the space of
// overwritten and deleted entries.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	newIndex := make(map[string]recordLoc, len(s.index))
	var off int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		loc := s.index[k]
		val := make([]byte, loc.size)
		if _, err := s.file.ReadAt(val, loc.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		n, err := appendRecord(bw, opPut, []byte(k), val)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		newIndex[k] = recordLoc{off: off + int64(n) - int64(len(val)), size: loc.size}
		off += int64(n)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.file = f
	s.w = bufio.NewWriterSize(f, 1<<20)
	s.index = newIndex
	s.offset = off
	s.garbage = 0
	return nil
}

// Close flushes and closes the store. The store cannot be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}
