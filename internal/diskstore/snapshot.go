package diskstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Snapshot persistence for the alignment service: each completed alignment
// is stored as one versioned, self-contained core.ResultSnapshot record, so
// a restarted server recovers every completed alignment by listing and
// loading snapshots. Three more namespaces join the ones in alignment.go:
//
//	s\x00<id>  -> ResultSnapshot binary encoding
//	m\x00<id>  -> opaque snapshot metadata (the server stores JSON), so
//	              recovery can list snapshots without decoding each one
//	j\x00<id>  -> opaque job record (the server stores JSON)
const (
	kindSnapshot = "s\x00"
	kindSnapMeta = "m\x00"
	kindJob      = "j\x00"
)

// SnapshotID formats a sequence number as a snapshot ID. The zero-padding
// keeps small sequence numbers in lexicographic order for readability, but
// it is not an ordering guarantee — the width overflows at seq 100,000,000
// — so every comparison of snapshot IDs must go through ParseSnapshotID.
func SnapshotID(seq uint64) string { return fmt.Sprintf("snap-%08d", seq) }

// ParseSnapshotID extracts the sequence number from a snapshot ID.
func ParseSnapshotID(id string) (uint64, error) {
	num, ok := strings.CutPrefix(id, "snap-")
	if !ok {
		return 0, fmt.Errorf("diskstore: malformed snapshot id %q", id)
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("diskstore: malformed snapshot id %q: %w", id, err)
	}
	return seq, nil
}

// SaveSnapshot persists snap under id and syncs the store, so a crash after
// SaveSnapshot returns cannot lose the snapshot.
func SaveSnapshot(s *Store, id string, snap *core.ResultSnapshot) error {
	data, err := snap.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.Put([]byte(kindSnapshot+id), data); err != nil {
		return err
	}
	return s.Sync()
}

// LoadSnapshot reads back one persisted snapshot.
func LoadSnapshot(s *Store, id string) (*core.ResultSnapshot, error) {
	data, err := LoadSnapshotRaw(s, id)
	if err != nil {
		return nil, err
	}
	snap := new(core.ResultSnapshot)
	if err := snap.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("diskstore: snapshot %s: %w", id, err)
	}
	return snap, nil
}

// LoadSnapshotRaw reads back one persisted snapshot's binary encoding
// without decoding it — the record is the exact MarshalBinary output
// SaveSnapshot stored, so exporting a snapshot over the wire can serve
// these bytes directly instead of materializing a multi-GB struct only to
// re-encode it.
func LoadSnapshotRaw(s *Store, id string) ([]byte, error) {
	return s.Get([]byte(kindSnapshot + id))
}

// SaveSnapshotMeta persists an opaque metadata record for a snapshot. Save
// it before SaveSnapshot (whose Sync covers both): a crash in between
// leaves an orphan metadata record, which recovery ignores because it only
// consults metadata for listed snapshots.
func SaveSnapshotMeta(s *Store, id string, data []byte) error {
	return s.Put([]byte(kindSnapMeta+id), data)
}

// LoadSnapshotMeta reads back a snapshot's metadata record; ErrNotFound for
// snapshots persisted before metadata records existed.
func LoadSnapshotMeta(s *Store, id string) ([]byte, error) {
	return s.Get([]byte(kindSnapMeta + id))
}

// DeleteSnapshot removes one persisted snapshot record and its metadata
// (the retention GC). The space is reclaimed by the next Compact.
func DeleteSnapshot(s *Store, id string) error {
	if err := s.Delete([]byte(kindSnapshot + id)); err != nil {
		return err
	}
	return s.Delete([]byte(kindSnapMeta + id))
}

// ListSnapshots returns the IDs of all persisted snapshots, oldest first.
// Order is by sequence number, not by string: snap-%08d overflows its
// zero-padding at seq 100,000,000, where "snap-100000000" sorts *below*
// "snap-99999999" lexicographically — a string sort would make every
// newest-snapshot pick regress across that boundary. IDs that do not parse
// (foreign records) sort before all numbered snapshots, among themselves by
// string.
func ListSnapshots(s *Store) ([]string, error) {
	var ids []string
	err := s.Each(func(key, _ []byte) bool {
		if k := string(key); strings.HasPrefix(k, kindSnapshot) {
			ids = append(ids, strings.TrimPrefix(k, kindSnapshot))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool {
		si, erri := ParseSnapshotID(ids[i])
		sj, errj := ParseSnapshotID(ids[j])
		switch {
		case erri == nil && errj == nil:
			return si < sj
		case erri == nil:
			return false
		case errj == nil:
			return true
		default:
			return ids[i] < ids[j]
		}
	})
	return ids, nil
}

// SaveJobRecord persists an opaque job record (the server's JSON) under id.
func SaveJobRecord(s *Store, id string, data []byte) error {
	if err := s.Put([]byte(kindJob+id), data); err != nil {
		return err
	}
	return s.Sync()
}

// LoadJobRecords returns all persisted job records keyed by job ID.
func LoadJobRecords(s *Store) (map[string][]byte, error) {
	out := map[string][]byte{}
	err := s.Each(func(key, value []byte) bool {
		if k := string(key); strings.HasPrefix(k, kindJob) {
			out[strings.TrimPrefix(k, kindJob)] = append([]byte(nil), value...)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
