package diskstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// Alignment persistence: the original PARIS kept its equality tables in
// Berkeley DB between iterations; this file provides the equivalent
// round-trip for final results. Keys are namespaced:
//
//	i\x00<key1>          -> <key2> + float64(P)   instance assignments
//	r\x00<dir><sub name> -> <super name> + P      maximal relation scores
//	c\x00<dir><sub key>\x00<super key> -> P       class scores
type recordKind byte

const (
	kindInstance = "i\x00"
	kindRelation = "r\x00"
	kindClass    = "c\x00"
)

// SaveResult persists an alignment result. Existing alignment records in
// the store are overwritten key-wise, not cleared.
func SaveResult(s *Store, res *core.Result) error {
	buf := make([]byte, 0, 256)
	for _, a := range res.Instances {
		k := kindInstance + res.O1.ResourceKey(a.X1)
		buf = append(buf[:0], res.O2.ResourceKey(a.X2)...)
		buf = appendFloat(buf, a.P)
		if err := s.Put([]byte(k), buf); err != nil {
			return err
		}
	}
	for dir, as := range map[string][]core.RelAlignment{
		"12": core.MaxRelAlignments(res.Relations12),
		"21": core.MaxRelAlignments(res.Relations21),
	} {
		src, dst := res.O1, res.O2
		if dir == "21" {
			src, dst = res.O2, res.O1
		}
		for _, ra := range as {
			k := kindRelation + dir + src.RelationName(ra.Sub)
			buf = append(buf[:0], dst.RelationName(ra.Super)...)
			buf = appendFloat(buf, ra.P)
			if err := s.Put([]byte(k), buf); err != nil {
				return err
			}
		}
	}
	for dir, as := range map[string][]core.ClassAlignment{
		"12": res.Classes12, "21": res.Classes21,
	} {
		src, dst := res.O1, res.O2
		if dir == "21" {
			src, dst = res.O2, res.O1
		}
		for _, ca := range as {
			k := kindClass + dir + src.ResourceKey(ca.Sub) + "\x00" + dst.ResourceKey(ca.Super)
			buf = appendFloat(buf[:0], ca.P)
			if err := s.Put([]byte(k), buf); err != nil {
				return err
			}
		}
	}
	return s.Sync()
}

// LoadInstanceMap reads back the persisted instance assignment as a map
// from ontology-1 keys to ontology-2 keys (dropping probabilities), the
// form evaluation consumes.
func LoadInstanceMap(s *Store) (map[string]string, error) {
	out := map[string]string{}
	var iterErr error
	err := s.Each(func(key, value []byte) bool {
		k := string(key)
		if !strings.HasPrefix(k, kindInstance) {
			return true
		}
		if len(value) < 8 {
			iterErr = fmt.Errorf("diskstore: truncated instance record %q", k)
			return false
		}
		out[strings.TrimPrefix(k, kindInstance)] = string(value[:len(value)-8])
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, iterErr
}

// InstanceProbability returns the persisted probability of one assignment.
func InstanceProbability(s *Store, key1 string) (float64, error) {
	v, err := s.Get([]byte(kindInstance + key1))
	if err != nil {
		return 0, err
	}
	if len(v) < 8 {
		return 0, fmt.Errorf("diskstore: truncated instance record %q", key1)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v[len(v)-8:])), nil
}

func appendFloat(buf []byte, f float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	return append(buf, b[:]...)
}
