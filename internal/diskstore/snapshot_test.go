package diskstore

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

func testSnapshot(kb1, kb2 string) *core.ResultSnapshot {
	return &core.ResultSnapshot{
		KB1: kb1, KB2: kb2,
		Instances: []core.SnapshotAssignment{
			{Key1: "<http://a/x>", Key2: "<http://b/x>", P: 0.99},
		},
		Relations12: []core.SnapshotRelation{
			{Sub: "<http://a/r>", Super: "<http://b/r>", P: 0.5},
		},
		Classes12: []core.SnapshotClass{
			{Sub: "<http://a/C>", Super: "<http://b/C>", P: 0.8},
		},
		Iterations: []core.IterationStats{{Iteration: 1, Assigned: 1, ChangedFraction: 1,
			InstanceTime: time.Millisecond}},
	}
}

func TestSnapshotIDRoundTrip(t *testing.T) {
	id := SnapshotID(42)
	seq, err := ParseSnapshotID(id)
	if err != nil || seq != 42 {
		t.Fatalf("ParseSnapshotID(%q) = %d, %v", id, seq, err)
	}
	if SnapshotID(9) >= SnapshotID(10) || SnapshotID(99) >= SnapshotID(100) {
		t.Fatal("snapshot IDs do not sort numerically")
	}
	for _, bad := range []string{"", "snap-", "snap-x", "42"} {
		if _, err := ParseSnapshotID(bad); err == nil {
			t.Errorf("ParseSnapshotID(%q) accepted", bad)
		}
	}
}

func TestSnapshotPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want1 := testSnapshot("a", "b")
	want2 := testSnapshot("c", "d")
	if err := SaveSnapshot(s, SnapshotID(1), want1); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(s, SnapshotID(2), want2); err != nil {
		t.Fatal(err)
	}
	if err := SaveJobRecord(s, "job-1", []byte(`{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything must survive a close/reopen cycle, like a server restart.
	s, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids, err := ListSnapshots(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{SnapshotID(1), SnapshotID(2)}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("ListSnapshots = %v, want %v", ids, want)
	}
	got, err := LoadSnapshot(s, SnapshotID(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want2) {
		t.Fatalf("snapshot 2 diverges:\n got %+v\nwant %+v", got, want2)
	}
	jobs, err := LoadJobRecords(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(jobs["job-1"]) != `{"state":"done"}` {
		t.Fatalf("job records = %v", jobs)
	}
	if _, err := LoadSnapshot(s, SnapshotID(99)); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
}

// TestListSnapshotsCrossesEightDigitBoundary: snap-%08d overflows its
// zero-padding at seq 100,000,000, where "snap-100000000" sorts *below*
// "snap-99999999" as a string. ListSnapshots must order by sequence
// number, or every "newest snapshot" pick downstream (restart recovery,
// the router's epoch) regresses across the boundary.
func TestListSnapshotsCrossesEightDigitBoundary(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "state.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, seq := range []uint64{100000000, 7, 99999999} {
		if err := SaveSnapshot(s, SnapshotID(seq), testSnapshot("a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := ListSnapshots(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"snap-00000007", "snap-99999999", "snap-100000000"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("ListSnapshots = %v, want %v", ids, want)
	}
}
