package diskstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/store"
)

func TestTripleLogRoundTrip(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 40, Seed: 3})
	dir := t.TempDir()

	log1 := NewTripleLog(filepath.Join(dir, "o1.ntlog"))
	log2 := NewTripleLog(filepath.Join(dir, "o2.ntlog"))
	if err := log1.Write(d.Triples1); err != nil {
		t.Fatal(err)
	}
	if err := log2.Write(d.Triples2); err != nil {
		t.Fatal(err)
	}

	lits := store.NewLiterals()
	o1, err := log1.Load("o1", lits, nil)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := log2.Load("o2", lits, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Alignment over the reloaded ontologies must be as good as over the
	// originals (the persons corpus aligns perfectly).
	res := core.New(o1, o2, core.Config{}).Run()
	m := d.Gold.Evaluate(res.InstanceMap())
	if m.F1 < 0.99 {
		t.Fatalf("reloaded alignment degraded: %s", m)
	}

	// Direct build for structural comparison.
	b1, b2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o1.NumFacts() != b1.NumFacts() || o2.NumFacts() != b2.NumFacts() {
		t.Fatalf("fact counts differ after round trip: %d/%d vs %d/%d",
			o1.NumFacts(), o2.NumFacts(), b1.NumFacts(), b2.NumFacts())
	}
}

func TestTripleLogRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-log.nt")
	os.WriteFile(path, []byte("<a> <b> <c> .\n"), 0o644)
	if _, err := NewTripleLog(path).Load("x", nil, nil); err == nil {
		t.Fatal("missing header accepted")
	}
	missing := NewTripleLog(filepath.Join(dir, "absent.ntlog"))
	if _, err := missing.Load("x", nil, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTripleLogRejectsCorruption(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 5, Seed: 3})
	dir := t.TempDir()
	log := NewTripleLog(filepath.Join(dir, "o1.ntlog"))
	if err := log.Write(d.Triples1); err != nil {
		t.Fatal(err)
	}
	// Corrupt a line in the middle.
	data, _ := os.ReadFile(log.path)
	data[len(data)/2] = '|'
	os.WriteFile(log.path, data, 0o644)
	if _, err := log.Load("x", nil, nil); err == nil {
		t.Fatal("corrupt log accepted")
	}
}
