package diskstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func deltaTriples(t *testing.T, doc string) []rdf.Triple {
	t.Helper()
	triples, err := rdf.ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	return triples
}

func TestDeltaSegmentRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deltas")
	want := &DeltaSegment{
		Snapshot: "snap-00000003",
		Base:     "snap-00000002",
		Digest:   "abc123",
		Add1: deltaTriples(t, `<http://a/x> <http://a/p> "v" .
<http://a/x> <http://a/q> <http://a/y> .`),
		Add2: deltaTriples(t, `<http://b/z> <http://b/p> "w" .`),
	}
	if err := WriteDeltaSegment(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaSegment(DeltaSegmentPath(dir, want.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestDeltaSegmentOneSided(t *testing.T) {
	dir := t.TempDir()
	want := &DeltaSegment{
		Snapshot: "snap-00000002",
		Base:     "snap-00000001",
		Digest:   "d",
		Add2:     deltaTriples(t, `<http://b/z> <http://b/p> "w" .`),
	}
	if err := WriteDeltaSegment(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaSegment(DeltaSegmentPath(dir, want.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Add1) != 0 || !reflect.DeepEqual(got.Add2, want.Add2) {
		t.Errorf("one-sided segment mismatch: %+v", got)
	}
}

func TestListDeltaSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deltas")
	// Missing directory lists empty.
	if ids, err := ListDeltaSegments(dir); err != nil || len(ids) != 0 {
		t.Fatalf("missing dir: ids=%v err=%v", ids, err)
	}
	for _, id := range []string{"snap-00000010", "snap-00000002"} {
		if err := WriteDeltaSegment(dir, &DeltaSegment{Snapshot: id, Base: "snap-00000001"}); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file is ignored.
	if err := os.WriteFile(filepath.Join(dir, "junk.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := ListDeltaSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"snap-00000002", "snap-00000010"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("ids = %v, want %v", ids, want)
	}
	if err := RemoveDeltaSegment(dir, "snap-00000002"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveDeltaSegment(dir, "snap-00000002"); err != nil {
		t.Errorf("double remove: %v", err)
	}
	if ids, _ := ListDeltaSegments(dir); !reflect.DeepEqual(ids, []string{"snap-00000010"}) {
		t.Errorf("after remove: %v", ids)
	}
}

func TestDeltaSegmentRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not-a-segment": "hello\n",
		"bad-triple":    deltaLogHeader + "\n# base b\n# kb 1\nnot a triple\n",
		"no-section":    deltaLogHeader + "\n# base b\n<http://a/x> <http://a/p> \"v\" .\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".delta")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadDeltaSegment(path); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestTripleLogWriteAtomic: Write must not leave a temp file behind and must
// replace the previous content wholesale; a concurrent crash cannot be
// simulated directly, but the rename discipline means the target name only
// ever holds complete content.
func TestTripleLogWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.ntlog")
	log := NewTripleLog(path)
	if err := log.Write(deltaTriples(t, `<http://a/x> <http://a/p> "one" .`)); err != nil {
		t.Fatal(err)
	}
	if err := log.Write(deltaTriples(t, `<http://a/x> <http://a/p> "two" .`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "two") || strings.Contains(string(data), "one") {
		t.Errorf("second write did not replace content: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
}
