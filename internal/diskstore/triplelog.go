package diskstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TripleLog persists an ontology's triples as an N-Triples stream so large
// inputs can be parsed once and re-loaded without re-parsing arbitrary RDF —
// the role Berkeley DB played for the original implementation's ontologies.
// The log is plain N-Triples plus a header line, so it doubles as an export.
type TripleLog struct {
	path string
}

const tripleLogHeader = "# paris triple log v1"

// NewTripleLog returns a log handle at path (the file need not exist yet).
func NewTripleLog(path string) *TripleLog { return &TripleLog{path: path} }

// Write persists the given triples, replacing any previous content. The new
// content is written to a temporary file in the same directory, synced, and
// renamed over the target, so a crash mid-write leaves either the old
// complete log or the new complete log — never a torn file under the log's
// name.
func (l *TripleLog) Write(triples []rdf.Triple) error {
	return writeAtomically(l.path, func(w *bufio.Writer) error {
		if _, err := fmt.Fprintln(w, tripleLogHeader); err != nil {
			return err
		}
		for _, t := range triples {
			if _, err := fmt.Fprintln(w, t.String()); err != nil {
				return err
			}
		}
		return nil
	})
}

// writeAtomically writes fill's output to path via a same-directory
// temporary file, fsync, and rename. On error the temporary file is removed
// and path is untouched.
func writeAtomically(path string, fill func(w *bufio.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	if err := fill(w); err != nil {
		return cleanup(err)
	}
	if err := w.Flush(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load streams the log into an ontology builder and freezes it. The literal
// table and normalizer follow the usual sharing rules (see store.NewBuilder).
func (l *TripleLog) Load(name string, lits *store.Literals, norm store.Normalizer) (*store.Ontology, error) {
	f, err := os.Open(l.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("diskstore: reading triple log header: %w", err)
	}
	if header != tripleLogHeader+"\n" {
		return nil, fmt.Errorf("diskstore: %s is not a triple log", l.path)
	}
	b := store.NewBuilder(name, lits, norm)
	r := rdf.NewNTriplesReader(br)
	r.Strict = true
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("diskstore: corrupt triple log %s: %w", l.path, err)
		}
		if err := b.Add(t); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
