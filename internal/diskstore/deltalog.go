package diskstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Delta segments persist incremental re-alignment inputs: each segment is
// one delta batch, written when the re-alignment that consumed it publishes
// its snapshot, and named after that snapshot. Segments are append-only
// (never rewritten once published), in the same one-line-header N-Triples
// style as TripleLog, so a restarted server can replay base KB + segments to
// reconstruct the ontologies any snapshot was computed from.
//
// Layout of <dir>/<snapshot>.delta:
//
//	# paris delta segment v1
//	# base <base snapshot id>
//	# digest <delta content digest>
//	# kb 1
//	<triples extending ontology 1, N-Triples>
//	# kb 2
//	<triples extending ontology 2, N-Triples>
//
// Either "# kb" section may be absent when that side's delta is empty.
const deltaLogHeader = "# paris delta segment v1"

// DeltaSegment is one persisted delta batch.
type DeltaSegment struct {
	// Snapshot is the ID of the snapshot this delta produced.
	Snapshot string
	// Base is the snapshot ID the delta was applied against.
	Base string
	// Digest is the content digest of the batch (incremental.Delta.Digest).
	Digest string
	// Add1 and Add2 are the triples extending ontology 1 and 2.
	Add1, Add2 []rdf.Triple
}

// DeltaSegmentPath returns the file path of the segment for snapID in dir.
func DeltaSegmentPath(dir, snapID string) string {
	return filepath.Join(dir, snapID+".delta")
}

// WriteDeltaSegment persists seg into dir (created if missing) under its
// snapshot's name, atomically (temp file + rename, like TripleLog.Write).
func WriteDeltaSegment(dir string, seg *DeltaSegment) error {
	if seg.Snapshot == "" {
		return fmt.Errorf("diskstore: delta segment needs a snapshot ID")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeAtomically(DeltaSegmentPath(dir, seg.Snapshot), func(w *bufio.Writer) error {
		fmt.Fprintln(w, deltaLogHeader)
		fmt.Fprintf(w, "# base %s\n", seg.Base)
		fmt.Fprintf(w, "# digest %s\n", seg.Digest)
		writeSide := func(kb string, triples []rdf.Triple) {
			if len(triples) == 0 {
				return
			}
			fmt.Fprintf(w, "# kb %s\n", kb)
			for _, t := range triples {
				fmt.Fprintln(w, t.String())
			}
		}
		writeSide("1", seg.Add1)
		writeSide("2", seg.Add2)
		// Buffered writes latch their error; Flush in writeAtomically
		// surfaces it.
		return nil
	})
}

// ReadDeltaSegment loads one segment previously written by WriteDeltaSegment.
func ReadDeltaSegment(path string) (*DeltaSegment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seg := &DeltaSegment{Snapshot: strings.TrimSuffix(filepath.Base(path), ".delta")}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() || sc.Text() != deltaLogHeader {
		return nil, fmt.Errorf("diskstore: %s is not a delta segment", path)
	}
	side := 0 // 0 = header, 1/2 = triple sections
	var lineNo int
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# base "):
			seg.Base = strings.TrimPrefix(line, "# base ")
		case strings.HasPrefix(line, "# digest "):
			seg.Digest = strings.TrimPrefix(line, "# digest ")
		case line == "# kb 1":
			side = 1
		case line == "# kb 2":
			side = 2
		case strings.HasPrefix(line, "#"):
			// Unknown directives are ignored for forward compatibility.
		default:
			if side == 0 {
				return nil, fmt.Errorf("diskstore: %s: triple before a # kb section", path)
			}
			triples, err := parseNTriplesLine(line)
			if err != nil {
				return nil, fmt.Errorf("diskstore: corrupt delta segment %s line %d: %w", path, lineNo, err)
			}
			if side == 1 {
				seg.Add1 = append(seg.Add1, triples)
			} else {
				seg.Add2 = append(seg.Add2, triples)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return seg, nil
}

// parseNTriplesLine parses one N-Triples statement strictly.
func parseNTriplesLine(line string) (rdf.Triple, error) {
	r := rdf.NewNTriplesReader(strings.NewReader(line))
	r.Strict = true
	t, err := r.Next()
	if err == io.EOF {
		return rdf.Triple{}, fmt.Errorf("empty statement")
	}
	return t, err
}

// ListDeltaSegments returns the snapshot IDs of all segments in dir, oldest
// (lowest snapshot sequence) first. A missing directory is an empty list.
func ListDeltaSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".delta"); ok && !e.IsDir() {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// RemoveDeltaSegment deletes the segment for snapID; missing segments are a
// no-op (cold snapshots have none).
func RemoveDeltaSegment(dir, snapID string) error {
	err := os.Remove(DeltaSegmentPath(dir, snapID))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
