package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
)

func open(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kv")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := open(t)
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get([]byte("k1"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !s.Has([]byte("k1")) || s.Has([]byte("k2")) {
		t.Fatal("Has wrong")
	}
	if err := s.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get([]byte("k1"))
	if string(got) != "v2" {
		t.Fatalf("overwrite failed: %q", got)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k1")); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	if err := s.Delete([]byte("missing")); err != nil {
		t.Fatalf("delete of missing key should be a no-op: %v", err)
	}
}

func TestEmptyValueAndBinaryData(t *testing.T) {
	s, _ := open(t)
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get([]byte("empty"))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty value: %q, %v", got, err)
	}
	bin := []byte{0, 1, 2, 255, 254, '\n', 0}
	s.Put(bin, bin)
	got, _ = s.Get(bin)
	if !bytes.Equal(got, bin) {
		t.Fatal("binary round trip failed")
	}
}

func TestInvalidKeys(t *testing.T) {
	s, _ := open(t)
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(make([]byte, maxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestReopenRecoversState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "re.kv")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k050"))
	s.Put([]byte("k000"), []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("recovered %d keys, want 99", s2.Len())
	}
	got, _ := s2.Get([]byte("k000"))
	if string(got) != "updated" {
		t.Fatalf("recovered k000 = %q", got)
	}
	if _, err := s2.Get([]byte("k050")); err != ErrNotFound {
		t.Fatal("deleted key resurrected")
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.kv")
	s, _ := Open(path)
	s.Put([]byte("good"), []byte("value"))
	s.Close()

	// Append garbage simulating a torn write.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get([]byte("good"))
	if err != nil || string(got) != "value" {
		t.Fatalf("recovery lost good record: %q, %v", got, err)
	}
	// The store must stay writable after truncation.
	if err := s2.Put([]byte("after"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got, _ := s3.Get([]byte("after")); string(got) != "crash" {
		t.Fatalf("post-crash write lost: %q", got)
	}
}

func TestCorruptMiddleStopsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.kv")
	s, _ := Open(path)
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close()

	// Flip a byte inside the second record's value.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get([]byte("a")); err != nil {
		t.Fatal("first record should survive")
	}
	if _, err := s2.Get([]byte("b")); err != ErrNotFound {
		t.Fatal("corrupt record should be dropped")
	}
}

func TestEachOrderedAndEarlyStop(t *testing.T) {
	s, _ := open(t)
	for _, k := range []string{"c", "a", "b"} {
		s.Put([]byte(k), []byte("v"+k))
	}
	var keys []string
	s.Each(func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("order = %v", keys)
	}
	n := 0
	s.Each(func(k, v []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop ignored: %d", n)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.kv")
	s, _ := Open(path)
	defer s.Close()
	val := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 50; i++ {
		s.Put([]byte("key"), val) // 49 overwrites
	}
	s.Put([]byte("other"), []byte("small"))
	s.Delete([]byte("other"))
	s.Sync()
	before, _ := os.Stat(path)
	if s.Garbage() == 0 {
		t.Fatal("no garbage tracked")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	got, err := s.Get([]byte("key"))
	if err != nil || !bytes.Equal(got, val) {
		t.Fatal("live key lost by compaction")
	}
	if s.Garbage() != 0 {
		t.Fatal("garbage not reset")
	}
	// Store must remain usable and recoverable after compaction.
	s.Put([]byte("post"), []byte("compact"))
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Get([]byte("post")); string(got) != "compact" {
		t.Fatal("post-compaction write lost")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := open(t)
	s.Close()
	if err := s.Put([]byte("k"), nil); err != ErrClosed {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := s.Delete([]byte("k")); err != ErrClosed {
		t.Fatalf("Delete on closed = %v", err)
	}
	if err := s.Each(func(k, v []byte) bool { return true }); err != ErrClosed {
		t.Fatalf("Each on closed = %v", err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("double Close = %v", err)
	}
}

// Property: a random operation sequence leaves the store equivalent to a
// map, across a reopen.
func TestQuickRandomOpsMatchMap(t *testing.T) {
	f := func(seed int64) bool {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("q%d.kv", seed&0xffff))
		os.Remove(path)
		s, err := Open(path)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		model := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%d", r.Intn(40))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", r.Int())
				if s.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 2:
				if s.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			}
		}
		if r.Intn(2) == 0 {
			if s.Compact() != nil {
				return false
			}
		}
		s.Close()
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := s2.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignmentRoundTrip(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 30, Seed: 9})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("no alignments to persist")
	}

	s, _ := open(t)
	if err := SaveResult(s, res); err != nil {
		t.Fatal(err)
	}
	m, err := LoadInstanceMap(s)
	if err != nil {
		t.Fatal(err)
	}
	want := res.InstanceMap()
	if len(m) != len(want) {
		t.Fatalf("loaded %d assignments, want %d", len(m), len(want))
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("assignment %s: got %s, want %s", k, m[k], v)
		}
	}
	// Probabilities must round-trip exactly.
	a := res.Instances[0]
	p, err := InstanceProbability(s, res.O1.ResourceKey(a.X1))
	if err != nil || p != a.P {
		t.Fatalf("probability = %v, %v; want %v", p, err, a.P)
	}
	if _, err := InstanceProbability(s, "<missing>"); err != ErrNotFound {
		t.Fatalf("missing probability: %v", err)
	}
	// Evaluation through the persisted map matches the in-memory one.
	if d.Gold.Evaluate(m) != d.Gold.Evaluate(want) {
		t.Fatal("persisted evaluation differs")
	}
}
