package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/literal"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Options scales the harness. The zero value reproduces the default
// configuration reported in EXPERIMENTS.md.
type Options struct {
	// Seed drives the dataset generators. Zero means 42.
	Seed int64
	// Scale multiplies the large corpora (world, movies); 0 means 1.
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

func (o Options) worldConfig() gen.WorldConfig {
	return gen.WorldConfig{
		Seed:      o.Seed,
		People:    int(6000 * o.Scale),
		Cities:    int(250 * o.Scale),
		Companies: int(200 * o.Scale),
		Movies:    int(1500 * o.Scale),
		Albums:    int(1200 * o.Scale),
		Books:     int(1200 * o.Scale),
	}
}

func (o Options) moviesConfig() gen.MoviesConfig {
	return gen.MoviesConfig{
		Seed:   o.Seed,
		People: int(4000 * o.Scale),
		Movies: int(1500 * o.Scale),
	}
}

// CorpusResult is the scored outcome of one alignment run on one corpus.
type CorpusResult struct {
	Name      string
	Instances eval.Metrics
	GoldSize  int
	Relations RelEval // direction ontology-1 ⊆ ontology-2
	RelBack   RelEval // direction ontology-2 ⊆ ontology-1
	Classes   ClassEval
	ClassBack ClassEval
	Iters     int
	Elapsed   time.Duration
}

func (c CorpusResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s gold %4d  instances: %s  (%d iterations, %v)\n",
		c.Name, c.GoldSize, c.Instances, c.Iters, c.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-12s relations 1⊆2: %s   2⊆1: %s\n", "", c.Relations, c.RelBack)
	fmt.Fprintf(&b, "%-12s classes   1⊆2: prec %.0f%% (%d subs)   2⊆1: prec %.0f%% (%d subs)\n", "",
		100*c.Classes.Precision(), c.Classes.Subs, 100*c.ClassBack.Precision(), c.ClassBack.Subs)
	return b.String()
}

// runCorpus aligns a generated dataset and scores everything against its
// gold standards. classThreshold filters class alignments before scoring.
func runCorpus(name string, d *gen.Dataset, norm store.Normalizer, cfg core.Config, classThreshold float64) CorpusResult {
	o1, o2 := buildOrPanic(d, norm)
	t0 := time.Now()
	res := core.New(o1, o2, cfg).Run()
	elapsed := time.Since(t0)
	return CorpusResult{
		Name:      name,
		Instances: evalInstances(d, res),
		GoldSize:  d.Gold.Len(),
		Relations: EvalRelations(o1, o2, res.Relations12, d.RelGold),
		RelBack:   EvalRelations(o2, o1, res.Relations21, invertRelGold(d.RelGold)),
		Classes:   EvalClasses(o1, o2, res.Classes12, d.ClassGold, classThreshold),
		ClassBack: EvalClasses(o2, o1, res.Classes21, invertClassGold(d.ClassGold), classThreshold),
		Iters:     len(res.Iterations),
		Elapsed:   elapsed,
	}
}

func invertClassGold(gold map[string]string) map[string]string {
	inv := make(map[string]string, len(gold))
	for k, v := range gold {
		// Several sub-classes may share a gold super; keep the first
		// deterministically (sorted) — the reverse direction is only a
		// nearest-super judgment anyway.
		if prev, ok := inv[v]; !ok || k < prev {
			inv[v] = k
		}
	}
	return inv
}

// Table1 reproduces the OAEI benchmark rows (paper Table 1): person and
// restaurant corpora under default settings.
func Table1(opt Options) []CorpusResult {
	opt = opt.withDefaults()
	return []CorpusResult{
		runCorpus("person", gen.Persons(gen.PersonsConfig{Seed: opt.Seed}), nil, core.Config{}, 0.4),
		runCorpus("restaurant", gen.Restaurants(gen.RestaurantsConfig{Seed: opt.Seed}), nil, core.Config{}, 0.4),
	}
}

// Table2 reproduces the corpus-statistics table (paper Table 2).
func Table2(opt Options) []store.Stats {
	opt = opt.withDefaults()
	var out []store.Stats
	for _, d := range []*gen.Dataset{
		gen.World(opt.worldConfig()),
		gen.Movies(opt.moviesConfig()),
	} {
		o1, o2 := buildOrPanic(d, nil)
		out = append(out, o1.Stats(), o2.Stats())
	}
	return out
}

// IterationRow is one row of the per-iteration tables (paper Tables 3 / 5).
type IterationRow struct {
	Iter      int
	Changed   float64 // fraction of entities with a new maximal assignment
	Instances eval.Metrics
	Relations RelEval
	RelBack   RelEval
	Elapsed   time.Duration
}

// IterationTable is a per-iteration alignment trace plus the final class
// alignment, the layout of paper Tables 3 and 5.
type IterationTable struct {
	Name      string
	Rows      []IterationRow
	Classes   ClassEval
	ClassBack ClassEval
	// RestrictedInstances scores only gold entities passing the >10-facts
	// filter (the paper's "entities with more than 10 facts" remark).
	RestrictedInstances eval.Metrics
}

func (t IterationTable) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-iteration results\n", t.Name)
	fmt.Fprintf(&b, "%4s %8s  %-34s  %-28s  %-28s %s\n",
		"iter", "change", "instances", "rel 1⊆2", "rel 2⊆1", "time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%4d %7.1f%%  %-34s  %-28s  %-28s %v\n",
			r.Iter, 100*r.Changed, r.Instances.String(), r.Relations, r.RelBack,
			r.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "rich entities (>10 facts): %s\n", t.RestrictedInstances)
	fmt.Fprintf(&b, "classes 1⊆2: prec %.0f%% (%d subs)   2⊆1: prec %.0f%% (%d subs)\n",
		100*t.Classes.Precision(), t.Classes.Subs,
		100*t.ClassBack.Precision(), t.ClassBack.Subs)
	return b.String()
}

// iterationTable runs an alignment capturing per-iteration metrics.
func iterationTable(name string, d *gen.Dataset, maxIter int, classThreshold float64) IterationTable {
	o1, o2 := buildOrPanic(d, nil)
	out := IterationTable{Name: name}
	invGold := invertRelGold(d.RelGold)
	start := time.Now()
	cfg := core.Config{
		MaxIterations: maxIter,
		OnIteration: func(it int, a *core.Aligner) {
			assign := map[string]string{}
			for _, as := range a.Assignments() {
				assign[o1.ResourceKey(as.X1)] = o2.ResourceKey(as.X2)
			}
			to2, to1 := a.RelationAlignments()
			stats := a.Iterations()[it-1]
			out.Rows = append(out.Rows, IterationRow{
				Iter:      it,
				Changed:   stats.ChangedFraction,
				Instances: d.Gold.Evaluate(assign),
				Relations: EvalRelations(o1, o2, to2, d.RelGold),
				RelBack:   EvalRelations(o2, o1, to1, invGold),
				Elapsed:   time.Since(start),
			})
			start = time.Now()
		},
	}
	res := core.New(o1, o2, cfg).Run()
	out.Classes = EvalClasses(o1, o2, res.Classes12, d.ClassGold, classThreshold)
	out.ClassBack = EvalClasses(o2, o1, res.Classes21, invertClassGold(d.ClassGold), classThreshold)
	out.RestrictedInstances = d.Gold.EvaluateWhere(res.InstanceMap(), func(k1 string) bool {
		x, ok := o1.LookupResource(k1)
		return ok && len(o1.Edges(x)) > 10
	})
	return out
}

// Table3 reproduces the YAGO-vs-DBpedia experiment (paper Table 3) on the
// world corpus.
func Table3(opt Options) IterationTable {
	opt = opt.withDefaults()
	return iterationTable("world (ykb vs dkb)", gen.World(opt.worldConfig()), 4, 0.4)
}

// RelationExample is one showcased relation alignment (paper Table 4).
type RelationExample struct {
	Sub, Super string
	P          float64
}

// Table4 reproduces the showcase of discovered relation alignments (paper
// Table 4): inverse alignments, coarse/fine splits, and different-name
// pairs, with their scores.
func Table4(opt Options) []RelationExample {
	opt = opt.withDefaults()
	d := gen.World(opt.worldConfig())
	o1, o2 := buildOrPanic(d, nil)
	res := core.New(o1, o2, core.Config{}).Run()
	var out []RelationExample
	for _, ra := range res.Relations12 {
		sub := o1.RelationName(ra.Sub)
		if strings.HasSuffix(sub, "⁻¹") {
			continue // show base directions only, like the paper
		}
		out = append(out, RelationExample{
			Sub:   shorten(sub),
			Super: shorten(o2.RelationName(ra.Super)),
			P:     ra.P,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sub != out[j].Sub {
			return out[i].Sub < out[j].Sub
		}
		return out[i].P > out[j].P
	})
	return out
}

// shorten maps a full IRI to a prefix:local rendering for display.
func shorten(iri string) string {
	for _, p := range [...][2]string{
		{"http://ykb.example.org/", "y:"},
		{"http://dkb.example.org/", "dbp:"},
		{"http://ykbfilm.example.org/", "y:"},
		{"http://ikb.example.org/", "imdb:"},
		{rdf.RDFSLabel, "rdfs:label"},
	} {
		if strings.HasPrefix(iri, p[0]) {
			return p[1] + strings.TrimPrefix(iri, p[0])
		}
	}
	return iri
}

// Table5Result extends the iteration table with the label-matching baseline
// of Section 6.4.
type Table5Result struct {
	IterationTable
	Baseline eval.Metrics
}

func (t Table5Result) Report() string {
	return t.IterationTable.Report() +
		fmt.Sprintf("rdfs:label baseline: %s\n", t.Baseline)
}

// Table5 reproduces the YAGO-vs-IMDb experiment (paper Table 5) on the
// movie corpus, including the label baseline the paper compares against
// (97% precision / 70% recall there).
func Table5(opt Options) Table5Result {
	opt = opt.withDefaults()
	d := gen.Movies(opt.moviesConfig())
	table := iterationTable("movies (ykb-film vs ikb)", d, 4, 0)
	o1, o2 := buildOrPanic(d, nil)
	base := baseline.LabelMatch(o1, o2, baseline.Config{})
	return Table5Result{
		IterationTable: table,
		Baseline:       d.Gold.Evaluate(base),
	}
}

// ThresholdPoint is one point of the Figure 1 / Figure 2 sweeps.
type ThresholdPoint struct {
	Threshold float64
	Precision float64 // Figure 1: class-alignment precision
	Count     int     // Figure 2: classes with >= threshold alignment
}

// Figures1And2 reproduces the class-alignment threshold sweeps of Figures 1
// and 2: precision increases with the probability threshold while the
// number of aligned classes decreases.
func Figures1And2(opt Options) []ThresholdPoint {
	opt = opt.withDefaults()
	d := gen.World(opt.worldConfig())
	o1, o2 := buildOrPanic(d, nil)
	res := core.New(o1, o2, core.Config{}).Run()
	var out []ThresholdPoint
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		ce := EvalClasses(o1, o2, res.Classes12, d.ClassGold, th)
		out = append(out, ThresholdPoint{
			Threshold: th,
			Precision: ce.Precision(),
			Count:     CountClassAlignments(res.Classes12, th),
		})
	}
	return out
}

// ThetaResult records one θ setting of the Section 6.3 sweep.
type ThetaResult struct {
	Theta     float64
	Instances eval.Metrics
	// RelScores maps "sub->super" to the final probability; the paper's
	// claim is that these are identical across θ.
	RelScores map[string]float64
}

// ThetaSweep reproduces the first Section 6.3 experiment: the final
// sub-relation scores are independent of the bootstrap value θ.
func ThetaSweep(opt Options) []ThetaResult {
	opt = opt.withDefaults()
	d := gen.Restaurants(gen.RestaurantsConfig{Seed: opt.Seed})
	var out []ThetaResult
	for _, theta := range []float64{0.001, 0.01, 0.05, 0.1, 0.2} {
		o1, o2 := buildOrPanic(d, nil)
		res := core.New(o1, o2, core.Config{Theta: theta}).Run()
		scores := map[string]float64{}
		for _, ra := range core.MaxRelAlignments(res.Relations12) {
			scores[shorten(o1.RelationName(ra.Sub))+" ⊆ "+shorten(o2.RelationName(ra.Super))] = ra.P
		}
		out = append(out, ThetaResult{
			Theta:     theta,
			Instances: evalInstances(d, res),
			RelScores: scores,
		})
	}
	return out
}

// AblationResult compares a variant configuration against the default.
type AblationResult struct {
	Name      string
	Instances eval.Metrics
	// Restaurants scores restaurant entities only (excluding the address
	// entities), the population the paper's Table 1 counts. Only the
	// restaurant ablations fill it.
	Restaurants eval.Metrics
}

// AllPairsAblation reproduces the second Section 6.3 experiment: using all
// equalities of the previous iteration instead of only the maximal
// assignment changes the outcome only marginally.
func AllPairsAblation(opt Options) []AblationResult {
	opt = opt.withDefaults()
	d := gen.Restaurants(gen.RestaurantsConfig{Seed: opt.Seed})
	out := make([]AblationResult, 0, 2)
	for _, mode := range []struct {
		name string
		all  bool
	}{{"maximal-assignment", false}, {"all-equalities", true}} {
		o1, o2 := buildOrPanic(d, nil)
		res := core.New(o1, o2, core.Config{AllEqualities: mode.all}).Run()
		out = append(out, AblationResult{Name: mode.name, Instances: evalInstances(d, res)})
	}
	return out
}

// NegativeEvidenceAblation reproduces the third Section 6.3 experiment:
// with raw literal identity, negative evidence (Equation 14) makes PARIS
// give up most restaurant matches (the phone-format problem); with the
// alphanumeric normalizer it trades recall for perfect precision.
func NegativeEvidenceAblation(opt Options) []AblationResult {
	opt = opt.withDefaults()
	d := gen.Restaurants(gen.RestaurantsConfig{Seed: opt.Seed})
	var out []AblationResult
	isRestaurant := func(k1 string) bool {
		return strings.Contains(k1, "/rest") && !strings.Contains(k1, "_addr")
	}
	run := func(name string, norm store.Normalizer, cfg core.Config) {
		o1, o2 := buildOrPanic(d, norm)
		res := core.New(o1, o2, cfg).Run()
		assign := res.InstanceMap()
		out = append(out, AblationResult{
			Name:        name,
			Instances:   d.Gold.Evaluate(assign),
			Restaurants: d.Gold.EvaluateWhere(assign, isRestaurant),
		})
	}
	run("positive only, identity literals", nil, core.Config{})
	run("negative evidence, identity literals", nil, core.Config{NegativeEvidence: true})
	run("negative evidence, alphanum literals", literal.AlphaNum, core.Config{NegativeEvidence: true})
	return out
}

// FunctionalityAblation reproduces the Appendix A comparison: instance
// quality under the four global-functionality definitions.
func FunctionalityAblation(opt Options) []AblationResult {
	opt = opt.withDefaults()
	d := gen.Movies(opt.moviesConfig())
	var out []AblationResult
	for _, mode := range []store.FunMode{
		store.FunHarmonicMean, store.FunPairRatio,
		store.FunArgRatio, store.FunArithmeticMean,
	} {
		o1, o2 := buildOrPanic(d, nil)
		res := core.New(o1, o2, core.Config{FunMode: mode}).Run()
		out = append(out, AblationResult{Name: mode.String(), Instances: evalInstances(d, res)})
	}
	return out
}
