package bench

// Load generator for the serving path: drives a parisd (or parisrouter)
// endpoint with concurrent read traffic in six mixes — single-key GETs,
// 64-key batch POSTs, normalized-lookup misses, and three conjunctive-query
// shapes over the aligned union KB (single pattern, cross-KB join, type
// scan) — and records exact latency quantiles, throughput, the server-side
// metric deltas scraped from /metrics, and a Go-runtime summary (GC work
// induced by the load, plus goroutine/heap peaks sampled mid-run).
// cmd/parisbench -load writes the report as BENCH_<n>.json so the perf
// trajectory of the serving stack is committed alongside the
// paper-reproduction numbers. With Fleet set to FleetDegraded the target is
// a replicated in-process fleet behind a parisrouter with one replica per
// group killed, measuring the hedged-failover read path under degradation;
// the counter deltas then come from the router's federated
// /v1/fleet/metrics — one scrape covering every process — and the report
// gains a per-replica breakdown plus the fleet-merged SLO burn report.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

// LoadReportSchema identifies the BENCH_*.json layout; bump on breaking
// changes so the CI schema check and downstream tooling can pin versions.
const LoadReportSchema = "paris-load-report/v1"

// batchSize is the key count of one batch_post request.
const batchSize = 64

// queryRowLimit bounds query-mix responses so one request's payload stays
// comparable across corpus sizes.
const queryRowLimit = 100

// Persons-corpus namespaces the query mixes address; a remote Target must
// have aligned the same corpus (see LoadOptions.Keys).
const (
	personsNS1 = "http://person1.example.org/"
	personsNS2 = "http://person2.example.org/"
)

// FleetDegraded is the LoadOptions.Fleet value selecting the degraded
// replicated fleet: a 3-group × 2-replica in-process deployment behind a
// parisrouter with one replica per group killed before the measured
// window, so the run exercises the hedged-failover read path end to end.
const FleetDegraded = "degraded"

// LoadOptions configures one load-generator run.
type LoadOptions struct {
	// Target is the base URL of a running parisd or parisrouter. Empty
	// starts an in-process parisd over a freshly aligned synthetic corpus,
	// so the run needs no deployment and measures the serving stack alone.
	Target string
	// Fleet selects the in-process deployment shape when Target is empty:
	// "" is a single parisd, FleetDegraded the replicated fleet with one
	// replica down per group. The router serves no /v1/query, so a fleet
	// run drives the three /v1/sameas mixes only.
	Fleet string
	// Duration is the measured window per mix (default 2s).
	Duration time.Duration
	// Concurrency is the number of closed-loop workers per mix (default 8).
	Concurrency int
	// Seed drives the corpus generator and the key-picking RNG (default 42).
	Seed int64
	// Keys sizes the corpus in matched persons (default 300). Lookup keys
	// are the generator's gold keys, so a remote Target must have aligned
	// the corpus of the same Seed and Keys for the GET mixes to hit.
	Keys int
	// Logf receives progress lines; nil discards them.
	Logf func(string, ...any)
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Keys <= 0 {
		o.Keys = 300
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// MixResult is the measured outcome of one traffic mix.
type MixResult struct {
	Mix         string  `json:"mix"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	KeysPerReq  int     `json:"keys_per_request"`
	Description string  `json:"description"`
}

// LoadReport is the JSON document written to BENCH_<n>.json. On fleet runs
// MetricDeltas is scraped from the router's /v1/fleet/metrics, so its keys
// carry instance labels (plus the fleet:-summed families), and the
// Replicas breakdown and fleet SLO report ride along.
type LoadReport struct {
	Schema       string             `json:"schema"`
	Target       string             `json:"target"` // "in-process", "in-process-degraded-fleet", or the URL
	Fleet        string             `json:"fleet,omitempty"`
	Concurrency  int                `json:"concurrency"`
	Seed         int64              `json:"seed"`
	CorpusKeys   int                `json:"corpus_keys"`
	Mixes        []MixResult        `json:"mixes"`
	MetricDeltas map[string]float64 `json:"server_metric_deltas,omitempty"`
	Replicas     []ReplicaLoad      `json:"replica_breakdown,omitempty"`
	SLO          *obs.FleetSLO      `json:"slo,omitempty"`
	Runtime      *RuntimeDeltas     `json:"runtime,omitempty"`
}

// ReplicaLoad is one row of a fleet run's per-replica breakdown, folded
// from the instance labels of the federated scrape: how the measured
// traffic actually spread over the fleet, and which targets were dark —
// killed replicas appear as Up=false rows with no movement, not as gaps.
type ReplicaLoad struct {
	Instance string  `json:"instance"`
	Up       bool    `json:"up"`
	Requests float64 `json:"request_delta"`
	Lookups  float64 `json:"lookup_delta"`
}

// RuntimeDeltas summarizes the server's Go runtime behavior across the run,
// from the <prefix>_go_* families every daemon exposes: how much garbage
// collection the load induced, and the concurrency/memory high-water marks
// sampled mid-run (gauges, so the before/after scrapes alone would miss the
// peaks).
type RuntimeDeltas struct {
	GCCycles          float64 `json:"gc_cycles"`
	GCPauseCount      float64 `json:"gc_pause_count"`
	GCPauseSeconds    float64 `json:"gc_pause_seconds"`
	PeakGoroutines    float64 `json:"peak_goroutines"`
	PeakHeapInUse     float64 `json:"peak_heap_inuse_bytes"`
	SamplesTaken      int     `json:"samples_taken"`
	SampleIntervalSec float64 `json:"sample_interval_seconds"`
}

// RunLoad executes the traffic mixes against the target and returns the
// report: all six against a parisd, the three /v1/sameas mixes against the
// degraded fleet (the router serves no /v1/query).
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if opts.Fleet != "" && opts.Fleet != FleetDegraded {
		return nil, fmt.Errorf("bench: unknown fleet %q (want empty or %q)", opts.Fleet, FleetDegraded)
	}

	base := opts.Target
	targetName := base
	if base == "" {
		start := startInProcess
		targetName = "in-process"
		if opts.Fleet == FleetDegraded {
			start = startInProcessFleet
			targetName = "in-process-degraded-fleet"
		}
		ts, cleanup, err := start(opts)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		base = ts
	}

	// Lookup keys: the kb1 side of the generator's gold pairs. Against a
	// remote target the operator must have loaded the same corpus (seed and
	// size are recorded in the report for that reason).
	d := gen.Persons(gen.PersonsConfig{N: opts.Keys, Seed: opts.Seed})
	pairs := d.Gold.Pairs()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("bench: corpus has no gold pairs")
	}
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p[0]
	}

	// Counter deltas: the plain /metrics of a single daemon, or the router's
	// federated /v1/fleet/metrics on fleet runs — one scrape covering every
	// replica (instance-labeled) plus the fleet:-summed families. The
	// runtime sampler always reads the plain /metrics, where the unlabeled
	// <prefix>_go_* gauges live.
	countersURL := base + "/metrics"
	if opts.Fleet == FleetDegraded {
		countersURL = base + "/v1/fleet/metrics"
	}
	before := scrape(countersURL)
	runtimeBefore := before
	if opts.Fleet == FleetDegraded {
		runtimeBefore = scrape(base + "/metrics")
	}
	sampler := startRuntimeSampler(base)
	report := &LoadReport{
		Schema:      LoadReportSchema,
		Target:      targetName,
		Fleet:       opts.Fleet,
		Concurrency: opts.Concurrency,
		Seed:        opts.Seed,
		CorpusKeys:  len(keys),
	}
	mixes := []struct {
		name, desc string
		perReq     int
		issue      func(c *http.Client, r *rand.Rand) (int, error)
	}{
		{
			"get_sameas", "single-key GET /v1/sameas on gold keys", 1,
			func(c *http.Client, r *rand.Rand) (int, error) {
				return get(c, base+"/v1/sameas?kb=1&key="+url.QueryEscape(keys[r.Intn(len(keys))]))
			},
		},
		{
			"batch_post", "64-key batch POST /v1/sameas", batchSize,
			func(c *http.Client, r *rand.Rand) (int, error) {
				picked := make([]string, batchSize)
				for i := range picked {
					picked[i] = keys[r.Intn(len(keys))]
				}
				body, _ := json.Marshal(map[string]any{"kb": "1", "keys": picked})
				resp, err := c.Post(base+"/v1/sameas", "application/json", strings.NewReader(string(body)))
				if err != nil {
					return 0, err
				}
				drain(resp)
				return resp.StatusCode, nil
			},
		},
		{
			"normalized_miss", "GET /v1/sameas keys that miss through the normalized fallback", 1,
			func(c *http.Client, r *rand.Rand) (int, error) {
				// Upper-casing forces the exact index to miss and the
				// folded-key path to run; the suffix makes that miss too,
				// so every request crosses the normalization + LRU layer.
				k := strings.ToUpper(keys[r.Intn(len(keys))]) + "/nope" + strconv.Itoa(r.Intn(len(keys)))
				return get(c, base+"/v1/sameas?kb=1&key="+url.QueryEscape(k))
			},
		},
		{
			"query_single", "POST /v1/query, one triple pattern", 1,
			func(c *http.Client, r *rand.Rand) (int, error) {
				return postQuery(c, base, `?p <`+personsNS1+`has_address> ?a`)
			},
		},
		{
			"query_join", "POST /v1/query, cross-KB join through sameAs clusters", 1,
			func(c *http.Client, r *rand.Rand) (int, error) {
				return postQuery(c, base,
					`?p <`+personsNS1+`has_address> ?a . ?a <`+personsNS2+`zipCode> ?z`)
			},
		},
		{
			"query_type", "POST /v1/query, type scan with subclass expansion", 1,
			func(c *http.Client, r *rand.Rand) (int, error) {
				return postQuery(c, base, `?x a <`+personsNS2+`Human>`)
			},
		},
	}
	if opts.Fleet == FleetDegraded {
		// The router has no /v1/query surface; the sameas mixes lead.
		mixes = mixes[:3]
	}
	for _, mix := range mixes {
		opts.Logf("bench: load mix %s (%d workers, %s)", mix.name, opts.Concurrency, opts.Duration)
		res := runMix(opts, mix.issue)
		res.Mix, res.Description, res.KeysPerReq = mix.name, mix.desc, mix.perReq
		report.Mixes = append(report.Mixes, res)
	}
	after := scrape(countersURL)
	runtimeAfter := after
	if opts.Fleet == FleetDegraded {
		runtimeAfter = scrape(base + "/metrics")
	}
	report.MetricDeltas = metricDeltas(before, after)
	if opts.Fleet == FleetDegraded {
		report.Replicas = replicaBreakdown(before, after)
		report.SLO = fetchFleetSLO(base)
	}
	report.Runtime = sampler.stop(runtimeBefore, runtimeAfter)
	return report, nil
}

// replicaBreakdown folds the instance-labeled series of the federated
// before/after scrapes into one row per fleet member.
func replicaBreakdown(before, after map[string]float64) []ReplicaLoad {
	rows := map[string]*ReplicaLoad{}
	row := func(instance string) *ReplicaLoad {
		r, ok := rows[instance]
		if !ok {
			r = &ReplicaLoad{Instance: instance}
			rows[instance] = r
		}
		return r
	}
	for series, v := range after {
		inst, ok := seriesLabel(series, "instance")
		if !ok {
			continue
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		switch {
		case name == obs.FleetUpFamily:
			row(inst).Up = v == 1
		case strings.HasSuffix(name, "_http_requests_total"):
			row(inst).Requests += round3(v - before[series])
		case name == "paris_lookups_total" || name == "paris_router_lookups_total":
			row(inst).Lookups += round3(v - before[series])
		}
	}
	out := make([]ReplicaLoad, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// seriesLabel extracts one label value from a flat series key of the form
// name{a="x",b="y"}. Values the registry escapes (quotes, backslashes)
// don't occur in instance names, so a plain scan suffices here.
func seriesLabel(series, label string) (string, bool) {
	i := strings.Index(series, "{"+label+`="`)
	if i < 0 {
		i = strings.Index(series, ","+label+`="`)
		if i < 0 {
			return "", false
		}
	}
	rest := series[i+len(label)+3:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// fetchFleetSLO grabs the router's fleet-merged burn-rate report, so the
// committed BENCH file records whether the measured window burned error
// budget (a degraded-but-serving fleet must not).
func fetchFleetSLO(base string) *obs.FleetSLO {
	cl, err := client.New(base)
	if err != nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	slo, err := cl.FleetSLO(ctx)
	if err != nil {
		return nil
	}
	return &slo
}

// runtimeSampleInterval paces the mid-run gauge sampler: frequent enough to
// catch goroutine/heap peaks inside a 2s mix, cheap enough (one /metrics GET)
// not to perturb the measurement.
const runtimeSampleInterval = 250 * time.Millisecond

// runtimeSampler polls the target's /metrics in the background to track
// gauge high-water marks while the mixes run.
type runtimeSampler struct {
	stopCh chan struct{}
	done   chan struct{}

	mu             sync.Mutex
	samples        int
	peakGoroutines float64
	peakHeap       float64
}

func startRuntimeSampler(base string) *runtimeSampler {
	s := &runtimeSampler{stopCh: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(runtimeSampleInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-t.C:
				s.observe(scrape(base + "/metrics"))
			}
		}
	}()
	return s
}

func (s *runtimeSampler) observe(m map[string]float64) {
	if m == nil {
		return
	}
	g, okG := seriesBySuffix(m, "_go_goroutines")
	h, okH := seriesBySuffix(m, "_go_heap_inuse_bytes")
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	if okG && g > s.peakGoroutines {
		s.peakGoroutines = g
	}
	if okH && h > s.peakHeap {
		s.peakHeap = h
	}
}

// stop ends the sampler and folds the before/after scrapes into the summary:
// cumulative GC families come from the scrape deltas, the peaks from the
// mid-run samples (seeded with both endpoint scrapes so a short run with no
// tick still reports the gauges). Returns nil when the target exposes no
// runtime families — an older daemon, or no /metrics at all.
func (s *runtimeSampler) stop(before, after map[string]float64) *RuntimeDeltas {
	close(s.stopCh)
	<-s.done
	s.observe(before)
	s.observe(after)
	if _, ok := seriesBySuffix(after, "_go_goroutines"); !ok {
		return nil
	}
	delta := func(suffix string) float64 {
		a, _ := seriesBySuffix(after, suffix)
		b, _ := seriesBySuffix(before, suffix)
		return a - b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &RuntimeDeltas{
		GCCycles:          delta("_go_gc_cycles_total"),
		GCPauseCount:      delta("_go_gc_pause_seconds_count"),
		GCPauseSeconds:    round6(delta("_go_gc_pause_seconds_sum")),
		PeakGoroutines:    s.peakGoroutines,
		PeakHeapInUse:     s.peakHeap,
		SamplesTaken:      s.samples,
		SampleIntervalSec: runtimeSampleInterval.Seconds(),
	}
}

// seriesBySuffix finds the one runtime series ending in suffix regardless of
// the daemon's metric prefix (paris_ on parisd, paris_router_ on the router).
func seriesBySuffix(m map[string]float64, suffix string) (float64, bool) {
	for series, v := range m {
		if strings.HasSuffix(series, suffix) {
			return v, true
		}
	}
	return 0, false
}

// startInProcess aligns a synthetic corpus and serves it from a local parisd.
func startInProcess(opts LoadOptions) (baseURL string, cleanup func(), err error) {
	d := gen.Persons(gen.PersonsConfig{N: opts.Keys, Seed: opts.Seed})
	o1, o2, err := d.Build(nil)
	if err != nil {
		return "", nil, err
	}
	res := core.New(o1, o2, core.Config{}).Run()

	dir, err := os.MkdirTemp("", "parisbench-load-")
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(server.Options{StateDir: dir, Logf: func(string, ...any) {}})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	if _, err := srv.PublishResult(res); err != nil {
		srv.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, func() {
		ts.Close()
		srv.Close()
		os.RemoveAll(dir)
	}, nil
}

// startInProcessFleet aligns the corpus and serves it from a replicated
// in-process fleet — 3 shard groups of 2 replicas behind a parisrouter —
// then kills one replica of every group, so the measured window runs
// against a degraded fleet: every read either lands on the survivor or
// fails over to it, and the client must still see zero errors.
func startInProcessFleet(opts LoadOptions) (baseURL string, cleanup func(), err error) {
	d := gen.Persons(gen.PersonsConfig{N: opts.Keys, Seed: opts.Seed})
	o1, o2, err := d.Build(nil)
	if err != nil {
		return "", nil, err
	}
	res := core.New(o1, o2, core.Config{}).Run()

	const nGroups, nReplicas = 3, 2
	var cleanups []func()
	cleanup = func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	groups := make([][]*client.Client, nGroups)
	victims := make([]*httptest.Server, 0, nGroups)
	var elements []string
	for i := 0; i < nGroups; i++ {
		var urls []string
		for j := 0; j < nReplicas; j++ {
			dir, err := os.MkdirTemp("", "parisbench-fleet-")
			if err != nil {
				cleanup()
				return "", nil, err
			}
			cleanups = append(cleanups, func() { os.RemoveAll(dir) })
			srv, err := server.New(server.Options{
				StateDir: dir, ShardIndex: i, ShardCount: nGroups, Logf: func(string, ...any) {},
			})
			if err != nil {
				cleanup()
				return "", nil, err
			}
			cleanups = append(cleanups, func() { srv.Close() })
			ts := httptest.NewServer(srv.Handler())
			// httptest.Server.Close is idempotent, so closing the killed
			// replicas again at cleanup is harmless.
			cleanups = append(cleanups, ts.Close)
			peer, err := client.New(ts.URL)
			if err != nil {
				cleanup()
				return "", nil, err
			}
			groups[i] = append(groups[i], peer)
			urls = append(urls, ts.URL)
			if j == nReplicas-1 {
				victims = append(victims, ts)
			}
		}
		elements = append(elements, strings.Join(urls, ","))
	}
	ctx := context.Background()
	if err := shard.PublishGroups(ctx, groups, diskstore.SnapshotID(1), res.Snapshot()); err != nil {
		cleanup()
		return "", nil, err
	}
	rt, err := shard.NewRouter(elements)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	if _, err := rt.Refresh(ctx); err != nil {
		cleanup()
		return "", nil, err
	}
	rts := httptest.NewServer(rt.Handler())
	cleanups = append(cleanups, rts.Close)
	// The degradation under measurement: one replica of every group goes
	// dark after the epoch is set, in-flight connections included.
	for _, ts := range victims {
		ts.CloseClientConnections()
		ts.Close()
	}
	return rts.URL, cleanup, nil
}

// runMix drives one request shape with closed-loop workers for the window.
func runMix(opts LoadOptions, issue func(*http.Client, *rand.Rand) (int, error)) MixResult {
	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds
		errs      int
	)
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &http.Client{Timeout: 30 * time.Second}
			r := rand.New(rand.NewSource(opts.Seed + int64(w)))
			var mine []float64
			var myErrs int
			for time.Now().Before(deadline) {
				t0 := time.Now()
				code, err := issue(c, r)
				mine = append(mine, float64(time.Since(t0))/float64(time.Millisecond))
				// 404 is an expected outcome of the miss mix; only
				// transport failures and 5xx count as errors.
				if err != nil || code >= 500 {
					myErrs++
				}
			}
			mu.Lock()
			latencies = append(latencies, mine...)
			errs += myErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Float64s(latencies)
	res := MixResult{
		Requests: len(latencies),
		Errors:   errs,
		Seconds:  round3(elapsed),
	}
	if n := len(latencies); n > 0 {
		res.Throughput = round3(float64(n) / elapsed)
		res.P50Ms = round3(quantile(latencies, 0.50))
		res.P90Ms = round3(quantile(latencies, 0.90))
		res.P99Ms = round3(quantile(latencies, 0.99))
		res.MaxMs = round3(latencies[n-1])
	}
	return res
}

// quantile returns the exact q-th quantile of a sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// round6 keeps microsecond precision for GC pause totals, which are far
// below the millisecond granularity round3 assumes.
func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}

// postQuery issues one conjunctive query with the mix's shared row limit.
func postQuery(c *http.Client, base, q string) (int, error) {
	body, _ := json.Marshal(map[string]any{"query": q, "limit": queryRowLimit})
	resp, err := c.Post(base+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

func get(c *http.Client, u string) (int, error) {
	resp, err := c.Get(u)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// scrape fetches and parses one metrics exposition URL into a flat
// series→value map. A nil map means the target exposes no metrics (or the
// scrape failed); the report then simply omits the deltas.
func scrape(metricsURL string) map[string]float64 {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(metricsURL)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// metricDeltas reports how much each server-side counter moved across the
// run: every _total and _count series (cumulative by construction), so the
// report shows which code paths the load actually exercised.
func metricDeltas(before, after map[string]float64) map[string]float64 {
	if after == nil {
		return nil
	}
	deltas := map[string]float64{}
	for series, v := range after {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") {
			continue
		}
		if d := v - before[series]; d != 0 {
			deltas[series] = round3(d)
		}
	}
	return deltas
}
