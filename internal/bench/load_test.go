package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadGeneratorSmoke runs a short in-process load and checks the report
// carries all six mixes with sane numbers and the scraped metric deltas.
func TestLoadGeneratorSmoke(t *testing.T) {
	rep, err := RunLoad(LoadOptions{
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		Keys:        20,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != LoadReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, LoadReportSchema)
	}
	if rep.Target != "in-process" {
		t.Fatalf("target %q", rep.Target)
	}
	if len(rep.Mixes) != 6 {
		t.Fatalf("%d mixes, want 6", len(rep.Mixes))
	}
	for i, want := range []string{"get_sameas", "batch_post", "normalized_miss",
		"query_single", "query_join", "query_type"} {
		m := rep.Mixes[i]
		if m.Mix != want {
			t.Errorf("mix %d = %q, want %q", i, m.Mix, want)
		}
		if m.Requests == 0 {
			t.Errorf("mix %s made no requests", m.Mix)
		}
		if m.Errors != 0 {
			t.Errorf("mix %s: %d errors", m.Mix, m.Errors)
		}
		if m.Throughput <= 0 {
			t.Errorf("mix %s throughput %v", m.Mix, m.Throughput)
		}
		if m.P50Ms > m.P99Ms || m.P99Ms > m.MaxMs {
			t.Errorf("mix %s quantiles out of order: p50=%v p99=%v max=%v",
				m.Mix, m.P50Ms, m.P99Ms, m.MaxMs)
		}
	}
	// The deltas must prove the load crossed the serving metrics: every
	// lookup (batch keys included) lands in paris_lookups_total, and the
	// three query mixes in paris_query_total{outcome="ok"} — all but one
	// request per shape hit the plan cache.
	wantLookups := float64(rep.Mixes[0].Requests + batchSize*rep.Mixes[1].Requests + rep.Mixes[2].Requests)
	if got := rep.MetricDeltas["paris_lookups_total"]; got != wantLookups {
		t.Errorf("paris_lookups_total delta %v, want %v", got, wantLookups)
	}
	wantQueries := float64(rep.Mixes[3].Requests + rep.Mixes[4].Requests + rep.Mixes[5].Requests)
	if got := rep.MetricDeltas[`paris_query_total{outcome="ok"}`]; got != wantQueries {
		t.Errorf("paris_query_total delta %v, want %v", got, wantQueries)
	}
	if hits := rep.MetricDeltas["paris_query_plan_cache_hits_total"]; hits < wantQueries-3 {
		t.Errorf("plan-cache hits %v across %v queries", hits, wantQueries)
	}
	// The runtime summary rides along: parisd exposes the paris_go_* families,
	// so the sampler must have found the gauges (both endpoint scrapes count
	// as samples even if no mid-run tick fired in a short window).
	rt := rep.Runtime
	if rt == nil {
		t.Fatal("report has no runtime summary")
	}
	if rt.PeakGoroutines <= 0 {
		t.Errorf("peak goroutines %v, want > 0", rt.PeakGoroutines)
	}
	if rt.PeakHeapInUse <= 0 {
		t.Errorf("peak heap in-use %v, want > 0", rt.PeakHeapInUse)
	}
	if rt.SamplesTaken < 2 {
		t.Errorf("sampler took %d samples, want >= 2", rt.SamplesTaken)
	}
	if rt.GCCycles < 0 || rt.GCPauseSeconds < 0 {
		t.Errorf("negative GC deltas: %+v", rt)
	}
}

// TestLoadDegradedFleetSmoke drives the replicated fleet with one replica
// down per group: the three sameas mixes must complete with zero
// client-visible errors (failover absorbs the dead replicas), and the
// scraped router deltas must prove reads actually failed over.
func TestLoadDegradedFleetSmoke(t *testing.T) {
	rep, err := RunLoad(LoadOptions{
		Fleet:       FleetDegraded,
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		Keys:        20,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Target != "in-process-degraded-fleet" || rep.Fleet != FleetDegraded {
		t.Fatalf("target %q fleet %q", rep.Target, rep.Fleet)
	}
	if len(rep.Mixes) != 3 {
		t.Fatalf("%d mixes, want 3 (the router serves no /v1/query)", len(rep.Mixes))
	}
	for i, want := range []string{"get_sameas", "batch_post", "normalized_miss"} {
		m := rep.Mixes[i]
		if m.Mix != want {
			t.Errorf("mix %d = %q, want %q", i, m.Mix, want)
		}
		if m.Requests == 0 {
			t.Errorf("mix %s made no requests", m.Mix)
		}
		if m.Errors != 0 {
			t.Errorf("mix %s: %d errors — failover must hide the dead replicas", m.Mix, m.Errors)
		}
		if m.Throughput <= 0 {
			t.Errorf("mix %s throughput %v", m.Mix, m.Throughput)
		}
	}
	// The scrape target is the router's federated /v1/fleet/metrics now, so
	// the deltas carry instance labels: every lookup lands in the router's
	// labeled series (equivalently the fleet: sum, since only the router
	// owns that family), and with half the fleet dark the read path must
	// have recorded failovers.
	wantLookups := float64(rep.Mixes[0].Requests + batchSize*rep.Mixes[1].Requests + rep.Mixes[2].Requests)
	if got := rep.MetricDeltas[`paris_router_lookups_total{instance="router"}`]; got != wantLookups {
		t.Errorf("paris_router_lookups_total delta %v, want %v", got, wantLookups)
	}
	if got := rep.MetricDeltas["fleet:paris_router_lookups_total"]; got != wantLookups {
		t.Errorf("fleet:paris_router_lookups_total delta %v, want %v", got, wantLookups)
	}
	failovers := 0.0
	for series, v := range rep.MetricDeltas {
		if strings.HasPrefix(series, `paris_router_failovers_total{`) {
			failovers += v
		}
	}
	if failovers < 1 {
		t.Errorf("paris_router_failovers_total delta %v, want >= 1", failovers)
	}
	// The per-replica breakdown: router plus 3×2 replicas, the three killed
	// ones present but down with no traffic, every survivor serving.
	if len(rep.Replicas) != 7 {
		t.Fatalf("%d breakdown rows, want 7: %+v", len(rep.Replicas), rep.Replicas)
	}
	up := 0
	for _, r := range rep.Replicas {
		if r.Up {
			up++
			if r.Instance != "router" && r.Lookups <= 0 {
				t.Errorf("surviving replica %s saw no lookups", r.Instance)
			}
		} else if r.Requests != 0 || r.Lookups != 0 {
			t.Errorf("dead replica %s shows traffic: %+v", r.Instance, r)
		}
	}
	if up != 4 {
		t.Errorf("%d fleet members up, want 4 (router + one replica per group)", up)
	}
	// The fleet SLO report rides along, and a degraded-but-serving fleet
	// burns no error budget: failover absorbed every dead-replica read.
	if rep.SLO == nil {
		t.Fatal("fleet run has no SLO report")
	}
	if rep.SLO.Instance != "fleet" {
		t.Errorf("SLO instance %q, want fleet", rep.SLO.Instance)
	}
	for _, fam := range rep.SLO.Families {
		for _, w := range fam.Windows {
			if w.ErrorBurnRate != 0 {
				t.Errorf("family %s window %s burns error budget: %+v", fam.Family, w.Window, w)
			}
		}
	}
}

// TestLoadRejectsUnknownFleet pins the Fleet validation.
func TestLoadRejectsUnknownFleet(t *testing.T) {
	if _, err := RunLoad(LoadOptions{Fleet: "half"}); err == nil {
		t.Fatal("RunLoad with unknown fleet succeeded")
	}
}

// TestBenchReportSchema validates every committed BENCH_*.json at the repo
// root against the current schema, so the CI bench-smoke step catches a
// report that drifts from what the tooling expects.
func TestBenchReportSchema(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no committed BENCH_*.json reports")
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var rep LoadReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if rep.Schema != LoadReportSchema {
			t.Errorf("%s: schema %q, want %q", f, rep.Schema, LoadReportSchema)
		}
		if len(rep.Mixes) < 3 {
			t.Errorf("%s: %d mixes, want >= 3", f, len(rep.Mixes))
		}
		for _, m := range rep.Mixes {
			if m.Mix == "" || m.Requests <= 0 || m.Throughput <= 0 {
				t.Errorf("%s: malformed mix %+v", f, m)
			}
		}
	}
}
