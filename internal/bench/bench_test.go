package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/store"
)

// smallOpt keeps the harness tests fast.
var smallOpt = Options{Seed: 7, Scale: 0.15}

func TestTable1Shape(t *testing.T) {
	rows := Table1(Options{Seed: 7})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	person, rest := rows[0], rows[1]
	if person.Instances.F1 < 0.99 {
		t.Errorf("person F = %v, want ~1.0 (paper: 100%%)", person.Instances.F1)
	}
	if person.Relations.Precision() < 0.99 || person.Relations.Recall() < 0.99 {
		t.Errorf("person relations = %+v, want perfect", person.Relations)
	}
	if rest.Instances.F1 < 0.80 || rest.Instances.F1 > 0.97 {
		t.Errorf("restaurant F = %v, want high-80s/low-90s (paper: 91%%)", rest.Instances.F1)
	}
	if rest.Iters > 5 {
		t.Errorf("restaurant iterations = %d, paper converged in 3", rest.Iters)
	}
	if r := person.Report(); !strings.Contains(r, "person") {
		t.Error("report missing corpus name")
	}
}

func TestTable2Asymmetries(t *testing.T) {
	stats := Table2(smallOpt)
	if len(stats) != 4 {
		t.Fatalf("stats = %d, want 4", len(stats))
	}
	ykb, dkb := stats[0], stats[1]
	if ykb.Classes <= dkb.Classes {
		t.Errorf("world class asymmetry lost: %d <= %d", ykb.Classes, dkb.Classes)
	}
	if ykb.Relations >= dkb.Relations {
		t.Errorf("world relation asymmetry lost: %d >= %d", ykb.Relations, dkb.Relations)
	}
	film, imdb := stats[2], stats[3]
	if film.Classes <= imdb.Classes {
		t.Errorf("movie class asymmetry lost: %d <= %d", film.Classes, imdb.Classes)
	}
}

func TestTable3PerIterationShape(t *testing.T) {
	table := Table3(Options{Seed: 7, Scale: 0.4})
	if len(table.Rows) == 0 {
		t.Fatal("no iteration rows")
	}
	first, last := table.Rows[0], table.Rows[len(table.Rows)-1]
	// The paper's shape: F never collapses across iterations and the
	// changed fraction decreases.
	if last.Instances.F1+0.06 < first.Instances.F1 {
		t.Errorf("F degraded across iterations: %v -> %v", first.Instances.F1, last.Instances.F1)
	}
	if last.Changed >= first.Changed {
		t.Errorf("change fraction did not decrease: %v -> %v", first.Changed, last.Changed)
	}
	// Rich entities must beat the overall recall (73%% vs 85%% in the paper).
	if table.RestrictedInstances.Recall <= last.Instances.Recall {
		t.Errorf(">10-facts recall %v should exceed overall %v",
			table.RestrictedInstances.Recall, last.Instances.Recall)
	}
	if r := table.Report(); !strings.Contains(r, "iter") {
		t.Error("report lacks iteration header")
	}
}

func TestTable4ShowcasesInversesAndSplits(t *testing.T) {
	examples := Table4(smallOpt)
	if len(examples) == 0 {
		t.Fatal("no relation examples")
	}
	var sawInverse, sawCreatedSplit bool
	createdTargets := map[string]bool{}
	for _, ex := range examples {
		if strings.HasSuffix(ex.Super, "⁻¹") {
			sawInverse = true
		}
		if ex.Sub == "y:created" {
			createdTargets[ex.Super] = true
		}
		if ex.P < 0.1 || ex.P > 1 {
			t.Errorf("score out of range: %+v", ex)
		}
	}
	if !sawInverse {
		t.Error("no inverse alignment discovered (paper: actedIn ⊆ starring⁻¹)")
	}
	if len(createdTargets) >= 2 {
		sawCreatedSplit = true
	}
	if !sawCreatedSplit {
		t.Logf("created split into %v (paper shows author/artist/writer)", createdTargets)
	}
}

func TestTable5BaselineComparison(t *testing.T) {
	res := Table5(smallOpt)
	if len(res.Rows) == 0 {
		t.Fatal("no iteration rows")
	}
	last := res.Rows[len(res.Rows)-1]
	// The headline claim: PARIS beats the label baseline's recall by a
	// wide margin at comparable precision.
	if last.Instances.Recall <= res.Baseline.Recall {
		t.Errorf("paris recall %v must beat baseline %v",
			last.Instances.Recall, res.Baseline.Recall)
	}
	if res.Baseline.Precision < 0.9 {
		t.Errorf("baseline precision = %v, should be high", res.Baseline.Precision)
	}
	if !strings.Contains(res.Report(), "baseline") {
		t.Error("report lacks baseline row")
	}
}

func TestFigures1And2Monotonicity(t *testing.T) {
	points := Figures1And2(smallOpt)
	if len(points) != 9 {
		t.Fatalf("points = %d", len(points))
	}
	// Figure 2's shape: counts must not increase with the threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Count > points[i-1].Count {
			t.Errorf("class count increased with threshold: %+v -> %+v",
				points[i-1], points[i])
		}
	}
	// Figure 1's shape: precision at the top thresholds beats the bottom.
	if points[len(points)-1].Precision < points[0].Precision {
		t.Errorf("precision did not improve with threshold: %v -> %v",
			points[0].Precision, points[len(points)-1].Precision)
	}
}

func TestThetaSweepInvariance(t *testing.T) {
	results := ThetaSweep(Options{Seed: 7})
	var base map[string]float64
	for _, r := range results {
		if r.Theta == 0.1 {
			base = r.RelScores
		}
	}
	if base == nil {
		t.Fatal("default θ missing from sweep")
	}
	// The paper's claim holds for θ within two orders of magnitude of the
	// default on this corpus (see EXPERIMENTS.md for the θ=0.001 note).
	for _, r := range results {
		if r.Theta < 0.01 {
			continue
		}
		if len(r.RelScores) != len(base) {
			t.Errorf("θ=%v changed the relation alignment set", r.Theta)
		}
		for k, v := range base {
			if d := r.RelScores[k] - v; d > 0.02 || d < -0.02 {
				t.Errorf("θ=%v changed score of %s: %v vs %v", r.Theta, k, r.RelScores[k], v)
			}
		}
	}
}

func TestAllPairsAblationMarginal(t *testing.T) {
	rows := AllPairsAblation(Options{Seed: 7})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	diff := rows[0].Instances.F1 - rows[1].Instances.F1
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("all-equalities changed F by %v; paper reports a marginal change", diff)
	}
}

func TestNegativeEvidenceShape(t *testing.T) {
	rows := NegativeEvidenceAblation(Options{Seed: 7})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	positive, negIdentity, negAlpha := rows[0], rows[1], rows[2]
	// Raw identity + negative evidence kills nearly all restaurant pairs.
	if negIdentity.Restaurants.Recall > 0.2 {
		t.Errorf("identity+negative restaurant recall = %v, paper: gives up all matches",
			negIdentity.Restaurants.Recall)
	}
	// Normalized literals restore precision to 100%% at reduced recall.
	if negAlpha.Restaurants.Precision < 0.999 {
		t.Errorf("alphanum+negative precision = %v, paper: 100%%", negAlpha.Restaurants.Precision)
	}
	if negAlpha.Restaurants.Recall >= positive.Restaurants.Recall {
		t.Errorf("alphanum+negative recall %v should be below positive-only %v",
			negAlpha.Restaurants.Recall, positive.Restaurants.Recall)
	}
	if negAlpha.Restaurants.Recall < 0.5 {
		t.Errorf("alphanum+negative recall = %v, paper: 70%%", negAlpha.Restaurants.Recall)
	}
}

func TestFunctionalityAblationRuns(t *testing.T) {
	rows := FunctionalityAblation(smallOpt)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Instances.F1 == 0 {
			t.Errorf("mode %s produced nothing", r.Name)
		}
	}
}

func TestEvalRelationsJudgesInverses(t *testing.T) {
	lits := store.NewLiterals()
	b1 := store.NewBuilder("o1", lits, nil)
	b2 := store.NewBuilder("o2", lits, nil)
	o1, o2 := b1.Build(), b2.Build()
	_ = o1
	_ = o2
	// Construct a fake alignment over a dataset with an inverted gold.
	d := gen.World(gen.WorldConfig{Seed: 7, People: 200, Cities: 20, Companies: 10,
		Movies: 40, Albums: 30, Books: 30})
	w1, w2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(w1, w2, core.Config{MaxIterations: 3}).Run()
	ev := EvalRelations(w1, w2, res.Relations12, d.RelGold)
	if ev.Aligned == 0 {
		t.Fatal("no judged relations")
	}
	if ev.Precision() < 0.5 {
		t.Errorf("relation precision = %v, suspiciously low", ev.Precision())
	}
}

func TestEvalClassesAncestorRule(t *testing.T) {
	// A subclass statement into an ancestor of the gold class is correct.
	d := gen.Movies(gen.MoviesConfig{Seed: 7, People: 300, Movies: 80})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{MaxIterations: 3}).Run()
	strict := EvalClasses(o1, o2, res.Classes12, d.ClassGold, 0.9)
	loose := EvalClasses(o1, o2, res.Classes12, d.ClassGold, 0.1)
	if strict.Aligned > loose.Aligned {
		t.Error("higher threshold kept more alignments")
	}
	if strict.Aligned > 0 && strict.Precision() < loose.Precision()-0.2 {
		t.Errorf("precision at 0.9 (%v) far below 0.1 (%v)", strict.Precision(), loose.Precision())
	}
}

func TestCountClassAlignments(t *testing.T) {
	as := []core.ClassAlignment{
		{Sub: 1, Super: 10, P: 0.9},
		{Sub: 1, Super: 11, P: 0.5},
		{Sub: 2, Super: 10, P: 0.3},
	}
	if got := CountClassAlignments(as, 0.4); got != 1 {
		t.Fatalf("count@0.4 = %d, want 1", got)
	}
	if got := CountClassAlignments(as, 0.2); got != 2 {
		t.Fatalf("count@0.2 = %d, want 2", got)
	}
}

func TestInvertRelGold(t *testing.T) {
	gold := map[string]string{
		"a:actedIn": "b:starring⁻¹",
		"a:born":    "b:birth",
	}
	inv := invertRelGold(gold)
	if inv["b:starring"] != "a:actedIn⁻¹" {
		t.Errorf("inverted pair wrong: %v", inv)
	}
	if inv["b:birth"] != "a:born" {
		t.Errorf("plain pair wrong: %v", inv)
	}
}
