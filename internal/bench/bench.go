// Package bench implements the reproduction harness: one function per table
// and figure of the paper's evaluation section (see DESIGN.md Section 4 for
// the experiment index). cmd/parisbench prints the results in the paper's
// format; the root-level Go benchmarks time the same workloads.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/store"
)

// RelEval scores relation alignments against a dataset's relation gold.
type RelEval struct {
	Aligned     int // sub-relations with a maximal super-relation
	Correct     int // of those, matching the gold (inverses judged separately)
	CorrectBase int // distinct base relations aligned correctly
	Gold        int // gold pairs (base relations only)
}

// Precision returns Correct/Aligned.
func (e RelEval) Precision() float64 {
	if e.Aligned == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Aligned)
}

// Recall returns CorrectBase/Gold.
func (e RelEval) Recall() float64 {
	if e.Gold == 0 {
		return 0
	}
	return float64(e.CorrectBase) / float64(e.Gold)
}

// String renders the numbers in the paper's "Num / Prec" style.
func (e RelEval) String() string {
	return fmt.Sprintf("num %d  prec %.0f%%  rec %.0f%%",
		e.Aligned, 100*e.Precision(), 100*e.Recall())
}

// invertRelGold flips a relation gold map (o1→o2 becomes o2→o1), keeping
// the "⁻¹" inversion marker consistent.
func invertRelGold(gold map[string]string) map[string]string {
	inv := make(map[string]string, len(gold))
	for k, v := range gold {
		if strings.HasSuffix(v, "⁻¹") {
			inv[strings.TrimSuffix(v, "⁻¹")] = k + "⁻¹"
		} else {
			inv[v] = k
		}
	}
	return inv
}

// EvalRelations scores the maximal relation alignments from src to dst
// against gold (a map from src base-relation IRI to dst relation IRI, with
// "⁻¹" marking inverted pairs). Sub-relations without a gold entry are
// ignored, mirroring the paper's manual evaluation which skips relations
// that have no counterpart.
func EvalRelations(src, dst *store.Ontology, alignments []core.RelAlignment, gold map[string]string) RelEval {
	e := RelEval{Gold: len(gold)}
	expected := make(map[string]string, 2*len(gold))
	for k, v := range gold {
		expected[k] = v
		// The inverse pair: k⁻¹ ≡ v⁻¹ (double inversion cancels).
		if strings.HasSuffix(v, "⁻¹") {
			expected[k+"⁻¹"] = strings.TrimSuffix(v, "⁻¹")
		} else {
			expected[k+"⁻¹"] = v + "⁻¹"
		}
	}
	correctBase := map[string]bool{}
	for _, ra := range core.MaxRelAlignments(alignments) {
		subName := src.RelationName(ra.Sub)
		want, ok := expected[subName]
		if !ok {
			continue
		}
		e.Aligned++
		if dst.RelationName(ra.Super) == want {
			e.Correct++
			correctBase[strings.TrimSuffix(subName, "⁻¹")] = true
		}
	}
	e.CorrectBase = len(correctBase)
	return e
}

// ClassEval scores class alignments against a dataset's class gold at a
// probability threshold.
type ClassEval struct {
	Threshold float64
	Aligned   int // scored (sub, super) pairs above the threshold with gold
	Correct   int // pairs whose super is the gold class or an ancestor of it
	Subs      int // distinct sub-classes with at least one alignment
}

// Precision returns Correct/Aligned.
func (e ClassEval) Precision() float64 {
	if e.Aligned == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Aligned)
}

// ancestors returns the transitive superclasses of c, including c.
func ancestors(o *store.Ontology, c store.Resource) map[store.Resource]bool {
	seen := map[store.Resource]bool{c: true}
	stack := []store.Resource{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sup := range o.Superclasses(cur) {
			if !seen[sup] {
				seen[sup] = true
				stack = append(stack, sup)
			}
		}
	}
	return seen
}

// EvalClasses scores subclass alignments from src into dst at the given
// threshold: a pair (c ⊆ c') is correct when c' is the gold class of c or
// one of its superclasses (a subclass statement into any ancestor is true).
// Pairs whose sub-class has no gold entry are skipped, like the paper's
// exclusion of high-level classes it could not judge.
func EvalClasses(src, dst *store.Ontology, alignments []core.ClassAlignment, gold map[string]string, threshold float64) ClassEval {
	e := ClassEval{Threshold: threshold}
	okSupers := map[store.Resource]map[store.Resource]bool{}
	subsSeen := map[store.Resource]bool{}
	for _, ca := range core.FilterClassAlignments(alignments, threshold) {
		goldIRI, ok := gold[trimKey(src.ResourceKey(ca.Sub))]
		if !ok {
			continue
		}
		goldClass, ok := dst.LookupResource("<" + goldIRI + ">")
		if !ok {
			continue
		}
		allowed, ok := okSupers[goldClass]
		if !ok {
			allowed = ancestors(dst, goldClass)
			okSupers[goldClass] = allowed
		}
		e.Aligned++
		if !subsSeen[ca.Sub] {
			subsSeen[ca.Sub] = true
			e.Subs++
		}
		if allowed[ca.Super] {
			e.Correct++
		}
	}
	return e
}

// trimKey strips the <> of a resource key, yielding the IRI.
func trimKey(key string) string {
	return strings.TrimSuffix(strings.TrimPrefix(key, "<"), ">")
}

// CountClassAlignments returns the number of distinct sub-classes of the
// alignment list with at least one super scoring >= threshold (the Figure 2
// series).
func CountClassAlignments(alignments []core.ClassAlignment, threshold float64) int {
	subs := map[store.Resource]bool{}
	for _, ca := range alignments {
		if ca.P >= threshold {
			subs[ca.Sub] = true
		}
	}
	return len(subs)
}

// buildOrPanic freezes a generated dataset; generation cannot produce
// invalid triples, so an error here is a programming bug.
func buildOrPanic(d *gen.Dataset, norm store.Normalizer) (*store.Ontology, *store.Ontology) {
	o1, o2, err := d.Build(norm)
	if err != nil {
		panic(err)
	}
	return o1, o2
}

// evalInstances scores a result's maximal assignment against the gold.
func evalInstances(d *gen.Dataset, res *core.Result) eval.Metrics {
	return d.Gold.Evaluate(res.InstanceMap())
}
