// Package ingest is the streaming parallel KB loader: a chunked N-Triples
// pipeline that splits the input at line boundaries into fixed-size blocks,
// fans the blocks out to parallel parse workers (strings deduplicated
// through a sharded symbol table), spills sorted triple runs to temp
// segments when the configured memory budget fills, and k-way-merges the
// runs back into exact input order for the consumer — so a multi-GB dump
// never has to fit through one in-memory pass, and the result is
// bit-compatible with the sequential loader.
//
// The order guarantee is the load-bearing design point: every worker drains
// blocks off one channel, so each worker's stream of block sequence numbers
// is increasing, every buffered run is born sorted by (block, line), and the
// final merge reproduces the dump exactly as written. Dictionary IDs
// assigned downstream (store.Builder interns in first-occurrence order)
// therefore come out identical to a sequential load — the property the
// differential acceptance test pins down.
package ingest

import (
	"bytes"
	"container/heap"
	"context"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/rdf"
)

// DefaultMemoryBudget bounds the triples buffered across all parse workers
// before runs spill to temp segments.
const DefaultMemoryBudget = 256 << 20

// minWorkerBudget floors the per-worker spill threshold so a tiny budget
// degrades into frequent spills, not a spill per triple.
const minWorkerBudget = 64 << 10

// Options configures one pipeline run. The zero value of every field has a
// usable default.
type Options struct {
	// Workers is the number of parallel parse workers (default
	// min(GOMAXPROCS, 8)).
	Workers int

	// BlockSize is the target block payload in bytes (default
	// DefaultBlockSize). Blocks are the unit of parallelism, progress
	// reporting, and cancellation.
	BlockSize int

	// MaxLine bounds a single input line (default DefaultMaxLine); longer
	// lines fail with ErrOversizedLine rather than buffering without bound.
	MaxLine int

	// MemoryBudget bounds the bytes of parsed triples buffered in memory
	// across all workers (default DefaultMemoryBudget); beyond it, sorted
	// runs spill to temp segments and are merged back at the end.
	MemoryBudget int64

	// TempDir hosts the per-run spill directory (default os.TempDir()). The
	// directory and every segment are removed when Run returns, on every
	// path including errors and cancellation.
	TempDir string

	// Strict makes malformed lines fatal. The default mirrors the
	// sequential reader: malformed lines are skipped and counted, because
	// real-world dumps contain occasional garbage. Stream-level corruption
	// (oversized lines, bare carriage returns, invalid UTF-8 in IRIs,
	// truncated or damaged compressed input) is always fatal, with a typed
	// *Error naming the byte offset.
	Strict bool

	// Progress, when non-nil, receives the cumulative pipeline counters
	// after every parsed block and every spill. Calls are serialized; keep
	// the callback fast.
	Progress func(Progress)
}

// Progress is the cumulative state of a pipeline run: per-block counters
// during the run (via Options.Progress) and the final totals (returned by
// Run).
type Progress struct {
	// Blocks and Bytes count consumed input (decompressed).
	Blocks int   `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// Triples counts parsed triples; Skipped counts malformed lines
	// dropped in non-strict mode.
	Triples int64 `json:"triples"`
	Skipped int64 `json:"skipped,omitempty"`
	// Spills counts temp segments written and SpilledTriples the triples
	// routed through them.
	Spills         int   `json:"spills,omitempty"`
	SpilledTriples int64 `json:"spilled_triples,omitempty"`
	// Elapsed is the wall-clock time since the pipeline run started, so
	// consumers (job watchers, the server's ingest metrics) can derive
	// throughput (Bytes/Elapsed) without tracking the start themselves.
	Elapsed time.Duration `json:"elapsed,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = min(runtime.GOMAXPROCS(0), 8)
	}
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.MaxLine <= 0 {
		o.MaxLine = DefaultMaxLine
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = DefaultMemoryBudget
	}
	return o
}

// tracker accumulates the shared counters and serializes Progress callbacks.
type tracker struct {
	mu    sync.Mutex
	fn    func(Progress)
	p     Progress
	start time.Time
}

func (t *tracker) block(bytes int, triples int, skipped int64) {
	t.mu.Lock()
	t.p.Blocks++
	t.p.Bytes += int64(bytes)
	t.p.Triples += int64(triples)
	t.p.Skipped += skipped
	t.p.Elapsed = time.Since(t.start)
	if t.fn != nil {
		t.fn(t.p)
	}
	t.mu.Unlock()
}

func (t *tracker) spill(triples int) {
	t.mu.Lock()
	t.p.Spills++
	t.p.SpilledTriples += int64(triples)
	t.p.Elapsed = time.Since(t.start)
	if t.fn != nil {
		t.fn(t.p)
	}
	t.mu.Unlock()
}

func (t *tracker) snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Elapsed = time.Since(t.start)
	return t.p
}

// Run streams the N-Triples document r through the parallel pipeline,
// calling emit for every triple in exact input order. It returns the final
// counters and the first error: a typed *Error for corrupt input, the
// context's error when canceled (checked per block, so a cancel aborts a
// multi-GB load promptly and removes every temp segment), or emit's error.
func Run(ctx context.Context, r io.Reader, opts Options, emit func(rdf.Triple) error) (Progress, error) {
	opts = opts.withDefaults()
	dir, err := os.MkdirTemp(opts.TempDir, "paris-ingest-")
	if err != nil {
		return Progress{}, err
	}
	// Cleanup is unconditional: temp segments exist only for the duration
	// of one Run, whatever the outcome.
	defer os.RemoveAll(dir)

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var failMu sync.Mutex
	var failErr error
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil && err != nil {
			failErr = err
			cancel()
		}
		failMu.Unlock()
	}
	// firstErr must take the mutex: the scanner goroutine is not part of
	// the worker WaitGroup and may still be recording a cancellation error
	// when the workers have already drained.
	firstErr := func() error {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr
	}
	// canceled records the enclosing context's error (bare, so callers'
	// errors.Is(err, ctx.Err()) holds) and reports whether to stop.
	canceled := func() bool {
		if pctx.Err() == nil {
			return false
		}
		if err := ctx.Err(); err != nil {
			fail(err)
		}
		return true
	}

	trk := &tracker{fn: opts.Progress, start: time.Now()}
	tab := NewSymTab()
	blocks := make(chan Block, opts.Workers)

	// Scanner: one goroutine slicing the stream into line-aligned blocks.
	// It must be joined on every return path: Run's contract is that r is
	// no longer touched once Run returns (callers close gzip readers and
	// reuse readers immediately), and the scanner may be inside r.Read
	// when a worker error or cancellation ends the run early. The join is
	// bounded by one Read — the loop checks the canceled context before
	// and after every read.
	scanDone := make(chan struct{})
	defer func() {
		cancel()
		<-scanDone
	}()
	go func() {
		defer close(scanDone)
		defer close(blocks)
		sc := NewBlockScanner(r, opts.BlockSize, opts.MaxLine)
		for {
			if canceled() {
				return
			}
			b, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				fail(err)
				return
			}
			select {
			case blocks <- b:
			case <-pctx.Done():
				canceled()
				return
			}
		}
	}()

	// Parse workers: each drains blocks (its sequence of Seq values is
	// increasing, so its buffer is born sorted), interns strings through
	// the shared table, and spills its buffer as one sorted run whenever
	// the per-worker share of the budget fills. The spill threshold
	// targets half the budget across workers: the other half is headroom
	// for in-flight blocks, the symbol table, the merge cursors, and GC
	// slack, so the process's peak heap — not just the triple buffers —
	// stays inside the configured budget.
	perWorker := max(opts.MemoryBudget/(2*int64(opts.Workers)), minWorkerBudget)
	type workerOut struct {
		paths []string
		tail  []seqTriple
	}
	outs := make([]workerOut, opts.Workers)
	var spillSeq atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms := newLocalSyms(tab)
			var buf []seqTriple
			var bufBytes int64
			for b := range blocks {
				if canceled() {
					return
				}
				ts, skipped, err := parseBlock(b, syms, opts)
				if err != nil {
					fail(err)
					return
				}
				for _, st := range ts {
					bufBytes += approxSize(st.t)
				}
				buf = append(buf, ts...)
				trk.block(len(b.Data), len(ts), skipped)
				if bufBytes >= perWorker {
					path, err := spillRun(dir, int(spillSeq.Add(1))-1, buf)
					if err != nil {
						fail(err)
						return
					}
					outs[w].paths = append(outs[w].paths, path)
					trk.spill(len(buf))
					buf, bufBytes = nil, 0
				}
			}
			outs[w].tail = buf
		}(w)
	}
	wg.Wait()
	if err := firstErr(); err != nil {
		return trk.snapshot(), err
	}

	// K-way merge: one cursor per run (spilled segments plus in-memory
	// tails), ordered by (block, line) — the consumer sees exact input
	// order.
	var hp runHeap
	closeAll := func() {
		for _, c := range hp {
			c.close()
		}
	}
	for _, o := range outs {
		for _, p := range o.paths {
			c, err := diskCursor(p)
			if err != nil {
				closeAll()
				return trk.snapshot(), err
			}
			if c.ok {
				hp = append(hp, c)
			} else {
				c.close()
			}
		}
		if len(o.tail) > 0 {
			hp = append(hp, memCursor(o.tail))
		}
	}
	defer closeAll()
	heap.Init(&hp)
	emitted := 0
	for hp.Len() > 0 {
		c := hp[0]
		if err := emit(c.cur.t); err != nil {
			return trk.snapshot(), err
		}
		emitted++
		if emitted%8192 == 0 {
			// The merge reads temp files, not the input stream, so it
			// needs its own cancellation checks.
			if err := ctx.Err(); err != nil {
				return trk.snapshot(), err
			}
		}
		if err := c.next(); err != nil {
			return trk.snapshot(), err
		}
		if c.ok {
			heap.Fix(&hp, 0)
		} else {
			heap.Pop(&hp)
			c.close()
		}
	}
	return trk.snapshot(), nil
}

// spillRun writes one sorted run to a new temp segment and returns its path.
func spillRun(dir string, seq int, ts []seqTriple) (string, error) {
	w, err := newRunWriter(dir, seq)
	if err != nil {
		return "", err
	}
	for _, st := range ts {
		if err := w.add(st); err != nil {
			w.f.Close()
			return "", err
		}
	}
	if err := w.close(); err != nil {
		return "", err
	}
	return w.f.Name(), nil
}

// parseBlock parses one block's lines, mirroring the sequential reader's
// skip semantics (blank lines, '#' comments, and — in non-strict mode —
// malformed lines), plus the corruption checks that are always fatal: a
// per-line length bound, bare carriage returns, and invalid UTF-8 in IRIs.
func parseBlock(b Block, syms *localSyms, opts Options) ([]seqTriple, int64, error) {
	data := b.Data
	out := make([]seqTriple, 0, len(data)/64)
	var skipped int64
	lineNo := b.Line - 1
	var lineIdx uint32
	for off := 0; off < len(data); {
		lineNo++
		lineIdx++
		lineStart := off
		var raw []byte
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			raw = data[off : off+nl]
			off += nl + 1
		} else {
			raw = data[off:]
			off = len(data)
		}
		if len(raw) > opts.MaxLine {
			return nil, 0, &Error{
				Offset: b.Offset + int64(lineStart), Line: lineNo,
				Msg: "oversized line", Err: ErrOversizedLine,
			}
		}
		if len(raw) > 0 && raw[len(raw)-1] == '\r' {
			raw = raw[:len(raw)-1] // CRLF line ending
		}
		if i := bytes.IndexByte(raw, '\r'); i >= 0 {
			return nil, 0, &Error{
				Offset: b.Offset + int64(lineStart+i), Line: lineNo,
				Err: ErrBareCR,
			}
		}
		line := strings.TrimSpace(string(raw))
		if line == "" || line[0] == '#' {
			continue
		}
		t, err := rdf.ParseLine(line, lineNo)
		if err != nil {
			if opts.Strict {
				return nil, 0, &Error{
					Offset: b.Offset + int64(lineStart), Line: lineNo,
					Msg: "malformed triple", Err: err,
				}
			}
			skipped++
			continue
		}
		if iri, bad := invalidIRI(t); bad {
			return nil, 0, &Error{
				Offset: b.Offset + int64(lineStart), Line: lineNo,
				Msg: "IRI " + iri, Err: ErrInvalidUTF8,
			}
		}
		t.Subject.Value = syms.intern(t.Subject.Value)
		t.Predicate.Value = syms.intern(t.Predicate.Value)
		t.Object.Value = syms.intern(t.Object.Value)
		t.Object.Datatype = syms.intern(t.Object.Datatype)
		out = append(out, seqTriple{block: uint32(b.Seq), line: lineIdx, t: t})
	}
	return out, skipped, nil
}

// invalidIRI reports the first IRI term of t whose bytes are not valid
// UTF-8 (quoted, for the error message).
func invalidIRI(t rdf.Triple) (string, bool) {
	for _, term := range []rdf.Term{t.Subject, t.Predicate, t.Object} {
		if term.IsIRI() && !utf8.ValidString(term.Value) {
			return quoteLossy(term.Value), true
		}
		if term.IsLiteral() && term.Datatype != "" && !utf8.ValidString(term.Datatype) {
			return quoteLossy(term.Datatype), true
		}
	}
	return "", false
}

// quoteLossy renders a possibly invalid-UTF-8 string for an error message.
func quoteLossy(s string) string {
	return strings.ToValidUTF8(s, "�")
}
