package ingest_test

// Differential acceptance: the streaming parallel pipeline and the legacy
// single-pass loader must be indistinguishable — identical ontologies
// (dictionary IDs included, since the merge replays exact input order) and
// byte-identical alignment snapshots over the movies and world corpora.
// Wall-clock fields (per-iteration timings, ClassTime) are zeroed before
// the byte comparison; they measure the run, not the alignment.

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/store"
)

// writeCorpus serializes a generated dataset to <dir>/<name>.nt files and
// gzips the first one, so the differential covers the .nt.gz path too.
func writeCorpus(t *testing.T, d *gen.Dataset) (path1, path2 string) {
	t.Helper()
	dir := t.TempDir()
	if err := d.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	plain1 := filepath.Join(dir, d.Name1+".nt")
	path1 = plain1 + ".gz"
	src, err := os.Open(plain1)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := os.Create(path1)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(dst)
	if _, err := io.Copy(zw, src); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	return path1, filepath.Join(dir, d.Name2+".nt")
}

// loadPair loads both corpus files into one shared literal table.
func loadPair(t *testing.T, path1, path2 string, opts ...store.LoadOption) (*store.Ontology, *store.Ontology) {
	t.Helper()
	lits := store.NewLiterals()
	o1, err := store.LoadFile(path1, store.BaseName(path1), lits, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := store.LoadFile(path2, store.BaseName(path2), lits, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return o1, o2
}

// assertOntologiesIdentical compares every observable of two ontologies,
// dictionary IDs included: the pipeline's order guarantee means even the
// interned ID spaces must coincide with a sequential load.
func assertOntologiesIdentical(t *testing.T, want, got *store.Ontology) {
	t.Helper()
	if w, g := want.Stats(), got.Stats(); w != g {
		t.Fatalf("stats differ:\n  legacy  %+v\n  ingest  %+v", w, g)
	}
	if want.NumResources() != got.NumResources() {
		t.Fatalf("resources: %d vs %d", want.NumResources(), got.NumResources())
	}
	for i := 0; i < want.NumResources(); i++ {
		x := store.Resource(i)
		if want.ResourceKey(x) != got.ResourceKey(x) {
			t.Fatalf("resource %d: key %q vs %q", i, want.ResourceKey(x), got.ResourceKey(x))
		}
		if want.IsClass(x) != got.IsClass(x) {
			t.Fatalf("resource %d (%s): IsClass %v vs %v", i, want.ResourceKey(x), want.IsClass(x), got.IsClass(x))
		}
		we, ge := want.Edges(x), got.Edges(x)
		if len(we) != len(ge) {
			t.Fatalf("resource %d (%s): %d edges vs %d", i, want.ResourceKey(x), len(we), len(ge))
		}
		for j := range we {
			if we[j] != ge[j] {
				t.Fatalf("resource %d edge %d: %+v vs %+v", i, j, we[j], ge[j])
			}
		}
	}
	if want.NumRelations() != got.NumRelations() {
		t.Fatalf("relations: %d vs %d", want.NumRelations(), got.NumRelations())
	}
	for _, r := range want.Relations() {
		if want.RelationName(r) != got.RelationName(r) {
			t.Fatalf("relation %d: name %q vs %q", r, want.RelationName(r), got.RelationName(r))
		}
		if want.Fun(r) != got.Fun(r) {
			t.Fatalf("relation %s: fun %v vs %v", want.RelationName(r), want.Fun(r), got.Fun(r))
		}
		if want.NumStatements(r) != got.NumStatements(r) {
			t.Fatalf("relation %s: %d statements vs %d", want.RelationName(r), want.NumStatements(r), got.NumStatements(r))
		}
	}
	if want.Literals().Len() != got.Literals().Len() {
		t.Fatalf("literals: %d vs %d", want.Literals().Len(), got.Literals().Len())
	}
	for i := 0; i < want.Literals().Len(); i++ {
		if want.Literals().Value(store.Lit(i)) != got.Literals().Value(store.Lit(i)) {
			t.Fatalf("literal %d: %q vs %q", i, want.Literals().Value(store.Lit(i)), got.Literals().Value(store.Lit(i)))
		}
	}
}

// stripTimings zeroes the wall-clock fields of a snapshot in place.
func stripTimings(s *core.ResultSnapshot) {
	for i := range s.Iterations {
		s.Iterations[i].InstanceTime = 0
		s.Iterations[i].RelationTime = 0
	}
	s.ClassTime = 0
}

func runDifferential(t *testing.T, d *gen.Dataset) {
	path1, path2 := writeCorpus(t, d)

	legacy1, legacy2 := loadPair(t, path1, path2)
	// A deliberately starved budget plus several workers: the pipeline must
	// spill and merge, the configuration furthest from a sequential read.
	spill := t.TempDir()
	ingest1, ingest2 := loadPair(t, path1, path2,
		store.WithParallelism(4), store.WithMemoryBudget(64<<10), store.WithSpillDir(spill))

	assertOntologiesIdentical(t, legacy1, ingest1)
	assertOntologiesIdentical(t, legacy2, ingest2)

	cfg := core.Config{Workers: 1}
	resLegacy, err := core.New(legacy1, legacy2, cfg).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resIngest, err := core.New(ingest1, ingest2, cfg).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snapLegacy, snapIngest := resLegacy.Snapshot(), resIngest.Snapshot()
	stripTimings(snapLegacy)
	stripTimings(snapIngest)
	wantBytes, err := snapLegacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := snapIngest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatalf("alignment snapshots differ: %d vs %d bytes (assignments %d vs %d)",
			len(wantBytes), len(gotBytes), len(snapLegacy.Instances), len(snapIngest.Instances))
	}

	// The spill dir must be empty again: temp segments live only for the
	// duration of one load.
	ents, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill segments left behind: %d entries", len(ents))
	}
}

func TestDifferentialMoviesCorpus(t *testing.T) {
	runDifferential(t, gen.Movies(gen.MoviesConfig{Seed: 11, People: 400, Movies: 120}))
}

func TestDifferentialWorldCorpus(t *testing.T) {
	runDifferential(t, gen.World(gen.WorldConfig{
		Seed: 11, People: 250, Cities: 25, Companies: 12, Movies: 50, Albums: 40, Books: 40,
	}))
}
