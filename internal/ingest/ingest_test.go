package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// genDoc builds a deterministic N-Triples document with n facts plus a few
// comments and blank lines, returning the document and the triples a
// sequential strict parse yields.
func genDoc(n int) string {
	var b strings.Builder
	b.WriteString("# synthetic ingest corpus\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://x/e%d> <http://x/knows> <http://x/e%d> .\n", i, (i*7+3)%n)
		if i%3 == 0 {
			fmt.Fprintf(&b, "<http://x/e%d> <http://x/name> \"entity %d\" .\n", i, i)
		}
		if i%5 == 0 {
			fmt.Fprintf(&b, "<http://x/e%d> <http://x/age> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", i, i%90)
		}
	}
	return b.String()
}

// sequential parses doc exactly like the legacy loader (non-strict
// NTriplesReader).
func sequential(t *testing.T, doc string) []rdf.Triple {
	t.Helper()
	r := rdf.NewNTriplesReader(strings.NewReader(doc))
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runCollect(t *testing.T, doc string, opts Options) ([]rdf.Triple, Progress) {
	t.Helper()
	opts.TempDir = t.TempDir()
	var got []rdf.Triple
	stats, err := Run(context.Background(), strings.NewReader(doc), opts, func(tr rdf.Triple) error {
		got = append(got, tr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func assertSameTriples(t *testing.T, want, got []rdf.Triple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("triple count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("triple %d: want %v, got %v", i, want[i], got[i])
		}
	}
}

func TestPipelineMatchesSequentialOrder(t *testing.T) {
	doc := genDoc(2000)
	want := sequential(t, doc)
	got, stats := runCollect(t, doc, Options{Workers: 4, BlockSize: 1 << 10})
	assertSameTriples(t, want, got)
	if stats.Triples != int64(len(want)) {
		t.Errorf("stats.Triples = %d, want %d", stats.Triples, len(want))
	}
	if stats.Blocks < 2 {
		t.Errorf("expected multiple blocks, got %d", stats.Blocks)
	}
}

func TestPipelineSpillsUnderBudgetAndStillOrders(t *testing.T) {
	doc := genDoc(3000)
	want := sequential(t, doc)
	// A budget far below the document size forces every worker to spill
	// several sorted runs; the k-way merge must still reproduce input order.
	got, stats := runCollect(t, doc, Options{Workers: 3, BlockSize: 1 << 10, MemoryBudget: 1})
	assertSameTriples(t, want, got)
	if stats.Spills == 0 {
		t.Fatal("expected spill segments under a 1-byte budget")
	}
	if stats.SpilledTriples == 0 {
		t.Fatal("expected spilled triples to be counted")
	}
}

func TestPipelineSkipsMalformedLinesLikeSequential(t *testing.T) {
	doc := "<http://x/a> <http://x/p> <http://x/b> .\n" +
		"this line is garbage\n" +
		"<http://x/c> <http://x/p> \"v\" .\n"
	want := sequential(t, doc)
	got, stats := runCollect(t, doc, Options{Workers: 2})
	assertSameTriples(t, want, got)
	if stats.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", stats.Skipped)
	}
}

func TestPipelineStrictModeFailsOnMalformed(t *testing.T) {
	doc := "<http://x/a> <http://x/p> <http://x/b> .\ngarbage here\n"
	_, err := Run(context.Background(), strings.NewReader(doc), Options{Strict: true, TempDir: t.TempDir()},
		func(rdf.Triple) error { return nil })
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *Error, got %v", err)
	}
	if ie.Offset != 41 {
		t.Errorf("Offset = %d, want 41 (start of the malformed line)", ie.Offset)
	}
	var pe *rdf.ParseError
	if !errors.As(err, &pe) {
		t.Errorf("want wrapped *rdf.ParseError, got %v", err)
	}
}

func TestPipelineGzipTruncationTyped(t *testing.T) {
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	doc := genDoc(500)
	if _, err := zw.Write([]byte(doc)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut the gzip stream mid-member: decompression delivers a prefix and
	// then fails. The pipeline must surface a typed error with the
	// decompressed offset, not silently accept the prefix.
	trunc := zbuf.Bytes()[:zbuf.Len()/2]
	zr, err := gzip.NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), zr, Options{TempDir: t.TempDir()}, func(rdf.Triple) error { return nil })
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *Error for truncated gzip, got %v", err)
	}
	if ie.Offset <= 0 || ie.Offset > int64(len(doc)) {
		t.Errorf("Offset = %d, want within the decompressed prefix (0, %d]", ie.Offset, len(doc))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("want wrapped io.ErrUnexpectedEOF, got %v", err)
	}
}

func TestPipelineOversizedLiteralTyped(t *testing.T) {
	good := "<http://x/a> <http://x/p> <http://x/b> .\n"
	monster := "<http://x/a> <http://x/p> \"" + strings.Repeat("x", 64<<10) + "\" .\n"
	doc := good + monster
	_, err := Run(context.Background(), strings.NewReader(doc),
		Options{BlockSize: 1 << 10, MaxLine: 8 << 10, TempDir: t.TempDir()},
		func(rdf.Triple) error { return nil })
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *Error for oversized literal, got %v", err)
	}
	if !errors.Is(err, ErrOversizedLine) {
		t.Errorf("want ErrOversizedLine, got %v", err)
	}
	if ie.Offset != int64(len(good)) {
		t.Errorf("Offset = %d, want %d (start of the oversized line)", ie.Offset, len(good))
	}
}

func TestPipelineBareCRTyped(t *testing.T) {
	for name, doc := range map[string]string{
		// Classic-Mac line endings: no LF at all, CRs in the middle.
		"classic-mac": "<http://x/a> <http://x/p> <http://x/b> .\r<http://x/c> <http://x/p> <http://x/d> .\r",
		// Raw CR inside a literal (must be escaped as \r in N-Triples).
		"raw-cr-in-literal": "<http://x/a> <http://x/p> \"bad\rvalue\" .\n",
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Run(context.Background(), strings.NewReader(doc), Options{TempDir: t.TempDir()},
				func(rdf.Triple) error { return nil })
			var ie *Error
			if !errors.As(err, &ie) {
				t.Fatalf("want *Error, got %v", err)
			}
			if !errors.Is(err, ErrBareCR) {
				t.Errorf("want ErrBareCR, got %v", err)
			}
			if ie.Offset != int64(strings.IndexByte(doc, '\r')) {
				t.Errorf("Offset = %d, want %d (the bare CR)", ie.Offset, strings.IndexByte(doc, '\r'))
			}
		})
	}
}

func TestPipelineInvalidUTF8IRITyped(t *testing.T) {
	good := "<http://x/a> <http://x/p> <http://x/b> .\n"
	bad := "<http://x/\xff\xfe> <http://x/p> <http://x/c> .\n"
	doc := good + bad
	_, err := Run(context.Background(), strings.NewReader(doc), Options{TempDir: t.TempDir()},
		func(rdf.Triple) error { return nil })
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("want *Error for invalid UTF-8 IRI, got %v", err)
	}
	if !errors.Is(err, ErrInvalidUTF8) {
		t.Errorf("want ErrInvalidUTF8, got %v", err)
	}
	if ie.Offset != int64(len(good)) {
		t.Errorf("Offset = %d, want %d (start of the offending line)", ie.Offset, len(good))
	}
	if ie.Line != 2 {
		t.Errorf("Line = %d, want 2", ie.Line)
	}
}

// TestPipelineCancellationCleansTempSegments is the regression test for the
// coarse-cancellation bug: the pipeline must notice ctx cancellation at
// block granularity mid-load and must not leave spill segments behind.
func TestPipelineCancellationCleansTempSegments(t *testing.T) {
	doc := genDoc(5000)
	tmp := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	blocks := 0
	_, err := Run(ctx, strings.NewReader(doc), Options{
		Workers:      2,
		BlockSize:    1 << 10,
		MemoryBudget: 1, // force spills so there are segments to clean up
		TempDir:      tmp,
		Progress: func(p Progress) {
			blocks = p.Blocks
			if p.Blocks >= 3 {
				once.Do(cancel)
			}
		},
	}, func(rdf.Triple) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if blocks >= 200 {
		t.Errorf("cancellation was not prompt: %d blocks consumed after cancel at 3", blocks)
	}
	ents, derr := os.ReadDir(tmp)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("temp segments left behind after cancellation: %v", names)
	}
}

func TestPipelineEmitErrorStopsMerge(t *testing.T) {
	doc := genDoc(100)
	boom := errors.New("boom")
	n := 0
	_, err := Run(context.Background(), strings.NewReader(doc), Options{TempDir: t.TempDir()},
		func(rdf.Triple) error {
			n++
			if n == 10 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want emit error, got %v", err)
	}
	if n != 10 {
		t.Errorf("emit called %d times, want 10", n)
	}
}

func TestPipelineEmptyAndCommentOnlyInput(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":        "",
		"comments":     "# nothing\n# here\n\n",
		"no-final-eol": "<http://x/a> <http://x/p> <http://x/b> .",
	} {
		t.Run(name, func(t *testing.T) {
			want := sequential(t, doc)
			got, _ := runCollect(t, doc, Options{Workers: 2})
			assertSameTriples(t, want, got)
		})
	}
}

func TestPipelineCRLFMatchesSequential(t *testing.T) {
	doc := strings.ReplaceAll(genDoc(300), "\n", "\r\n")
	want := sequential(t, doc)
	got, _ := runCollect(t, doc, Options{Workers: 3, BlockSize: 512})
	assertSameTriples(t, want, got)
}

func TestSymTabInterns(t *testing.T) {
	tab := NewSymTab()
	a := tab.Intern("hello")
	b := tab.Intern(string([]byte("hello"))) // distinct backing, equal value
	if a != b {
		t.Fatal("interned strings differ")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (second spelling must reuse the first)", tab.Len())
	}
	if tab.Intern("") != "" {
		t.Fatal("empty string must intern to itself")
	}
}

func TestProgressMonotonic(t *testing.T) {
	doc := genDoc(2000)
	var mu sync.Mutex
	var last Progress
	_, err := Run(context.Background(), strings.NewReader(doc), Options{
		Workers: 4, BlockSize: 1 << 10, TempDir: t.TempDir(),
		Progress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Blocks < last.Blocks || p.Bytes < last.Bytes || p.Triples < last.Triples {
				t.Errorf("progress went backwards: %+v after %+v", p, last)
			}
			last = p
		},
	}, func(rdf.Triple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if last.Blocks == 0 {
		t.Fatal("no progress reported")
	}
}
