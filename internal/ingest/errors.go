package ingest

import (
	"errors"
	"fmt"
)

// Corruption classes the pipeline refuses with a typed *Error instead of
// skipping: these are not "one malformed line in an otherwise healthy dump"
// (which non-strict mode skips and counts, like the sequential reader) but
// signs that the stream itself is damaged — continuing would silently drop
// or mangle an unbounded amount of data.
var (
	// ErrOversizedLine reports a line longer than Options.MaxLine — in a
	// line-based format, a missing newline turns the rest of the dump into
	// "one line", so a bound on line length is the earliest corruption trip.
	ErrOversizedLine = errors.New("line exceeds the maximum length")

	// ErrBareCR reports a carriage return that is not part of a CRLF pair:
	// either classic-Mac line endings (the whole file is one LF-free line
	// with embedded CRs) or a raw CR inside a literal, which N-Triples
	// requires to be escaped as \r.
	ErrBareCR = errors.New("bare carriage return (expected \\n or \\r\\n line endings)")

	// ErrInvalidUTF8 reports an IRI whose bytes are not valid UTF-8.
	ErrInvalidUTF8 = errors.New("invalid UTF-8 in IRI")
)

// Error is a typed ingest failure located by byte offset into the
// (decompressed) input stream. Offsets point at the start of the offending
// line when the problem is line-scoped, or at the read position when the
// stream itself failed (for example a truncated gzip member).
type Error struct {
	// Offset is the 0-based byte offset into the decompressed stream.
	Offset int64
	// Line is the 1-based line number when known, 0 otherwise.
	Line int
	// Msg describes the problem.
	Msg string
	// Err is the underlying cause (one of the sentinel errors above, a
	// *rdf.ParseError, or an I/O error). May be nil.
	Err error
}

// Error implements the error interface, always naming the byte offset.
func (e *Error) Error() string {
	where := fmt.Sprintf("byte offset %d", e.Offset)
	if e.Line > 0 {
		where = fmt.Sprintf("line %d (byte offset %d)", e.Line, e.Offset)
	}
	if e.Err != nil && e.Msg != "" {
		return fmt.Sprintf("ingest: %s at %s: %v", e.Msg, where, e.Err)
	}
	if e.Err != nil {
		return fmt.Sprintf("ingest: %v at %s", e.Err, where)
	}
	return fmt.Sprintf("ingest: %s at %s", e.Msg, where)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }
