package ingest

import (
	"bytes"
	"fmt"
	"io"
)

// Default scanner geometry. Blocks are the unit of parallelism (one parse
// task each) and of cancellation (the context is checked per block), so they
// should be large enough to amortize channel traffic and small enough that
// tail latency and cancel response stay in the milliseconds.
const (
	// DefaultBlockSize is the target block payload, before extension to the
	// next line boundary.
	DefaultBlockSize = 1 << 20
	// DefaultMaxLine bounds a single line, matching the sequential reader's
	// bufio.Scanner cap, so the two paths accept the same inputs.
	DefaultMaxLine = 16 << 20
)

// Block is one line-aligned chunk of the input stream: it starts at the
// beginning of a line and ends after a newline (except possibly the last
// block of the stream). Seq numbers blocks 0,1,2,… in stream order — the
// sort key that lets parallel parse results be merged back into exact input
// order. Offset and Line locate the block for error reporting.
type Block struct {
	Seq    int
	Offset int64 // byte offset of Data[0] in the (decompressed) stream
	Line   int   // 1-based line number of the first line in Data
	Data   []byte
}

// BlockScanner splits a byte stream into line-aligned Blocks. It reads the
// source strictly forward with one fixed-size read buffer per block; the
// only state carried between blocks is the partial final line.
//
// A line longer than maxLine fails with a typed *Error (ErrOversizedLine)
// naming the line's byte offset: in a line-based format, a run of input
// without newlines is how truncation and binary corruption manifest, so it
// is reported rather than buffered without bound. Read errors from the
// source (for example a truncated gzip member) are wrapped in *Error with
// the current stream offset.
type BlockScanner struct {
	r         io.Reader
	blockSize int
	maxLine   int

	offset int64  // stream offset of the next block
	line   int    // lines emitted so far
	seq    int    // blocks emitted so far
	carry  []byte // partial final line of the previous read
	done   bool   // source reached EOF
	err    error  // sticky failure
}

// NewBlockScanner returns a scanner over r. blockSize and maxLine default to
// DefaultBlockSize and DefaultMaxLine when non-positive.
func NewBlockScanner(r io.Reader, blockSize, maxLine int) *BlockScanner {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if maxLine <= 0 {
		maxLine = DefaultMaxLine
	}
	return &BlockScanner{r: r, blockSize: blockSize, maxLine: maxLine}
}

// Next returns the next line-aligned block, or io.EOF when the stream is
// exhausted. The returned Block's Data is owned by the caller. Errors are
// sticky.
func (s *BlockScanner) Next() (Block, error) {
	if s.err != nil {
		return Block{}, s.err
	}
	start := s.offset
	buf := s.carry
	s.carry = nil
	for {
		if s.done {
			if len(buf) == 0 {
				s.err = io.EOF
				return Block{}, io.EOF
			}
			// Final block: the stream may legally end without a newline.
			return s.emit(buf, start), nil
		}
		// Read directly into the buffer's tail: one copy per payload byte,
		// no per-block scratch allocation on this single-threaded path.
		old := len(buf)
		buf = append(buf, make([]byte, s.blockSize)...)
		n, err := readFill(s.r, buf[old:])
		buf = buf[:old+n]
		switch err {
		case nil:
		case io.EOF:
			s.done = true
			continue
		default:
			// The source's own error, verbatim — io.ReadFull would fold a
			// gzip truncation (io.ErrUnexpectedEOF) into a clean-looking
			// short read, silently accepting a cut-off dump.
			s.err = &Error{
				Offset: start + int64(len(buf)),
				Msg:    "reading input",
				Err:    err,
			}
			return Block{}, s.err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			s.carry = append(s.carry, buf[i+1:]...)
			return s.emit(buf[:i+1], start), nil
		}
		// No newline in blockSize(+carry) bytes: a single line spanning
		// blocks. Keep growing until it terminates or trips the line bound.
		if len(buf) > s.maxLine {
			s.err = &Error{
				Offset: start,
				Line:   s.line + 1,
				Msg:    fmt.Sprintf("line exceeds %d bytes", s.maxLine),
				Err:    ErrOversizedLine,
			}
			return Block{}, s.err
		}
	}
}

// readFill reads until p is full or the source errs, returning the source's
// error unchanged (io.EOF only for a genuinely clean end of stream).
func readFill(r io.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (s *BlockScanner) emit(data []byte, start int64) Block {
	b := Block{Seq: s.seq, Offset: start, Line: s.line + 1, Data: data}
	s.seq++
	s.offset = start + int64(len(data))
	s.line += bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		s.line++ // unterminated final line still counts
	}
	return b
}
