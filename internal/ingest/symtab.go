package ingest

import (
	"hash/maphash"
	"sync"
)

// symShards is the stripe count of the shared symbol table. Power of two so
// the shard pick is a mask; 64 stripes keep contention negligible for the
// worker counts the pipeline runs (≤ tens).
const symShards = 64

// SymTab is a sharded string interner shared by the parse workers: every
// distinct term spelling (IRI, blank label, literal form) is allocated once,
// however many blocks and workers encounter it. In a real dump the same
// entity and predicate IRIs recur millions of times; without interning each
// occurrence would pin its own copy of the parsed line in the run buffers,
// and the memory budget would buy far fewer buffered triples.
//
// The zero value is not ready; use NewSymTab. All methods are safe for
// concurrent use.
type SymTab struct {
	seed   maphash.Seed
	shards [symShards]symShard
}

type symShard struct {
	mu sync.Mutex
	m  map[string]string
}

// NewSymTab returns an empty symbol table.
func NewSymTab() *SymTab {
	t := &SymTab{seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].m = make(map[string]string)
	}
	return t
}

// Intern returns the canonical copy of s, storing s itself on first sight.
func (t *SymTab) Intern(s string) string {
	if s == "" {
		return ""
	}
	sh := &t.shards[maphash.String(t.seed, s)&(symShards-1)]
	sh.mu.Lock()
	v, ok := sh.m[s]
	if !ok {
		sh.m[s] = s
		v = s
	}
	sh.mu.Unlock()
	return v
}

// Len returns the number of distinct strings interned so far.
func (t *SymTab) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// localSyms is a per-worker, lock-free cache in front of the shared table:
// hot spellings (the handful of predicates, the current block's subjects)
// resolve without touching a stripe lock. It is bounded by reset, not
// eviction — simpler, and a reset merely costs a few shared lookups.
type localSyms struct {
	tab *SymTab
	m   map[string]string
}

// localSymsCap bounds the per-worker cache before it is reset.
const localSymsCap = 1 << 16

func newLocalSyms(tab *SymTab) *localSyms {
	return &localSyms{tab: tab, m: make(map[string]string, 1024)}
}

func (l *localSyms) intern(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := l.m[s]; ok {
		return v
	}
	v := l.tab.Intern(s)
	if len(l.m) >= localSymsCap {
		l.m = make(map[string]string, 1024)
	}
	l.m[v] = v
	return v
}
