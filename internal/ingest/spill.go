package ingest

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/rdf"
)

// seqTriple is a parsed triple tagged with its position in the input stream:
// block sequence number and line index within the block. (block, line) is a
// total order equal to input order, which is what makes the parallel
// pipeline's output bit-compatible with the sequential loader — runs are
// sorted by it, and the final merge replays the dump exactly as written.
type seqTriple struct {
	block uint32
	line  uint32
	t     rdf.Triple
}

func seqLess(a, b seqTriple) bool {
	if a.block != b.block {
		return a.block < b.block
	}
	return a.line < b.line
}

// approxSize estimates the heap bytes one buffered triple pins: its string
// payloads plus per-triple bookkeeping (a 184-byte seqTriple struct —
// three Terms of a kind byte and three string headers each — plus slice
// growth slack; interned payloads are shared, so most of the marginal cost
// is the struct). The budget accounting only needs to be proportionate,
// not exact.
func approxSize(t rdf.Triple) int64 {
	n := len(t.Subject.Value) + len(t.Predicate.Value) + len(t.Object.Value) +
		len(t.Object.Datatype) + len(t.Object.Lang)
	return int64(n) + 224
}

// Run file format (temp segments, never persisted beyond one pipeline run):
//
//	record  = uvarint block, uvarint line, term subject, term predicate,
//	          term object
//	term    = kind byte, uvarint len + bytes (value),
//	          and for literals uvarint len + bytes (datatype),
//	          uvarint len + bytes (lang)
//
// Records appear in (block, line) order — each worker drains blocks in
// increasing Seq order, so its buffer is born sorted and spills sorted.

// runWriter streams one sorted run to a temp segment file.
type runWriter struct {
	f   *os.File
	bw  *bufio.Writer
	n   int64 // records written
	tmp []byte
}

func newRunWriter(dir string, seq int) (*runWriter, error) {
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("run-%04d.seg", seq)))
	if err != nil {
		return nil, err
	}
	return &runWriter{f: f, bw: bufio.NewWriterSize(f, 256<<10)}, nil
}

func (w *runWriter) add(st seqTriple) error {
	w.tmp = binary.AppendUvarint(w.tmp[:0], uint64(st.block))
	w.tmp = binary.AppendUvarint(w.tmp, uint64(st.line))
	if _, err := w.bw.Write(w.tmp); err != nil {
		return err
	}
	if err := w.writeTerm(st.t.Subject); err != nil {
		return err
	}
	if err := w.writeTerm(st.t.Predicate); err != nil {
		return err
	}
	if err := w.writeTerm(st.t.Object); err != nil {
		return err
	}
	w.n++
	return nil
}

func (w *runWriter) writeTerm(t rdf.Term) error {
	if err := w.bw.WriteByte(byte(t.Kind)); err != nil {
		return err
	}
	if err := w.writeString(t.Value); err != nil {
		return err
	}
	if t.Kind == rdf.KindLiteral {
		if err := w.writeString(t.Datatype); err != nil {
			return err
		}
		return w.writeString(t.Lang)
	}
	return nil
}

func (w *runWriter) writeString(s string) error {
	w.tmp = binary.AppendUvarint(w.tmp[:0], uint64(len(s)))
	if _, err := w.bw.Write(w.tmp); err != nil {
		return err
	}
	_, err := w.bw.WriteString(s)
	return err
}

// close flushes and closes the segment, leaving it on disk for the merge.
func (w *runWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// runCursor yields one sorted run during the merge: either a spilled segment
// streamed back from disk or a worker's in-memory tail.
type runCursor struct {
	cur seqTriple
	ok  bool

	// in-memory run
	mem []seqTriple

	// disk run
	br *bufio.Reader
	f  *os.File
}

func memCursor(ts []seqTriple) *runCursor {
	c := &runCursor{mem: ts}
	c.advance()
	return c
}

func diskCursor(path string) (*runCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := &runCursor{f: f, br: bufio.NewReaderSize(f, 256<<10)}
	if err := c.next(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// advance pops the next record of an in-memory run.
func (c *runCursor) advance() {
	if len(c.mem) == 0 {
		c.ok = false
		return
	}
	c.cur, c.mem, c.ok = c.mem[0], c.mem[1:], true
}

// next decodes the next record of a disk run; at end of segment ok is false.
func (c *runCursor) next() error {
	if c.br == nil {
		c.advance()
		return nil
	}
	block, err := binary.ReadUvarint(c.br)
	if err == io.EOF {
		c.ok = false
		return nil
	}
	if err != nil {
		return fmt.Errorf("ingest: corrupt spill segment: %w", err)
	}
	line, err := binary.ReadUvarint(c.br)
	if err != nil {
		return fmt.Errorf("ingest: corrupt spill segment: %w", err)
	}
	c.cur.block, c.cur.line = uint32(block), uint32(line)
	if c.cur.t.Subject, err = c.readTerm(); err != nil {
		return err
	}
	if c.cur.t.Predicate, err = c.readTerm(); err != nil {
		return err
	}
	if c.cur.t.Object, err = c.readTerm(); err != nil {
		return err
	}
	c.ok = true
	return nil
}

func (c *runCursor) readTerm() (rdf.Term, error) {
	kind, err := c.br.ReadByte()
	if err != nil {
		return rdf.Term{}, fmt.Errorf("ingest: corrupt spill segment: %w", err)
	}
	t := rdf.Term{Kind: rdf.TermKind(kind)}
	if t.Value, err = c.readString(); err != nil {
		return rdf.Term{}, err
	}
	if t.Kind == rdf.KindLiteral {
		if t.Datatype, err = c.readString(); err != nil {
			return rdf.Term{}, err
		}
		if t.Lang, err = c.readString(); err != nil {
			return rdf.Term{}, err
		}
	}
	return t, nil
}

func (c *runCursor) readString() (string, error) {
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		return "", fmt.Errorf("ingest: corrupt spill segment: %w", err)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.br, b); err != nil {
		return "", fmt.Errorf("ingest: corrupt spill segment: %w", err)
	}
	return string(b), nil
}

func (c *runCursor) close() {
	if c.f != nil {
		c.f.Close()
	}
}

// runHeap is the k-way merge frontier, ordered by (block, line).
type runHeap []*runCursor

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return seqLess(h[i].cur, h[j].cur) }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

var _ heap.Interface = (*runHeap)(nil)
