package ingest

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzBlockScanner drives the line-aligned block splitter with arbitrary
// bytes and checks its structural invariants: no panics, blocks concatenate
// back to the input, every block but the last ends at a line boundary,
// offsets and sequence numbers are contiguous, and the only accepted
// failure is the typed oversized-line error at a sane offset.
func FuzzBlockScanner(f *testing.F) {
	// Seed corpus: the shapes the scanner must carve correctly — plain
	// triples, comments, CRLF, blank lines, a missing final newline, long
	// lines spanning blocks, multi-byte UTF-8, and binary junk.
	f.Add([]byte("<http://x/a> <http://x/p> <http://x/b> .\n"), 16)
	f.Add([]byte("# comment\n\n<http://x/a> <http://x/p> \"v\" .\n"), 8)
	f.Add([]byte("<http://x/a> <http://x/p> <http://x/b> .\r\n<http://x/c> <http://x/p> \"x\" .\r\n"), 12)
	f.Add([]byte("<http://x/a> <http://x/p> \"no final newline\" ."), 7)
	f.Add([]byte(strings.Repeat("x", 300)+"\n<http://x/a> <http://x/p> <http://x/b> .\n"), 32)
	f.Add([]byte("<http://x/é> <http://x/p> \"üñïçødé\"@de .\n"), 5)
	f.Add([]byte("\x00\xff\xfe garbage \x80\n\n\n"), 3)
	f.Add([]byte("a\rb\n"), 4)
	f.Add(bytes.Repeat([]byte("<s> <p> <o> .\n"), 50), 10)

	f.Fuzz(func(t *testing.T, data []byte, blockSize int) {
		if blockSize < 1 || blockSize > 1<<16 {
			t.Skip()
		}
		const maxLine = 1 << 12
		sc := NewBlockScanner(bytes.NewReader(data), blockSize, maxLine)
		var rebuilt []byte
		wantSeq := 0
		for {
			b, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var ie *Error
				if !errors.As(err, &ie) {
					t.Fatalf("non-typed scanner error: %v", err)
				}
				if !errors.Is(err, ErrOversizedLine) {
					t.Fatalf("unexpected error class from in-memory input: %v", err)
				}
				if ie.Offset < 0 || ie.Offset > int64(len(data)) {
					t.Fatalf("error offset %d outside input of %d bytes", ie.Offset, len(data))
				}
				return // oversized line is a legal terminal outcome
			}
			if b.Seq != wantSeq {
				t.Fatalf("block seq %d, want %d", b.Seq, wantSeq)
			}
			wantSeq++
			if b.Offset != int64(len(rebuilt)) {
				t.Fatalf("block offset %d, want %d", b.Offset, len(rebuilt))
			}
			if len(b.Data) == 0 {
				t.Fatal("empty block")
			}
			rebuilt = append(rebuilt, b.Data...)
			if int64(len(rebuilt)) < int64(len(data)) && b.Data[len(b.Data)-1] != '\n' {
				t.Fatal("non-final block does not end at a line boundary")
			}
		}
		if !bytes.Equal(rebuilt, data) {
			t.Fatalf("blocks do not concatenate back to the input: %d vs %d bytes", len(rebuilt), len(data))
		}
		// Errors must be sticky EOF from here on.
		if _, err := sc.Next(); err != io.EOF {
			t.Fatalf("post-EOF Next: %v", err)
		}
	})
}
