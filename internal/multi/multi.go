// Package multi extends PARIS to more than two ontologies — the future-work
// direction named in the paper's conclusion ("It would also be interesting
// to apply paris to more than two ontologies").
//
// The approach aligns every ontology pair independently with the two-ontology
// algorithm and then merges the pairwise maximal assignments into entity
// clusters. Only reciprocal assignments (x's maximal partner is y and y's
// maximal partner is x) join entities, which keeps the transitive closure
// from chaining through one-directional, low-confidence matches.
package multi

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/store"
)

// Entity names one resource inside one ontology of the ensemble.
type Entity struct {
	Ontology int // index into the input ontology slice
	Key      string
}

// Cluster is one group of entities believed to denote the same real-world
// object, with the minimum pairwise probability that joined it.
type Cluster struct {
	Members []Entity
	MinP    float64
}

// Result is the outcome of a multi-ontology alignment.
type Result struct {
	// Pairwise holds the two-ontology results, indexed by [i][j] for
	// i < j.
	Pairwise map[[2]int]*core.Result
	// Clusters lists all multi-entity clusters, largest first.
	Clusters []Cluster
}

// Align aligns every pair of the given ontologies and clusters the
// reciprocal maximal assignments. All ontologies must share one literal
// table. The configuration applies to every pairwise run.
func Align(ontos []*store.Ontology, cfg core.Config) (*Result, error) {
	return AlignContext(context.Background(), ontos, cfg)
}

// AlignContext is Align with cancellation: the context aborts the current
// pairwise fixpoint within one pass and skips the remaining pairs — with n
// ontologies there are n(n-1)/2 alignments, so a way out matters more here
// than anywhere.
func AlignContext(ctx context.Context, ontos []*store.Ontology, cfg core.Config) (*Result, error) {
	if len(ontos) < 2 {
		return nil, fmt.Errorf("multi: need at least two ontologies, got %d", len(ontos))
	}
	for i := 1; i < len(ontos); i++ {
		if ontos[i].Literals() != ontos[0].Literals() {
			return nil, fmt.Errorf("multi: ontology %d does not share the literal table", i)
		}
	}

	res := &Result{Pairwise: make(map[[2]int]*core.Result)}
	uf := newUnionFind()
	minP := map[string]float64{}

	for i := 0; i < len(ontos); i++ {
		for j := i + 1; j < len(ontos); j++ {
			a, err := core.NewChecked(ontos[i], ontos[j], cfg)
			if err != nil {
				return nil, fmt.Errorf("multi: pair (%d, %d): %w", i, j, err)
			}
			pr, err := a.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("multi: pair (%d, %d): %w", i, j, err)
			}
			res.Pairwise[[2]int{i, j}] = pr

			// Reciprocity check: keep x≡y only if y's best partner in
			// the reverse direction is x again.
			bestRev := make(map[store.Resource]core.Assignment, len(pr.Instances))
			for _, a := range pr.Instances {
				if b, ok := bestRev[a.X2]; !ok || a.P > b.P {
					bestRev[a.X2] = a
				}
			}
			for _, a := range pr.Instances {
				if bestRev[a.X2].X1 != a.X1 {
					continue
				}
				e1 := entityID(i, ontos[i].ResourceKey(a.X1))
				e2 := entityID(j, ontos[j].ResourceKey(a.X2))
				root := uf.union(e1, e2)
				for _, id := range []string{e1, e2, root} {
					if p, ok := minP[id]; !ok || a.P < p {
						minP[id] = a.P
					}
				}
			}
		}
	}

	// Collect clusters.
	groups := map[string][]Entity{}
	groupP := map[string]float64{}
	for id := range uf.parent {
		root := uf.find(id)
		var ont int
		var key string
		fmt.Sscanf(id, "%d\x00", &ont)
		key = id[indexByte(id, 0)+1:]
		groups[root] = append(groups[root], Entity{Ontology: ont, Key: key})
		if p, ok := minP[id]; ok {
			if cur, seen := groupP[root]; !seen || p < cur {
				groupP[root] = p
			}
		}
	}
	for root, members := range groups {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(a, b int) bool {
			if members[a].Ontology != members[b].Ontology {
				return members[a].Ontology < members[b].Ontology
			}
			return members[a].Key < members[b].Key
		})
		res.Clusters = append(res.Clusters, Cluster{Members: members, MinP: groupP[root]})
	}
	sort.Slice(res.Clusters, func(a, b int) bool {
		ca, cb := res.Clusters[a], res.Clusters[b]
		if len(ca.Members) != len(cb.Members) {
			return len(ca.Members) > len(cb.Members)
		}
		return ca.Members[0].Key < cb.Members[0].Key
	})
	return res, nil
}

func entityID(ont int, key string) string {
	return fmt.Sprintf("%d\x00%s", ont, key)
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// unionFind is a string-keyed disjoint-set forest with path compression.
type unionFind struct {
	parent map[string]string
	rank   map[string]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}, rank: map[string]int{}}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) string {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}
