package multi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/store"
)

// triKB builds three ontologies describing the same two people under three
// vocabularies, sharing one literal table.
func triKB(t *testing.T) []*store.Ontology {
	t.Helper()
	lits := store.NewLiterals()
	docs := []string{
		`<http://a.org/x> <http://a.org/email> "x@ex.com" .
<http://a.org/y> <http://a.org/email> "y@ex.com" .`,
		`<http://b.org/x> <http://b.org/mail> "x@ex.com" .
<http://b.org/y> <http://b.org/mail> "y@ex.com" .`,
		`<http://c.org/x> <http://c.org/courriel> "x@ex.com" .
<http://c.org/y> <http://c.org/courriel> "y@ex.com" .`,
	}
	var out []*store.Ontology
	for i, doc := range docs {
		triples, err := rdf.ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		b := store.NewBuilder(string(rune('a'+i)), lits, nil)
		if err := b.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Build())
	}
	return out
}

func TestAlignThreeOntologies(t *testing.T) {
	ontos := triKB(t)
	res, err := Align(ontos, core.Config{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairwise) != 3 {
		t.Fatalf("pairwise results = %d, want 3", len(res.Pairwise))
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %+v", len(res.Clusters), res.Clusters)
	}
	for _, c := range res.Clusters {
		if len(c.Members) != 3 {
			t.Fatalf("cluster size = %d, want 3: %+v", len(c.Members), c)
		}
		// All members must refer to the same local entity (x or y).
		suffix := c.Members[0].Key[len(c.Members[0].Key)-3:]
		for _, m := range c.Members[1:] {
			if m.Key[len(m.Key)-3:] != suffix {
				t.Fatalf("mixed cluster: %+v", c)
			}
		}
		if c.MinP <= 0 || c.MinP > 1 {
			t.Fatalf("cluster MinP out of range: %v", c.MinP)
		}
	}
	// Clusters must span all three ontologies.
	onts := map[int]bool{}
	for _, m := range res.Clusters[0].Members {
		onts[m.Ontology] = true
	}
	if len(onts) != 3 {
		t.Fatalf("cluster does not span all ontologies: %+v", res.Clusters[0])
	}
}

func TestAlignInputValidation(t *testing.T) {
	ontos := triKB(t)
	if _, err := Align(ontos[:1], core.Config{}); err == nil {
		t.Fatal("single ontology accepted")
	}
	foreign := store.NewBuilder("z", store.NewLiterals(), nil).Build()
	if _, err := Align([]*store.Ontology{ontos[0], foreign}, core.Config{}); err == nil {
		t.Fatal("mismatched literal tables accepted")
	}
}

func TestReciprocityFiltersOneWayMatches(t *testing.T) {
	lits := store.NewLiterals()
	mk := func(name, doc string) *store.Ontology {
		triples, err := rdf.ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		b := store.NewBuilder(name, lits, nil)
		if err := b.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}
	// Ontology a's entity shares a weak value with two b entities; the
	// reciprocal filter must not chain a cluster through the weaker one.
	a := mk("a", `<http://a.org/p> <http://a.org/city> "Springfield" .
<http://a.org/p> <http://a.org/email> "p@ex.com" .`)
	b := mk("b", `<http://b.org/p> <http://b.org/town> "Springfield" .
<http://b.org/p> <http://b.org/mail> "p@ex.com" .
<http://b.org/q> <http://b.org/town> "Springfield" .`)
	res, err := Align([]*store.Ontology{a, b}, core.Config{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		for _, m := range c.Members {
			if m.Key == "<http://b.org/q>" {
				t.Fatalf("one-way match clustered: %+v", c)
			}
		}
	}
}

func TestEquivalentClassesHelper(t *testing.T) {
	lits := store.NewLiterals()
	mk := func(name, doc string) *store.Ontology {
		triples, err := rdf.ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		bld := store.NewBuilder(name, lits, nil)
		if err := bld.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		return bld.Build()
	}
	typeIRI := "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
	o1 := mk("o1", `<http://a.org/x> <http://a.org/email> "x@ex.com" .
<http://a.org/x> `+typeIRI+` <http://a.org/singer> .`)
	o2 := mk("o2", `<http://b.org/x> <http://b.org/mail> "x@ex.com" .
<http://b.org/x> `+typeIRI+` <http://b.org/musician> .`)
	res := core.New(o1, o2, core.Config{MaxIterations: 3}).Run()
	eq := res.EquivalentClasses(0.9)
	if len(eq) != 1 {
		t.Fatalf("equivalent classes = %v", eq)
	}
	if o1.ResourceKey(eq[0].Sub) != "<http://a.org/singer>" ||
		o2.ResourceKey(eq[0].Super) != "<http://b.org/musician>" {
		t.Fatalf("wrong equivalence: %v", eq)
	}
}
