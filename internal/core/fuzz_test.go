package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotDecode hammers the versioned binary snapshot decoder with
// mutated inputs. The corpus is seeded from the committed testdata snapshots
// (one version-1 encoding without the lineage tail, one version-2 with it)
// plus a fresh marshal, so the fuzzer starts from both wire formats the
// decoder must accept. Two properties must hold on every input:
//
//  1. UnmarshalBinary never panics and never over-allocates on corrupt
//     counts — it returns an error instead.
//  2. Any input it accepts round-trips: re-marshaling the decoded snapshot
//     and decoding again yields byte-identical output (byte comparison, not
//     struct equality, so NaN probabilities the fuzzer synthesizes cannot
//     produce false mismatches).
func FuzzSnapshotDecode(f *testing.F) {
	for _, name := range []string{"snapshot_v1.bin", "snapshot_v2.bin"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatalf("reading seed %s: %v", name, err)
		}
		f.Add(data)
	}
	if data, err := sampleSnapshot().MarshalBinary(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var snap ResultSnapshot
		if err := snap.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshaling accepted input: %v", err)
		}
		var again ResultSnapshot
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("decoding re-marshaled snapshot: %v", err)
		}
		out2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip unstable: %d vs %d bytes", len(out), len(out2))
		}
	})
}

// TestFuzzSeedsDecode pins the committed corpus: both seed files must decode
// cleanly in their respective versions (the fuzz target itself would skip
// them silently if they ever rotted into invalid inputs).
func TestFuzzSeedsDecode(t *testing.T) {
	for name, version := range map[string]byte{"snapshot_v1.bin": 1, "snapshot_v2.bin": 2} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if got := data[len(snapshotMagic)]; got != version {
			t.Errorf("%s: version byte = %d, want %d", name, got, version)
		}
		var snap ResultSnapshot
		if err := snap.UnmarshalBinary(data); err != nil {
			t.Errorf("%s does not decode: %v", name, err)
		}
		if snap.KB1 != "ykb" || len(snap.Instances) != 2 {
			t.Errorf("%s decoded unexpectedly: kb1=%q instances=%d", name, snap.KB1, len(snap.Instances))
		}
	}
}
