package core

import (
	"reflect"
	"testing"
	"time"
)

func sampleSnapshot() *ResultSnapshot {
	return &ResultSnapshot{
		KB1: "yago", KB2: "dbpedia",
		Instances: []SnapshotAssignment{
			{Key1: "<http://a/elvis>", Key2: "<http://b/presley>", P: 1},
			{Key1: "<http://a/paris>", Key2: "<http://b/paris>", P: 0.73},
		},
		Relations12: []SnapshotRelation{
			{Sub: "<http://a/born>", Super: "<http://b/birthPlace>", P: 0.9},
			{Sub: "-<http://a/born>", Super: "-<http://b/birthPlace>", P: 0.42},
		},
		Relations21: []SnapshotRelation{
			{Sub: "<http://b/birthPlace>", Super: "<http://a/born>", P: 0.8},
		},
		Classes12: []SnapshotClass{
			{Sub: "<http://a/Singer>", Super: "<http://b/Person>", P: 0.95},
		},
		Classes21: []SnapshotClass{
			{Sub: "<http://b/Person>", Super: "<http://a/Agent>", P: 0.5},
		},
		Iterations: []IterationStats{
			{Iteration: 1, ChangedFraction: 1, Assigned: 2,
				InstanceTime: 3 * time.Millisecond, RelationTime: time.Millisecond},
			{Iteration: 2, ChangedFraction: 0, Assigned: 2,
				InstanceTime: 2 * time.Millisecond, RelationTime: time.Millisecond},
		},
		ClassTime:   5 * time.Millisecond,
		CreatedAt:   time.Unix(0, 1700000000123456789).UTC(),
		Base:        "snap-00000007",
		DeltaDigest: "fe12ab",
		DeltaAdded:  42,
	}
}

// TestSnapshotDecodesVersion1 checks that lineage-free version-1 snapshots
// (written before incremental re-alignment existed) still load: the version-2
// encoding is version 1 plus a lineage tail, so a v1 byte stream is the v2
// stream of a zero-lineage snapshot truncated before that tail.
func TestSnapshotDecodesVersion1(t *testing.T) {
	want := sampleSnapshot()
	want.Base, want.DeltaDigest, want.DeltaAdded = "", "", 0
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Zero lineage encodes as three zero bytes (two empty strings, one
	// zero uvarint); drop them and claim version 1.
	v1 := append([]byte(nil), data[:len(data)-3]...)
	v1[len(snapshotMagic)] = 1
	var got ResultSnapshot
	if err := got.UnmarshalBinary(v1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("v1 decode mismatch:\ngot  %+v\nwant %+v", &got, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ResultSnapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &got, want)
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	want := &ResultSnapshot{KB1: "a", KB2: "b"}
	data, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ResultSnapshot
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.KB1 != "a" || got.KB2 != "b" || len(got.Instances) != 0 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestSnapshotUnmarshalRejectsCorruption(t *testing.T) {
	data, err := sampleSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("XSNAP\x01rest"),
		"bad ver":    append([]byte("PSNAP\x63"), data[6:]...),
		"truncated":  data[:len(data)/2],
		"trailing":   append(append([]byte{}, data...), 0xff),
		"huge count": append(append([]byte{}, data[:6]...), 0xff, 0xff, 0xff, 0xff, 0x0f),
	}
	for name, bad := range cases {
		var s ResultSnapshot
		if err := s.UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestResultSnapshotConversion checks Result → ResultSnapshot against a real
// alignment run so keys and relation names resolve through the ontologies.
func TestResultSnapshotConversion(t *testing.T) {
	o1, o2 := pair(t, `
<e:x> <e:email> "x@example.com" .
<e:x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <e:Singer> .
<e:y> <e:email> "y@example.com" .
<e:y> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <e:Singer> .
`, `
<f:x> <f:mail> "x@example.com" .
<f:x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <f:Person> .
<f:y> <f:mail> "y@example.com" .
<f:y> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <f:Person> .
`)
	res := New(o1, o2, Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced no instances")
	}
	snap := res.Snapshot()
	if snap.KB1 != o1.Name() || snap.KB2 != o2.Name() {
		t.Fatalf("names %q %q", snap.KB1, snap.KB2)
	}
	if len(snap.Instances) != len(res.Instances) {
		t.Fatalf("instances %d, want %d", len(snap.Instances), len(res.Instances))
	}
	for i, a := range res.Instances {
		sa := snap.Instances[i]
		if sa.Key1 != res.O1.ResourceKey(a.X1) || sa.Key2 != res.O2.ResourceKey(a.X2) || sa.P != a.P {
			t.Fatalf("instance %d: %+v vs %+v", i, sa, a)
		}
	}
	if len(snap.Relations12) != len(res.Relations12) || len(snap.Relations21) != len(res.Relations21) {
		t.Fatalf("relation counts diverge")
	}
	if len(snap.Classes12) != len(res.Classes12) || len(snap.Classes21) != len(res.Classes21) {
		t.Fatalf("class counts diverge")
	}
	// The conversion must survive the wire format too.
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back ResultSnapshot
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, snap) {
		t.Fatal("wire round trip of converted result diverges")
	}
}
