package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/literal"
	"repro/internal/store"
)

// Aligner runs the PARIS fixpoint over two ontologies. Create it with New;
// the zero value is not usable.
type Aligner struct {
	o1, o2 *store.Ontology
	cfg    Config

	fun1, fun2 []float64 // global functionalities under cfg.FunMode

	eq     *eqStore     // current instance equalities
	prevEq *eqStore     // previous iteration's equalities
	rel    *subRelStore // current sub-relation scores (nil before iteration 1)

	// negativePass marks the final Equation (14) filter iteration (see
	// Config.NegativeEvidence).
	negativePass bool

	iters []IterationStats
}

// IterationStats records one fixpoint iteration for reporting (the "Change
// to prev." and "Time" columns of Tables 3 and 5).
type IterationStats struct {
	Iteration       int
	ChangedFraction float64 // fraction of entities with a new maximal assignment
	Assigned        int     // entities with a maximal assignment
	InstanceTime    time.Duration
	RelationTime    time.Duration
}

// String renders the stats in one line.
func (s IterationStats) String() string {
	return fmt.Sprintf("iter %d: %d assigned, %.1f%% changed, inst %v, rel %v",
		s.Iteration, s.Assigned, 100*s.ChangedFraction, s.InstanceTime, s.RelationTime)
}

// LiteralTableError reports two ontologies that do not share a literal
// table. Every downstream probability would silently be wrong: the clamped
// literal equality of Section 5.3 is an identity check over interned IDs, so
// literals from separate tables can never compare equal.
type LiteralTableError struct {
	O1, O2 string // ontology display names
}

func (e *LiteralTableError) Error() string {
	return fmt.Sprintf("core: ontologies %q and %q do not share a literal table (build both with the same store.Literals)", e.O1, e.O2)
}

// New wires two frozen ontologies into an Aligner. The ontologies must share
// one literal table (see store.NewBuilder); New panics otherwise. Callers
// that can surface an error should prefer NewChecked, which reports the
// mismatch as a *LiteralTableError instead.
func New(o1, o2 *store.Ontology, cfg Config) *Aligner {
	a, err := NewChecked(o1, o2, cfg)
	if err != nil {
		panic(err.Error())
	}
	return a
}

// NewChecked wires two frozen ontologies into an Aligner. The ontologies
// must share one literal table (see store.NewBuilder); NewChecked returns a
// *LiteralTableError otherwise.
func NewChecked(o1, o2 *store.Ontology, cfg Config) (*Aligner, error) {
	if o1.Literals() != o2.Literals() {
		return nil, &LiteralTableError{O1: o1.Name(), O2: o2.Name()}
	}
	cfg = cfg.withDefaults()
	if cfg.MatcherTo2 == nil {
		cfg.MatcherTo2 = literal.IdentityMatcher{Target: o2}
	}
	if cfg.MatcherTo1 == nil {
		cfg.MatcherTo1 = literal.IdentityMatcher{Target: o1}
	}
	a := &Aligner{o1: o1, o2: o2, cfg: cfg}
	if cfg.FunMode == store.FunHarmonicMean {
		a.fun1 = funSlice(o1)
		a.fun2 = funSlice(o2)
	} else {
		a.fun1 = o1.FunctionalityWith(cfg.FunMode)
		a.fun2 = o2.FunctionalityWith(cfg.FunMode)
	}
	return a, nil
}

func funSlice(o *store.Ontology) []float64 {
	fs := make([]float64, o.NumRelations())
	for i := range fs {
		fs[i] = o.Fun(store.Relation(i))
	}
	return fs
}

// Ontology1 returns the first ontology.
func (a *Aligner) Ontology1() *store.Ontology { return a.o1 }

// Ontology2 returns the second ontology.
func (a *Aligner) Ontology2() *store.Ontology { return a.o2 }

// Run executes the fixpoint of Section 5.1: alternate the instance-
// equivalence pass (Equation 13/14) and the sub-relation pass (Equation 12)
// until the maximal assignments converge, then compute subclass scores
// (Equation 17) once. It returns the final result. Run cannot be
// interrupted; long-running callers should use RunContext.
func (a *Aligner) Run() *Result {
	res, _ := a.RunContext(context.Background()) // Background never cancels
	return res
}

// RunContext is Run with cancellation: the context is checked before every
// pass (instance, sub-relation, subclass), so a cancelled or expired
// context aborts the fixpoint within one pass. On cancellation it returns
// nil and the context's error; the aligner's intermediate state stays
// inspectable through Assignments and friends.
func (a *Aligner) RunContext(ctx context.Context) (*Result, error) {
	it := 0
	for it = 1; it <= a.cfg.MaxIterations; it++ {
		stats, err := a.StepContext(ctx, it)
		if err != nil {
			return nil, err
		}
		if a.cfg.OnIteration != nil {
			a.cfg.OnIteration(it, a)
		}
		if a.cfg.Convergence >= 0 && stats.ChangedFraction < a.cfg.Convergence {
			break
		}
	}
	if a.cfg.NegativeEvidence {
		// Equation (14) runs as a filter over the converged equalities:
		// counter-evidence is only meaningful once the equality estimates
		// feeding its inner products are trustworthy (see Config).
		a.negativePass = true
		if _, err := a.StepContext(ctx, it+1); err != nil {
			return nil, err
		}
		if a.cfg.OnIteration != nil {
			a.cfg.OnIteration(it+1, a)
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancelled after the last iteration: skip the subclass pass too.
		return nil, err
	}
	return a.Result(), nil
}

// Step runs a single fixpoint iteration (instance pass followed by
// sub-relation pass) and records its statistics. Most callers should use
// Run; Step exists for per-iteration evaluation harnesses.
func (a *Aligner) Step(it int) IterationStats {
	stats, _ := a.StepContext(context.Background(), it)
	return stats
}

// StepContext is Step with cancellation, checked before the instance pass
// and again between the instance and sub-relation passes. A step aborted
// between passes leaves the equalities of iteration it paired with the
// sub-relation scores of iteration it-1; that inconsistency is only ever
// observed by a caller that keeps using the aligner after cancellation.
func (a *Aligner) StepContext(ctx context.Context, it int) (IterationStats, error) {
	if err := ctx.Err(); err != nil {
		return IterationStats{}, err
	}
	t0 := time.Now()
	next := a.instancePass()
	next.finish()
	stats := IterationStats{
		Iteration:       it,
		ChangedFraction: next.changedFraction(a.eq),
		Assigned:        next.numAssigned(),
		InstanceTime:    time.Since(t0),
	}
	a.prevEq, a.eq = a.eq, next

	if err := ctx.Err(); err != nil {
		return stats, err
	}
	t1 := time.Now()
	a.rel = a.subRelationPass()
	stats.RelationTime = time.Since(t1)

	a.iters = append(a.iters, stats)
	return stats, nil
}

// Iterations returns the statistics of all completed iterations.
func (a *Aligner) Iterations() []IterationStats { return a.iters }

// Assignments returns the current maximal instance assignments from
// ontology 1 to ontology 2, in ontology-1 ID order.
func (a *Aligner) Assignments() []Assignment {
	if a.eq == nil {
		return nil
	}
	var out []Assignment
	for x, c := range a.eq.maxFwd {
		if c.To != NoResource {
			out = append(out, Assignment{X1: store.Resource(x), X2: c.To, P: c.P})
		}
	}
	return out
}

// Candidates returns all stored equality candidates of an ontology-1
// instance (descending probability).
func (a *Aligner) Candidates(x store.Resource) []Cand {
	if a.eq == nil {
		return nil
	}
	return a.eq.fwd[x]
}

// RelationAlignments returns the current sub-relation scores above the
// truncation threshold, for both directions.
func (a *Aligner) RelationAlignments() (to2, to1 []RelAlignment) {
	if a.rel == nil {
		return nil, nil
	}
	for r1, m := range a.rel.to2 {
		for r2, p := range m {
			to2 = append(to2, RelAlignment{Sub: store.Relation(r1), Super: r2, P: p})
		}
	}
	for r2, m := range a.rel.to1 {
		for r1, p := range m {
			to1 = append(to1, RelAlignment{Sub: store.Relation(r2), Super: r1, P: p})
		}
	}
	sortRelAlignments(to2)
	sortRelAlignments(to1)
	return to2, to1
}

// Result finalizes the run: it computes the subclass alignment from the
// final instance assignment (Section 4.3: classes are aligned only after the
// instances) and packages everything.
func (a *Aligner) Result() *Result {
	res := &Result{
		O1:         a.o1,
		O2:         a.o2,
		Iterations: a.iters,
	}
	res.Instances = a.Assignments()
	res.Relations12, res.Relations21 = a.RelationAlignments()
	t0 := time.Now()
	res.Classes12, res.Classes21 = a.subClassPass()
	res.ClassTime = time.Since(t0)
	return res
}
