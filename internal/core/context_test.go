package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/literal"
	"repro/internal/store"
)

// TestNewCheckedLiteralTableError verifies the literal-table invariant is a
// typed error under NewChecked and still a panic under the deprecated New.
func TestNewCheckedLiteralTableError(t *testing.T) {
	o1, _ := pair(t, o1Email, o2Email)
	// Build the second side against its own, separate literal table.
	_, o2 := pair(t, o1Email, o2Email)

	_, err := NewChecked(o1, o2, Config{})
	var lte *LiteralTableError
	if !errors.As(err, &lte) {
		t.Fatalf("NewChecked error = %v, want *LiteralTableError", err)
	}
	if lte.O1 != "o1" || lte.O2 != "o2" {
		t.Fatalf("error names = %q, %q", lte.O1, lte.O2)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("deprecated New did not panic on mismatched literal tables")
		}
	}()
	New(o1, o2, Config{})
}

// TestRunContextCancelBeforeStart: an already-canceled context aborts
// before any pass runs.
func TestRunContextCancelBeforeStart(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	a, err := NewChecked(o1, o2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := a.RunContext(ctx)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, %v; want nil, context.Canceled", res, err)
	}
	if n := len(a.Iterations()); n != 0 {
		t.Fatalf("%d iterations ran under a canceled context", n)
	}
}

// TestRunContextCancelMidFixpoint cancels from the OnIteration callback of
// iteration 2 and asserts the fixpoint stops within one pass: no third
// iteration is recorded, no result (and hence no subclass pass) is
// produced, and the error is the context's.
func TestRunContextCancelMidFixpoint(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		MaxIterations: 10,
		Convergence:   -1, // never converge early: only cancellation stops it
		OnIteration: func(it int, _ *Aligner) {
			if it == 2 {
				cancel()
			}
		},
	}
	a, err := NewChecked(o1, o2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(ctx)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, %v; want nil, context.Canceled", res, err)
	}
	if n := len(a.Iterations()); n != 2 {
		t.Fatalf("iterations after cancel at 2 = %d, want exactly 2", n)
	}
	// The aligner's intermediate state remains inspectable.
	if len(a.Assignments()) == 0 {
		t.Fatal("no assignments inspectable after cancellation")
	}
}

// TestRunContextDeadline: an expired deadline is reported as
// DeadlineExceeded, the error callers distinguish from explicit
// cancellation.
func TestRunContextDeadline(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	a, err := NewChecked(o1, o2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := a.RunContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext error = %v, want DeadlineExceeded", err)
	}
}

// TestStepContextCanceledBeforeStart: the entry check aborts a step whose
// context is already canceled before any pass runs.
func TestStepContextCanceledBeforeStart(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	a, err := NewChecked(o1, o2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := a.StepContext(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StepContext error = %v, want context.Canceled", err)
	}
	if stats.InstanceTime != 0 {
		t.Fatalf("instance pass ran under a pre-canceled context: %+v", stats)
	}
}

// cancelOnMatch cancels its context the first time the instance pass
// consults the literal matcher — that is, while the instance pass is
// running — so the check between the instance and sub-relation passes is
// the one that fires.
type cancelOnMatch struct {
	inner  literal.Matcher
	cancel context.CancelFunc
}

func (m cancelOnMatch) Candidates(l store.Lit) []literal.Weighted {
	m.cancel()
	return m.inner.Candidates(l)
}

// TestStepContextCancelBetweenPasses: a cancellation landing during the
// instance pass lets that pass complete, then aborts before the
// sub-relation pass — the partially computed iteration's stats come back
// with the error, no relation scores exist, and no iteration is recorded.
func TestStepContextCancelBetweenPasses(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Workers:    1,
		MatcherTo2: cancelOnMatch{literal.IdentityMatcher{Target: o2}, cancel},
	}
	a, err := NewChecked(o1, o2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a.StepContext(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StepContext error = %v, want context.Canceled", err)
	}
	if stats.Iteration != 1 || stats.InstanceTime == 0 {
		t.Fatalf("aborted step stats = %+v, want a completed instance pass", stats)
	}
	if stats.RelationTime != 0 {
		t.Fatalf("sub-relation pass ran after cancellation: %+v", stats)
	}
	if to2, to1 := a.RelationAlignments(); to2 != nil || to1 != nil {
		t.Fatalf("relation scores exist after between-pass abort: %v, %v", to2, to1)
	}
	if n := len(a.Iterations()); n != 0 {
		t.Fatalf("aborted step recorded %d iterations, want 0", n)
	}
	// The instance pass did complete: its assignments are inspectable.
	if len(a.Assignments()) == 0 {
		t.Fatal("no assignments after the completed instance pass")
	}
}

// TestRunContextBackgroundMatchesRun: RunContext under a background
// context is exactly Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	a1, _ := NewChecked(o1, o2, Config{})
	res1, err := a1.RunContext(context.Background())
	if err != nil || res1 == nil {
		t.Fatalf("RunContext = %v, %v", res1, err)
	}
	a2, _ := NewChecked(o1, o2, Config{})
	res2 := a2.Run()
	if len(res1.Instances) != len(res2.Instances) ||
		len(res1.Relations12) != len(res2.Relations12) ||
		len(res1.Classes12) != len(res2.Classes12) {
		t.Fatalf("RunContext diverges from Run: %v vs %v", res1, res2)
	}
}
