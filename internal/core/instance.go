package core

import (
	"repro/internal/store"
)

// weighted is a node of the other ontology with an equality probability.
type weighted struct {
	node store.Node
	p    float64
}

// instancePass computes the instance-equality table of one iteration using
// Equation (13), or Equation (14) when negative evidence is enabled. It
// implements the optimized traversal of Section 5.2: for each instance x of
// ontology 1, follow every statement r(x, y), every known equal y' of y, and
// every statement r'(x', y') of ontology 2, accumulating the per-candidate
// product.
func (a *Aligner) instancePass() *eqStore {
	next := newEqStore(a.o1.NumResources(), a.o2.NumResources())
	insts := a.o1.Instances()
	results := make([][]Cand, len(insts))
	parallelFor(len(insts), a.cfg.Workers, func(i int) {
		results[i] = a.instanceEqualities(insts[i])
	})
	for i, cands := range results {
		next.setFwd(insts[i], cands)
	}
	return next
}

// instanceEqualities evaluates all equality candidates of one ontology-1
// instance and returns those above the threshold.
func (a *Aligner) instanceEqualities(x store.Resource) []Cand {
	edges := a.o1.Edges(x)
	if len(edges) == 0 {
		return nil
	}
	// prod[x'] = Π over statement pairs of
	//   (1 - P(r'⊆r)·fun⁻¹(r)·P(y≡y')) · (1 - P(r⊆r')·fun⁻¹(r')·P(y≡y'))
	prod := make(map[store.Resource]float64)
	var eqBuf []weighted
	for _, e := range edges {
		r := e.Rel
		invFunR := a.fun1[r.Inverse()]
		eqBuf = a.equalsOf1(e.To, eqBuf[:0])
		for _, w := range eqBuf {
			a.expandBridge(r, invFunR, w, prod)
		}
	}
	if len(prod) == 0 {
		return nil
	}
	// Negative evidence runs in the dedicated filter pass, once the
	// equalities feeding its inner products have converged (see Config).
	useNegative := a.negativePass && a.rel != nil
	// In the bootstrap iteration all scores are scaled down by θ, so the
	// fixed truncation threshold would wipe them out for small θ. A floor
	// proportional to θ keeps the kept-candidate set θ-invariant, which is
	// what makes the final scores independent of θ (Section 6.3).
	threshold := a.cfg.Truncation
	if a.rel == nil && a.cfg.Theta*0.5 < threshold {
		threshold = a.cfg.Theta * 0.5
	}
	cands := make([]Cand, 0, len(prod))
	for x2, pr := range prod {
		p := 1 - pr
		if useNegative {
			p *= a.negativeEvidence(x, x2)
		}
		if p >= threshold && p > 0 {
			cands = append(cands, Cand{To: x2, P: p})
		}
	}
	return cands
}

// expandBridge walks the ontology-2 statements r'(x', y') whose second
// argument y' is equal to the current y with probability w.p, multiplying
// the Equation (13) factor into each candidate's product.
func (a *Aligner) expandBridge(r store.Relation, invFunR float64, w weighted, prod map[store.Resource]float64) {
	var edges2 []store.Edge
	if w.node.IsLit() {
		edges2 = a.o2.LitEdges(w.node.Lit())
	} else {
		edges2 = a.o2.Edges(w.node.Res())
	}
	if len(edges2) > a.cfg.HubLimit {
		edges2 = edges2[:a.cfg.HubLimit]
	}
	for _, e2 := range edges2 {
		if e2.To.IsLit() {
			continue // x' must be an instance
		}
		x2 := e2.To.Res()
		if a.o2.IsClass(x2) {
			continue
		}
		// The ontology-2 statement is q(y', x'), i.e. r'(x', y') with
		// r' = q⁻¹.
		rp := e2.Rel.Inverse()
		f := (1 - a.p21(rp, r)*invFunR*w.p) *
			(1 - a.p12(r, rp)*a.fun2[rp.Inverse()]*w.p)
		if f == 1 {
			continue
		}
		if cur, ok := prod[x2]; ok {
			prod[x2] = cur * f
		} else {
			prod[x2] = f
		}
	}
}

// negativeEvidence computes the Pr2 factor of Equation (14) for a candidate
// pair (x, x'): for every statement r(x, y) and every ontology-2 relation r'
// related to r, multiply
//
//	(1 - fun(r)·P(r'⊆r)·Π_{y'':r'(x',y'')}(1-P(y≡y''))) ·
//	(1 - fun(r')·P(r⊆r')·Π_{y'':r'(x',y'')}(1-P(y≡y'')))
//
// When x' has no r'-statements the inner product is one (the paper's
// convention), penalizing instances whose counterpart lacks the relation.
func (a *Aligner) negativeEvidence(x store.Resource, x2 store.Resource) float64 {
	edges2 := a.o2.Edges(x2)
	pr2 := 1.0
	var eqBuf []weighted
	for _, e := range a.o1.Edges(x) {
		r := e.Rel
		funR := a.fun1[r]
		eqBuf = a.equalsOf1(e.To, eqBuf[:0])
		for _, link := range a.linkedRelations(r) {
			inner := 1.0
			for _, e2 := range edges2 {
				if e2.Rel != link.rel {
					continue
				}
				inner *= 1 - pEq(e.To, e2.To, eqBuf)
				if inner == 0 {
					break
				}
			}
			pr2 *= (1 - funR*link.p21*inner) *
				(1 - a.fun2[link.rel]*link.p12*inner)
			if pr2 == 0 {
				return 0
			}
		}
	}
	return pr2
}

// pEq returns P(y ≡ y”) given the precomputed equality candidates of y.
func pEq(y store.Node, y2 store.Node, cands []weighted) float64 {
	for _, w := range cands {
		if w.node == y2 {
			return w.p
		}
	}
	return 0
}

// equalsOf1 appends to buf the ontology-2 nodes equal to the ontology-1
// node y with positive probability: literal candidates come from the clamped
// literal matcher, resource candidates from the previous iteration's
// equalities (maximal assignment only, unless AllEqualities).
func (a *Aligner) equalsOf1(y store.Node, buf []weighted) []weighted {
	if y.IsLit() {
		for _, c := range a.cfg.MatcherTo2.Candidates(y.Lit()) {
			buf = append(buf, weighted{node: store.LitNode(c.Lit), p: c.P})
		}
		return buf
	}
	x := y.Res()
	if a.eq == nil {
		return buf
	}
	if a.cfg.AllEqualities {
		for _, c := range a.eq.fwd[x] {
			buf = append(buf, weighted{node: store.ResNode(c.To), p: c.P})
		}
		return buf
	}
	if m := a.eq.maxFwd[x]; m.To != NoResource {
		buf = append(buf, weighted{node: store.ResNode(m.To), p: m.P})
	}
	return buf
}

// equalsOf2 is the mirror of equalsOf1 for ontology-2 nodes.
func (a *Aligner) equalsOf2(y store.Node, buf []weighted) []weighted {
	if y.IsLit() {
		for _, c := range a.cfg.MatcherTo1.Candidates(y.Lit()) {
			buf = append(buf, weighted{node: store.LitNode(c.Lit), p: c.P})
		}
		return buf
	}
	x := y.Res()
	if a.eq == nil {
		return buf
	}
	if a.cfg.AllEqualities {
		for _, c := range a.eq.rev[x] {
			buf = append(buf, weighted{node: store.ResNode(c.To), p: c.P})
		}
		return buf
	}
	if m := a.eq.maxRev[x]; m.To != NoResource {
		buf = append(buf, weighted{node: store.ResNode(m.To), p: m.P})
	}
	return buf
}
