package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

// randomPair builds two random small ontologies over a shared value pool so
// that literal overlap (and thus alignment work) is guaranteed.
func randomPair(seed int64) (*store.Ontology, *store.Ontology) {
	r := rand.New(rand.NewSource(seed))
	lits := store.NewLiterals()
	build := func(name, ns string) *store.Ontology {
		b := store.NewBuilder(name, lits, nil)
		nInst := 4 + r.Intn(10)
		nRel := 2 + r.Intn(4)
		for i := 0; i < 4+r.Intn(25); i++ {
			subj := rdf.IRI(fmt.Sprintf("%s/i%d", ns, r.Intn(nInst)))
			rel := rdf.IRI(fmt.Sprintf("%s/r%d", ns, r.Intn(nRel)))
			var obj rdf.Term
			if r.Intn(2) == 0 {
				obj = rdf.Literal(fmt.Sprintf("v%d", r.Intn(12)))
			} else {
				obj = rdf.IRI(fmt.Sprintf("%s/i%d", ns, r.Intn(nInst)))
			}
			if err := b.Add(rdf.T(subj, rel, obj)); err != nil {
				panic(err)
			}
		}
		return b.Build()
	}
	return build("o1", "http://a.org"), build("o2", "http://b.org")
}

// Property: every probability anywhere in a result is within [0, 1], under
// every configuration variant.
func TestQuickResultProbabilityBounds(t *testing.T) {
	f := func(seed int64, negative, allEq bool) bool {
		o1, o2 := randomPair(seed)
		cfg := Config{
			MaxIterations:    4,
			NegativeEvidence: negative,
			AllEqualities:    allEq,
			Workers:          1 + int(seed&3),
		}
		res := New(o1, o2, cfg).Run()
		for _, a := range res.Instances {
			if a.P < 0 || a.P > 1 {
				return false
			}
		}
		for _, ra := range append(res.Relations12, res.Relations21...) {
			if ra.P < 0 || ra.P > 1 {
				return false
			}
		}
		for _, ca := range append(res.Classes12, res.Classes21...) {
			if ca.P < 0 || ca.P > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a maximal assignment never repeats an ontology-1 instance, and
// every assigned pair consists of instances of the correct ontologies.
func TestQuickAssignmentIsFunctional(t *testing.T) {
	f := func(seed int64) bool {
		o1, o2 := randomPair(seed)
		res := New(o1, o2, Config{MaxIterations: 3}).Run()
		seen := map[store.Resource]bool{}
		for _, a := range res.Instances {
			if seen[a.X1] {
				return false
			}
			seen[a.X1] = true
			if int(a.X1) >= o1.NumResources() || int(a.X2) >= o2.NumResources() {
				return false
			}
			if o1.IsClass(a.X1) || o2.IsClass(a.X2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: alignment is deterministic regardless of worker count.
func TestQuickParallelDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		o1, o2 := randomPair(seed)
		r1 := New(o1, o2, Config{MaxIterations: 3, Workers: 1}).Run()
		r8 := New(o1, o2, Config{MaxIterations: 3, Workers: 8}).Run()
		if len(r1.Instances) != len(r8.Instances) {
			return false
		}
		for i := range r1.Instances {
			if r1.Instances[i] != r8.Instances[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping the two ontologies preserves the bidirectional
// sub-relation score sets (Relations12 of one run equals Relations21 of the
// swapped run) on literal-only corpora, where the single-direction instance
// traversal is symmetric.
func TestQuickSwapSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lits := store.NewLiterals()
		build := func(name, ns string) *store.Ontology {
			b := store.NewBuilder(name, lits, nil)
			for i := 0; i < 5+r.Intn(15); i++ {
				subj := rdf.IRI(fmt.Sprintf("%s/i%d", ns, r.Intn(8)))
				rel := rdf.IRI(fmt.Sprintf("%s/r%d", ns, r.Intn(3)))
				obj := rdf.Literal(fmt.Sprintf("v%d", r.Intn(10)))
				if err := b.Add(rdf.T(subj, rel, obj)); err != nil {
					panic(err)
				}
			}
			return b.Build()
		}
		o1 := build("o1", "http://a.org")
		o2 := build("o2", "http://b.org")

		fwd := New(o1, o2, Config{MaxIterations: 1, Convergence: -1}).Run()
		rev := New(o2, o1, Config{MaxIterations: 1, Convergence: -1}).Run()

		key := func(src, dst *store.Ontology, as []RelAlignment) map[string]float64 {
			m := map[string]float64{}
			for _, ra := range as {
				m[src.RelationName(ra.Sub)+"|"+dst.RelationName(ra.Super)] = ra.P
			}
			return m
		}
		a := key(o1, o2, fwd.Relations12)
		b := key(o1, o2, rev.Relations21)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if d := b[k] - v; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a statement that shares a fresh unique literal between a
// specific pair never decreases that pair's equality probability
// (monotonicity of Equation 4 in positive evidence).
func TestQuickEvidenceMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		base := fmt.Sprintf(`<http://a.org/x> <http://a.org/p> "s%d" .`, seed&0xff)
		base2 := fmt.Sprintf(`<http://b.org/x> <http://b.org/q> "s%d" .`, seed&0xff)
		extra := fmt.Sprintf(`<http://a.org/x> <http://a.org/p2> "t%d" .`, seed&0xff)
		extra2 := fmt.Sprintf(`<http://b.org/x> <http://b.org/q2> "t%d" .`, seed&0xff)

		run := func(doc1, doc2 string) float64 {
			lits := store.NewLiterals()
			mk := func(name, doc string) *store.Ontology {
				ts, err := rdf.ParseNTriples(doc)
				if err != nil {
					panic(err)
				}
				b := store.NewBuilder(name, lits, nil)
				if err := b.AddAll(ts); err != nil {
					panic(err)
				}
				return b.Build()
			}
			res := New(mk("o1", doc1), mk("o2", doc2), Config{MaxIterations: 1, Convergence: -1}).Run()
			for _, a := range res.Instances {
				return a.P
			}
			return 0
		}
		p1 := run(base, base2)
		p2 := run(base+"\n"+extra, base2+"\n"+extra2)
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: ontologies where one side has no literals at all, or
// no statements, must align nothing without panicking.
func TestDegenerateOntologies(t *testing.T) {
	lits := store.NewLiterals()
	b1 := store.NewBuilder("o1", lits, nil)
	b1.Add(rdf.T(rdf.IRI("a:x"), rdf.IRI("a:p"), rdf.IRI("a:y")))
	b2 := store.NewBuilder("o2", lits, nil)
	b2.Add(rdf.T(rdf.IRI("b:x"), rdf.IRI("b:q"), rdf.Literal("only literals here")))
	res := New(b1.Build(), b2.Build(), Config{}).Run()
	if len(res.Instances) != 0 {
		t.Fatalf("no shared evidence, but instances = %v", res.Instances)
	}
}

// Failure injection: self-referential statements must not break traversal.
func TestSelfLoops(t *testing.T) {
	lits := store.NewLiterals()
	b1 := store.NewBuilder("o1", lits, nil)
	b1.Add(rdf.T(rdf.IRI("a:x"), rdf.IRI("a:knows"), rdf.IRI("a:x")))
	b1.Add(rdf.T(rdf.IRI("a:x"), rdf.IRI("a:mail"), rdf.Literal("x@e.com")))
	b2 := store.NewBuilder("o2", lits, nil)
	b2.Add(rdf.T(rdf.IRI("b:x"), rdf.IRI("b:friend"), rdf.IRI("b:x")))
	b2.Add(rdf.T(rdf.IRI("b:x"), rdf.IRI("b:mail"), rdf.Literal("x@e.com")))
	res := New(b1.Build(), b2.Build(), Config{MaxIterations: 4}).Run()
	if len(res.Instances) != 1 {
		t.Fatalf("self-loop corpus: %v", res.Instances)
	}
	if p := res.Instances[0].P; p < 0.9 {
		t.Fatalf("self-loop pair p = %v", p)
	}
}
