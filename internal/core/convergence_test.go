package core

// Convergence() invariants on a real fixpoint, observed through the
// OnIteration hook: the first iteration reports every assignment as new,
// score buckets always partition the assigned count, the pair movement
// (new − dropped) reconciles with the assignment delta between iterations,
// and a pre-run aligner reports all zeros.

import (
	"testing"

	"repro/internal/gen"
)

func TestConvergenceStatsInvariants(t *testing.T) {
	d := gen.Persons(gen.PersonsConfig{N: 60, Seed: 11})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}

	var stats []ConvergenceStats
	a, err := NewChecked(o1, o2, Config{
		OnIteration: func(it int, a *Aligner) {
			s := a.Convergence()
			if s.Iteration != it {
				t.Errorf("Convergence().Iteration = %d inside OnIteration(%d)", s.Iteration, it)
			}
			stats = append(stats, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before any iteration everything is zero.
	if s := a.Convergence(); s != (ConvergenceStats{}) {
		t.Errorf("pre-run Convergence() = %+v, want zero", s)
	}

	if a.Run() == nil {
		t.Fatal("no result")
	}
	if len(stats) < 2 {
		t.Fatalf("fixpoint ran %d iterations, need >= 2 for delta checks", len(stats))
	}

	first := stats[0]
	if first.Assigned == 0 {
		t.Fatal("first iteration assigned nothing")
	}
	if first.NewPairs != first.Assigned || first.ChangedPairs != 0 || first.DroppedPairs != 0 {
		t.Errorf("first iteration %+v: all assignments must be new", first)
	}

	prevAssigned := 0
	for i, s := range stats {
		if s.Iteration != i+1 {
			t.Errorf("stats[%d].Iteration = %d, want monotone 1-based", i, s.Iteration)
		}
		sum := 0
		for _, b := range s.ScoreBuckets {
			if b < 0 {
				t.Errorf("iteration %d: negative bucket in %v", s.Iteration, s.ScoreBuckets)
			}
			sum += b
		}
		if sum != s.Assigned {
			t.Errorf("iteration %d: buckets sum %d != assigned %d", s.Iteration, sum, s.Assigned)
		}
		if got := prevAssigned + s.NewPairs - s.DroppedPairs; got != s.Assigned {
			t.Errorf("iteration %d: prev %d + new %d - dropped %d = %d, want assigned %d",
				s.Iteration, prevAssigned, s.NewPairs, s.DroppedPairs, got, s.Assigned)
		}
		prevAssigned = s.Assigned
	}

	// The final iteration converged: nothing moved relative to the one
	// before, matching the changed-fraction stop criterion.
	last := stats[len(stats)-1]
	if last.ChangedFraction > 0.01 {
		t.Errorf("final iteration changed fraction %v, want converged", last.ChangedFraction)
	}
}
