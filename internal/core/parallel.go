package core

import "sync"

// parallelFor runs fn(i) for i in [0, n) across the given number of worker
// goroutines. Work is dealt in contiguous chunks to keep per-item overhead
// low; fn must be safe to call concurrently for distinct i.
//
// The paper's implementation was single-threaded and IO-bound on an SSD
// (Section 5.2); our ontologies are memory-resident, so the per-instance
// equality computations parallelize trivially and this substitutes for the
// paper's fast-storage requirement.
func parallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 64
	var next int
	var mu sync.Mutex
	take := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo := next
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
