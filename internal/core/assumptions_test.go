package core

// Tests documenting the model assumptions of Section 3 of the paper:
// the domain-restricted unique-name assumption (footnote 10 — the OAEI
// third dataset violates it and the paper skips it), the deductive-closure
// assumption, and the clamped literal probabilities.

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// PARIS never aligns two entities of the SAME ontology, even when they are
// obvious duplicates: the unique-name assumption restricts equivalence to
// cross-ontology pairs (Section 3, "a given ontology does not contain
// equivalent resources"). Cross-ontology alignment keeps working around the
// duplicates.
func TestUniqueNameAssumption(t *testing.T) {
	doc1 := `
<e:dup1> <e:email> "dup@x.com" .
<e:dup2> <e:email> "dup@x.com" .
<e:clean> <e:email> "clean@x.com" .
`
	doc2 := `
<f:dup> <f:mail> "dup@x.com" .
<f:clean> <f:mail> "clean@x.com" .
`
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 3}).Run()

	for _, a := range res.Instances {
		k1, k2 := o1.ResourceKey(a.X1), o2.ResourceKey(a.X2)
		// Every assignment must be cross-ontology by construction.
		if k1[1] != 'e' || k2[1] != 'f' {
			t.Fatalf("intra-ontology alignment emitted: %s ≡ %s", k1, k2)
		}
	}
	// The clean pair must still align despite the duplicates nearby.
	got, p := assignmentOf(t, res, "e:clean")
	if got != key("f:clean") || p < 0.9 {
		t.Fatalf("clean pair lost: %q p=%v", got, p)
	}
	// Both duplicates compete for f:dup; each may be assigned to it (the
	// gold standard decides which is right — PARIS cannot know), but the
	// duplicates must never be merged with each other. That is implicit in
	// the output type, so here we just assert both candidates exist.
	dup1, _ := o1.LookupResource(key("e:dup1"))
	dup2, _ := o1.LookupResource(key("e:dup2"))
	a := New(o1, o2, Config{MaxIterations: 3})
	a.Run()
	if len(a.Candidates(dup1)) == 0 || len(a.Candidates(dup2)) == 0 {
		t.Fatal("duplicate entities should still have cross-ontology candidates")
	}
}

// The functionality of a relation is computed upfront per ontology
// (Section 5.1): duplicates inside one ontology depress the inverse
// functionality of their shared attribute, weakening the evidence — the
// exact mechanism that makes intra-ontology duplicates harmful.
func TestDuplicatesDepressFunctionality(t *testing.T) {
	clean := mustBuildOntology(t, `
<e:a> <e:email> "a@x.com" .
<e:b> <e:email> "b@x.com" .
`)
	dups := mustBuildOntology(t, `
<e:a> <e:email> "a@x.com" .
<e:a2> <e:email> "a@x.com" .
<e:b> <e:email> "b@x.com" .
`)
	rClean, _ := clean.LookupRelation("e:email")
	rDups, _ := dups.LookupRelation("e:email")
	if clean.InvFun(rClean) != 1 {
		t.Fatalf("clean fun⁻¹ = %v, want 1", clean.InvFun(rClean))
	}
	if dups.InvFun(rDups) >= 1 {
		t.Fatalf("duplicated fun⁻¹ = %v, want < 1", dups.InvFun(rDups))
	}
}

// The model never changes the probability that a statement holds — aligning
// resources cannot make an RDFS ontology inconsistent (Section 5.1). We
// check the proxy: input ontologies are immutable across a run.
func TestOntologiesImmutableAcrossRun(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	facts1, facts2 := o1.NumFacts(), o2.NumFacts()
	rels1, rels2 := o1.NumRelations(), o2.NumRelations()
	New(o1, o2, Config{MaxIterations: 5}).Run()
	if o1.NumFacts() != facts1 || o2.NumFacts() != facts2 ||
		o1.NumRelations() != rels1 || o2.NumRelations() != rels2 {
		t.Fatal("alignment mutated an input ontology")
	}
}

func mustBuildOntology(t *testing.T, doc string) *store.Ontology {
	t.Helper()
	triples, err := rdf.ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := store.NewBuilder("t", store.NewLiterals(), nil)
	if err := b.AddAll(triples); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}
