package core

// Snapshot slicing for sharded serving (internal/shard): one published
// ResultSnapshot is split into N per-shard slices, each carrying exactly the
// instance assignments a shard needs to answer lookups for the keys it owns.

// Split partitions the snapshot into n slices in a single pass over the
// instance table. owner maps an entity key to the shard that serves lookups
// for it; it must be deterministic and return values in [0, n).
//
// An assignment is placed on the shard owning its ontology-1 key and, when
// different, duplicated on the shard owning its ontology-2 key — so forward
// (kb=1) and reverse (kb=2) lookups each find every assignment they could
// resolve, and per-shard reverse deduplication (several ontology-1 entities
// sharing one ontology-2 match) sees the same candidate set as a single
// process. Relative instance order is preserved within each slice, keeping
// normalized-lookup results in the order a single process returns them.
//
// The relation and class tables are schema-sized, not KB-sized, so every
// slice carries a full copy (deep-copied: the serving layer sorts them in
// place) and any one shard can answer /v1/relations and /v1/classes for the
// whole deployment. Header fields — KB names, iteration statistics,
// timestamps, and lineage — are replicated verbatim.
func (s *ResultSnapshot) Split(n int, owner func(key string) int) []*ResultSnapshot {
	out := make([]*ResultSnapshot, n)
	for i := range out {
		out[i] = &ResultSnapshot{
			KB1:         s.KB1,
			KB2:         s.KB2,
			Relations12: append([]SnapshotRelation(nil), s.Relations12...),
			Relations21: append([]SnapshotRelation(nil), s.Relations21...),
			Classes12:   append([]SnapshotClass(nil), s.Classes12...),
			Classes21:   append([]SnapshotClass(nil), s.Classes21...),
			Iterations:  append([]IterationStats(nil), s.Iterations...),
			ClassTime:   s.ClassTime,
			CreatedAt:   s.CreatedAt,
			Base:        s.Base,
			DeltaDigest: s.DeltaDigest,
			DeltaAdded:  s.DeltaAdded,
		}
	}
	for _, a := range s.Instances {
		o1 := owner(a.Key1)
		out[o1].Instances = append(out[o1].Instances, a)
		if o2 := owner(a.Key2); o2 != o1 {
			out[o2].Instances = append(out[o2].Instances, a)
		}
	}
	return out
}
