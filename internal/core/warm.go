package core

import (
	"strings"

	"repro/internal/store"
)

// This file implements warm-started alignment: seeding a fresh fixpoint from
// the converged state of a previous run instead of from the neutral prior θ
// (Section 5.1). When the ontologies have only grown by a small delta since
// the prior run, the seeded state is already near the fixpoint, so the run
// converges in a fraction of the passes a cold start needs — the core of
// incremental re-alignment.

// NewWarm wires two ontologies into an Aligner seeded from a prior result
// snapshot: the instance-equality table starts from the snapshot's maximal
// assignments and the sub-relation tables from its relation scores, both
// resolved by key through the (possibly delta-extended) ontologies. Keys the
// ontologies no longer know are skipped silently; a nil prior degrades to a
// cold NewChecked.
//
// The first warm iteration therefore runs Equation (13) against converged
// equalities and Equation (12) scores rather than the bootstrap θ, and the
// convergence criterion compares against the seeded assignments — an
// unchanged KB converges in a single pass.
func NewWarm(o1, o2 *store.Ontology, cfg Config, prior *ResultSnapshot) (*Aligner, error) {
	a, err := NewChecked(o1, o2, cfg)
	if err != nil {
		return nil, err
	}
	if prior == nil {
		return a, nil
	}

	eq := newEqStore(o1.NumResources(), o2.NumResources())
	for _, sa := range prior.Instances {
		x1, ok1 := o1.LookupResource(sa.Key1)
		x2, ok2 := o2.LookupResource(sa.Key2)
		if ok1 && ok2 {
			eq.setFwd(x1, []Cand{{To: x2, P: sa.P}})
		}
	}
	eq.finish()
	a.eq = eq

	rel := &subRelStore{
		to2: make([]map[store.Relation]float64, o1.NumRelations()),
		to1: make([]map[store.Relation]float64, o2.NumRelations()),
	}
	seedScores(rel.to2, o1, o2, prior.Relations12)
	seedScores(rel.to1, o2, o1, prior.Relations21)
	a.rel = rel
	return a, nil
}

// seedScores resolves snapshot relation names against the sub and super
// ontologies and installs the scores. Snapshots store inverse rows
// explicitly (RelationAlignments enumerates them), so no derivation is
// needed here.
func seedScores(out []map[store.Relation]float64, sub, super *store.Ontology, scores []SnapshotRelation) {
	for _, sr := range scores {
		r1, ok1 := lookupRelationName(sub, sr.Sub)
		r2, ok2 := lookupRelationName(super, sr.Super)
		if !ok1 || !ok2 {
			continue
		}
		if out[r1] == nil {
			out[r1] = make(map[store.Relation]float64)
		}
		out[r1][r2] = sr.P
	}
}

// inverseMarker is the suffix store.Ontology appends to inverse relation
// display names (see Builder).
const inverseMarker = "⁻¹"

// lookupRelationName resolves a snapshot relation name, which is either a
// base relation IRI or an IRI with the inverse marker appended.
func lookupRelationName(o *store.Ontology, name string) (store.Relation, bool) {
	if base, isInv := strings.CutSuffix(name, inverseMarker); isInv {
		r, ok := o.LookupRelation(base)
		return r.Inverse(), ok
	}
	r, ok := o.LookupRelation(name)
	return r, ok
}
