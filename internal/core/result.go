package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/store"
)

// Assignment is a maximal instance alignment: the ontology-2 instance with
// the highest equality probability for an ontology-1 instance.
type Assignment struct {
	X1 store.Resource
	X2 store.Resource
	P  float64
}

// RelAlignment is one directed sub-relation score Pr(Sub ⊆ Super). Sub lives
// in one ontology and Super in the other; which is which depends on the
// direction the alignment was reported for.
type RelAlignment struct {
	Sub   store.Relation
	Super store.Relation
	P     float64
}

// ClassAlignment is one directed subclass score Pr(Sub ⊆ Super).
type ClassAlignment struct {
	Sub   store.Resource
	Super store.Resource
	P     float64
}

// Result is the outcome of an alignment run.
type Result struct {
	O1, O2 *store.Ontology

	// Instances holds the final maximal assignments (ontology 1 -> 2).
	Instances []Assignment

	// Relations12 holds Pr(r ⊆ r') for r in ontology 1, r' in ontology 2;
	// Relations21 the opposite direction. Only scores above the threshold
	// are stored.
	Relations12, Relations21 []RelAlignment

	// Classes12 holds Pr(c ⊆ c') for c in ontology 1; Classes21 the
	// opposite direction.
	Classes12, Classes21 []ClassAlignment

	Iterations []IterationStats
	ClassTime  time.Duration
}

// InstanceMap returns the assignment as a map from ontology-1 resource keys
// to ontology-2 resource keys, the form gold standards use.
func (r *Result) InstanceMap() map[string]string {
	m := make(map[string]string, len(r.Instances))
	for _, a := range r.Instances {
		m[r.O1.ResourceKey(a.X1)] = r.O2.ResourceKey(a.X2)
	}
	return m
}

// MaxRelAlignments reduces a directed alignment list to the maximally
// assigned super-relation per sub-relation (the paper's evaluation considers
// "only the maximally assigned relation").
func MaxRelAlignments(as []RelAlignment) []RelAlignment {
	best := map[store.Relation]RelAlignment{}
	for _, a := range as {
		if b, ok := best[a.Sub]; !ok || a.P > b.P || (a.P == b.P && a.Super < b.Super) {
			best[a.Sub] = a
		}
	}
	out := make([]RelAlignment, 0, len(best))
	for _, a := range best {
		out = append(out, a)
	}
	sortRelAlignments(out)
	return out
}

// FilterClassAlignments returns the alignments with probability of at least
// the threshold (used for the Figure 1/2 sweeps).
func FilterClassAlignments(as []ClassAlignment, threshold float64) []ClassAlignment {
	out := make([]ClassAlignment, 0, len(as))
	for _, a := range as {
		if a.P >= threshold {
			out = append(out, a)
		}
	}
	return out
}

// EquivalentClasses returns the class pairs whose inclusion holds in both
// directions with probability at least threshold — the class-equivalence
// view (c ≡ c' iff c ⊆ c' and c' ⊆ c) derived from the subclass scores.
func (r *Result) EquivalentClasses(threshold float64) []ClassAlignment {
	back := make(map[[2]store.Resource]float64, len(r.Classes21))
	for _, ca := range r.Classes21 {
		back[[2]store.Resource{ca.Super, ca.Sub}] = ca.P
	}
	var out []ClassAlignment
	for _, ca := range r.Classes12 {
		if ca.P < threshold {
			continue
		}
		if p2 := back[[2]store.Resource{ca.Sub, ca.Super}]; p2 >= threshold {
			p := ca.P
			if p2 < p {
				p = p2
			}
			out = append(out, ClassAlignment{Sub: ca.Sub, Super: ca.Super, P: p})
		}
	}
	SortClassAlignments(out)
	return out
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("alignment %s vs %s: %d instance assignments, %d+%d relation scores, %d+%d class scores, %d iterations",
		r.O1.Name(), r.O2.Name(), len(r.Instances),
		len(r.Relations12), len(r.Relations21),
		len(r.Classes12), len(r.Classes21), len(r.Iterations))
}

func sortRelAlignments(as []RelAlignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Sub != as[j].Sub {
			return as[i].Sub < as[j].Sub
		}
		if as[i].P != as[j].P {
			return as[i].P > as[j].P
		}
		return as[i].Super < as[j].Super
	})
}

// SortClassAlignments orders class alignments by sub-class then descending
// probability, for stable reporting.
func SortClassAlignments(as []ClassAlignment) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Sub != as[j].Sub {
			return as[i].Sub < as[j].Sub
		}
		if as[i].P != as[j].P {
			return as[i].P > as[j].P
		}
		return as[i].Super < as[j].Super
	})
}
