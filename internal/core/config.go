// Package core implements the PARIS algorithm: the probabilistic, holistic
// alignment of instances, relations, and classes across two RDFS ontologies
// (Sections 4 and 5 of the paper).
//
// The entry point is New, which wires two frozen store.Ontology values into
// an Aligner; Run executes the fixpoint of instance-equivalence and
// sub-relation passes and finishes with the subclass pass.
package core

import (
	"runtime"

	"repro/internal/literal"
	"repro/internal/store"
)

// Default parameter values. The paper's central claim (Section 5.4) is that
// none of these require dataset-specific tuning.
const (
	// DefaultTheta is the initial sub-relation probability θ used to
	// bootstrap the very first iteration and the truncation threshold below
	// which probabilities are treated as zero (Section 5.1-5.2).
	DefaultTheta = 0.1
	// DefaultMaxIterations bounds the fixpoint; the paper's runs converge
	// in 2-4 iterations.
	DefaultMaxIterations = 10
	// DefaultConvergence is the fraction of entities that may change their
	// maximal assignment in a converged iteration (Section 6.1: "less than
	// 1% of the entities changed their maximal assignment").
	DefaultConvergence = 0.01
	// DefaultPairLimit caps the number of statement pairs evaluated per
	// relation or class in the sub-relation and subclass equations
	// (Section 5.2: "we limit the number of pairs ... to 10,000").
	DefaultPairLimit = 10000
	// DefaultHubLimit caps the fan-out explored through a single
	// second-argument during the instance pass. Hubs with more statements
	// than this are expanded only partially; such relations have tiny
	// inverse functionality, so the skipped evidence is negligible.
	DefaultHubLimit = 10000
)

// Config controls an alignment run. The zero value is usable: every field
// falls back to the paper's defaults.
type Config struct {
	// Theta is the bootstrap sub-relation score of the very first
	// iteration (Section 5.1). Zero means DefaultTheta. Section 6.3 shows
	// the final scores do not depend on it.
	Theta float64

	// Truncation is the probability below which equalities and
	// sub-relation scores are treated as zero and not stored (Section
	// 5.2). Zero means DefaultTheta (the paper reuses θ for both roles);
	// negative disables truncation.
	Truncation float64

	// MaxIterations bounds the number of fixpoint iterations. Zero means
	// DefaultMaxIterations.
	MaxIterations int

	// Convergence is the changed-assignment fraction under which the
	// fixpoint stops. Zero means DefaultConvergence; negative disables
	// early stopping.
	Convergence float64

	// NegativeEvidence enables Equation (14): after the positive fixpoint
	// converges, one extra pass multiplies every candidate by the
	// counter-evidence factor Pr2. Running the factor earlier would feed
	// it immature equality estimates — its inner products treat a weakly
	// established equality as a near-conflict — and suppress all matches,
	// which is exactly the failure mode Section 6.3 reports on raw
	// restaurant literals.
	NegativeEvidence bool

	// AllEqualities makes the sub-relation, subclass, and bridge lookups
	// use every stored equality instead of only the previous maximal
	// assignment (the Section 6.3 ablation; slower, near-identical
	// results).
	AllEqualities bool

	// PairLimit caps statement pairs per relation/class in Equations (12)
	// and (17). Zero means DefaultPairLimit; negative disables the cap.
	PairLimit int

	// HubLimit caps fan-out through one second-argument in the instance
	// pass. Zero means DefaultHubLimit; negative disables the cap.
	HubLimit int

	// Workers is the number of goroutines used by the parallel passes.
	// Zero means GOMAXPROCS.
	Workers int

	// FunMode selects the global-functionality definition (Appendix A).
	// The default is the paper's harmonic mean.
	FunMode store.FunMode

	// MatcherTo2 produces literal-equality candidates from ontology-1
	// literals into ontology 2; MatcherTo1 is the reverse direction. Nil
	// means the identity matcher over the shared literal table (the
	// paper's default equality function).
	MatcherTo2 literal.Matcher
	MatcherTo1 literal.Matcher

	// OnIteration, when non-nil, is invoked after every completed fixpoint
	// iteration with a snapshot of the aligner state. It is called on the
	// Run goroutine; the aligner must not be mutated from the callback.
	OnIteration func(it int, a *Aligner)
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Theta == 0 {
		c.Theta = DefaultTheta
	}
	if c.Truncation == 0 {
		c.Truncation = DefaultTheta
	}
	if c.Truncation < 0 {
		c.Truncation = 0
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = DefaultMaxIterations
	}
	if c.Convergence == 0 {
		c.Convergence = DefaultConvergence
	}
	if c.PairLimit == 0 {
		c.PairLimit = DefaultPairLimit
	}
	if c.PairLimit < 0 {
		c.PairLimit = int(^uint(0) >> 1)
	}
	if c.HubLimit == 0 {
		c.HubLimit = DefaultHubLimit
	}
	if c.HubLimit < 0 {
		c.HubLimit = int(^uint(0) >> 1)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}
