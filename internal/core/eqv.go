package core

import (
	"sort"

	"repro/internal/store"
)

// NoResource marks the absence of a maximal assignment.
const NoResource = store.Resource(^uint32(0))

// Cand is one equality candidate: a resource of the other ontology and the
// probability that it is equivalent.
type Cand struct {
	To store.Resource
	P  float64
}

// eqStore holds the sparse instance-equality table of one iteration:
// candidate lists in both directions plus the maximal assignments
// (Section 4.2: "the instance from the second ontology with the maximum
// score"). False and unknown equalities are not stored, which the formulas
// cannot distinguish anyway (Section 5.2).
type eqStore struct {
	fwd [][]Cand // ontology-1 resource -> candidates in ontology 2
	rev [][]Cand // ontology-2 resource -> candidates in ontology 1

	maxFwd []Cand // per ontology-1 resource; To == NoResource when absent
	maxRev []Cand
}

func newEqStore(n1, n2 int) *eqStore {
	e := &eqStore{
		fwd:    make([][]Cand, n1),
		rev:    make([][]Cand, n2),
		maxFwd: make([]Cand, n1),
		maxRev: make([]Cand, n2),
	}
	for i := range e.maxFwd {
		e.maxFwd[i] = Cand{To: NoResource}
	}
	for i := range e.maxRev {
		e.maxRev[i] = Cand{To: NoResource}
	}
	return e
}

// setFwd installs the candidate list of one ontology-1 resource (sorted by
// descending probability, ties broken by ID for determinism) and records the
// maximal assignment.
func (e *eqStore) setFwd(x store.Resource, cands []Cand) {
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].P != cands[j].P {
			return cands[i].P > cands[j].P
		}
		return cands[i].To < cands[j].To
	})
	e.fwd[x] = cands
	e.maxFwd[x] = cands[0]
}

// finish builds the reverse index and reverse maximal assignments from the
// forward candidate lists.
func (e *eqStore) finish() {
	for x, cands := range e.fwd {
		for _, c := range cands {
			e.rev[c.To] = append(e.rev[c.To], Cand{To: store.Resource(x), P: c.P})
		}
	}
	for y, cands := range e.rev {
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].P != cands[j].P {
				return cands[i].P > cands[j].P
			}
			return cands[i].To < cands[j].To
		})
		e.rev[y] = cands
		e.maxRev[y] = cands[0]
	}
}

// changedFraction compares maximal assignments against a previous iteration
// and returns the fraction of entities whose target changed, measured over
// the entities assigned in either iteration (Section 5.1's convergence
// criterion).
func (e *eqStore) changedFraction(prev *eqStore) float64 {
	if prev == nil {
		return 1
	}
	changed, total := 0, 0
	for x := range e.maxFwd {
		cur, old := e.maxFwd[x].To, prev.maxFwd[x].To
		if cur == NoResource && old == NoResource {
			continue
		}
		total++
		if cur != old {
			changed++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(changed) / float64(total)
}

// numAssigned returns the number of ontology-1 resources with an assignment.
func (e *eqStore) numAssigned() int {
	n := 0
	for _, c := range e.maxFwd {
		if c.To != NoResource {
			n++
		}
	}
	return n
}
