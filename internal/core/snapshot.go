package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/store"
)

// ResultSnapshot is the portable, ontology-independent form of a Result:
// every resource and relation is denoted by its key string rather than an
// interned ID, so a snapshot can be persisted, shipped, and served without
// the ontologies it was computed from. This is the unit the alignment
// service stores per completed job (the role Berkeley DB tables played for
// the original PARIS between runs).
type ResultSnapshot struct {
	// KB1, KB2 are the display names of the two aligned ontologies.
	KB1, KB2 string

	// Instances holds the maximal assignments, ontology-1 key to
	// ontology-2 key.
	Instances []SnapshotAssignment

	// Relations12 holds Pr(r ⊆ r') for r in ontology 1; Relations21 the
	// opposite direction. Names are relation IRIs ("-" prefixed when the
	// relation is an inverse, matching store.RelationName).
	Relations12, Relations21 []SnapshotRelation

	// Classes12 holds Pr(c ⊆ c') for c in ontology 1; Classes21 the
	// opposite direction.
	Classes12, Classes21 []SnapshotClass

	// Iterations carries the fixpoint statistics for reporting.
	Iterations []IterationStats

	// ClassTime is the duration of the final subclass pass.
	ClassTime time.Duration

	// CreatedAt records when the snapshot was published (set by the
	// alignment service, not by Result.Snapshot). Zero means unknown.
	CreatedAt time.Time

	// Lineage of incrementally derived snapshots (set by the alignment
	// service when publishing a delta re-alignment, zero for cold runs):
	// Base is the snapshot ID this run was warm-started from, DeltaDigest a
	// content digest of the applied delta batch, and DeltaAdded the number
	// of statements the delta actually added across both ontologies.
	Base        string
	DeltaDigest string
	DeltaAdded  int
}

// SnapshotAssignment is one instance assignment by resource key.
type SnapshotAssignment struct {
	Key1, Key2 string
	P          float64
}

// SnapshotRelation is one directed sub-relation score by relation name.
type SnapshotRelation struct {
	Sub, Super string
	P          float64
}

// SnapshotClass is one directed subclass score by class key.
type SnapshotClass struct {
	Sub, Super string
	P          float64
}

// Snapshot converts the result into its portable form, resolving every
// interned ID through the result's ontologies.
func (r *Result) Snapshot() *ResultSnapshot {
	s := &ResultSnapshot{
		KB1:        r.O1.Name(),
		KB2:        r.O2.Name(),
		Iterations: append([]IterationStats(nil), r.Iterations...),
		ClassTime:  r.ClassTime,
	}
	s.Instances = make([]SnapshotAssignment, 0, len(r.Instances))
	for _, a := range r.Instances {
		s.Instances = append(s.Instances, SnapshotAssignment{
			Key1: r.O1.ResourceKey(a.X1),
			Key2: r.O2.ResourceKey(a.X2),
			P:    a.P,
		})
	}
	rels := func(as []RelAlignment, sub, super *store.Ontology) []SnapshotRelation {
		out := make([]SnapshotRelation, 0, len(as))
		for _, ra := range as {
			out = append(out, SnapshotRelation{
				Sub:   sub.RelationName(ra.Sub),
				Super: super.RelationName(ra.Super),
				P:     ra.P,
			})
		}
		return out
	}
	s.Relations12 = rels(r.Relations12, r.O1, r.O2)
	s.Relations21 = rels(r.Relations21, r.O2, r.O1)
	classes := func(as []ClassAlignment, sub, super *store.Ontology) []SnapshotClass {
		out := make([]SnapshotClass, 0, len(as))
		for _, ca := range as {
			out = append(out, SnapshotClass{
				Sub:   sub.ResourceKey(ca.Sub),
				Super: super.ResourceKey(ca.Super),
				P:     ca.P,
			})
		}
		return out
	}
	s.Classes12 = classes(r.Classes12, r.O1, r.O2)
	s.Classes21 = classes(r.Classes21, r.O2, r.O1)
	return s
}

// Binary snapshot format, versioned for forward evolution:
//
//	magic "PSNAP" (5) version byte (1)
//	string  = uvarint length + bytes
//	float64 = 8 bytes little-endian
//	KB1 KB2
//	instances:   uvarint count, then (Key1 Key2 P) each
//	relations12: uvarint count, then (Sub Super P) each
//	relations21, classes12, classes21 likewise
//	iterations:  uvarint count, then
//	             (uvarint Iteration, ChangedFraction, uvarint Assigned,
//	              varint InstanceTime, varint RelationTime) each
//	varint ClassTime
//	varint CreatedAt as Unix nanoseconds (0 = unset)
//	version ≥ 2 appends the lineage: Base DeltaDigest (strings) and
//	uvarint DeltaAdded

const (
	snapshotMagic   = "PSNAP"
	snapshotVersion = 2
)

// MarshalBinary encodes the snapshot in the versioned binary format.
func (s *ResultSnapshot) MarshalBinary() ([]byte, error) {
	var b []byte
	b = append(b, snapshotMagic...)
	b = append(b, snapshotVersion)
	b = appendString(b, s.KB1)
	b = appendString(b, s.KB2)
	b = binary.AppendUvarint(b, uint64(len(s.Instances)))
	for _, a := range s.Instances {
		b = appendString(b, a.Key1)
		b = appendString(b, a.Key2)
		b = appendFloat64(b, a.P)
	}
	for _, rs := range [][]SnapshotRelation{s.Relations12, s.Relations21} {
		b = binary.AppendUvarint(b, uint64(len(rs)))
		for _, ra := range rs {
			b = appendString(b, ra.Sub)
			b = appendString(b, ra.Super)
			b = appendFloat64(b, ra.P)
		}
	}
	for _, cs := range [][]SnapshotClass{s.Classes12, s.Classes21} {
		b = binary.AppendUvarint(b, uint64(len(cs)))
		for _, ca := range cs {
			b = appendString(b, ca.Sub)
			b = appendString(b, ca.Super)
			b = appendFloat64(b, ca.P)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Iterations)))
	for _, it := range s.Iterations {
		b = binary.AppendUvarint(b, uint64(it.Iteration))
		b = appendFloat64(b, it.ChangedFraction)
		b = binary.AppendUvarint(b, uint64(it.Assigned))
		b = binary.AppendVarint(b, int64(it.InstanceTime))
		b = binary.AppendVarint(b, int64(it.RelationTime))
	}
	b = binary.AppendVarint(b, int64(s.ClassTime))
	var created int64
	if !s.CreatedAt.IsZero() {
		created = s.CreatedAt.UnixNano()
	}
	b = binary.AppendVarint(b, created)
	b = appendString(b, s.Base)
	b = appendString(b, s.DeltaDigest)
	b = binary.AppendUvarint(b, uint64(s.DeltaAdded))
	return b, nil
}

// UnmarshalBinary decodes a snapshot previously encoded by MarshalBinary.
func (s *ResultSnapshot) UnmarshalBinary(data []byte) error {
	if len(data) < len(snapshotMagic)+1 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("core: not a snapshot (bad magic)")
	}
	version := data[len(snapshotMagic)]
	if version < 1 || version > snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	d := &snapDecoder{buf: data[len(snapshotMagic)+1:]}
	*s = ResultSnapshot{}
	s.KB1 = d.string()
	s.KB2 = d.string()
	n := d.count()
	if n > 0 {
		s.Instances = make([]SnapshotAssignment, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		s.Instances = append(s.Instances, SnapshotAssignment{
			Key1: d.string(), Key2: d.string(), P: d.float64(),
		})
	}
	for _, dst := range []*[]SnapshotRelation{&s.Relations12, &s.Relations21} {
		n = d.count()
		if n > 0 {
			*dst = make([]SnapshotRelation, 0, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			*dst = append(*dst, SnapshotRelation{
				Sub: d.string(), Super: d.string(), P: d.float64(),
			})
		}
	}
	for _, dst := range []*[]SnapshotClass{&s.Classes12, &s.Classes21} {
		n = d.count()
		if n > 0 {
			*dst = make([]SnapshotClass, 0, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			*dst = append(*dst, SnapshotClass{
				Sub: d.string(), Super: d.string(), P: d.float64(),
			})
		}
	}
	n = d.count()
	if n > 0 {
		s.Iterations = make([]IterationStats, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		s.Iterations = append(s.Iterations, IterationStats{
			Iteration:       int(d.uvarint()),
			ChangedFraction: d.float64(),
			Assigned:        int(d.uvarint()),
			InstanceTime:    time.Duration(d.varint()),
			RelationTime:    time.Duration(d.varint()),
		})
	}
	s.ClassTime = time.Duration(d.varint())
	if created := d.varint(); created != 0 {
		s.CreatedAt = time.Unix(0, created).UTC()
	}
	if version >= 2 {
		s.Base = d.string()
		s.DeltaDigest = d.string()
		s.DeltaAdded = int(d.uvarint())
	}
	if d.err != nil {
		return fmt.Errorf("core: corrupt snapshot: %w", d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("core: corrupt snapshot: %d trailing bytes", len(d.buf))
	}
	return nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat64(b []byte, f float64) []byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], math.Float64bits(f))
	return append(b, v[:]...)
}

// snapDecoder reads the snapshot wire format, latching the first error so
// the field-by-field decode above stays linear.
type snapDecoder struct {
	buf []byte
	err error
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *snapDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection length, bounding it by the bytes that remain so
// a corrupt length cannot drive a huge allocation.
func (d *snapDecoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)) {
		d.err = fmt.Errorf("count %d exceeds remaining %d bytes", v, len(d.buf))
		return 0
	}
	return int(v)
}

func (d *snapDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *snapDecoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
	d.buf = d.buf[8:]
	return f
}
