package core

import (
	"math"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// pair builds two ontologies from N-Triples documents sharing one literal
// table, as an alignment requires.
func pair(t *testing.T, doc1, doc2 string) (*store.Ontology, *store.Ontology) {
	t.Helper()
	lits := store.NewLiterals()
	build := func(name, doc string) *store.Ontology {
		triples, err := rdf.ParseNTriples(doc)
		if err != nil {
			t.Fatal(err)
		}
		b := store.NewBuilder(name, lits, nil)
		if err := b.AddAll(triples); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}
	return build("o1", doc1), build("o2", doc2)
}

// key returns the resource key for an IRI string.
func key(iri string) string { return rdf.IRI(iri).Key() }

// assignmentOf returns the maximal assignment of the named o1 instance.
func assignmentOf(t *testing.T, res *Result, iri1 string) (string, float64) {
	t.Helper()
	x1, ok := res.O1.LookupResource(key(iri1))
	if !ok {
		t.Fatalf("%s not in o1", iri1)
	}
	for _, a := range res.Instances {
		if a.X1 == x1 {
			return res.O2.ResourceKey(a.X2), a.P
		}
	}
	return "", 0
}

const o1Email = `
<e:x> <e:email> "x@example.com" .
`

const o2Email = `
<f:x> <f:mail> "x@example.com" .
`

// One shared e-mail via a perfectly inverse-functional relation. First
// iteration: P = 1 - (1-θ)² = 0.19; after the sub-relation pass finds
// P(r⊆r') = P(r'⊆r) = 1, the second iteration yields P = 1.
func TestEmailBridgeHandComputed(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)

	a := New(o1, o2, Config{MaxIterations: 1, Convergence: -1})
	res := a.Run()
	got, p := assignmentOf(t, res, "e:x")
	if got != key("f:x") {
		t.Fatalf("assigned to %q", got)
	}
	want := 1 - (1-0.1)*(1-0.1)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("iteration-1 probability = %v, want %v", p, want)
	}

	a2 := New(o1, o2, Config{MaxIterations: 3})
	res2 := a2.Run()
	_, p2 := assignmentOf(t, res2, "e:x")
	if p2 != 1 {
		t.Fatalf("converged probability = %v, want 1", p2)
	}
	// The sub-relation scores must be 1 in both directions.
	rels := MaxRelAlignments(res2.Relations12)
	if len(rels) != 2 { // email and email⁻¹
		t.Fatalf("relation alignments = %v", rels)
	}
	for _, ra := range rels {
		if ra.P != 1 {
			t.Errorf("P(%s ⊆ %s) = %v, want 1",
				o1.RelationName(ra.Sub), o2.RelationName(ra.Super), ra.P)
		}
	}
}

// A shared low-inverse-functionality value (a city lived in by many) gives a
// strictly weaker equality than a shared high-inverse-functionality value.
func TestInverseFunctionalityWeighting(t *testing.T) {
	doc1 := `
<e:a> <e:livesIn> <e:london> .
<e:a> <e:email> "a@x.com" .
<e:london> <e:label> "London" .
`
	doc2 := `
<f:a1> <f:city> <f:ldn> .
<f:a2> <f:city> <f:ldn> .
<f:a3> <f:city> <f:ldn> .
<f:a4> <f:city> <f:ldn> .
<f:a1> <f:mail> "a@x.com" .
<f:ldn> <f:name> "London" .
`
	o1, o2 := pair(t, doc1, doc2)
	a := New(o1, o2, Config{MaxIterations: 4})
	res := a.Run()
	got, p := assignmentOf(t, res, "e:a")
	if got != key("f:a1") {
		t.Fatalf("e:a assigned to %q (p=%v)", got, p)
	}
	// a2..a4 share only the city with e:a; their reverse candidates, if any,
	// must score below a1's.
	x1, _ := o1.LookupResource(key("e:a"))
	cands := a.Candidates(x1)
	for _, c := range cands[1:] {
		if c.P >= cands[0].P {
			t.Fatalf("secondary candidate as strong as maximal: %v", cands)
		}
	}
}

// Equation (13): evidence from two independent shared values accumulates:
// P = 1 - (1-p₁)(1-p₂) per the noisy-or.
func TestEvidenceAccumulates(t *testing.T) {
	doc1 := `
<e:x> <e:phone> "123" .
<e:y> <e:phone> "999" .
`
	doc2 := `
<f:x> <f:tel> "123" .
<f:x2> <f:tel> "123" .
`
	// e:x bridges to f:x and f:x2 with one phone statement each; inverse
	// functionality of e:phone is 1, of f:tel is 1/2 (two subjects share
	// "123"... actually fun⁻¹(tel) = #objects/#stmts = 1/2).
	o1, o2 := pair(t, doc1, doc2)
	a := New(o1, o2, Config{MaxIterations: 1, Convergence: -1})
	res := a.Run()
	_, p := assignmentOf(t, res, "e:x")
	// factor = (1 - θ·fun⁻¹(phone)·1)·(1 - θ·fun⁻¹(tel)·1)
	//        = (1 - 0.1)·(1 - 0.1·0.5) = 0.9·0.95
	want := 1 - 0.9*0.95
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", p, want)
	}
	_ = res
}

// Instances with no shared evidence must not be aligned at all.
func TestNoEvidenceNoAlignment(t *testing.T) {
	o1, o2 := pair(t, `<e:x> <e:p> "only-here" .`, `<f:y> <f:q> "only-there" .`)
	res := New(o1, o2, Config{}).Run()
	if len(res.Instances) != 0 {
		t.Fatalf("unexpected alignments: %v", res.Instances)
	}
}

func TestEmptyOntologies(t *testing.T) {
	o1, o2 := pair(t, ``, ``)
	res := New(o1, o2, Config{}).Run()
	if len(res.Instances) != 0 || len(res.Relations12) != 0 || len(res.Classes12) != 0 {
		t.Fatal("empty ontologies should align nothing")
	}
}

func TestMismatchedLiteralTablesPanics(t *testing.T) {
	b1 := store.NewBuilder("o1", store.NewLiterals(), nil)
	b2 := store.NewBuilder("o2", store.NewLiterals(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for distinct literal tables")
		}
	}()
	New(b1.Build(), b2.Build(), Config{})
}

// Class alignment: after instances are matched perfectly, a class whose
// instances all map into c₂ gets P(c₁ ⊆ c₂) = 1; a superclass direction
// yields the inclusion asymmetry of Equation (17).
func TestSubclassAlignment(t *testing.T) {
	doc1 := `
<e:s1> <e:email> "s1@x.com" .
<e:s2> <e:email> "s2@x.com" .
<e:p1> <e:email> "p1@x.com" .
<e:s1> <rdf:type> <e:singer> .
<e:s2> <rdf:type> <e:singer> .
<e:p1> <rdf:type> <e:politician> .
`
	doc2 := `
<f:s1> <f:mail> "s1@x.com" .
<f:s2> <f:mail> "s2@x.com" .
<f:p1> <f:mail> "p1@x.com" .
<f:s1> <rdf:type> <f:person> .
<f:s2> <rdf:type> <f:person> .
<f:p1> <rdf:type> <f:person> .
`
	doc1 = replaceRDFType(doc1)
	doc2 = replaceRDFType(doc2)
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 4}).Run()

	singer, _ := o1.LookupResource(key("e:singer"))
	person, _ := o2.LookupResource(key("f:person"))
	var gotSinger float64
	for _, ca := range res.Classes12 {
		if ca.Sub == singer && ca.Super == person {
			gotSinger = ca.P
		}
	}
	if gotSinger != 1 {
		t.Fatalf("P(singer ⊆ person) = %v, want 1", gotSinger)
	}
	// Reverse: person has 3 instances, 2 map into singer.
	var gotPerson float64
	for _, ca := range res.Classes21 {
		if ca.Sub == person && ca.Super == singer {
			gotPerson = ca.P
		}
	}
	if math.Abs(gotPerson-2.0/3) > 1e-9 {
		t.Fatalf("P(person ⊆ singer) = %v, want 2/3", gotPerson)
	}
}

func replaceRDFType(doc string) string {
	out := ""
	for _, line := range splitLines(doc) {
		out += line + "\n"
	}
	return replaceAll(out, "<rdf:type>", "<"+rdf.RDFType+">")
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func replaceAll(s, old, new string) string {
	for {
		i := indexOf(s, old)
		if i < 0 {
			return s
		}
		s = s[:i] + new + s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Negative evidence (Equation 14): a functional relation with a conflicting
// value must suppress the match relative to Equation (13). The e:y/f:y pair
// matches on both attributes, establishing the born ⊆ birthYear inclusion
// that makes the conflict on e:x/f:x count against the pair.
func TestNegativeEvidenceSuppresses(t *testing.T) {
	doc1 := `
<e:x> <e:name> "John Smith" .
<e:x> <e:born> "1950" .
<e:y> <e:name> "Ada Lovelace" .
<e:y> <e:born> "1815" .
`
	doc2 := `
<f:x> <f:name> "John Smith" .
<f:x> <f:born> "1999" .
<f:y> <f:name> "Ada Lovelace" .
<f:y> <f:born> "1815" .
`
	o1, o2 := pair(t, doc1, doc2)

	plain := New(o1, o2, Config{MaxIterations: 3}).Run()
	_, pPlain := assignmentOf(t, plain, "e:x")
	if pPlain == 0 {
		t.Fatal("positive-only run should align the name match")
	}

	neg := New(o1, o2, Config{MaxIterations: 3, NegativeEvidence: true}).Run()
	_, pNeg := assignmentOf(t, neg, "e:x")
	if pNeg >= pPlain {
		t.Fatalf("negative evidence did not suppress: %v >= %v", pNeg, pPlain)
	}
}

// Negative evidence must leave perfect matches intact.
func TestNegativeEvidenceKeepsConsistentMatch(t *testing.T) {
	doc1 := `
<e:x> <e:name> "Unique Name" .
<e:x> <e:born> "1950" .
`
	doc2 := `
<f:x> <f:name> "Unique Name" .
<f:x> <f:born> "1950" .
`
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 4, NegativeEvidence: true}).Run()
	got, p := assignmentOf(t, res, "e:x")
	if got != key("f:x") || p < 0.5 {
		t.Fatalf("consistent instance lost: %q p=%v", got, p)
	}
}

// θ invariance (Section 6.3): the final sub-relation scores are identical
// for any reasonable bootstrap θ, because iteration 2 recomputes them from
// maximal assignments that θ only scales, not reorders.
func TestThetaInvariance(t *testing.T) {
	doc1 := `
<e:a> <e:email> "a@x.com" .
<e:b> <e:email> "b@x.com" .
<e:a> <e:knows> <e:b> .
`
	doc2 := `
<f:a> <f:mail> "a@x.com" .
<f:b> <f:mail> "b@x.com" .
<f:a> <f:contact> <f:b> .
`
	o1, o2 := pair(t, doc1, doc2)
	var results []map[string]float64
	for _, theta := range []float64{0.001, 0.05, 0.2} {
		res := New(o1, o2, Config{Theta: theta, MaxIterations: 4}).Run()
		scores := map[string]float64{}
		for _, ra := range res.Relations12 {
			scores[o1.RelationName(ra.Sub)+"->"+o2.RelationName(ra.Super)] = ra.P
		}
		results = append(results, scores)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("θ changed the alignment set: %v vs %v", results[0], results[i])
		}
		for k, v := range results[0] {
			if math.Abs(results[i][k]-v) > 1e-9 {
				t.Fatalf("θ changed score of %s: %v vs %v", k, v, results[i][k])
			}
		}
	}
}

// Inverse relations: if o1 says actedIn(person, movie) and o2 says
// starring(movie, person), PARIS must discover actedIn ⊆ starring⁻¹.
func TestInverseRelationAlignment(t *testing.T) {
	doc1 := `
<e:p1> <e:actedIn> <e:m1> .
<e:p2> <e:actedIn> <e:m2> .
<e:p1> <e:email> "p1@x.com" .
<e:p2> <e:email> "p2@x.com" .
<e:m1> <e:title> "Movie One" .
<e:m2> <e:title> "Movie Two" .
`
	doc2 := `
<f:m1> <f:starring> <f:p1> .
<f:m2> <f:starring> <f:p2> .
<f:p1> <f:mail> "p1@x.com" .
<f:p2> <f:mail> "p2@x.com" .
<f:m1> <f:name> "Movie One" .
<f:m2> <f:name> "Movie Two" .
`
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 4}).Run()

	actedIn, _ := o1.LookupRelation("e:actedIn")
	starring, _ := o2.LookupRelation("f:starring")
	found := false
	for _, ra := range res.Relations12 {
		if ra.Sub == actedIn && ra.Super == starring.Inverse() && ra.P > 0.9 {
			found = true
		}
	}
	if !found {
		got, _ := res.Relations12, 0
		t.Fatalf("actedIn ⊆ starring⁻¹ not found; alignments: %v", got)
	}
	// Instances must align despite zero shared relation direction.
	gotM, _ := assignmentOf(t, res, "e:m1")
	if gotM != key("f:m1") {
		t.Fatalf("movie aligned to %q", gotM)
	}
}

// AllEqualities mode must produce (at least) the matches of the default
// maximal-assignment mode on clean data (Section 6.3: "changed the results
// only marginally").
func TestAllEqualitiesMode(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	def := New(o1, o2, Config{MaxIterations: 3}).Run()
	all := New(o1, o2, Config{MaxIterations: 3, AllEqualities: true}).Run()
	if len(all.Instances) < len(def.Instances) {
		t.Fatalf("all-equalities lost matches: %d < %d", len(all.Instances), len(def.Instances))
	}
}

// Determinism: two runs over the same inputs give identical results.
func TestDeterminism(t *testing.T) {
	doc1 := `
<e:a> <e:email> "a@x.com" .
<e:b> <e:email> "b@x.com" .
<e:c> <e:city> "Springfield" .
<e:d> <e:city> "Springfield" .
`
	doc2 := `
<f:a> <f:mail> "a@x.com" .
<f:b> <f:mail> "b@x.com" .
<f:c> <f:town> "Springfield" .
<f:d> <f:town> "Springfield" .
`
	o1, o2 := pair(t, doc1, doc2)
	r1 := New(o1, o2, Config{MaxIterations: 3, Workers: 4}).Run()
	r2 := New(o1, o2, Config{MaxIterations: 3, Workers: 1}).Run()
	if len(r1.Instances) != len(r2.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(r1.Instances), len(r2.Instances))
	}
	for i := range r1.Instances {
		if r1.Instances[i] != r2.Instances[i] {
			t.Fatalf("assignment %d differs: %v vs %v", i, r1.Instances[i], r2.Instances[i])
		}
	}
}

// All probabilities everywhere must lie in [0, 1].
func TestProbabilityBounds(t *testing.T) {
	doc1 := `
<e:a> <e:p> "v1" .
<e:a> <e:p> "v2" .
<e:b> <e:p> "v1" .
<e:b> <e:q> <e:a> .
<e:a> <rdftype> <e:c1> .
`
	doc2 := `
<f:a> <f:r> "v1" .
<f:a> <f:r> "v2" .
<f:b> <f:r> "v1" .
<f:b> <f:s> <f:a> .
`
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 5}).Run()
	for _, a := range res.Instances {
		if a.P < 0 || a.P > 1 {
			t.Fatalf("instance probability out of bounds: %v", a)
		}
	}
	for _, ra := range append(res.Relations12, res.Relations21...) {
		if ra.P < 0 || ra.P > 1 {
			t.Fatalf("relation probability out of bounds: %v", ra)
		}
	}
	for _, ca := range append(res.Classes12, res.Classes21...) {
		if ca.P < 0 || ca.P > 1 {
			t.Fatalf("class probability out of bounds: %v", ca)
		}
	}
}

// The iteration log must be populated and convergence reached on stable
// data.
func TestIterationStatsAndConvergence(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	var seen int
	cfg := Config{
		MaxIterations: 8,
		OnIteration:   func(it int, a *Aligner) { seen++ },
	}
	a := New(o1, o2, cfg)
	res := a.Run()
	if len(res.Iterations) == 0 || seen != len(res.Iterations) {
		t.Fatalf("iterations: %d logged, %d callbacks", len(res.Iterations), seen)
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.ChangedFraction >= DefaultConvergence {
		t.Fatalf("did not converge: %+v", last)
	}
	if len(res.Iterations) == 8 {
		t.Fatal("used all iterations; expected early convergence")
	}
	if s := last.String(); s == "" {
		t.Fatal("empty stats string")
	}
}

// Ties in the maximal assignment are broken deterministically (lowest ID).
func TestMaximalAssignmentTieBreak(t *testing.T) {
	doc1 := `<e:x> <e:p> "shared" .`
	doc2 := `
<f:a> <f:q> "shared" .
<f:b> <f:q> "shared" .
`
	o1, o2 := pair(t, doc1, doc2)
	a := New(o1, o2, Config{MaxIterations: 1, Convergence: -1})
	res := a.Run()
	got, _ := assignmentOf(t, res, "e:x")
	if got != key("f:a") && got != key("f:b") {
		t.Fatalf("assigned to %q", got)
	}
	// Re-running must give the same arbitrary choice.
	res2 := New(o1, o2, Config{MaxIterations: 1, Convergence: -1}).Run()
	got2, _ := assignmentOf(t, res2, "e:x")
	if got != got2 {
		t.Fatal("tie broken non-deterministically")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Theta != DefaultTheta || c.MaxIterations != DefaultMaxIterations ||
		c.Convergence != DefaultConvergence || c.PairLimit != DefaultPairLimit ||
		c.HubLimit != DefaultHubLimit || c.Workers < 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	neg := Config{PairLimit: -1, HubLimit: -1}.withDefaults()
	if neg.PairLimit <= DefaultPairLimit || neg.HubLimit <= DefaultHubLimit {
		t.Fatal("negative caps should disable the limits")
	}
}

func TestResultHelpers(t *testing.T) {
	o1, o2 := pair(t, o1Email, o2Email)
	res := New(o1, o2, Config{MaxIterations: 3}).Run()
	m := res.InstanceMap()
	if m[key("e:x")] != key("f:x") {
		t.Fatalf("InstanceMap = %v", m)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
	maxed := MaxRelAlignments(res.Relations12)
	seen := map[store.Relation]bool{}
	for _, ra := range maxed {
		if seen[ra.Sub] {
			t.Fatal("MaxRelAlignments returned duplicate sub")
		}
		seen[ra.Sub] = true
	}
	filtered := FilterClassAlignments([]ClassAlignment{{P: 0.5}, {P: 0.2}}, 0.4)
	if len(filtered) != 1 {
		t.Fatalf("FilterClassAlignments = %v", filtered)
	}
}
