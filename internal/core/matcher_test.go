package core

// Tests for pluggable literal similarity (Section 5.3: "precision could be
// raised even higher by implementing more elaborate literal similarity
// functions") and for the structural-heterogeneity limitation the paper's
// conclusion acknowledges.

import (
	"testing"

	"repro/internal/literal"
)

// With the default identity matcher, a transliterated title ("Sugata
// Sanshiro" vs "Sanshiro Sugata") cannot bridge; an edit-distance fuzzy
// matcher plugged into Config recovers the pair — the paper's suggested
// remedy for its naive-string-comparison errors.
func TestFuzzyLiteralMatcherRecoversTransliterations(t *testing.T) {
	doc1 := `
<e:m1> <e:title> "Sugata Sanshiro" .
<e:m1> <e:year> "1943" .
<e:m2> <e:title> "Rashomon" .
<e:m2> <e:year> "1950" .
`
	doc2 := `
<f:m1> <f:name> "Sanshiro Sugata" .
<f:m1> <f:released> "1943" .
<f:m2> <f:name> "Rashomon" .
<f:m2> <f:released> "1950" .
`
	o1, o2 := pair(t, doc1, doc2)

	// Identity literals: m1 bridges only through its year. Compare single
	// bootstrap iterations, before the fixpoint amplifies any surviving
	// seed toward 1.
	plain := New(o1, o2, Config{MaxIterations: 1, Convergence: -1}).Run()
	_, pPlain := assignmentOf(t, plain, "e:m1")

	// Fuzzy matcher: block by sorted character multiset would be ideal;
	// a constant block suffices at this scale. Jaro-Winkler scores the
	// word swap moderately; Levenshtein on the raw strings is weak, so use
	// a comparator over alphanumeric forms.
	cmp := wordSetComparator{}
	ix2 := literal.NewIndex(o2, func(string) string { return "" }, cmp, literal.WithMinSim(0.6))
	ix1 := literal.NewIndex(o1, func(string) string { return "" }, cmp, literal.WithMinSim(0.6))
	fuzzy := New(o1, o2, Config{MaxIterations: 1, Convergence: -1, MatcherTo2: ix2, MatcherTo1: ix1}).Run()
	got, pFuzzy := assignmentOf(t, fuzzy, "e:m1")
	if got != key("f:m1") {
		t.Fatalf("fuzzy run misassigned: %q", got)
	}
	if pFuzzy <= pPlain {
		t.Fatalf("fuzzy matcher did not strengthen the pair: %v <= %v", pFuzzy, pPlain)
	}
}

// wordSetComparator scores 1 when two strings contain the same words in any
// order (the transliteration case), 0 otherwise, except exact matches.
type wordSetComparator struct{}

func (wordSetComparator) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	wa, wb := wordSet(a), wordSet(b)
	if len(wa) != len(wb) || len(wa) == 0 {
		return 0
	}
	for w := range wa {
		if !wb[w] {
			return 0
		}
	}
	return 0.9
}

func wordSet(s string) map[string]bool {
	out := map[string]bool{}
	word := ""
	for _, r := range s + " " {
		if r == ' ' {
			if word != "" {
				out[word] = true
				word = ""
			}
			continue
		}
		word += string(r)
	}
	return out
}

// The paper's conclusion: "paris cannot deal with structural heterogeneity"
// — if one ontology models an award as a relation (wonAward) while the other
// reifies it as an event entity (winner/award/year), the instances connect
// through different graph shapes and the relation alignment cannot form.
// This test documents the limitation rather than working around it.
func TestStructuralHeterogeneityLimitation(t *testing.T) {
	doc1 := `
<e:ada> <e:wonAward> <e:meridian> .
<e:ada> <e:email> "ada@x.com" .
<e:meridian> <e:label> "Meridian Prize" .
`
	doc2 := `
<f:event1> <f:winner> <f:ada> .
<f:event1> <f:award> <f:meridian> .
<f:event1> <f:year> "1843" .
<f:ada> <f:mail> "ada@x.com" .
<f:meridian> <f:name> "Meridian Prize" .
`
	o1, o2 := pair(t, doc1, doc2)
	res := New(o1, o2, Config{MaxIterations: 4}).Run()

	// The people and prizes still match (via e-mail and label)...
	gotAda, _ := assignmentOf(t, res, "e:ada")
	if gotAda != key("f:ada") {
		t.Fatalf("ada lost: %q", gotAda)
	}
	// ...but wonAward cannot align to any single ontology-2 relation: the
	// path ada→meridian is two hops (winner⁻¹ then award) on the other
	// side. PARIS must not hallucinate such an alignment with a high
	// score.
	won, _ := o1.LookupRelation("e:wonAward")
	for _, ra := range res.Relations12 {
		if ra.Sub == won && ra.P > 0.5 {
			t.Fatalf("structural heterogeneity 'solved' suspiciously: %v -> %v p=%v",
				o1.RelationName(ra.Sub), o2.RelationName(ra.Super), ra.P)
		}
	}
}
