package core

import (
	"repro/internal/store"
)

// subRelStore holds the directed sub-relation scores of one iteration.
// Missing entries are zero; before the first iteration (nil store) every
// pair scores the bootstrap value θ (Section 5.1).
type subRelStore struct {
	to2 []map[store.Relation]float64 // ontology-1 relation -> P(r1 ⊆ r2)
	to1 []map[store.Relation]float64 // ontology-2 relation -> P(r2 ⊆ r1)
}

// p12 returns P(r1 ⊆ r2) for r1 of ontology 1 and r2 of ontology 2.
func (a *Aligner) p12(r1, r2 store.Relation) float64 {
	if a.rel == nil {
		return a.cfg.Theta
	}
	return a.rel.to2[r1][r2]
}

// p21 returns P(r2 ⊆ r1) for r2 of ontology 2 and r1 of ontology 1.
func (a *Aligner) p21(r2, r1 store.Relation) float64 {
	if a.rel == nil {
		return a.cfg.Theta
	}
	return a.rel.to1[r2][r1]
}

// relLink pairs one ontology-2 relation with its inclusion scores against a
// fixed ontology-1 relation.
type relLink struct {
	rel store.Relation // ontology-2 relation
	p12 float64        // P(r1 ⊆ rel)
	p21 float64        // P(rel ⊆ r1)
}

// linkedRelations returns the ontology-2 relations with a positive inclusion
// score against r1 in either direction. During the bootstrap iteration every
// ontology-2 relation is linked with θ.
func (a *Aligner) linkedRelations(r1 store.Relation) []relLink {
	if a.rel == nil {
		out := make([]relLink, a.o2.NumRelations())
		for i := range out {
			out[i] = relLink{rel: store.Relation(i), p12: a.cfg.Theta, p21: a.cfg.Theta}
		}
		return out
	}
	seen := make(map[store.Relation]relLink)
	for r2, p := range a.rel.to2[r1] {
		seen[r2] = relLink{rel: r2, p12: p}
	}
	for r2 := range a.rel.to1 {
		if p := a.rel.to1[r2][r1]; p > 0 {
			l := seen[store.Relation(r2)]
			l.rel = store.Relation(r2)
			l.p21 = p
			seen[store.Relation(r2)] = l
		}
	}
	out := make([]relLink, 0, len(seen))
	for _, l := range seen {
		out = append(out, l)
	}
	return out
}

// subRelationPass evaluates Equation (12) in both directions:
//
//	P(r ⊆ r') = Σ_{r(x,y)} (1 - Π_{r'(x',y')} (1 - P(x≡x')·P(y≡y')))
//	          / Σ_{r(x,y)} (1 - Π_{x',y'}    (1 - P(x≡x')·P(y≡y')))
//
// following the Section 5.2 optimizations: only the equalities of the
// previous maximal assignment are considered (unless AllEqualities), at most
// PairLimit statements per relation are evaluated, and scores below θ are
// dropped. Scores for inverse relations are derived from the base pair,
// since P(r⁻¹ ⊆ r'⁻¹) = P(r ⊆ r') holds exactly.
func (a *Aligner) subRelationPass() *subRelStore {
	s := &subRelStore{
		to2: make([]map[store.Relation]float64, a.o1.NumRelations()),
		to1: make([]map[store.Relation]float64, a.o2.NumRelations()),
	}
	a.subRelDirection(a.o1, a.o2, a.equalsOf1, s.to2)
	a.subRelDirection(a.o2, a.o1, a.equalsOf2, s.to1)
	return s
}

// subRelDirection fills out[r] = {r': P(r ⊆ r')} for every relation r of
// src, with r' ranging over relations of dst.
func (a *Aligner) subRelDirection(
	src, dst *store.Ontology,
	equals func(store.Node, []weighted) []weighted,
	out []map[store.Relation]float64,
) {
	nBase := src.NumRelations() / 2
	rows := make([][2]map[store.Relation]float64, nBase)
	parallelFor(nBase, a.cfg.Workers, func(i int) {
		base := store.Relation(2 * i)
		num, den := a.subRelRow(src, dst, base, equals)
		if den == 0 {
			return
		}
		direct := make(map[store.Relation]float64)
		inverse := make(map[store.Relation]float64)
		for r2, v := range num {
			p := v / den
			if p < a.cfg.Truncation || p == 0 {
				continue
			}
			if p > 1 {
				p = 1
			}
			direct[r2] = p
			inverse[r2.Inverse()] = p
		}
		if len(direct) > 0 {
			rows[i] = [2]map[store.Relation]float64{direct, inverse}
		}
	})
	for i, row := range rows {
		out[2*i] = row[0]
		out[2*i+1] = row[1]
	}
}

// subRelRow accumulates the numerator per destination relation and the
// shared denominator for one base relation of src.
func (a *Aligner) subRelRow(
	src, dst *store.Ontology,
	r store.Relation,
	equals func(store.Node, []weighted) []weighted,
) (map[store.Relation]float64, float64) {
	num := make(map[store.Relation]float64)
	den := 0.0
	count := 0
	var xBuf, yBuf []weighted
	perStmt := make(map[store.Relation]float64)
	src.EachStatement(r, func(s, o store.Node) bool {
		count++
		if count > a.cfg.PairLimit {
			return false
		}
		xBuf = equals(s, xBuf[:0])
		if len(xBuf) == 0 {
			return true
		}
		yBuf = equals(o, yBuf[:0])
		if len(yBuf) == 0 {
			return true
		}
		// Denominator term: 1 - Π over all equal pairs (x', y').
		denProd := 1.0
		for k := range perStmt {
			delete(perStmt, k)
		}
		for _, wx := range xBuf {
			for _, wy := range yBuf {
				pp := wx.p * wy.p
				denProd *= 1 - pp
				// Numerator: which dst relations connect x' to y'?
				forEachConnecting(dst, wx.node, wy.node, func(r2 store.Relation) {
					if cur, ok := perStmt[r2]; ok {
						perStmt[r2] = cur * (1 - pp)
					} else {
						perStmt[r2] = 1 - pp
					}
				})
			}
		}
		den += 1 - denProd
		for r2, prod := range perStmt {
			num[r2] += 1 - prod
		}
		return true
	})
	return num, den
}

// forEachConnecting calls fn(r2) for every dst relation r2 with r2(x, y).
func forEachConnecting(dst *store.Ontology, x, y store.Node, fn func(store.Relation)) {
	if x.IsLit() {
		for _, e := range dst.LitEdges(x.Lit()) {
			if e.To == y {
				fn(e.Rel)
			}
		}
		return
	}
	for _, e := range dst.Edges(x.Res()) {
		if e.To == y {
			fn(e.Rel)
		}
	}
}
