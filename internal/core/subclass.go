package core

import (
	"repro/internal/store"
)

// subClassPass evaluates Equation (17) in both directions after the
// instance fixpoint has converged (Section 4.3):
//
//	P(c ⊆ c') = Σ_{x: type(x,c)} (1 - Π_{y: type(y,c')} (1 - P(x≡y)))
//	          / #x: type(x,c)
//
// With maximal assignments (the default), the inner product degenerates to
// the single assigned instance, so each instance x of c with assignment
// (y, p) adds p to every class of y. At most PairLimit instances per class
// are evaluated (Section 5.2).
func (a *Aligner) subClassPass() (to2, to1 []ClassAlignment) {
	if a.eq == nil {
		return nil, nil
	}
	to2 = a.subClassDirection(a.o1, a.o2, a.eq.fwd, a.eq.maxFwd)
	to1 = a.subClassDirection(a.o2, a.o1, a.eq.rev, a.eq.maxRev)
	return to2, to1
}

func (a *Aligner) subClassDirection(
	src, dst *store.Ontology,
	all [][]Cand,
	maximal []Cand,
) []ClassAlignment {
	classes := src.Classes()
	rows := make([][]ClassAlignment, len(classes))
	parallelFor(len(classes), a.cfg.Workers, func(i int) {
		rows[i] = a.subClassRow(src, dst, classes[i], all, maximal)
	})
	var out []ClassAlignment
	for _, row := range rows {
		out = append(out, row...)
	}
	SortClassAlignments(out)
	return out
}

func (a *Aligner) subClassRow(
	src, dst *store.Ontology,
	c store.Resource,
	all [][]Cand,
	maximal []Cand,
) []ClassAlignment {
	insts := src.InstancesOf(c)
	if len(insts) == 0 {
		return nil
	}
	if len(insts) > a.cfg.PairLimit {
		insts = insts[:a.cfg.PairLimit]
	}
	score := make(map[store.Resource]float64)
	if a.cfg.AllEqualities {
		perInst := make(map[store.Resource]float64)
		for _, x := range insts {
			for k := range perInst {
				delete(perInst, k)
			}
			for _, cand := range all[x] {
				for _, c2 := range dst.ClassesOf(cand.To) {
					if cur, ok := perInst[c2]; ok {
						perInst[c2] = cur * (1 - cand.P)
					} else {
						perInst[c2] = 1 - cand.P
					}
				}
			}
			for c2, prod := range perInst {
				score[c2] += 1 - prod
			}
		}
	} else {
		for _, x := range insts {
			m := maximal[x]
			if m.To == NoResource {
				continue
			}
			for _, c2 := range dst.ClassesOf(m.To) {
				score[c2] += m.P
			}
		}
	}
	if len(score) == 0 {
		return nil
	}
	out := make([]ClassAlignment, 0, len(score))
	n := float64(len(insts))
	for c2, s := range score {
		p := s / n
		if p > 1 {
			p = 1
		}
		out = append(out, ClassAlignment{Sub: c, Super: c2, P: p})
	}
	return out
}
