package core
