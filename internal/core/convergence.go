package core

// Convergence introspection for the fixpoint of Section 5.1. The iteration
// counter and changed-fraction say *that* the loop is moving; the numbers
// here say *how*: did the maximal assignment grow, churn between targets,
// or shed pairs, and where do its scores sit. An OnIteration hook calls
// Convergence() and ships the snapshot to the flight recorder, which serves
// it at GET /v1/jobs/{id}/convergence.

// ConvergenceScoreBuckets is the number of equal-width probability buckets
// in ConvergenceStats.ScoreBuckets.
const ConvergenceScoreBuckets = 10

// ConvergenceStats describes how the maximal instance assignment moved in
// the iteration that just completed, relative to the one before it.
type ConvergenceStats struct {
	Iteration       int     // 1-based index of the completed iteration
	Assigned        int     // ontology-1 entities with a maximal assignment
	NewPairs        int     // assigned now, unassigned before
	ChangedPairs    int     // assigned in both, to a different target
	DroppedPairs    int     // assigned before, unassigned now
	ChangedFraction float64 // the run's convergence criterion, as in IterationStats

	// ScoreBuckets histograms the probabilities of the current maximal
	// assignments into ConvergenceScoreBuckets equal-width buckets over
	// [0,1] (the last bucket includes 1.0). A healthy run drains the
	// middle buckets into the top one as evidence accumulates.
	ScoreBuckets [ConvergenceScoreBuckets]int
}

// Convergence compares the current maximal assignment against the previous
// iteration's and summarizes the movement. Valid inside an OnIteration
// hook or after any Step; before the first iteration everything is zero.
func (a *Aligner) Convergence() ConvergenceStats {
	var s ConvergenceStats
	if len(a.iters) > 0 {
		last := a.iters[len(a.iters)-1]
		s.Iteration = last.Iteration
		s.ChangedFraction = last.ChangedFraction
	}
	if a.eq == nil {
		return s
	}
	for x := range a.eq.maxFwd {
		cur := a.eq.maxFwd[x]
		old := Cand{To: NoResource}
		if a.prevEq != nil {
			old = a.prevEq.maxFwd[x]
		}
		if cur.To != NoResource {
			s.Assigned++
			b := int(cur.P * ConvergenceScoreBuckets)
			if b >= ConvergenceScoreBuckets {
				b = ConvergenceScoreBuckets - 1
			}
			if b < 0 {
				b = 0
			}
			s.ScoreBuckets[b]++
		}
		switch {
		case cur.To == NoResource && old.To == NoResource:
		case old.To == NoResource:
			s.NewPairs++
		case cur.To == NoResource:
			s.DroppedPairs++
		case cur.To != old.To:
			s.ChangedPairs++
		}
	}
	return s
}
