package core

import (
	"reflect"
	"testing"
)

// TestSplitCoversEveryAssignment checks the slicing invariants: each
// assignment lands on the shard owning its Key1 and on the shard owning its
// Key2 (once when they coincide), order is preserved within a slice, and the
// schema-level tables plus header fields are replicated on every slice.
func TestSplitCoversEveryAssignment(t *testing.T) {
	snap := sampleSnapshot()
	snap.Instances = []SnapshotAssignment{
		{Key1: "<http://a/k0>", Key2: "<http://b/k1>", P: 0.9}, // split across 0 and 1
		{Key1: "<http://a/k1>", Key2: "<http://b/k1>", P: 0.8}, // both owned by 1
		{Key1: "<http://a/k2>", Key2: "<http://b/k0>", P: 0.7}, // split across 2 and 0
	}
	owner := func(key string) int { return int(key[len(key)-2] - '0') }

	slices := snap.Split(3, owner)
	if len(slices) != 3 {
		t.Fatalf("Split returned %d slices, want 3", len(slices))
	}
	counts := map[SnapshotAssignment]int{}
	for _, sl := range slices {
		for _, a := range sl.Instances {
			counts[a]++
		}
	}
	for i, a := range snap.Instances {
		want := 2
		if owner(a.Key1) == owner(a.Key2) {
			want = 1
		}
		if counts[a] != want {
			t.Errorf("instance %d appears on %d slices, want %d", i, counts[a], want)
		}
	}
	if got := slices[0].Instances; len(got) != 2 || got[0].Key1 != "<http://a/k0>" || got[1].Key1 != "<http://a/k2>" {
		t.Errorf("slice 0 instances = %v, want k0 then k2 in original order", got)
	}

	for i, sl := range slices {
		if sl.KB1 != snap.KB1 || sl.KB2 != snap.KB2 || sl.Base != snap.Base ||
			sl.DeltaDigest != snap.DeltaDigest || sl.DeltaAdded != snap.DeltaAdded ||
			!sl.CreatedAt.Equal(snap.CreatedAt) || sl.ClassTime != snap.ClassTime {
			t.Errorf("slice %d header diverges from source", i)
		}
		if !reflect.DeepEqual(sl.Relations12, snap.Relations12) ||
			!reflect.DeepEqual(sl.Relations21, snap.Relations21) ||
			!reflect.DeepEqual(sl.Classes12, snap.Classes12) ||
			!reflect.DeepEqual(sl.Classes21, snap.Classes21) ||
			!reflect.DeepEqual(sl.Iterations, snap.Iterations) {
			t.Errorf("slice %d schema tables diverge from source", i)
		}
	}

	// The copies must be deep: sorting one slice's relations (as the serving
	// index does) must not reorder another's.
	if len(slices[0].Relations12) > 1 {
		slices[0].Relations12[0], slices[0].Relations12[1] = slices[0].Relations12[1], slices[0].Relations12[0]
		if reflect.DeepEqual(slices[0].Relations12, slices[1].Relations12) {
			t.Error("relation tables share backing storage across slices")
		}
	}
}
