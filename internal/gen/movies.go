package gen

import (
	"fmt"
	"strings"

	"repro/internal/eval"
)

// MoviesConfig scales the YAGO-vs-IMDb-style corpus of Section 6.4. The
// generator reproduces the paper's documented error sources: near-duplicate
// works (a feature version of a TV series with the same cast and crew),
// transliterated titles, and a "famous people" bias — ontology 1 contains
// mostly famous people, many of whom appear in some documentary on the
// ontology-2 side.
type MoviesConfig struct {
	// People and Movies size the shared world. Zeros mean 4000 / 1500.
	People, Movies int
	// Seed drives all randomness.
	Seed int64
	// VariantRate is the fraction of movies that have a closely related
	// but distinct variant work on the ontology-2 side (feature cut of a
	// series). Zero means 0.02.
	VariantRate float64
	// TranslitRate is the fraction of shared movies whose title is word-
	// swapped on the ontology-2 side ("Sugata Sanshiro" vs "Sanshiro
	// Sugata"). Zero means 0.03.
	TranslitRate float64
	// FamousExtra is the fraction of ontology-1-only famous people that
	// nevertheless appear in an ontology-2 documentary. Zero means 0.3.
	FamousExtra float64
	// Present1/Present2 are entity presence probabilities as in World.
	// Zeros mean 0.80 / 0.85.
	Present1, Present2 float64
	// KeepFact1/KeepFact2 are per-fact emission probabilities. Zeros mean
	// 0.80 / 0.85.
	KeepFact1, KeepFact2 float64
}

func (c MoviesConfig) withDefaults() MoviesConfig {
	if c.People == 0 {
		c.People = 4000
	}
	if c.Movies == 0 {
		c.Movies = 1500
	}
	setF := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	setF(&c.VariantRate, 0.02)
	setF(&c.TranslitRate, 0.03)
	setF(&c.FamousExtra, 0.3)
	setF(&c.Present1, 0.80)
	setF(&c.Present2, 0.85)
	setF(&c.KeepFact1, 0.80)
	setF(&c.KeepFact2, 0.85)
	return c
}

type moviePerson struct {
	name      string
	birthDate string
	deathDate string // "" if alive
	birthCity int
	role      string // "actor", "director", "writer", "producer", "famous"
}

type movieWork struct {
	title    string
	year     string
	genre    string
	kind     string // "movie" or "series"
	director int
	writer   int
	cast     []int
}

// Movies generates the movie corpus. Ontology 1 ("ykb-film") is the
// general-purpose KB view: rich labels, birth facts, prizes, and only
// acted-in/created film links. Ontology 2 ("ikb") is the movie-database
// view: 15 classes, 24 relations, exhaustive film credits.
func Movies(cfg MoviesConfig) *Dataset {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	s1 := newSink("http://ykbfilm.example.org/")
	s2 := newSink("http://ikb.example.org/")
	gold := eval.NewGold()

	// ---- Invent the world. ----
	people := make([]moviePerson, cfg.People)
	for i := range people {
		p := moviePerson{
			name:      r.personName(),
			birthDate: fmt.Sprintf("1%03d-%02d-%02d", 870+r.Intn(130), 1+r.Intn(12), 1+r.Intn(28)),
			birthCity: r.Intn(len(cities)),
		}
		if r.chance(0.25) {
			p.deathDate = fmt.Sprintf("%d-%02d-%02d", 1950+r.Intn(70), 1+r.Intn(12), 1+r.Intn(28))
		}
		roll := r.Float64()
		switch {
		case roll < 0.55:
			p.role = "actor"
		case roll < 0.62:
			p.role = "director"
		case roll < 0.68:
			p.role = "writer"
		case roll < 0.73:
			p.role = "producer"
		default:
			p.role = "famous" // politician, athlete, ... — not film people
		}
		people[i] = p
	}
	// Credits draw from the *working* sub-population of each role: a few
	// hundred prolific actors and directors carry most films, keeping
	// fun(actedIn) and fun(directed) realistically low.
	roleIdx := map[string][]int{}
	for i, p := range people {
		roleIdx[p.role] = append(roleIdx[p.role], i)
	}
	pickRole := func(role string) int {
		pool := roleIdx[role]
		working := len(pool) / 3
		if working < 1 {
			working = len(pool)
		}
		return pool[r.Intn(working)]
	}
	titleUsed := map[string]bool{}
	works := make([]movieWork, cfg.Movies)
	for i := range works {
		var title string
		for {
			title = r.pick(movieWords) + " " + r.pick(movieNouns)
			if r.chance(0.4) {
				title = "The " + title
			}
			if !titleUsed[title] {
				break
			}
			title += fmt.Sprintf(" %d", 2+r.Intn(9))
			if !titleUsed[title] {
				break
			}
		}
		titleUsed[title] = true
		wk := movieWork{
			title:    title,
			year:     fmt.Sprintf("%d", 1925+r.Intn(95)),
			genre:    r.pick(genres),
			kind:     "movie",
			director: pickRole("director"),
			writer:   pickRole("writer"),
		}
		if r.chance(0.12) {
			wk.kind = "series"
		}
		cast := 2 + r.Intn(6)
		for j := 0; j < cast; j++ {
			wk.cast = append(wk.cast, pickRole("actor"))
		}
		works[i] = wk
	}

	// ---- Presence. ----
	in1p := make([]bool, len(people))
	in2p := make([]bool, len(people))
	for i, p := range people {
		in1p[i] = r.chance(cfg.Present1)
		in2p[i] = r.chance(cfg.Present2)
		if p.role == "famous" {
			// Famous non-film people: always in the general KB; in the
			// movie DB only via documentaries.
			in1p[i] = true
			in2p[i] = r.chance(cfg.FamousExtra)
		}
	}
	// The movie database is near-complete on works: a film known to the
	// general KB is almost always in it (the paper's yago movies come from
	// film Wikipedia pages, which IMDb covers).
	in1w := make([]bool, len(works))
	in2w := make([]bool, len(works))
	for i := range works {
		in1w[i] = r.chance(cfg.Present1)
		if in1w[i] {
			in2w[i] = r.chance(0.97)
		} else {
			in2w[i] = r.chance(cfg.Present2)
		}
	}

	keep1 := func() bool { return r.chance(cfg.KeepFact1) }
	keep2 := func() bool { return r.chance(cfg.KeepFact2) }

	// ---- Ontology 1 schema (deep-ish). ----
	s1.subclass("wordnet_actor", "wordnet_person")
	s1.subclass("wordnet_film_director", "wordnet_person")
	s1.subclass("wordnet_writer", "wordnet_person")
	s1.subclass("wordnet_movie", "wordnet_work")
	s1.subclass("wordnet_series", "wordnet_work")
	for ci := range cities {
		s1.subclass(fmt.Sprintf("wikicategory_People_from_%s", sanitize(cities[ci])), "wordnet_person")
	}
	// ---- Ontology 2 schema (15 flat classes). ----
	for _, c := range []string{"Actor", "Actress", "Director", "Producer", "Writer", "CrewMember"} {
		s2.subclass(c, "Personality")
	}
	for _, c := range []string{"Feature", "TVSeries", "TVMovie", "Documentary", "Short", "VideoGame"} {
		s2.subclass(c, "Production")
	}
	s2.subclass("Personality", "IMDbEntity")
	s2.subclass("Production", "IMDbEntity")

	p1 := func(i int) string { return fmt.Sprintf("person%05d", i) }
	p2 := func(i int) string { return fmt.Sprintf("nm%07d", i) }
	m1 := func(i int) string { return fmt.Sprintf("film%05d", i) }
	m2 := func(i int) string { return fmt.Sprintf("tt%07d", i) }

	// ---- Emit people. ----
	for i, p := range people {
		if in1p[i] {
			l := p1(i)
			switch p.role {
			case "actor":
				s1.typed(l, "wordnet_actor")
			case "director":
				s1.typed(l, "wordnet_film_director")
			case "writer":
				s1.typed(l, "wordnet_writer")
			default:
				s1.typed(l, "wordnet_person")
			}
			s1.typed(l, fmt.Sprintf("wikicategory_People_from_%s", sanitize(cities[p.birthCity])))
			s1.litIRIRel(l, labelRel1, p.name)
			if keep1() {
				s1.lit(l, "wasBornOnDate", p.birthDate)
			}
			if p.deathDate != "" && keep1() {
				s1.lit(l, "diedOnDate", p.deathDate)
			}
			if keep1() {
				s1.lit(l, "wasBornIn", cities[p.birthCity])
			}
			if p.role == "famous" && keep1() {
				s1.lit(l, "hasWonPrize", r.pick(prizes))
			}
		}
		if in2p[i] {
			l := p2(i)
			switch p.role {
			case "actor":
				if r.chance(0.5) {
					s2.typed(l, "Actor")
				} else {
					s2.typed(l, "Actress")
				}
			case "director":
				s2.typed(l, "Director")
			case "writer":
				s2.typed(l, "Writer")
			case "producer":
				s2.typed(l, "Producer")
			default:
				s2.typed(l, "Personality")
			}
			// IMDb renders a quarter of its person names in "Last,
			// First" credit order, which naive string identity cannot
			// bridge (the Sanshiro Sugata effect of Section 6.4).
			name2 := p.name
			if r.chance(0.25) {
				if i := strings.LastIndex(p.name, " "); i > 0 {
					name2 = p.name[i+1:] + ", " + p.name[:i]
				}
			}
			s2.litIRIRel(l, labelRel1, name2)
			if keep2() {
				bd := p.birthDate
				if r.chance(0.30) {
					bd = reformatDate(bd)
				}
				s2.lit(l, "bornOn", bd)
			}
			if p.deathDate != "" && keep2() {
				s2.lit(l, "diedOn", p.deathDate)
			}
			if keep2() {
				s2.lit(l, "bornIn", cities[p.birthCity])
			}
			if keep2() {
				s2.lit(l, "heightCm", fmt.Sprintf("%d", 150+r.Intn(50)))
			}
		}
		if in1p[i] && in2p[i] {
			gold.Add(s1.key(p1(i)), s2.key(p2(i)))
		}
	}

	// ---- Emit works. ----
	variant := 0
	for i, wk := range works {
		if in1w[i] {
			l := m1(i)
			if wk.kind == "series" {
				s1.typed(l, "wordnet_series")
			} else {
				s1.typed(l, "wordnet_movie")
			}
			s1.litIRIRel(l, labelRel1, wk.title)
			if keep1() {
				s1.lit(l, "wasCreatedOnDate", wk.year)
			}
			if in1p[wk.director] && keep1() {
				s1.fact(p1(wk.director), "directed", l)
			}
			if in1p[wk.writer] && keep1() {
				s1.fact(p1(wk.writer), "created", l)
			}
			for _, a := range wk.cast {
				if in1p[a] && keep1() {
					s1.fact(p1(a), "actedIn", l)
				}
			}
		}
		if in2w[i] {
			l := m2(i)
			title2 := wk.title
			if r.chance(cfg.TranslitRate) {
				title2 = swapWords(strings.TrimPrefix(wk.title, "The "))
			}
			emitWork2(s2, l, wk, title2, in2p, p2, keep2, r)
			// Closely related variant work: same cast and crew, related
			// title, different year — the "Out 1: Spectre" hazard.
			if r.chance(cfg.VariantRate) {
				vl := fmt.Sprintf("tt9%06d", variant)
				variant++
				vwk := wk
				vwk.year = wk.year
				emitWork2(s2, vl, vwk, wk.title+": Redux", in2p, p2, keep2, r)
			}
		}
		if in1w[i] && in2w[i] {
			gold.Add(s1.key(m1(i)), s2.key(m2(i)))
		}
	}

	// Documentaries: famous ontology-1 people appearing in ontology-2-only
	// productions (drives "People from X ⊆ actor" class confusions).
	doc := 0
	for i, p := range people {
		if p.role == "famous" && in2p[i] {
			l := fmt.Sprintf("tt8%06d", doc)
			doc++
			s2.typed(l, "Documentary")
			s2.litIRIRel(l, labelRel1, "The Life of "+p.name)
			s2.lit(l, "releasedIn", fmt.Sprintf("%d", 1990+r.Intn(30)))
			s2.fact(l, "features", p2(i))
		}
	}

	relGold := map[string]string{
		s1.ns + "actedIn":          s2.ns + "appearsIn",
		s1.ns + "directed":         s2.ns + "directorOf",
		s1.ns + "created":          s2.ns + "writerOf",
		s1.ns + "wasBornOnDate":    s2.ns + "bornOn",
		s1.ns + "diedOnDate":       s2.ns + "diedOn",
		s1.ns + "wasBornIn":        s2.ns + "bornIn",
		s1.ns + "wasCreatedOnDate": s2.ns + "releasedIn",
		labelRel1:                  labelRel1,
	}
	classGold := map[string]string{
		s1.ns + "wordnet_actor":         s2.ns + "Actor",
		s1.ns + "wordnet_film_director": s2.ns + "Director",
		s1.ns + "wordnet_writer":        s2.ns + "Writer",
		s1.ns + "wordnet_person":        s2.ns + "Personality",
		s1.ns + "wordnet_movie":         s2.ns + "Feature",
		s1.ns + "wordnet_series":        s2.ns + "TVSeries",
		s1.ns + "wordnet_work":          s2.ns + "Production",
	}
	return &Dataset{
		Name1:     "ykbfilm",
		Name2:     "ikb",
		Triples1:  s1.triples,
		Triples2:  s2.triples,
		Gold:      gold,
		RelGold:   relGold,
		ClassGold: classGold,
	}
}

// emitWork2 writes one ontology-2 production with full credits.
func emitWork2(s2 *tripleSink, l string, wk movieWork, title string,
	in2p []bool, p2 func(int) string, keep func() bool, r rng) {
	switch {
	case wk.kind == "series":
		s2.typed(l, "TVSeries")
	case r.chance(0.05):
		s2.typed(l, "TVMovie")
	default:
		s2.typed(l, "Feature")
	}
	s2.litIRIRel(l, labelRel1, title)
	if keep() {
		s2.lit(l, "releasedIn", wk.year)
	}
	if keep() {
		s2.lit(l, "hasGenre", wk.genre)
	}
	if in2p[wk.director] && keep() {
		s2.fact(p2(wk.director), "directorOf", l)
	}
	if in2p[wk.writer] && keep() {
		s2.fact(p2(wk.writer), "writerOf", l)
	}
	for _, a := range wk.cast {
		if in2p[a] && keep() {
			s2.fact(p2(a), "appearsIn", l)
		}
	}
}

// sanitize turns a display name into an IRI-safe local fragment.
func sanitize(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}
