package gen

import (
	"fmt"

	"repro/internal/eval"
)

// PersonsConfig scales the OAEI-style person corpus (Section 6.2, Table 1,
// "Person" row: 500 gold instance pairs, 4 class pairs, 20 relation pairs).
type PersonsConfig struct {
	// N is the number of matched persons (each with an address entity, so
	// the instance gold has 2N pairs at most; the paper's gold counts 500
	// person entries). Zero means 500.
	N int
	// Seed drives all randomness.
	Seed int64
	// TypoRate is the fraction of ontology-2 given names carrying a typo.
	// Identifying attributes (SSN, phone, e-mail) are never perturbed, so
	// the dataset stays perfectly resolvable, like OAEI person. Zero means
	// 0.05; negative means none.
	TypoRate float64
}

func (c PersonsConfig) withDefaults() PersonsConfig {
	if c.N == 0 {
		c.N = 500
	}
	if c.TypoRate == 0 {
		c.TypoRate = 0.05
	}
	if c.TypoRate < 0 {
		c.TypoRate = 0
	}
	return c
}

// Persons generates the person corpus: one synthetic population emitted
// into two ontologies with disjoint vocabularies (the paper renames all
// classes and relations of one copy so that nothing is shared, Section 6.2).
func Persons(cfg PersonsConfig) *Dataset {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	s1 := newSink("http://person1.example.org/")
	s2 := newSink("http://person2.example.org/")
	gold := eval.NewGold()

	// Vocabulary of ontology 1 / ontology 2.
	const (
		c1Person, c2Person   = "Person", "Human"
		c1Address, c2Address = "Address", "Location"
	)
	rel := map[string]string{ // o1 name -> o2 name
		"has_first_name":   "givenName",
		"has_surname":      "familyName",
		"soc_sec_id":       "ssn",
		"phone_number":     "telephone",
		"has_email":        "emailAddress",
		"date_of_birth":    "birthDate",
		"has_age":          "age",
		"has_address":      "livesAt",
		"knows":            "acquaintanceOf",
		"has_street":       "street",
		"has_house_number": "houseNumber",
		"is_in_city":       "city",
		"has_postcode":     "zipCode",
		"in_state":         "state",
	}

	states := []string{"North State", "South State", "East State", "West State", "Mid State"}

	for i := 0; i < cfg.N; i++ {
		p1 := fmt.Sprintf("person%04d", i)
		p2 := fmt.Sprintf("hum%04d", i)
		a1 := fmt.Sprintf("address%04d", i)
		a2 := fmt.Sprintf("loc%04d", i)

		first := r.pick(firstNames)
		last := r.pick(lastNames)
		ssn := fmt.Sprintf("%03d-%02d-%04d", i/100+100, i%100, r.Intn(10000))
		phone := fmt.Sprintf("555-%04d", i)
		email := fmt.Sprintf("%s.%s.%d@example.com", first, last, i)
		dob := fmt.Sprintf("19%02d-%02d-%02d", 20+r.Intn(80), 1+r.Intn(12), 1+r.Intn(28))
		age := fmt.Sprintf("%d", 18+r.Intn(70))
		street := r.pick(streets) + " Street"
		houseNo := fmt.Sprintf("%d", 1+r.Intn(400))
		city := r.pick(cities)
		postcode := r.digits(5)
		state := r.pick(states)

		first2 := first
		if r.chance(cfg.TypoRate) {
			first2 = r.typo(first2)
		}

		s1.typed(p1, c1Person)
		s1.lit(p1, "has_first_name", first)
		s1.lit(p1, "has_surname", last)
		s1.lit(p1, "soc_sec_id", ssn)
		s1.lit(p1, "phone_number", phone)
		s1.lit(p1, "has_email", email)
		s1.lit(p1, "date_of_birth", dob)
		s1.lit(p1, "has_age", age)
		s1.fact(p1, "has_address", a1)
		s1.typed(a1, c1Address)
		s1.lit(a1, "has_street", street)
		s1.lit(a1, "has_house_number", houseNo)
		s1.lit(a1, "is_in_city", city)
		s1.lit(a1, "has_postcode", postcode)
		s1.lit(a1, "in_state", state)

		s2.typed(p2, c2Person)
		s2.lit(p2, "givenName", first2)
		s2.lit(p2, "familyName", last)
		s2.lit(p2, "ssn", ssn)
		s2.lit(p2, "telephone", phone)
		s2.lit(p2, "emailAddress", email)
		s2.lit(p2, "birthDate", dob)
		s2.lit(p2, "age", age)
		s2.fact(p2, "livesAt", a2)
		s2.typed(a2, c2Address)
		s2.lit(a2, "street", street)
		s2.lit(a2, "houseNumber", houseNo)
		s2.lit(a2, "city", city)
		s2.lit(a2, "zipCode", postcode)
		s2.lit(a2, "state", state)

		gold.Add(s1.key(p1), s2.key(p2))
		gold.Add(s1.key(a1), s2.key(a2))
	}

	// A sparse social graph, mirrored in both copies, giving the corpus
	// resource-to-resource statements beyond person->address.
	for i := 0; i < cfg.N/4; i++ {
		a := r.Intn(cfg.N)
		b := r.Intn(cfg.N)
		if a == b {
			continue
		}
		s1.fact(fmt.Sprintf("person%04d", a), "knows", fmt.Sprintf("person%04d", b))
		s2.fact(fmt.Sprintf("hum%04d", a), "acquaintanceOf", fmt.Sprintf("hum%04d", b))
	}

	relGold := make(map[string]string, len(rel))
	for r1, r2 := range rel {
		relGold[s1.ns+r1] = s2.ns + r2
	}
	return &Dataset{
		Name1:    "person1",
		Name2:    "person2",
		Triples1: s1.triples,
		Triples2: s2.triples,
		Gold:     gold,
		RelGold:  relGold,
		ClassGold: map[string]string{
			s1.ns + c1Person:  s2.ns + c2Person,
			s1.ns + c1Address: s2.ns + c2Address,
		},
	}
}
