package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestPersonsDeterministic(t *testing.T) {
	a := Persons(PersonsConfig{N: 50, Seed: 7})
	b := Persons(PersonsConfig{N: 50, Seed: 7})
	if len(a.Triples1) != len(b.Triples1) || len(a.Triples2) != len(b.Triples2) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Triples1 {
		if !a.Triples1[i].Equal(b.Triples1[i]) {
			t.Fatalf("triple %d differs", i)
		}
	}
	c := Persons(PersonsConfig{N: 50, Seed: 8})
	same := len(c.Triples1) == len(a.Triples1)
	if same {
		same = false
		for i := range a.Triples1 {
			if !a.Triples1[i].Equal(c.Triples1[i]) {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestPersonsShape(t *testing.T) {
	d := Persons(PersonsConfig{N: 100, Seed: 1})
	if d.Gold.Len() != 200 { // persons + addresses
		t.Fatalf("gold = %d, want 200", d.Gold.Len())
	}
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o1.NumInstances() != 200 || o2.NumInstances() != 200 {
		t.Fatalf("instances = %d / %d, want 200 each", o1.NumInstances(), o2.NumInstances())
	}
	if o1.NumClasses() != 2 || o2.NumClasses() != 2 {
		t.Fatalf("classes = %d / %d, want 2 each", o1.NumClasses(), o2.NumClasses())
	}
	// Vocabularies must be disjoint (the paper renames everything).
	for _, r := range o1.Relations() {
		name := o1.RelationName(r)
		if _, ok := o2.LookupRelation(name); ok {
			t.Fatalf("shared relation %q", name)
		}
	}
	if len(d.RelGold) < 10 {
		t.Fatalf("relation gold too small: %d", len(d.RelGold))
	}
}

func TestPersonsSSNUnperturbed(t *testing.T) {
	d := Persons(PersonsConfig{N: 40, Seed: 3, TypoRate: 1})
	count := func(ts []rdf.Triple, rel string) map[string]bool {
		vals := map[string]bool{}
		for _, tr := range ts {
			if strings.HasSuffix(tr.Predicate.Value, rel) {
				vals[tr.Object.Value] = true
			}
		}
		return vals
	}
	ssn1 := count(d.Triples1, "soc_sec_id")
	ssn2 := count(d.Triples2, "ssn")
	if len(ssn1) != len(ssn2) {
		t.Fatalf("ssn counts differ: %d vs %d", len(ssn1), len(ssn2))
	}
	for v := range ssn1 {
		if !ssn2[v] {
			t.Fatalf("ssn %q missing from copy 2", v)
		}
	}
}

func TestRestaurantsShape(t *testing.T) {
	d := Restaurants(RestaurantsConfig{N: 64, Seed: 2})
	if d.Gold.Len() != 128 { // restaurants + addresses
		t.Fatalf("gold = %d", d.Gold.Len())
	}
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Extra + chain restaurants exist beyond the matched ones.
	if o1.NumInstances() <= 128 || o2.NumInstances() <= 128 {
		t.Fatalf("extras missing: %d / %d", o1.NumInstances(), o2.NumInstances())
	}
}

func TestRestaurantsPhoneFormatNoise(t *testing.T) {
	d := Restaurants(RestaurantsConfig{N: 100, Seed: 5, PhoneFormatNoise: 1})
	slashes := 0
	for _, tr := range d.Triples2 {
		if strings.HasSuffix(tr.Predicate.Value, "phoneNumber") &&
			strings.Contains(tr.Object.Value, "/") {
			slashes++
		}
	}
	if slashes != 0 {
		t.Fatalf("%d ontology-2 phones kept the slash format", slashes)
	}
	// Under identity normalization the phone literals differ; under
	// AlphaNum they coincide.
	o1, o2, err := d.Build(func(term rdf.Term) string {
		out := ""
		for _, r := range term.Value {
			if r != '/' && r != '-' {
				out += string(r)
			}
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = o1
	_ = o2
}

func TestWorldShape(t *testing.T) {
	d := World(WorldConfig{People: 500, Cities: 50, Companies: 30, Movies: 100, Albums: 80, Books: 80, Seed: 11})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ontology 1 must have the deeper class structure, ontology 2 the
	// richer relation set — the defining asymmetry of the corpus.
	if o1.NumClasses() <= o2.NumClasses() {
		t.Fatalf("class asymmetry lost: %d <= %d", o1.NumClasses(), o2.NumClasses())
	}
	if o2.NumBaseRelations() <= o1.NumBaseRelations() {
		t.Fatalf("relation asymmetry lost: %d <= %d", o2.NumBaseRelations(), o1.NumBaseRelations())
	}
	if d.Gold.Len() == 0 {
		t.Fatal("empty gold")
	}
	// Overlap must be partial: gold smaller than either instance set.
	if d.Gold.Len() >= o1.NumInstances() || d.Gold.Len() >= o2.NumInstances() {
		t.Fatalf("overlap not partial: gold %d, instances %d/%d",
			d.Gold.Len(), o1.NumInstances(), o2.NumInstances())
	}
}

func TestWorldGoldConsistent(t *testing.T) {
	d := World(WorldConfig{People: 300, Cities: 30, Companies: 20, Movies: 60, Albums: 50, Books: 50, Seed: 13})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Gold.Pairs() {
		if _, ok := o1.LookupResource(p[0]); !ok {
			t.Fatalf("gold entity %s missing from o1", p[0])
		}
		if _, ok := o2.LookupResource(p[1]); !ok {
			t.Fatalf("gold entity %s missing from o2", p[1])
		}
	}
}

func TestMoviesShape(t *testing.T) {
	d := Movies(MoviesConfig{People: 400, Movies: 120, Seed: 17})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gold.Len() == 0 {
		t.Fatal("empty gold")
	}
	// Ontology 2 mimics IMDb: few classes; ontology 1 carries the leaf
	// categories.
	if o1.NumClasses() <= o2.NumClasses() {
		t.Fatalf("class asymmetry lost: %d <= %d", o1.NumClasses(), o2.NumClasses())
	}
	// rdfs:label must exist in both (the baseline depends on it).
	if _, ok := o1.LookupRelation(labelRel1); !ok {
		t.Fatal("no rdfs:label in o1")
	}
	if _, ok := o2.LookupRelation(labelRel1); !ok {
		t.Fatal("no rdfs:label in o2")
	}
}

func TestMoviesFamousBias(t *testing.T) {
	d := Movies(MoviesConfig{People: 600, Movies: 100, Seed: 19})
	// Documentaries must exist on the ontology-2 side only.
	docs := 0
	for _, tr := range d.Triples2 {
		if tr.Predicate.Value == rdf.RDFType && strings.HasSuffix(tr.Object.Value, "Documentary") {
			docs++
		}
	}
	if docs == 0 {
		t.Fatal("no documentaries generated")
	}
}

func TestWriteFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := Persons(PersonsConfig{N: 10, Seed: 23})
	if err := d.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "person1.nt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := store.NewBuilder("p1", store.NewLiterals(), nil)
	if err := b.Load(rdf.NewNTriplesReader(f)); err != nil {
		t.Fatal(err)
	}
	o := b.Build()
	if o.NumInstances() != 20 {
		t.Fatalf("parsed instances = %d, want 20", o.NumInstances())
	}
	goldData, err := os.ReadFile(filepath.Join(dir, "gold.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(goldData), "\n")
	if lines != d.Gold.Len() {
		t.Fatalf("gold.tsv lines = %d, want %d", lines, d.Gold.Len())
	}
}
