package gen

import (
	"fmt"

	"repro/internal/eval"
)

// WorldConfig scales the YAGO-vs-DBpedia-style corpus of Section 6.4: one
// synthetic world sampled into two large ontologies with independently
// designed schemas. Ontology 1 ("ykb") has a deep, fine-grained taxonomy and
// few relations; ontology 2 ("dkb") has a flat taxonomy and many fine-grained
// relations, several of which are inverted or split versions of ykb's.
type WorldConfig struct {
	// People, Cities, Companies, Movies, Albums, Books size the world.
	// Zeros mean 6000 / 250 / 200 / 1500 / 1200 / 1200.
	People, Cities, Companies, Movies, Albums, Books int
	// Seed drives all randomness.
	Seed int64
	// Present1/Present2 are the probabilities that a world entity appears
	// in each ontology (the paper's corpora share only half their
	// instances). Zeros mean 0.85 / 0.80.
	Present1, Present2 float64
	// KeepFact1/KeepFact2 are the per-fact emission probabilities, the
	// "statements about the instances differ" noise. Zeros mean 0.85 /
	// 0.70.
	KeepFact1, KeepFact2 float64
}

func (c WorldConfig) withDefaults() WorldConfig {
	setInt := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	setInt(&c.People, 6000)
	setInt(&c.Cities, 250)
	setInt(&c.Companies, 200)
	setInt(&c.Movies, 1500)
	setInt(&c.Albums, 1200)
	setInt(&c.Books, 1200)
	setF := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	setF(&c.Present1, 0.85)
	setF(&c.Present2, 0.80)
	setF(&c.KeepFact1, 0.85)
	setF(&c.KeepFact2, 0.70)
	return c
}

// worldPerson is one ground-truth person of the synthetic world.
type worldPerson struct {
	name       string
	birthDate  string
	birthCity  int
	liveCity   int
	country    int
	country2   int // -1 unless dual citizen
	profession string
	spouse     int // -1 if none
	children   []int
	almaMater  int // university pool index, -1 if none
	employer   int // company index, -1 if none
	prize      int // prize pool index, -1 if none
}

type worldWork struct {
	kind    string // "movie", "album", "book"
	title   string
	year    string
	creator int // person index (director for movies)
	actors  []int
}

// worldBuilder carries the state of one World generation.
type worldBuilder struct {
	cfg  WorldConfig
	r    rng
	s1   *tripleSink
	s2   *tripleSink
	gold *eval.Gold

	in1, in2 map[string]bool // entity local-name presence per ontology

	persons []worldPerson
	cityPop []string // population literal per city
	cityCtr []int    // country per city
	works   []worldWork
}

// World generates the corpus.
func World(cfg WorldConfig) *Dataset {
	cfg = cfg.withDefaults()
	w := &worldBuilder{
		cfg:  cfg,
		r:    newRNG(cfg.Seed),
		s1:   newSink("http://ykb.example.org/"),
		s2:   newSink("http://dkb.example.org/"),
		gold: eval.NewGold(),
		in1:  map[string]bool{},
		in2:  map[string]bool{},
	}
	w.invent()
	w.declareSchemas()
	w.emitPlaces()
	w.emitOrganizations()
	w.emitPeople()
	w.emitWorks()
	return &Dataset{
		Name1:     "ykb",
		Name2:     "dkb",
		Triples1:  w.s1.triples,
		Triples2:  w.s2.triples,
		Gold:      w.gold,
		RelGold:   w.relGold(),
		ClassGold: w.classGold(),
	}
}

// invent rolls the ground-truth world.
func (w *worldBuilder) invent() {
	r := w.r
	w.cityPop = make([]string, w.cfg.Cities)
	w.cityCtr = make([]int, w.cfg.Cities)
	for i := range w.cityPop {
		w.cityPop[i] = fmt.Sprintf("%d", 1000+r.Intn(8000000))
		w.cityCtr[i] = r.Intn(len(countries))
	}
	w.persons = make([]worldPerson, w.cfg.People)
	for i := range w.persons {
		p := worldPerson{
			name:       r.personName(),
			birthDate:  fmt.Sprintf("1%03d-%02d-%02d", 850+r.Intn(150), 1+r.Intn(12), 1+r.Intn(28)),
			birthCity:  r.Intn(w.cfg.Cities),
			liveCity:   r.Intn(w.cfg.Cities),
			profession: r.pick(professions),
			spouse:     -1,
			almaMater:  -1,
			employer:   -1,
			prize:      -1,
		}
		p.country = w.cityCtr[p.birthCity]
		p.country2 = -1
		if r.chance(0.05) {
			p.country2 = r.Intn(len(countries))
		}
		if r.chance(0.4) {
			p.almaMater = r.Intn(len(universities))
		}
		if r.chance(0.3) {
			p.employer = r.Intn(w.cfg.Companies)
		}
		if r.chance(0.1) {
			p.prize = r.Intn(len(prizes))
		}
		w.persons[i] = p
	}
	// Spouses: pair adjacent indices with some probability.
	for i := 0; i+1 < len(w.persons); i += 2 {
		if r.chance(0.35) {
			w.persons[i].spouse = i + 1
			w.persons[i+1].spouse = i
		}
	}
	// Children: link to persons with higher index.
	for i := range w.persons {
		if r.chance(0.25) {
			kid := i + 1 + r.Intn(50)
			if kid < len(w.persons) {
				w.persons[i].children = append(w.persons[i].children, kid)
			}
		}
	}
	// Works.
	titleUsed := map[string]bool{}
	mkTitle := func() string {
		for {
			t := "The " + r.pick(movieWords) + " " + r.pick(movieNouns)
			if r.chance(0.3) {
				t = r.pick(movieWords) + " " + r.pick(movieNouns)
			}
			if !titleUsed[t] {
				titleUsed[t] = true
				return t
			}
			t += fmt.Sprintf(" %d", 2+r.Intn(8)) // sequels disambiguate
			if !titleUsed[t] {
				titleUsed[t] = true
				return t
			}
		}
	}
	// Creators and actors are prolific: a small sub-population carries many
	// works each, so fun(created) and fun(actedIn) are realistically low
	// and sharing a creator is weak evidence of work identity.
	numCreators := len(w.persons)/25 + 1
	numActors := len(w.persons)/8 + 1
	addWork := func(kind string, n int) {
		for i := 0; i < n; i++ {
			wk := worldWork{
				kind:    kind,
				title:   mkTitle(),
				year:    fmt.Sprintf("%d", 1920+r.Intn(100)),
				creator: r.Intn(numCreators),
			}
			if kind == "movie" {
				cast := 2 + r.Intn(5)
				for j := 0; j < cast; j++ {
					wk.actors = append(wk.actors, numCreators+r.Intn(numActors))
				}
			}
			w.works = append(w.works, wk)
		}
	}
	addWork("movie", w.cfg.Movies)
	addWork("album", w.cfg.Albums)
	addWork("book", w.cfg.Books)
}

// pres rolls and caches presence of a world entity in each ontology.
func (w *worldBuilder) pres(local string) (bool, bool) {
	if _, ok := w.in1[local]; !ok {
		w.in1[local] = w.r.chance(w.cfg.Present1)
		w.in2[local] = w.r.chance(w.cfg.Present2)
	}
	return w.in1[local], w.in2[local]
}

// has1 and has2 report (rolling if needed) whether the entity identified by
// its ontology-1 local name is present in the respective ontology. Facts may
// only reference present entities, or absent entities would leak back in and
// poison the gold standard.
func (w *worldBuilder) has1(local string) bool { in1, _ := w.pres(local); return in1 }
func (w *worldBuilder) has2(local string) bool { _, in2 := w.pres(local); return in2 }

// emitPair registers the gold pair when the entity is in both ontologies.
func (w *worldBuilder) emitPair(l1, l2 string) {
	w.gold.Add(w.s1.key(l1), w.s2.key(l2))
}

// fact1 and fact2 emit a fact with per-side dropout.
func (w *worldBuilder) fact1(subj, rel, obj string) {
	if w.r.chance(w.cfg.KeepFact1) {
		w.s1.fact(subj, rel, obj)
	}
}
func (w *worldBuilder) lit1(subj, rel, v string) {
	if w.r.chance(w.cfg.KeepFact1) {
		w.s1.lit(subj, rel, v)
	}
}
func (w *worldBuilder) fact2(subj, rel, obj string) {
	if w.r.chance(w.cfg.KeepFact2) {
		w.s2.fact(subj, rel, obj)
	}
}
func (w *worldBuilder) lit2(subj, rel, v string) {
	if w.r.chance(w.cfg.KeepFact2) {
		w.s2.lit(subj, rel, v)
	}
}

// declareSchemas emits the class hierarchies. Ontology 1 is deep: base
// classes plus generated leaf categories in wikicategory style. Ontology 2
// is flat with a handful of broad classes.
func (w *worldBuilder) declareSchemas() {
	// Ontology 1 taxonomy.
	for _, p := range professions {
		w.s1.subclass("wordnet_"+p, "wordnet_person")
	}
	w.s1.subclass("wordnet_city", "yagoGeoEntity")
	w.s1.subclass("wordnet_country", "yagoGeoEntity")
	w.s1.subclass("wordnet_university", "wordnet_organization")
	w.s1.subclass("wordnet_company", "wordnet_organization")
	for _, k := range []string{"movie", "album", "book"} {
		w.s1.subclass("wordnet_"+k, "wordnet_work")
	}
	// Leaf categories, declared lazily below via typed statements plus
	// these subclass edges.
	for ci := range make([]struct{}, w.cfg.Cities) {
		w.s1.subclass(catPeopleFrom(ci), "wordnet_person")
	}
	for _, prof := range professions {
		for ctr := range countries {
			w.s1.subclass(catProfFrom(prof, ctr), "wordnet_"+prof)
		}
	}
	// Ontology 2 flat taxonomy.
	w.s2.subclass("Artist", "Person")
	w.s2.subclass("Settlement", "Place")
	w.s2.subclass("Country", "Place")
	w.s2.subclass("EducationalInstitution", "Organisation")
	w.s2.subclass("Company", "Organisation")
	for _, k := range []string{"Film", "MusicalWork", "WrittenWork"} {
		w.s2.subclass(k, "Work")
	}
}

func catPeopleFrom(city int) string { return fmt.Sprintf("wikicategory_People_from_city%03d", city) }
func catProfFrom(prof string, ctr int) string {
	return fmt.Sprintf("wikicategory_%s_%ss", countries[ctr], prof)
}

func (w *worldBuilder) emitPlaces() {
	for ci := 0; ci < w.cfg.Cities; ci++ {
		l1 := fmt.Sprintf("city%03d", ci)
		l2 := fmt.Sprintf("City_%03d", ci)
		in1, in2 := w.pres(l1)
		name := cities[ci%len(cities)] + fmt.Sprintf(" %d", ci/len(cities))
		if in1 {
			w.s1.typed(l1, "wordnet_city")
			w.s1.litIRIRel(l1, labelRel1, name)
			w.lit1(l1, "hasPopulation", w.cityPop[ci])
			if w.has1(countryLocal1(w.cityCtr[ci])) {
				w.fact1(l1, "isLocatedIn", countryLocal1(w.cityCtr[ci]))
			}
		}
		if in2 {
			w.s2.typed(l2, "Settlement")
			w.lit2(l2, "name", name)
			w.lit2(l2, "populationTotal", w.cityPop[ci])
			if w.has2(countryLocal1(w.cityCtr[ci])) {
				w.fact2(l2, "country", countryLocal2(w.cityCtr[ci]))
			}
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
	for ctr := range countries {
		l1, l2 := countryLocal1(ctr), countryLocal2(ctr)
		in1, in2 := w.pres(l1)
		if in1 {
			w.s1.typed(l1, "wordnet_country")
			w.s1.litIRIRel(l1, labelRel1, countries[ctr])
		}
		if in2 {
			w.s2.typed(l2, "Country")
			w.lit2(l2, "name", countries[ctr])
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
}

func countryLocal1(i int) string { return "country_" + countries[i] }
func countryLocal2(i int) string { return "Ctry_" + countries[i] }

func (w *worldBuilder) emitOrganizations() {
	for ui := range universities {
		l1 := fmt.Sprintf("univ%02d", ui)
		l2 := fmt.Sprintf("Uni_%02d", ui)
		in1, in2 := w.pres(l1)
		if in1 {
			w.s1.typed(l1, "wordnet_university")
			w.s1.litIRIRel(l1, labelRel1, universities[ui])
		}
		if in2 {
			w.s2.typed(l2, "EducationalInstitution")
			w.lit2(l2, "name", universities[ui])
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
	for ci := 0; ci < w.cfg.Companies; ci++ {
		l1 := fmt.Sprintf("co%03d", ci)
		l2 := fmt.Sprintf("Corp_%03d", ci)
		in1, in2 := w.pres(l1)
		name := w.r.pick(movieWords) + " " + w.r.pick([]string{"Corp", "Industries", "Group", "Systems", "Labs"})
		year := fmt.Sprintf("%d", 1880+w.r.Intn(140))
		city := w.r.Intn(w.cfg.Cities)
		if in1 {
			w.s1.typed(l1, "wordnet_company")
			w.s1.litIRIRel(l1, labelRel1, name+fmt.Sprintf(" %02d", ci%97))
			w.lit1(l1, "wasFoundedOnDate", year)
			if w.has1(fmt.Sprintf("city%03d", city)) {
				w.fact1(l1, "isLocatedIn", fmt.Sprintf("city%03d", city))
			}
		}
		if in2 {
			w.s2.typed(l2, "Company")
			w.lit2(l2, "name", name+fmt.Sprintf(" %02d", ci%97))
			w.lit2(l2, "foundingYear", year)
			if w.has2(fmt.Sprintf("city%03d", city)) {
				w.fact2(l2, "location", fmt.Sprintf("City_%03d", city))
			}
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
	for pi := range prizes {
		l1 := fmt.Sprintf("prize%02d", pi)
		l2 := fmt.Sprintf("Award_%02d", pi)
		in1, in2 := w.pres(l1)
		// A prize's name is its only triple; it must not be dropped, or a
		// gold entity would have no statements at all.
		if in1 {
			w.s1.litIRIRel(l1, labelRel1, prizes[pi])
		}
		if in2 {
			w.s2.lit(l2, "name", prizes[pi])
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
}

const labelRel1 = "http://www.w3.org/2000/01/rdf-schema#label"

func personLocal1(i int) string { return fmt.Sprintf("p%05d", i) }
func personLocal2(i int) string { return fmt.Sprintf("Pers_%05d", i) }

func (w *worldBuilder) emitPeople() {
	for i, p := range w.persons {
		l1, l2 := personLocal1(i), personLocal2(i)
		in1, in2 := w.pres(l1)
		if in1 {
			w.emitPerson1(l1, i, p)
		}
		if in2 {
			w.emitPerson2(l2, i, p)
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
}

func (w *worldBuilder) emitPerson1(l1 string, i int, p worldPerson) {
	w.s1.typed(l1, "wordnet_"+p.profession)
	w.s1.typed(l1, catPeopleFrom(p.birthCity))
	w.s1.typed(l1, catProfFrom(p.profession, p.country))
	// Many ontology-1 labels keep a Wikipedia-style disambiguation suffix
	// that ontology 2 strips; the naive string identity of Section 5.3
	// cannot bridge those, the paper's main recall loss.
	label := p.name
	if w.r.chance(0.45) {
		label = p.name + " (" + p.profession + ")"
	}
	w.s1.litIRIRel(l1, labelRel1, label)
	w.lit1(l1, "wasBornOnDate", p.birthDate)
	if w.has1(fmt.Sprintf("city%03d", p.birthCity)) {
		w.fact1(l1, "wasBornIn", fmt.Sprintf("city%03d", p.birthCity))
	}
	if w.has1(fmt.Sprintf("city%03d", p.liveCity)) {
		w.fact1(l1, "livesIn", fmt.Sprintf("city%03d", p.liveCity))
	}
	if w.has1(countryLocal1(p.country)) {
		w.fact1(l1, "isCitizenOf", countryLocal1(p.country))
	}
	if p.country2 >= 0 && w.has1(countryLocal1(p.country2)) {
		w.fact1(l1, "isCitizenOf", countryLocal1(p.country2))
	}
	if p.spouse >= 0 && w.has1(personLocal1(p.spouse)) {
		w.fact1(l1, "isMarriedTo", personLocal1(p.spouse))
	}
	for _, kid := range p.children {
		if w.has1(personLocal1(kid)) {
			w.fact1(l1, "hasChild", personLocal1(kid))
		}
	}
	if p.almaMater >= 0 && w.has1(fmt.Sprintf("univ%02d", p.almaMater)) {
		w.fact1(l1, "graduatedFrom", fmt.Sprintf("univ%02d", p.almaMater))
	}
	if p.employer >= 0 && w.has1(fmt.Sprintf("co%03d", p.employer)) {
		w.fact1(l1, "worksAt", fmt.Sprintf("co%03d", p.employer))
	}
	if p.prize >= 0 && w.has1(fmt.Sprintf("prize%02d", p.prize)) {
		w.fact1(l1, "hasWonPrize", fmt.Sprintf("prize%02d", p.prize))
	}
}

func (w *worldBuilder) emitPerson2(l2 string, i int, p worldPerson) {
	w.s2.typed(l2, "Person")
	if p.profession == "singer" || p.profession == "writer" ||
		p.profession == "painter" || p.profession == "composer" {
		w.s2.typed(l2, "Artist")
	}
	// A long tail of ontology-2 persons has no infobox: name and type
	// only. Together with the suffixed ontology-1 labels this drives the
	// paper's recall gap between all entities (73%) and entities with more
	// than 10 facts (85%).
	w.s2.lit(l2, "name", p.name)
	if w.r.chance(0.45) {
		return
	}
	w.lit2(l2, "birthName", p.name)
	bd := p.birthDate
	if w.r.chance(0.55) {
		bd = reformatDate(bd)
	}
	w.lit2(l2, "birthDate", bd)
	if w.has2(fmt.Sprintf("city%03d", p.birthCity)) {
		w.fact2(l2, "birthPlace", fmt.Sprintf("City_%03d", p.birthCity))
	}
	if w.has2(fmt.Sprintf("city%03d", p.liveCity)) {
		w.fact2(l2, "residence", fmt.Sprintf("City_%03d", p.liveCity))
	}
	if w.has2(countryLocal1(p.country)) {
		w.fact2(l2, "nationality", countryLocal2(p.country))
	}
	if p.country2 >= 0 && w.has2(countryLocal1(p.country2)) {
		w.fact2(l2, "nationality", countryLocal2(p.country2))
	}
	if p.spouse >= 0 && w.has2(personLocal1(p.spouse)) && w.r.chance(0.5) {
		// dbp:spouse is emitted in a random direction (the paper finds
		// isMarriedTo aligned with both dbp:spouse and dbp:spouse⁻¹).
		w.fact2(l2, "spouse", personLocal2(p.spouse))
	}
	for _, kid := range p.children {
		if !w.has2(personLocal1(kid)) {
			continue
		}
		// dbp:parent runs child -> parent (inverse of y:hasChild); a
		// minority of records also carry dbp:child.
		w.fact2(personLocal2(kid), "parent", l2)
		if w.r.chance(0.3) {
			w.fact2(l2, "child", personLocal2(kid))
		}
	}
	if p.almaMater >= 0 && w.has2(fmt.Sprintf("univ%02d", p.almaMater)) {
		w.fact2(l2, "almaMater", fmt.Sprintf("Uni_%02d", p.almaMater))
	}
	if p.employer >= 0 && w.has2(fmt.Sprintf("co%03d", p.employer)) {
		w.fact2(l2, "employer", fmt.Sprintf("Corp_%03d", p.employer))
	}
	if p.prize >= 0 && w.has2(fmt.Sprintf("prize%02d", p.prize)) {
		w.fact2(l2, "award", fmt.Sprintf("Award_%02d", p.prize))
	}
}

var workClass2 = map[string]string{
	"movie": "Film", "album": "MusicalWork", "book": "WrittenWork",
}

var workLocal2Prefix = map[string]string{
	"movie": "Movie_", "album": "Album_", "book": "Book_",
}

func (w *worldBuilder) emitWorks() {
	counters := map[string]int{}
	for _, wk := range w.works {
		idx := counters[wk.kind]
		counters[wk.kind]++
		l1 := fmt.Sprintf("%s%04d", wk.kind, idx)
		l2 := fmt.Sprintf("%s%04d", workLocal2Prefix[wk.kind], idx)
		// Both corpora derive from the same encyclopedia: a work present in
		// one is nearly always present in the other, so one-sided works
		// (which would attract weak shared-creator matches) are rare.
		in1 := w.r.chance(w.cfg.Present1)
		in2 := w.r.chance(0.70)
		if in1 {
			in2 = w.r.chance(0.95)
		}
		w.in1[l1], w.in2[l1] = in1, in2
		if in1 {
			w.s1.typed(l1, "wordnet_"+wk.kind)
			w.s1.litIRIRel(l1, labelRel1, wk.title)
			w.lit1(l1, "wasCreatedOnDate", wk.year)
			if w.has1(personLocal1(wk.creator)) {
				w.fact1(personLocal1(wk.creator), "created", l1)
			}
			for _, actor := range wk.actors {
				if w.has1(personLocal1(actor)) {
					w.fact1(personLocal1(actor), "actedIn", l1)
				}
			}
		}
		if in2 {
			w.s2.typed(l2, workClass2[wk.kind])
			switch wk.kind {
			case "movie":
				if w.has2(personLocal1(wk.creator)) {
					w.fact2(l2, "director", personLocal2(wk.creator))
				}
				for _, actor := range wk.actors {
					if w.has2(personLocal1(actor)) {
						w.fact2(l2, "starring", personLocal2(actor))
					}
				}
			case "album":
				if w.has2(personLocal1(wk.creator)) {
					w.fact2(l2, "artist", personLocal2(wk.creator))
				}
			case "book":
				if w.has2(personLocal1(wk.creator)) {
					w.fact2(l2, "author", personLocal2(wk.creator))
				}
			}
			w.s2.lit(l2, "name", wk.title)
			w.lit2(l2, "releaseYear", wk.year)
		}
		if in1 && in2 {
			w.emitPair(l1, l2)
		}
	}
}

// relGold records the base relation correspondences; "⁻¹" marks inverted
// pairs, mirroring Table 4's alignments.
func (w *worldBuilder) relGold() map[string]string {
	inv := func(local string) string { return w.s2.ns + local + "⁻¹" }
	return map[string]string{
		labelRel1:                    w.s2.ns + "name",
		w.s1.ns + "wasBornOnDate":    w.s2.ns + "birthDate",
		w.s1.ns + "wasBornIn":        w.s2.ns + "birthPlace",
		w.s1.ns + "livesIn":          w.s2.ns + "residence",
		w.s1.ns + "isCitizenOf":      w.s2.ns + "nationality",
		w.s1.ns + "isMarriedTo":      w.s2.ns + "spouse",
		w.s1.ns + "hasChild":         inv("parent"),
		w.s1.ns + "graduatedFrom":    w.s2.ns + "almaMater",
		w.s1.ns + "worksAt":          w.s2.ns + "employer",
		w.s1.ns + "hasWonPrize":      w.s2.ns + "award",
		w.s1.ns + "actedIn":          inv("starring"),
		w.s1.ns + "isLocatedIn":      w.s2.ns + "country",
		w.s1.ns + "hasPopulation":    w.s2.ns + "populationTotal",
		w.s1.ns + "wasFoundedOnDate": w.s2.ns + "foundingYear",
		w.s1.ns + "wasCreatedOnDate": w.s2.ns + "releaseYear",
		w.s1.ns + "created":          inv("author"), // also artist⁻¹/director⁻¹
	}
}

func (w *worldBuilder) classGold() map[string]string {
	m := map[string]string{
		w.s1.ns + "wordnet_person":       w.s2.ns + "Person",
		w.s1.ns + "wordnet_city":         w.s2.ns + "Settlement",
		w.s1.ns + "wordnet_country":      w.s2.ns + "Country",
		w.s1.ns + "wordnet_university":   w.s2.ns + "EducationalInstitution",
		w.s1.ns + "wordnet_company":      w.s2.ns + "Company",
		w.s1.ns + "wordnet_organization": w.s2.ns + "Organisation",
		w.s1.ns + "wordnet_movie":        w.s2.ns + "Film",
		w.s1.ns + "wordnet_album":        w.s2.ns + "MusicalWork",
		w.s1.ns + "wordnet_book":         w.s2.ns + "WrittenWork",
		w.s1.ns + "wordnet_work":         w.s2.ns + "Work",
		w.s1.ns + "yagoGeoEntity":        w.s2.ns + "Place",
	}
	for _, p := range professions {
		target := w.s2.ns + "Person"
		if p == "singer" || p == "writer" || p == "painter" || p == "composer" {
			target = w.s2.ns + "Artist"
		}
		m[w.s1.ns+"wordnet_"+p] = target
	}
	return m
}
