package gen

import (
	"fmt"
	"strings"

	"repro/internal/eval"
)

// RestaurantsConfig scales the OAEI-style restaurant corpus (Section 6.2,
// Table 1, "Rest." row: 112 gold pairs) and controls the noise processes
// that drive the Section 6.3 design-alternative experiments.
type RestaurantsConfig struct {
	// N is the number of matched restaurants. Zero means 112.
	N int
	// Extra1 and Extra2 are unmatched restaurants added to each side.
	// Zero means N/8 each; negative means none.
	Extra1, Extra2 int
	// Seed drives all randomness.
	Seed int64

	// PhoneFormatNoise is the fraction of pairs whose phone numbers differ
	// only in punctuation ("213/467-1108" vs "213-467-1108"): unequal
	// under identity literals, equal under the AlphaNum normalizer. Zero
	// means 0.95; negative means none.
	PhoneFormatNoise float64
	// NameVariantRate is the fraction of pairs whose names differ by
	// punctuation or case only (AlphaNum-fixable). Zero means 0.15.
	NameVariantRate float64
	// HardNameRate is the fraction of pairs whose names differ by word
	// order (no character normalization repairs them). Zero means 0.25.
	HardNameRate float64
	// StreetAbbrevRate is the fraction of pairs whose street value is
	// abbreviated on one side ("Main Street" vs "Main St"): unequal under
	// both identity and AlphaNum, which is what makes negative evidence
	// destructive (Section 6.3). Zero means 0.40.
	StreetAbbrevRate float64
	// ChainPairs is the number of same-name restaurant pairs in different
	// cities (precision hazards). Zero means N/16.
	ChainPairs int
}

func (c RestaurantsConfig) withDefaults() RestaurantsConfig {
	if c.N == 0 {
		c.N = 112
	}
	if c.Extra1 == 0 {
		c.Extra1 = c.N / 8
	}
	if c.Extra2 == 0 {
		c.Extra2 = c.N / 8
	}
	if c.Extra1 < 0 {
		c.Extra1 = 0
	}
	if c.Extra2 < 0 {
		c.Extra2 = 0
	}
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
		if *v < 0 {
			*v = 0
		}
	}
	def(&c.PhoneFormatNoise, 0.95)
	def(&c.NameVariantRate, 0.15)
	def(&c.HardNameRate, 0.25)
	def(&c.StreetAbbrevRate, 0.40)
	if c.ChainPairs == 0 {
		c.ChainPairs = c.N / 16
	}
	if c.ChainPairs < 0 {
		c.ChainPairs = 0
	}
	return c
}

// restaurantRecord is the ground-truth record emitted into both ontologies
// under independent noise.
type restaurantRecord struct {
	name     string
	street   string
	houseNo  string
	city     string
	phone    string
	category string
}

// Restaurants generates the restaurant corpus with the attribute-format
// noise described in Section 6.3.
func Restaurants(cfg RestaurantsConfig) *Dataset {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	s1 := newSink("http://restaurant1.example.org/")
	s2 := newSink("http://restaurant2.example.org/")
	gold := eval.NewGold()

	// Cities and categories draw from small pools so that their inverse
	// functionalities fall below θ, exactly like the real corpus where
	// hundreds of restaurants share "los angeles": sharing a city or a
	// cuisine alone is evidence the algorithm truncates to zero
	// (Section 5.2), preventing spurious seeds from amplifying through the
	// functional has_address/locatedAt loop.
	restCities := cities[:6]
	restCuisines := cuisines[:6]
	usedNames := map[string]bool{}
	makeRecord := func(forceName string) restaurantRecord {
		name := forceName
		for name == "" || (forceName == "" && usedNames[name]) {
			name = fmt.Sprintf("%s %s %s",
				r.pick(restaurantAdjectives), r.pick(restCuisines), r.pick(restaurantTypes))
		}
		usedNames[name] = true
		return restaurantRecord{
			name:     name,
			street:   r.pick(streets) + " Street",
			houseNo:  fmt.Sprintf("%d", 1+r.Intn(900)),
			city:     r.pick(restCities),
			phone:    fmt.Sprintf("%03d/%03d-%04d", 200+r.Intn(700), 100+r.Intn(900), r.Intn(10000)),
			category: r.pick(restCuisines),
		}
	}

	emit1 := func(id string, rec restaurantRecord) {
		s1.typed(id, "Restaurant")
		s1.lit(id, "name", rec.name)
		addr := id + "_addr"
		s1.fact(id, "has_address", addr)
		s1.typed(addr, "Address")
		s1.lit(addr, "street", rec.houseNo+" "+rec.street)
		s1.lit(addr, "city", rec.city)
		s1.lit(id, "phone", rec.phone)
		s1.lit(id, "category", rec.category)
	}
	emit2 := func(id string, rec restaurantRecord) {
		// Ontology 2's source formats phones with dashes: the format
		// divergence of Section 6.3 applies to every record it carries.
		if r.chance(cfg.PhoneFormatNoise) {
			rec.phone = strings.ReplaceAll(rec.phone, "/", "-")
		}
		s2.typed(id, "Eatery")
		s2.lit(id, "title", rec.name)
		addr := id + "_site"
		s2.fact(id, "locatedAt", addr)
		s2.typed(addr, "Site")
		s2.lit(addr, "streetAddress", rec.houseNo+" "+rec.street)
		s2.lit(addr, "inCity", rec.city)
		s2.lit(id, "phoneNumber", rec.phone)
		s2.lit(id, "cuisine", rec.category)
	}

	for i := 0; i < cfg.N; i++ {
		rec := makeRecord("")
		id1 := fmt.Sprintf("rest%04d", i)
		id2 := fmt.Sprintf("eat%04d", i)

		rec2 := rec
		switch {
		case r.chance(cfg.HardNameRate):
			rec2.name = swapWords(rec.name)
		case r.chance(cfg.NameVariantRate):
			rec2.name = strings.ToUpper(strings.ReplaceAll(rec.name, " ", "-"))
		}
		if r.chance(cfg.StreetAbbrevRate) {
			rec2.street = strings.ReplaceAll(rec.street, "Street", "St")
		}

		emit1(id1, rec)
		emit2(id2, rec2)
		gold.Add(s1.key(id1), s2.key(id2))
		gold.Add(s1.key(id1+"_addr"), s2.key(id2+"_site"))
	}

	// Chains: same name, different city and phone, present on both sides
	// as *distinct* restaurants (precision hazards for name-only evidence).
	for i := 0; i < cfg.ChainPairs; i++ {
		base := makeRecord("")
		other := makeRecord(base.name)
		emit1(fmt.Sprintf("chainA%03d", i), base)
		emit2(fmt.Sprintf("chainB%03d", i), other)
	}
	for i := 0; i < cfg.Extra1; i++ {
		emit1(fmt.Sprintf("only1_%03d", i), makeRecord(""))
	}
	for i := 0; i < cfg.Extra2; i++ {
		emit2(fmt.Sprintf("only2_%03d", i), makeRecord(""))
	}

	rel := map[string]string{
		"name":        "title",
		"has_address": "locatedAt",
		"street":      "streetAddress",
		"city":        "inCity",
		"phone":       "phoneNumber",
		"category":    "cuisine",
	}
	relGold := make(map[string]string, len(rel))
	for r1, r2 := range rel {
		relGold[s1.ns+r1] = s2.ns + r2
	}
	return &Dataset{
		Name1:    "restaurant1",
		Name2:    "restaurant2",
		Triples1: s1.triples,
		Triples2: s2.triples,
		Gold:     gold,
		RelGold:  relGold,
		ClassGold: map[string]string{
			s1.ns + "Restaurant": s2.ns + "Eatery",
			s1.ns + "Address":    s2.ns + "Site",
		},
	}
}
