// Package gen generates the synthetic evaluation corpora of this
// reproduction. The paper evaluates on OAEI-2010 person and restaurant
// datasets, on YAGO vs. DBpedia, and on YAGO vs. an IMDb ontology; none of
// those dumps are redistributable, so each generator reproduces the
// statistical shape PARIS is sensitive to — functionalities, literal overlap
// and noise, schema granularity mismatch, instance overlap — at a
// configurable scale, together with an exact gold standard (see DESIGN.md
// Section 3 for the substitution rationale).
//
// All generators are deterministic for a fixed seed.
package gen

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/eval"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Dataset is a generated pair of ontologies with gold standards.
type Dataset struct {
	Name1, Name2 string

	Triples1, Triples2 []rdf.Triple

	// Gold maps ontology-1 instance keys to ontology-2 instance keys.
	Gold *eval.Gold

	// RelGold maps ontology-1 base relation IRIs to the equivalent
	// ontology-2 relation IRI; a "⁻¹" suffix on the target marks an
	// inverted pair (r ≡ r'⁻¹).
	RelGold map[string]string

	// ClassGold maps ontology-1 class IRIs to the equivalent (or nearest
	// super) ontology-2 class IRI.
	ClassGold map[string]string
}

// Build freezes both triple sets into ontologies sharing one literal table,
// applying the given normalizer (nil means identity).
func (d *Dataset) Build(norm store.Normalizer) (*store.Ontology, *store.Ontology, error) {
	lits := store.NewLiterals()
	b1 := store.NewBuilder(d.Name1, lits, norm)
	if err := b1.AddAll(d.Triples1); err != nil {
		return nil, nil, fmt.Errorf("gen: building %s: %w", d.Name1, err)
	}
	b2 := store.NewBuilder(d.Name2, lits, norm)
	if err := b2.AddAll(d.Triples2); err != nil {
		return nil, nil, fmt.Errorf("gen: building %s: %w", d.Name2, err)
	}
	return b1.Build(), b2.Build(), nil
}

// WriteFiles serializes the dataset into dir as <name1>.nt, <name2>.nt and
// gold.tsv, exercising the same parser path a real dump would take.
func (d *Dataset) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, triples []rdf.Triple) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return rdf.WriteNTriples(f, triples)
	}
	if err := write(d.Name1+".nt", d.Triples1); err != nil {
		return err
	}
	if err := write(d.Name2+".nt", d.Triples2); err != nil {
		return err
	}
	var sb strings.Builder
	for _, p := range d.Gold.Pairs() {
		sb.WriteString(p[0])
		sb.WriteByte('\t')
		sb.WriteString(p[1])
		sb.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, "gold.tsv"), []byte(sb.String()), 0o644)
}

// rng wraps math/rand with the helpers the generators share.
type rng struct{ *rand.Rand }

func newRNG(seed int64) rng {
	return rng{rand.New(rand.NewSource(seed))}
}

// pick returns a random element of the pool.
func (r rng) pick(pool []string) string {
	return pool[r.Intn(len(pool))]
}

// chance returns true with probability p.
func (r rng) chance(p float64) bool {
	return r.Float64() < p
}

// digits returns n random decimal digits.
func (r rng) digits(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

// typo perturbs one character of s (substitution), leaving very short
// strings alone.
func (r rng) typo(s string) string {
	runes := []rune(s)
	if len(runes) < 3 {
		return s
	}
	i := 1 + r.Intn(len(runes)-2)
	runes[i] = rune('a' + r.Intn(26))
	return string(runes)
}

// personName synthesizes a realistic, near-unique full name: most people
// get first+last, some a middle name, some a double-barrelled surname. The
// effective name space (~10⁵) leaves a few percent of colliding names, the
// ambiguity level large KBs exhibit.
func (r rng) personName() string {
	first := r.pick(firstNames)
	last := r.pick(lastNames)
	switch {
	case r.chance(0.55):
		return first + " " + r.pick(firstNames) + " " + last
	case r.chance(0.30):
		return first + " " + last + "-" + r.pick(lastNames)
	case r.chance(0.40):
		return first + " " + string(rune('A'+r.Intn(26))) + ". " + last
	default:
		return first + " " + last
	}
}

// reformatDate rewrites an ISO "YYYY-MM-DD" date as "DD/MM/YYYY" — the
// cross-KB format divergence that defeats the naive literal identity of
// Section 5.3 (a major real-data recall loss). Non-ISO inputs pass through.
func reformatDate(iso string) string {
	if len(iso) != 10 || iso[4] != '-' || iso[7] != '-' {
		return iso
	}
	return iso[8:10] + "/" + iso[5:7] + "/" + iso[0:4]
}

// swapWords reorders the first two words of s, a "hard" name variant that
// no character-level normalization repairs.
func swapWords(s string) string {
	parts := strings.SplitN(s, " ", 3)
	if len(parts) < 2 {
		return s
	}
	parts[0], parts[1] = parts[1], parts[0]
	return strings.Join(parts, " ")
}

// tripleSink collects triples for one ontology under a namespace.
type tripleSink struct {
	ns      string
	triples []rdf.Triple
}

func newSink(ns string) *tripleSink { return &tripleSink{ns: ns} }

// iri returns an IRI in the sink's namespace.
func (s *tripleSink) iri(local string) rdf.Term { return rdf.IRI(s.ns + local) }

// fact appends subject-relation-object with IRI object.
func (s *tripleSink) fact(subj, rel, obj string) {
	s.triples = append(s.triples, rdf.T(s.iri(subj), s.iri(rel), s.iri(obj)))
}

// lit appends subject-relation-literal.
func (s *tripleSink) lit(subj, rel, value string) {
	s.triples = append(s.triples, rdf.T(s.iri(subj), s.iri(rel), rdf.Literal(value)))
}

// litIRIRel appends a literal fact under a full (non-namespaced) relation
// IRI such as rdfs:label.
func (s *tripleSink) litIRIRel(subj, relIRI, value string) {
	s.triples = append(s.triples, rdf.T(s.iri(subj), rdf.IRI(relIRI), rdf.Literal(value)))
}

// typed appends an rdf:type statement.
func (s *tripleSink) typed(subj, class string) {
	s.triples = append(s.triples, rdf.T(s.iri(subj), rdf.IRI(rdf.RDFType), s.iri(class)))
}

// subclass appends an rdfs:subClassOf statement.
func (s *tripleSink) subclass(sub, super string) {
	s.triples = append(s.triples, rdf.T(s.iri(sub), rdf.IRI(rdf.RDFSSubClassOf), s.iri(super)))
}

// key returns the dictionary key of a namespaced IRI, for gold standards.
func (s *tripleSink) key(local string) string { return s.iri(local).Key() }
