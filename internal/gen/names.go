package gen

// Name pools shared by the generators. The pools are intentionally small
// enough that low-functionality values (cities, cuisines) repeat across
// entities, and large enough that composite names (first + last, adjective +
// noun) are near-unique — the same skew the paper's corpora exhibit.

var firstNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
	"Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
	"Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
	"Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy",
	"Kevin", "Carol", "Brian", "Amanda", "George", "Melissa", "Edward",
	"Deborah",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts",
}

var cities = []string{
	"Springfield", "Riverton", "Fairview", "Kingsport", "Maplewood",
	"Lakeside", "Brookfield", "Ashland", "Clayton", "Dayton", "Easton",
	"Franklin", "Georgetown", "Hamilton", "Irvington", "Jasper", "Kenton",
	"Lancaster", "Madison", "Newport", "Oakdale", "Plainfield", "Quincy",
	"Redmond", "Salem", "Trenton", "Union City", "Vernon", "Westfield",
	"Yorktown",
}

var countries = []string{
	"Arbenia", "Bolvania", "Cestaria", "Dorvland", "Elbonia", "Freldonia",
	"Gallivia", "Hestia", "Ilvania", "Jorland", "Kestovia", "Lurdania",
	"Morsland", "Novaria", "Ostreland",
}

var streets = []string{
	"Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake",
	"Hill", "Park", "Walnut", "Spring", "North", "Ridge", "Church",
	"Willow", "Mill", "Sunset", "Railroad", "Jefferson", "Center", "Highland",
	"Forest", "Jackson", "River",
}

var cuisines = []string{
	"Italian", "French", "Chinese", "Mexican", "Thai", "Indian", "Japanese",
	"Greek", "Spanish", "American", "Korean", "Vietnamese", "Lebanese",
	"Turkish", "Ethiopian",
}

var restaurantTypes = []string{
	"Bistro", "Grill", "Deli", "Kitchen", "Cafe", "Diner", "Tavern", "House",
	"Garden", "Corner", "Table", "Room",
}

var restaurantAdjectives = []string{
	"Golden", "Silver", "Blue", "Red", "Old", "New", "Royal", "Grand",
	"Little", "Happy", "Lucky", "Green", "White", "Black", "Sunny",
}

var movieWords = []string{
	"Shadow", "Night", "River", "Storm", "Garden", "Empire", "Secret",
	"Winter", "Summer", "Crimson", "Silent", "Broken", "Hidden", "Last",
	"First", "Lost", "Golden", "Iron", "Glass", "Paper", "Stone", "Velvet",
	"Burning", "Frozen", "Endless", "Distant", "Falling", "Rising", "Wild",
	"Quiet", "Scarlet", "Hollow", "Sacred", "Savage", "Gentle", "Bitter",
	"Radiant", "Moonlit",
}

var movieNouns = []string{
	"Dawn", "City", "Road", "Heart", "Dream", "Journey", "Promise", "Return",
	"Whisper", "Echo", "Horizon", "Kingdom", "Voyage", "Letter", "Memory",
	"Harvest", "Crossing", "Refuge", "Covenant", "Paradox", "Mirage",
	"Symphony", "Legacy", "Labyrinth", "Eclipse", "Reckoning", "Serenade",
	"Requiem", "Odyssey", "Masquerade",
}

var universities = []string{
	"Northgate University", "Westbrook College", "Harlow Institute",
	"Calder University", "Eastfield College", "Marlin Technical Institute",
	"Ravenwood University", "Stanmore College", "Drayton University",
	"Fenwick Polytechnic", "Alderton University", "Briarcliff College",
}

var prizes = []string{
	"Meridian Prize", "Aurora Award", "Golden Quill", "Laurel Medal",
	"Zenith Honor", "Beacon Prize", "Vanguard Award", "Pinnacle Medal",
}

var professions = []string{
	"singer", "writer", "scientist", "politician", "athlete", "painter",
	"composer", "architect", "economist", "philosopher",
}

var genres = []string{
	"drama", "comedy", "thriller", "documentary", "western", "noir",
	"musical", "adventure", "romance", "mystery",
}
