package server

// POST /v1/deltas: incremental re-alignment. A delta job takes a batch of
// triple additions against a published base snapshot, extends the base
// ontologies in place (store.ApplyDelta), re-runs the fixpoint warm-started
// from the base snapshot's state (core.NewWarm via incremental.Realign), and
// publishes the result as a new snapshot whose lineage records the base
// version and the delta's content digest. The delta batch itself is
// persisted as an append-only segment (diskstore.DeltaSegment) named after
// the published snapshot, so a restarted server can reconstruct any
// snapshot's ontologies by replaying root KB files + segments along the
// lineage chain.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// maxDeltaBody bounds one POST /v1/deltas request body. Deltas are meant to
// be small relative to the KB; bulk loads belong in a full alignment job.
const maxDeltaBody = 32 << 20

// handleSubmitDelta validates a delta request, resolves its base snapshot,
// and enqueues it on the shared worker pool.
func (s *Server) handleSubmitDelta(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnShard(w) {
		return
	}
	var req DeltaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDeltaBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.KB != "1" && req.KB != "2" {
		httpError(w, http.StatusBadRequest, "kb must be 1 or 2")
		return
	}
	if (req.NTriples == "") == (req.File == "") {
		httpError(w, http.StatusBadRequest, "exactly one of ntriples and file is required")
		return
	}
	if req.Workers < 0 || req.Workers > maxJobWorkers {
		httpError(w, http.StatusBadRequest, "workers must be between 0 and %d", maxJobWorkers)
		return
	}
	if req.MaxIterations < 0 || req.MaxIterations > maxJobIterations {
		httpError(w, http.StatusBadRequest, "max_iterations must be between 0 and %d", maxJobIterations)
		return
	}
	if req.File != "" {
		if _, err := os.Stat(req.File); err != nil {
			httpError(w, http.StatusBadRequest, "delta file %q: %v", req.File, err)
			return
		}
	} else {
		// Fail fast on syntax: the job would only discover it minutes
		// later, after reconstructing the base ontologies.
		if _, err := parseDeltaDoc(strings.NewReader(req.NTriples)); err != nil {
			httpError(w, http.StatusBadRequest, "invalid ntriples: %v", err)
			return
		}
	}
	// Resolve the base at submission time so the job is pinned to the
	// snapshot the client saw, not whatever is current when a worker picks
	// it up.
	if req.Base == "" {
		ix := s.idx.Load()
		if ix == nil {
			httpError(w, http.StatusConflict, "no snapshot to apply a delta to; run a full alignment first")
			return
		}
		req.Base = ix.id
	} else {
		s.mu.Lock()
		known := false
		for _, info := range s.snaps {
			if info.ID == req.Base {
				known = true
				break
			}
		}
		s.mu.Unlock()
		if !known {
			httpError(w, http.StatusNotFound, "unknown base snapshot %q", req.Base)
			return
		}
	}
	j, err := s.jobs.submit(Job{Kind: KindDelta, Delta: &req})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// realign executes one delta job: reconstruct (or reuse) the base
// ontologies, apply the delta, run the warm fixpoint, persist the delta
// segment, and publish the lineage-carrying snapshot. deltaMu serializes
// delta jobs because they mutate the cached ontology pair in place.
func (s *Server) realign(ctx context.Context, id string, req DeltaRequest) (string, error) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()

	triples, err := s.deltaTriples(req)
	if err != nil {
		return "", err
	}
	prior, err := diskstore.LoadSnapshot(s.store, req.Base)
	if err != nil {
		return "", fmt.Errorf("loading base snapshot %s: %w", req.Base, err)
	}
	o1, o2, err := s.ontologiesForLocked(ctx, req.Base)
	if err != nil {
		return "", err
	}
	delta := incremental.Delta{}
	if req.KB == "1" {
		delta.Add1 = triples
	} else {
		delta.Add2 = triples
	}
	digest := delta.Digest()
	cfg := core.Config{
		MaxIterations: req.MaxIterations,
		Workers:       req.Workers,
		OnIteration:   s.onIteration(id),
	}
	fctx, fsp := obs.StartSpan(ctx, s.opts.Logf, "fixpoint.warm")
	res, stats, err := incremental.Realign(fctx, o1, o2, delta, prior, cfg)
	fsp.Set("base", req.Base)
	fsp.Fail(err)
	fsp.End()
	if err != nil {
		// The ontologies may hold a partially applied delta; they no
		// longer correspond to any snapshot.
		s.ontoID, s.onto1, s.onto2 = "", nil, nil
		return "", err
	}
	snapID := s.reserveSnapshotID()
	seg := &diskstore.DeltaSegment{
		Snapshot: snapID, Base: req.Base, Digest: digest,
		Add1: delta.Add1, Add2: delta.Add2,
	}
	// Segment before snapshot: a snapshot must never exist without its
	// replay input (see reserveSnapshotID).
	if err := diskstore.WriteDeltaSegment(s.deltaDir, seg); err != nil {
		s.ontoID, s.onto1, s.onto2 = "", nil, nil
		return "", err
	}
	snap := res.Snapshot()
	snap.Base = req.Base
	snap.DeltaDigest = digest
	snap.DeltaAdded = stats.Added1 + stats.Added2
	if err := s.publishAs(snapID, snap); err != nil {
		s.ontoID, s.onto1, s.onto2 = "", nil, nil
		return "", err
	}
	// The extended ontologies now correspond to the new snapshot; the next
	// delta against it re-aligns without any reconstruction.
	s.ontoID, s.onto1, s.onto2 = snapID, o1, o2
	s.opts.Logf("server: %s applied %d+%d statements against %s in %d warm passes",
		id, stats.Added1, stats.Added2, req.Base, stats.Passes)
	s.gc()
	return snapID, nil
}

// deltaTriples loads the request's triples from the inline document or the
// server-side file (N-Triples, strict).
func (s *Server) deltaTriples(req DeltaRequest) ([]rdf.Triple, error) {
	if req.NTriples != "" {
		return parseDeltaDoc(strings.NewReader(req.NTriples))
	}
	f, err := os.Open(req.File)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseDeltaDoc(f)
}

func parseDeltaDoc(r io.Reader) ([]rdf.Triple, error) {
	nr := rdf.NewNTriplesReader(r)
	nr.Strict = true
	var out []rdf.Triple
	for {
		t, err := nr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// ontologiesForLocked returns the mutable ontology pair whose statements are
// exactly the inputs of snapID: the cached pair when it matches, otherwise a
// reconstruction — load the root alignment job's KB files and replay every
// delta segment along the lineage chain, oldest first. Callers hold deltaMu.
func (s *Server) ontologiesForLocked(ctx context.Context, snapID string) (*store.Ontology, *store.Ontology, error) {
	if s.ontoID == snapID && s.onto1 != nil {
		return s.onto1, s.onto2, nil
	}
	// Walk the lineage back to the cold root.
	var chain []string // delta snapshot IDs, newest first
	cur := snapID
	for {
		info, ok := s.snapshotInfoByID(cur)
		if !ok {
			return nil, nil, fmt.Errorf("snapshot %s is gone; cannot reconstruct ontologies for %s", cur, snapID)
		}
		if info.Base == "" {
			break
		}
		chain = append(chain, cur)
		cur = info.Base
	}
	root, ok := s.jobs.findBySnapshot(cur)
	if !ok {
		return nil, nil, fmt.Errorf("snapshot %s has no alignment job on record (published offline?); cannot reconstruct its ontologies", cur)
	}
	norm, err := normalizer(root.Request.Normalize)
	if err != nil {
		return nil, nil, err
	}
	s.opts.Logf("server: reconstructing ontologies for %s: root %s + %d delta segment(s)",
		snapID, cur, len(chain))
	lits := store.NewLiterals()
	o1, err := s.loadKB(ctx, "", "kb1", root.Request.KB1, lits, norm)
	if err != nil {
		return nil, nil, err
	}
	o2, err := s.loadKB(ctx, "", "kb2", root.Request.KB2, lits, norm)
	if err != nil {
		return nil, nil, err
	}
	for i := len(chain) - 1; i >= 0; i-- {
		seg, err := diskstore.ReadDeltaSegment(diskstore.DeltaSegmentPath(s.deltaDir, chain[i]))
		if err != nil {
			return nil, nil, fmt.Errorf("replaying delta %s: %w", chain[i], err)
		}
		if _, err := o1.ApplyDelta(seg.Add1); err != nil {
			return nil, nil, fmt.Errorf("replaying delta %s: %w", chain[i], err)
		}
		if _, err := o2.ApplyDelta(seg.Add2); err != nil {
			return nil, nil, fmt.Errorf("replaying delta %s: %w", chain[i], err)
		}
	}
	s.ontoID, s.onto1, s.onto2 = snapID, o1, o2
	return o1, o2, nil
}

// snapshotInfoByID returns the metadata of one snapshot.
func (s *Server) snapshotInfoByID(id string) (SnapshotInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, info := range s.snaps {
		if info.ID == id {
			return info, true
		}
	}
	return SnapshotInfo{}, false
}
