package server

// Telemetry wiring: every Server owns one obs.Registry, served on
// GET /metrics in Prometheus text format. The HTTP layer is measured by
// obs.HTTPMetrics middleware (per-route counts, latency, in-flight, plus
// request tracing with span logs); the job manager, the streaming ingest
// pipeline, and the fixpoint feed the instruments below through the hooks
// that already existed for progress reporting.

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
)

// jobBuckets spans job durations: a warm delta re-alignment lands in
// seconds, a cold web-scale alignment in hours.
var jobBuckets = []float64{0.1, 0.5, 1, 5, 15, 60, 300, 1800, 7200, 28800}

// queryBuckets spans query stages: plan-cache hits cost microseconds, cold
// plans and small executions land in the millisecond range, and the worst
// admitted execution is bounded by maxQueryTimeout.
var queryBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 30}

// serverMetrics bundles the Server's instruments. All fields are registered
// at New, so the /metrics exposition lists every family (HELP/TYPE) from
// the first scrape, before any traffic.
type serverMetrics struct {
	http *obs.HTTPMetrics

	jobs *jobMetrics

	ingestBlocks  *obs.Counter
	ingestBytes   *obs.Counter
	ingestTriples *obs.Counter
	ingestSpills  *obs.Counter
	ingestRate    *obs.Gauge

	fixpointIterations *obs.Counter
	fixpointSeconds    *obs.Histogram
	fixpointAssigned   *obs.Gauge

	lookups   *obs.Counter
	snapshots *obs.Gauge
	published *obs.Counter

	queries              *obs.CounterVec // outcome
	queryPlanSeconds     *obs.Histogram
	queryExecSeconds     *obs.Histogram
	queryRows            *obs.Counter
	queryPlanCacheHits   *obs.Counter
	queryPlanCacheMisses *obs.Counter
}

// jobMetrics is the job manager's slice of the registry, handed to
// newJobManager so state transitions update the gauges where they happen.
type jobMetrics struct {
	queueDepth *obs.Gauge
	running    *obs.Gauge
	completed  *obs.CounterVec   // kind, outcome
	duration   *obs.HistogramVec // kind
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	// Go runtime health (goroutines, heap, GC) refreshes on every scrape
	// of the registry via its OnScrape hook.
	obs.NewRuntimeMetrics(reg, "paris")
	obs.RegisterBuildInfo(reg)
	return &serverMetrics{
		http: obs.NewHTTPMetrics(reg, "paris_http"),
		jobs: &jobMetrics{
			queueDepth: reg.Gauge("paris_jobs_queue_depth",
				"Jobs waiting in the bounded submission queue."),
			running: reg.Gauge("paris_jobs_running",
				"Jobs currently executing on the worker pool."),
			completed: reg.CounterVec("paris_jobs_completed_total",
				"Jobs that reached a terminal state, by kind and outcome.",
				"kind", "outcome"),
			duration: reg.HistogramVec("paris_job_seconds",
				"Run time of completed jobs in seconds (queue wait excluded), by kind.",
				jobBuckets, "kind"),
		},
		ingestBlocks: reg.Counter("paris_ingest_blocks_total",
			"Input blocks consumed by the streaming KB loader."),
		ingestBytes: reg.Counter("paris_ingest_bytes_total",
			"Decompressed bytes consumed by the streaming KB loader."),
		ingestTriples: reg.Counter("paris_ingest_triples_total",
			"Triples parsed by the streaming KB loader."),
		ingestSpills: reg.Counter("paris_ingest_spill_segments_total",
			"Sorted runs spilled to temp segments by the streaming KB loader."),
		ingestRate: reg.Gauge("paris_ingest_bytes_per_second",
			"Throughput of the most recently observed streaming KB load."),
		fixpointIterations: reg.Counter("paris_fixpoint_iterations_total",
			"Completed fixpoint iterations across all alignment jobs."),
		fixpointSeconds: reg.Histogram("paris_fixpoint_iteration_seconds",
			"Duration of one fixpoint iteration (instance + relation phases).",
			jobBuckets),
		fixpointAssigned: reg.Gauge("paris_fixpoint_assigned",
			"Entities with a maximal assignment after the latest iteration."),
		lookups: reg.Counter("paris_lookups_total",
			"sameAs keys resolved (batch requests count every key)."),
		snapshots: reg.Gauge("paris_snapshots",
			"Snapshot versions currently persisted."),
		published: reg.Counter("paris_snapshots_published_total",
			"Snapshot versions published (computed, ingested, or recovered-then-extended)."),
		queries: reg.CounterVec("paris_query_total",
			"POST /v1/query requests by outcome (ok, truncated, parse_error, error).",
			"outcome"),
		queryPlanSeconds: reg.Histogram("paris_query_plan_seconds",
			"Query planning time: parse plus join ordering, near-zero on plan-cache hits.",
			queryBuckets),
		queryExecSeconds: reg.Histogram("paris_query_exec_seconds",
			"Query execution time over the union KB.",
			queryBuckets),
		queryRows: reg.Counter("paris_query_rows_returned_total",
			"Result rows returned by POST /v1/query."),
		queryPlanCacheHits: reg.Counter("paris_query_plan_cache_hits_total",
			"Queries answered with a cached plan (same normalized shape)."),
		queryPlanCacheMisses: reg.Counter("paris_query_plan_cache_misses_total",
			"Queries that had to be planned from scratch."),
	}
}

// onIteration returns the per-iteration fixpoint hook for one job: job
// record + SSE progress and process metrics as before, plus a convergence
// record into the flight recorder for GET /v1/jobs/{id}/convergence.
func (s *Server) onIteration(id string) func(int, *core.Aligner) {
	return func(_ int, a *core.Aligner) {
		its := a.Iterations()
		if len(its) == 0 {
			return
		}
		it := its[len(its)-1]
		s.jobs.progress(id, it)
		s.met.fixpoint(it)
		if s.col != nil {
			cs := a.Convergence()
			s.col.ObserveConvergence(id, obs.ConvergenceRecord{
				Iteration:       cs.Iteration,
				Assigned:        cs.Assigned,
				NewPairs:        cs.NewPairs,
				ChangedPairs:    cs.ChangedPairs,
				DroppedPairs:    cs.DroppedPairs,
				ChangedFraction: cs.ChangedFraction,
				ScoreBuckets:    append([]int(nil), cs.ScoreBuckets[:]...),
				WallTime:        it.InstanceTime + it.RelationTime,
			})
		}
	}
}

// fixpoint records one completed iteration.
func (m *serverMetrics) fixpoint(it core.IterationStats) {
	m.fixpointIterations.Inc()
	m.fixpointSeconds.Observe((it.InstanceTime + it.RelationTime).Seconds())
	m.fixpointAssigned.Set(float64(it.Assigned))
}

// ingestFeeder returns a callback that folds one load's cumulative
// ingest.Progress into the process-wide counters. Progress is cumulative
// per load, so the feeder tracks the previous view and adds only the
// deltas; each concurrent load gets its own feeder.
func (m *serverMetrics) ingestFeeder() func(ingest.Progress) {
	var mu sync.Mutex
	var last ingest.Progress
	return func(p ingest.Progress) {
		mu.Lock()
		defer mu.Unlock()
		m.ingestBlocks.Add(delta(int64(p.Blocks), int64(last.Blocks)))
		m.ingestBytes.Add(delta(p.Bytes, last.Bytes))
		m.ingestTriples.Add(delta(p.Triples, last.Triples))
		m.ingestSpills.Add(delta(int64(p.Spills), int64(last.Spills)))
		if p.Elapsed > 0 {
			m.ingestRate.Set(float64(p.Bytes) / p.Elapsed.Seconds())
		}
		last = p
	}
}

func delta(cur, prev int64) uint64 {
	if cur <= prev {
		return 0
	}
	return uint64(cur - prev)
}

// metricKind normalizes a job kind for labels (records predate KindAlign).
func metricKind(kind string) string {
	if kind == "" {
		return KindAlign
	}
	return kind
}

// queue and runningAdd are nil-safe so tests can build a bare jobManager.
func (jm *jobMetrics) queue(n int) {
	if jm != nil {
		jm.queueDepth.Set(float64(n))
	}
}

func (jm *jobMetrics) runningAdd(d float64) {
	if jm != nil {
		jm.running.Add(d)
	}
}

// jobFinished records a terminal transition. started is nil for jobs that
// never ran (dropped or canceled while queued).
func (jm *jobMetrics) jobFinished(kind string, outcome string, started *time.Time, finished time.Time) {
	if jm == nil {
		return
	}
	jm.completed.With(metricKind(kind), outcome).Inc()
	if started != nil {
		jm.duration.With(metricKind(kind)).Observe(finished.Sub(*started).Seconds())
	}
}
