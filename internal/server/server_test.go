package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// newTestServer starts a service on stateDir behind an httptest server.
func newTestServer(t *testing.T, stateDir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{StateDir: stateDir, Workers: workers, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

// writePersonsKB generates the OAEI-person-style dataset and writes its two
// KB files plus gold standard into dir.
func writePersonsKB(t *testing.T, dir string, n int) *gen.Dataset {
	t.Helper()
	d := gen.Persons(gen.PersonsConfig{N: n, Seed: 7})
	if err := d.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	return d
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

func postJob(t *testing.T, base string, req JobRequest) Job {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	var j Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitDone polls the jobs API until the job reaches a terminal state.
func waitDone(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var j Job
		if code := getJSON(t, base+"/v1/jobs/"+id, &j); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d", id, code)
		}
		switch j.State {
		case JobDone, JobFailed:
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Job{}
}

// lookupKey resolves one sameAs query and returns the single match key.
func lookupKey(t *testing.T, base, kb, key string) (string, int) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/sameas?kb=%s&key=%s", base, kb, queryEscape(key))
	var resp sameAsResponse
	code := getJSON(t, url, &resp)
	if code != http.StatusOK {
		return "", code
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("sameas %s %s: %d matches %v", kb, key, len(resp.Matches), resp.Matches)
	}
	return resp.Matches[0].Key, code
}

func queryEscape(s string) string { return url.QueryEscape(s) }

// TestServiceEndToEnd is the acceptance flow: submit a job against two
// generated KBs, observe queued → running → done through the jobs API, query
// /sameas in both directions against the gold standard, then restart the
// server on the same state directory and verify the recovered snapshot gives
// identical answers.
func TestServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 60)
	state := filepath.Join(dir, "state")

	srv, ts := newTestServer(t, state, 1)

	// Gate the worker so the running state is observable deterministically.
	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }

	// Before any snapshot exists the read path reports 503.
	if code := getJSON(t, ts.URL+"/v1/sameas?kb=1&key=x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("sameas before snapshot: %d", code)
	}

	j := postJob(t, ts.URL, JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if j.State != JobQueued {
		t.Fatalf("submitted job state = %q, want queued", j.State)
	}

	// The worker has picked it up (or is about to); with the gate closed it
	// must reach running and stay there.
	var running Job
	for i := 0; ; i++ {
		if getJSON(t, ts.URL+"/v1/jobs/"+j.ID, &running); running.State == JobRunning {
			break
		}
		if i > 5000 {
			t.Fatalf("job never reached running, state %q", running.State)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	final := waitDone(t, ts.URL, j.ID)
	if final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.Snapshot == "" || len(final.Iterations) == 0 {
		t.Fatalf("done job missing snapshot or progress: %+v", final)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatalf("done job missing timestamps: %+v", final)
	}

	// Check every gold pair in both directions.
	answers := map[string]string{}
	for _, p := range d.Gold.Pairs() {
		got, code := lookupKey(t, ts.URL, "1", p[0])
		if code != http.StatusOK || got != p[1] {
			t.Fatalf("sameas kb=1 %s = %q (%d), want %q", p[0], got, code, p[1])
		}
		back, code := lookupKey(t, ts.URL, "2", p[1])
		if code != http.StatusOK || back != p[0] {
			t.Fatalf("sameas kb=2 %s = %q (%d), want %q", p[1], back, code, p[0])
		}
		answers[p[0]] = got
	}

	// Bare-IRI and normalized lookups resolve too.
	pairs := d.Gold.Pairs()
	bare := strings.Trim(pairs[0][0], "<>")
	if got, code := lookupKey(t, ts.URL, "1", bare); code != http.StatusOK || got != pairs[0][1] {
		t.Fatalf("bare-IRI lookup = %q (%d)", got, code)
	}
	if got, code := lookupKey(t, ts.URL, "1", strings.ToUpper(bare)); code != http.StatusOK || got != pairs[0][1] {
		t.Fatalf("normalized lookup = %q (%d)", got, code)
	}
	if code := getJSON(t, ts.URL+"/v1/sameas?kb=1&key=%3Chttp://nowhere%3E", nil); code != http.StatusNotFound {
		t.Fatalf("missing key: %d, want 404", code)
	}

	// Relations and classes endpoints serve the snapshot.
	var rels struct {
		Relations []struct {
			Sub   string  `json:"Sub"`
			Super string  `json:"Super"`
			P     float64 `json:"P"`
		} `json:"relations"`
	}
	if code := getJSON(t, ts.URL+"/v1/relations?dir=12&min=0.1", &rels); code != http.StatusOK || len(rels.Relations) == 0 {
		t.Fatalf("relations: %d, %d entries", code, len(rels.Relations))
	}
	var classes struct {
		Classes []any `json:"classes"`
	}
	if code := getJSON(t, ts.URL+"/v1/classes?dir=12", &classes); code != http.StatusOK || len(classes.Classes) == 0 {
		t.Fatalf("classes: %d, %d entries", code, len(classes.Classes))
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats["snapshot"] == nil {
		t.Fatalf("stats missing snapshot: %v", stats)
	}

	// Kill the server and reopen the same state directory: the snapshot
	// and job history must be recovered and answers identical.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, state, 1)
	defer srv2.Close()
	defer ts2.Close()

	var snaps struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
		Current   string         `json:"current"`
	}
	if code := getJSON(t, ts2.URL+"/v1/snapshots", &snaps); code != http.StatusOK {
		t.Fatalf("snapshots: %d", code)
	}
	if len(snaps.Snapshots) != 1 || snaps.Current != final.Snapshot {
		t.Fatalf("recovered snapshots %v current %q, want [%s]", snaps.Snapshots, snaps.Current, final.Snapshot)
	}
	var recovered Job
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+j.ID, &recovered); code != http.StatusOK {
		t.Fatalf("recovered job: %d", code)
	}
	if recovered.State != JobDone || recovered.Snapshot != final.Snapshot {
		t.Fatalf("recovered job %+v", recovered)
	}
	for k1, k2 := range answers {
		got, code := lookupKey(t, ts2.URL, "1", k1)
		if code != http.StatusOK || got != k2 {
			t.Fatalf("after restart, sameas %s = %q (%d), want %q", k1, got, code, k2)
		}
	}
}

// TestConcurrentLookups hammers the read path from many goroutines while a
// second job completes and swaps the snapshot — under -race this proves the
// lock-free read path and the RCU swap are sound.
func TestConcurrentLookups(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 40)
	state := filepath.Join(dir, "state")
	srv, ts := newTestServer(t, state, 1)
	defer srv.Close()
	defer ts.Close()

	req := JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}
	first := postJob(t, ts.URL, req)
	if j := waitDone(t, ts.URL, first.ID); j.State != JobDone {
		t.Fatalf("first job failed: %s", j.Error)
	}

	pairs := d.Gold.Pairs()
	// Second job runs while readers are in flight, forcing a snapshot swap
	// under load.
	second := postJob(t, ts.URL, req)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 100; i++ {
				p := pairs[(g*100+i)%len(pairs)]
				url := fmt.Sprintf("%s/v1/sameas?kb=1&key=%s", ts.URL, queryEscape(p[0]))
				resp, err := client.Get(url)
				if err != nil {
					errs <- err
					return
				}
				var body sameAsResponse
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || len(body.Matches) != 1 || body.Matches[0].Key != p[1] {
					errs <- fmt.Errorf("lookup %s: %d %v", p[0], resp.StatusCode, body.Matches)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if j := waitDone(t, ts.URL, second.ID); j.State != JobDone {
		t.Fatalf("second job failed: %s", j.Error)
	}
}

// TestSubmitValidation covers the rejection paths of the jobs API.
func TestSubmitValidation(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{"); code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", code)
	}
	if code := post(`{"kb1":"a.nt"}`); code != http.StatusBadRequest {
		t.Errorf("missing kb2: %d", code)
	}
	if code := post(`{"kb1":"/no/such.nt","kb2":"/no/such2.nt"}`); code != http.StatusBadRequest {
		t.Errorf("missing files: %d", code)
	}
	writePersonsKB(t, dir, 5)
	if code := post(fmt.Sprintf(`{"kb1":%q,"kb2":%q,"normalize":"bogus"}`,
		filepath.Join(dir, "person1.nt"), filepath.Join(dir, "person2.nt"))); code != http.StatusBadRequest {
		t.Errorf("bad normalize: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-42", nil); code != http.StatusNotFound {
		t.Errorf("missing job: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/relations", nil); code != http.StatusServiceUnavailable {
		t.Errorf("relations before snapshot: %d", code)
	}
}

// TestDroppedJobSurvivesRestart checks that a queued job dropped at
// shutdown is persisted as failed, so its 202-acknowledged ID still
// resolves after a restart instead of vanishing.
func TestDroppedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 20)
	state := filepath.Join(dir, "state")
	srv, ts := newTestServer(t, state, 1)

	// Gate the single worker on the first job so the second stays queued.
	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }
	req := JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}
	first := postJob(t, ts.URL, req)
	queued := postJob(t, ts.URL, req)

	// Close while the worker is still gated on the first job: the drain
	// loop must drop the queued job before the worker can reach it. The
	// worker is released only once the drop is observed.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	for i := 0; ; i++ {
		if j, ok := srv.jobs.get(queued.ID); ok && j.State == JobFailed {
			break
		}
		if i > 5000 {
			t.Fatal("queued job never dropped")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, ts2 := newTestServer(t, state, 1)
	defer srv2.Close()
	defer ts2.Close()
	var rec Job
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+queued.ID, &rec); code != http.StatusOK {
		t.Fatalf("dropped job %s after restart: %d, want 200", queued.ID, code)
	}
	if rec.State != JobFailed || !strings.Contains(rec.Error, "shutting down") {
		t.Fatalf("dropped job record = %+v", rec)
	}
	var recFirst Job
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+first.ID, &recFirst); code != http.StatusOK || recFirst.State != JobDone {
		t.Fatalf("first job after restart = %+v (%d), want done", recFirst, code)
	}
}

// TestFailedJobIsRecorded checks that a job whose KB fails to load lands in
// the failed state with a cause, and that no snapshot is published.
func TestFailedJobIsRecorded(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.rdfxml")
	if err := os.WriteFile(bad, []byte("<rdf/>\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	j := postJob(t, ts.URL, JobRequest{KB1: bad, KB2: bad})
	final := waitDone(t, ts.URL, j.ID)
	if final.State != JobFailed || final.Error == "" {
		t.Fatalf("job = %+v, want failed with error", final)
	}
	if code := getJSON(t, ts.URL+"/v1/sameas?kb=1&key=x", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("sameas after failed job: %d, want 503", code)
	}
}
