package server

// Tests for the versioned /v1 HTTP surface: 405 method handling, the batch
// sameAs endpoint, snapshot pinning, and job cancellation through the
// context-aware core. The unversioned legacy routes (308 shims of the first
// release) are gone; /v1 is the only surface (see TestLegacyRoutesRemoved).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// doJSON issues one request with an optional JSON body and decodes a 2xx
// response into out.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode
}

// TestLegacyRoutesRemoved: the unversioned routes of the first release
// (which answered 308 for one migration release) are gone — a legacy client
// now gets 404, not a silent redirect.
func TestLegacyRoutesRemoved(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	for _, path := range []string{"/healthz", "/jobs", "/sameas?kb=1&key=x",
		"/relations", "/classes", "/snapshots", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404 (legacy routes removed)", path, resp.StatusCode)
		}
	}
}

// TestV1MethodNotAllowed: a wrong method on a known /v1 route answers 405
// with an Allow header naming the supported methods, not 404.
func TestV1MethodNotAllowed(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	cases := []struct{ method, path, wantAllow string }{
		{http.MethodPut, "/v1/sameas", "GET"},  // also POST
		{http.MethodDelete, "/v1/jobs", "GET"}, // also POST
		{http.MethodPost, "/v1/relations", "GET"},
		{http.MethodPut, "/v1/jobs/job-00000001", "GET"}, // also DELETE
		{http.MethodPost, "/v1/stats", "GET"},
		{http.MethodDelete, "/v1/healthz", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 405", c.method, c.path, resp.StatusCode)
			continue
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, c.wantAllow) {
			t.Errorf("%s %s: Allow = %q, want it to contain %q", c.method, c.path, allow, c.wantAllow)
		}
	}
}

// alignPersons submits a persons alignment through /v1 and waits for the
// snapshot.
func alignPersons(t *testing.T, ts string, dir string, n int) (Job, [][2]string) {
	t.Helper()
	d := writePersonsKB(t, dir, n)
	var j Job
	if code := doJSON(t, http.MethodPost, ts+"/v1/jobs", JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}, &j); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", code)
	}
	final := waitDone(t, ts, j.ID)
	if final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	return final, d.Gold.Pairs()
}

// TestBatchSameAs covers POST /v1/sameas: every gold key in one request,
// unknown keys answered with empty matches, normalized fallbacks flagged,
// and the request-validation failures.
func TestBatchSameAs(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	// Before any snapshot: 503.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sameas",
		map[string]any{"kb": "1", "keys": []string{"x"}}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("batch before snapshot: %d, want 503", code)
	}

	_, pairs := alignPersons(t, ts.URL, dir, 40)
	keys := make([]string, 0, len(pairs)+2)
	for _, p := range pairs {
		keys = append(keys, p[0])
	}
	keys = append(keys, "<http://nowhere/missing>")
	// An upper-cased bare IRI only resolves through the normalized path.
	bare := strings.ToUpper(strings.Trim(pairs[0][0], "<>"))
	keys = append(keys, bare)

	var resp struct {
		Snapshot string `json:"snapshot"`
		Found    int    `json:"found"`
		Results  []struct {
			Key        string  `json:"key"`
			Matches    []Match `json:"matches"`
			Normalized bool    `json:"normalized"`
		} `json:"results"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sameas",
		map[string]any{"kb": "1", "keys": keys}, &resp); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if len(resp.Results) != len(keys) {
		t.Fatalf("results = %d, want %d (one per key, in order)", len(resp.Results), len(keys))
	}
	if resp.Found != len(pairs)+1 { // all gold keys + the normalized one
		t.Fatalf("found = %d, want %d", resp.Found, len(pairs)+1)
	}
	for i, p := range pairs {
		r := resp.Results[i]
		if r.Key != p[0] || len(r.Matches) != 1 || r.Matches[0].Key != p[1] {
			t.Fatalf("result[%d] = %+v, want %s -> %s", i, r, p[0], p[1])
		}
		if r.Normalized {
			t.Fatalf("exact key %s flagged normalized", p[0])
		}
	}
	missing := resp.Results[len(pairs)]
	if len(missing.Matches) != 0 || missing.Normalized {
		t.Fatalf("missing key result = %+v, want empty", missing)
	}
	normalized := resp.Results[len(pairs)+1]
	if len(normalized.Matches) != 1 || !normalized.Normalized || normalized.Matches[0].Key != pairs[0][1] {
		t.Fatalf("normalized result = %+v, want match %s", normalized, pairs[0][1])
	}

	// Validation failures.
	for name, body := range map[string]any{
		"no keys":  map[string]any{"kb": "1"},
		"bad kb":   map[string]any{"kb": "7", "keys": []string{"x"}},
		"too many": map[string]any{"kb": "1", "keys": make([]string, MaxBatchKeys+1)},
		"bad json": nil,
	} {
		var code int
		if name == "bad json" {
			resp, err := http.Post(ts.URL+"/v1/sameas", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			code = resp.StatusCode
		} else {
			code = doJSON(t, http.MethodPost, ts.URL+"/v1/sameas", body, nil)
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, code)
		}
	}
}

// TestSnapshotPinning: after a second snapshot supersedes the first, reads
// pinned with ?snapshot= still answer from the superseded version, while
// unpinned reads follow the newest; unknown snapshot IDs are 404.
func TestSnapshotPinning(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	first, pairs := alignPersons(t, ts.URL, filepath.Join(dir, "kb1"), 30)

	// Second snapshot from a different corpus (movies): its keys are
	// disjoint from the persons corpus, so the answers prove which
	// snapshot served a read.
	mdir := filepath.Join(dir, "kb2")
	md := gen.Movies(gen.MoviesConfig{Seed: 7, People: 60, Movies: 20})
	if err := md.WriteFiles(mdir); err != nil {
		t.Fatal(err)
	}
	var mj Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		KB1: filepath.Join(mdir, md.Name1+".nt"),
		KB2: filepath.Join(mdir, md.Name2+".nt"),
	}, &mj); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs (movies): %d", code)
	}
	second := waitDone(t, ts.URL, mj.ID)
	if second.State != JobDone {
		t.Fatalf("movies job failed: %s", second.Error)
	}
	pairs2 := md.Gold.Pairs()
	if first.Snapshot == second.Snapshot {
		t.Fatalf("expected two snapshot versions, got %s twice", first.Snapshot)
	}

	var snaps struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
		Current   string         `json:"current"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/snapshots", nil, &snaps); code != http.StatusOK {
		t.Fatalf("snapshots: %d", code)
	}
	if snaps.Current != second.Snapshot || len(snaps.Snapshots) != 2 {
		t.Fatalf("snapshots = %+v, want current %s of 2", snaps, second.Snapshot)
	}
	// Cold snapshots carry no lineage but do carry their KB names.
	if info := snaps.Snapshots[1]; info.ID != second.Snapshot || info.Base != "" ||
		info.KB1 == "" || info.Instances == 0 {
		t.Fatalf("snapshot info = %+v, want cold metadata for %s", info, second.Snapshot)
	}

	// Unpinned and pinned-to-current reads serve the new snapshot.
	var sa struct {
		Snapshot string  `json:"snapshot"`
		Matches  []Match `json:"matches"`
	}
	url := fmt.Sprintf("%s/v1/sameas?kb=1&key=%s", ts.URL, queryEscape(pairs2[0][0]))
	if code := doJSON(t, http.MethodGet, url, nil, &sa); code != http.StatusOK || sa.Snapshot != second.Snapshot {
		t.Fatalf("unpinned read = %d from %s, want 200 from %s", code, sa.Snapshot, second.Snapshot)
	}

	// Pinned to the superseded snapshot, the old corpus still resolves.
	url = fmt.Sprintf("%s/v1/sameas?kb=1&key=%s&snapshot=%s", ts.URL, queryEscape(pairs[0][0]), first.Snapshot)
	if code := doJSON(t, http.MethodGet, url, nil, &sa); code != http.StatusOK {
		t.Fatalf("pinned read: %d, want 200", code)
	}
	if sa.Snapshot != first.Snapshot || len(sa.Matches) != 1 || sa.Matches[0].Key != pairs[0][1] {
		t.Fatalf("pinned read = %+v, want %s from %s", sa, pairs[0][1], first.Snapshot)
	}

	// The same key is gone from the current snapshot.
	url = fmt.Sprintf("%s/v1/sameas?kb=1&key=%s", ts.URL, queryEscape(pairs[0][0]))
	if code := doJSON(t, http.MethodGet, url, nil, nil); code != http.StatusNotFound {
		t.Fatalf("old key against current snapshot: %d, want 404", code)
	}

	// Pinning works on the score endpoints too.
	var rels struct {
		Snapshot  string `json:"snapshot"`
		Relations []any  `json:"relations"`
	}
	url = fmt.Sprintf("%s/v1/relations?snapshot=%s", ts.URL, first.Snapshot)
	if code := doJSON(t, http.MethodGet, url, nil, &rels); code != http.StatusOK ||
		rels.Snapshot != first.Snapshot || len(rels.Relations) == 0 {
		t.Fatalf("pinned relations = %d %+v", code, rels)
	}

	// Unknown snapshot: 404.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sameas?kb=1&key=x&snapshot=snap-bogus", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown snapshot: %d, want 404", code)
	}

	// Batch reads pin the same way.
	var batch struct {
		Snapshot string `json:"snapshot"`
		Found    int    `json:"found"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sameas?snapshot="+first.Snapshot,
		map[string]any{"kb": "1", "keys": []string{pairs[0][0]}}, &batch); code != http.StatusOK ||
		batch.Snapshot != first.Snapshot || batch.Found != 1 {
		t.Fatalf("pinned batch = %d %+v", code, batch)
	}
}

// TestCancelRunningJob is the mid-fixpoint cancellation flow: a job
// canceled while running must stop, land in the failed state with a
// cancellation reason, and publish no snapshot.
func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 30)
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	// Gate the worker after the running transition so the DELETE lands
	// deterministically while the job is running; the canceled context
	// then aborts the alignment as soon as the gate opens.
	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }

	var j Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}, &j); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	for i := 0; ; i++ {
		var cur Job
		if doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+j.ID, nil, &cur); cur.State == JobRunning {
			break
		}
		if i > 5000 {
			t.Fatal("job never reached running")
		}
		time.Sleep(time.Millisecond)
	}

	var canceled Job
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil, &canceled); code != http.StatusAccepted {
		t.Fatalf("DELETE running job: %d, want 202", code)
	}
	close(release)

	final := waitDone(t, ts.URL, j.ID)
	if final.State != JobFailed {
		t.Fatalf("canceled job state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Fatalf("canceled job error = %q, want a cancellation reason", final.Error)
	}

	// No snapshot was published.
	var snaps struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/snapshots", nil, &snaps); code != http.StatusOK || len(snaps.Snapshots) != 0 {
		t.Fatalf("snapshots after canceled job = %v (%d), want none", snaps.Snapshots, code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sameas?kb=1&key=x", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("read after canceled job: %d, want 503", code)
	}

	// Canceling a terminal job: 409.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("DELETE terminal job: %d, want 409", code)
	}
	// Canceling an unknown job: 404.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/job-99999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", code)
	}
}

// TestCloseContextCancelsRunningJob: when the shutdown grace period is
// already spent, CloseContext cancels the running job's context instead of
// waiting out the alignment; the job persists as failed with the shutdown
// cause and no snapshot exists.
func TestCloseContextCancelsRunningJob(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 30)
	state := filepath.Join(dir, "state")

	// canceled closes once cancelAll has run (the log line follows it),
	// making "release the gated worker" safely ordered after the job's
	// context is canceled.
	canceled := make(chan struct{})
	srv, err := New(Options{StateDir: state, Workers: 1, Logf: func(format string, args ...any) {
		if strings.Contains(format, "grace period") {
			close(canceled)
		}
		t.Logf(format, args...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }
	j := postJob(t, ts.URL, JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	for i := 0; ; i++ {
		if cur, ok := srv.jobs.get(j.ID); ok && cur.State == JobRunning {
			break
		}
		if i > 5000 {
			t.Fatal("job never reached running")
		}
		time.Sleep(time.Millisecond)
	}
	ts.Close()

	expired, cancel := context.WithCancel(context.Background())
	cancel() // the grace period is already spent
	closed := make(chan error, 1)
	go func() { closed <- srv.CloseContext(expired) }()
	<-canceled     // the running job's context is canceled...
	close(release) // ...so the alignment aborts as soon as it starts
	if err := <-closed; err != nil {
		t.Fatalf("CloseContext: %v", err)
	}

	srv2, ts2 := newTestServer(t, state, 1)
	defer srv2.Close()
	defer ts2.Close()
	var rec Job
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+j.ID, nil, &rec); code != http.StatusOK {
		t.Fatalf("job after restart: %d", code)
	}
	if rec.State != JobFailed || !strings.Contains(rec.Error, "shutting down") {
		t.Fatalf("job after shutdown-cancel = state %s error %q", rec.State, rec.Error)
	}
	var snaps struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
	}
	if doJSON(t, http.MethodGet, ts2.URL+"/v1/snapshots", nil, &snaps); len(snaps.Snapshots) != 0 {
		t.Fatalf("snapshots after shutdown-canceled job = %v, want none", snaps.Snapshots)
	}
}

// TestCancelQueuedJob: a job canceled before a worker picks it up fails
// immediately, never runs, and its record survives a restart.
func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 20)
	state := filepath.Join(dir, "state")
	srv, ts := newTestServer(t, state, 1)

	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }
	req := JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}
	first := postJob(t, ts.URL, req)  // occupies the single worker
	queued := postJob(t, ts.URL, req) // stays queued

	var canceled Job
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, &canceled); code != http.StatusOK {
		t.Fatalf("DELETE queued job: %d, want 200", code)
	}
	if canceled.State != JobFailed || !strings.Contains(canceled.Error, "canceled") {
		t.Fatalf("canceled queued job = %+v", canceled)
	}

	close(release)
	if j := waitDone(t, ts.URL, first.ID); j.State != JobDone {
		t.Fatalf("first job = %+v, want done", j)
	}
	// The canceled job never produced a second snapshot.
	var snaps struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
	}
	if doJSON(t, http.MethodGet, ts.URL+"/v1/snapshots", nil, &snaps); len(snaps.Snapshots) != 1 {
		t.Fatalf("snapshots = %v, want exactly the first job's", snaps.Snapshots)
	}

	// Restart: the canceled record was persisted.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, state, 1)
	defer srv2.Close()
	defer ts2.Close()
	var rec Job
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+queued.ID, nil, &rec); code != http.StatusOK {
		t.Fatalf("canceled job after restart: %d", code)
	}
	if rec.State != JobFailed || !strings.Contains(rec.Error, "canceled") {
		t.Fatalf("recovered canceled job = %+v", rec)
	}
}
