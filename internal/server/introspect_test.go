package server

// Introspection-surface tests: /v1/readyz flips from 503 to 200 at the
// first serving snapshot (while /v1/healthz stays a pure liveness probe),
// and GET /v1/jobs/{id}/convergence serves the flight recorder's
// per-iteration fixpoint records for a real alignment on the movies corpus.

import (
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestReadyzFlipsOnFirstSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 40)
	_, ts := newTestServer(t, filepath.Join(dir, "state"), 1)

	// Empty daemon: alive but not ready.
	if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz on empty server: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz on empty server: %d, want 503", code)
	}

	j := postJob(t, ts.URL, JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if final := waitDone(t, ts.URL, j.ID); final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}

	var ready struct {
		Status   string `json:"status"`
		Snapshot string `json:"snapshot"`
	}
	if code := getJSON(t, ts.URL+"/v1/readyz", &ready); code != http.StatusOK {
		t.Fatalf("readyz after snapshot: %d, want 200", code)
	}
	if ready.Status != "ready" || ready.Snapshot == "" {
		t.Fatalf("readyz body %+v", ready)
	}
}

func TestJobConvergenceEndpoint(t *testing.T) {
	dir := t.TempDir()
	d := gen.Movies(gen.MoviesConfig{People: 120, Movies: 50, Seed: 5})
	if err := d.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)

	if code := getJSON(t, ts.URL+"/v1/jobs/nope/convergence", nil); code != http.StatusNotFound {
		t.Fatalf("convergence for unknown job: %d, want 404", code)
	}

	j := postJob(t, ts.URL, JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if final := waitDone(t, ts.URL, j.ID); final.State != JobDone {
		t.Fatalf("job failed: %s", final.Error)
	}

	var rep ConvergenceReport
	if code := getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/convergence", &rep); code != http.StatusOK {
		t.Fatalf("convergence: %d", code)
	}
	if rep.Job != j.ID || rep.State != JobDone || rep.Kind != "align" {
		t.Fatalf("report header %+v", rep)
	}
	if len(rep.Records) == 0 {
		t.Fatal("no convergence records for a completed alignment")
	}
	for i, r := range rep.Records {
		if r.Iteration != i+1 {
			t.Errorf("records[%d].Iteration = %d, want monotone 1-based", i, r.Iteration)
		}
		if len(r.ScoreBuckets) != core.ConvergenceScoreBuckets {
			t.Errorf("records[%d] has %d score buckets", i, len(r.ScoreBuckets))
		}
		sum := 0
		for _, b := range r.ScoreBuckets {
			sum += b
		}
		if sum != r.Assigned {
			t.Errorf("records[%d]: buckets sum %d != assigned %d", i, sum, r.Assigned)
		}
		if r.WallTime <= 0 {
			t.Errorf("records[%d] wall time %v", i, r.WallTime)
		}
	}
	if last := rep.Records[len(rep.Records)-1]; last.Assigned == 0 {
		t.Error("converged fixpoint assigned nothing on the movies corpus")
	}

	// The job's spans reached the recorder: the fixpoint span hangs off the
	// job root, so the whole alignment shows up as one tree.
	var sawJob, sawFixpoint bool
	for _, rec := range srv.Recorder().Recent() {
		switch rec.Name {
		case "job":
			sawJob = true
		case "fixpoint":
			sawFixpoint = true
		}
	}
	if !sawJob || !sawFixpoint {
		t.Errorf("recorder missing job/fixpoint spans (job=%v fixpoint=%v)", sawJob, sawFixpoint)
	}
}
