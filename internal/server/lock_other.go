//go:build !unix

package server

// lockStateDir is a no-op on platforms without flock; single-process use is
// the operator's responsibility there.
func lockStateDir(string) (func() error, error) {
	return func() error { return nil }, nil
}
