package server

// Tests for push-based KB ingestion (POST /v1/kbs): end-to-end upload →
// ingest job → commit → align via "kb:" references, resumable-error
// semantics with offset handshakes, typed validation failures, and the SSE
// progress stream on GET /v1/jobs/{id}.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/rdf"
)

// corpusDocs renders a persons dataset as two N-Triples documents.
func corpusDocs(t *testing.T, n int) (doc1, doc2 []byte, d *gen.Dataset) {
	t.Helper()
	d = gen.Persons(gen.PersonsConfig{N: n, Seed: 7})
	render := func(ts []rdf.Triple) []byte {
		var b bytes.Buffer
		if err := rdf.WriteNTriples(&b, ts); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	return render(d.Triples1), render(d.Triples2), d
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// postKB streams body to POST /v1/kbs and decodes the response JSON.
func postKB(t *testing.T, base, query string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(base+"/v1/kbs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding POST /v1/kbs response: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode
}

func TestUploadKBEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	doc1, doc2, d := corpusDocs(t, 40)

	// KB 1 pushed gzipped, KB 2 plain: both pipeline entry points.
	var j1 Job
	if code := postKB(t, ts.URL, "name=left&format=.nt.gz", gzipBytes(t, doc1), &j1); code != http.StatusAccepted {
		t.Fatalf("upload left: %d", code)
	}
	if j1.Kind != KindIngest || j1.Upload == nil || j1.Upload.Name != "left" {
		t.Fatalf("ingest job record: %+v", j1)
	}
	var j2 Job
	if code := postKB(t, ts.URL, "name=right&format=nt", doc2, &j2); code != http.StatusAccepted {
		t.Fatalf("upload right: %d", code)
	}

	fin1, fin2 := waitDone(t, ts.URL, j1.ID), waitDone(t, ts.URL, j2.ID)
	if fin1.State != JobDone || fin2.State != JobDone {
		t.Fatalf("ingest jobs: %s=%s (%s), %s=%s (%s)",
			fin1.ID, fin1.State, fin1.Error, fin2.ID, fin2.State, fin2.Error)
	}
	if fin1.KB == "" || fin2.KB == "" {
		t.Fatalf("committed KB paths missing: %q, %q", fin1.KB, fin2.KB)
	}
	if fin1.Ingest == nil || fin1.Ingest.Triples == 0 {
		t.Fatalf("ingest job carries no per-block progress: %+v", fin1.Ingest)
	}

	// The listing shows both as ready.
	var list struct {
		KBs []KBInfo `json:"kbs"`
	}
	if code := getJSON(t, ts.URL+"/v1/kbs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/kbs: %d", code)
	}
	if len(list.KBs) != 2 {
		t.Fatalf("KB listing: %+v", list.KBs)
	}
	for _, kb := range list.KBs {
		if kb.State != "ready" || kb.File == "" {
			t.Fatalf("KB not ready: %+v", kb)
		}
	}

	// Align the pushed KBs by kb: reference on one side and committed path
	// on the other, then check a gold pair resolves.
	var aj Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		JobRequest{KB1: "kb:left", KB2: fin2.KB}, &aj); code != http.StatusAccepted {
		t.Fatalf("submit align: %d", code)
	}
	if !strings.Contains(aj.Request.KB1, "left.nt.gz") {
		t.Fatalf("kb: reference not resolved at submit: %q", aj.Request.KB1)
	}
	final := waitDone(t, ts.URL, aj.ID)
	if final.State != JobDone {
		t.Fatalf("align job failed: %s", final.Error)
	}
	if final.Ingest == nil {
		t.Fatal("align job carries no ingest progress from its KB loads")
	}
	pairs := d.Gold.Pairs()
	if got, code := lookupKey(t, ts.URL, "1", pairs[0][0]); code != http.StatusOK || got != pairs[0][1] {
		t.Fatalf("sameas on pushed KBs: %d, %q (want %q)", code, got, pairs[0][1])
	}
}

// TestUploadKBResumable walks the documented recovery path: a gzip dump cut
// mid-stream uploads "successfully" as bytes (the connection did not fail)
// but fails validation with a typed offset error; the spool survives, the
// listing reports the resume offset, and re-POSTing just the remainder
// completes the KB without resending the prefix.
func TestUploadKBResumable(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	doc1, _, _ := corpusDocs(t, 30)
	zdoc := gzipBytes(t, doc1)
	half := len(zdoc) / 2

	var j1 Job
	if code := postKB(t, ts.URL, "name=big&format=.nt.gz", zdoc[:half], &j1); code != http.StatusAccepted {
		t.Fatalf("upload first half: %d", code)
	}
	fail := waitDone(t, ts.URL, j1.ID)
	if fail.State != JobFailed {
		t.Fatalf("truncated gzip validated: %+v", fail)
	}
	if !strings.Contains(fail.Error, "byte offset") {
		t.Fatalf("validation error does not name a byte offset: %q", fail.Error)
	}

	// The spool survives the failed validation and reports its offset.
	var list struct {
		KBs []KBInfo `json:"kbs"`
	}
	if code := getJSON(t, ts.URL+"/v1/kbs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/kbs: %d", code)
	}
	if len(list.KBs) != 1 || list.KBs[0].State != "partial" || list.KBs[0].Offset != int64(half) {
		t.Fatalf("partial listing: %+v", list.KBs)
	}

	// A wrong offset is refused with the right one.
	var conflict struct {
		Error  string `json:"error"`
		Offset int64  `json:"offset"`
	}
	if code := postKB(t, ts.URL, fmt.Sprintf("name=big&format=.nt.gz&offset=%d", half+7), zdoc[half:], &conflict); code != http.StatusConflict {
		t.Fatalf("mismatched offset: %d", code)
	}
	if conflict.Offset != int64(half) {
		t.Fatalf("conflict offset = %d, want %d", conflict.Offset, half)
	}

	// Resume with the remainder only.
	var j2 Job
	if code := postKB(t, ts.URL, fmt.Sprintf("name=big&format=.nt.gz&offset=%d", half), zdoc[half:], &j2); code != http.StatusAccepted {
		t.Fatalf("resume upload: %d", code)
	}
	done := waitDone(t, ts.URL, j2.ID)
	if done.State != JobDone {
		t.Fatalf("resumed ingest failed: %s", done.Error)
	}
	if done.Upload.Bytes != int64(len(zdoc)) {
		t.Fatalf("resumed upload bytes = %d, want %d", done.Upload.Bytes, len(zdoc))
	}
}

func TestUploadKBValidation(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	cases := []struct {
		query string
		want  int
	}{
		{"name=../evil&format=.nt", http.StatusBadRequest},
		{"name=.hidden&format=.nt", http.StatusBadRequest},
		{"name=", http.StatusBadRequest},
		{"name=ok&format=.ttl", http.StatusBadRequest}, // Turtle cannot block-split
		{"name=ok&format=.nt&offset=-3", http.StatusBadRequest},
		{"name=ok&format=.nt&offset=999", http.StatusConflict}, // nothing spooled
	}
	for _, c := range cases {
		if code := postKB(t, ts.URL, c.query, []byte("x"), nil); code != c.want {
			t.Errorf("POST /v1/kbs?%s: %d, want %d", c.query, code, c.want)
		}
	}

	// Garbage that parses to zero triples must not commit.
	var j Job
	if code := postKB(t, ts.URL, "name=junk&format=.nt", []byte("not a triple\nat all\n"), &j); code != http.StatusAccepted {
		t.Fatalf("junk upload: %d", code)
	}
	if fin := waitDone(t, ts.URL, j.ID); fin.State != JobFailed || !strings.Contains(fin.Error, "no triples") {
		t.Fatalf("junk KB: %+v", fin)
	}

	// Invalid UTF-8 in an IRI fails with a typed byte offset.
	bad := []byte("<http://x/a> <http://x/p> <http://x/b> .\n<http://x/\xff> <http://x/p> <http://x/c> .\n")
	if code := postKB(t, ts.URL, "name=badiri&format=.nt", bad, &j); code != http.StatusAccepted {
		t.Fatalf("bad-IRI upload: %d", code)
	}
	fin := waitDone(t, ts.URL, j.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "byte offset 41") {
		t.Fatalf("invalid-UTF-8 KB: state %s, error %q", fin.State, fin.Error)
	}
}

func TestUploadKBRejectedOnShard(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), ShardCount: 3, ShardIndex: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := postKB(t, ts.URL, "name=x&format=.nt", []byte("<a> <b> <c> .\n"), nil); code != http.StatusForbidden {
		t.Fatalf("shard accepted an upload: %d", code)
	}
}

// readSSE collects one job's SSE frames until the done event (or EOF).
// An optional onFirst callback fires once after the first frame arrives,
// so callers can hold a job until the subscription is live.
func readSSE(t *testing.T, base, id string, onFirst ...func()) []JobEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE GET: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var typ string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var j Job
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &j); err != nil {
				t.Fatalf("decoding %q frame: %v", typ, err)
			}
			events = append(events, JobEvent{Type: typ, Job: j})
			if len(events) == 1 {
				for _, f := range onFirst {
					f()
				}
			}
			if typ == EventDone {
				return events
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestJobEventsSSE(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, dir, 1)
	defer srv.Close()
	defer ts.Close()
	writePersonsKB(t, dir, 60)

	// Hold the job at the running threshold so the watch subscribes before
	// the first iteration lands, then observe the full stream.
	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }
	var j Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		KB1: filepath.Join(dir, "person1.nt"), KB2: filepath.Join(dir, "person2.nt"),
	}, &j); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Release the held job only once the watch delivered its first frame,
	// so the stream is guaranteed to observe the iterations.
	subscribed := make(chan struct{})
	evCh := make(chan []JobEvent, 1)
	go func() { evCh <- readSSE(t, ts.URL, j.ID, func() { close(subscribed) }) }()
	<-subscribed
	close(release)

	events := <-evCh
	if len(events) < 3 {
		t.Fatalf("too few SSE events: %+v", events)
	}
	if events[0].Type != EventState {
		t.Fatalf("first event %q, want state", events[0].Type)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	if counts[EventIteration] == 0 {
		t.Errorf("no iteration events: %v", counts)
	}
	if counts[EventIngest] == 0 {
		t.Errorf("no ingest events from the KB loads: %v", counts)
	}
	if counts[EventDone] != 1 {
		t.Errorf("done events = %d, want 1", counts[EventDone])
	}
	last := events[len(events)-1]
	if last.Type != EventDone || last.Job.State != JobDone || last.Job.Snapshot == "" {
		t.Fatalf("terminal event: %+v", last)
	}

	// A watch on an already-terminal job yields state + done immediately.
	events = readSSE(t, ts.URL, j.ID)
	if len(events) != 2 || events[0].Type != EventState || events[1].Type != EventDone {
		t.Fatalf("terminal-job SSE: %+v", events)
	}

	// Unknown jobs 404 on the SSE path too.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/job-99999999", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("SSE for unknown job: %d", resp.StatusCode)
	}
}

func TestIngestJobSSEStreamsBlocks(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	doc1, _, _ := corpusDocs(t, 50)
	var j Job
	if code := postKB(t, ts.URL, "name=streamy&format=.nt", doc1, &j); code != http.StatusAccepted {
		t.Fatalf("upload: %d", code)
	}
	events := readSSE(t, ts.URL, j.ID)
	last := events[len(events)-1]
	if last.Type != EventDone || last.Job.State != JobDone {
		t.Fatalf("terminal event: %+v", last)
	}
	if last.Job.Ingest == nil || last.Job.Ingest.Triples == 0 {
		t.Fatalf("done event carries no ingest totals: %+v", last.Job.Ingest)
	}
}

// TestUploadKBAlignWithChaining: POST /v1/kbs?align-with=<kb> commits the
// upload and then runs an alignment against the named KB. The 202 response
// carries both job IDs (ID + Next); the align job waits on the ingest and
// publishes a snapshot that answers the gold pairs.
func TestUploadKBAlignWithChaining(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	doc1, doc2, d := corpusDocs(t, 40)

	// The second KB of the dataset commits first; the chained alignment
	// then runs with the freshly uploaded KB as KB1, matching the gold
	// pairs' orientation.
	var j1 Job
	if code := postKB(t, ts.URL, "name=right&format=.nt", doc2, &j1); code != http.StatusAccepted {
		t.Fatalf("upload right: %d", code)
	}
	if fin := waitDone(t, ts.URL, j1.ID); fin.State != JobDone {
		t.Fatalf("right ingest: %s (%s)", fin.State, fin.Error)
	}

	// Chaining against an unknown KB fails before anything is spooled.
	var bad struct {
		Error string `json:"error"`
	}
	if code := postKB(t, ts.URL, "name=left&format=.nt&align-with=nosuch", doc1, &bad); code != http.StatusBadRequest {
		t.Fatalf("align-with unknown KB: %d (%s)", code, bad.Error)
	}

	var j2 Job
	if code := postKB(t, ts.URL, "name=left&format=.nt&align-with=right", doc1, &j2); code != http.StatusAccepted {
		t.Fatalf("upload left: %d", code)
	}
	if j2.Next == "" {
		t.Fatalf("chained upload carries no align job ID: %+v", j2)
	}
	if fin := waitDone(t, ts.URL, j2.ID); fin.State != JobDone {
		t.Fatalf("left ingest: %s (%s)", fin.State, fin.Error)
	}
	align := waitDone(t, ts.URL, j2.Next)
	if align.State != JobDone || align.Snapshot == "" {
		t.Fatalf("chained align: state=%s snapshot=%q error=%q", align.State, align.Snapshot, align.Error)
	}
	if align.After != j2.ID {
		t.Fatalf("align job waits on %q, want %q", align.After, j2.ID)
	}

	// The published snapshot resolves the corpus gold pairs.
	pairs := d.Gold.Pairs()
	hits := 0
	for _, p := range pairs[:min(10, len(pairs))] {
		if got, code := lookupKey(t, ts.URL, "1", p[0]); code == http.StatusOK && got == p[1] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("chained alignment resolved none of the gold pairs")
	}
}

// TestUploadKBAlignWithFailedDependency: when the chained ingest fails, the
// align job fails too instead of running against a missing KB.
func TestUploadKBAlignWithFailedDependency(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	doc1, _, _ := corpusDocs(t, 20)
	var j1 Job
	if code := postKB(t, ts.URL, "name=base&format=.nt", doc1, &j1); code != http.StatusAccepted {
		t.Fatalf("upload base: %d", code)
	}
	if fin := waitDone(t, ts.URL, j1.ID); fin.State != JobDone {
		t.Fatalf("base ingest: %s (%s)", fin.State, fin.Error)
	}

	// Garbage bytes: the ingest job fails, and the chained align job must
	// fail as a dependency casualty, not run against a phantom KB.
	var j2 Job
	if code := postKB(t, ts.URL, "name=junk&format=.nt&align-with=base", []byte("this is not ntriples\n"), &j2); code != http.StatusAccepted {
		t.Fatalf("upload junk: %d", code)
	}
	if fin := waitDone(t, ts.URL, j2.ID); fin.State != JobFailed {
		t.Fatalf("junk ingest: %s, want failed", fin.State)
	}
	align := waitDone(t, ts.URL, j2.Next)
	if align.State != JobFailed || !strings.Contains(align.Error, "dependency job") {
		t.Fatalf("chained align after failed ingest: state=%s error=%q", align.State, align.Error)
	}
}
