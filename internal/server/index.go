package server

import (
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/literal"
)

// Match is one direction-resolved sameAs answer: the matched entity key in
// the other knowledge base and the equality probability.
type Match struct {
	Key string  `json:"key"`
	P   float64 `json:"p"`
}

// index is the immutable in-memory serving structure built from one
// snapshot. Readers obtain it through an atomic pointer and then work on
// plain maps and slices that are never mutated after buildIndex returns —
// the RCU discipline that keeps the read path lock-free: publishing a new
// snapshot swaps the pointer, it never touches a live index.
type index struct {
	id        string
	kb1, kb2  string
	createdAt time.Time

	// fwd maps ontology-1 keys to their ontology-2 match; rev the reverse.
	fwd, rev map[string]Match

	// normFwd and normRev map folded keys (lowercased, alphanumeric runes
	// only) to the canonical keys they collapse from, the fallback for
	// clients that do not know exact key syntax.
	normFwd, normRev map[string][]string

	relations12, relations21 []core.SnapshotRelation
	classes12, classes21     []core.SnapshotClass
}

// buildIndex constructs the serving index for one snapshot. It is the only
// place index fields are written. The relation and class slices are sorted
// here, once per snapshot, so the read handlers only filter.
func buildIndex(id string, snap *core.ResultSnapshot) *index {
	ix := &index{
		id:        id,
		kb1:       snap.KB1,
		kb2:       snap.KB2,
		createdAt: snap.CreatedAt,

		fwd:     make(map[string]Match, len(snap.Instances)),
		rev:     make(map[string]Match, len(snap.Instances)),
		normFwd: make(map[string][]string, len(snap.Instances)),
		normRev: make(map[string][]string, len(snap.Instances)),

		relations12: snap.Relations12,
		relations21: snap.Relations21,
		classes12:   snap.Classes12,
		classes21:   snap.Classes21,
	}
	for _, a := range snap.Instances {
		ix.fwd[a.Key1] = Match{Key: a.Key2, P: a.P}
		// Instances is a per-entity argmax, not an injective matching, so
		// several ontology-1 entities may share one ontology-2 match; keep
		// the reverse entry deterministic: highest probability, then
		// smallest key.
		m := Match{Key: a.Key1, P: a.P}
		old, seen := ix.rev[a.Key2]
		if !seen || m.P > old.P || (m.P == old.P && m.Key < old.Key) {
			ix.rev[a.Key2] = m
		}
		n1 := foldKey(a.Key1)
		ix.normFwd[n1] = append(ix.normFwd[n1], a.Key1)
		if !seen { // Key1 is unique per instance; Key2 may repeat
			n2 := foldKey(a.Key2)
			ix.normRev[n2] = append(ix.normRev[n2], a.Key2)
		}
	}
	sortScores(ix.relations12, func(r core.SnapshotRelation) (string, float64) { return r.Sub, r.P })
	sortScores(ix.relations21, func(r core.SnapshotRelation) (string, float64) { return r.Sub, r.P })
	sortScores(ix.classes12, func(c core.SnapshotClass) (string, float64) { return c.Sub, c.P })
	sortScores(ix.classes21, func(c core.SnapshotClass) (string, float64) { return c.Sub, c.P })
	return ix
}

// sortScores orders by descending probability, then sub key, the order the
// relations and classes endpoints serve.
func sortScores[T any](scores []T, key func(T) (string, float64)) {
	sort.Slice(scores, func(i, j int) bool {
		subI, pI := key(scores[i])
		subJ, pJ := key(scores[j])
		if pI != pJ {
			return pI > pJ
		}
		return subI < subJ
	})
}

// lookup resolves key in the given direction (true = ontology 1 → 2) by
// exact match, also trying the angle-bracketed IRI form for clients that
// pass bare IRIs. It takes no locks.
func (ix *index) lookup(fwd bool, key string) (Match, bool) {
	m := ix.fwd
	if !fwd {
		m = ix.rev
	}
	if hit, ok := m[key]; ok {
		return hit, true
	}
	if !strings.HasPrefix(key, "<") {
		if hit, ok := m["<"+key+">"]; ok {
			return hit, true
		}
	}
	return Match{}, false
}

// lookupNormalized resolves key through the folded-key maps, returning every
// match whose canonical key collapses to the same folded form. The caller
// caches the result; the index itself stays immutable.
func (ix *index) lookupNormalized(fwd bool, key string) []Match {
	norm, exact := ix.normFwd, ix.fwd
	if !fwd {
		norm, exact = ix.normRev, ix.rev
	}
	var out []Match
	for _, canonical := range norm[foldKey(key)] {
		if hit, ok := exact[canonical]; ok {
			out = append(out, hit)
		}
	}
	return out
}

// direction parses the kb query parameter: "1" (or the KB name) queries
// ontology-1 keys, "2" the reverse. Empty defaults to ontology 1. Names
// are only accepted when the two KB names differ — with colliding display
// names a by-name query would silently pick a direction, so it is rejected
// and the numeric forms remain the unambiguous address.
func (ix *index) direction(kb string) (fwd, ok bool) {
	switch kb {
	case "", "1":
		return true, true
	case "2":
		return false, true
	}
	if ix.kb1 != ix.kb2 {
		switch kb {
		case ix.kb1:
			return true, true
		case ix.kb2:
			return false, true
		}
	}
	return false, false
}

// foldKey lowercases and keeps only letters and digits, so
// "<http://a/Elvis_Presley>" and "http://a/elvis-presley" collapse to the
// same form — the serving-side analog of the paper's normalized literal
// equality (Section 5.3), tolerating case and punctuation drift in keys.
// It delegates to the literal package so key folding and literal
// normalization can never diverge.
func foldKey(k string) string { return literal.AlphaNumString(k) }
