package server

// Telemetry and KB-deletion tests: the /metrics exposition carries every
// instrument family with stable names after real traffic, a client-injected
// trace ID surfaces in the server's span logs, DELETE /v1/kbs enforces the
// in-use rules, and the startup spool GC removes only abandoned uploads.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics fetches /metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndToEnd drives one alignment job plus lookups through the API
// and checks the exposition covers every layer: HTTP, jobs, ingest,
// fixpoint, and serving-state families, under their stable names.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 30)
	srv, ts := newTestServer(t, dir, 1)
	defer srv.Close()
	defer ts.Close()

	j := postJob(t, ts.URL, JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"), KB2: filepath.Join(dir, d.Name2+".nt"),
	})
	if fin := waitDone(t, ts.URL, j.ID); fin.State != JobDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	a := d.Gold.Pairs()[0]
	if _, code := lookupKey(t, ts.URL, "1", a[0]); code != http.StatusOK {
		t.Fatalf("lookup: %d", code)
	}
	getJSON(t, ts.URL+"/v1/sameas?kb=1&key=no-such-entity", nil) // a 404 sample

	text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		// HTTP layer: per-route counters with method and status labels, the
		// latency histogram, and the route pattern coming from the mux.
		`paris_http_requests_total{route="POST /v1/jobs",method="POST",code="202"} 1`,
		`paris_http_requests_total{route="GET /v1/sameas",method="GET",code="404"} 1`,
		`paris_http_request_seconds_bucket{route="GET /v1/sameas",le="+Inf"}`,
		"paris_http_in_flight 1", // the /metrics request itself
		// Job manager.
		`paris_jobs_completed_total{kind="align",outcome="done"} 1`,
		`paris_job_seconds_count{kind="align"} 1`,
		"paris_jobs_running 0",
		"paris_jobs_queue_depth 0",
		// Streaming ingest (two KB loads happened).
		"paris_ingest_blocks_total",
		"paris_ingest_triples_total",
		// Fixpoint.
		"paris_fixpoint_iterations_total",
		"paris_fixpoint_iteration_seconds_count",
		// Serving state.
		"paris_lookups_total 2",
		"paris_snapshots 1",
		"paris_snapshots_published_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The ingest counters must carry the real triple count, not zero.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "paris_ingest_triples_total ") {
			if line == "paris_ingest_triples_total 0" {
				t.Errorf("ingest triples counter stayed zero")
			}
		}
		if strings.HasPrefix(line, "paris_fixpoint_iterations_total ") {
			if line == "paris_fixpoint_iterations_total 0" {
				t.Errorf("fixpoint iteration counter stayed zero")
			}
		}
	}
}

// TestServerSpanLogCarriesClientTrace injects an X-Paris-Trace header and
// checks the server's span log line reports that trace ID with the client's
// span as parent — the cross-process half of request tracing.
func TestServerSpanLogCarriesClientTrace(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	srv, err := New(Options{StateDir: t.TempDir(), Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := obs.NewTrace()
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	req.Header.Set(obs.TraceHeader, tr.String())
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	mu.Lock()
	defer mu.Unlock()
	var span string
	for _, l := range lines {
		if strings.Contains(l, "span name=http") {
			span = l
		}
	}
	if span == "" {
		t.Fatalf("no span log line in %q", lines)
	}
	for _, want := range []string{
		"trace=" + tr.TraceID, "parent=" + tr.SpanID,
		"route=GET /v1/healthz", "status=200",
	} {
		if !strings.Contains(span, want) {
			t.Errorf("span log %q missing %q", span, want)
		}
	}
}

// TestDeleteKB covers the deletion lifecycle: 404 for unknown names, 400
// for invalid ones, 409 while a queued or running job references the KB,
// and 200 removing the committed file afterwards.
func TestDeleteKB(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/kbs/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("delete unknown: %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/kbs/.bad", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("delete invalid name: %d, want 400", code)
	}

	doc, _, _ := corpusDocs(t, 20)
	var j Job
	if code := postKB(t, ts.URL, "name=left&format=.nt", doc, &j); code != http.StatusAccepted {
		t.Fatalf("upload: %d", code)
	}
	if fin := waitDone(t, ts.URL, j.ID); fin.State != JobDone {
		t.Fatalf("ingest failed: %s", fin.Error)
	}

	// Hold an align job referencing the KB in the running state: deletion
	// must refuse rather than doom 202-acknowledged work.
	release := make(chan struct{})
	srv.testBeforeAlign = func(string) { <-release }
	aj := postJob(t, ts.URL, JobRequest{KB1: "kb:left", KB2: "kb:left"})
	waitRunning(t, ts.URL, aj.ID)
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/kbs/left", nil, nil); code != http.StatusConflict {
		t.Fatalf("delete while referenced: %d, want 409", code)
	}
	close(release)
	waitDone(t, ts.URL, aj.ID)

	var out struct {
		Deleted string   `json:"deleted"`
		Files   []string `json:"files"`
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/kbs/left", nil, &out); code != http.StatusOK {
		t.Fatalf("delete: %d, want 200", code)
	}
	if out.Deleted != "left" || len(out.Files) != 1 {
		t.Fatalf("delete response: %+v", out)
	}
	var list struct {
		KBs []KBInfo `json:"kbs"`
	}
	getJSON(t, ts.URL+"/v1/kbs", &list)
	if len(list.KBs) != 0 {
		t.Fatalf("KB survived deletion: %+v", list.KBs)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/kbs/left", nil, nil); code != http.StatusNotFound {
		t.Fatalf("re-delete: %d, want 404", code)
	}
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var j Job
		getJSON(t, base+"/v1/jobs/"+id, &j)
		if j.State == JobRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never ran", id)
}

// TestSpoolGC checks the startup GC removes only spools older than the TTL.
func TestSpoolGC(t *testing.T) {
	dir := t.TempDir()
	kbs := filepath.Join(dir, "kbs")
	if err := os.MkdirAll(kbs, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(kbs, "old.nt.partial")
	fresh := filepath.Join(kbs, "new.nt.partial")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale, past, past); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale spool survived the GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh spool removed by the GC: %v", err)
	}
}
