// Package server is the PARIS alignment service: it accepts alignment jobs
// over HTTP/JSON, runs them asynchronously on a bounded worker pool, persists
// every completed result as a versioned snapshot through the diskstore (so
// restarts recover all completed alignments), and serves sameAs/relation/
// class lookups from an immutable in-memory index that is swapped in
// atomically per snapshot — reads take no locks, in the spirit of the
// disk-backed interactive serving layer of EMBANKS (arXiv:1104.4384) on top
// of the batch fixpoint of the paper.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/ingest"
	"repro/internal/literal"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/store"
)

// Options configures a Server. The zero value of every field has a usable
// default; StateDir is required.
type Options struct {
	// StateDir is the directory holding the snapshot store. It is created
	// if missing.
	StateDir string

	// Workers bounds the alignment worker pool (default 2): at most this
	// many jobs align concurrently, the rest wait in the queue.
	Workers int

	// QueueDepth bounds the pending-job queue (default 16); submissions
	// beyond it are rejected with 503.
	QueueDepth int

	// CacheSize is the capacity of the normalized-lookup LRU (default 4096).
	CacheSize int

	// Retain, when positive, bounds how many snapshots are kept: after
	// each publish, snapshots beyond the newest Retain are retired from
	// the store unless pinned by the lineage of a kept snapshot (so delta
	// chains stay replayable) or by an active ?snapshot= pinned index.
	// Zero keeps everything. In shard mode one extra version is kept so
	// the router's previous epoch survives a publish window; size Retain
	// to cover every version that may land between router refreshes — a
	// retired version the router still routes to would 404 unpinned reads.
	Retain int

	// MaxSnapshotBytes bounds one PUT /v1/snapshots/{id} body (default
	// 1 GiB). Raise it on shards of deployments whose per-shard slices
	// exceed the default; streaming slice transfer (no whole-snapshot
	// buffering) is a roadmap item.
	MaxSnapshotBytes int64

	// IngestWorkers is the parse parallelism of streaming KB loads — both
	// POST /v1/kbs upload validation and the KB loads at the start of
	// alignment jobs (default min(GOMAXPROCS, 8)).
	IngestWorkers int

	// IngestBudget bounds the memory the streaming loader buffers before
	// spilling sorted triple runs to temp segments under StateDir
	// (default 256 MiB).
	IngestBudget int64

	// MaxUploadBytes bounds one uploaded KB's total spooled size across
	// POST /v1/kbs requests (default 16 GiB) — the disk-side sibling of
	// MaxSnapshotBytes.
	MaxUploadBytes int64

	// SpoolTTL bounds how long an interrupted KB upload spool stays
	// resumable: at startup, *.partial spools idle longer than this are
	// removed (default 24h; negative disables the GC). In-flight spools
	// are never touched — the GC runs before the HTTP surface exists.
	SpoolTTL time.Duration

	// ShardCount, when positive, runs the server as one shard of an
	// N-way sharded deployment (parisd -shard i/N behind a parisrouter):
	// it serves lookups for its slice of the key space only, refuses
	// alignment and delta submissions (those belong on the aligner that
	// computes the full snapshot), and receives its per-shard snapshot
	// slices through PUT /v1/snapshots/{id}. ShardIndex is this shard's
	// 0-based position in [0, ShardCount).
	ShardCount int
	ShardIndex int

	// Logf, when non-nil, receives one line per significant event.
	Logf func(format string, args ...any)

	// DisableRecorder turns off the in-process flight recorder (span
	// collection, slow/error trace retention, convergence introspection).
	// Span log lines keep flowing through Logf. Exists for A/B overhead
	// measurement; production keeps the recorder on.
	DisableRecorder bool
}

// Bounds on the per-job numeric knobs accepted over HTTP.
const (
	maxJobWorkers    = 256
	maxJobIterations = 1000
	// maxPinnedIndexes bounds the cache of non-current snapshot indexes
	// kept alive for ?snapshot= pinned reads.
	maxPinnedIndexes = 4
)

// Bounds of one POST /v1/sameas batch request, exported so the shard
// router's pre-flight rejections can never diverge from what a shard would
// answer — the router mirrors these, not copies of their values.
const (
	// MaxBatchKeys bounds the keys of one batch lookup.
	MaxBatchKeys = 10000
	// MaxBatchBody bounds the request body of one batch lookup.
	MaxBatchBody = 8 << 20
)

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.MaxSnapshotBytes <= 0 {
		o.MaxSnapshotBytes = 1 << 30
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 16 << 30
	}
	if o.SpoolTTL == 0 {
		o.SpoolTTL = 24 * time.Hour
	}
	// IngestWorkers and IngestBudget zero-default inside the ingest
	// pipeline itself, so the daemon, the store layer, and the session all
	// share one definition of "default".
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server is the alignment service. Create it with New, expose Handler over
// HTTP, and Close it to flush state.
type Server struct {
	opts  Options
	jobs  *jobManager
	cache *lruCache

	// idx is the serving index of the newest snapshot; nil before the
	// first snapshot exists. Readers load it exactly once per request and
	// never lock.
	idx atomic.Pointer[index]

	// mu serializes snapshot publication and store writes.
	mu      sync.Mutex
	store   *diskstore.Store
	unlock  func() error // releases the state-dir lock
	snapSeq uint64
	snaps   []SnapshotInfo // all snapshots with lineage metadata, oldest first

	// deltaMu serializes delta jobs: they mutate the cached ontologies in
	// place, so at most one re-alignment may touch them at a time. Guards
	// the onto* cache fields.
	deltaMu  sync.Mutex
	deltaDir string // delta segment directory under StateDir
	ontoID   string // snapshot the cached ontologies correspond to
	onto1    *store.Ontology
	onto2    *store.Ontology

	// pinned caches serving indexes of non-current snapshots requested via
	// ?snapshot= (repeatable reads), bounded by maxPinnedIndexes. Guarded
	// by mu.
	pinned map[string]*index

	// engines caches query engines over per-snapshot union KBs for
	// POST /v1/query, bounded by maxQueryEngines. Guarded by mu.
	engines map[string]*query.Engine

	// uploads marks KB upload names with a request currently streaming
	// into their spool. Guarded by mu.
	uploads map[string]bool

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the telemetry middleware
	reg     *obs.Registry
	met     *serverMetrics
	col     *obs.Collector // flight recorder; nil when Options.DisableRecorder
	started time.Time
	lookups atomic.Uint64

	// testBeforeAlign, when non-nil, runs on the worker goroutine after a
	// job transitions to running and before alignment starts. Tests use it
	// to observe the running state deterministically.
	testBeforeAlign func(id string)
}

// New opens (or creates) the state directory, recovers all persisted
// snapshots and job records, builds the serving index from the newest
// snapshot, and starts the worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.StateDir == "" {
		return nil, fmt.Errorf("server: Options.StateDir is required")
	}
	if opts.ShardCount < 0 || opts.ShardIndex < 0 ||
		(opts.ShardCount == 0 && opts.ShardIndex != 0) ||
		(opts.ShardCount > 0 && opts.ShardIndex >= opts.ShardCount) {
		return nil, fmt.Errorf("server: invalid shard %d/%d (index must be in [0, count))",
			opts.ShardIndex, opts.ShardCount)
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	unlock, err := lockStateDir(opts.StateDir)
	if err != nil {
		return nil, err
	}
	st, err := diskstore.Open(filepath.Join(opts.StateDir, "paris.db"))
	if err != nil {
		unlock()
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		opts:     opts,
		store:    st,
		unlock:   unlock,
		cache:    newLRU(opts.CacheSize),
		pinned:   make(map[string]*index),
		engines:  make(map[string]*query.Engine),
		deltaDir: filepath.Join(opts.StateDir, "deltas"),
		started:  time.Now().UTC(),
		reg:      reg,
		met:      newServerMetrics(reg),
	}
	if !opts.DisableRecorder {
		s.col = obs.NewCollector(obs.CollectorConfig{})
		s.met.http.AttachCollector(s.col)
	}
	if err := s.recoverState(); err != nil {
		st.Close()
		unlock()
		return nil, err
	}
	s.met.snapshots.Set(float64(len(s.snaps)))
	s.gcSpool()
	s.jobs = newJobManager(opts.Workers, opts.QueueDepth, s.runJob, s.persistJob, s.met.jobs)
	if err := s.recoverJobs(); err != nil {
		s.jobs.close()
		st.Close()
		unlock()
		return nil, err
	}
	s.buildMux()
	return s, nil
}

// SnapshotInfo is the served metadata of one snapshot version, including
// the lineage of incrementally derived snapshots.
type SnapshotInfo struct {
	ID        string    `json:"id"`
	KB1       string    `json:"kb1"`
	KB2       string    `json:"kb2"`
	Created   time.Time `json:"created,omitempty"`
	Instances int       `json:"instances"`

	// Base is the snapshot this one was warm-started from; empty for cold
	// (full alignment) snapshots. DeltaDigest identifies the applied delta
	// batch and DeltaAdded counts its statements.
	Base        string `json:"base,omitempty"`
	DeltaDigest string `json:"delta_digest,omitempty"`
	DeltaAdded  int    `json:"delta_added,omitempty"`
}

// snapshotNewer reports whether snapshot a is newer than b, by sequence
// number. Snapshot IDs must never be compared as strings: the snap-%08d
// padding overflows at seq 100,000,000, where the numerically newer ID is
// the lexicographically smaller one. IDs that do not parse order before
// every numbered snapshot, among themselves by string.
func snapshotNewer(a, b string) bool {
	sa, erra := diskstore.ParseSnapshotID(a)
	sb, errb := diskstore.ParseSnapshotID(b)
	switch {
	case erra == nil && errb == nil:
		return sa > sb
	case erra == nil:
		return true
	case errb == nil:
		return false
	default:
		return a > b
	}
}

func snapshotInfo(id string, snap *core.ResultSnapshot) SnapshotInfo {
	return SnapshotInfo{
		ID: id, KB1: snap.KB1, KB2: snap.KB2,
		Created: snap.CreatedAt, Instances: len(snap.Instances),
		Base: snap.Base, DeltaDigest: snap.DeltaDigest, DeltaAdded: snap.DeltaAdded,
	}
}

// recoverState reloads snapshots and terminal job records from the store.
// Lineage metadata comes from the small per-snapshot metadata records, so
// only the newest snapshot (the one to serve) is fully decoded; snapshots
// persisted before metadata records existed fall back to a full decode.
func (s *Server) recoverState() error {
	ids, err := diskstore.ListSnapshots(s.store)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if seq, err := diskstore.ParseSnapshotID(id); err == nil && seq > s.snapSeq {
			s.snapSeq = seq
		}
		info, err := s.loadSnapshotInfo(id)
		if err != nil {
			return err
		}
		s.snaps = append(s.snaps, info)
	}
	if len(ids) > 0 {
		// Newest by sequence number, never by string: "snap-100000000"
		// sorts below "snap-99999999" lexicographically, and serving the
		// wrong one here would silently regress the index on restart.
		newest := ids[len(ids)-1]
		for _, id := range ids {
			if snapshotNewer(id, newest) {
				newest = id
			}
		}
		snap, err := diskstore.LoadSnapshot(s.store, newest)
		if err != nil {
			return err
		}
		s.idx.Store(buildIndex(newest, snap))
		s.opts.Logf("server: recovered %d snapshot(s), serving %s (%s vs %s, %d instances)",
			len(ids), newest, snap.KB1, snap.KB2, len(snap.Instances))
	}
	return nil
}

// loadSnapshotInfo reads one snapshot's metadata record, decoding the full
// snapshot only when the record is missing (pre-metadata stores).
func (s *Server) loadSnapshotInfo(id string) (SnapshotInfo, error) {
	if data, err := diskstore.LoadSnapshotMeta(s.store, id); err == nil {
		var info SnapshotInfo
		if err := json.Unmarshal(data, &info); err == nil && info.ID == id {
			return info, nil
		}
		s.opts.Logf("server: corrupt metadata for %s, decoding snapshot", id)
	}
	snap, err := diskstore.LoadSnapshot(s.store, id)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return snapshotInfo(id, snap), nil
}

// recoverJobs restores persisted job history into the manager. Called from
// New after the manager exists.
func (s *Server) recoverJobs() error {
	records, err := diskstore.LoadJobRecords(s.store)
	if err != nil {
		return err
	}
	for id, data := range records {
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			s.opts.Logf("server: dropping corrupt job record %s: %v", id, err)
			continue
		}
		// A record whose ID does not round-trip through the job-%08d format
		// (foreign store, hand-edited state) must not recover: ignoring the
		// parse error would install it with seq 0, and a freshly issued
		// job-N could then collide with its map entry.
		var seq uint64
		if n, err := fmt.Sscanf(j.ID, "job-%d", &seq); n != 1 || err != nil ||
			fmt.Sprintf("job-%08d", seq) != j.ID {
			s.opts.Logf("server: skipping job record with unparseable id %q", id)
			continue
		}
		s.jobs.recover(j, seq)
	}
	return nil
}

// Handler returns the HTTP API handler: the /v1 mux wrapped in the
// telemetry middleware (per-route metrics plus request tracing — an
// X-Paris-Trace header injected by a client or the router is picked up here
// and surfaces in this process's span logs).
func (s *Server) Handler() http.Handler { return s.handler }

// MetricsRegistry exposes the server's metrics registry so the daemon can
// serve it on a separate -debug-addr listener (obs.DebugMux) and harnesses
// can scrape deltas in-process.
func (s *Server) MetricsRegistry() *obs.Registry { return s.reg }

// Recorder exposes the server's flight recorder so the daemon can mount
// GET /debug/traces on the -debug-addr listener. Nil when disabled.
func (s *Server) Recorder() *obs.Collector { return s.col }

// errShutdown is the cancellation cause for jobs aborted because the
// shutdown grace period ran out.
var errShutdown = errors.New("server shutting down")

// Close drains the worker pool and closes the state store. Queued jobs that
// have not started are dropped; running jobs complete and persist. Use
// CloseContext to bound how long running jobs may take.
func (s *Server) Close() error {
	return s.CloseContext(context.Background())
}

// CloseContext is Close with a shutdown budget: running jobs drain
// normally, but once ctx is done their contexts are canceled (cause:
// server shutting down), so each aborts within one fixpoint pass, persists
// as failed, and publishes nothing — a SIGTERM no longer waits out an
// hours-long alignment. CloseContext still returns only after every worker
// has stopped and the store is flushed.
func (s *Server) CloseContext(ctx context.Context) error {
	drained := make(chan struct{})
	go func() {
		s.jobs.close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.jobs.cancelAll(errShutdown)
		s.opts.Logf("server: shutdown grace period over, canceled running jobs")
		<-drained
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.store.Close()
	if uerr := s.unlock(); err == nil {
		err = uerr
	}
	return err
}

// runJob executes one job end to end on a worker goroutine, dispatching on
// the job kind. ctx is canceled by DELETE /v1/jobs/{id}; a canceled job
// lands in the failed state with the cancellation cause and publishes no
// snapshot.
func (s *Server) runJob(ctx context.Context, id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		return
	}
	if s.testBeforeAlign != nil {
		s.testBeforeAlign(id)
	}
	// The job runs under its own root span (jobs have no inbound trace),
	// with the flight recorder attached so the ingest/fixpoint spans below
	// land in it and the whole tree is retained when the job errs.
	ctx = obs.WithCollector(ctx, s.col)
	ctx, jsp := obs.StartSpan(ctx, s.opts.Logf, "job")
	jsp.Set("job", id)
	jsp.Set("kind", metricKind(j.Kind))
	var snapID string
	var err error
	switch j.Kind {
	case KindDelta:
		s.opts.Logf("server: %s re-aligning delta against %s", id, j.Delta.Base)
		snapID, err = s.realign(ctx, id, *j.Delta)
	case KindIngest:
		s.opts.Logf("server: %s validating uploaded KB %q", id, j.Upload.Name)
		_, err = s.ingestKB(ctx, id, *j.Upload)
	default:
		s.opts.Logf("server: %s aligning %s vs %s", id, j.Request.KB1, j.Request.KB2)
		snapID, err = s.align(ctx, id, j.Request)
	}
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		// The failure is the cancellation itself (not a genuine error
		// that a racing DELETE would otherwise mask): surface the cause
		// ("canceled by client request") rather than the bare
		// context.Canceled the fixpoint returns.
		err = context.Cause(ctx)
	}
	jsp.Fail(err)
	jsp.End()
	final := s.jobs.finish(id, snapID, err)
	switch {
	case err != nil:
		s.opts.Logf("server: %s failed: %v", id, err)
	case j.Kind == KindIngest:
		s.opts.Logf("server: %s done, KB committed at %s", id, final.KB)
	default:
		s.opts.Logf("server: %s done in %d iterations, snapshot %s",
			id, len(final.Iterations), snapID)
	}
	s.persistJob(final)
}

// persistJob writes a terminal job record so history survives restarts. It
// also covers jobs dropped from the queue at shutdown (via jobManager's
// onDrop), so a 202-acknowledged job never silently vanishes.
func (s *Server) persistJob(j Job) {
	data, err := json.Marshal(j)
	if err != nil {
		return
	}
	s.mu.Lock()
	if err := diskstore.SaveJobRecord(s.store, j.ID, data); err != nil {
		s.opts.Logf("server: persisting job %s: %v", j.ID, err)
	}
	s.mu.Unlock()
}

// align loads the two knowledge bases, runs the fixpoint with per-iteration
// progress reporting, and publishes the result as a new snapshot. The
// context aborts both the streaming loads (between reads) and the fixpoint
// (between passes); a canceled job never publishes.
func (s *Server) align(ctx context.Context, id string, req JobRequest) (string, error) {
	// Jobs chained behind an ingest (POST /v1/kbs?align-with=) still carry
	// "kb:<name>" references: the upload had not committed at submit time,
	// so they resolve here, after the dependency finished. The resolved
	// paths are written back onto the record, keeping restart replay of
	// delta lineages rooted in real files.
	resolved := false
	for _, kb := range []*string{&req.KB1, &req.KB2} {
		p, err := s.resolveKBRef(*kb)
		if err != nil {
			return "", err
		}
		if p != *kb {
			*kb = p
			resolved = true
		}
	}
	if resolved {
		s.jobs.setRequestKBs(id, req.KB1, req.KB2)
	}
	norm, err := normalizer(req.Normalize)
	if err != nil {
		return "", err
	}
	lits := store.NewLiterals()
	o1, err := s.loadKB(ctx, id, "kb1", req.KB1, lits, norm)
	if err != nil {
		return "", err
	}
	o2, err := s.loadKB(ctx, id, "kb2", req.KB2, lits, norm)
	if err != nil {
		return "", err
	}
	cfg := core.Config{
		Theta:            req.Theta,
		MaxIterations:    req.MaxIterations,
		NegativeEvidence: req.NegativeEvidence,
		AllEqualities:    req.AllEqualities,
		Workers:          req.Workers,
		OnIteration:      s.onIteration(id),
	}
	a, err := core.NewChecked(o1, o2, cfg)
	if err != nil {
		return "", err
	}
	fctx, fsp := obs.StartSpan(ctx, s.opts.Logf, "fixpoint")
	res, err := a.RunContext(fctx)
	fsp.Set("iterations", len(a.Iterations()))
	fsp.Fail(err)
	fsp.End()
	if err != nil {
		return "", err
	}
	snapID, err := s.publish(res.Snapshot())
	if err == nil {
		// Keep the freshly built ontologies around: a delta job against
		// this snapshot can then re-align without reloading the KBs.
		s.cacheOntologies(snapID, o1, o2)
	}
	return snapID, err
}

// cacheOntologies remembers the ontology pair a snapshot was computed from,
// the warm path for the next delta job against it.
func (s *Server) cacheOntologies(snapID string, o1, o2 *store.Ontology) {
	s.deltaMu.Lock()
	s.ontoID, s.onto1, s.onto2 = snapID, o1, o2
	s.deltaMu.Unlock()
}

// loadKB is store.LoadFile through the streaming parallel ingest pipeline:
// block-parallel parsing under the configured memory budget (spilling to
// temp segments under StateDir when a dump outgrows it), cancellation
// checked per block, and — when jobID is non-empty — per-block progress
// onto the job record and its SSE stream.
func (s *Server) loadKB(ctx context.Context, jobID, phase, path string, lits *store.Literals, norm store.Normalizer) (o *store.Ontology, err error) {
	ctx, sp := obs.StartSpan(ctx, s.opts.Logf, "ingest.load")
	sp.Set("phase", phase)
	sp.Set("path", path)
	defer func() {
		sp.Fail(err)
		sp.End()
	}()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opts := []store.LoadOption{
		store.WithParallelism(s.opts.IngestWorkers),
		store.WithMemoryBudget(s.opts.IngestBudget),
		store.WithSpillDir(s.opts.StateDir),
	}
	feed := s.met.ingestFeeder()
	if jobID != "" {
		opts = append(opts, store.WithLoadProgress(func(p ingest.Progress) {
			feed(p)
			s.jobs.ingestProgress(jobID, IngestProgress{Progress: p, Phase: phase})
		}))
	} else {
		opts = append(opts, store.WithLoadProgress(feed))
	}
	return store.LoadReaderContext(ctx, f, path, kbName(path), lits, norm, opts...)
}

// PublishResult persists a result computed outside the jobs API (for
// example an offline batch run of core.Aligner) as a new snapshot and
// serves it immediately. The result's ontologies are retained for delta
// re-alignment against the snapshot; a later POST /v1/deltas may extend
// them in place, so callers must not keep using them independently.
func (s *Server) PublishResult(res *core.Result) (string, error) {
	id, err := s.publish(res.Snapshot())
	if err == nil {
		s.cacheOntologies(id, res.O1, res.O2)
	}
	return id, err
}

// publish persists snap under the next snapshot ID and atomically swaps the
// serving index to it. Readers racing with publish see either the old or
// the new index, never a partial one.
func (s *Server) publish(snap *core.ResultSnapshot) (string, error) {
	id := s.reserveSnapshotID()
	if err := s.publishAs(id, snap); err != nil {
		return "", err
	}
	s.gc()
	return id, nil
}

// reserveSnapshotID allocates the next snapshot ID without publishing
// anything under it yet. Delta jobs reserve first so the segment file can
// be persisted under the snapshot's name before the snapshot itself — a
// crash in between leaves an orphan segment (never consulted, since lineage
// is read from snapshots), not a snapshot without its replay input. A
// reservation abandoned on error leaves a gap in the sequence, which the
// ID listing tolerates.
func (s *Server) reserveSnapshotID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapSeq++
	return diskstore.SnapshotID(s.snapSeq)
}

// errSnapshotExists reports an attempt to publish under an ID that is
// already taken — only possible through snapshot ingestion, where the
// caller names the ID instead of reserving one.
var errSnapshotExists = errors.New("snapshot already exists")

// publishAs persists snap under a reserved ID and atomically swaps the
// serving index to it. Reservations can complete out of order (two cold
// jobs, or a cold job racing a delta job's segment write), so the snapshot
// list is kept in ID order and the serving index only ever moves forward —
// a slower job publishing an older reserved ID never regresses "current",
// and a restart (which serves the highest listed ID) agrees with the live
// server. A snapshot that already carries a publication time (an ingested
// slice of a snapshot published elsewhere) keeps it, so all shards of one
// version agree on when it was created.
func (s *Server) publishAs(id string, snap *core.ResultSnapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := len(s.snaps)
	for pos > 0 && snapshotNewer(s.snaps[pos-1].ID, id) {
		pos--
	}
	if pos > 0 && s.snaps[pos-1].ID == id {
		return fmt.Errorf("%s: %w", id, errSnapshotExists)
	}
	if snap.CreatedAt.IsZero() {
		snap.CreatedAt = time.Now().UTC()
	}
	info := snapshotInfo(id, snap)
	if meta, err := json.Marshal(info); err == nil {
		// Metadata before snapshot: SaveSnapshot's Sync covers both, and
		// an orphan metadata record (crash in between) is never consulted.
		if err := diskstore.SaveSnapshotMeta(s.store, id, meta); err != nil {
			return err
		}
	}
	if err := diskstore.SaveSnapshot(s.store, id, snap); err != nil {
		return err
	}
	s.snaps = slices.Insert(s.snaps, pos, info)
	s.met.published.Inc()
	s.met.snapshots.Set(float64(len(s.snaps)))
	if cur := s.idx.Load(); cur == nil || snapshotNewer(id, cur.id) {
		s.idx.Store(buildIndex(id, snap))
	}
	s.cache.purge()
	return nil
}

// gc retires snapshots beyond the retention window (Options.Retain): the
// newest Retain snapshots stay, plus everything reachable through their
// lineage (so delta chains remain replayable after a restart) and any
// snapshot held by a pinned ?snapshot= index. Retired snapshots lose their
// store record and delta segment, and the store log is compacted to
// reclaim the space.
func (s *Server) gc() {
	if s.opts.Retain <= 0 {
		return
	}
	// Bases of accepted-but-unfinished delta jobs must survive, or the
	// server would doom work it already acknowledged with 202.
	activeBases := s.jobs.activeDeltaBases()
	retain := s.opts.Retain
	if s.opts.ShardCount > 0 {
		// A shard keeps one extra version: between this shard ingesting a
		// new snapshot and the last shard acknowledging it, the router
		// still pins every unpinned read to the previous epoch — retiring
		// it here would 404 those reads for exactly the window the
		// two-phase publish exists to protect.
		retain++
	}
	s.mu.Lock()
	keep := make(map[string]bool)
	for i := max(0, len(s.snaps)-retain); i < len(s.snaps); i++ {
		keep[s.snaps[i].ID] = true
	}
	if ix := s.idx.Load(); ix != nil {
		keep[ix.id] = true
	}
	for id := range s.pinned {
		keep[id] = true
	}
	for _, id := range activeBases {
		keep[id] = true
	}
	// Lineage closure: a kept delta snapshot needs its whole base chain to
	// reconstruct ontologies after a restart.
	byID := make(map[string]SnapshotInfo, len(s.snaps))
	for _, info := range s.snaps {
		byID[info.ID] = info
	}
	for id := range keep {
		for base := byID[id].Base; base != "" && !keep[base]; base = byID[base].Base {
			keep[base] = true
		}
	}
	var victims []string
	kept := s.snaps[:0]
	for _, info := range s.snaps {
		if keep[info.ID] {
			kept = append(kept, info)
		} else {
			victims = append(victims, info.ID)
		}
	}
	s.snaps = kept
	s.met.snapshots.Set(float64(len(s.snaps)))
	for _, id := range victims {
		if err := diskstore.DeleteSnapshot(s.store, id); err != nil {
			s.opts.Logf("server: gc: deleting %s: %v", id, err)
		}
		if err := diskstore.RemoveDeltaSegment(s.deltaDir, id); err != nil {
			s.opts.Logf("server: gc: removing segment %s: %v", id, err)
		}
	}
	s.mu.Unlock()
	if len(victims) > 0 {
		if err := s.store.Compact(); err != nil {
			s.opts.Logf("server: gc: compact: %v", err)
		}
		s.opts.Logf("server: gc: retired %d snapshot(s): %v", len(victims), victims)
	}
}

func normalizer(name string) (store.Normalizer, error) {
	switch name {
	case "", "identity":
		return nil, nil
	case "alphanum":
		return literal.AlphaNum, nil
	case "numeric":
		return literal.Numeric, nil
	default:
		return nil, fmt.Errorf("unknown normalization %q (want identity, alphanum, or numeric)", name)
	}
}

// kbName derives a display name from a KB path: the base name without RDF
// or gzip extensions, shared with store.LoadFile's extension table.
func kbName(path string) string { return store.BaseName(path) }

// ---- HTTP layer ----

// buildMux wires the versioned /v1 API. Method-specific patterns make the
// mux answer wrong-method requests on a known path with 405 plus an Allow
// header instead of 404. The unversioned routes of the first release (308
// redirects for one release) are gone; /v1 is the only surface.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("POST /v1/deltas", s.handleSubmitDelta)
	mux.HandleFunc("POST /v1/kbs", s.handleUploadKB)
	mux.HandleFunc("GET /v1/kbs", s.handleKBs)
	mux.HandleFunc("DELETE /v1/kbs/{name}", s.handleDeleteKB)
	mux.HandleFunc("GET /v1/sameas", s.handleSameAs)
	mux.HandleFunc("POST /v1/sameas", s.handleSameAsBatch)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/relations", s.handleRelations)
	mux.HandleFunc("GET /v1/classes", s.handleClasses)
	mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	mux.HandleFunc("GET /v1/snapshots/{id}", s.handleExportSnapshot)
	mux.HandleFunc("PUT /v1/snapshots/{id}", s.handleIngestSnapshot)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/jobs/{id}/convergence", s.handleJobConvergence)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Pure liveness: the process is up and serving HTTP. Readiness
		// (is there anything to serve?) is /v1/readyz.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	// Trace-by-ID on the main listener (not just -debug-addr): the router's
	// fleet stitcher reaches shards through their API URL.
	mux.Handle("GET /debug/traces/{trace}", obs.TraceDumpHandler(s.col, s.instanceName()))
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	s.mux = mux
	// Route patterns for the per-route metrics come from the mux itself, so
	// labels stay bounded: every /v1/jobs/{id} collapses to one pattern
	// instead of one label per job ID.
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
	s.handler = s.met.http.Middleware(route, s.opts.Logf, mux)
}

// errNoSnapshot is the read-path failure before any alignment completed.
var errNoSnapshot = errors.New("no completed alignment yet")

// indexFor resolves the serving index for a read request: the current
// snapshot when snapID is empty, or the pinned snapshot named by the
// ?snapshot= parameter — the repeatable-read mode, immune to concurrent
// publishes. Non-current pinned indexes are rebuilt from the diskstore on
// first use and cached (bounded). On failure it returns the HTTP status to
// report.
func (s *Server) indexFor(snapID string) (*index, int, error) {
	cur := s.idx.Load()
	if snapID == "" || (cur != nil && cur.id == snapID) {
		if cur == nil {
			return nil, http.StatusServiceUnavailable, errNoSnapshot
		}
		return cur, 0, nil
	}
	s.mu.Lock()
	if ix, ok := s.pinned[snapID]; ok {
		s.mu.Unlock()
		return ix, 0, nil
	}
	known := slices.ContainsFunc(s.snaps, func(info SnapshotInfo) bool { return info.ID == snapID })
	s.mu.Unlock()
	if !known {
		return nil, http.StatusNotFound, fmt.Errorf("unknown snapshot %q", snapID)
	}
	// Load and build outside the lock: the diskstore synchronizes its own
	// reads, and rebuilding a large snapshot's index must not stall
	// publish or the other mu-guarded endpoints. Concurrent misses on the
	// same snapshot may build twice; last writer wins, both are correct.
	snap, err := diskstore.LoadSnapshot(s.store, snapID)
	if errors.Is(err, diskstore.ErrNotFound) {
		// Retired by the GC between the known-check and the load.
		return nil, http.StatusNotFound, fmt.Errorf("unknown snapshot %q", snapID)
	}
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("loading snapshot %s: %w", snapID, err)
	}
	ix := buildIndex(snapID, snap)
	s.mu.Lock()
	for len(s.pinned) >= maxPinnedIndexes {
		// Evict an arbitrary entry; pinned readers are few and rebuilds
		// are cheap relative to the alignment that produced them.
		for id := range s.pinned {
			delete(s.pinned, id)
			break
		}
	}
	s.pinned[snapID] = ix
	s.mu.Unlock()
	return ix, 0, nil
}

// rejectOnShard answers job- and delta-submission requests on a shard: a
// shard serves a read-only slice of the key space and receives its data
// through PUT /v1/snapshots/{id}, never by aligning.
func (s *Server) rejectOnShard(w http.ResponseWriter) bool {
	if s.opts.ShardCount <= 0 {
		return false
	}
	httpError(w, http.StatusForbidden,
		"this server is shard %d/%d and serves lookups only; submit jobs to the aligner",
		s.opts.ShardIndex, s.opts.ShardCount)
	return true
}

// handleIngestSnapshot implements PUT /v1/snapshots/{id}: publish a
// pre-computed snapshot (the versioned binary encoding) under an explicit,
// caller-chosen ID. This is how a sharded deployment distributes per-shard
// slices — the publisher splits one snapshot and pushes slice i to shard i
// under a common ID, so a pinned ?snapshot= read resolves consistently on
// every shard — and it also serves offline batch runs that compute results
// outside the jobs API. Re-publishing a taken ID answers 409.
func (s *Server) handleIngestSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seq, err := diskstore.ParseSnapshotID(id)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxSnapshotBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "snapshot exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	snap := new(core.ResultSnapshot)
	if err := snap.UnmarshalBinary(data); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Keep the ID sequence ahead of ingested IDs so a later reserved ID
	// can never collide with one named by a publisher. The other direction
	// needs a guard on aligners only: an unlisted ID at or below the
	// sequence may be reserved by an in-flight job (reservation precedes
	// publication), and publishing over it would doom 202-acknowledged
	// work when that job finishes. Shards never reserve — jobs are refused
	// there — so re-pushing an older version to a shard stays legal (the
	// rerun-a-half-failed-publish case).
	s.mu.Lock()
	if seq > s.snapSeq {
		s.snapSeq = seq
	} else if s.opts.ShardCount == 0 &&
		!slices.ContainsFunc(s.snaps, func(info SnapshotInfo) bool { return info.ID == id }) {
		s.mu.Unlock()
		httpError(w, http.StatusConflict,
			"snapshot ID %s may collide with an in-flight job reservation; use an ID above the current sequence", id)
		return
	}
	s.mu.Unlock()
	if err := s.publishAs(id, snap); err != nil {
		if errors.Is(err, errSnapshotExists) {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.gc()
	s.opts.Logf("server: ingested snapshot %s (%s vs %s, %d instances)",
		id, snap.KB1, snap.KB2, len(snap.Instances))
	writeJSON(w, http.StatusCreated, snapshotInfo(id, snap))
}

// handleExportSnapshot implements GET /v1/snapshots/{id}: the persisted
// snapshot in its portable binary encoding, the counterpart of ingestion —
// a publisher fetches a version off the aligner with it, splits it, and
// pushes the slices to the shard fleet. The stored record is the exact
// MarshalBinary output, so it is served verbatim without decoding — a
// multi-GB snapshot export costs one buffer, not three.
func (s *Server) handleExportSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	known := slices.ContainsFunc(s.snaps, func(info SnapshotInfo) bool { return info.ID == id })
	s.mu.Unlock()
	if !known {
		httpError(w, http.StatusNotFound, "unknown snapshot %q", id)
		return
	}
	data, err := diskstore.LoadSnapshotRaw(s.store, id)
	if errors.Is(err, diskstore.ErrNotFound) { // retired by the GC since the check
		httpError(w, http.StatusNotFound, "unknown snapshot %q", id)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "loading snapshot %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnShard(w) {
		return
	}
	var req JobRequest
	// A job request is a handful of strings and numbers; cap the body so a
	// huge payload cannot balloon the heap before validation.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.KB1 == "" || req.KB2 == "" {
		httpError(w, http.StatusBadRequest, "kb1 and kb2 are required")
		return
	}
	if _, err := normalizer(req.Normalize); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Bound the numeric knobs: these flow straight into core.Config, where
	// an absurd worker count would spawn that many goroutines.
	if req.Workers < 0 || req.Workers > maxJobWorkers {
		httpError(w, http.StatusBadRequest, "workers must be between 0 and %d", maxJobWorkers)
		return
	}
	if req.MaxIterations < 0 || req.MaxIterations > maxJobIterations {
		httpError(w, http.StatusBadRequest, "max_iterations must be between 0 and %d", maxJobIterations)
		return
	}
	if req.Theta < 0 || req.Theta >= 1 {
		httpError(w, http.StatusBadRequest, "theta must be in [0, 1)")
		return
	}
	// "kb:<name>" references resolve to committed uploads here, at submit
	// time, so the persisted job record carries the real path — restart
	// replay of delta chains reloads from it without re-resolving.
	for _, kb := range []*string{&req.KB1, &req.KB2} {
		p, err := s.resolveKBRef(*kb)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		*kb = p
	}
	for _, p := range []string{req.KB1, req.KB2} {
		if _, err := os.Stat(p); err != nil {
			httpError(w, http.StatusBadRequest, "knowledge base %q: %v", p, err)
			return
		}
	}
	j, err := s.jobs.submit(Job{Kind: KindAlign, Request: req})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if wantsEventStream(r) {
		s.handleJobEvents(w, r)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleCancelJob implements DELETE /v1/jobs/{id}: a queued job fails
// immediately, a running job has its fixpoint aborted through the context
// and reaches failed within one pass. Either way the job record survives
// (the history is the audit trail); only terminal jobs refuse with 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, prev, ok := s.jobs.cancel(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch prev {
	case JobQueued:
		// The transition happened here; persist the terminal record.
		s.persistJob(j)
		s.opts.Logf("server: %s canceled while queued", id)
		writeJSON(w, http.StatusOK, j)
	case JobRunning:
		// The worker observes the canceled context and persists the
		// failed record itself; report the in-flight view.
		s.opts.Logf("server: %s cancellation requested", id)
		writeJSON(w, http.StatusAccepted, j)
	default:
		httpError(w, http.StatusConflict, "job already %s", prev)
	}
}

// sameAsResponse is the body of GET /v1/sameas.
type sameAsResponse struct {
	Snapshot   string  `json:"snapshot"`
	KB         string  `json:"kb"`
	Key        string  `json:"key"`
	Matches    []Match `json:"matches"`
	Normalized bool    `json:"normalized,omitempty"`
}

// batchSameAsRequest is the body of POST /v1/sameas: one direction, many
// keys, amortizing HTTP overhead for bulk consumers.
type batchSameAsRequest struct {
	KB   string   `json:"kb"`
	Keys []string `json:"keys"`
}

// batchSameAsResult is one per-key answer inside a batch response. A key
// with no alignment yields empty matches rather than failing the batch.
type batchSameAsResult struct {
	Key        string  `json:"key"`
	Matches    []Match `json:"matches,omitempty"`
	Normalized bool    `json:"normalized,omitempty"`
}

// batchSameAsResponse is the body of POST /v1/sameas.
type batchSameAsResponse struct {
	Snapshot string              `json:"snapshot"`
	KB       string              `json:"kb"`
	Found    int                 `json:"found"`
	Results  []batchSameAsResult `json:"results"`
}

// resolveMatches answers one sameAs key: the lock-free exact hit first,
// then the normalized fallback through the LRU. Cache keys carry the
// snapshot ID (so a reader racing with publish cannot repopulate the purged
// cache with stale matches, and pinned-snapshot reads get their own
// entries) and the resolved direction (so kb aliases like "1" and the KB
// name share entries). populate controls whether a miss is written back:
// the batch path reads the cache but never writes it, so one 10k-key batch
// of cold keys cannot evict every hot entry serving interactive GETs.
func (s *Server) resolveMatches(ix *index, fwd bool, key string, populate bool) (matches []Match, normalized bool) {
	if m, ok := ix.lookup(fwd, key); ok {
		return []Match{m}, false
	}
	cacheKey := ix.id + "\x00" + dirByte(fwd) + "\x00" + key
	matches, ok := s.cache.get(cacheKey)
	if !ok {
		matches = ix.lookupNormalized(fwd, key)
		if populate {
			s.cache.put(cacheKey, matches)
		}
	}
	return matches, true
}

// direction resolves the kb parameter against an index, writing the 400
// response itself on failure.
func direction(w http.ResponseWriter, ix *index, kb string) (fwd, ok bool) {
	fwd, ok = ix.direction(kb)
	if !ok {
		if ix.kb1 == ix.kb2 {
			httpError(w, http.StatusBadRequest, "kb must be 1 or 2 (both KBs are named %q)", ix.kb1)
		} else {
			httpError(w, http.StatusBadRequest, "kb must be 1, 2, %q, or %q", ix.kb1, ix.kb2)
		}
	}
	return fwd, ok
}

func (s *Server) handleSameAs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query() // parse once: this is the benchmark-tracked hot path
	ix, code, err := s.indexFor(q.Get("snapshot"))
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	s.lookups.Add(1)
	s.met.lookups.Inc()
	key := q.Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key parameter is required")
		return
	}
	kb := q.Get("kb")
	fwd, ok := direction(w, ix, kb)
	if !ok {
		return
	}
	matches, normalized := s.resolveMatches(ix, fwd, key, true)
	if len(matches) == 0 {
		httpError(w, http.StatusNotFound, "no alignment for %q", key)
		return
	}
	writeJSON(w, http.StatusOK, sameAsResponse{
		Snapshot: ix.id, KB: kb, Key: key,
		Matches: matches, Normalized: normalized,
	})
}

// handleSameAsBatch implements POST /v1/sameas: many keys in one
// round-trip. Keys without an alignment come back with empty matches; the
// response reports how many resolved.
func (s *Server) handleSameAsBatch(w http.ResponseWriter, r *http.Request) {
	ix, code, err := s.indexFor(r.URL.Query().Get("snapshot"))
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	var req batchSameAsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Keys) == 0 {
		httpError(w, http.StatusBadRequest, "keys must not be empty")
		return
	}
	if len(req.Keys) > MaxBatchKeys {
		httpError(w, http.StatusBadRequest, "at most %d keys per batch (got %d)", MaxBatchKeys, len(req.Keys))
		return
	}
	fwd, ok := direction(w, ix, req.KB)
	if !ok {
		return
	}
	s.lookups.Add(uint64(len(req.Keys)))
	s.met.lookups.Add(uint64(len(req.Keys)))
	resp := batchSameAsResponse{
		Snapshot: ix.id, KB: req.KB,
		Results: make([]batchSameAsResult, len(req.Keys)),
	}
	for i, key := range req.Keys {
		matches, normalized := s.resolveMatches(ix, fwd, key, false)
		resp.Results[i] = batchSameAsResult{Key: key, Matches: matches, Normalized: normalized && len(matches) > 0}
		if len(matches) > 0 {
			resp.Found++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	serveScores(s, w, r, "relations", func(ix *index, dir string) []core.SnapshotRelation {
		if dir == "21" {
			return ix.relations21
		}
		return ix.relations12
	}, func(ra core.SnapshotRelation) (string, float64) { return ra.Sub, ra.P })
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	serveScores(s, w, r, "classes", func(ix *index, dir string) []core.SnapshotClass {
		if dir == "21" {
			return ix.classes21
		}
		return ix.classes12
	}, func(ca core.SnapshotClass) (string, float64) { return ca.Sub, ca.P })
}

// serveScores is the shared body of the relations and classes endpoints:
// resolve the (possibly pinned) snapshot, pick the direction, filter by
// minimum probability, and emit under field in descending-probability
// order.
func serveScores[T any](s *Server, w http.ResponseWriter, r *http.Request, field string,
	pick func(*index, string) []T, key func(T) (string, float64)) {
	q := r.URL.Query()
	ix, code, err := s.indexFor(q.Get("snapshot"))
	if err != nil {
		httpError(w, code, "%v", err)
		return
	}
	dir, min, err := dirAndMin(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The index slices are already sorted (descending P, then sub key) by
	// buildIndex, so a request only filters.
	scores := pick(ix, dir)
	out := make([]T, 0, len(scores))
	for _, sc := range scores {
		if _, p := key(sc); p >= min {
			out = append(out, sc)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot": ix.id, "dir": dir, field: out,
	})
}

func (s *Server) handleSnapshots(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snaps := append([]SnapshotInfo(nil), s.snaps...)
	s.mu.Unlock()
	current := ""
	if ix := s.idx.Load(); ix != nil {
		current = ix.id
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": snaps, "current": current})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.stats()
	stats := map[string]any{
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"jobs":           s.jobs.counts(),
		"lookups":        s.lookups.Load(),
		"cache": map[string]any{
			"hits": hits, "misses": misses, "size": size, "cap": s.opts.CacheSize,
		},
	}
	s.mu.Lock()
	stats["snapshots"] = len(s.snaps)
	s.mu.Unlock()
	if s.opts.ShardCount > 0 {
		stats["shard"] = map[string]any{
			"index": s.opts.ShardIndex, "count": s.opts.ShardCount,
		}
	}
	if ix := s.idx.Load(); ix != nil {
		stats["snapshot"] = map[string]any{
			"id": ix.id, "kb1": ix.kb1, "kb2": ix.kb2,
			"instances": len(ix.fwd),
			"relations": len(ix.relations12) + len(ix.relations21),
			"classes":   len(ix.classes12) + len(ix.classes21),
			"created":   ix.createdAt,
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// dirByte encodes a lookup direction for cache keys.
func dirByte(fwd bool) string {
	if fwd {
		return "1"
	}
	return "2"
}

// dirAndMin parses the shared dir and min query parameters.
func dirAndMin(q url.Values) (dir string, min float64, err error) {
	dir = q.Get("dir")
	switch dir {
	case "", "12":
		dir = "12"
	case "21":
	default:
		return "", 0, fmt.Errorf("dir must be 12 or 21")
	}
	if raw := q.Get("min"); raw != "" {
		min, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", 0, fmt.Errorf("min must be a number: %w", err)
		}
	}
	return dir, min, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// The status line is already written; an encode error (client gone,
	// handler timeout) has nowhere to go.
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
