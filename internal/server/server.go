// Package server is the PARIS alignment service: it accepts alignment jobs
// over HTTP/JSON, runs them asynchronously on a bounded worker pool, persists
// every completed result as a versioned snapshot through the diskstore (so
// restarts recover all completed alignments), and serves sameAs/relation/
// class lookups from an immutable in-memory index that is swapped in
// atomically per snapshot — reads take no locks, in the spirit of the
// disk-backed interactive serving layer of EMBANKS (arXiv:1104.4384) on top
// of the batch fixpoint of the paper.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/literal"
	"repro/internal/store"
)

// Options configures a Server. The zero value of every field has a usable
// default; StateDir is required.
type Options struct {
	// StateDir is the directory holding the snapshot store. It is created
	// if missing.
	StateDir string

	// Workers bounds the alignment worker pool (default 2): at most this
	// many jobs align concurrently, the rest wait in the queue.
	Workers int

	// QueueDepth bounds the pending-job queue (default 16); submissions
	// beyond it are rejected with 503.
	QueueDepth int

	// CacheSize is the capacity of the normalized-lookup LRU (default 4096).
	CacheSize int

	// Logf, when non-nil, receives one line per significant event.
	Logf func(format string, args ...any)
}

// Bounds on the per-job numeric knobs accepted over HTTP.
const (
	maxJobWorkers    = 256
	maxJobIterations = 1000
)

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server is the alignment service. Create it with New, expose Handler over
// HTTP, and Close it to flush state.
type Server struct {
	opts  Options
	jobs  *jobManager
	cache *lruCache

	// idx is the serving index of the newest snapshot; nil before the
	// first snapshot exists. Readers load it exactly once per request and
	// never lock.
	idx atomic.Pointer[index]

	// mu serializes snapshot publication and store writes.
	mu      sync.Mutex
	store   *diskstore.Store
	unlock  func() error // releases the state-dir lock
	snapSeq uint64
	snaps   []string // all snapshot IDs, oldest first

	mux     *http.ServeMux
	started time.Time
	lookups atomic.Uint64

	// testBeforeAlign, when non-nil, runs on the worker goroutine after a
	// job transitions to running and before alignment starts. Tests use it
	// to observe the running state deterministically.
	testBeforeAlign func(id string)
}

// New opens (or creates) the state directory, recovers all persisted
// snapshots and job records, builds the serving index from the newest
// snapshot, and starts the worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.StateDir == "" {
		return nil, fmt.Errorf("server: Options.StateDir is required")
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, err
	}
	unlock, err := lockStateDir(opts.StateDir)
	if err != nil {
		return nil, err
	}
	st, err := diskstore.Open(filepath.Join(opts.StateDir, "paris.db"))
	if err != nil {
		unlock()
		return nil, err
	}
	s := &Server{
		opts:    opts,
		store:   st,
		unlock:  unlock,
		cache:   newLRU(opts.CacheSize),
		started: time.Now().UTC(),
	}
	if err := s.recoverState(); err != nil {
		st.Close()
		unlock()
		return nil, err
	}
	s.jobs = newJobManager(opts.Workers, opts.QueueDepth, s.runJob, s.persistJob)
	if err := s.recoverJobs(); err != nil {
		s.jobs.close()
		st.Close()
		unlock()
		return nil, err
	}
	s.buildMux()
	return s, nil
}

// recoverState reloads snapshots and terminal job records from the store.
func (s *Server) recoverState() error {
	ids, err := diskstore.ListSnapshots(s.store)
	if err != nil {
		return err
	}
	s.snaps = ids
	for _, id := range ids {
		if seq, err := diskstore.ParseSnapshotID(id); err == nil && seq > s.snapSeq {
			s.snapSeq = seq
		}
	}
	if len(ids) > 0 {
		newest := ids[len(ids)-1]
		snap, err := diskstore.LoadSnapshot(s.store, newest)
		if err != nil {
			return err
		}
		s.idx.Store(buildIndex(newest, snap))
		s.opts.Logf("server: recovered %d snapshot(s), serving %s (%s vs %s, %d instances)",
			len(ids), newest, snap.KB1, snap.KB2, len(snap.Instances))
	}
	return nil
}

// recoverJobs restores persisted job history into the manager. Called from
// New after the manager exists.
func (s *Server) recoverJobs() error {
	records, err := diskstore.LoadJobRecords(s.store)
	if err != nil {
		return err
	}
	for id, data := range records {
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			s.opts.Logf("server: dropping corrupt job record %s: %v", id, err)
			continue
		}
		var seq uint64
		fmt.Sscanf(j.ID, "job-%d", &seq)
		s.jobs.recover(j, seq)
	}
	return nil
}

// Handler returns the HTTP API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool and closes the state store. Queued jobs that
// have not started are dropped; running jobs complete and persist.
func (s *Server) Close() error {
	s.jobs.close()
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.store.Close()
	if uerr := s.unlock(); err == nil {
		err = uerr
	}
	return err
}

// runJob executes one alignment job end to end on a worker goroutine.
func (s *Server) runJob(id string) {
	j, ok := s.jobs.get(id)
	if !ok {
		return
	}
	s.opts.Logf("server: %s aligning %s vs %s", id, j.Request.KB1, j.Request.KB2)
	if s.testBeforeAlign != nil {
		s.testBeforeAlign(id)
	}
	snapID, err := s.align(id, j.Request)
	final := s.jobs.finish(id, snapID, err)
	if err != nil {
		s.opts.Logf("server: %s failed: %v", id, err)
	} else {
		s.opts.Logf("server: %s done in %d iterations, snapshot %s",
			id, len(final.Iterations), snapID)
	}
	s.persistJob(final)
}

// persistJob writes a terminal job record so history survives restarts. It
// also covers jobs dropped from the queue at shutdown (via jobManager's
// onDrop), so a 202-acknowledged job never silently vanishes.
func (s *Server) persistJob(j Job) {
	data, err := json.Marshal(j)
	if err != nil {
		return
	}
	s.mu.Lock()
	if err := diskstore.SaveJobRecord(s.store, j.ID, data); err != nil {
		s.opts.Logf("server: persisting job %s: %v", j.ID, err)
	}
	s.mu.Unlock()
}

// align loads the two knowledge bases, runs the fixpoint with per-iteration
// progress reporting, and publishes the result as a new snapshot.
func (s *Server) align(id string, req JobRequest) (string, error) {
	norm, err := normalizer(req.Normalize)
	if err != nil {
		return "", err
	}
	lits := store.NewLiterals()
	o1, err := store.LoadFile(req.KB1, kbName(req.KB1), lits, norm)
	if err != nil {
		return "", err
	}
	o2, err := store.LoadFile(req.KB2, kbName(req.KB2), lits, norm)
	if err != nil {
		return "", err
	}
	cfg := core.Config{
		Theta:            req.Theta,
		MaxIterations:    req.MaxIterations,
		NegativeEvidence: req.NegativeEvidence,
		AllEqualities:    req.AllEqualities,
		Workers:          req.Workers,
		OnIteration: func(_ int, a *core.Aligner) {
			if its := a.Iterations(); len(its) > 0 {
				s.jobs.progress(id, its[len(its)-1])
			}
		},
	}
	res := core.New(o1, o2, cfg).Run()
	return s.publish(res.Snapshot())
}

// PublishResult persists a result computed outside the jobs API (for
// example an offline batch run of core.Aligner) as a new snapshot and
// serves it immediately.
func (s *Server) PublishResult(res *core.Result) (string, error) {
	return s.publish(res.Snapshot())
}

// publish persists snap under the next snapshot ID and atomically swaps the
// serving index to it. Readers racing with publish see either the old or
// the new index, never a partial one.
func (s *Server) publish(snap *core.ResultSnapshot) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapSeq++
	id := diskstore.SnapshotID(s.snapSeq)
	snap.CreatedAt = time.Now().UTC()
	if err := diskstore.SaveSnapshot(s.store, id, snap); err != nil {
		s.snapSeq--
		return "", err
	}
	s.snaps = append(s.snaps, id)
	s.idx.Store(buildIndex(id, snap))
	s.cache.purge()
	return id, nil
}

func normalizer(name string) (store.Normalizer, error) {
	switch name {
	case "", "identity":
		return nil, nil
	case "alphanum":
		return literal.AlphaNum, nil
	case "numeric":
		return literal.Numeric, nil
	default:
		return nil, fmt.Errorf("unknown normalization %q (want identity, alphanum, or numeric)", name)
	}
}

// kbName derives a display name from a KB path: the base name without RDF
// or gzip extensions, shared with store.LoadFile's extension table.
func kbName(path string) string { return store.BaseName(path) }

// ---- HTTP layer ----

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /sameas", s.handleSameAs)
	mux.HandleFunc("GET /relations", s.handleRelations)
	mux.HandleFunc("GET /classes", s.handleClasses)
	mux.HandleFunc("GET /snapshots", s.handleSnapshots)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux = mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	// A job request is a handful of strings and numbers; cap the body so a
	// huge payload cannot balloon the heap before validation.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.KB1 == "" || req.KB2 == "" {
		httpError(w, http.StatusBadRequest, "kb1 and kb2 are required")
		return
	}
	if _, err := normalizer(req.Normalize); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Bound the numeric knobs: these flow straight into core.Config, where
	// an absurd worker count would spawn that many goroutines.
	if req.Workers < 0 || req.Workers > maxJobWorkers {
		httpError(w, http.StatusBadRequest, "workers must be between 0 and %d", maxJobWorkers)
		return
	}
	if req.MaxIterations < 0 || req.MaxIterations > maxJobIterations {
		httpError(w, http.StatusBadRequest, "max_iterations must be between 0 and %d", maxJobIterations)
		return
	}
	if req.Theta < 0 || req.Theta >= 1 {
		httpError(w, http.StatusBadRequest, "theta must be in [0, 1)")
		return
	}
	for _, p := range []string{req.KB1, req.KB2} {
		if _, err := os.Stat(p); err != nil {
			httpError(w, http.StatusBadRequest, "knowledge base %q: %v", p, err)
			return
		}
	}
	j, err := s.jobs.submit(req)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// sameAsResponse is the body of GET /sameas.
type sameAsResponse struct {
	Snapshot   string  `json:"snapshot"`
	KB         string  `json:"kb"`
	Key        string  `json:"key"`
	Matches    []Match `json:"matches"`
	Normalized bool    `json:"normalized,omitempty"`
}

func (s *Server) handleSameAs(w http.ResponseWriter, r *http.Request) {
	ix := s.idx.Load()
	if ix == nil {
		httpError(w, http.StatusServiceUnavailable, "no completed alignment yet")
		return
	}
	s.lookups.Add(1)
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key parameter is required")
		return
	}
	kb := r.URL.Query().Get("kb")
	fwd, ok := ix.direction(kb)
	if !ok {
		if ix.kb1 == ix.kb2 {
			httpError(w, http.StatusBadRequest, "kb must be 1 or 2 (both KBs are named %q)", ix.kb1)
		} else {
			httpError(w, http.StatusBadRequest, "kb must be 1, 2, %q, or %q", ix.kb1, ix.kb2)
		}
		return
	}
	resp := sameAsResponse{Snapshot: ix.id, KB: kb, Key: key}
	if m, ok := ix.lookup(fwd, key); ok {
		// Hot path: immutable-map hit, no locks taken anywhere.
		resp.Matches = []Match{m}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Slow path: normalized lookup through the LRU. Cache keys carry the
	// snapshot ID (so a reader racing with publish cannot repopulate the
	// purged cache with stale matches) and the resolved direction (so kb
	// aliases like "1" and the KB name share entries).
	cacheKey := ix.id + "\x00" + dirByte(fwd) + "\x00" + key
	matches, ok := s.cache.get(cacheKey)
	if !ok {
		matches = ix.lookupNormalized(fwd, key)
		s.cache.put(cacheKey, matches)
	}
	if len(matches) == 0 {
		httpError(w, http.StatusNotFound, "no alignment for %q", key)
		return
	}
	resp.Matches = matches
	resp.Normalized = true
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	serveScores(s, w, r, "relations", func(ix *index, dir string) []core.SnapshotRelation {
		if dir == "21" {
			return ix.relations21
		}
		return ix.relations12
	}, func(ra core.SnapshotRelation) (string, float64) { return ra.Sub, ra.P })
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	serveScores(s, w, r, "classes", func(ix *index, dir string) []core.SnapshotClass {
		if dir == "21" {
			return ix.classes21
		}
		return ix.classes12
	}, func(ca core.SnapshotClass) (string, float64) { return ca.Sub, ca.P })
}

// serveScores is the shared body of the relations and classes endpoints:
// pick the direction, filter by minimum probability, sort by descending
// probability then sub key, and emit under field.
func serveScores[T any](s *Server, w http.ResponseWriter, r *http.Request, field string,
	pick func(*index, string) []T, key func(T) (string, float64)) {
	ix := s.idx.Load()
	if ix == nil {
		httpError(w, http.StatusServiceUnavailable, "no completed alignment yet")
		return
	}
	dir, min, err := dirAndMin(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The index slices are already sorted (descending P, then sub key) by
	// buildIndex, so a request only filters.
	scores := pick(ix, dir)
	out := make([]T, 0, len(scores))
	for _, sc := range scores {
		if _, p := key(sc); p >= min {
			out = append(out, sc)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot": ix.id, "dir": dir, field: out,
	})
}

func (s *Server) handleSnapshots(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.snaps...)
	s.mu.Unlock()
	current := ""
	if ix := s.idx.Load(); ix != nil {
		current = ix.id
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshots": ids, "current": current})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses, size := s.cache.stats()
	stats := map[string]any{
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"jobs":           s.jobs.counts(),
		"lookups":        s.lookups.Load(),
		"cache": map[string]any{
			"hits": hits, "misses": misses, "size": size, "cap": s.opts.CacheSize,
		},
	}
	s.mu.Lock()
	stats["snapshots"] = len(s.snaps)
	s.mu.Unlock()
	if ix := s.idx.Load(); ix != nil {
		stats["snapshot"] = map[string]any{
			"id": ix.id, "kb1": ix.kb1, "kb2": ix.kb2,
			"instances": len(ix.fwd),
			"relations": len(ix.relations12) + len(ix.relations21),
			"classes":   len(ix.classes12) + len(ix.classes21),
			"created":   ix.createdAt,
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// dirByte encodes a lookup direction for cache keys.
func dirByte(fwd bool) string {
	if fwd {
		return "1"
	}
	return "2"
}

// dirAndMin parses the shared dir and min query parameters.
func dirAndMin(r *http.Request) (dir string, min float64, err error) {
	dir = r.URL.Query().Get("dir")
	switch dir {
	case "", "12":
		dir = "12"
	case "21":
	default:
		return "", 0, fmt.Errorf("dir must be 12 or 21")
	}
	if raw := r.URL.Query().Get("min"); raw != "" {
		min, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", 0, fmt.Errorf("min must be a number: %w", err)
		}
	}
	return dir, min, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	// The status line is already written; an encode error (client gone,
	// handler timeout) has nowhere to go.
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
