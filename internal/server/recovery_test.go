package server

// Restart-recovery regression tests for ordering and parsing bugs: the
// newest-snapshot pick across the snap-%08d padding overflow, and job
// records whose IDs do not parse.

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskstore"
)

// TestRecoveryCrossesEightDigitBoundary: snapshot IDs stop sorting
// lexicographically at seq 100,000,000 ("snap-100000000" < "snap-99999999"
// as strings). Publishing across the boundary must advance the serving
// index, keep the snapshot list in sequence order, and recover the
// numerically newest snapshot after a restart.
func TestRecoveryCrossesEightDigitBoundary(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	snapFor := func(p float64) *core.ResultSnapshot {
		return &core.ResultSnapshot{
			KB1: "a", KB2: "b",
			Instances: []core.SnapshotAssignment{{Key1: "<http://a/x>", Key2: "<http://b/y>", P: p}},
		}
	}
	if err := srv.publishAs(diskstore.SnapshotID(99999999), snapFor(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := srv.publishAs(diskstore.SnapshotID(100000000), snapFor(0.9)); err != nil {
		t.Fatal(err)
	}
	if got := srv.idx.Load().id; got != "snap-100000000" {
		t.Fatalf("serving index after boundary publish = %q, want snap-100000000", got)
	}
	srv.mu.Lock()
	if len(srv.snaps) != 2 || srv.snaps[0].ID != "snap-99999999" || srv.snaps[1].ID != "snap-100000000" {
		t.Fatalf("snapshot list order = %+v, want [snap-99999999 snap-100000000]", srv.snaps)
	}
	srv.mu.Unlock()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	restarted, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got := restarted.idx.Load().id; got != "snap-100000000" {
		t.Fatalf("recovered serving index = %q, want snap-100000000", got)
	}
	if restarted.snapSeq != 100000000 {
		t.Fatalf("recovered snapSeq = %d, want 100000000", restarted.snapSeq)
	}
}

// TestRecoverJobsSkipsMalformedIDs: a job record whose ID does not
// round-trip through the job-%08d format must be skipped on recovery, not
// installed with a bogus sequence — with the old Sscanf-error-ignored
// code, "weird" would recover as seq 0 and a mangled "job-7-junk" as
// seq 7, polluting the ID sequence freshly issued jobs draw from.
func TestRecoverJobsSkipsMalformedIDs(t *testing.T) {
	dir := t.TempDir()
	st, err := diskstore.Open(filepath.Join(dir, "paris.db"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UTC()
	for _, id := range []string{"job-00000003", "job-7", "job-5-junk", "weird"} {
		data, err := json.Marshal(Job{ID: id, State: JobDone, Created: now})
		if err != nil {
			t.Fatal(err)
		}
		if err := diskstore.SaveJobRecord(st, id, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Options{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.jobs.mu.Lock()
	defer srv.jobs.mu.Unlock()
	if len(srv.jobs.jobs) != 1 || srv.jobs.jobs["job-00000003"] == nil {
		ids := make([]string, 0, len(srv.jobs.jobs))
		for id := range srv.jobs.jobs {
			ids = append(ids, id)
		}
		t.Fatalf("recovered jobs = %v, want only job-00000003", ids)
	}
	// The next issued ID follows the one valid record: job-00000004, not
	// job-00000008 (which "job-7" recovering as seq 7 would produce).
	if srv.jobs.seq != 3 {
		t.Fatalf("recovered job seq = %d, want 3", srv.jobs.seq)
	}
}
