//go:build unix

package server

import (
	"fmt"
	"os"
	"syscall"
)

// lockStateDir takes an exclusive advisory lock on a lock file inside dir,
// so two server processes cannot append to the same diskstore log and
// corrupt it. The returned release closes (and thereby unlocks) the file;
// the kernel also releases the lock if the process dies, so a crash leaves
// nothing stale.
func lockStateDir(dir string) (release func() error, err error) {
	f, err := os.OpenFile(dir+"/parisd.lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: state dir %s is locked by another process: %w", dir, err)
	}
	return f.Close, nil
}
