package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// JobState is the lifecycle state of an alignment job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobRequest is the body of POST /jobs: the two knowledge-base files to
// align plus the alignment configuration. The zero configuration uses the
// paper's defaults, like core.Config.
type JobRequest struct {
	// KB1 and KB2 are paths to RDF files (.nt/.ttl, optionally .gz),
	// resolved on the server's filesystem.
	KB1 string `json:"kb1"`
	KB2 string `json:"kb2"`

	// Normalize selects literal normalization: "", "identity", "alphanum",
	// or "numeric".
	Normalize string `json:"normalize,omitempty"`

	Theta            float64 `json:"theta,omitempty"`
	MaxIterations    int     `json:"max_iterations,omitempty"`
	NegativeEvidence bool    `json:"negative_evidence,omitempty"`
	AllEqualities    bool    `json:"all_equalities,omitempty"`
	Workers          int     `json:"workers,omitempty"`
}

// Job is the externally visible record of one alignment job, returned by
// the jobs API and persisted on completion so restarts keep the history.
type Job struct {
	ID      string     `json:"id"`
	State   JobState   `json:"state"`
	Request JobRequest `json:"request"`

	Created time.Time `json:"created"`
	// Started and Finished are pointers so the fields are omitted from
	// JSON until the transition happens (omitempty never elides a zero
	// time.Time struct).
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Iterations grows while the job runs: one entry per completed
	// fixpoint iteration, so GET /jobs/{id} reports live progress.
	Iterations []core.IterationStats `json:"iterations,omitempty"`

	// Error holds the failure cause when State is failed.
	Error string `json:"error,omitempty"`

	// Snapshot is the ID of the persisted snapshot when State is done.
	Snapshot string `json:"snapshot,omitempty"`
}

// jobManager runs jobs on a bounded worker pool. Submitted jobs wait in a
// bounded queue; when the queue is full, submission fails fast instead of
// blocking the HTTP handler.
type jobManager struct {
	mu   sync.Mutex
	jobs map[string]*Job
	seq  uint64

	queue chan string
	wg    sync.WaitGroup
	run   func(id string)

	// onDrop receives the final view of a job dropped from the queue at
	// shutdown, so the owner can persist its failed state.
	onDrop func(Job)

	closed bool
}

// newJobManager starts workers goroutines executing run. run receives a job
// ID and must drive the job to a terminal state via finish; onDrop (may be
// nil) is invoked for jobs dropped from the queue at close.
func newJobManager(workers, depth int, run func(id string), onDrop func(Job)) *jobManager {
	m := &jobManager{
		jobs:   make(map[string]*Job),
		queue:  make(chan string, depth),
		run:    run,
		onDrop: onDrop,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for id := range m.queue {
				// After close() a blocked worker can still win buffered
				// IDs ahead of the drain loop; route them to the dropped
				// path instead of starting hour-long alignments mid-
				// shutdown.
				m.mu.Lock()
				closed := m.closed
				m.mu.Unlock()
				if closed {
					m.drop(id)
					continue
				}
				m.start(id)
				m.run(id)
			}
		}()
	}
	return m
}

// submit enqueues a new job and returns its initial view. It fails when the
// queue is full or the manager is closed.
func (m *jobManager) submit(req JobRequest) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, fmt.Errorf("server: shutting down")
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%08d", m.seq),
		State:   JobQueued,
		Request: req,
		Created: time.Now().UTC(),
	}
	// The enqueue is non-blocking, so holding the lock here is cheap and
	// makes the send race-free against close() closing the channel.
	select {
	case m.queue <- j.ID:
		m.jobs[j.ID] = j
		return *j, nil
	default:
		m.seq--
		return Job{}, fmt.Errorf("server: job queue full (%d pending)", cap(m.queue))
	}
}

// get returns a copy of one job.
func (m *jobManager) get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return cloneJob(j), true
}

// list returns copies of all jobs, oldest first.
func (m *jobManager) list() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, cloneJob(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// counts tallies jobs per state for /stats.
func (m *jobManager) counts() map[JobState]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range m.jobs {
		out[j.State]++
	}
	return out
}

// start transitions a job to running.
func (m *jobManager) start(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		now := time.Now().UTC()
		j.State = JobRunning
		j.Started = &now
	}
}

// progress appends one completed iteration to a running job.
func (m *jobManager) progress(id string, it core.IterationStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Iterations = append(j.Iterations, it)
	}
}

// finish drives a job to its terminal state and returns the final view for
// persistence.
func (m *jobManager) finish(id, snapshotID string, err error) Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}
	}
	now := time.Now().UTC()
	j.Finished = &now
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
	} else {
		j.State = JobDone
		j.Snapshot = snapshotID
	}
	return cloneJob(j)
}

// recover installs a job restored from the state store, keeping the ID
// sequence ahead of everything recovered.
func (m *jobManager) recover(j Job, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.ID] = &j
	if seq > m.seq {
		m.seq = seq
	}
}

// close stops accepting jobs, drops jobs still in the queue (marking them
// failed and persisting the record via onDrop), and waits for running ones
// to finish. Closing a buffered channel does not discard its contents, so
// both this drain loop and the workers receive the remaining IDs — but the
// workers see closed and drop too, so nothing new starts after close.
func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	for id := range m.queue {
		m.drop(id)
	}
	m.wg.Wait()
}

// drop marks a still-queued job failed and hands it to onDrop.
func (m *jobManager) drop(id string) {
	var dropped Job
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok && j.State == JobQueued {
		now := time.Now().UTC()
		j.State = JobFailed
		j.Finished = &now
		j.Error = "dropped: server shutting down"
		dropped = cloneJob(j)
	}
	m.mu.Unlock()
	if dropped.ID != "" && m.onDrop != nil {
		m.onDrop(dropped)
	}
}

func cloneJob(j *Job) Job {
	out := *j
	out.Iterations = append([]core.IterationStats(nil), j.Iterations...)
	return out
}
