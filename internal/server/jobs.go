package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
)

// errCanceled is the cancellation cause installed by cancel; it becomes the
// failed job's Error field.
var errCanceled = errors.New("canceled by client request")

// JobState is the lifecycle state of an alignment job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job kinds. The empty kind means KindAlign (records predate delta jobs).
const (
	KindAlign  = "align"
	KindDelta  = "delta"
	KindIngest = "ingest"
)

// JobRequest is the body of POST /jobs: the two knowledge-base files to
// align plus the alignment configuration. The zero configuration uses the
// paper's defaults, like core.Config.
type JobRequest struct {
	// KB1 and KB2 are paths to RDF files (.nt/.ttl, optionally .gz),
	// resolved on the server's filesystem.
	KB1 string `json:"kb1"`
	KB2 string `json:"kb2"`

	// Normalize selects literal normalization: "", "identity", "alphanum",
	// or "numeric".
	Normalize string `json:"normalize,omitempty"`

	Theta            float64 `json:"theta,omitempty"`
	MaxIterations    int     `json:"max_iterations,omitempty"`
	NegativeEvidence bool    `json:"negative_evidence,omitempty"`
	AllEqualities    bool    `json:"all_equalities,omitempty"`
	Workers          int     `json:"workers,omitempty"`
}

// DeltaRequest is the body of POST /v1/deltas: a batch of triple additions
// against a published base snapshot, to be re-aligned warm-started from that
// snapshot's state.
type DeltaRequest struct {
	// Base is the snapshot ID the delta applies to. Empty means the
	// snapshot currently served, resolved at submission time.
	Base string `json:"base,omitempty"`

	// KB selects which ontology the triples extend: "1" or "2".
	KB string `json:"kb"`

	// NTriples holds the delta inline as an N-Triples document. Exactly
	// one of NTriples and File must be set.
	NTriples string `json:"ntriples,omitempty"`

	// File is a server-side path to an N-Triples file holding the delta.
	File string `json:"file,omitempty"`

	MaxIterations int `json:"max_iterations,omitempty"`
	Workers       int `json:"workers,omitempty"`
}

// IngestProgress is the cumulative per-block state of a streaming KB load:
// consumed blocks and bytes, parsed and skipped triples, spill counters.
// Phase names the load the counters belong to — "kb1"/"kb2" for the two
// loads of an alignment job, the KB name for an upload validation — since
// a job's Ingest slot holds the *current* load: consumers watching an
// align job see the counters restart when the second KB begins, and Phase
// is what tells them that is a new load, not a glitch.
type IngestProgress struct {
	ingest.Progress
	Phase string `json:"phase,omitempty"`
}

// UploadRecord is the submission of a KB ingest job (POST /v1/kbs): a dump
// streamed into the server's spool, to be validated through the parallel
// ingest pipeline and committed into the KB directory.
type UploadRecord struct {
	// Name is the caller-chosen KB name; the committed file is
	// <state>/kbs/<name><format>.
	Name string `json:"name"`
	// Format carries the parser-selecting extensions (".nt", ".nt.gz", …).
	Format string `json:"format"`
	// Bytes is the spooled (compressed, if gzip) upload size.
	Bytes int64 `json:"bytes"`
}

// Job is the externally visible record of one alignment job, returned by
// the jobs API and persisted on completion so restarts keep the history.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`

	// Kind is KindAlign (full alignment, the default when empty),
	// KindDelta (incremental re-alignment), or KindIngest (a pushed KB
	// upload being validated and committed).
	Kind string `json:"kind,omitempty"`

	// Request holds the submission of an align job; Delta that of a delta
	// job; Upload that of an ingest job.
	Request JobRequest    `json:"request"`
	Delta   *DeltaRequest `json:"delta,omitempty"`
	Upload  *UploadRecord `json:"upload,omitempty"`

	Created time.Time `json:"created"`
	// Started and Finished are pointers so the fields are omitted from
	// JSON until the transition happens (omitempty never elides a zero
	// time.Time struct).
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Iterations grows while the job runs: one entry per completed
	// fixpoint iteration, so GET /jobs/{id} reports live progress.
	Iterations []core.IterationStats `json:"iterations,omitempty"`

	// Ingest is the latest per-block progress of the streaming loads a job
	// performs: the upload validation of an ingest job, or the KB loads at
	// the start of an align job. The pointee is immutable (updates replace
	// the pointer), so clones may share it.
	Ingest *IngestProgress `json:"ingest,omitempty"`

	// Error holds the failure cause when State is failed.
	Error string `json:"error,omitempty"`

	// Snapshot is the ID of the persisted snapshot when State is done.
	Snapshot string `json:"snapshot,omitempty"`

	// KB is the committed server-side path of an ingest job's knowledge
	// base when State is done — the path to reference in a later
	// POST /v1/jobs.
	KB string `json:"kb,omitempty"`

	// After names a job this one waits for: it stays queued until that job
	// is done, and fails without running if that job fails. Set on the
	// align job of a chained POST /v1/kbs?align-with= upload.
	After string `json:"after,omitempty"`
	// Next names the job chained behind this one — the align job an ingest
	// job triggers — so the upload response carries both IDs.
	Next string `json:"next,omitempty"`
}

// jobManager runs jobs on a bounded worker pool. Submitted jobs wait in a
// bounded FIFO; when it is full, submission fails fast instead of blocking
// the HTTP handler. The queue is a plain slice under the mutex (not a
// channel) so a canceled queued job can be removed immediately, freeing
// its slot for new submissions.
type jobManager struct {
	mu   sync.Mutex
	cond *sync.Cond // signals workers: pending grew or closed flipped
	jobs map[string]*Job
	seq  uint64

	// cancels holds the cancel function of every running job, keyed by job
	// ID, so DELETE /v1/jobs/{id} can abort the fixpoint mid-flight.
	cancels map[string]context.CancelCauseFunc

	// watchers holds the live SSE subscriber channels per job. Progress
	// events are sent best-effort (a slow subscriber drops intermediate
	// events, which are cumulative); terminal transitions close every
	// channel, and the subscriber re-reads the final record itself — so
	// completion is never lost to a full buffer.
	watchers map[string][]chan JobEvent

	pending []string // queued job IDs, oldest first; at most depth
	depth   int

	// met feeds the queue/running gauges and completion counters; nil in
	// tests that build a bare manager.
	met *jobMetrics

	wg  sync.WaitGroup
	run func(ctx context.Context, id string)

	// onDrop receives the final view of a job dropped from the queue at
	// shutdown, so the owner can persist its failed state.
	onDrop func(Job)

	closed bool
}

// newJobManager starts workers goroutines executing run. run receives a job
// ID plus the context that cancels it, and must drive the job to a terminal
// state via finish; onDrop (may be nil) is invoked for jobs dropped from
// the queue at close.
func newJobManager(workers, depth int, run func(ctx context.Context, id string), onDrop func(Job), met *jobMetrics) *jobManager {
	m := &jobManager{
		jobs:     make(map[string]*Job),
		cancels:  make(map[string]context.CancelCauseFunc),
		watchers: make(map[string][]chan JobEvent),
		depth:    depth,
		met:      met,
		run:      run,
		onDrop:   onDrop,
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				m.mu.Lock()
				id, failedDep := m.takeRunnableLocked()
				for id == "" && !m.closed {
					// Nothing runnable: the queue is empty, or every
					// pending job waits on a dependency still in flight.
					// finish and cancel broadcast, so a settling
					// dependency re-triggers the scan.
					m.cond.Wait()
					id, failedDep = m.takeRunnableLocked()
				}
				// Close drains pending itself, so a closed manager means
				// no more work regardless of the slice.
				if id == "" {
					m.mu.Unlock()
					return
				}
				m.met.queue(len(m.pending))
				m.mu.Unlock()
				if failedDep != "" {
					m.failDependent(id, failedDep)
					continue
				}
				// start refuses jobs that left the queued state between
				// the pop and here (canceled: terminal state already
				// recorded) and everything once close begins; drop is a
				// no-op unless the job is still queued (the shutdown
				// race), where it records the dropped state.
				ctx, ok := m.start(id)
				if !ok {
					m.drop(id)
					continue
				}
				m.run(ctx, id)
				m.release(id)
			}
		}()
	}
	return m
}

// takeRunnableLocked removes and returns the oldest pending job that is
// ready to act on: one with no dependency, one whose dependency is done, or
// one whose dependency failed or vanished — the latter comes back with
// failedDep set, and the worker fails it without running. Jobs whose
// dependency is still queued or running are skipped in place. Callers hold
// m.mu.
func (m *jobManager) takeRunnableLocked() (id, failedDep string) {
	for i, pid := range m.pending {
		j := m.jobs[pid]
		dep := ""
		if j != nil && j.After != "" {
			d, ok := m.jobs[j.After]
			if ok && (d.State == JobQueued || d.State == JobRunning) {
				continue
			}
			if !ok || d.State == JobFailed {
				dep = j.After
			}
		}
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
		return pid, dep
	}
	return "", ""
}

// failDependent drives a queued job whose dependency failed to the failed
// state without running it, persisting the record through onDrop.
func (m *jobManager) failDependent(id, depID string) {
	var final Job
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok && j.State == JobQueued {
		now := time.Now().UTC()
		j.State = JobFailed
		j.Finished = &now
		j.Error = fmt.Sprintf("dependency job %s failed", depID)
		m.met.jobFinished(j.Kind, "failed", nil, now)
		m.closeWatchersLocked(id)
		// Its own dependents, if any, can now fail in turn.
		m.cond.Broadcast()
		final = cloneJob(j)
	}
	m.mu.Unlock()
	if final.ID != "" && m.onDrop != nil {
		m.onDrop(final)
	}
}

// submit enqueues a new job built from the template (Kind plus Request or
// Delta) and returns its initial view. It fails when the queue is full or
// the manager is closed.
func (m *jobManager) submit(template Job) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, fmt.Errorf("server: shutting down")
	}
	if len(m.pending) >= m.depth {
		return Job{}, fmt.Errorf("server: job queue full (%d pending)", m.depth)
	}
	j := m.submitLocked(template)
	m.met.queue(len(m.pending))
	m.cond.Signal()
	return cloneJob(j), nil
}

// submitChain enqueues first and a second job that runs only after first
// succeeds, atomically: both are accepted or neither, so a chained upload
// can never land its ingest half with the alignment silently refused.
func (m *jobManager) submitChain(first, second Job) (Job, Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, Job{}, fmt.Errorf("server: shutting down")
	}
	if len(m.pending)+1 >= m.depth {
		return Job{}, Job{}, fmt.Errorf("server: job queue full (%d pending, need 2 slots)", len(m.pending))
	}
	f := m.submitLocked(first)
	second.After = f.ID
	sec := m.submitLocked(second)
	f.Next = sec.ID
	m.met.queue(len(m.pending))
	m.cond.Signal()
	return cloneJob(f), cloneJob(sec), nil
}

// submitLocked allocates, records, and enqueues one job. Callers hold m.mu
// and have checked capacity.
func (m *jobManager) submitLocked(template Job) *Job {
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%08d", m.seq),
		State:   JobQueued,
		Kind:    template.Kind,
		Request: template.Request,
		Delta:   template.Delta,
		Upload:  template.Upload,
		After:   template.After,
		Created: time.Now().UTC(),
	}
	m.jobs[j.ID] = j
	m.pending = append(m.pending, j.ID)
	return j
}

// activeDeltaBases returns the base snapshot IDs of queued and running
// delta jobs, so the retention GC never retires a base that an
// already-accepted job still needs.
func (m *jobManager) activeDeltaBases() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, j := range m.jobs {
		if j.Kind == KindDelta && j.Delta != nil &&
			(j.State == JobQueued || j.State == JobRunning) {
			out = append(out, j.Delta.Base)
		}
	}
	return out
}

// kbInUse reports whether any queued or running job references the named
// uploaded KB: an ingest job streaming or validating under that name, an
// align job whose resolved inputs are one of the KB's candidate paths, or a
// delta job reading its delta from one of them. DELETE /v1/kbs refuses with
// 409 while this holds, so a 202-acknowledged job never loses its input.
func (m *jobManager) kbInUse(name string, paths []string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := "kb:" + name
	for _, j := range m.jobs {
		if j.State != JobQueued && j.State != JobRunning {
			continue
		}
		if j.Upload != nil && j.Upload.Name == name {
			return true
		}
		// Chained align jobs keep "kb:<name>" references until they run.
		if j.Request.KB1 == ref || j.Request.KB2 == ref {
			return true
		}
		for _, p := range paths {
			if j.Request.KB1 == p || j.Request.KB2 == p ||
				(j.Delta != nil && j.Delta.File == p) {
				return true
			}
		}
	}
	return false
}

// findBySnapshot returns the job that published the given snapshot, the root
// of a lineage chain during ontology reconstruction.
func (m *jobManager) findBySnapshot(snapID string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		if j.Snapshot == snapID {
			return cloneJob(j), true
		}
	}
	return Job{}, false
}

// get returns a copy of one job.
func (m *jobManager) get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return cloneJob(j), true
}

// list returns copies of all jobs, oldest first.
func (m *jobManager) list() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, cloneJob(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// counts tallies jobs per state for /stats.
func (m *jobManager) counts() map[JobState]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range m.jobs {
		out[j.State]++
	}
	return out
}

// start transitions a queued job to running and returns the context that
// cancels it. It refuses jobs that are no longer queued (canceled while
// waiting) and everything once close has begun, so no alignment starts
// mid-shutdown.
func (m *jobManager) start(id string) (context.Context, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.State != JobQueued || m.closed {
		return nil, false
	}
	now := time.Now().UTC()
	j.State = JobRunning
	j.Started = &now
	m.met.runningAdd(1)
	ctx, cancel := context.WithCancelCause(context.Background())
	m.cancels[id] = cancel
	return ctx, true
}

// release discards a finished job's cancel function (releasing the context)
// after run returns.
func (m *jobManager) release(id string) {
	m.mu.Lock()
	cancel := m.cancels[id]
	delete(m.cancels, id)
	m.mu.Unlock()
	if cancel != nil {
		cancel(nil)
	}
}

// cancel requests cancellation of a job. A queued job transitions to failed
// immediately (the worker will skip it); a running job has its context
// canceled and reaches failed through the worker shortly after. prev is the
// job's state when cancel was called, so the HTTP layer can distinguish
// "canceled now" (queued), "stopping" (running), and "already terminal".
func (m *jobManager) cancel(id string) (j Job, prev JobState, ok bool) {
	m.mu.Lock()
	jp, found := m.jobs[id]
	if !found {
		m.mu.Unlock()
		return Job{}, "", false
	}
	prev = jp.State
	var cancelFn context.CancelCauseFunc
	if prev == JobQueued {
		now := time.Now().UTC()
		jp.State = JobFailed
		jp.Finished = &now
		jp.Error = errCanceled.Error()
		// Free the queue slot right away so a full queue of canceled
		// jobs does not refuse new submissions until a worker drains it.
		for i, pid := range m.pending {
			if pid == id {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.met.queue(len(m.pending))
		m.met.jobFinished(jp.Kind, "canceled", nil, now)
		m.closeWatchersLocked(id)
		// A dependent waiting on this job must observe the failure.
		m.cond.Broadcast()
	} else if prev == JobRunning {
		cancelFn = m.cancels[id]
	}
	j = cloneJob(jp)
	m.mu.Unlock()
	if cancelFn != nil {
		cancelFn(errCanceled)
	}
	return j, prev, true
}

// JobEvent is one frame of the job progress stream (SSE on
// GET /v1/jobs/{id} with Accept: text/event-stream).
type JobEvent struct {
	// Type is EventState (initial view), EventIteration (a fixpoint
	// iteration completed), EventIngest (a streaming-load block landed),
	// or EventDone (terminal state reached).
	Type string `json:"type"`
	Job  Job    `json:"job"`
}

// Job progress stream event types.
const (
	EventState     = "state"
	EventIteration = "iteration"
	EventIngest    = "ingest"
	EventDone      = "done"
)

// watch subscribes to a job's progress events, returning the job's current
// view atomically with the subscription (no transition can fall between
// them). The channel closes when the job reaches a terminal state — or
// immediately, for a job that already has; the subscriber fetches the final
// record with get. cancel must be called to release the subscription.
func (m *jobManager) watch(id string) (j Job, ch <-chan JobEvent, cancel func(), ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jp, found := m.jobs[id]
	if !found {
		return Job{}, nil, nil, false
	}
	c := make(chan JobEvent, 16)
	if jp.State == JobDone || jp.State == JobFailed {
		close(c)
		return cloneJob(jp), c, func() {}, true
	}
	m.watchers[id] = append(m.watchers[id], c)
	cancel = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		ws := m.watchers[id]
		for i, w := range ws {
			if w == c {
				m.watchers[id] = append(ws[:i], ws[i+1:]...)
				return
			}
		}
	}
	return cloneJob(jp), c, cancel, true
}

// notifyLocked sends a progress event to every subscriber of j,
// best-effort. Callers hold m.mu.
func (m *jobManager) notifyLocked(j *Job, typ string) {
	ws := m.watchers[j.ID]
	if len(ws) == 0 {
		return
	}
	ev := JobEvent{Type: typ, Job: cloneJob(j)}
	for _, c := range ws {
		select {
		case c <- ev:
		default: // slow subscriber: drop; counters are cumulative
		}
	}
}

// closeWatchersLocked ends every subscription of a job that just reached a
// terminal state. Callers hold m.mu.
func (m *jobManager) closeWatchersLocked(id string) {
	for _, c := range m.watchers[id] {
		close(c)
	}
	delete(m.watchers, id)
}

// progress appends one completed iteration to a running job.
func (m *jobManager) progress(id string, it core.IterationStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Iterations = append(j.Iterations, it)
		m.notifyLocked(j, EventIteration)
	}
}

// ingestProgress replaces a running job's streaming-load progress view. The
// pointee is never mutated afterwards, so concurrent clones stay valid.
func (m *jobManager) ingestProgress(id string, p IngestProgress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Ingest = &p
		m.notifyLocked(j, EventIngest)
	}
}

// setKB records the committed KB path of an ingest job before finish.
func (m *jobManager) setKB(id, path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.KB = path
	}
}

// setRequestKBs writes the run-time-resolved KB paths back onto an align
// job's record, so the persisted record references real files.
func (m *jobManager) setRequestKBs(id, kb1, kb2 string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.Request.KB1, j.Request.KB2 = kb1, kb2
	}
}

// finish drives a job to its terminal state and returns the final view for
// persistence.
func (m *jobManager) finish(id, snapshotID string, err error) Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}
	}
	now := time.Now().UTC()
	j.Finished = &now
	outcome := "done"
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		outcome = "failed"
	} else {
		j.State = JobDone
		j.Snapshot = snapshotID
	}
	// finish is only reached from a worker that started the job.
	m.met.runningAdd(-1)
	m.met.jobFinished(j.Kind, outcome, j.Started, now)
	m.closeWatchersLocked(id)
	// Wake workers parked on pending jobs that wait for this one.
	m.cond.Broadcast()
	return cloneJob(j)
}

// recover installs a job restored from the state store, keeping the ID
// sequence ahead of everything recovered.
func (m *jobManager) recover(j Job, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.ID] = &j
	if seq > m.seq {
		m.seq = seq
	}
}

// cancelAll cancels the context of every running job with the given cause
// — the shutdown escape hatch: close() normally drains running jobs to
// completion, but once the caller's grace period is spent, cancelAll makes
// them abort within one fixpoint pass instead.
func (m *jobManager) cancelAll(cause error) {
	m.mu.Lock()
	cancels := make([]context.CancelCauseFunc, 0, len(m.cancels))
	for _, c := range m.cancels {
		cancels = append(cancels, c)
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c(cause)
	}
}

// close stops accepting jobs, drops jobs still in the queue (marking them
// failed and persisting the record via onDrop), and waits for running ones
// to finish. The pending slice is taken whole under the lock, so no worker
// can start one of the dropped jobs afterwards.
func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	dropped := m.pending
	m.pending = nil
	m.met.queue(0)
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, id := range dropped {
		m.drop(id)
	}
	m.wg.Wait()
}

// drop marks a still-queued job failed and hands it to onDrop.
func (m *jobManager) drop(id string) {
	var dropped Job
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok && j.State == JobQueued {
		now := time.Now().UTC()
		j.State = JobFailed
		j.Finished = &now
		j.Error = "dropped: server shutting down"
		m.met.jobFinished(j.Kind, "dropped", nil, now)
		dropped = cloneJob(j)
		m.closeWatchersLocked(id)
	}
	m.mu.Unlock()
	if dropped.ID != "" && m.onDrop != nil {
		m.onDrop(dropped)
	}
}

func cloneJob(j *Job) Job {
	out := *j
	out.Iterations = append([]core.IterationStats(nil), j.Iterations...)
	return out
}
