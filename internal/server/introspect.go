package server

// Introspection endpoints: readiness (distinct from the pure-liveness
// /v1/healthz) and per-job fixpoint convergence from the flight recorder.

import (
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// instanceName is how this process identifies itself in fleet-level
// observability: the shard coordinate when sharded, plain "parisd" when
// standalone. Replica position within a group is a router-side concept —
// two replicas of one slice legitimately self-report the same name, and
// the router's stitcher overrides it with group/replica coordinates.
func (s *Server) instanceName() string {
	if s.opts.ShardCount > 0 {
		return fmt.Sprintf("shard%d/%d", s.opts.ShardIndex, s.opts.ShardCount)
	}
	return "parisd"
}

// handleSLO implements GET /v1/slo: the flight recorder's per-route-family
// error-rate and latency-budget burn over the 5m/1h windows. With the
// recorder disabled the report is empty but well-formed.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.col.SLO(s.instanceName()))
}

// handleReadyz implements GET /v1/readyz: 200 once the server holds a
// serving index (a completed alignment, an ingested shard slice, or a
// recovered snapshot), 503 before. Load balancers gate traffic on this;
// /v1/healthz stays true the moment the process listens, so a daemon that
// is up but empty restarts nothing and receives nothing.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ix := s.idx.Load()
	if ix == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "unavailable",
			"reason": errNoSnapshot.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":   "ready",
		"snapshot": ix.id,
	})
}

// ConvergenceReport is the body of GET /v1/jobs/{id}/convergence: the
// per-iteration movement of the job's fixpoint as captured by the flight
// recorder. Records is empty for jobs that never ran a fixpoint here
// (ingest-only jobs, jobs recovered from a previous process, evicted
// series).
type ConvergenceReport struct {
	Job     string                  `json:"job"`
	Kind    string                  `json:"kind"`
	State   JobState                `json:"state"`
	Records []obs.ConvergenceRecord `json:"records"`
}

// handleJobConvergence implements GET /v1/jobs/{id}/convergence.
func (s *Server) handleJobConvergence(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	recs, _ := s.col.Convergence(id)
	if recs == nil {
		recs = []obs.ConvergenceRecord{}
	}
	writeJSON(w, http.StatusOK, ConvergenceReport{
		Job: j.ID, Kind: metricKind(j.Kind), State: j.State, Records: recs,
	})
}
