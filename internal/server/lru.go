package server

import (
	"container/list"
	"sync"
)

// lruCache memoizes normalized-key lookups on the read path. The hot exact
// path never touches it (exact hits resolve through the immutable index with
// no locks at all); the cache only shields the slower fold-and-scan fallback,
// so a plain mutex is contention-appropriate.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type lruEntry struct {
	key string
	val []Match
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached matches for key and whether they were present.
func (c *lruCache) get(key string) ([]Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores matches under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) put(key string, val []Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// purge drops every entry; called when a new snapshot is published, since
// cached answers belong to the superseded index.
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// stats returns hit/miss counters and the current size.
func (c *lruCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
