package server

import (
	"testing"

	"repro/internal/core"
)

// TestBuildIndexReverseCollision pins the deterministic reverse-map policy:
// when several ontology-1 entities share one ontology-2 match (Instances is
// an argmax, not a matching), the reverse lookup returns the highest-P
// entity, ties broken by smallest key — never map-iteration order.
func TestBuildIndexReverseCollision(t *testing.T) {
	snap := &core.ResultSnapshot{
		KB1: "a", KB2: "b",
		Instances: []core.SnapshotAssignment{
			{Key1: "<a:z>", Key2: "<b:shared>", P: 0.4},
			{Key1: "<a:y>", Key2: "<b:shared>", P: 0.9},
			{Key1: "<a:x>", Key2: "<b:shared>", P: 0.9},
		},
	}
	ix := buildIndex("snap-00000001", snap)
	m, ok := ix.lookup(false, "<b:shared>")
	if !ok || m.Key != "<a:x>" || m.P != 0.9 {
		t.Fatalf("reverse lookup = %+v, %v; want <a:x> at 0.9", m, ok)
	}
	// Forward entries are unaffected.
	for _, a := range snap.Instances {
		if got, ok := ix.lookup(true, a.Key1); !ok || got.Key != "<b:shared>" {
			t.Fatalf("forward lookup %s = %+v, %v", a.Key1, got, ok)
		}
	}
	// All three canonical keys stay reachable through the normalized map.
	if got := ix.lookupNormalized(false, "b:SHARED"); len(got) != 1 {
		t.Fatalf("normalized reverse = %v", got)
	}
}
