package server

// POST /v1/query: conjunctive queries over the aligned union KB. The
// serving index answers point lookups (sameAs, relations, classes); this
// endpoint answers joins — triple patterns whose variables range over the
// sameAs equivalence classes of a published snapshot and whose relation
// constants expand through its sub-relation and subclass tables, so one
// query returns rows that neither source KB holds alone (internal/query).
//
// The union KB of a snapshot is built once — from the ontology pair the
// aligner retains (or reconstructs, for delta lineages) — and cached with
// its plan-cache-carrying engine, bounded by maxQueryEngines. Requests may
// pin a snapshot ID the same way the lookup endpoints do, so a paginating
// client keeps a stable view while new alignments publish.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/diskstore"
	"repro/internal/obs"
	"repro/internal/query"
)

// Bounds of one POST /v1/query request.
const (
	// maxQueryBody bounds the request body; queries are short programs.
	maxQueryBody = 1 << 20
	// defaultQueryLimit and maxQueryLimit bound the distinct rows of one
	// response. A request may lower or raise the default up to the max.
	defaultQueryLimit = 1000
	maxQueryLimit     = 10000
	// defaultQueryTimeout and maxQueryTimeout bound the execution window; a
	// query that exhausts it returns its partial rows marked truncated.
	defaultQueryTimeout = 5 * time.Second
	maxQueryTimeout     = 30 * time.Second
	// maxQueryEngines bounds the cached union-KB engines. Two covers the
	// steady state — the current snapshot plus one pinned predecessor —
	// without letting pinned readers accumulate whole union KBs.
	maxQueryEngines = 2
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Query is the conjunctive query: whitespace-separated triple patterns
	// joined by ".", e.g. `?d <http://y/directed> ?m . ?m <http://i/hasGenre> ?g`.
	Query string `json:"query"`
	// Snapshot pins a published snapshot ID; empty queries the newest.
	Snapshot string `json:"snapshot,omitempty"`
	// Limit bounds the distinct result rows (default 1000, max 10000).
	Limit int `json:"limit,omitempty"`
	// TimeoutMS bounds execution in milliseconds (default 5000, max 30000).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of POST /v1/query. Rows bind Vars in order;
// each binding carries the keys of its sameAs cluster in both KBs (or the
// literal), so a row is traceable to the source ontologies.
type QueryResponse struct {
	Snapshot  string          `json:"snapshot"`
	Vars      []string        `json:"vars"`
	Rows      [][]query.Value `json:"rows"`
	Truncated bool            `json:"truncated,omitempty"`
	Reason    string          `json:"reason,omitempty"`
	Stats     query.Stats     `json:"stats"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// A shard holds a key-space slice of the snapshot, not the ontology
	// pair a union KB is built from; queries belong on the aligner.
	if s.rejectOnShard(w) {
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, "query is required")
		return
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = defaultQueryLimit
	case limit > maxQueryLimit:
		httpError(w, http.StatusBadRequest, "limit must be at most %d", maxQueryLimit)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	switch {
	case timeout <= 0:
		timeout = defaultQueryTimeout
	case timeout > maxQueryTimeout:
		httpError(w, http.StatusBadRequest, "timeout_ms must be at most %d", maxQueryTimeout/time.Millisecond)
		return
	}
	snapID := req.Snapshot
	if snapID == "" {
		ix := s.idx.Load()
		if ix == nil {
			s.met.queries.With("error").Inc()
			httpError(w, http.StatusServiceUnavailable, "%v", errNoSnapshot)
			return
		}
		snapID = ix.id
	} else if _, ok := s.snapshotInfoByID(snapID); !ok {
		s.met.queries.With("error").Inc()
		httpError(w, http.StatusNotFound, "unknown snapshot %q", snapID)
		return
	}

	eng, err := s.engineFor(r.Context(), snapID)
	if err != nil {
		s.met.queries.With("error").Inc()
		httpError(w, http.StatusInternalServerError, "building union KB for %s: %v", snapID, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	pctx, planSpan := obs.StartSpan(ctx, s.opts.Logf, "query.plan")
	planStart := time.Now()
	prep, cacheHit, err := eng.Prepare(req.Query)
	planTime := time.Since(planStart)
	planSpan.Set("cache_hit", cacheHit)
	planSpan.End()
	if err != nil {
		s.met.queries.With("parse_error").Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.queryPlanSeconds.Observe(planTime.Seconds())
	if cacheHit {
		s.met.queryPlanCacheHits.Inc()
	} else {
		s.met.queryPlanCacheMisses.Inc()
	}

	ectx, execSpan := obs.StartSpan(pctx, s.opts.Logf, "query.exec")
	res, err := eng.Execute(ectx, prep, query.ExecOptions{Limit: limit})
	if err != nil {
		execSpan.Set("error", err)
		execSpan.End()
		s.met.queries.With("error").Inc()
		// The request context ended: the client is gone, the status is moot.
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	execSpan.Set("rows", len(res.Rows))
	execSpan.Set("truncated", res.Truncated)
	execSpan.End()
	res.Stats.CacheHit = cacheHit
	res.Stats.PlanTime = planTime
	s.met.queryExecSeconds.Observe(res.Stats.ExecTime.Seconds())
	s.met.queryRows.Add(uint64(len(res.Rows)))
	outcome := "ok"
	if res.Truncated {
		outcome = "truncated"
	}
	s.met.queries.With(outcome).Inc()

	writeJSON(w, http.StatusOK, QueryResponse{
		Snapshot:  snapID,
		Vars:      res.Vars,
		Rows:      res.Rows,
		Truncated: res.Truncated,
		Reason:    res.Reason,
		Stats:     res.Stats,
	})
}

// engineFor returns the query engine over snapID's union KB, building and
// caching it on first use. The build needs the snapshot's ontology pair —
// the aligner's retained pair when it matches, otherwise the same lineage
// reconstruction delta jobs use — and deep-copies everything it keeps, so
// the cached engine stays valid while later delta jobs extend the
// ontologies in place.
func (s *Server) engineFor(ctx context.Context, snapID string) (*query.Engine, error) {
	s.mu.Lock()
	eng, ok := s.engines[snapID]
	s.mu.Unlock()
	if ok {
		return eng, nil
	}
	// deltaMu serializes against delta jobs: they mutate the cached
	// ontology pair in place, and query.Build must observe a consistent
	// view of it. The build copies what it keeps, so the lock is released
	// before the engine serves anything.
	s.deltaMu.Lock()
	o1, o2, err := s.ontologiesForLocked(ctx, snapID)
	if err != nil {
		s.deltaMu.Unlock()
		return nil, err
	}
	snap, err := diskstore.LoadSnapshot(s.store, snapID)
	if err != nil {
		s.deltaMu.Unlock()
		if errors.Is(err, diskstore.ErrNotFound) {
			return nil, errors.New("snapshot retired while building its union KB")
		}
		return nil, err
	}
	kb, err := query.Build(o1, o2, snap, query.Options{})
	s.deltaMu.Unlock()
	if err != nil {
		return nil, err
	}
	built := query.NewEngine(kb, 0)
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.engines[snapID]; ok {
		// A concurrent request built the same engine first; keep the one
		// already serving so its plan cache survives.
		return eng, nil
	}
	for len(s.engines) >= maxQueryEngines {
		// Evict an arbitrary entry, as the pinned-index cache does: engines
		// are rebuildable and pinned queriers are few.
		for id := range s.engines {
			delete(s.engines, id)
			break
		}
	}
	s.engines[snapID] = built
	s.opts.Logf("server: built union KB for %s: %d clusters, %d statements",
		snapID, kb.NumClusters(), kb.NumStatements())
	return built, nil
}
