package server

// Server-sent-events progress streaming on GET /v1/jobs/{id}. A request
// carrying `Accept: text/event-stream` subscribes to the job's live
// progress instead of polling: one `state` event with the current record,
// then an `iteration` event per completed fixpoint pass and an `ingest`
// event per streaming-load block, and finally a `done` event with the
// terminal record. Each event's data is the full job JSON (the same shape
// the polling GET returns), so consumers need exactly one decoder.

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// ssePingInterval paces keep-alive comments so idle proxies do not reap a
// stream between fixpoint iterations of a big alignment.
const ssePingInterval = 15 * time.Second

// wantsEventStream reports whether the request asked for SSE.
func wantsEventStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleJobEvents streams one job's progress as SSE until the job reaches a
// terminal state or the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ch, cancel, ok := s.jobs.watch(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		// No streaming transport: answer like the polling GET.
		writeJSON(w, http.StatusOK, j)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	write := func(typ string, job Job) bool {
		data, err := json.Marshal(job)
		if err != nil {
			return false
		}
		if _, err := w.Write([]byte("event: " + typ + "\ndata: ")); err != nil {
			return false
		}
		if _, err := w.Write(data); err != nil {
			return false
		}
		if _, err := w.Write([]byte("\n\n")); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	if !write(EventState, j) {
		return
	}
	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Terminal transition: the channel closed (possibly before
				// slower progress events could be delivered), so re-read
				// the final record rather than trusting the last event.
				if final, ok := s.jobs.get(id); ok {
					write(EventDone, final)
				}
				return
			}
			if !write(ev.Type, ev.Job) {
				return
			}
		case <-ping.C:
			if _, err := w.Write([]byte(": ping\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}
