package server

// Tests for incremental re-alignment over HTTP: POST /v1/deltas end to end,
// lineage in GET /v1/snapshots, restart replay of base + delta segments, and
// the retention GC.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

// deltaPerson1 and deltaPerson2 add one matching person to each side of the
// persons corpus: shared literals (ssn, phone, email) give the instance pass
// strong evidence through the already-aligned relations.
const deltaPerson1 = `<http://person1.example.org/person9999> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://person1.example.org/Person> .
<http://person1.example.org/person9999> <http://person1.example.org/has_first_name> "Zebulon" .
<http://person1.example.org/person9999> <http://person1.example.org/has_surname> "Quixote" .
<http://person1.example.org/person9999> <http://person1.example.org/soc_sec_id> "999-99-9999" .
<http://person1.example.org/person9999> <http://person1.example.org/phone_number> "555-9999" .
<http://person1.example.org/person9999> <http://person1.example.org/has_email> "zebulon.quixote@example.com" .
`

const deltaPerson2 = `<http://person2.example.org/hum9999> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://person2.example.org/Human> .
<http://person2.example.org/hum9999> <http://person2.example.org/givenName> "Zebulon" .
<http://person2.example.org/hum9999> <http://person2.example.org/familyName> "Quixote" .
<http://person2.example.org/hum9999> <http://person2.example.org/ssn> "999-99-9999" .
<http://person2.example.org/hum9999> <http://person2.example.org/telephone> "555-9999" .
<http://person2.example.org/hum9999> <http://person2.example.org/emailAddress> "zebulon.quixote@example.com" .
`

// postDelta submits a delta job and waits for its terminal state.
func postDelta(t *testing.T, ts string, req DeltaRequest) Job {
	t.Helper()
	var j Job
	if code := doJSON(t, http.MethodPost, ts+"/v1/deltas", req, &j); code != http.StatusAccepted {
		t.Fatalf("POST /v1/deltas: %d", code)
	}
	if j.Kind != KindDelta || j.Delta == nil {
		t.Fatalf("delta job record = %+v, want kind delta", j)
	}
	final := waitDone(t, ts, j.ID)
	if final.State != JobDone {
		t.Fatalf("delta job failed: %s", final.Error)
	}
	return final
}

// snapshotList fetches GET /v1/snapshots.
func snapshotList(t *testing.T, ts string) (snaps []SnapshotInfo, current string) {
	t.Helper()
	var out struct {
		Snapshots []SnapshotInfo `json:"snapshots"`
		Current   string         `json:"current"`
	}
	if code := doJSON(t, http.MethodGet, ts+"/v1/snapshots", nil, &out); code != http.StatusOK {
		t.Fatalf("GET /v1/snapshots: %d", code)
	}
	return out.Snapshots, out.Current
}

// TestDeltaEndToEnd drives the whole incremental flow over HTTP: full
// alignment, two delta jobs (one per side) whose snapshots chain through
// lineage, a sameAs hit for the delta-added pair, then a daemon restart
// followed by another delta — which forces the server to reconstruct the
// ontologies from the root job's KB files plus the persisted delta segments.
func TestDeltaEndToEnd(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	srv, ts := newTestServer(t, state, 1)
	closed := false
	defer func() {
		if !closed {
			ts.Close()
			srv.Close()
		}
	}()

	full, pairs := alignPersons(t, ts.URL, dir, 30)

	// Delta 1: extend KB1. Defaults to the current snapshot as base.
	d1 := postDelta(t, ts.URL, DeltaRequest{KB: "1", NTriples: deltaPerson1})
	// Delta 2: extend KB2 against the explicit new base.
	d2 := postDelta(t, ts.URL, DeltaRequest{KB: "2", NTriples: deltaPerson2, Base: d1.Snapshot})

	snaps, current := snapshotList(t, ts.URL)
	if len(snaps) != 3 || current != d2.Snapshot {
		t.Fatalf("snapshots = %+v current %s, want 3 with current %s", snaps, current, d2.Snapshot)
	}
	if snaps[1].Base != full.Snapshot || snaps[2].Base != d1.Snapshot {
		t.Fatalf("lineage chain broken: %+v", snaps)
	}
	if snaps[1].DeltaDigest == "" || snaps[1].DeltaAdded == 0 {
		t.Fatalf("delta snapshot missing digest/count: %+v", snaps[1])
	}

	// The delta-added pair resolves, and an original gold pair still does.
	if got, code := lookupKey(t, ts.URL, "1", "<http://person1.example.org/person9999>"); code != http.StatusOK ||
		got != "<http://person2.example.org/hum9999>" {
		t.Fatalf("delta pair lookup = %q (%d)", got, code)
	}
	if got, code := lookupKey(t, ts.URL, "1", pairs[0][0]); code != http.StatusOK || got != pairs[0][1] {
		t.Fatalf("original pair after deltas = %q (%d), want %q", got, code, pairs[0][1])
	}

	// Restart: lineage and the delta pair survive; a further delta now has
	// no cached ontologies, so the server must replay root KBs + segments.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	srv2, ts2 := newTestServer(t, state, 1)
	defer srv2.Close()
	defer ts2.Close()

	snaps, current = snapshotList(t, ts2.URL)
	if len(snaps) != 3 || current != d2.Snapshot || snaps[2].Base != d1.Snapshot {
		t.Fatalf("lineage after restart = %+v current %s", snaps, current)
	}
	if got, code := lookupKey(t, ts2.URL, "1", "<http://person1.example.org/person9999>"); code != http.StatusOK ||
		got != "<http://person2.example.org/hum9999>" {
		t.Fatalf("delta pair after restart = %q (%d)", got, code)
	}

	const extra = `<http://person1.example.org/person9998> <http://person1.example.org/has_first_name> "Nobody" .` + "\n"
	d3 := postDelta(t, ts2.URL, DeltaRequest{KB: "1", NTriples: extra})
	if d3.Snapshot == "" {
		t.Fatal("post-restart delta published nothing")
	}
	// The new snapshot still knows the pair added before the restart —
	// only possible if the replayed segments reached the rebuilt
	// ontologies.
	url := fmt.Sprintf("%s/v1/sameas?kb=1&key=%s&snapshot=%s", ts2.URL,
		queryEscape("<http://person1.example.org/person9999>"), d3.Snapshot)
	var sa sameAsResponse
	if code := doJSON(t, http.MethodGet, url, nil, &sa); code != http.StatusOK ||
		len(sa.Matches) != 1 || sa.Matches[0].Key != "<http://person2.example.org/hum9999>" {
		t.Fatalf("delta pair in post-restart snapshot = %+v (%d)", sa, code)
	}
}

// TestDeltaValidation covers the submission failure modes.
func TestDeltaValidation(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, filepath.Join(dir, "state"), 1)
	defer srv.Close()
	defer ts.Close()

	// No snapshot yet: nothing to apply a delta to.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/deltas",
		DeltaRequest{KB: "1", NTriples: deltaPerson1}, nil); code != http.StatusConflict {
		t.Fatalf("delta before any snapshot: %d, want 409", code)
	}

	alignPersons(t, ts.URL, dir, 10)

	cases := map[string]struct {
		req  DeltaRequest
		want int
	}{
		"bad kb":        {DeltaRequest{KB: "3", NTriples: deltaPerson1}, http.StatusBadRequest},
		"no source":     {DeltaRequest{KB: "1"}, http.StatusBadRequest},
		"two sources":   {DeltaRequest{KB: "1", NTriples: deltaPerson1, File: "/tmp/x.nt"}, http.StatusBadRequest},
		"bad syntax":    {DeltaRequest{KB: "1", NTriples: "this is not ntriples"}, http.StatusBadRequest},
		"missing file":  {DeltaRequest{KB: "1", File: filepath.Join(dir, "absent.nt")}, http.StatusBadRequest},
		"unknown base":  {DeltaRequest{KB: "1", NTriples: deltaPerson1, Base: "snap-99999999"}, http.StatusNotFound},
		"neg workers":   {DeltaRequest{KB: "1", NTriples: deltaPerson1, Workers: -1}, http.StatusBadRequest},
		"huge maxiters": {DeltaRequest{KB: "1", NTriples: deltaPerson1, MaxIterations: maxJobIterations + 1}, http.StatusBadRequest},
	}
	for name, c := range cases {
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/deltas", c.req, nil); code != c.want {
			t.Errorf("%s: %d, want %d", name, code, c.want)
		}
	}

	// A schema triple passes submission (it is shape-valid N-Triples) but
	// fails the job with a clear error from store.ApplyDelta.
	var j Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/deltas", DeltaRequest{
		KB:       "1",
		NTriples: `<http://a/X> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://a/Y> .` + "\n",
	}, &j); code != http.StatusAccepted {
		t.Fatalf("schema delta submit: %d", code)
	}
	if final := waitDone(t, ts.URL, j.ID); final.State != JobFailed {
		t.Fatalf("schema delta job = %+v, want failed", final)
	}
}

// TestSnapshotGC: with -retain 1, publishing an unrelated snapshot retires a
// delta chain wholesale, while the chain itself is never broken as long as
// its head is current (lineage pinning).
func TestSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{StateDir: filepath.Join(dir, "state"), Workers: 1, Retain: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()

	full, _ := alignPersons(t, ts.URL, dir, 10)
	d1 := postDelta(t, ts.URL, DeltaRequest{KB: "1", NTriples: deltaPerson1})

	// Retain 1 would keep only d1, but its lineage pins the root: the
	// whole chain must survive.
	snaps, _ := snapshotList(t, ts.URL)
	if len(snaps) != 2 || snaps[0].ID != full.Snapshot || snaps[1].ID != d1.Snapshot {
		t.Fatalf("chain GC'd despite lineage pin: %+v", snaps)
	}

	// An unrelated cold snapshot supersedes the chain; everything else is
	// retired.
	mdir := filepath.Join(dir, "movies")
	md := gen.Movies(gen.MoviesConfig{Seed: 7, People: 40, Movies: 15})
	if err := md.WriteFiles(mdir); err != nil {
		t.Fatal(err)
	}
	var mj Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", JobRequest{
		KB1: filepath.Join(mdir, md.Name1+".nt"),
		KB2: filepath.Join(mdir, md.Name2+".nt"),
	}, &mj); code != http.StatusAccepted {
		t.Fatalf("movies job: %d", code)
	}
	cold := waitDone(t, ts.URL, mj.ID)
	if cold.State != JobDone {
		t.Fatalf("movies job failed: %s", cold.Error)
	}

	snaps, current := snapshotList(t, ts.URL)
	if len(snaps) != 1 || snaps[0].ID != cold.Snapshot || current != cold.Snapshot {
		t.Fatalf("after GC: %+v current %s, want only %s", snaps, current, cold.Snapshot)
	}
	// The retired snapshots are gone from the read path too.
	if code := doJSON(t, http.MethodGet,
		ts.URL+"/v1/sameas?kb=1&key=x&snapshot="+full.Snapshot, nil, nil); code != http.StatusNotFound {
		t.Fatalf("read of retired snapshot: %d, want 404", code)
	}
}

// TestCanceledQueuedDeltaFreesSlotAndBasePin closes the queue-coverage gap
// left by the running-job cancellation tests: canceling a delta job that is
// still *queued* must free its queue slot immediately (a full queue of
// canceled jobs must not refuse new submissions until a worker drains it)
// and release the base snapshot it had pinned against the retention GC —
// the "reserved version" an accepted delta holds until it runs.
func TestCanceledQueuedDeltaFreesSlotAndBasePin(t *testing.T) {
	dir := t.TempDir()
	d := writePersonsKB(t, dir, 20)
	srv, err := New(Options{
		StateDir: filepath.Join(dir, "state"), Workers: 1, QueueDepth: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := JobRequest{
		KB1: filepath.Join(dir, d.Name1+".nt"),
		KB2: filepath.Join(dir, d.Name2+".nt"),
	}
	var first Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, &first); code != http.StatusAccepted {
		t.Fatalf("first job: %d", code)
	}
	base := waitDone(t, ts.URL, first.ID)
	if base.State != JobDone {
		t.Fatalf("base job failed: %s", base.Error)
	}

	// Gate the single worker on a second align job so the delta stays
	// queued behind it.
	picked := make(chan string, 4)
	release := make(chan struct{})
	srv.testBeforeAlign = func(id string) { picked <- id; <-release }
	var blocker Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, &blocker); code != http.StatusAccepted {
		t.Fatalf("blocker job: %d", code)
	}
	<-picked

	var dj Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/deltas", DeltaRequest{
		Base: base.Snapshot, KB: "1", NTriples: deltaPerson1,
	}, &dj); code != http.StatusAccepted {
		t.Fatalf("delta job: %d", code)
	}
	if dj.State != JobQueued {
		t.Fatalf("delta job state = %q, want queued", dj.State)
	}

	// The queue (depth 1) is now full, and the queued delta pins its base.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submission into full queue: %d, want 503", code)
	}
	if bases := srv.jobs.activeDeltaBases(); len(bases) != 1 || bases[0] != base.Snapshot {
		t.Fatalf("active delta bases = %v, want [%s]", bases, base.Snapshot)
	}

	var canceled Job
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+dj.ID, nil, &canceled); code != http.StatusOK {
		t.Fatalf("DELETE queued delta: %d, want 200", code)
	}
	if canceled.State != JobFailed {
		t.Fatalf("canceled queued delta = %+v, want failed", canceled)
	}

	// Slot freed immediately: the queue accepts a new job although the
	// worker is still busy and has drained nothing.
	var next Job
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req, &next); code != http.StatusAccepted {
		t.Fatalf("submission after cancel: %d, want 202 (slot not freed)", code)
	}
	// Base pin released: the GC may retire the base snapshot again.
	if bases := srv.jobs.activeDeltaBases(); len(bases) != 0 {
		t.Fatalf("active delta bases after cancel = %v, want none", bases)
	}

	close(release)
	if j := waitDone(t, ts.URL, blocker.ID); j.State != JobDone {
		t.Fatalf("blocker job = %+v, want done", j)
	}
	if j := waitDone(t, ts.URL, next.ID); j.State != JobDone {
		t.Fatalf("post-cancel job = %+v, want done", j)
	}
	// The canceled delta never ran and never published.
	snaps, _ := snapshotList(t, ts.URL)
	for _, info := range snaps {
		if info.DeltaDigest != "" {
			t.Fatalf("a delta snapshot was published despite cancellation: %+v", info)
		}
	}
}
