package server

// Tests for POST /v1/query: conjunctive queries over the aligned union KB,
// including the cross-KB sameAs join that neither source KB answers alone,
// plan-cache behaviour across repeated requests, snapshot pinning, the
// validation surface, and the query metric families on /metrics.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

const (
	qykb = "http://ykbfilm.example.org/"
	qikb = "http://ikb.example.org/"
)

// publishMovies aligns a movies corpus offline and publishes the result,
// so the server retains the ontology pair the union KB is built from.
func publishMovies(t *testing.T, srv *Server) string {
	t.Helper()
	d := gen.Movies(gen.MoviesConfig{Seed: 7, People: 120, Movies: 40})
	o1, o2, err := d.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := core.New(o1, o2, core.Config{}).Run()
	if len(res.Instances) == 0 {
		t.Fatal("alignment produced nothing")
	}
	id, err := srv.PublishResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()
	snapID := publishMovies(t, srv)

	// The cross-KB proof query: directed lives only in the ykb ontology,
	// hasGenre only in the ikb one, so every row needs the alignment.
	crossQ := `?d <` + qykb + `directed> ?m . ?m <` + qikb + `hasGenre> ?g`

	var resp QueryResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{Query: crossQ}, &resp)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/query: %d", code)
	}
	if resp.Snapshot != snapID {
		t.Fatalf("query served from %s, want %s", resp.Snapshot, snapID)
	}
	if len(resp.Vars) != 3 || resp.Vars[0] != "d" || resp.Vars[1] != "m" || resp.Vars[2] != "g" {
		t.Fatalf("vars = %v", resp.Vars)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("cross-KB join returned no rows")
	}
	// At least one movie binding spans both ontologies — a row neither KB
	// holds alone (some rows come from KB2 via the directorOf rewrite).
	spanning := 0
	for _, row := range resp.Rows {
		if len(row[1].KB1) > 0 && len(row[1].KB2) > 0 {
			spanning++
		}
	}
	if spanning == 0 {
		t.Fatalf("none of the %d rows joins through a sameAs cluster", len(resp.Rows))
	}
	if resp.Stats.CacheHit {
		t.Fatal("first query reported a plan-cache hit")
	}

	// The same shape planned again hits the cached plan.
	var again QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{Query: crossQ}, &again); code != http.StatusOK {
		t.Fatalf("repeat query: %d", code)
	}
	if !again.Stats.CacheHit {
		t.Fatal("repeated query missed the plan cache")
	}
	if len(again.Rows) != len(resp.Rows) {
		t.Fatalf("repeat query: %d rows, first run %d", len(again.Rows), len(resp.Rows))
	}

	// Pinned to the same snapshot explicitly.
	var pinned QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/query",
		QueryRequest{Query: crossQ, Snapshot: snapID}, &pinned); code != http.StatusOK {
		t.Fatalf("pinned query: %d", code)
	}
	if pinned.Snapshot != snapID || len(pinned.Rows) != len(resp.Rows) {
		t.Fatalf("pinned query: %d rows from %s", len(pinned.Rows), pinned.Snapshot)
	}

	// A limit of 1 truncates the same result set.
	var lim QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/query",
		QueryRequest{Query: crossQ, Limit: 1}, &lim); code != http.StatusOK {
		t.Fatalf("limited query: %d", code)
	}
	if len(lim.Rows) != 1 || !lim.Truncated {
		t.Fatalf("limit=1: %d rows, truncated=%v", len(lim.Rows), lim.Truncated)
	}

	// Validation surface.
	for _, bad := range []struct {
		req  QueryRequest
		want int
	}{
		{QueryRequest{Query: ""}, http.StatusBadRequest},
		{QueryRequest{Query: `?x <oops`}, http.StatusBadRequest},
		{QueryRequest{Query: crossQ, Limit: maxQueryLimit + 1}, http.StatusBadRequest},
		{QueryRequest{Query: crossQ, TimeoutMS: 31_000}, http.StatusBadRequest},
		{QueryRequest{Query: crossQ, Snapshot: "v999"}, http.StatusNotFound},
	} {
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/query", bad.req, nil); code != bad.want {
			t.Fatalf("query %+v: %d, want %d", bad.req, code, bad.want)
		}
	}

	// The metric families are live after traffic.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		`paris_query_total{outcome="ok"}`,
		"paris_query_plan_seconds",
		"paris_query_exec_seconds",
		"paris_query_rows_returned_total",
		"paris_query_plan_cache_hits_total",
		"paris_query_plan_cache_misses_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Fatalf("/metrics missing %s", family)
		}
	}
}

func TestQueryNoSnapshot(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 1)
	defer srv.Close()
	defer ts.Close()
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{Query: `?a <http://x/p> ?b`}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query before any snapshot: %d, want 503", code)
	}
}

func TestQueryRejectedOnShard(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), ShardCount: 3, ShardIndex: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/query", QueryRequest{Query: `?a <http://x/p> ?b`}, nil); code != http.StatusForbidden {
		t.Fatalf("shard accepted a query: %d", code)
	}
}
