package server

// POST /v1/kbs: push-based KB ingestion. Submitting an alignment job
// references KB files on the server's filesystem, which assumes the aligner
// can see the dumps — false for a remote aligner fed from a laptop or an
// ETL pipeline. The upload endpoint closes that gap: the client streams a
// (possibly gzipped) N-Triples dump as a chunked request body, the server
// spools it, and a job on the shared worker pool validates it through the
// streaming ingest pipeline (parallel block parsing under the configured
// memory budget, per-block progress on the job record and its SSE stream)
// before committing it into <state>/kbs/ for later POST /v1/jobs use.
//
// Error semantics are resumable: a connection that dies mid-body leaves the
// spool in place, GET /v1/kbs reports the partial upload's byte offset, and
// the client re-POSTs the remainder with ?offset=N. Offsets must match the
// spool exactly (409 with the current offset otherwise), so a duplicated or
// reordered retry can never interleave bytes.

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/rdf"
)

// kbNameRE constrains uploaded KB names: path-safe (no separators, cannot
// start with a dot, so neither hidden files nor traversal are expressible)
// and short enough for any filesystem.
var kbNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// uploadFormats are the formats POST /v1/kbs accepts: the N-Triples family,
// optionally gzipped — the formats the block-parallel pipeline can split.
// (Turtle is stateful and cannot be block-parallelized; convert first.)
var uploadFormats = map[string]bool{
	".nt": true, ".ntriples": true, ".nt.gz": true, ".ntriples.gz": true,
}

// partialSuffix marks an in-flight (or interrupted) upload spool.
const partialSuffix = ".partial"

// KBInfo is one entry of GET /v1/kbs: a committed, ready-to-align KB or a
// partial upload awaiting its remaining bytes.
type KBInfo struct {
	Name string `json:"name"`
	// State is "ready" or "partial".
	State string `json:"state"`
	// File is the server-side path of a ready KB — the value to use as
	// kb1/kb2 in POST /v1/jobs.
	File string `json:"file,omitempty"`
	// Bytes is the on-disk size (compressed, if gzip).
	Bytes int64 `json:"bytes"`
	// Offset is the resume offset of a partial upload: re-POST the body
	// tail with ?offset=<this>.
	Offset int64 `json:"offset,omitempty"`
}

// kbsDir is the committed-KB and spool directory under the state dir.
func (s *Server) kbsDir() string { return filepath.Join(s.opts.StateDir, "kbs") }

// kbPartialPath is the spool of one named upload.
func (s *Server) kbPartialPath(name string) string {
	return filepath.Join(s.kbsDir(), name+partialSuffix)
}

// handleUploadKB implements POST /v1/kbs?name=N&format=.nt.gz[&offset=M]
// [&align-with=R]: stream the request body into the named spool, then hand
// validation and commit to an ingest job on the worker pool (202 + job
// record). With align-with, an alignment job against R (another uploaded
// KB as "kb:<name>" or a bare name, or a server-side path) is chained
// behind the ingest job — it runs only once the upload commits — and the
// returned ingest record names it in Next, so one request carries both IDs.
func (s *Server) handleUploadKB(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnShard(w) {
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if !kbNameRE.MatchString(name) {
		httpError(w, http.StatusBadRequest, "name must match %s", kbNameRE)
		return
	}
	alignWith := q.Get("align-with")
	if alignWith != "" {
		// Normalize a bare uploaded-KB name to its "kb:" reference and fail
		// fast — before the body streams — on a target that cannot resolve.
		if !strings.HasPrefix(alignWith, "kb:") && kbNameRE.MatchString(alignWith) {
			alignWith = "kb:" + alignWith
		}
		if strings.HasPrefix(alignWith, "kb:") {
			if _, err := s.resolveKBRef(alignWith); err != nil {
				httpError(w, http.StatusBadRequest, "align-with: %v", err)
				return
			}
		} else if _, err := os.Stat(alignWith); err != nil {
			httpError(w, http.StatusBadRequest, "align-with %q: %v", alignWith, err)
			return
		}
	}
	format := strings.ToLower(q.Get("format"))
	if format == "" {
		format = ".nt"
	} else if !strings.HasPrefix(format, ".") {
		format = "." + format
	}
	if !uploadFormats[format] {
		httpError(w, http.StatusBadRequest,
			"format %q not supported for upload (want .nt or .ntriples, optionally .gz)", format)
		return
	}
	var offset int64
	if raw := q.Get("offset"); raw != "" {
		var err error
		if offset, err = strconv.ParseInt(raw, 10, 64); err != nil || offset < 0 {
			httpError(w, http.StatusBadRequest, "offset must be a non-negative integer")
			return
		}
	}

	// One spool writer at a time — a concurrent upload (or the ingest job
	// validating the spool, which holds the same lock) would interleave
	// with this request's bytes. Released explicitly before the job is
	// submitted, so the worker can take it; the deferred release only
	// covers the error paths.
	if !s.lockUpload(name) {
		httpError(w, http.StatusConflict, "an upload or ingest of %q is already in progress", name)
		return
	}
	locked := true
	defer func() {
		if locked {
			s.unlockUpload(name)
		}
	}()

	if err := os.MkdirAll(s.kbsDir(), 0o755); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	partial := s.kbPartialPath(name)
	cur := int64(0)
	if fi, err := os.Stat(partial); err == nil {
		cur = fi.Size()
	}
	if offset != cur {
		// The resume contract: the client must continue exactly where the
		// spool ends. The 409 body carries the offset to continue from.
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  fmt.Sprintf("upload offset %d does not match the spooled %d bytes", offset, cur),
			"offset": cur,
		})
		return
	}
	if offset >= s.opts.MaxUploadBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			"KB exceeds the %d-byte upload limit", s.opts.MaxUploadBytes)
		return
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if offset == 0 {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(partial, flags, 0o644)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Bound the spool like every other write endpoint bounds its body
	// (MaxSnapshotBytes on PUT /v1/snapshots): one runaway chunked body
	// must not fill the state disk. The cap applies to the whole KB, so a
	// resume may only use what the earlier bytes left.
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes-offset)
	n, copyErr := io.Copy(f, body)
	if err := f.Close(); copyErr == nil {
		copyErr = err
	}
	if copyErr != nil {
		var tooBig *http.MaxBytesError
		if errors.As(copyErr, &tooBig) {
			// What fit is spooled; the client can resume once the
			// operator raises -max-upload-bytes.
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error":  fmt.Sprintf("KB exceeds the %d-byte upload limit", s.opts.MaxUploadBytes),
				"offset": offset + n,
			})
			return
		}
		// The spool keeps what arrived; the client resumes from its end.
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":  fmt.Sprintf("upload interrupted after %d bytes: %v", n, copyErr),
			"offset": offset + n,
		})
		return
	}

	rec := &UploadRecord{Name: name, Format: format, Bytes: offset + n}
	s.unlockUpload(name)
	locked = false
	ingestJob := Job{Kind: KindIngest, Upload: rec}
	var j Job
	var submitErr error
	if alignWith != "" {
		// The align job references the upload as "kb:<name>": it cannot
		// resolve yet (the spool commits when the ingest job succeeds), so
		// the worker resolves it at run time, after its dependency is done.
		var aj Job
		j, aj, submitErr = s.jobs.submitChain(ingestJob, Job{
			Kind:    KindAlign,
			Request: JobRequest{KB1: "kb:" + name, KB2: alignWith},
		})
		if submitErr == nil {
			s.opts.Logf("server: %s chained to align kb:%s vs %s", aj.ID, name, alignWith)
		}
	} else {
		j, submitErr = s.jobs.submit(ingestJob)
	}
	if submitErr != nil {
		// Queue full: the spool is complete on disk; re-POST with
		// ?offset=<size> and an empty body to resubmit without resending.
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":  submitErr.Error(),
			"offset": rec.Bytes,
		})
		return
	}
	s.opts.Logf("server: %s ingesting KB %q (%s, %d bytes spooled)", j.ID, name, format, rec.Bytes)
	writeJSON(w, http.StatusAccepted, j)
}

// handleKBs implements GET /v1/kbs: every committed KB and partial upload.
func (s *Server) handleKBs(w http.ResponseWriter, _ *http.Request) {
	ents, err := os.ReadDir(s.kbsDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	kbs := make([]KBInfo, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if strings.HasSuffix(e.Name(), partialSuffix) {
			kbs = append(kbs, KBInfo{
				Name:   strings.TrimSuffix(e.Name(), partialSuffix),
				State:  "partial",
				Bytes:  fi.Size(),
				Offset: fi.Size(),
			})
			continue
		}
		kbs = append(kbs, KBInfo{
			Name:  kbBaseName(e.Name()),
			State: "ready",
			File:  filepath.Join(s.kbsDir(), e.Name()),
			Bytes: fi.Size(),
		})
	}
	sort.Slice(kbs, func(i, j int) bool { return kbs[i].Name < kbs[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"kbs": kbs})
}

// kbCandidatePaths are the committed paths a named upload may live under,
// one per accepted format, in the resolution order of resolveKBRef.
func (s *Server) kbCandidatePaths(name string) []string {
	paths := make([]string, 0, 4)
	for _, ext := range []string{".nt", ".nt.gz", ".ntriples", ".ntriples.gz"} {
		paths = append(paths, filepath.Join(s.kbsDir(), name+ext))
	}
	return paths
}

// handleDeleteKB implements DELETE /v1/kbs/{name}: remove a committed KB
// and/or its upload spool. It refuses with 409 while a request is streaming
// into the spool or a queued/running job references the KB (deleting the
// input of 202-acknowledged work would doom it), and answers 404 when
// neither a committed file nor a spool exists.
func (s *Server) handleDeleteKB(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnShard(w) {
		return
	}
	name := r.PathValue("name")
	if !kbNameRE.MatchString(name) {
		httpError(w, http.StatusBadRequest, "name must match %s", kbNameRE)
		return
	}
	// The upload lock covers the spool and the commit rename, so a delete
	// can never race a writer on the same name.
	if !s.lockUpload(name) {
		httpError(w, http.StatusConflict, "an upload or ingest of %q is in progress", name)
		return
	}
	defer s.unlockUpload(name)
	candidates := s.kbCandidatePaths(name)
	if s.jobs.kbInUse(name, candidates) {
		httpError(w, http.StatusConflict, "KB %q is referenced by a queued or running job", name)
		return
	}
	var removed []string
	for _, p := range append(candidates, s.kbPartialPath(name)) {
		switch err := os.Remove(p); {
		case err == nil:
			removed = append(removed, filepath.Base(p))
		case !errors.Is(err, os.ErrNotExist):
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	if len(removed) == 0 {
		httpError(w, http.StatusNotFound, "no uploaded KB named %q", name)
		return
	}
	s.opts.Logf("server: deleted KB %q (%s)", name, strings.Join(removed, ", "))
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "files": removed})
}

// gcSpool removes upload spools whose last write is older than SpoolTTL.
// It runs once at startup, before the HTTP surface exists (so no spool can
// be in flight): an interrupted upload stays resumable for the TTL, after
// which its partial bytes are garbage no client will claim.
func (s *Server) gcSpool() {
	if s.opts.SpoolTTL <= 0 {
		return
	}
	ents, err := os.ReadDir(s.kbsDir())
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-s.opts.SpoolTTL)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), partialSuffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil || fi.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(filepath.Join(s.kbsDir(), e.Name())); err == nil {
			s.opts.Logf("server: spool gc: removed abandoned upload %s (%d bytes, idle since %s)",
				e.Name(), fi.Size(), fi.ModTime().UTC().Format(time.RFC3339))
		}
	}
}

// kbBaseName strips the upload format extensions off a committed file name.
func kbBaseName(file string) string {
	lower := strings.ToLower(file)
	for _, ext := range []string{".nt.gz", ".ntriples.gz", ".nt", ".ntriples"} {
		if strings.HasSuffix(lower, ext) {
			return file[:len(file)-len(ext)]
		}
	}
	return file
}

// resolveKBRef resolves a "kb:<name>" reference in a job request to the
// committed upload's path, so clients can align pushed KBs without knowing
// the server's directory layout. Anything else passes through as a plain
// server-side path.
func (s *Server) resolveKBRef(ref string) (string, error) {
	name, ok := strings.CutPrefix(ref, "kb:")
	if !ok {
		return ref, nil
	}
	if !kbNameRE.MatchString(name) {
		return "", fmt.Errorf("invalid KB reference %q", ref)
	}
	for _, ext := range []string{".nt", ".nt.gz", ".ntriples", ".ntriples.gz"} {
		p := filepath.Join(s.kbsDir(), name+ext)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
	}
	if _, err := os.Stat(s.kbPartialPath(name)); err == nil {
		return "", fmt.Errorf("KB %q is a partial upload; finish it first", name)
	}
	return "", fmt.Errorf("no uploaded KB named %q", name)
}

// ingestKB executes one KindIngest job on a worker: stream the spooled
// upload through the parallel pipeline (validation + triple count, per-block
// progress onto the job record), then commit the spool under its final
// name. A failed or canceled validation keeps the spool, so the bytes never
// have to be pushed twice; a corrupt dump is replaced by re-POSTing from
// offset 0.
func (s *Server) ingestKB(ctx context.Context, id string, rec UploadRecord) (string, error) {
	// The spool must not change underfoot: hold the upload lock for the
	// whole validation, so a resume POST for the same name waits its turn
	// (409 with the current offset) instead of appending to a file being
	// read — or being renamed out from under it on commit.
	if !s.lockUpload(rec.Name) {
		return "", fmt.Errorf("kb %q: another upload is in progress; retry", rec.Name)
	}
	defer s.unlockUpload(rec.Name)
	partial := s.kbPartialPath(rec.Name)
	f, err := os.Open(partial)
	if err != nil {
		return "", fmt.Errorf("upload spool: %w", err)
	}
	defer f.Close()
	// The job validates exactly the bytes its upload spooled. A resume
	// POST that landed between this job's submission and its run has
	// appended more — that resume submitted its own job with the full
	// size, so this one steps aside instead of committing a spool it did
	// not see whole.
	if fi, err := f.Stat(); err != nil {
		return "", fmt.Errorf("upload spool: %w", err)
	} else if fi.Size() != rec.Bytes {
		return "", fmt.Errorf("kb %q: spool is %d bytes but this upload ended at %d; superseded by a resumed upload",
			rec.Name, fi.Size(), rec.Bytes)
	}
	var r io.Reader = f
	if strings.HasSuffix(rec.Format, ".gz") {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return "", fmt.Errorf("kb %q: %w", rec.Name, err)
		}
		defer zr.Close()
		r = zr
	}
	feed := s.met.ingestFeeder()
	stats, err := ingest.Run(ctx, r, ingest.Options{
		Workers:      s.opts.IngestWorkers,
		MemoryBudget: s.opts.IngestBudget,
		TempDir:      s.opts.StateDir,
		Progress: func(p ingest.Progress) {
			feed(p)
			s.jobs.ingestProgress(id, IngestProgress{Progress: p, Phase: rec.Name})
		},
	}, func(rdf.Triple) error { return nil })
	if err != nil {
		return "", fmt.Errorf("kb %q: %w", rec.Name, err)
	}
	if stats.Triples == 0 {
		return "", fmt.Errorf("kb %q: no triples in %d bytes", rec.Name, rec.Bytes)
	}
	committed := filepath.Join(s.kbsDir(), rec.Name+rec.Format)
	if err := os.Rename(partial, committed); err != nil {
		return "", err
	}
	s.jobs.setKB(id, committed)
	s.opts.Logf("server: %s committed KB %q: %d triples in %d blocks (%d skipped)",
		id, rec.Name, stats.Triples, stats.Blocks, stats.Skipped)
	return committed, nil
}

// lockUpload marks an upload name busy; it returns false when another
// request is already streaming into the same spool.
func (s *Server) lockUpload(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.uploads == nil {
		s.uploads = make(map[string]bool)
	}
	if s.uploads[name] {
		return false
	}
	s.uploads[name] = true
	return true
}

func (s *Server) unlockUpload(name string) {
	s.mu.Lock()
	delete(s.uploads, name)
	s.mu.Unlock()
}
