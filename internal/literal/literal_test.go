package literal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestIdentityNormalizer(t *testing.T) {
	if Identity(rdf.TypedLiteral("42", rdf.XSDInteger)) != "42" {
		t.Fatal("Identity should drop datatype decoration")
	}
}

func TestAlphaNum(t *testing.T) {
	cases := map[string]string{
		"213/467-1108":    "2134671108",
		"213-467-1108":    "2134671108",
		"Art's Deli":      "artsdeli",
		"ART'S DELI":      "artsdeli",
		"  spaced  out ":  "spacedout",
		"héllo-wörld":     "héllowörld",
		"":                "",
		"!!!":             "",
		"MiXeD 123 CaSe!": "mixed123case",
	}
	for in, want := range cases {
		if got := AlphaNum(rdf.Literal(in)); got != want {
			t.Errorf("AlphaNum(%q) = %q, want %q", in, got, want)
		}
	}
	// The paper's phone example: the two formats must collide.
	if AlphaNumString("213/467-1108") != AlphaNumString("213-467-1108") {
		t.Fatal("phone formats must normalize identically")
	}
}

func TestNumericNormalizer(t *testing.T) {
	a := Numeric(rdf.TypedLiteral("8900000", rdf.XSDInteger))
	b := Numeric(rdf.TypedLiteral("8.9e6", rdf.XSDDouble))
	c := Numeric(rdf.Literal("8900000.0"))
	if a != b || b != c {
		t.Fatalf("numeric forms differ: %q %q %q", a, b, c)
	}
	if Numeric(rdf.Literal("not a number")) != "not a number" {
		t.Fatal("non-numeric literal should pass through")
	}
}

func TestChain(t *testing.T) {
	n := Chain(Numeric, AlphaNum)
	if got := n(rdf.Literal("1.5E3")); got != "1500" {
		t.Fatalf("chained = %q, want 1500", got)
	}
}

func TestExact(t *testing.T) {
	if (Exact{}).Sim("a", "a") != 1 || (Exact{}).Sim("a", "b") != 0 {
		t.Fatal("Exact broken")
	}
}

func TestLevenshteinDistance(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"日本語", "日本", 1},
	}
	for _, tc := range cases {
		if got := EditDistance([]rune(tc.a), []rune(tc.b)); got != tc.d {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.d)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	l := Levenshtein{}
	if l.Sim("same", "same") != 1 {
		t.Fatal("identical strings must score 1")
	}
	got := l.Sim("kitten", "sitting")
	want := 1 - 3.0/7
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sim = %v, want %v", got, want)
	}
	floor := Levenshtein{MinSim: 0.9}
	if floor.Sim("kitten", "sitting") != 0 {
		t.Fatal("similarity below floor must clamp to 0")
	}
}

func TestNumericProximity(t *testing.T) {
	n := NumericProximity{}
	if n.Sim("100", "100") != 1 {
		t.Fatal("equal numbers score 1")
	}
	if n.Sim("100", "200") != 0 {
		t.Fatal("100 vs 200 should be 0 at 10% tolerance")
	}
	got := n.Sim("100", "105")
	want := 1 - 5.0/(0.1*105)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sim = %v, want %v", got, want)
	}
	if n.Sim("abc", "abc") != 1 || n.Sim("abc", "abd") != 0 {
		t.Fatal("non-numeric fallback broken")
	}
	if n.Sim("0", "0.0") != 1 {
		t.Fatal("0 == 0.0")
	}
}

func TestChecksum(t *testing.T) {
	c := Checksum{}
	if c.Sim("078-05-1120", "078051120") != 1 {
		t.Fatal("format-only difference must score 1")
	}
	if got := c.Sim("078051120", "078051121"); got != 0.9 {
		t.Fatalf("single substitution = %v, want 0.9", got)
	}
	if got := c.Sim("078051120", "078051210"); got != 0.9 {
		t.Fatalf("adjacent transposition = %v, want 0.9", got)
	}
	if c.Sim("078051120", "999999999") != 0 {
		t.Fatal("unrelated ids must score 0")
	}
	if c.Sim("abc", "abcd") != 0 {
		t.Fatal("length mismatch must score 0")
	}
}

// Property: all comparators are symmetric, bounded, and reflexive.
func TestQuickComparatorAxioms(t *testing.T) {
	comparators := []Comparator{
		Exact{}, Levenshtein{}, Levenshtein{MinSim: 0.5},
		NumericProximity{}, NumericProximity{Tolerance: 0.5}, Checksum{},
	}
	f := func(a, b string) bool {
		for _, c := range comparators {
			ab, ba := c.Sim(a, b), c.Sim(b, a)
			if math.Abs(ab-ba) > 1e-9 {
				return false
			}
			if ab < 0 || ab > 1 {
				return false
			}
			if c.Sim(a, a) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func buildOnt(t *testing.T, lits *store.Literals, norm store.Normalizer, values ...string) *store.Ontology {
	t.Helper()
	b := store.NewBuilder("t", lits, norm)
	for i, v := range values {
		subj := rdf.IRI("http://ex.org/s" + string(rune('a'+i)))
		if err := b.Add(rdf.T(subj, rdf.IRI("http://ex.org/name"), rdf.Literal(v))); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestIdentityMatcher(t *testing.T) {
	lits := store.NewLiterals()
	o := buildOnt(t, lits, nil, "Ann", "Bob")
	foreign := lits.Intern("Carol") // interned but absent from o
	m := IdentityMatcher{Target: o}
	ann, _ := lits.Lookup("Ann")
	got := m.Candidates(ann)
	if len(got) != 1 || got[0].Lit != ann || got[0].P != 1 {
		t.Fatalf("candidates = %v", got)
	}
	if m.Candidates(foreign) != nil {
		t.Fatal("literal absent from target must have no candidates")
	}
}

func TestIndexFuzzyMatch(t *testing.T) {
	lits := store.NewLiterals()
	o := buildOnt(t, lits, nil, "Sanshiro Sugata", "Out 1", "Casablanca")
	// Block by first letter of the alphanumeric form so transliteration
	// variants land in the same bucket only if they share it; here we use a
	// constant block to compare all (dataset is tiny).
	ix := NewIndex(o, func(string) string { return "" }, Levenshtein{MinSim: 0.5}, WithMaxCandidates(2))
	q := lits.Intern("Sanshiro Sugato")
	got := ix.Candidates(q)
	if len(got) == 0 {
		t.Fatal("no candidates for near-identical title")
	}
	best := got[0]
	if lits.Value(best.Lit) != "Sanshiro Sugata" {
		// maxCand sorting puts best first only when over cap; find it.
		found := false
		for _, w := range got {
			if lits.Value(w.Lit) == "Sanshiro Sugata" && w.P > 0.9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("expected high-sim match, got %v", got)
		}
	}
}

func TestIndexBlocksSeparateBuckets(t *testing.T) {
	lits := store.NewLiterals()
	o := buildOnt(t, lits, nil, "apple", "apricot", "banana")
	ix := NewIndex(o, func(s string) string {
		if s == "" {
			return ""
		}
		return s[:1]
	}, Levenshtein{}, nil...)
	q := lits.Intern("aple")
	for _, w := range ix.Candidates(q) {
		if lits.Value(w.Lit)[0] != 'a' {
			t.Fatalf("candidate from wrong block: %v", lits.Value(w.Lit))
		}
	}
	missing := lits.Intern("zebra")
	if got := ix.Candidates(missing); got != nil {
		t.Fatalf("empty block should yield nil, got %v", got)
	}
}
