package literal

import "strings"

// JaroWinkler scores two strings with the Jaro-Winkler similarity, the
// classic record-linkage measure for short name-like strings (the lineage
// PARIS inherits from, Section 2 of the paper). It is symmetric, in [0, 1],
// and 1 for identical strings.
type JaroWinkler struct {
	// PrefixScale is the Winkler prefix bonus factor; zero means the
	// conventional 0.1. Values above 0.25 are clamped to keep the score
	// within [0, 1].
	PrefixScale float64
	// MinSim truncates scores below the floor to 0.
	MinSim float64
}

// Sim implements Comparator.
func (j JaroWinkler) Sim(a, b string) float64 {
	sim := j.score([]rune(a), []rune(b))
	if sim < j.MinSim {
		return 0
	}
	return sim
}

func (j JaroWinkler) score(a, b []rune) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	window := len(a)
	if len(b) > window {
		window = len(b)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(a))
	matchB := make([]bool, len(b))
	matches := 0
	for i, ra := range a {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(b) {
			hi = len(b)
		}
		for k := lo; k < hi; k++ {
			if !matchB[k] && b[k] == ra {
				matchA[i] = true
				matchB[k] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions: matched characters out of order.
	transpositions := 0
	k := 0
	for i := range a {
		if !matchA[i] {
			continue
		}
		for !matchB[k] {
			k++
		}
		if a[i] != b[k] {
			transpositions++
		}
		k++
	}
	m := float64(matches)
	jaro := (m/float64(len(a)) + m/float64(len(b)) + (m-float64(transpositions)/2)/m) / 3

	// Winkler prefix bonus, up to 4 shared leading characters.
	scale := j.PrefixScale
	if scale == 0 {
		scale = 0.1
	}
	if scale > 0.25 {
		scale = 0.25
	}
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return jaro + float64(prefix)*scale*(1-jaro)
}

// DateProximity compares date literals: identical calendar dates score 1
// even across the common "YYYY-MM-DD" and "DD/MM/YYYY" renderings, dates in
// the same year score YearSim, everything else 0. It repairs exactly the
// cross-KB date-format divergence that defeats plain string identity
// (Section 5.3's "datatype conversions").
type DateProximity struct {
	// YearSim is the score for same-year, different-day dates. Zero means
	// 0 (no partial credit).
	YearSim float64
}

// Sim implements Comparator.
func (d DateProximity) Sim(a, b string) float64 {
	ya, ma, da, okA := parseDate(a)
	yb, mb, db, okB := parseDate(b)
	if !okA || !okB {
		return Exact{}.Sim(a, b)
	}
	if ya == yb && ma == mb && da == db {
		return 1
	}
	if ya == yb {
		return d.YearSim
	}
	return 0
}

// parseDate accepts "YYYY-MM-DD" and "DD/MM/YYYY".
func parseDate(s string) (year, month, day string, ok bool) {
	s = strings.TrimSpace(s)
	switch {
	case len(s) == 10 && s[4] == '-' && s[7] == '-':
		return s[0:4], s[5:7], s[8:10], allDigits(s[0:4], s[5:7], s[8:10])
	case len(s) == 10 && s[2] == '/' && s[5] == '/':
		return s[6:10], s[3:5], s[0:2], allDigits(s[6:10], s[3:5], s[0:2])
	default:
		return "", "", "", false
	}
}

func allDigits(parts ...string) bool {
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			if p[i] < '0' || p[i] > '9' {
				return false
			}
		}
	}
	return true
}
