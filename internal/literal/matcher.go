package literal

import (
	"sort"

	"repro/internal/store"
)

// Weighted is a candidate literal of the target ontology together with the
// clamped probability that it equals the query literal.
type Weighted struct {
	Lit store.Lit
	P   float64
}

// Matcher produces, for a literal of one ontology, the literals of the
// target ontology it could be equal to, with clamped probabilities
// (Section 5.3). Implementations must be safe for concurrent use.
type Matcher interface {
	Candidates(l store.Lit) []Weighted
}

// IdentityMatcher is the paper's default matcher: a literal is equal only to
// itself (probability 1), and only if the target ontology uses it too.
// Because both ontologies intern into a shared (normalized) literal table,
// this is a constant-time check.
type IdentityMatcher struct {
	Target *store.Ontology
}

// Candidates implements Matcher.
func (m IdentityMatcher) Candidates(l store.Lit) []Weighted {
	if !m.Target.HasLiteral(l) {
		return nil
	}
	return []Weighted{{Lit: l, P: 1}}
}

// Index is a fuzzy matcher: literals of the target ontology are blocked by a
// key function, and literals sharing a block are scored with a Comparator.
// It generalizes the identity matcher to edit-distance or numeric-proximity
// equality without comparing all pairs.
type Index struct {
	target  *store.Ontology
	cmp     Comparator
	minSim  float64
	block   func(string) string
	buckets map[string][]store.Lit
	maxCand int
}

// IndexOption configures an Index.
type IndexOption func(*Index)

// WithMinSim sets the similarity floor below which candidates are dropped.
func WithMinSim(min float64) IndexOption {
	return func(ix *Index) { ix.minSim = min }
}

// WithMaxCandidates caps the number of candidates returned per literal
// (highest similarity first). Zero means no cap.
func WithMaxCandidates(n int) IndexOption {
	return func(ix *Index) { ix.maxCand = n }
}

// NewIndex builds a fuzzy matcher over all literals occurring in target.
// block maps a literal value to its blocking key (e.g. AlphaNumString, or a
// length-truncated prefix); literals are only compared within a block. cmp
// scores pairs; nil defaults to Exact.
func NewIndex(target *store.Ontology, block func(string) string, cmp Comparator, opts ...IndexOption) *Index {
	if block == nil {
		block = func(s string) string { return s }
	}
	if cmp == nil {
		cmp = Exact{}
	}
	ix := &Index{
		target:  target,
		cmp:     cmp,
		minSim:  1e-9,
		block:   block,
		buckets: make(map[string][]store.Lit),
	}
	for _, opt := range opts {
		opt(ix)
	}
	lits := target.Literals()
	for id := 0; id < lits.Len(); id++ {
		l := store.Lit(id)
		if !target.HasLiteral(l) {
			continue
		}
		key := block(lits.Value(l))
		ix.buckets[key] = append(ix.buckets[key], l)
	}
	return ix
}

// Candidates implements Matcher.
func (ix *Index) Candidates(l store.Lit) []Weighted {
	value := ix.target.Literals().Value(l)
	key := ix.block(value)
	bucket := ix.buckets[key]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]Weighted, 0, len(bucket))
	for _, cand := range bucket {
		sim := ix.cmp.Sim(value, ix.target.Literals().Value(cand))
		if sim >= ix.minSim {
			out = append(out, Weighted{Lit: cand, P: sim})
		}
	}
	if ix.maxCand > 0 && len(out) > ix.maxCand {
		sort.Slice(out, func(i, j int) bool { return out[i].P > out[j].P })
		out = out[:ix.maxCand]
	}
	return out
}
