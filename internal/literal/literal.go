// Package literal implements the literal-equivalence functions of Section
// 5.3 of the PARIS paper. The probability that two literals are equal is
// known a priori and clamped: it never changes during the fixpoint
// iteration.
//
// Two mechanisms are provided, mirroring the paper:
//
//   - Normalizers map a literal to the canonical string under which it is
//     interned, so that "identical after normalization" becomes identity on
//     literal IDs (the paper's own implementation strategy).
//   - Comparators score the similarity of two literal strings in [0, 1] and
//     back fuzzy matchers for applications that need more than identity.
package literal

import (
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Identity returns the lexical form unchanged, dropping datatype and
// language decoration. This is the paper's default equality: probability 1
// iff the lexical forms are identical, 0 otherwise.
func Identity(t rdf.Term) string { return t.Value }

// AlphaNum lowercases the lexical form and removes every non-alphanumeric
// character. This is the "different string equality measure" of Section 6.3
// that lifts the restaurant experiment to 100% precision: it makes
// "213/467-1108" and "213-467-1108" identical.
func AlphaNum(t rdf.Term) string {
	return AlphaNumString(t.Value)
}

// AlphaNumString applies the AlphaNum normalization to a raw string.
func AlphaNumString(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		}
	}
	return b.String()
}

// Numeric canonicalizes numeric literals so that "8900000", "8900000.0" and
// "8.9e6" intern to the same string; non-numeric literals fall back to
// Identity. It implements the paper's "normalize numeric values by removing
// all data type or dimension information".
func Numeric(t rdf.Term) string {
	return NumericString(t.Value)
}

// NumericString applies the Numeric normalization to a raw string.
func NumericString(s string) string {
	trimmed := strings.TrimSpace(s)
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return s
}

// Chain composes normalizers left to right.
func Chain(ns ...func(rdf.Term) string) func(rdf.Term) string {
	return func(t rdf.Term) string {
		for _, n := range ns {
			t = rdf.Literal(n(t))
		}
		return t.Value
	}
}

// Comparator scores the similarity of two literal strings. Implementations
// must be symmetric, return values in [0, 1], and score 1 for identical
// strings.
type Comparator interface {
	Sim(a, b string) float64
}

// Exact scores 1 for identical strings and 0 otherwise.
type Exact struct{}

// Sim implements Comparator.
func (Exact) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// Levenshtein scores two strings as 1 - d/max(len) where d is the edit
// distance, i.e. "inverse proportional to their edit distance" (Section
// 5.3). Similarities below MinSim are truncated to 0 so that wildly
// different strings contribute no evidence.
type Levenshtein struct {
	// MinSim is the similarity floor; scores below it become 0.
	// A zero value means no floor.
	MinSim float64
}

// Sim implements Comparator.
func (l Levenshtein) Sim(a, b string) float64 {
	if a == b {
		return 1
	}
	ra, rb := []rune(a), []rune(b)
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	d := EditDistance(ra, rb)
	sim := 1 - float64(d)/float64(maxLen)
	if sim < l.MinSim {
		return 0
	}
	return sim
}

// EditDistance computes the Levenshtein distance between two rune slices
// using the two-row dynamic program.
func EditDistance(a, b []rune) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// NumericProximity scores two numeric strings as a function of their
// proportional difference: sim = max(0, 1 - |a-b| / (Tolerance * max(|a|,|b|))).
// Non-numeric inputs score with Exact. This realizes the paper's "function
// of their proportional difference" for values of the same dimension.
type NumericProximity struct {
	// Tolerance is the proportional difference at which similarity reaches
	// 0. A zero value defaults to 0.1 (10%).
	Tolerance float64
}

// Sim implements Comparator.
func (n NumericProximity) Sim(a, b string) float64 {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA != nil || errB != nil {
		return Exact{}.Sim(a, b)
	}
	if fa == fb {
		return 1
	}
	tol := n.Tolerance
	if tol == 0 {
		tol = 0.1
	}
	den := abs(fa)
	if abs(fb) > den {
		den = abs(fb)
	}
	if den == 0 {
		return 0
	}
	sim := 1 - abs(fa-fb)/(tol*den)
	if sim < 0 {
		return 0
	}
	return sim
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Checksum scores identifier-like strings (social security numbers, ISBNs,
// phone numbers) robustly against common misspellings: it strips all
// non-alphanumeric characters and then tolerates a single substituted
// character or a single transposition, the two errors checksum schemes are
// designed to catch (Section 5.3).
type Checksum struct{}

// Sim implements Comparator.
func (Checksum) Sim(a, b string) float64 {
	na, nb := AlphaNumString(a), AlphaNumString(b)
	if na == nb {
		return 1
	}
	if len(na) != len(nb) || len(na) == 0 {
		return 0
	}
	// Single substitution.
	diff := 0
	firstDiff := -1
	for i := 0; i < len(na); i++ {
		if na[i] != nb[i] {
			if diff == 0 {
				firstDiff = i
			}
			diff++
			if diff > 2 {
				return 0
			}
		}
	}
	if diff == 1 {
		return 0.9
	}
	// Adjacent transposition.
	if diff == 2 && firstDiff+1 < len(na) &&
		na[firstDiff] == nb[firstDiff+1] && na[firstDiff+1] == nb[firstDiff] {
		return 0.9
	}
	return 0
}
