package literal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaroWinklerKnownValues(t *testing.T) {
	j := JaroWinkler{}
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.9611},
		{"DIXON", "DICKSONX", 0.8133},
		{"JELLYFISH", "SMELLYFISH", 0.8962}, // no common prefix: plain Jaro
		{"same", "same", 1},
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abc", "xyz", 0},
	}
	for _, tc := range cases {
		got := j.Sim(tc.a, tc.b)
		if math.Abs(got-tc.want) > 0.001 {
			t.Errorf("JaroWinkler(%q,%q) = %.4f, want %.4f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaroWinklerPrefixBonus(t *testing.T) {
	plain := JaroWinkler{PrefixScale: 0.0001} // effectively no bonus
	boosted := JaroWinkler{PrefixScale: 0.25}
	a, b := "prefixed-one", "prefixed-two"
	if boosted.Sim(a, b) <= plain.Sim(a, b) {
		t.Fatal("prefix bonus had no effect")
	}
	clamped := JaroWinkler{PrefixScale: 5} // must clamp, not exceed 1
	if s := clamped.Sim(a, b); s > 1 {
		t.Fatalf("score above 1: %v", s)
	}
}

func TestJaroWinklerMinSim(t *testing.T) {
	j := JaroWinkler{MinSim: 0.95}
	if j.Sim("DIXON", "DICKSONX") != 0 {
		t.Fatal("floor not applied")
	}
}

func TestQuickJaroWinklerAxioms(t *testing.T) {
	j := JaroWinkler{}
	f := func(a, b string) bool {
		ab, ba := j.Sim(a, b), j.Sim(b, a)
		if math.Abs(ab-ba) > 1e-9 {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		return j.Sim(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDateProximity(t *testing.T) {
	d := DateProximity{YearSim: 0.3}
	cases := []struct {
		a, b string
		want float64
	}{
		{"1935-01-08", "1935-01-08", 1},
		{"1935-01-08", "08/01/1935", 1}, // format divergence repaired
		{"08/01/1935", "1935-01-08", 1},
		{"1935-01-08", "1935-06-20", 0.3}, // same year
		{"1935-01-08", "1999-01-08", 0},
		{"not a date", "not a date", 1}, // Exact fallback
		{"not a date", "other thing", 0},
		{"1935-01-08", "garbage", 0},
	}
	for _, tc := range cases {
		if got := d.Sim(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DateProximity(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	strict := DateProximity{}
	if strict.Sim("1935-01-08", "1935-06-20") != 0 {
		t.Fatal("zero YearSim should give no partial credit")
	}
}

func TestParseDateRejectsMalformed(t *testing.T) {
	bad := []string{"1935-1-08", "1935/01/08", "aa/bb/cccc", "1935-01-0x", "  "}
	for _, s := range bad {
		if _, _, _, ok := parseDate(s); ok {
			t.Errorf("parseDate(%q) accepted", s)
		}
	}
	if _, _, _, ok := parseDate(" 1935-01-08 "); !ok {
		t.Error("surrounding whitespace should be tolerated")
	}
}
