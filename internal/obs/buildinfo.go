package obs

// Build identity. Federated metrics from a mixed-version fleet are
// misleading unless each instance declares what it is running, so every
// registry carries one paris_build_info gauge (constant 1, the Prometheus
// idiom for info metrics) labeled with the module version, the VCS
// revision, and the Go toolchain — and every binary answers -version with
// the same line.

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the process's build identity as read from the embedded
// runtime/debug info.
type BuildInfo struct {
	Version   string // module version ("(devel)" for local builds)
	Revision  string // VCS revision, "unknown" when not stamped
	GoVersion string
}

// ReadBuildInfo resolves the running binary's build identity.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{Version: "(devel)", Revision: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			info.Revision = s.Value
			if len(info.Revision) > 12 {
				info.Revision = info.Revision[:12]
			}
		}
	}
	return info
}

// RegisterBuildInfo adds the paris_build_info gauge to a registry. The
// family name is the same in every process (server, router, tools) so a
// federated scrape can group by version across the whole fleet.
func RegisterBuildInfo(reg *Registry) {
	bi := ReadBuildInfo()
	reg.GaugeVec("paris_build_info",
		"Build identity of this process; constant 1, labeled with version, VCS revision, and Go toolchain.",
		"version", "revision", "goversion").
		With(bi.Version, bi.Revision, bi.GoVersion).Set(1)
}

// VersionLine renders the -version output for a binary.
func VersionLine(binary string) string {
	bi := ReadBuildInfo()
	return fmt.Sprintf("%s version %s (rev %s, %s)", binary, bi.Version, bi.Revision, bi.GoVersion)
}
