package obs

// Metrics federation. Every process serves its own /metrics; this file
// gives the router one view over all of them: a Federator scrapes each
// replica's exposition concurrently (bounded fan-out, a timeout per target,
// partial results when replicas are down), a small parser turns the text
// format back into families, and WriteFleetExposition re-renders the union
// with instance/group/replica labels injected on every sample plus
// fleet-level summed counter families under a "fleet:" prefix (the
// recording-rule naming convention, so the sums cannot collide with any
// scraped name). A dead replica becomes paris_fleet_up 0 and an entry in
// the failures list — scraping a degraded fleet is a normal, successful
// operation, not an error.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ScrapeTarget is one process the federator reads. Reg set means "scrape
// in-process" (the router includes its own registry that way); otherwise
// URL is fetched over HTTP. Group/Replica of -1 mean "not a fleet member"
// (the router itself) and suppress those labels.
type ScrapeTarget struct {
	Instance string
	Group    int
	Replica  int
	URL      string    // full metrics URL; ignored when Reg is set
	Reg      *Registry // local registry, scraped without HTTP
	Healthy  bool      // the caller's health view, echoed into stats
}

// ScrapeFailure reports one target that could not be scraped.
type ScrapeFailure struct {
	Instance string `json:"instance"`
	URL      string `json:"url,omitempty"`
	Error    string `json:"error"`
}

// ScrapeResult is one target's parsed exposition, or the error that
// prevented it.
type ScrapeResult struct {
	Target   ScrapeTarget
	Families []ParsedFamily
	Err      error
}

// Value returns the value of the family's first sample, ok=false when the
// family is absent — the accessor for single-sample gauges and counters
// (go_goroutines, lookups_total).
func (r ScrapeResult) Value(family string) (float64, bool) {
	for _, f := range r.Families {
		if f.Name == family && len(f.Samples) > 0 {
			return f.Samples[0].Value, true
		}
	}
	return 0, false
}

// Sum sums every plain sample of the family (children of a labeled
// counter/gauge; histogram _bucket/_sum/_count lines are excluded).
func (r ScrapeResult) Sum(family string) float64 {
	var sum float64
	for _, f := range r.Families {
		if f.Name != family {
			continue
		}
		for _, s := range f.Samples {
			if s.Name == f.Name {
				sum += s.Value
			}
		}
	}
	return sum
}

// Federator scrapes a set of targets concurrently. The zero value is
// usable: http.DefaultClient, 2s per target, 8 in flight.
type Federator struct {
	Client      *http.Client
	Timeout     time.Duration // per target (default 2s)
	Concurrency int           // concurrent scrapes (default 8)
}

// Scrape fetches and parses every target, in input order. Failed targets
// come back with Err set and nil Families; the call itself never fails.
func (f *Federator) Scrape(ctx context.Context, targets []ScrapeTarget) []ScrapeResult {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conc := f.Concurrency
	if conc <= 0 {
		conc = 8
	}
	results := make([]ScrapeResult, len(targets))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt ScrapeTarget) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = scrapeOne(ctx, client, timeout, tgt)
		}(i, tgt)
	}
	wg.Wait()
	return results
}

func scrapeOne(ctx context.Context, client *http.Client, timeout time.Duration, tgt ScrapeTarget) ScrapeResult {
	res := ScrapeResult{Target: tgt}
	if tgt.Reg != nil {
		var b strings.Builder
		tgt.Reg.WriteText(&b)
		res.Families, res.Err = ParseExposition(strings.NewReader(b.String()))
		return res
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, tgt.URL, nil)
	if err != nil {
		res.Err = err
		return res
	}
	resp, err := client.Do(req)
	if err != nil {
		res.Err = err
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		res.Err = fmt.Errorf("scrape %s: http %d", tgt.URL, resp.StatusCode)
		return res
	}
	res.Families, res.Err = ParseExposition(resp.Body)
	return res
}

// Failures extracts the scrape failures from a result set.
func Failures(results []ScrapeResult) []ScrapeFailure {
	var out []ScrapeFailure
	for _, r := range results {
		if r.Err != nil {
			out = append(out, ScrapeFailure{Instance: r.Target.Instance, URL: r.Target.URL, Error: r.Err.Error()})
		}
	}
	return out
}

// ParsedSample is one exposition sample line. Name is the full sample name
// — the family name, plus _bucket/_sum/_count for histogram lines. Labels
// is the rendered label block including braces, "" when unlabeled.
type ParsedSample struct {
	Name   string
	Labels string
	Value  float64
}

// ParsedFamily is one metric family read back from text exposition.
type ParsedFamily struct {
	Name, Help, Type string
	Samples          []ParsedSample
}

// ParseExposition parses Prometheus text format as written by
// Registry.WriteText (and by any conforming exporter): # HELP / # TYPE
// comments open a family, sample lines carry an optional quoted-label block
// and a float value. Unknown comment lines are skipped; a malformed sample
// line is an error.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	var fams []ParsedFamily
	byName := make(map[string]int)
	fam := func(name string) *ParsedFamily {
		if i, ok := byName[name]; ok {
			return &fams[i]
		}
		byName[name] = len(fams)
		fams = append(fams, ParsedFamily{Name: name, Type: "untyped"})
		return &fams[len(fams)-1]
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var cur string // current family name from the last HELP/TYPE
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := fam(fields[2])
				cur = fields[2]
				if fields[1] == "HELP" && len(fields) == 4 {
					f.Help = fields[3]
				} else if fields[1] == "TYPE" && len(fields) == 4 {
					f.Type = fields[3]
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		owner := s.Name
		if cur != "" && strings.HasPrefix(s.Name, cur) {
			owner = cur // histogram _bucket/_sum/_count lines
		}
		f := fam(owner)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parseSampleLine splits `name{labels} value` (or `name value`) with
// quote-aware label scanning, so label values containing spaces or braces
// parse correctly.
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = line[:brace]
		end := -1
		inQuote := false
		for i := brace + 1; i < len(line); i++ {
			switch c := line[i]; {
			case inQuote && c == '\\':
				i++ // skip the escaped byte
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("obs: unterminated label block: %q", line)
		}
		s.Labels = line[brace : end+1]
		line = strings.TrimSpace(line[end+1:])
	} else {
		if space < 0 {
			return s, fmt.Errorf("obs: malformed sample line: %q", line)
		}
		s.Name = line[:space]
		line = strings.TrimSpace(line[space+1:])
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		line = line[:i] // drop an optional timestamp
	}
	v, err := strconv.ParseFloat(line, 64)
	if err != nil {
		return s, fmt.Errorf("obs: bad sample value in %q: %v", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// FleetUpFamily is the synthesized per-target liveness family in the fleet
// exposition: 1 when the target's scrape succeeded, 0 when it failed.
const FleetUpFamily = "paris_fleet_up"

// WriteFleetExposition renders the union of a scrape: every family from
// every reachable target with instance (and, for fleet members, group and
// replica) labels injected on each sample, a paris_fleet_up liveness gauge
// per target, and a fleet:<name> summed family per counter. Families sort
// by name and samples keep target order, so the output is deterministic
// for a fixed fleet state.
func WriteFleetExposition(w io.Writer, results []ScrapeResult) {
	type outFam struct {
		help, typ string
		lines     []string
	}
	fams := make(map[string]*outFam)
	get := func(name, help, typ string) *outFam {
		f, ok := fams[name]
		if !ok {
			f = &outFam{help: help, typ: typ}
			fams[name] = f
		}
		return f
	}
	counterSums := make(map[string]float64)
	counterHelp := make(map[string]string)

	up := get(FleetUpFamily, "1 if the target's metrics scrape succeeded.", "gauge")
	for _, r := range results {
		inject := targetLabels(r.Target)
		val := "1"
		if r.Err != nil {
			val = "0"
		}
		up.lines = append(up.lines, fmt.Sprintf("%s{%s} %s", FleetUpFamily, inject, val))
		for _, pf := range r.Families {
			f := get(pf.Name, pf.Help, pf.Type)
			for _, s := range pf.Samples {
				f.lines = append(f.lines, s.Name+mergeLabels(inject, s.Labels)+" "+formatFloat(s.Value))
				if pf.Type == "counter" && s.Name == pf.Name {
					counterSums[pf.Name] += s.Value
					counterHelp[pf.Name] = pf.Help
				}
			}
		}
	}
	for name, sum := range counterSums {
		f := get("fleet:"+name, "Fleet-wide sum of "+name+".", "counter")
		f.lines = append(f.lines, "fleet:"+name+" "+formatFloat(sum))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ)
		for _, l := range f.lines {
			fmt.Fprintln(w, l)
		}
	}
}

// targetLabels renders the injected identity labels (no braces).
func targetLabels(t ScrapeTarget) string {
	var b strings.Builder
	b.WriteString(`instance="`)
	b.WriteString(escapeLabel(t.Instance))
	b.WriteByte('"')
	if t.Group >= 0 {
		fmt.Fprintf(&b, `,group="%d"`, t.Group)
	}
	if t.Replica >= 0 {
		fmt.Fprintf(&b, `,replica="%d"`, t.Replica)
	}
	return b.String()
}

// mergeLabels prepends the injected identity labels to an existing
// rendered label block.
func mergeLabels(inject, labels string) string {
	if labels == "" {
		return "{" + inject + "}"
	}
	inner := labels[1 : len(labels)-1]
	if inner == "" {
		return "{" + inject + "}"
	}
	return "{" + inject + "," + inner + "}"
}

// FleetReplicaStats is one replica's slice of the fleet stats rollup.
type FleetReplicaStats struct {
	Instance   string  `json:"instance"`
	Group      int     `json:"group"`
	Replica    int     `json:"replica"`
	URL        string  `json:"url,omitempty"`
	Healthy    bool    `json:"healthy"`
	ScrapeOK   bool    `json:"scrape_ok"`
	Error      string  `json:"error,omitempty"`
	Snapshot   string  `json:"snapshot,omitempty"`
	Goroutines float64 `json:"goroutines,omitempty"`
	HeapInUse  float64 `json:"heap_in_use_bytes,omitempty"`
	Lookups    float64 `json:"lookups_total,omitempty"`
	Requests   float64 `json:"http_requests_total,omitempty"`
}

// FleetStats is the GET /v1/fleet/stats response: the router's own
// counters plus one row per replica from the federated scrape.
type FleetStats struct {
	Instances      int                 `json:"instances"`
	Healthy        int                 `json:"healthy"`
	ScrapeFailures int                 `json:"scrape_failures"`
	Epoch          string              `json:"epoch,omitempty"`
	Hedges         uint64              `json:"hedges_total"`
	HedgeWins      uint64              `json:"hedge_wins_total"`
	Failovers      uint64              `json:"failovers_total"`
	RateLimited    uint64              `json:"rate_limited_total"`
	Replicas       []FleetReplicaStats `json:"replicas"`
}
