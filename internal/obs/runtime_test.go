package obs

// Runtime-metrics bridge tests: the families appear in the exposition with
// live values, refresh on every scrape through the OnScrape hook, and the
// GC cycle counter moves by deltas (not the process-lifetime cumulative).

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// expoValue pulls one series value out of an exposition dump.
func expoValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparsable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from exposition:\n%s", series, text)
	return 0
}

func TestRuntimeMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	NewRuntimeMetrics(reg, "testp")

	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE testp_go_goroutines gauge",
		"# TYPE testp_go_heap_inuse_bytes gauge",
		"# TYPE testp_go_heap_sys_bytes gauge",
		"# TYPE testp_go_gc_cycles_total counter",
		"# TYPE testp_go_gc_pause_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if g := expoValue(t, text, "testp_go_goroutines"); g < 1 {
		t.Errorf("goroutines %v, want >= 1", g)
	}
	if h := expoValue(t, text, "testp_go_heap_inuse_bytes"); h <= 0 {
		t.Errorf("heap in-use %v, want > 0", h)
	}
	if sys := expoValue(t, text, "testp_go_heap_sys_bytes"); sys < expoValue(t, text, "testp_go_heap_inuse_bytes") {
		t.Errorf("heap sys %v below heap in-use", sys)
	}

	// Cycles are deltas from the first scrape's baseline: forcing GCs
	// between scrapes moves the counter by at least that many cycles.
	before := expoValue(t, text, "testp_go_gc_cycles_total")
	runtime.GC()
	runtime.GC()
	b.Reset()
	reg.WriteText(&b)
	after := expoValue(t, b.String(), "testp_go_gc_cycles_total")
	if after < before+2 {
		t.Errorf("gc cycles moved %v -> %v across two forced GCs", before, after)
	}
	// The pause histogram counts those cycles' stop-the-world pauses.
	if pc := expoValue(t, b.String(), "testp_go_gc_pause_seconds_count"); pc < 1 {
		t.Errorf("gc pause count %v after forced GCs, want >= 1", pc)
	}
}
