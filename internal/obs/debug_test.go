package obs

// /debug/traces handler tests: the filter matrix (route substring, minimum
// duration, errors-only, limit), both renderings, parameter validation, and
// the ordering/dedup rules (slowest first, a retained trace never repeated
// from the recent ring).

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// tracesCollector builds a collector holding one retained slow trace
// (50ms, GET /v1/sameas, with a child span), one retained error trace
// (5ms, GET /v1/jobs), and uniform 1ms recent traffic.
func tracesCollector(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector(CollectorConfig{})
	lookup := Attr{Key: "route", Value: "GET /v1/sameas"}
	for i := 0; i < 40; i++ {
		c.Observe(span("http", "uni"+string(rune('a'+i%26))+string(rune('a'+i/26)), "a", "", 1, lookup))
	}
	c.spanStarted(Trace{TraceID: "slow1", SpanID: "root"})
	c.Observe(span("exec", "slow1", "child", "root", 40))
	c.Observe(span("http", "slow1", "root", "", 50, lookup))

	errRoot := span("http", "err1", "root", "", 5, Attr{Key: "route", Value: "GET /v1/jobs"})
	errRoot.Err = "http 500"
	c.Observe(errRoot)

	if len(c.SlowTraces()) != 1 || len(c.ErrorTraces()) != 1 {
		t.Fatalf("fixture: %d slow, %d error traces", len(c.SlowTraces()), len(c.ErrorTraces()))
	}
	return c
}

// getTraces runs one request through the handler and decodes the JSON body.
func getTraces(t *testing.T, c *Collector, query string) (int, []TraceView) {
	t.Helper()
	rr := httptest.NewRecorder()
	TracesHandler(c).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces"+query, nil))
	if rr.Code != 200 {
		return rr.Code, nil
	}
	var body struct {
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	return rr.Code, body.Traces
}

func TestTracesHandlerFilters(t *testing.T) {
	c := tracesCollector(t)

	// Unfiltered: slowest first, the retained slow trace leads with its
	// child tree and threshold, and it is not repeated as "recent".
	_, all := getTraces(t, c, "")
	if len(all) < 3 {
		t.Fatalf("unfiltered returned %d traces", len(all))
	}
	top := all[0]
	if top.TraceID != "slow1" || top.Reason != "slow" || top.DurationMS != 50 {
		t.Fatalf("top trace %+v, want slow1/slow/50ms", top)
	}
	if top.ThresholdMS != 1 {
		t.Errorf("top threshold %v, want 1", top.ThresholdMS)
	}
	if top.Root == nil || len(top.Root.Children) != 1 || top.Root.Children[0].Name != "exec" {
		t.Errorf("retained tree lost its child span: %+v", top.Root)
	}
	slowSeen := 0
	for _, v := range all {
		if v.TraceID == "slow1" {
			slowSeen++
		}
		if v.DurationMS > top.DurationMS {
			t.Errorf("ordering violated: %v ms after %v ms", v.DurationMS, top.DurationMS)
		}
	}
	if slowSeen != 1 {
		t.Errorf("slow1 appears %d times, want 1 (dedup against recent)", slowSeen)
	}

	// route= is a substring match on the family.
	_, jobs := getTraces(t, c, "?route=/v1/jobs")
	if len(jobs) != 1 || jobs[0].TraceID != "err1" {
		t.Fatalf("route filter returned %+v", jobs)
	}

	// min_ms= cuts on root duration: only the 50ms outlier survives 10ms.
	_, slow := getTraces(t, c, "?min_ms=10")
	if len(slow) != 1 || slow[0].TraceID != "slow1" {
		t.Fatalf("min_ms filter returned %+v", slow)
	}

	// errors=1 keeps only traces that errored.
	_, errs := getTraces(t, c, "?errors=1")
	if len(errs) != 1 || errs[0].TraceID != "err1" || errs[0].Reason != "error" {
		t.Fatalf("errors filter returned %+v", errs)
	}

	// limit= truncates after sorting, so the slowest survive.
	_, limited := getTraces(t, c, "?limit=2")
	if len(limited) != 2 || limited[0].TraceID != "slow1" {
		t.Fatalf("limit filter returned %+v", limited)
	}

	// Filters compose: a min_ms no recent trace reaches plus errors-only
	// leaves nothing.
	_, none := getTraces(t, c, "?errors=1&min_ms=10")
	if len(none) != 0 {
		t.Fatalf("composed filters returned %+v", none)
	}
}

func TestTracesHandlerText(t *testing.T) {
	c := tracesCollector(t)
	rr := httptest.NewRecorder()
	TracesHandler(c).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?format=text&min_ms=10", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text := rr.Body.String()
	for _, want := range []string{
		"trace slow1", "reason=slow", "dur_ms=50.000", "threshold_ms=1.000",
		"\n  http", "\n    exec", // indentation mirrors the tree
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestTracesHandlerBadParams(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	for _, q := range []string{"?min_ms=abc", "?min_ms=-1", "?errors=maybe", "?limit=0", "?limit=x"} {
		code, _ := getTraces(t, c, q)
		if code != 400 {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}
