package obs

import (
	"runtime"
	"strings"
	"testing"
)

// TestBuildInfoGauge checks the info-metric idiom: a constant-1
// paris_build_info gauge whose labels carry the build identity, plus the
// -version line every binary prints.
func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE paris_build_info gauge") {
		t.Errorf("exposition missing the build-info family:\n%s", out)
	}
	if !strings.Contains(out, `goversion="`+runtime.Version()+`"`) {
		t.Errorf("exposition missing the Go toolchain label:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("build-info gauge is not constant 1:\n%s", out)
	}

	bi := ReadBuildInfo()
	if bi.Version == "" || bi.Revision == "" || bi.GoVersion != runtime.Version() {
		t.Errorf("ReadBuildInfo() = %+v", bi)
	}
	line := VersionLine("parisd")
	if !strings.HasPrefix(line, "parisd version ") || !strings.Contains(line, bi.GoVersion) {
		t.Errorf("VersionLine = %q", line)
	}
}
