package obs

// Cross-process request tracing. A trace is born at the edge (the client
// library, or the first server that sees a request without the header) and
// rides the X-Paris-Trace header across hops: client → router → shard, or
// client → aligner. Each hop opens a span — a new span ID under the same
// trace ID, parented on the inbound span — and emits one structured log
// line when it ends, so grepping a trace ID across the fleet's logs
// reconstructs the request's path and per-hop latency without any
// collector infrastructure.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"
)

// TraceHeader carries "<trace-id>-<span-id>" between processes.
const TraceHeader = "X-Paris-Trace"

// Trace identifies one request (TraceID, shared by every hop) and one hop
// within it (SpanID).
type Trace struct {
	TraceID string
	SpanID  string
}

// NewTrace mints a fresh trace: a 16-hex-digit trace ID and an 8-hex-digit
// span ID.
func NewTrace() Trace {
	return Trace{TraceID: randHex(16), SpanID: randHex(8)}
}

// Child returns a new span under the same trace.
func (t Trace) Child() Trace {
	return Trace{TraceID: t.TraceID, SpanID: randHex(8)}
}

// Valid reports whether both IDs are present.
func (t Trace) Valid() bool { return t.TraceID != "" && t.SpanID != "" }

// String renders the header value, "<trace-id>-<span-id>".
func (t Trace) String() string { return t.TraceID + "-" + t.SpanID }

// ParseTrace parses a header value produced by String. Malformed values
// report ok=false; the caller then starts a fresh trace, so a garbled
// header degrades to a new edge rather than an error.
func ParseTrace(s string) (Trace, bool) {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return Trace{}, false
	}
	t := Trace{TraceID: s[:i], SpanID: s[i+1:]}
	if !isHex(t.TraceID) || !isHex(t.SpanID) || len(t.TraceID) > 64 || len(t.SpanID) > 64 {
		return Trace{}, false
	}
	return t, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

const hexDigits = "0123456789abcdef"

// randHex returns n random lowercase hex digits. IDs need uniqueness, not
// secrecy; the process-seeded math/rand/v2 generator is cheap and
// goroutine-safe.
func randHex(n int) string {
	b := make([]byte, n)
	for i := 0; i+15 < n; i += 16 {
		v := rand.Uint64()
		for j := 0; j < 16; j++ {
			b[i+j] = hexDigits[v&0xf]
			v >>= 4
		}
	}
	if rem := n % 16; rem != 0 {
		v := rand.Uint64()
		for j := n - rem; j < n; j++ {
			b[j] = hexDigits[v&0xf]
			v >>= 4
		}
	}
	return string(b)
}

type traceCtxKey struct{}

// WithTrace attaches a trace to the context; Inject forwards it on outbound
// requests and StartSpan parents new spans on it.
func WithTrace(ctx context.Context, t Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, ok=false when none is attached.
func TraceFrom(ctx context.Context) (Trace, bool) {
	t, ok := ctx.Value(traceCtxKey{}).(Trace)
	return t, ok && t.Valid()
}

// Inject writes the context's trace (when present) onto outbound request
// headers — the client side of propagation.
func Inject(ctx context.Context, h http.Header) {
	if t, ok := TraceFrom(ctx); ok {
		h.Set(TraceHeader, t.String())
	}
}

// Extract reads the inbound trace header, ok=false when absent or
// malformed — the server side of propagation.
func Extract(h http.Header) (Trace, bool) {
	raw := h.Get(TraceHeader)
	if raw == "" {
		return Trace{}, false
	}
	return ParseTrace(raw)
}

// Span is one timed unit of work inside a trace. End emits a single
// structured log line ("span name=... trace=... dur_ms=...") through the
// logf it was started with, and — when the context carried a Collector —
// records a SpanRecord into the flight recorder. A nil *Span is a valid
// no-op receiver, so callers never nil-check.
type Span struct {
	trace  Trace
	parent string // inbound span ID, empty at the edge
	name   string
	start  time.Time
	logf   func(format string, args ...any)
	attrs  []Attr
	col    *Collector
	err    string
}

// StartSpan opens a span named name: a child of the context's trace when
// one is attached (the context trace becomes the parent), a fresh edge
// trace otherwise. The returned context carries the span's own trace, so
// outbound requests made with it propagate this span as the parent. logf
// may be nil (the span still propagates, just never logs); when the
// context carries a Collector (WithCollector), End also records the span
// there.
func StartSpan(ctx context.Context, logf func(format string, args ...any), name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now(), logf: logf}
	if parent, ok := TraceFrom(ctx); ok {
		sp.trace = parent.Child()
		sp.parent = parent.SpanID
	} else {
		sp.trace = NewTrace()
	}
	if col := CollectorFrom(ctx); col != nil {
		sp.col = col
		col.spanStarted(sp.trace)
	}
	return WithTrace(ctx, sp.trace), sp
}

// Trace returns the span's trace identity.
func (sp *Span) Trace() Trace {
	if sp == nil {
		return Trace{}
	}
	return sp.trace
}

// Set attaches one key=value pair to the span, in call order. The pair
// rides the log line and the recorded SpanRecord.
func (sp *Span) Set(key string, value any) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: fmt.Sprint(value)})
}

// Fail marks the span errored: the message lands on the SpanRecord (so the
// recorder retains the trace in its error reservoir) and on the log line.
// A nil err is a no-op, so `defer`-style call sites can pass the outcome
// unconditionally.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.err = err.Error()
}

// End records the span into the collector (when one was attached at start)
// and emits the structured log line. Logging is not suppressed by the
// recorder: grep-a-trace-across-the-fleet keeps working, and processes
// without a collector lose nothing.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	dur := time.Since(sp.start)
	if sp.col != nil {
		sp.col.Observe(SpanRecord{
			Name:     sp.name,
			TraceID:  sp.trace.TraceID,
			SpanID:   sp.trace.SpanID,
			ParentID: sp.parent,
			Start:    sp.start,
			Duration: dur,
			Attrs:    sp.attrs,
			Err:      sp.err,
		})
	}
	if sp.logf == nil {
		return
	}
	var b strings.Builder
	for _, a := range sp.attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	if sp.err != "" {
		fmt.Fprintf(&b, " err=%q", sp.err)
	}
	parent := sp.parent
	if parent == "" {
		parent = "-"
	}
	sp.logf("span name=%s trace=%s span=%s parent=%s dur_ms=%.3f%s",
		sp.name, sp.trace.TraceID, sp.trace.SpanID, parent,
		float64(dur)/float64(time.Millisecond), b.String())
}
